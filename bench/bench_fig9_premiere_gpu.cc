/**
 * @file
 * Figure 9: GPU utilization of the GTX 680 and GTX 1080 Ti for
 * Premiere Pro video export with and without CUDA. Export with CUDA
 * shows higher utilization and lower TLP than without; runtime is
 * not significantly changed; the (weaker) GTX 680 runs at higher
 * utilization than the 1080 Ti.
 */

#include <cstdio>
#include <iostream>

#include "apps/video.hh"
#include "bench_util.hh"

using namespace deskpar;

int
main()
{
    bench::banner("Figure 9 - Premiere Pro export, CUDA vs software",
                  "Section V-D-1, Figure 9");

    bench::SuiteTimer timer("bench_fig9_premiere_gpu");

    struct GpuChoice
    {
        const char *label;
        sim::GpuSpec spec;
    };
    const GpuChoice kGpus[] = {
        {"GTX 680", sim::GpuSpec::gtx680()},
        {"GTX 1080 Ti", sim::GpuSpec::gtx1080Ti()},
    };

    report::TextTable table({"App", "GPU", "Renderer",
                             "Export rate (FPS)", "TLP",
                             "GPU util (%)"});

    for (const auto &gpu : kGpus) {
        for (bool cuda : {false, true}) {
            apps::RunOptions options = bench::paperRunOptions();
            options.config.gpu = gpu.spec;
            auto premiere = apps::makePremiere(
                cuda ? apps::PremiereScenario::ExportCuda
                     : apps::PremiereScenario::ExportSoftware);
            apps::AppRunResult result =
                apps::runWorkload(*premiere, options);
            table.row()
                .cell(std::string("Premiere Pro"))
                .cell(gpu.label)
                .cell(cuda ? "CUDA (Mercury)" : "software")
                .cell(result.fps.mean(), 1)
                .cell(result.tlp(), 1)
                .cell(result.gpuUtil(), 1);

            // Section IV-D: PowerDirector is also rendered with and
            // without CUDA support.
            auto pd = apps::makePowerDirectorExport(cuda);
            apps::AppRunResult pd_result =
                apps::runWorkload(*pd, options);
            table.row()
                .cell(std::string("PowerDirector"))
                .cell(gpu.label)
                .cell(cuda ? "CUDA" : "software")
                .cell(pd_result.fps.mean(), 1)
                .cell(pd_result.tlp(), 1)
                .cell(pd_result.gpuUtil(), 1);
        }
    }
    table.print(std::cout);

    std::printf("\nExpected shape: CUDA export shows much higher GPU "
                "utilization and somewhat lower TLP than software "
                "export; the GTX 680 runs at higher utilization "
                "than the 1080 Ti for the same export.\n");
    return 0;
}

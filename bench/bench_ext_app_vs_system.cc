/**
 * @file
 * Extension experiment (paper Section III-B/C): why application-level
 * TLP, and why background processes are killed before tracing. We run
 * Photoshop with increasing amounts of OS background noise and
 * compare the application-level metric (stable by construction) with
 * the system-wide TLP of the 2000/2010 methodologies (inflated by
 * whatever else runs).
 */

#include <cstdio>
#include <iostream>

#include "analysis/analyzer.hh"
#include "analysis/trace_index.hh"
#include "apps/registry.hh"
#include "bench_util.hh"

using namespace deskpar;

int
main()
{
    bench::banner("Extension - application vs system TLP",
                  "Section III-B/III-C methodology");

    report::TextTable table({"Background noise", "App TLP",
                             "System TLP", "App GPU (%)",
                             "System GPU (%)"});

    for (double noise : {0.0, 1.0, 3.0}) {
        apps::RunOptions options = bench::paperRunOptions();
        options.iterations = 1;
        options.noiseIntensity = noise;
        apps::AppRunResult result =
            apps::runWorkload("photoshop", options);

        // Both views analyze the same trace: share one index so the
        // GPU columns are built once for the two sweeps.
        analysis::TraceIndex index(result.lastBundle);
        auto app = analysis::analyzeApp(index, result.lastPids);
        auto system = analysis::analyzeApp(index, trace::PidSet{});

        char label[32];
        std::snprintf(label, sizeof(label), "%.1fx", noise);
        table.row()
            .cell(std::string(label))
            .cell(app.tlp(), 2)
            .cell(system.tlp(), 2)
            .cell(app.gpuUtilPercent(), 1)
            .cell(system.gpuUtilPercent(), 1);
    }
    table.print(std::cout);

    std::printf(
        "\nExpected shape: the application-level metrics stay flat "
        "across noise levels (the pid filter removes foreign\n"
        "events), while the system-wide numbers are distorted — "
        "system GPU inflates with the noise and system TLP is\n"
        "diluted by the noise's serial bursts. That distortion is "
        "why the paper measures per-application and ends\n"
        "unrelated processes before tracing (Sections III-B/C).\n");
    return 0;
}

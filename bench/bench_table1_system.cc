/**
 * @file
 * Table I: specifications of the benchmarking desktop system.
 * Dumps the modeled machine (CPU, GPUs, scheduler defaults) so runs
 * are traceable to a hardware configuration.
 */

#include <cstdio>

#include "bench_util.hh"
#include "sim/machine.hh"

using namespace deskpar;

namespace {

void
printGpu(const sim::GpuSpec &gpu)
{
    std::printf("  %-24s %u CUDA cores @ %.0f MHz, %u MiB, "
                "NVENC: %s, compute queues: %u\n",
                gpu.model.c_str(), gpu.cudaCores, gpu.coreClockMhz,
                gpu.vramMiB, gpu.hasNvenc ? "yes" : "no",
                gpu.computeQueueSlots);
    std::printf("  %-24s shader throughput %.2f Tunit/s, video "
                "engine %.2f Tunit/s\n", "",
                gpu.shaderThroughput() * 1e-12,
                gpu.videoRate * 1e-12);
}

} // namespace

int
main()
{
    bench::banner("Table I - benchmarking system",
                  "Section III-A, Table I");

    bench::SuiteTimer timer("bench_table1_system");

    sim::MachineConfig config = sim::MachineConfig::paperDefault();
    const sim::CpuSpec &cpu = config.cpu;

    std::printf("CPU      %s, %.2f-%.2f GHz, %u cores / %u threads\n",
                cpu.model.c_str(), cpu.baseClockGhz, cpu.turboClockGhz,
                cpu.physicalCores, cpu.numLogicalCpus());
    std::printf("LLC      %u MiB\n", cpu.llcMiB);
    std::printf("RAM      %u GiB\n", cpu.ramGiB);
    std::printf("OS       simulated Windows-like preemptive "
                "round-robin scheduler, %.0f ms quantum\n",
                sim::toMillis(config.quantum));
    std::printf("\nGraphics (primary and comparison boards):\n");
    printGpu(sim::GpuSpec::gtx1080Ti());
    printGpu(sim::GpuSpec::gtx680());
    printGpu(sim::GpuSpec::gtx285());

    std::printf("\nTurbo ladder (busy physical cores -> GHz):\n ");
    for (unsigned busy = 0; busy <= cpu.physicalCores; ++busy)
        std::printf(" %u:%.2f", busy, cpu.clockGhz(busy));
    std::printf("\n\nSMT contention model: co-running threads each "
                "execute at (0.5 + 0.5 f) of full rate,\nwhere f is "
                "the workload's SMT friendliness (see DESIGN.md).\n");
    return 0;
}

/**
 * @file
 * Figure 6: instantaneous TLP and GPU utilization over time for
 * Photoshop at 4/8/12 logical cores (SMT on). Filter rendering
 * scales linearly with core count (shorter bursts at the max level);
 * user-interaction processing shows no scalability, bottlenecking
 * total runtime per Amdahl.
 */

#include "bench_util.hh"

using namespace deskpar;

int
main()
{
    bench::banner(
        "Figure 6 - Photoshop instantaneous TLP/GPU vs cores",
        "Section V-C-1, Figure 6");

    bench::SuiteTimer timer("bench_fig6_photoshop_timeline");
    bench::runTimelineFigure("photoshop", {4, 8, 12},
                             sim::msec(250));
    std::printf("\nExpected shape: bursts to the active core count "
                "during filter renders (shorter at higher counts); "
                "low, serial activity between filters while the user "
                "interacts.\n");
    return 0;
}

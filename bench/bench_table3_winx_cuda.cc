/**
 * @file
 * Table III: transcode rate, TLP and GPU utilization of WinX with
 * and without NVIDIA CUDA/NVENC at 4/8/12 logical cores. Enabling
 * the GPU improves the transcode rate and lowers the TLP (paper:
 * rate 9/19/28 -> 14/27/37 FPS, TLP 4.0/7.9/11.5 -> 3.8/7.0/9.1,
 * GPU 0 -> 5.2/10.0/13.9%).
 */

#include <cstdio>
#include <iostream>

#include "apps/video.hh"
#include "bench_util.hh"

using namespace deskpar;

int
main()
{
    bench::banner("Table III - WinX with and without CUDA/NVENC",
                  "Section V-D-1, Table III");

    bench::SuiteTimer timer("bench_table3_winx_cuda");

    report::TextTable table({"Logical cores", "Rate no-GPU (FPS)",
                             "Rate GPU (FPS)", "TLP no-GPU",
                             "TLP GPU", "GPU util no-GPU (%)",
                             "GPU util GPU (%)"});

    double gain_sum = 0.0;
    double tlp_drop_max = 0.0;
    for (unsigned cores : {4u, 8u, 12u}) {
        apps::RunOptions options = bench::paperRunOptions();
        options.config.activeCpus = cores;

        auto cpuOnly = apps::makeWinX(false);
        auto withGpu = apps::makeWinX(true);
        apps::AppRunResult off = apps::runWorkload(*cpuOnly, options);
        apps::AppRunResult on = apps::runWorkload(*withGpu, options);

        table.row()
            .cell(std::uint64_t(cores))
            .cell(off.fps.mean(), 0)
            .cell(on.fps.mean(), 0)
            .cell(off.tlp(), 1)
            .cell(on.tlp(), 1)
            .cell(off.gpuUtil(), 1)
            .cell(on.gpuUtil(), 1);

        gain_sum += on.fps.mean() / off.fps.mean();
        tlp_drop_max = std::max(
            tlp_drop_max, (off.tlp() - on.tlp()) / off.tlp());
    }
    table.print(std::cout);

    std::printf("\nEnabling CUDA/NVENC: transcode rate x%.2f on "
                "average (paper ~x1.43); TLP decreases by up to "
                "%.0f%% (paper: up to 22%%);\nGPU utilization grows "
                "with TLP (more frames per second feed NVENC).\n",
                gain_sum / 3.0, tlp_drop_max * 100.0);
    return 0;
}

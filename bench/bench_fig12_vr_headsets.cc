/**
 * @file
 * Figure 12: TLP and GPU utilization for the six VR games across
 * Oculus Rift, HTC Vive and HTC Vive Pro (6 SMT cores). Rift attains
 * the highest TLP; Vive and Vive Pro are nearly equal; GPU
 * utilization correlates with headset resolution (Vive Pro highest)
 * except for Fallout 4, whose internal resolution cap plus CPU-side
 * cost makes Vive Pro its *lowest*-utilization headset.
 */

#include <cstdio>
#include <iostream>

#include "apps/vr.hh"
#include "bench_util.hh"

using namespace deskpar;

int
main()
{
    bench::banner("Figure 12 - VR games across headsets",
                  "Section V-F, Figure 12");

    bench::SuiteTimer timer("bench_fig12_vr_headsets");

    const apps::VrGame kGames[] = {
        apps::VrGame::ArizonaSunshine, apps::VrGame::Fallout4,
        apps::VrGame::RawData,         apps::VrGame::SeriousSamVr,
        apps::VrGame::SpacePirateTrainer,
        apps::VrGame::ProjectCars2};
    const apps::Headset kHeadsets[] = {apps::Headset::rift(),
                                       apps::Headset::vive(),
                                       apps::Headset::vivePro()};

    report::TextTable table({"Game", "Headset", "TLP",
                             "GPU util (%)", "Real FPS",
                             "Synth share (%)"});

    for (auto game : kGames) {
        for (const auto &headset : kHeadsets) {
            auto model = apps::makeVrGame(game, headset);
            apps::AppRunResult result =
                apps::runWorkload(*model, bench::paperRunOptions());
            const auto &frames =
                result.iterations.back().metrics.frames;
            table.row()
                .cell(apps::vrGameName(game))
                .cell(headset.name)
                .cell(result.tlp(), 2)
                .cell(result.gpuUtil(), 1)
                .cell(result.realFps.mean(), 1)
                .cell(frames.synthesizedShare() * 100.0, 1);
        }
    }
    table.print(std::cout);

    std::printf(
        "\nExpected shape: Rift achieves the highest TLP (its "
        "runtime threads do more in-process work); Vive and Vive "
        "Pro nearly equal;\nGPU utilization highest on Vive Pro for "
        "every game except Fallout 4, where it is lowest (internal "
        "resolution cap + CPU cost).\n");
    return 0;
}

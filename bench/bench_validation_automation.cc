/**
 * @file
 * Section III-D validation: the effect of AutoIt-style automation
 * versus manual testing on the measurements, probed — as in the
 * paper — with an interaction-heavy application (PowerDirector) and
 * a GPU-active one (VLC). The paper found manual TLP 3.3% below
 * automated and manual GPU utilization 2.4% below; the conclusion is
 * that automation does not significantly distort results.
 */

#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench_util.hh"

using namespace deskpar;

int
main()
{
    bench::banner("Validation - automated vs manual input",
                  "Section III-D");

    report::TextTable table({"Application", "Metric", "AutoIt",
                             "Manual", "Delta (%)"});

    for (const char *id : {"powerdirector", "vlc"}) {
        apps::RunOptions automated = bench::paperRunOptions();
        automated.manualInput = false;
        apps::RunOptions manual = bench::paperRunOptions();
        manual.manualInput = true;

        apps::AppRunResult a = apps::runWorkload(id, automated);
        apps::AppRunResult m = apps::runWorkload(id, manual);

        std::string name = apps::makeWorkload(id)->spec().name;
        double tlp_delta =
            100.0 * (m.tlp() - a.tlp()) / a.tlp();
        table.row()
            .cell(name)
            .cell(std::string("TLP"))
            .cell(a.tlp(), 2)
            .cell(m.tlp(), 2)
            .cell(tlp_delta, 1);
        if (a.gpuUtil() > 0.0) {
            double gpu_delta =
                100.0 * (m.gpuUtil() - a.gpuUtil()) / a.gpuUtil();
            table.row()
                .cell(name)
                .cell(std::string("GPU util"))
                .cell(a.gpuUtil(), 2)
                .cell(m.gpuUtil(), 2)
                .cell(gpu_delta, 1);
        }
    }

    table.print(std::cout);
    std::printf("\nExpected shape: manual deltas within a few "
                "percent of automated runs (paper: TLP -3.3%%, GPU "
                "-2.4%%) — automation does not significantly distort "
                "the measurements.\n");
    return 0;
}

/**
 * @file
 * Sweep-engine throughput benchmark: scenarios/sec of a seeded
 * corpus sweep (apps/sweep.hh) through the full path — scenario
 * generation, simulation, metric reduction, shard writes, checkpoint
 * updates, merge — at the runner's default job count, plus a
 * single-thread pass for the per-core figure.
 *
 * Also re-checks the engine's headline contract inline: the
 * DESKPAR_JOBS=1 and default-jobs merged outputs must be
 * byte-identical (cheap here, and a bench that measures a broken
 * engine would be worse than useless).
 *
 * Records the bench_sweep record and, when DESKPAR_SWEEP_MIN_RATE
 * is set, fails if parallel scenarios/sec lands below that floor.
 */

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "apps/sweep.hh"
#include "bench_util.hh"

using namespace deskpar;

namespace {

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

/** Fresh-directory sweep; returns the merged output path. */
std::string
runOnce(const std::filesystem::path &dir, std::uint32_t count,
        double seconds, unsigned threads)
{
    std::filesystem::remove_all(dir);
    apps::SweepOptions options;
    options.seed = 2026;
    options.count = count;
    options.outDir = dir.string();
    options.seconds = seconds;
    options.shardSize = 8;
    options.threads = threads;
    apps::SweepReport report = apps::runSweep(options);
    return report.mergedPath;
}

} // namespace

int
main()
{
    bench::banner("Sweep engine - corpus scenarios per second",
                  "corpus-scale extension of the Table II protocol");

    bench::SuiteTimer timer("bench_sweep");

    std::uint32_t count = 96;
    double seconds = 1.0;
    if (const char *fast = std::getenv("DESKPAR_FAST");
        fast && fast[0] == '1') {
        count = 32;
        seconds = 0.5;
    }

    std::filesystem::path base =
        std::filesystem::temp_directory_path() /
        "deskpar_bench_sweep";
    std::filesystem::path dirSerial = base / "serial";
    std::filesystem::path dirParallel = base / "parallel";

    std::printf("%u scenarios x %.1f simulated s, shard size 8\n\n",
                count, seconds);

    double wallSerial = bench::minWallSeconds(
        2, [&]() { runOnce(dirSerial, count, seconds, 1); });
    double wallParallel = bench::minWallSeconds(2, [&]() {
        runOnce(dirParallel, count, seconds, 0);
    });

    std::string mergedSerial =
        slurp((dirSerial / "sweep.jsonl").string());
    std::string mergedParallel =
        slurp((dirParallel / "sweep.jsonl").string());
    if (mergedSerial.empty() || mergedSerial != mergedParallel) {
        std::fprintf(stderr,
                     "FAIL: merged sweep output differs between 1 "
                     "thread and default jobs\n");
        return 1;
    }
    std::printf("determinism: serial and parallel sweep.jsonl "
                "byte-identical (%zu bytes)\n",
                mergedSerial.size());

    double rateSerial = count / wallSerial;
    double rateParallel = count / wallParallel;
    std::printf("1 thread:     %7.1f scenarios/s (%.3f s)\n",
                rateSerial, wallSerial);
    std::printf("default jobs: %7.1f scenarios/s (%.3f s)\n",
                rateParallel, wallParallel);

    bench::appendBenchRecord("bench_sweep_serial", wallSerial);

    std::filesystem::remove_all(base);

    if (const char *env = std::getenv("DESKPAR_SWEEP_MIN_RATE")) {
        double floor = std::strtod(env, nullptr);
        if (rateParallel < floor) {
            std::fprintf(stderr,
                         "FAIL: %.1f scenarios/s is below the %.1f "
                         "floor\n",
                         rateParallel, floor);
            return 1;
        }
        std::printf("PASS: %.1f scenarios/s >= %.1f floor\n",
                    rateParallel, floor);
    }
    return 0;
}

/**
 * @file
 * Figure 2: TLP of desktop applications in 2000 (Flautner et al.),
 * 2010 (Blake et al.) and 2018 (this reproduction), grouped by
 * category. Historical bars come from report::history; the 2018 bars
 * are measured on the simulated machine.
 */

#include <cstdio>
#include <iostream>
#include <map>
#include <vector>

#include "bench_util.hh"
#include "report/history.hh"

using namespace deskpar;

int
main()
{
    bench::banner("Figure 2 - TLP evolution 2000/2010/2018",
                  "Section V-B, Figure 2");

    bench::SuiteTimer timer("bench_fig2_tlp_evolution");
    apps::RunOptions options = bench::paperRunOptions();

    // 2018 measurements, keyed to the figure's category groups.
    const std::vector<std::pair<std::string, std::string>> kMeasured =
        {
            {"azsunshine", "VR Gaming"},
            {"fallout4", "VR Gaming"},
            {"rawdata", "VR Gaming"},
            {"serioussam", "VR Gaming"},
            {"spacepirate", "VR Gaming"},
            {"projectcars2", "VR Gaming"},
            {"photoshop", "Image Authoring"},
            {"maya", "Image Authoring"},
            {"acrobat", "Office"},
            {"powerpoint", "Office"},
            {"word", "Office"},
            {"excel", "Office"},
            {"quicktime", "Media Playback"},
            {"wmplayer", "Media Playback"},
            {"premiere", "Video Authoring & Transcoding"},
            {"powerdirector", "Video Authoring & Transcoding"},
            {"handbrake", "Video Authoring & Transcoding"},
            {"firefox", "Web Browsing"},
            {"edge", "Web Browsing"},
        };

    report::TextTable table(
        {"Category", "Application", "Year", "TLP"});

    std::map<std::string, std::map<int, analysis::RunningStat>>
        byCategory;

    for (const auto &entry : report::tlpHistory()) {
        table.row()
            .cell(entry.category)
            .cell(entry.app)
            .cell(std::to_string(entry.year))
            .cell(entry.value, 1);
        byCategory[entry.category][entry.year].add(entry.value);
    }

    std::vector<apps::SuiteJob> jobs;
    for (const auto &[id, category] : kMeasured)
        jobs.push_back(apps::suiteJob(id, options));
    std::vector<apps::AppRunResult> results =
        bench::runSuiteParallel(jobs);

    // The 2018 bars go through the fused query layer rather than
    // reading AppRunResult::tlp() directly (see bench::fusedTlp).
    std::size_t next = 0;
    for (const auto &[id, category] : kMeasured) {
        const apps::AppRunResult &result = results[next++];
        double tlp = bench::fusedTlp(result);
        table.row()
            .cell(category)
            .cell(result.agg.app)
            .cell(std::string("2018"))
            .cell(tlp, 1);
        byCategory[category][2018].add(tlp);
    }

    table.print(std::cout);

    std::printf("\nCategory means by year (the figure's visual "
                "takeaway):\n");
    report::TextTable summary(
        {"Category", "2000", "2010", "2018"});
    for (const auto &[category, years] : byCategory) {
        auto cellFor = [&](int year) -> std::string {
            auto it = years.find(year);
            if (it == years.end() || it->second.count() == 0)
                return "-";
            return report::formatNumber(it->second.mean(), 1);
        };
        summary.row()
            .cell(category)
            .cell(cellFor(2000))
            .cell(cellFor(2010))
            .cell(cellFor(2018));
    }
    summary.print(std::cout);

    std::printf("\nExpected shape: most 2018 bars comparable or "
                "higher than 2010; VR gaming roughly 2x the TLP of "
                "2010 3D gaming;\nmedia playback and video authoring "
                "down 0.5-1.0 (stronger single cores); HandBrake up "
                "further.\n");
    return 0;
}

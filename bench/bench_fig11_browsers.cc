/**
 * @file
 * Figure 11: TLP and GPU utilization for the web-browsing tests —
 * multiple tabs vs a single tab, and ESPN (active content) vs
 * Wikipedia (static content) — across Chrome, Firefox and Edge.
 * Also reports the process counts behind the paper's multi-process
 * discussion (Chrome spawns ~10x the processes of Firefox).
 */

#include <cstdio>
#include <iostream>

#include "apps/browser.hh"
#include "bench_util.hh"

using namespace deskpar;

int
main()
{
    bench::banner("Figure 11 - web browsing scenarios",
                  "Section V-E, Figure 11");

    const apps::BrowserEngine kEngines[] = {
        apps::BrowserEngine::Chrome, apps::BrowserEngine::Firefox,
        apps::BrowserEngine::Edge};
    const apps::BrowseScenario kScenarios[] = {
        apps::BrowseScenario::MultiTab,
        apps::BrowseScenario::SingleTab,
        apps::BrowseScenario::Espn, apps::BrowseScenario::Wiki};

    report::TextTable table({"Browser", "Scenario", "Processes",
                             "TLP", "GPU util (%)"});

    for (auto engine : kEngines) {
        for (auto scenario : kScenarios) {
            auto model = apps::makeBrowser(engine, scenario);
            apps::AppRunResult result =
                apps::runWorkload(*model, bench::paperRunOptions());

            // Count the application's processes in the last trace.
            std::size_t processes = result.lastPids.size();
            table.row()
                .cell(apps::browserName(engine))
                .cell(apps::scenarioName(scenario))
                .cell(std::uint64_t(processes))
                .cell(result.tlp(), 2)
                .cell(result.gpuUtil(), 1);
        }
    }
    table.print(std::cout);

    std::printf(
        "\nExpected shape: multi-tab TLP similar or higher than "
        "single-tab (more processes, throttled background tabs) — "
        "the opposite of Blake et al. 2010;\nChrome spawns the most "
        "processes and leads TLP on ESPN; all browsers use more GPU "
        "on ESPN than on Wikipedia.\n");
    return 0;
}

/**
 * @file
 * Figure 11: TLP and GPU utilization for the web-browsing tests —
 * multiple tabs vs a single tab, and ESPN (active content) vs
 * Wikipedia (static content) — across Chrome, Firefox and Edge.
 * Also reports the process counts behind the paper's multi-process
 * discussion (Chrome spawns ~10x the processes of Firefox).
 */

#include <cstdio>
#include <iostream>

#include "apps/browser.hh"
#include "bench_util.hh"

using namespace deskpar;

int
main()
{
    bench::banner("Figure 11 - web browsing scenarios",
                  "Section V-E, Figure 11");

    bench::SuiteTimer timer("bench_fig11_browsers");

    const apps::BrowserEngine kEngines[] = {
        apps::BrowserEngine::Chrome, apps::BrowserEngine::Firefox,
        apps::BrowserEngine::Edge};
    const apps::BrowseScenario kScenarios[] = {
        apps::BrowseScenario::MultiTab,
        apps::BrowseScenario::SingleTab,
        apps::BrowseScenario::Espn, apps::BrowseScenario::Wiki};

    report::TextTable table({"Browser", "Scenario", "Processes",
                             "TLP", "GPU util (%)"});

    // Custom (non-registry) models fan out through per-job factories.
    std::vector<apps::SuiteJob> jobs;
    for (auto engine : kEngines) {
        for (auto scenario : kScenarios) {
            apps::SuiteJob job;
            job.label = std::string(apps::browserName(engine)) + "/" +
                        apps::scenarioName(scenario);
            job.factory = [engine, scenario] {
                return apps::makeBrowser(engine, scenario);
            };
            job.options = bench::paperRunOptions();
            jobs.push_back(std::move(job));
        }
    }
    std::vector<apps::AppRunResult> results =
        bench::runSuiteParallel(jobs);

    std::size_t next = 0;
    for (auto engine : kEngines) {
        for (auto scenario : kScenarios) {
            const apps::AppRunResult &result = results[next++];

            // Count the application's processes in the last trace.
            std::size_t processes = result.lastPids.size();
            table.row()
                .cell(apps::browserName(engine))
                .cell(apps::scenarioName(scenario))
                .cell(std::uint64_t(processes))
                .cell(result.tlp(), 2)
                .cell(result.gpuUtil(), 1);
        }
    }
    table.print(std::cout);

    std::printf(
        "\nExpected shape: multi-tab TLP similar or higher than "
        "single-tab (more processes, throttled background tabs) — "
        "the opposite of Blake et al. 2010;\nChrome spawns the most "
        "processes and leads TLP on ESPN; all browsers use more GPU "
        "on ESPN than on Wikipedia.\n");
    return 0;
}

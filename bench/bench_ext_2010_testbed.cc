/**
 * @file
 * Extension experiment: replay the Blake et al. 2010 study inside
 * this toolkit (paper Section II) — period-appropriate application
 * models on the dual-socket Nehalem + GTX 285 machine — and verify
 * its two conclusions hold there:
 *   1. "2-3 processor cores were still more than sufficient for
 *      most applications" (TLP pinned under ~2 and insensitive to
 *      core count, HandBrake the exception);
 *   2. "the GPU was mostly underutilized".
 * Running both eras in one framework is what makes the title's
 * 18-year perspective reproducible end to end.
 */

#include <cstdio>
#include <iostream>

#include "apps/legacy.hh"
#include "bench_util.hh"

using namespace deskpar;

int
main()
{
    bench::banner("Extension - the 2010 testbed, replayed",
                  "Section II (Blake et al. 2010)");

    apps::RunOptions options = bench::paperRunOptions();
    options.config = apps::blake2010Config();

    std::printf("2010 suite on the 2010 machine (16 logical "
                "CPUs, GTX 285):\n");
    report::TextTable table({"Application", "TLP", "2010 figure",
                             "GPU util (%)", "2010 figure "});
    double gpu_max_nongame = 0.0;
    for (const auto &entry : apps::legacySuite()) {
        auto model = entry.factory();
        apps::AppRunResult result =
            apps::runWorkload(*model, options);
        table.row()
            .cell(model->spec().name)
            .cell(result.tlp(), 2)
            .cell(entry.tlp2010, 1)
            .cell(result.gpuUtil(), 1)
            .cell(entry.gpu2010, 1);
        gpu_max_nongame =
            std::max(gpu_max_nongame, result.gpuUtil());
    }
    table.print(std::cout);

    std::printf("\nCore scaling on the 2010 machine (physical "
                "cores, SMT off):\n");
    report::TextTable scaling(
        {"Application", "2 cores", "3 cores", "4 cores",
         "8 cores"});
    for (const char *id :
         {"photoshop-cs4", "excel-2007", "firefox-35",
          "handbrake-09"}) {
        const apps::LegacyEntry *entry = nullptr;
        for (const auto &e : apps::legacySuite()) {
            if (e.id == id)
                entry = &e;
        }
        scaling.row().cell(std::string(id));
        for (unsigned cores : {2u, 3u, 4u, 8u}) {
            apps::RunOptions sweep = options;
            sweep.config.smtEnabled = false;
            sweep.config.activeCpus = cores;
            auto model = entry->factory();
            apps::AppRunResult result =
                apps::runWorkload(*model, sweep);
            scaling.cell(result.tlp(), 2);
        }
    }
    scaling.print(std::cout);

    std::printf(
        "\nExpected shape: every interactive 2010 application sits "
        "at TLP <= ~2 and gains nothing past 2-3 cores —\nBlake's "
        "'2-3 cores are sufficient' — while HandBrake 0.9 is the "
        "scaling exception; GPU utilization stays in the\nsingle "
        "digits except media playback (~15%%): 'the GPU was mostly "
        "underutilized'.\n");
    return 0;
}

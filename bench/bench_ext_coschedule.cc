/**
 * @file
 * Extension experiment (paper Section VII, first suggestion):
 * "Applications exhibiting complementary TLP characteristics can be
 * scheduled to execute concurrently to achieve best utilization of
 * the processor... the OS could schedule another task during troughs
 * in TLP."
 *
 * We co-run HandBrake (high TLP with periodic serialization troughs)
 * with Photoshop (bursty interactive) on one machine and measure:
 * each app's TLP alone vs co-scheduled, the combined system
 * utilization, and the throughput each app retains.
 */

#include <cstdio>
#include <iostream>

#include "analysis/analyzer.hh"
#include "apps/registry.hh"
#include "bench_util.hh"
#include "input/driver.hh"

using namespace deskpar;

namespace {

struct CoRun
{
    analysis::AppMetrics handbrake;
    analysis::AppMetrics photoshop;
    analysis::AppMetrics system;
    double handbrakeFps = 0.0;
};

CoRun
run(bool with_photoshop)
{
    sim::MachineConfig config = sim::MachineConfig::paperDefault();
    config.seed = 42;
    sim::Machine machine(config);
    machine.session().start(0);

    auto handbrake = apps::makeWorkload("handbrake");
    apps::AppInstance hb = handbrake->instantiate(machine);

    apps::AppInstance ps;
    if (with_photoshop) {
        auto photoshop = apps::makeWorkload("photoshop");
        ps = photoshop->instantiate(machine);
        input::AutomationDriver driver;
        driver.install(machine, ps.script);
    }

    machine.run(sim::sec(30.0));
    machine.session().stop(machine.now());
    trace::TraceBundle bundle = machine.session().takeBundle();

    CoRun out;
    out.handbrake = analysis::analyzeApp(bundle, "handbrake");
    if (with_photoshop)
        out.photoshop = analysis::analyzeApp(bundle, "photoshop");
    out.system = analysis::analyzeApp(bundle, trace::PidSet{});
    out.handbrakeFps = out.handbrake.frames.avgFps;
    return out;
}

} // namespace

int
main()
{
    bench::banner("Extension - co-scheduling complementary TLP",
                  "Section VII discussion, bullet 1");

    CoRun alone = run(false);
    CoRun both = run(true);

    report::TextTable table({"Setup", "HandBrake TLP",
                             "HandBrake FPS", "Photoshop TLP",
                             "System utilization (busy cores)"});
    table.row()
        .cell(std::string("HandBrake alone"))
        .cell(alone.handbrake.tlp(), 2)
        .cell(alone.handbrakeFps, 1)
        .cell(std::string("-"))
        .cell(alone.system.concurrency.utilization(), 2);
    table.row()
        .cell(std::string("HandBrake + Photoshop"))
        .cell(both.handbrake.tlp(), 2)
        .cell(both.handbrakeFps, 1)
        .cell(report::formatNumber(both.photoshop.tlp(), 2))
        .cell(both.system.concurrency.utilization(), 2);
    table.print(std::cout);

    double fps_kept = both.handbrakeFps / alone.handbrakeFps;
    double util_gain = both.system.concurrency.utilization() -
                       alone.system.concurrency.utilization();
    std::printf(
        "\nCo-scheduling raised average busy cores by %.2f while "
        "HandBrake kept %.0f%% of its solo transcode rate:\n"
        "Photoshop's bursts largely execute in HandBrake's "
        "serialization troughs, as the paper's discussion "
        "anticipates.\n",
        util_gain, fps_kept * 100.0);
    return 0;
}

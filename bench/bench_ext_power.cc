/**
 * @file
 * Extension experiment: the energy cost of the configurations the
 * paper sweeps. Section I frames everything in post-Dennard terms
 * (TDP walls, dark silicon, specialization for energy efficiency);
 * this bench quantifies it with the first-order power model:
 *
 *  - HandBrake energy per transcoded frame across core counts and
 *    SMT (more cores: more power but less time — energy/frame falls;
 *    SMT adds throughput at near-zero power cost);
 *  - WinX with and without NVENC (offload buys both speed and
 *    energy, the specialization argument);
 *  - mining: the GTX 680 burns comparable watts for ~4x less work.
 */

#include <cstdio>
#include <iostream>

#include "analysis/power.hh"
#include "apps/video.hh"
#include "bench_util.hh"

using namespace deskpar;

namespace {

analysis::PowerEstimate
powerOf(const apps::AppRunResult &result,
        const apps::RunOptions &options)
{
    return analysis::estimatePower(result.lastBundle,
                                   options.config.cpu,
                                   options.config.gpu);
}

} // namespace

int
main()
{
    bench::banner("Extension - energy cost of the paper's sweeps",
                  "Section I framing (post-Dennard energy)");

    std::printf("HandBrake: energy per transcoded frame\n");
    report::TextTable hb({"Config", "FPS", "CPU W", "GPU W",
                          "J per frame"});
    struct Cfg
    {
        const char *label;
        unsigned cpus;
        bool smt;
    };
    for (const Cfg &cfg : {Cfg{"2 cores", 2, false},
                           Cfg{"4 cores", 4, false},
                           Cfg{"6 cores", 6, false},
                           Cfg{"6 cores + SMT", 12, true}}) {
        apps::RunOptions options = bench::paperRunOptions();
        options.iterations = 1;
        options.config.activeCpus = cfg.cpus;
        options.config.smtEnabled = cfg.smt;
        auto result = apps::runWorkload("handbrake", options);
        auto power = powerOf(result, options);
        hb.row()
            .cell(std::string(cfg.label))
            .cell(result.fps.mean(), 1)
            .cell(power.cpuWatts, 1)
            .cell(power.gpuWatts, 1)
            .cell(power.totalWatts() / result.fps.mean(), 2);
    }
    hb.print(std::cout);

    std::printf("\nWinX: does NVENC offload save energy?\n");
    report::TextTable winx(
        {"Renderer", "FPS", "Total W", "J per frame"});
    for (bool gpu : {false, true}) {
        apps::RunOptions options = bench::paperRunOptions();
        options.iterations = 1;
        auto model = apps::makeWinX(gpu);
        auto result = apps::runWorkload(*model, options);
        auto power = powerOf(result, options);
        winx.row()
            .cell(std::string(gpu ? "CUDA/NVENC" : "CPU only"))
            .cell(result.fps.mean(), 1)
            .cell(power.totalWatts(), 1)
            .cell(power.totalWatts() / result.fps.mean(), 2);
    }
    winx.print(std::cout);

    std::printf("\nMining: watts per unit of hash work "
                "(GTX 680 vs 1080 Ti)\n");
    report::TextTable mine({"GPU", "GPU W", "Relative work",
                            "Relative J per hash"});
    double base_work = 0.0;
    double base_energy = 0.0;
    for (const auto &gpu :
         {sim::GpuSpec::gtx1080Ti(), sim::GpuSpec::gtx680()}) {
        apps::RunOptions options = bench::paperRunOptions();
        options.iterations = 1;
        options.config.gpu = gpu;
        auto result = apps::runWorkload("bitcoinminer", options);
        auto power = powerOf(result, options);
        double work = result.iterations[0].gpuWork;
        double energy = power.energyJoules();
        if (base_work == 0.0) {
            base_work = work;
            base_energy = energy;
        }
        mine.row()
            .cell(gpu.model)
            .cell(power.gpuWatts, 1)
            .cell(work / base_work, 2)
            .cell((energy / work) / (base_energy / base_work), 2);
    }
    mine.print(std::cout);

    std::printf(
        "\nExpected shape: energy per frame falls with core count "
        "(race to idle) and SMT is nearly free throughput; NVENC\n"
        "cuts joules per frame; the GTX 680 pays several times the "
        "energy per hash — the efficiency gap behind the paper's\n"
        "ASIC-mining citation.\n");
    return 0;
}

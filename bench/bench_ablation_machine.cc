/**
 * @file
 * Ablations of the machine-model design choices DESIGN.md calls out,
 * each isolating one mechanism against the paper conclusion it
 * carries:
 *
 *  A. SMT contention factor f — sweeps the whole-chip SMT gain for a
 *     transcoder (f=0: no gain; f=1: perfect doubling). The paper's
 *     Figure 8 behavior needs small f.
 *  B. Turbo ladder — with turbo disabled, low-core configurations
 *     lose their clock advantage and core scaling looks steeper.
 *  C. Scheduler quantum — responsiveness of an oversubscribed
 *     machine degrades with longer quanta while throughput holds.
 *  D. GPU compute queue slots — PhoenixMiner's overlapping packets
 *     (the Table II footnote) exist only with 2 hardware queues.
 *  E. LLC contention model — co-running two large-footprint
 *     transcoders oversubscribes the 12 MiB LLC; with the model
 *     enabled, combined throughput turns sub-additive.
 */

#include <cstdio>
#include <iostream>

#include "analysis/responsiveness.hh"
#include "apps/registry.hh"
#include "apps/standard.hh"
#include "apps/video.hh"
#include "bench_util.hh"
#include "input/driver.hh"

using namespace deskpar;

namespace {

void
ablationSmtFactor()
{
    std::printf("A. SMT contention factor (HandBrake structure, "
                "12 logical vs 6 physical)\n");
    report::TextTable table({"f", "FPS 6C/12T (SMT)",
                             "FPS 6C/6T (no SMT)",
                             "whole-chip SMT gain"});
    for (double f : {0.0, 0.15, 0.5, 1.0}) {
        apps::TranscoderParams params;
        params.spec = {"ablate-hb", "ablation transcoder",
                       "Ablation"};
        params.smtFriendliness = f;
        params.parallelFrameMs = 220.0;
        params.serialFrameMs = 9.0;

        apps::RunOptions smt = bench::paperRunOptions();
        smt.iterations = 1;
        apps::RunOptions no_smt = smt;
        no_smt.config.smtEnabled = false;
        no_smt.config.activeCpus = 6;

        apps::TranscoderModel model_a(params);
        apps::TranscoderModel model_b(params);
        double with_smt =
            apps::runWorkload(model_a, smt).fps.mean();
        double without =
            apps::runWorkload(model_b, no_smt).fps.mean();
        table.row()
            .cell(f, 2)
            .cell(with_smt, 1)
            .cell(without, 1)
            .cell(with_smt / without, 2);
    }
    table.print(std::cout);
    std::printf("   -> gain ~1.0 at f=0, approaching ~2.0 at f=1; "
                "the paper's modest transcoder gains imply small "
                "f.\n\n");
}

void
ablationTurbo()
{
    std::printf("B. Turbo ladder (HandBrake rate at 2 vs 12 "
                "logical)\n");
    report::TextTable table(
        {"Turbo", "FPS @2 logical", "FPS @12 logical", "ratio"});
    for (bool turbo : {true, false}) {
        apps::RunOptions narrow = bench::paperRunOptions();
        narrow.iterations = 1;
        narrow.config.activeCpus = 2;
        if (!turbo)
            narrow.config.cpu.turboClockGhz =
                narrow.config.cpu.baseClockGhz;
        apps::RunOptions wide = narrow;
        wide.config.activeCpus = 12;

        double r2 =
            apps::runWorkload("handbrake", narrow).fps.mean();
        double r12 =
            apps::runWorkload("handbrake", wide).fps.mean();
        table.row()
            .cell(std::string(turbo ? "on" : "off"))
            .cell(r2, 1)
            .cell(r12, 1)
            .cell(r12 / r2, 2);
    }
    table.print(std::cout);
    std::printf("   -> disabling turbo removes the low-core clock "
                "bonus: scaling looks steeper without it.\n\n");
}

void
ablationQuantum()
{
    std::printf("C. Scheduler quantum and UI priority boost (Word "
                "UI latency behind a transcoder, 2 physical "
                "cores)\n");
    report::TextTable table({"Quantum (ms)", "UI priority",
                             "Mean response (ms)",
                             "HandBrake FPS"});
    for (double quantum_ms : {2.0, 10.0, 40.0}) {
        for (bool elevated : {false, true}) {
            sim::MachineConfig config =
                sim::MachineConfig::paperDefault();
            config.seed = 42;
            config.smtEnabled = false;
            config.activeCpus = 2;
            config.quantum = sim::msec(quantum_ms);
            sim::Machine machine(config);
            machine.session().start(0);

            // Rebuild Word with the requested UI priority class.
            auto base = apps::makeWorkload("word");
            auto &word =
                dynamic_cast<apps::StandardAppModel &>(*base);
            apps::StandardAppParams params = word.params();
            params.elevatedUi = elevated;
            apps::StandardAppModel model(std::move(params));
            apps::AppInstance instance =
                model.instantiate(machine);
            auto handbrake = apps::makeWorkload("handbrake");
            handbrake->instantiate(machine);
            input::AutomationDriver driver;
            driver.install(machine, instance.script);

            machine.run(sim::sec(20.0));
            machine.session().stop(machine.now());
            trace::TraceBundle bundle =
                machine.session().takeBundle();

            auto response = analysis::computeResponsiveness(
                bundle, trace::pidsWithPrefix(bundle, "word"));
            auto hb = analysis::analyzeApp(bundle, "handbrake");
            table.row()
                .cell(quantum_ms, 0)
                .cell(std::string(elevated ? "elevated"
                                           : "normal"))
                .cell(response.meanLatencyMs(), 2)
                .cell(hb.frames.avgFps, 1);
        }
    }
    table.print(std::cout);
    std::printf("   -> latency tracks the quantum on a saturated "
                "machine unless the UI is boosted (preemption "
                "collapses it);\n      throughput barely moves "
                "either way.\n\n");
}

void
ablationGpuQueues()
{
    std::printf("D. GPU compute queue slots (PhoenixMiner "
                "overlap)\n");
    report::TextTable table({"Compute queues", "GPU util (%)",
                             "Aggregate ratio", "Overlap flag"});
    for (unsigned slots : {1u, 2u}) {
        apps::RunOptions options = bench::paperRunOptions();
        options.iterations = 1;
        options.config.gpu.computeQueueSlots = slots;
        apps::AppRunResult result =
            apps::runWorkload("phoenixminer", options);
        const auto &gpu = result.iterations[0].metrics.gpu;
        table.row()
            .cell(std::uint64_t(slots))
            .cell(result.gpuUtil(), 1)
            .cell(gpu.aggregateRatio, 2)
            .cell(std::string(gpu.overlapped ? "yes" : "no"));
    }
    table.print(std::cout);
    std::printf("   -> the Table II '*100.0' footnote (two packets "
                "simultaneously executing) requires the second "
                "hardware queue.\n");
}

void
ablationLlc()
{
    std::printf("\nE. LLC contention model (two co-running "
                "HandBrakes, 9 MiB working set each, 12 MiB LLC)\n");
    report::TextTable table({"LLC model", "Solo FPS",
                             "Co-run combined FPS",
                             "Scaling efficiency"});
    for (bool enabled : {false, true}) {
        auto run = [enabled](unsigned copies) {
            sim::MachineConfig config =
                sim::MachineConfig::paperDefault();
            config.seed = 42;
            config.llcModelEnabled = enabled;
            sim::Machine machine(config);
            machine.session().start(0);
            for (unsigned i = 0; i < copies; ++i)
                apps::makeWorkload("handbrake")->instantiate(
                    machine);
            machine.run(sim::sec(20.0));
            machine.session().stop(machine.now());
            trace::TraceBundle bundle =
                machine.session().takeBundle();
            auto metrics =
                analysis::analyzeApp(bundle, "handbrake");
            return metrics.frames.avgFps; // all copies' frames
        };
        double solo = run(1);
        double both = run(2);
        table.row()
            .cell(std::string(enabled ? "on" : "off"))
            .cell(solo, 1)
            .cell(both, 1)
            .cell(both / (2.0 * solo), 2);
    }
    table.print(std::cout);
    std::printf("   -> with the model on, the oversubscribed LLC "
                "caps the co-run below 2x a half-share — the "
                "chip-level cache pressure VTune hinted at.\n");
}

} // namespace

int
main()
{
    bench::banner("Ablations - machine-model design choices",
                  "DESIGN.md section 4");
    ablationSmtFactor();
    ablationTurbo();
    ablationQuantum();
    ablationGpuQueues();
    ablationLlc();
    return 0;
}

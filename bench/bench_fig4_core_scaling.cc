/**
 * @file
 * Figure 4: TLP of the highest-TLP application in each category for
 * 4, 8 and 12 active logical cores (SMT on), against the ideal
 * linear line. EasyMiner tracks ideal; HandBrake and Photoshop scale
 * sub-linearly; Project CARS 2 saturates ~5; Chrome, VLC, Excel and
 * Cortana stay pinned near 2.
 */

#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_util.hh"
#include "report/figure.hh"

using namespace deskpar;

int
main()
{
    bench::banner("Figure 4 - impact of core scaling on TLP",
                  "Section V-C-1, Figure 4");

    apps::RunOptions options = bench::paperRunOptions();

    const std::vector<std::string> kApps = {
        "easyminer", "handbrake", "photoshop", "projectcars2",
        "chrome",    "vlc",       "excel",     "cortana"};
    const std::vector<unsigned> kCores = {4, 8, 12};

    report::Figure figure("Figure 4: TLP vs active logical cores",
                          "logical cores", "TLP");
    auto &ideal = figure.addSeries("Ideal");
    for (unsigned cores : kCores)
        ideal.add(cores, cores);

    report::TextTable table(
        {"Application", "4 cores", "8 cores", "12 cores"});

    for (const auto &id : kApps) {
        auto &series =
            figure.addSeries(apps::makeWorkload(id)->spec().name);
        table.row().cell(apps::makeWorkload(id)->spec().name);
        for (unsigned cores : kCores) {
            apps::RunOptions sweep = options;
            sweep.config.activeCpus = cores;
            apps::AppRunResult result = apps::runWorkload(id, sweep);
            series.add(cores, result.tlp());
            table.cell(result.tlp(), 1);
        }
    }

    table.print(std::cout);
    std::printf("\n");
    figure.printAscii(std::cout, 60, 14);
    std::printf("\nExpected shape: EasyMiner ~linear with the ideal "
                "line; HandBrake/Photoshop sub-linear; Project CARS 2 "
                "saturating ~5;\nChrome/VLC/Excel/Cortana flat near "
                "2 (nothing more to exploit).\n");
    return 0;
}

/**
 * @file
 * Figure 4: TLP of the highest-TLP application in each category for
 * 4, 8 and 12 active logical cores (SMT on), against the ideal
 * linear line. EasyMiner tracks ideal; HandBrake and Photoshop scale
 * sub-linearly; Project CARS 2 saturates ~5; Chrome, VLC, Excel and
 * Cortana stay pinned near 2.
 */

#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_util.hh"
#include "report/figure.hh"

using namespace deskpar;

int
main()
{
    bench::banner("Figure 4 - impact of core scaling on TLP",
                  "Section V-C-1, Figure 4");

    bench::SuiteTimer timer("bench_fig4_core_scaling");
    apps::RunOptions options = bench::paperRunOptions();

    const std::vector<std::string> kApps = {
        "easyminer", "handbrake", "photoshop", "projectcars2",
        "chrome",    "vlc",       "excel",     "cortana"};
    const std::vector<unsigned> kCores = {4, 8, 12};

    report::Figure figure("Figure 4: TLP vs active logical cores",
                          "logical cores", "TLP");
    auto &ideal = figure.addSeries("Ideal");
    for (unsigned cores : kCores)
        ideal.add(cores, cores);

    report::TextTable table(
        {"Application", "4 cores", "8 cores", "12 cores"});

    // The whole (app x core-count) sweep is one parallel batch.
    std::vector<apps::SuiteJob> jobs;
    for (const auto &id : kApps) {
        for (unsigned cores : kCores) {
            apps::RunOptions sweep = options;
            sweep.config.activeCpus = cores;
            jobs.push_back(apps::suiteJob(id, sweep));
            jobs.back().label =
                id + "@" + std::to_string(cores) + "c";
        }
    }
    std::vector<apps::AppRunResult> results =
        bench::runSuiteParallel(jobs);

    std::size_t next = 0;
    for (std::size_t app = 0; app < kApps.size(); ++app) {
        auto &series = figure.addSeries(results[next].agg.app);
        table.row().cell(results[next].agg.app);
        for (unsigned cores : kCores) {
            const apps::AppRunResult &result = results[next++];
            // Fused query path; see bench::fusedTlp.
            double tlp = bench::fusedTlp(result);
            series.add(cores, tlp);
            table.cell(tlp, 1);
        }
    }

    table.print(std::cout);
    std::printf("\n");
    figure.printAscii(std::cout, 60, 14);
    std::printf("\nExpected shape: EasyMiner ~linear with the ideal "
                "line; HandBrake/Photoshop sub-linear; Project CARS 2 "
                "saturating ~5;\nChrome/VLC/Excel/Cortana flat near "
                "2 (nothing more to exploit).\n");
    return 0;
}

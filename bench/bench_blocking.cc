/**
 * @file
 * Wakeup-chain bottleneck microbenchmark plus the suite-wide
 * serialization table. Part one times blocking::analyze two ways
 * over one recorded oversubscribed trace (the GPU-less miner, whose
 * ready queue is always deep) — the sequential reference
 * (blocking::legacy::analyze) and the fused path (per-thread folds
 * fanned out) — verifies the reports are EXPECT_EQ-identical at
 * 1/2/7 worker threads, and records both wall times as
 * micro_blocking_* bench records for the bench_compare gate. Part
 * two runs all 30 applications and classifies each as
 * bottleneck-limited (runnable threads denied CPUs, wait-TLP >= 0.5)
 * or structurally serial — the GAPP-style answer to *why* a low-TLP
 * app is low.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <iostream>
#include <map>
#include <utility>
#include <vector>

#include "analysis/blocking.hh"
#include "bench_util.hh"

using namespace deskpar;

int
main()
{
    bench::banner(
        "Wakeup-chain bottleneck analysis - fused vs sequential",
        "GAPP-style serialization attribution over Section III traces");

    bench::SuiteTimer timer("bench_blocking");
    apps::RunOptions options = bench::paperRunOptions();

    // --- Part one: A/B over one contended trace. -------------------
    // The miner pinned to 2 logical CPUs oversubscribes the machine,
    // so every dispatch carries a real ready-queue wait and the
    // report exercises edges and the critical path, not just run
    // segments.
    apps::RunOptions contended = options;
    contended.config.activeCpus = 2;
    std::vector<apps::SuiteJob> jobs = {
        apps::suiteJob("bitcoinminer", contended)};
    apps::AppRunResult miner =
        std::move(bench::runSuiteParallel(jobs).front());
    const trace::TraceBundle &bundle = miner.lastBundle;

    std::printf("trace: %zu cswitches, %.1f s, %u cpus\n",
                bundle.cswitches.size(),
                sim::toSeconds(bundle.duration()),
                bundle.numLogicalCpus);

    constexpr int kReps = 5;
    constexpr int kInner = 4;
    using Clock = std::chrono::steady_clock;

    analysis::blocking::BlockingReport reference;
    double bestSeq = 1e300;
    for (int rep = 0; rep < kReps; ++rep) {
        Clock::time_point start = Clock::now();
        for (int i = 0; i < kInner; ++i) {
            auto r = analysis::blocking::legacy::analyze(
                bundle, miner.lastPids);
            if (rep == 0 && i == 0)
                reference = std::move(r);
        }
        std::chrono::duration<double> wall = Clock::now() - start;
        bestSeq = std::min(bestSeq, wall.count());
    }

    analysis::Session session(bundle);
    analysis::blocking::BlockingReport fused;
    double bestFused = 1e300;
    for (int rep = 0; rep < kReps; ++rep) {
        Clock::time_point start = Clock::now();
        for (int i = 0; i < kInner; ++i) {
            auto r = analysis::blocking::analyze(session.index(),
                                                 miner.lastPids);
            if (rep == 0 && i == 0)
                fused = std::move(r);
        }
        std::chrono::duration<double> wall = Clock::now() - start;
        bestFused = std::min(bestFused, wall.count());
    }

    if (!(fused == reference)) {
        std::fprintf(stderr,
                     "FAIL: fused report differs from the sequential "
                     "reference\n");
        return 1;
    }
    for (unsigned threads : {1u, 2u, 7u}) {
        if (!(analysis::blocking::analyze(session.index(),
                                          miner.lastPids, threads) ==
              reference)) {
            std::fprintf(stderr,
                         "FAIL: report differs at %u threads\n",
                         threads);
            return 1;
        }
    }
    std::printf("reports: fused == sequential reference, "
                "bit-identical at 1/2/7 threads\n");
    std::printf("\n%s\n",
                analysis::blocking::renderReport(reference, 5)
                    .c_str());

    std::printf("sequential %.3f ms/report, fused %.3f ms/report\n",
                bestSeq * 1e3 / kInner, bestFused * 1e3 / kInner);
    bench::appendBenchRecord("micro_blocking_sequential", bestSeq);
    bench::appendBenchRecord("micro_blocking_fused", bestFused);

    // --- Part two: the suite-wide classification table. ------------
    std::vector<apps::SuiteJob> suiteJobs;
    for (const auto &entry : apps::tableTwoSuite())
        suiteJobs.push_back(apps::suiteJob(entry.id, options));
    std::vector<apps::AppRunResult> results =
        bench::runSuiteParallel(suiteJobs);

    report::TextTable table({"Category", "Application", "TLP",
                             "Wait-TLP", "Serial frac.",
                             "Classification"});
    unsigned bottlenecked = 0;
    std::size_t next = 0;
    for (const auto &entry : apps::tableTwoSuite()) {
        const apps::AppRunResult &result = results[next++];
        analysis::Session appSession(result.lastBundle);
        analysis::blocking::BlockingReport report =
            appSession.bottlenecks(result.lastPids);
        if (report.bottleneckLimited())
            ++bottlenecked;
        table.row()
            .cell(entry.category)
            .cell(result.agg.app)
            .cell(result.tlp(), 2)
            .cell(report.waitTlp(), 2)
            .cell(report.serialFraction(), 2)
            .cell(report.classification());
    }
    table.print(std::cout);
    std::printf("\nSummary: %u of %zu apps are bottleneck-limited "
                "(runnable threads were denied CPUs); the rest are "
                "structurally serial.\n",
                bottlenecked, results.size());
    return 0;
}

/**
 * @file
 * Figure 13: instantaneous frame rate of Project CARS 2 on Oculus
 * Rift, HTC Vive and HTC Vive Pro with 6 SMT cores. The Rift holds
 * the steadiest rate; the Vive headsets dip toward 45 FPS whenever
 * the render misses its slot and reprojection fills in. (Counted on
 * real — non-synthesized — frames, which is what distinguishes a
 * reprojected stream from a rendered one.)
 */

#include <cstdio>
#include <iostream>

#include "analysis/framerate.hh"
#include "apps/vr.hh"
#include "bench_util.hh"

using namespace deskpar;

namespace {

analysis::TimeSeries
realFrameSeries(const trace::TraceBundle &bundle,
                const trace::PidSet &pids, sim::SimDuration window)
{
    // Drop synthesized frames, then reuse the standard series.
    trace::TraceBundle real = bundle;
    std::erase_if(real.frames, [&](const trace::FrameEvent &f) {
        return f.synthesized ||
               (!pids.empty() && pids.count(f.pid) == 0);
    });
    return analysis::frameRateSeries(real, pids, window);
}

} // namespace

int
main()
{
    bench::banner("Figure 13 - Project CARS 2 frame pacing",
                  "Section V-F, Figure 13");

    bench::SuiteTimer timer("bench_fig13_vr_framerate");

    const apps::Headset kHeadsets[] = {apps::Headset::rift(),
                                       apps::Headset::vive(),
                                       apps::Headset::vivePro()};

    for (unsigned cores : {12u, 4u}) {
        std::printf("--- %u logical cores (SMT on) ---\n", cores);
        report::Figure figure(
            "Instantaneous real-frame rate, Project CARS 2, " +
                std::to_string(cores) + " logical cores",
            "time (s)", "FPS");
        report::TextTable table({"Headset", "Avg FPS (presented)",
                                 "Avg FPS (real)", "FPS stddev",
                                 "1% low FPS"});

        for (const auto &headset : kHeadsets) {
            apps::RunOptions options = bench::paperRunOptions();
            options.iterations = 1;
            options.config.activeCpus = cores;
            auto model = apps::makeVrGame(
                apps::VrGame::ProjectCars2, headset);
            apps::AppRunResult result =
                apps::runWorkload(*model, options);

            auto series = realFrameSeries(result.lastBundle,
                                          result.lastPids,
                                          sim::msec(500));
            auto &s = figure.addSeries(headset.name);
            for (const auto &point : series.points)
                s.add(sim::toSeconds(point.t), point.value);

            const auto &frames =
                result.iterations.back().metrics.frames;
            table.row()
                .cell(headset.name)
                .cell(result.fps.mean(), 1)
                .cell(result.realFps.mean(), 1)
                .cell(frames.fpsStddev, 1)
                .cell(frames.onePercentLowFps, 1);
        }

        table.print(std::cout);
        std::printf("\n");
        figure.printAscii(std::cout, 72, 14);
        std::printf("\n");
    }
    std::printf(
        "Expected shape: at 6 SMT cores (12 logical) the Rift is the "
        "steadiest near 90 FPS with the Vive headsets dipping during "
        "heavy scenes;\nat 4 logical cores the Rift clamps to a "
        "stable 45 FPS (ASW) while Vive/Vive Pro oscillate between "
        "90 and 45 (asynchronous reprojection).\n");
    return 0;
}

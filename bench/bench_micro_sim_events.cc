/**
 * @file
 * Event-queue microbenchmark: simulated-events/sec of the 4-ary
 * implicit-heap EventQueue (sim/event_queue.hh) A/B against the
 * preserved binary-heap + std::function implementation
 * (sim/event_queue_legacy.hh).
 *
 * The churn is the simulator's real steady-state pattern: a fixed
 * population of self-rescheduling events with pseudo-random delays
 * (timer wheels, thread wakeups), callbacks whose captures carry a
 * label string (the input-driver shape that pushed std::function
 * past its SSO into malloc), and a steady trickle of
 * cancel-and-rearm (quantum preemption). Both queues execute the
 * byte-for-byte identical schedule — same LCG, same pop order by
 * the differential-tested contract — so the wall-time ratio is pure
 * implementation cost.
 *
 * Records micro_sim_events / micro_sim_events_legacy bench records
 * and fails unless the new queue is at least
 * DESKPAR_SIM_EVENTS_MIN_SPEEDUP (default 2.0) times faster.
 */

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.hh"
#include "sim/event_queue.hh"
#include "sim/event_queue_legacy.hh"

using namespace deskpar;

namespace {

/**
 * Drives one queue through the churn script. Deterministic: every
 * decision comes from the LCG, which both queue types consume in the
 * same order because pop order is identical.
 */
template <typename Queue>
struct Churner
{
    Queue queue;
    std::vector<typename Queue::Handle> handles;
    std::uint64_t fired = 0;
    std::uint64_t armed = 0;
    std::uint64_t target = 0;
    std::uint64_t lcg = 0x9e3779b97f4a7c15ULL;
    std::uint64_t sink = 0;
    // The realistic capture: event delivery carries its label
    // payload. Trivially copyable so the payload itself costs the
    // same on both sides — the measured difference is what the
    // queues do with a 40-byte closure (legacy std::function heap-
    // allocates it; InlineCallback keeps it inline).
    struct Label
    {
        char text[24];
    };
    Label label = {"bench.input.keystroke"};

    sim::SimDuration
    nextDelay()
    {
        lcg = lcg * 6364136223846793005ULL +
              1442695040888963407ULL;
        // 1..5000 ticks: heap depths of a few thousand, like a
        // full-suite machine mid-run. Multiply-shift scaling, not
        // `%`: a per-event integer division would be driver noise
        // paid identically on both sides.
        return static_cast<sim::SimDuration>(
            1 + (((lcg >> 32) * 5000) >> 32));
    }

    void
    arm(std::size_t slot)
    {
        ++armed;
        // this + slot + the label: 40 bytes of capture. Fits
        // InlineCallback's inline storage; blows past
        // std::function's SSO.
        handles[slot] = queue.scheduleAfter(
            nextDelay(), [this, slot, tag = label]() {
                sink += static_cast<unsigned char>(tag.text[0]);
                fire(slot);
            });
    }

    void
    fire(std::size_t slot)
    {
        ++fired;
        if (armed < target)
            arm(slot);
        // Preemption trickle: every 16th fire cancels a victim's
        // pending event and re-arms it, leaving a stale heap entry
        // behind for pop to skip.
        if ((fired & 15) == 0 && armed < target) {
            lcg = lcg * 6364136223846793005ULL +
                  1442695040888963407ULL;
            std::size_t victim = (lcg >> 33) % handles.size();
            if (handles[victim].pending()) {
                queue.cancel(handles[victim]);
                arm(victim);
            }
        }
    }

    /** Run the whole script; returns events fired. */
    std::uint64_t
    run(std::size_t population, std::uint64_t totalArmed)
    {
        handles.resize(population);
        target = totalArmed;
        for (std::size_t slot = 0; slot < population; ++slot)
            arm(slot);
        queue.runAll();
        return fired;
    }
};

} // namespace

int
main()
{
    bench::banner("Event-queue throughput - 4-ary heap vs legacy "
                  "binary heap",
                  "simulation substrate, Section III methodology");

    std::size_t population = 4096;
    std::uint64_t totalArmed = 1'500'000;
    unsigned reps = 5;
    if (const char *fast = std::getenv("DESKPAR_FAST");
        fast && fast[0] == '1') {
        totalArmed = 300'000;
        reps = 3;
    }

    std::printf("population %zu pending, %llu scheduled events, "
                "min of %u reps\n\n",
                population,
                static_cast<unsigned long long>(totalArmed), reps);

    // One pilot run of each to cross-check the two executions are
    // the same script (identical fire counts and final clocks).
    std::uint64_t firedLegacy = 0, firedNew = 0;
    sim::SimTime endLegacy = 0, endNew = 0;
    {
        Churner<sim::legacy::EventQueue> pilot;
        firedLegacy = pilot.run(population, totalArmed);
        endLegacy = pilot.queue.now();
    }
    {
        Churner<sim::EventQueue> pilot;
        pilot.queue.reserve(population);
        firedNew = pilot.run(population, totalArmed);
        endNew = pilot.queue.now();
    }
    if (firedLegacy != firedNew || endLegacy != endNew) {
        std::fprintf(stderr,
                     "FAIL: executions diverge (fired %llu vs %llu, "
                     "end %lld vs %lld)\n",
                     static_cast<unsigned long long>(firedLegacy),
                     static_cast<unsigned long long>(firedNew),
                     static_cast<long long>(endLegacy),
                     static_cast<long long>(endNew));
        return 1;
    }

    double wallLegacy = bench::minWallSeconds(reps, [&]() {
        Churner<sim::legacy::EventQueue> churner;
        churner.run(population, totalArmed);
    });
    double wallNew = bench::minWallSeconds(reps, [&]() {
        Churner<sim::EventQueue> churner;
        churner.queue.reserve(population);
        churner.run(population, totalArmed);
    });

    double speedup = wallLegacy / wallNew;
    std::printf("legacy  %8.3f ms  (%6.1f M events/s)\n",
                wallLegacy * 1e3,
                static_cast<double>(firedLegacy) / wallLegacy / 1e6);
    std::printf("4-ary   %8.3f ms  (%6.1f M events/s)\n",
                wallNew * 1e3,
                static_cast<double>(firedNew) / wallNew / 1e6);
    std::printf("speedup %.2fx; %llu inline-callback heap "
                "fallbacks process-wide\n",
                speedup,
                static_cast<unsigned long long>(
                    sim::InlineCallback::heapFallbacks()));

    bench::appendBenchRecord("micro_sim_events_legacy", wallLegacy);
    bench::appendBenchRecord("micro_sim_events", wallNew);

    double minSpeedup = 2.0;
    if (const char *env =
            std::getenv("DESKPAR_SIM_EVENTS_MIN_SPEEDUP"))
        minSpeedup = std::strtod(env, nullptr);
    if (speedup < minSpeedup) {
        std::fprintf(stderr,
                     "FAIL: event-queue speedup %.2fx is below the "
                     "%.2fx floor\n",
                     speedup, minSpeedup);
        return 1;
    }
    std::printf("PASS: event-queue speedup %.2fx >= %.2fx floor\n",
                speedup, minSpeedup);
    return 0;
}

/**
 * @file
 * Figure 5: instantaneous TLP and GPU utilization over time for
 * HandBrake at 4/8/12 logical cores (SMT on). The TLP rides at the
 * core count with periodic serialization troughs; the transcode rate
 * scales with core count (so the same clip finishes proportionally
 * faster); GPU utilization stays under 1%.
 */

#include "bench_util.hh"

using namespace deskpar;

int
main()
{
    bench::banner(
        "Figure 5 - HandBrake instantaneous TLP/GPU vs cores",
        "Section V-C-1, Figure 5");

    bench::SuiteTimer timer("bench_fig5_handbrake_timeline");
    bench::runTimelineFigure("handbrake", {4, 8, 12},
                             sim::msec(250));
    std::printf("\nExpected shape: TLP pinned near the active core "
                "count with periodic drops (muxing); frame rate "
                "roughly proportional to cores; GPU < 1%%.\n");
    return 0;
}

/**
 * @file
 * `deskpar serve` residency microbenchmark: the one number the
 * daemon exists for is the gap between a cold open (fresh server,
 * first request pays mmap + ingest + index) and a warm request
 * against the resident SessionCache. Measures both end-to-end over
 * a real AF_UNIX socket with the library Client, checks the warm
 * responses stay byte-identical to the cold one, then drives 8
 * concurrent clients against the resident server for a throughput
 * figure. Records micro_serve_cold / micro_serve_warm;
 * DESKPAR_SERVE_MIN_WARM_SPEEDUP (default 5) sets the cold/warm
 * floor — the run fails below it. The default sits far under the
 * measured gap (ingest is milliseconds, a warm fused query is tens
 * of microseconds) so the gate catches residency regressions, not
 * scheduler noise.
 */

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "analysis/index_cache.hh"
#include "bench_util.hh"
#include "serve/client.hh"
#include "serve/protocol.hh"
#include "serve/server.hh"
#include "trace/etl.hh"

using namespace deskpar;

namespace {

namespace fs = std::filesystem;

double
envFloor(const char *name, double fallback)
{
    if (const char *value = std::getenv(name))
        return std::atof(value);
    return fallback;
}

/**
 * A trace big enough that its ingest dominates a request: ~400k
 * context switches across 8 CPUs and six app processes (DESKPAR_FAST
 * trims it for smoke runs).
 */
trace::TraceBundle
benchBundle(unsigned cswitches)
{
    trace::TraceBundle bundle;
    bundle.startTime = 1000;
    bundle.numLogicalCpus = 8;
    bundle.processNames[0] = "Idle";
    for (trace::Pid pid = 1000; pid < 1006; ++pid)
        bundle.processNames[pid] =
            "app-" + std::to_string(pid - 1000);

    std::uint64_t state = 42;
    auto next = [&state] {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        return state;
    };
    for (unsigned i = 0; i < cswitches; ++i) {
        trace::CSwitchEvent cs;
        cs.timestamp = 1000 + 400ull * i + next() % 100;
        cs.cpu = static_cast<unsigned>(next() % 8);
        cs.oldPid = i % 2 ? 1000 + trace::Pid(next() % 6) : 0;
        cs.oldTid = cs.oldPid * 10 + 1;
        cs.newPid = i % 2 ? 0 : 1000 + trace::Pid(next() % 6);
        cs.newTid = cs.newPid * 10 + 1;
        cs.readyTime = cs.timestamp - next() % 900;
        bundle.cswitches.push_back(cs);
    }
    bundle.stopTime = bundle.cswitches.back().timestamp + 1000;
    return bundle;
}

/** connect + one query round-trip; returns the result document. */
std::string
oneQuery(const std::string &socketPath, const std::string &request)
{
    serve::Client client;
    std::string error;
    if (!client.connect(socketPath, error)) {
        std::fprintf(stderr, "bench_serve: connect: %s\n",
                     error.c_str());
        std::exit(1);
    }
    std::string response;
    if (!client.call(request, response, error)) {
        std::fprintf(stderr, "bench_serve: call: %s\n",
                     error.c_str());
        std::exit(1);
    }
    std::string document;
    if (!serve::extractResult(response, document)) {
        std::fprintf(stderr, "bench_serve: error response: %s\n",
                     response.c_str());
        std::exit(1);
    }
    return document;
}

} // namespace

int
main()
{
    bench::banner("deskpar serve: resident vs cold request latency",
                  "service extension; Section V analysis toolchain");

    bool fast = false;
    if (const char *env = std::getenv("DESKPAR_FAST");
        env && env[0] == '1')
        fast = true;
    const unsigned cswitches = fast ? 100000 : 400000;
    const unsigned repeats = fast ? 3 : 5;

    std::string tag = std::to_string(::getpid());
    fs::path tracePath =
        fs::temp_directory_path() / ("bench_serve_" + tag + ".etl");
    trace::writeEtl(benchBundle(cswitches), tracePath.string());
    fs::remove(analysis::indexCachePath(tracePath.string()));

    const std::string request =
        R"({"op":"query","trace":")" + tracePath.string() +
        R"(","app":"app-","specs":["tlp","busy","csrate"]})";

    // Cold: a fresh server per repeat — every request is the first
    // request, paying the full open. (The .dpidx spill cache is
    // removed each round so disk state cannot warm the open either.)
    double cold = bench::minWallSeconds(repeats, [&] {
        fs::remove(analysis::indexCachePath(tracePath.string()));
        serve::ServerOptions options;
        options.socketPath = "/tmp/dsb_c" + tag + ".sock";
        options.workers = 2;
        serve::Server server(options);
        server.start();
        oneQuery(options.socketPath, request);
        server.stop();
    });

    // Warm: one resident server; prime it, then take the fastest of
    // N round-trips. Responses must stay byte-identical to the
    // priming (cold) response — residency must not change results.
    serve::ServerOptions options;
    options.socketPath = "/tmp/dsb_w" + tag + ".sock";
    options.workers = 4;
    serve::Server server(options);
    server.start();
    std::string primed = oneQuery(options.socketPath, request);
    double warm = bench::minWallSeconds(repeats * 4, [&] {
        std::string document = oneQuery(options.socketPath, request);
        if (document != primed) {
            std::fprintf(stderr,
                         "bench_serve: warm response diverged from "
                         "cold response\n");
            std::exit(1);
        }
    });

    // Throughput: 8 concurrent clients, a burst of requests each,
    // all against the one resident entry.
    const unsigned clients = 8;
    const unsigned perClient = fast ? 8 : 25;
    auto start = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    for (unsigned c = 0; c < clients; ++c) {
        threads.emplace_back([&] {
            for (unsigned i = 0; i < perClient; ++i)
                oneQuery(options.socketPath, request);
        });
    }
    for (std::thread &t : threads)
        t.join();
    double burst = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();
    server.stop();

    double speedup = warm > 0 ? cold / warm : 0.0;
    std::printf("trace: %u cswitches (%s)\n", cswitches,
                tracePath.c_str());
    std::printf("cold request (fresh server): %8.3f ms\n",
                cold * 1e3);
    std::printf("warm request (resident):     %8.3f ms\n",
                warm * 1e3);
    std::printf("warm/cold speedup:           %8.1fx\n", speedup);
    std::printf("%u clients x %u reqs burst:  %8.3f s "
                "(%.0f req/s)\n",
                clients, perClient, burst,
                clients * perClient / burst);

    bench::appendBenchRecord("micro_serve_cold", cold);
    bench::appendBenchRecord("micro_serve_warm", warm);

    fs::remove(tracePath);
    fs::remove(analysis::indexCachePath(tracePath.string()));

    double floor =
        envFloor("DESKPAR_SERVE_MIN_WARM_SPEEDUP", 5.0);
    if (speedup < floor) {
        std::fprintf(stderr,
                     "bench_serve: FAIL warm speedup %.1fx under "
                     "floor %.1fx\n",
                     speedup, floor);
        return 1;
    }
    std::printf("\nserve gate OK (floor %.1fx)\n", floor);
    return 0;
}

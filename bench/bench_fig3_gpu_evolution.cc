/**
 * @file
 * Figure 3: GPU utilization of desktop applications in 2010 (Blake
 * et al., GTX 285) versus 2018 (this reproduction, GTX 1080 Ti).
 * The paper's observation: all non-VR categories show *lower*
 * utilization on the 2018 GPU because GPU resources grew ~15x faster
 * than offloaded work, while VR matches 2010 3D-gaming utilization.
 */

#include <cstdio>
#include <iostream>
#include <map>
#include <vector>

#include "bench_util.hh"
#include "report/history.hh"

using namespace deskpar;

int
main()
{
    bench::banner("Figure 3 - GPU utilization 2010 vs 2018",
                  "Section V-B, Figure 3");

    bench::SuiteTimer timer("bench_fig3_gpu_evolution");

    apps::RunOptions options = bench::paperRunOptions();

    const std::vector<std::pair<std::string, std::string>> kMeasured =
        {
            {"azsunshine", "VR Gaming"},
            {"fallout4", "VR Gaming"},
            {"rawdata", "VR Gaming"},
            {"serioussam", "VR Gaming"},
            {"spacepirate", "VR Gaming"},
            {"projectcars2", "VR Gaming"},
            {"maya", "Image Authoring"},
            {"photoshop", "Image Authoring"},
            {"autocad", "Image Authoring"},
            {"acrobat", "Office"},
            {"powerpoint", "Office"},
            {"word", "Office"},
            {"excel", "Office"},
            {"quicktime", "Media Playback"},
            {"wmplayer", "Media Playback"},
            {"vlc", "Media Playback"},
            {"powerdirector", "Video Authoring & Transcoding"},
            {"premiere", "Video Authoring & Transcoding"},
            {"handbrake", "Video Authoring & Transcoding"},
            {"winx", "Video Authoring & Transcoding"},
            {"firefox", "Web Browsing"},
            {"chrome", "Web Browsing"},
            {"edge", "Web Browsing"},
        };

    report::TextTable table(
        {"Category", "Application", "Year", "GPU util (%)"});
    std::map<std::string, std::map<int, analysis::RunningStat>>
        byCategory;

    for (const auto &entry : report::gpuHistory()) {
        table.row()
            .cell(entry.category)
            .cell(entry.app)
            .cell(std::to_string(entry.year))
            .cell(entry.value, 1);
        byCategory[entry.category][2010].add(entry.value);
    }

    for (const auto &[id, category] : kMeasured) {
        apps::AppRunResult result = apps::runWorkload(id, options);
        std::string name = apps::makeWorkload(id)->spec().name;
        table.row()
            .cell(category)
            .cell(name)
            .cell(std::string("2018"))
            .cell(result.gpuUtil(), 1);
        byCategory[category][2018].add(result.gpuUtil());
    }

    table.print(std::cout);

    std::printf("\nCategory means by year:\n");
    report::TextTable summary({"Category", "2010", "2018", "trend"});
    for (const auto &[category, years] : byCategory) {
        double y2010 = years.count(2010)
                           ? years.at(2010).mean()
                           : -1.0;
        double y2018 = years.count(2018)
                           ? years.at(2018).mean()
                           : -1.0;
        std::string trend = "-";
        if (y2010 >= 0.0 && y2018 >= 0.0)
            trend = y2018 < y2010 ? "lower" : "higher/equal";
        summary.row()
            .cell(category)
            .cell(y2010 < 0 ? "-" : report::formatNumber(y2010, 1))
            .cell(y2018 < 0 ? "-" : report::formatNumber(y2018, 1))
            .cell(trend);
    }
    summary.print(std::cout);

    std::printf("\nExpected shape: every non-VR category lower in "
                "2018 than 2010; VR gaming 2018 commensurate with "
                "3D gaming 2010 (60-90%%).\n");
    return 0;
}

/**
 * @file
 * google-benchmark micro-benchmarks for the measurement pipeline
 * itself: trace generation (simulation throughput), TLP computation,
 * GPU-utilization computation, ETL serialization and CSV export.
 * These quantify the toolkit's own costs, independent of the paper's
 * experiments.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <sstream>

#include "analysis/analyzer.hh"
#include "analysis/framerate.hh"
#include "analysis/gpu_util.hh"
#include "analysis/timeseries.hh"
#include "analysis/tlp.hh"
#include "analysis/trace_index.hh"
#include "apps/harness.hh"
#include "apps/registry.hh"
#include "trace/csv.hh"
#include "trace/etl.hh"

using namespace deskpar;

namespace {

/** One shared trace: HandBrake, 12 cores, 10 simulated seconds. */
const trace::TraceBundle &
sampleBundle()
{
    static const trace::TraceBundle kBundle = [] {
        apps::RunOptions options;
        options.iterations = 1;
        options.duration = sim::sec(10.0);
        auto result = apps::runWorkload("handbrake", options);
        return result.lastBundle;
    }();
    return kBundle;
}

const trace::PidSet &
samplePids()
{
    static const trace::PidSet kPids =
        trace::pidsWithPrefix(sampleBundle(), "handbrake");
    return kPids;
}

void
BM_SimulateSecond(benchmark::State &state)
{
    apps::RunOptions options;
    options.iterations = 1;
    options.duration = sim::sec(static_cast<double>(state.range(0)));
    for (auto _ : state) {
        auto result = apps::runWorkload("handbrake", options);
        benchmark::DoNotOptimize(result.tlp());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SimulateSecond)->Arg(1)->Arg(5);

void
BM_ComputeTlp(benchmark::State &state)
{
    const auto &bundle = sampleBundle();
    const auto &pids = samplePids();
    for (auto _ : state) {
        auto profile = analysis::computeConcurrency(bundle, pids);
        benchmark::DoNotOptimize(profile.tlp());
    }
    state.SetItemsProcessed(state.iterations() *
                            bundle.cswitches.size());
}
BENCHMARK(BM_ComputeTlp);

void
BM_ComputeGpuUtil(benchmark::State &state)
{
    const auto &bundle = sampleBundle();
    const auto &pids = samplePids();
    for (auto _ : state) {
        auto util = analysis::computeGpuUtil(bundle, pids);
        benchmark::DoNotOptimize(util.aggregateRatio);
    }
}
BENCHMARK(BM_ComputeGpuUtil);

void
BM_TlpTimeSeries(benchmark::State &state)
{
    const auto &bundle = sampleBundle();
    const auto &pids = samplePids();
    for (auto _ : state) {
        auto series =
            analysis::tlpSeries(bundle, pids, sim::msec(250));
        benchmark::DoNotOptimize(series.maxValue());
    }
}
BENCHMARK(BM_TlpTimeSeries);

/** Warm static index over the sample bundle (shared across benches). */
const analysis::TraceIndex &
sampleIndex()
{
    static analysis::TraceIndex index(sampleBundle());
    static const bool warmed =
        (index.warm(samplePids()), true);
    (void)warmed;
    return index;
}

void
BM_IndexBuild(benchmark::State &state)
{
    // Cold build plus one whole-window query: what one-shot callers
    // (the computeConcurrency wrapper) pay per bundle.
    const auto &bundle = sampleBundle();
    const auto &pids = samplePids();
    for (auto _ : state) {
        analysis::TraceIndex index(bundle);
        auto profile = index.concurrency(pids);
        benchmark::DoNotOptimize(profile.tlp());
    }
    state.SetItemsProcessed(state.iterations() *
                            bundle.cswitches.size());
}
BENCHMARK(BM_IndexBuild);

void
BM_IndexWindowQuery(benchmark::State &state)
{
    // Warm windowed query: the timeline figures' per-window cost.
    const auto &index = sampleIndex();
    const auto &bundle = sampleBundle();
    const auto &pids = samplePids();
    sim::SimTime t0 = bundle.startTime;
    sim::SimTime t1 = std::min(t0 + sim::msec(250), bundle.stopTime);
    for (auto _ : state) {
        auto profile = index.concurrency(pids, t0, t1);
        benchmark::DoNotOptimize(profile.tlp());
    }
}
BENCHMARK(BM_IndexWindowQuery);

void
BM_LegacyWindowSweep(benchmark::State &state)
{
    // The same 250 ms window via the legacy full sweep, for the
    // speedup ratio against BM_IndexWindowQuery.
    const auto &bundle = sampleBundle();
    const auto &pids = samplePids();
    sim::SimTime t0 = bundle.startTime;
    sim::SimTime t1 = std::min(t0 + sim::msec(250), bundle.stopTime);
    for (auto _ : state) {
        auto profile =
            analysis::legacy::computeConcurrency(bundle, pids, t0, t1);
        benchmark::DoNotOptimize(profile.tlp());
    }
}
BENCHMARK(BM_LegacyWindowSweep);

void
BM_IndexTlpTimeSeries(benchmark::State &state)
{
    // Full 250 ms-window TLP series on a warm index; compare against
    // BM_TlpTimeSeries (which builds its index per call).
    const auto &index = sampleIndex();
    const auto &pids = samplePids();
    for (auto _ : state) {
        auto series =
            analysis::tlpSeries(index, pids, sim::msec(250));
        benchmark::DoNotOptimize(series.maxValue());
    }
}
BENCHMARK(BM_IndexTlpTimeSeries);

void
BM_AnalyzeAppFused(benchmark::State &state)
{
    const auto &index = sampleIndex();
    const auto &pids = samplePids();
    for (auto _ : state) {
        auto metrics = analysis::analyzeApp(index, pids);
        benchmark::DoNotOptimize(metrics.tlp());
    }
}
BENCHMARK(BM_AnalyzeAppFused);

void
BM_AnalyzeAppLegacy(benchmark::State &state)
{
    // The pre-index composition: three independent full sweeps.
    const auto &bundle = sampleBundle();
    const auto &pids = samplePids();
    for (auto _ : state) {
        analysis::AppMetrics metrics;
        metrics.concurrency =
            analysis::legacy::computeConcurrency(bundle, pids);
        metrics.gpu = analysis::legacy::computeGpuUtil(bundle, pids);
        metrics.frames =
            analysis::legacy::computeFrameStats(bundle, pids);
        benchmark::DoNotOptimize(metrics.tlp());
    }
}
BENCHMARK(BM_AnalyzeAppLegacy);

void
BM_EtlWrite(benchmark::State &state)
{
    const auto &bundle = sampleBundle();
    for (auto _ : state) {
        std::ostringstream out;
        trace::writeEtl(bundle, out);
        benchmark::DoNotOptimize(out.str().size());
    }
    state.SetItemsProcessed(state.iterations() *
                            bundle.totalEvents());
}
BENCHMARK(BM_EtlWrite);

void
BM_EtlRoundTrip(benchmark::State &state)
{
    const auto &bundle = sampleBundle();
    std::ostringstream out;
    trace::writeEtl(bundle, out);
    const std::string data = out.str();
    for (auto _ : state) {
        std::istringstream in(data);
        auto loaded = trace::readEtl(in);
        benchmark::DoNotOptimize(loaded.cswitches.size());
    }
    state.SetBytesProcessed(state.iterations() * data.size());
}
BENCHMARK(BM_EtlRoundTrip);

void
BM_CsvExport(benchmark::State &state)
{
    const auto &bundle = sampleBundle();
    for (auto _ : state) {
        std::ostringstream out;
        trace::writeCpuUsageCsv(bundle, out);
        benchmark::DoNotOptimize(out.str().size());
    }
}
BENCHMARK(BM_CsvExport);

} // namespace

BENCHMARK_MAIN();

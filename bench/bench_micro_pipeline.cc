/**
 * @file
 * google-benchmark micro-benchmarks for the measurement pipeline
 * itself: trace generation (simulation throughput), TLP computation,
 * GPU-utilization computation, ETL serialization and CSV export.
 * These quantify the toolkit's own costs, independent of the paper's
 * experiments.
 */

#include <benchmark/benchmark.h>

#include <sstream>

#include "analysis/gpu_util.hh"
#include "analysis/timeseries.hh"
#include "analysis/tlp.hh"
#include "apps/harness.hh"
#include "apps/registry.hh"
#include "trace/csv.hh"
#include "trace/etl.hh"

using namespace deskpar;

namespace {

/** One shared trace: HandBrake, 12 cores, 10 simulated seconds. */
const trace::TraceBundle &
sampleBundle()
{
    static const trace::TraceBundle kBundle = [] {
        apps::RunOptions options;
        options.iterations = 1;
        options.duration = sim::sec(10.0);
        auto result = apps::runWorkload("handbrake", options);
        return result.lastBundle;
    }();
    return kBundle;
}

const trace::PidSet &
samplePids()
{
    static const trace::PidSet kPids =
        trace::pidsWithPrefix(sampleBundle(), "handbrake");
    return kPids;
}

void
BM_SimulateSecond(benchmark::State &state)
{
    apps::RunOptions options;
    options.iterations = 1;
    options.duration = sim::sec(static_cast<double>(state.range(0)));
    for (auto _ : state) {
        auto result = apps::runWorkload("handbrake", options);
        benchmark::DoNotOptimize(result.tlp());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SimulateSecond)->Arg(1)->Arg(5);

void
BM_ComputeTlp(benchmark::State &state)
{
    const auto &bundle = sampleBundle();
    const auto &pids = samplePids();
    for (auto _ : state) {
        auto profile = analysis::computeConcurrency(bundle, pids);
        benchmark::DoNotOptimize(profile.tlp());
    }
    state.SetItemsProcessed(state.iterations() *
                            bundle.cswitches.size());
}
BENCHMARK(BM_ComputeTlp);

void
BM_ComputeGpuUtil(benchmark::State &state)
{
    const auto &bundle = sampleBundle();
    const auto &pids = samplePids();
    for (auto _ : state) {
        auto util = analysis::computeGpuUtil(bundle, pids);
        benchmark::DoNotOptimize(util.aggregateRatio);
    }
}
BENCHMARK(BM_ComputeGpuUtil);

void
BM_TlpTimeSeries(benchmark::State &state)
{
    const auto &bundle = sampleBundle();
    const auto &pids = samplePids();
    for (auto _ : state) {
        auto series =
            analysis::tlpSeries(bundle, pids, sim::msec(250));
        benchmark::DoNotOptimize(series.maxValue());
    }
}
BENCHMARK(BM_TlpTimeSeries);

void
BM_EtlWrite(benchmark::State &state)
{
    const auto &bundle = sampleBundle();
    for (auto _ : state) {
        std::ostringstream out;
        trace::writeEtl(bundle, out);
        benchmark::DoNotOptimize(out.str().size());
    }
    state.SetItemsProcessed(state.iterations() *
                            bundle.totalEvents());
}
BENCHMARK(BM_EtlWrite);

void
BM_EtlRoundTrip(benchmark::State &state)
{
    const auto &bundle = sampleBundle();
    std::ostringstream out;
    trace::writeEtl(bundle, out);
    const std::string data = out.str();
    for (auto _ : state) {
        std::istringstream in(data);
        auto loaded = trace::readEtl(in);
        benchmark::DoNotOptimize(loaded.cswitches.size());
    }
    state.SetBytesProcessed(state.iterations() * data.size());
}
BENCHMARK(BM_EtlRoundTrip);

void
BM_CsvExport(benchmark::State &state)
{
    const auto &bundle = sampleBundle();
    for (auto _ : state) {
        std::ostringstream out;
        trace::writeCpuUsageCsv(bundle, out);
        benchmark::DoNotOptimize(out.str().size());
    }
}
BENCHMARK(BM_CsvExport);

} // namespace

BENCHMARK_MAIN();

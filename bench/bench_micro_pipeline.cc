/**
 * @file
 * google-benchmark micro-benchmarks for the measurement pipeline
 * itself: trace generation (simulation throughput), TLP computation,
 * GPU-utilization computation, ETL serialization and CSV export, and
 * trace ingestion (legacy istream vs zero-copy mapped vs parallel
 * chunked). These quantify the toolkit's own costs, independent of
 * the paper's experiments.
 *
 * The custom main() additionally runs a timed ingest record pass
 * whose wall times land in BENCH_suite.json (SuiteTimer) so
 * tools/bench_compare gates ingest throughput run over run; CI runs
 * just that part via --benchmark_filter.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <functional>
#include <sstream>

#include "analysis/analyzer.hh"
#include "analysis/framerate.hh"
#include "analysis/gpu_util.hh"
#include "analysis/timeseries.hh"
#include "analysis/tlp.hh"
#include "analysis/trace_index.hh"
#include "apps/harness.hh"
#include "apps/registry.hh"
#include "bench_util.hh"
#include "obs/obs.hh"
#include "sim/parallel.hh"
#include "trace/csv.hh"
#include "trace/etl.hh"
#include "trace/io.hh"

using namespace deskpar;

namespace {

/** One shared trace: HandBrake, 12 cores, 10 simulated seconds. */
const trace::TraceBundle &
sampleBundle()
{
    static const trace::TraceBundle kBundle = [] {
        apps::RunOptions options;
        options.iterations = 1;
        options.duration = sim::sec(10.0);
        auto result = apps::runWorkload("handbrake", options);
        return result.lastBundle;
    }();
    return kBundle;
}

const trace::PidSet &
samplePids()
{
    static const trace::PidSet kPids =
        trace::pidsWithPrefix(sampleBundle(), "handbrake");
    return kPids;
}

void
BM_SimulateSecond(benchmark::State &state)
{
    apps::RunOptions options;
    options.iterations = 1;
    options.duration = sim::sec(static_cast<double>(state.range(0)));
    for (auto _ : state) {
        auto result = apps::runWorkload("handbrake", options);
        benchmark::DoNotOptimize(result.tlp());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SimulateSecond)->Arg(1)->Arg(5);

void
BM_ComputeTlp(benchmark::State &state)
{
    const auto &bundle = sampleBundle();
    const auto &pids = samplePids();
    for (auto _ : state) {
        auto profile = analysis::computeConcurrency(bundle, pids);
        benchmark::DoNotOptimize(profile.tlp());
    }
    state.SetItemsProcessed(state.iterations() *
                            bundle.cswitches.size());
}
BENCHMARK(BM_ComputeTlp);

void
BM_ComputeGpuUtil(benchmark::State &state)
{
    const auto &bundle = sampleBundle();
    const auto &pids = samplePids();
    for (auto _ : state) {
        auto util = analysis::computeGpuUtil(bundle, pids);
        benchmark::DoNotOptimize(util.aggregateRatio);
    }
}
BENCHMARK(BM_ComputeGpuUtil);

void
BM_TlpTimeSeries(benchmark::State &state)
{
    const auto &bundle = sampleBundle();
    const auto &pids = samplePids();
    for (auto _ : state) {
        auto series =
            analysis::tlpSeries(bundle, pids, sim::msec(250));
        benchmark::DoNotOptimize(series.maxValue());
    }
}
BENCHMARK(BM_TlpTimeSeries);

/** Warm static index over the sample bundle (shared across benches). */
const analysis::TraceIndex &
sampleIndex()
{
    static analysis::TraceIndex index(sampleBundle());
    static const bool warmed =
        (index.warm(samplePids()), true);
    (void)warmed;
    return index;
}

void
BM_IndexBuild(benchmark::State &state)
{
    // Cold build plus one whole-window query: what one-shot callers
    // (the computeConcurrency wrapper) pay per bundle.
    const auto &bundle = sampleBundle();
    const auto &pids = samplePids();
    for (auto _ : state) {
        analysis::TraceIndex index(bundle);
        auto profile = index.concurrency(pids);
        benchmark::DoNotOptimize(profile.tlp());
    }
    state.SetItemsProcessed(state.iterations() *
                            bundle.cswitches.size());
}
BENCHMARK(BM_IndexBuild);

void
BM_IndexWindowQuery(benchmark::State &state)
{
    // Warm windowed query: the timeline figures' per-window cost.
    const auto &index = sampleIndex();
    const auto &bundle = sampleBundle();
    const auto &pids = samplePids();
    sim::SimTime t0 = bundle.startTime;
    sim::SimTime t1 = std::min(t0 + sim::msec(250), bundle.stopTime);
    for (auto _ : state) {
        auto profile = index.concurrency(pids, t0, t1);
        benchmark::DoNotOptimize(profile.tlp());
    }
}
BENCHMARK(BM_IndexWindowQuery);

void
BM_LegacyWindowSweep(benchmark::State &state)
{
    // The same 250 ms window via the legacy full sweep, for the
    // speedup ratio against BM_IndexWindowQuery.
    const auto &bundle = sampleBundle();
    const auto &pids = samplePids();
    sim::SimTime t0 = bundle.startTime;
    sim::SimTime t1 = std::min(t0 + sim::msec(250), bundle.stopTime);
    for (auto _ : state) {
        auto profile =
            analysis::legacy::computeConcurrency(bundle, pids, t0, t1);
        benchmark::DoNotOptimize(profile.tlp());
    }
}
BENCHMARK(BM_LegacyWindowSweep);

void
BM_IndexTlpTimeSeries(benchmark::State &state)
{
    // Full 250 ms-window TLP series on a warm index; compare against
    // BM_TlpTimeSeries (which builds its index per call).
    const auto &index = sampleIndex();
    const auto &pids = samplePids();
    for (auto _ : state) {
        auto series =
            analysis::tlpSeries(index, pids, sim::msec(250));
        benchmark::DoNotOptimize(series.maxValue());
    }
}
BENCHMARK(BM_IndexTlpTimeSeries);

void
BM_AnalyzeAppFused(benchmark::State &state)
{
    const auto &index = sampleIndex();
    const auto &pids = samplePids();
    for (auto _ : state) {
        auto metrics = analysis::analyzeApp(index, pids);
        benchmark::DoNotOptimize(metrics.tlp());
    }
}
BENCHMARK(BM_AnalyzeAppFused);

void
BM_AnalyzeAppLegacy(benchmark::State &state)
{
    // The pre-index composition: three independent full sweeps.
    const auto &bundle = sampleBundle();
    const auto &pids = samplePids();
    for (auto _ : state) {
        analysis::AppMetrics metrics;
        metrics.concurrency =
            analysis::legacy::computeConcurrency(bundle, pids);
        metrics.gpu = analysis::legacy::computeGpuUtil(bundle, pids);
        metrics.frames =
            analysis::legacy::computeFrameStats(bundle, pids);
        benchmark::DoNotOptimize(metrics.tlp());
    }
}
BENCHMARK(BM_AnalyzeAppLegacy);

void
BM_EtlWrite(benchmark::State &state)
{
    const auto &bundle = sampleBundle();
    for (auto _ : state) {
        std::ostringstream out;
        trace::writeEtl(bundle, out);
        benchmark::DoNotOptimize(out.str().size());
    }
    state.SetItemsProcessed(state.iterations() *
                            bundle.totalEvents());
}
BENCHMARK(BM_EtlWrite);

void
BM_EtlRoundTrip(benchmark::State &state)
{
    const auto &bundle = sampleBundle();
    std::ostringstream out;
    trace::writeEtl(bundle, out);
    const std::string data = out.str();
    for (auto _ : state) {
        std::istringstream in(data);
        auto loaded = trace::readEtl(in);
        benchmark::DoNotOptimize(loaded.cswitches.size());
    }
    state.SetBytesProcessed(state.iterations() * data.size());
}
BENCHMARK(BM_EtlRoundTrip);

void
BM_CsvExport(benchmark::State &state)
{
    const auto &bundle = sampleBundle();
    for (auto _ : state) {
        std::ostringstream out;
        trace::writeCpuUsageCsv(bundle, out);
        benchmark::DoNotOptimize(out.str().size());
    }
}
BENCHMARK(BM_CsvExport);

/* ------------------------------------------------------------------ */
/*  Ingest benches: legacy istream vs zero-copy mapped vs parallel     */
/* ------------------------------------------------------------------ */

/** The sample bundle exported once to disk, for file-ingest benches. */
const std::string &
ingestCsvPath()
{
    static const std::string kPath = [] {
        auto path = (std::filesystem::temp_directory_path() /
                     "deskpar_micro_ingest.csv")
                        .string();
        trace::writeCpuUsageCsv(sampleBundle(), path);
        return path;
    }();
    return kPath;
}

const std::string &
ingestEtlPath()
{
    static const std::string kPath = [] {
        auto path = (std::filesystem::temp_directory_path() /
                     "deskpar_micro_ingest.etl")
                        .string();
        trace::writeEtl(sampleBundle(), path);
        return path;
    }();
    return kPath;
}

std::size_t
fileSize(const std::string &path)
{
    return static_cast<std::size_t>(
        std::filesystem::file_size(path));
}

std::size_t
ingestCsvSerial()
{
    std::ifstream in(ingestCsvPath());
    trace::TraceBundle bundle;
    trace::ParseOptions popts;
    popts.source = ingestCsvPath();
    auto report = trace::readCpuUsageCsv(in, bundle, popts);
    return bundle.cswitches.size() +
           static_cast<std::size_t>(report.recordsParsed);
}

/** Mapped span decode at @p threads (1 = zero-copy serial). */
std::size_t
ingestCsvMapped(unsigned threads)
{
    trace::io::MappedFile file =
        trace::io::MappedFile::openOrThrow(ingestCsvPath(), "bench");
    trace::TraceBundle bundle;
    trace::ParseOptions popts;
    popts.source = ingestCsvPath();
    popts.threads = threads;
    auto report = trace::decodeCpuUsageCsv(file.span(), bundle, popts);
    return bundle.cswitches.size() +
           static_cast<std::size_t>(report.recordsParsed);
}

std::size_t
ingestEtlSerial()
{
    std::ifstream in(ingestEtlPath(), std::ios::binary);
    trace::ParseOptions popts;
    popts.source = ingestEtlPath();
    trace::IngestReport report;
    auto bundle = trace::readEtl(in, popts, report);
    return bundle.totalEvents();
}

std::size_t
ingestEtlMapped(unsigned threads)
{
    trace::io::MappedFile file =
        trace::io::MappedFile::openOrThrow(ingestEtlPath(), "bench");
    trace::ParseOptions popts;
    popts.source = ingestEtlPath();
    popts.threads = threads;
    trace::IngestReport report;
    auto bundle = trace::decodeEtl(file.span(), popts, report);
    return bundle.totalEvents();
}

void
BM_CsvIngestSerial(benchmark::State &state)
{
    // The legacy reference: istream + getline + per-field strings.
    for (auto _ : state)
        benchmark::DoNotOptimize(ingestCsvSerial());
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(fileSize(ingestCsvPath())));
}
BENCHMARK(BM_CsvIngestSerial);

void
BM_CsvIngestMappedCold(benchmark::State &state)
{
    // Zero-copy single-thread including the open/map cost per file.
    for (auto _ : state)
        benchmark::DoNotOptimize(ingestCsvMapped(1));
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(fileSize(ingestCsvPath())));
}
BENCHMARK(BM_CsvIngestMappedCold);

void
BM_CsvIngestMappedWarm(benchmark::State &state)
{
    // Pure decode over an already-mapped span: the zero-copy parser
    // alone, against BM_CsvIngestSerial for the speedup ratio.
    trace::io::MappedFile file =
        trace::io::MappedFile::openOrThrow(ingestCsvPath(), "bench");
    trace::ParseOptions popts;
    popts.source = ingestCsvPath();
    popts.threads = 1;
    for (auto _ : state) {
        trace::TraceBundle bundle;
        auto report =
            trace::decodeCpuUsageCsv(file.span(), bundle, popts);
        benchmark::DoNotOptimize(bundle.cswitches.size() +
                                 report.recordsParsed);
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(file.size()));
}
BENCHMARK(BM_CsvIngestMappedWarm);

void
BM_CsvIngestParallel(benchmark::State &state)
{
    unsigned jobs = sim::resolveJobs();
    for (auto _ : state)
        benchmark::DoNotOptimize(ingestCsvMapped(jobs));
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(fileSize(ingestCsvPath())));
}
BENCHMARK(BM_CsvIngestParallel);

void
BM_EtlIngestSerial(benchmark::State &state)
{
    for (auto _ : state)
        benchmark::DoNotOptimize(ingestEtlSerial());
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(fileSize(ingestEtlPath())));
}
BENCHMARK(BM_EtlIngestSerial);

void
BM_EtlIngestMappedCold(benchmark::State &state)
{
    for (auto _ : state)
        benchmark::DoNotOptimize(ingestEtlMapped(1));
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(fileSize(ingestEtlPath())));
}
BENCHMARK(BM_EtlIngestMappedCold);

void
BM_EtlIngestMappedWarm(benchmark::State &state)
{
    trace::io::MappedFile file =
        trace::io::MappedFile::openOrThrow(ingestEtlPath(), "bench");
    trace::ParseOptions popts;
    popts.source = ingestEtlPath();
    popts.threads = 1;
    for (auto _ : state) {
        trace::IngestReport report;
        auto bundle = trace::decodeEtl(file.span(), popts, report);
        benchmark::DoNotOptimize(bundle.totalEvents());
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(file.size()));
}
BENCHMARK(BM_EtlIngestMappedWarm);

void
BM_EtlIngestParallel(benchmark::State &state)
{
    unsigned jobs = sim::resolveJobs();
    for (auto _ : state)
        benchmark::DoNotOptimize(ingestEtlMapped(jobs));
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(fileSize(ingestEtlPath())));
}
BENCHMARK(BM_EtlIngestParallel);

/* ------------------------------------------------------------------ */
/*  Observability overhead: span/counter cost, recording off vs on     */
/* ------------------------------------------------------------------ */

void
BM_ObsSpanDisabled(benchmark::State &state)
{
    // The runtime-disabled cost contract: one relaxed atomic load,
    // no clock read, no allocation.
    obs::setEnabled(false);
    for (auto _ : state) {
        obs::Span span("bench.obs.span", obs::SpanKind::Other);
    }
}
BENCHMARK(BM_ObsSpanDisabled);

void
BM_ObsSpanEnabled(benchmark::State &state)
{
    obs::setEnabled(true);
    obs::reset();
    int sinceReset = 0;
    for (auto _ : state) {
        obs::Span span("bench.obs.span", obs::SpanKind::Other);
        // Drain before the ring saturates so the measured path stays
        // the record path, not the cheaper drop path.
        if (++sinceReset == 32768) {
            state.PauseTiming();
            obs::reset();
            state.ResumeTiming();
            sinceReset = 0;
        }
    }
    obs::setEnabled(false);
    obs::reset();
}
BENCHMARK(BM_ObsSpanEnabled);

void
BM_ObsCounterAdd(benchmark::State &state)
{
    obs::setEnabled(true);
    obs::reset();
    for (auto _ : state)
        obs::counterAdd("bench.obs.counter", 1);
    obs::setEnabled(false);
    obs::reset();
}
BENCHMARK(BM_ObsCounterAdd);

/**
 * Timed ingest record pass: a few repetitions of each ingest variant
 * under a SuiteTimer so BENCH_suite.json captures the throughput
 * trajectory and tools/bench_compare can gate regressions.
 */
void
recordIngestBenches()
{
    // Reps chosen so every record spans tens of milliseconds: the
    // JSON wall time has 1 ms resolution, and a record near that
    // floor turns quantization into a phantom bench_compare
    // regression. The .etl decode is ~20x the CSV throughput, so it
    // needs proportionally more repetitions.
    const char *fast = std::getenv("DESKPAR_FAST");
    bool isFast = fast && fast[0] == '1';
    int csvReps = isFast ? 10 : 25;
    int etlReps = isFast ? 100 : 250;
    // Min-of-3 around each reps block: a single-shot record flaps
    // with scheduler noise and trips bench_compare's gate.
    auto record = [](const char *name, int reps,
                     const std::function<void()> &fn) {
        double wall = bench::minWallSeconds(3, [&]() {
            for (int i = 0; i < reps; ++i)
                fn();
        });
        bench::appendBenchRecord(name, wall);
    };
    unsigned jobs = sim::resolveJobs();
    record("micro_ingest_csv_serial", csvReps,
           [] { ingestCsvSerial(); });
    record("micro_ingest_csv_mapped", csvReps,
           [] { ingestCsvMapped(1); });
    record("micro_ingest_csv_parallel", csvReps,
           [jobs] { ingestCsvMapped(jobs); });
    record("micro_ingest_etl_serial", etlReps,
           [] { ingestEtlSerial(); });
    record("micro_ingest_etl_mapped", etlReps,
           [] { ingestEtlMapped(1); });
    record("micro_ingest_etl_parallel", etlReps,
           [jobs] { ingestEtlMapped(jobs); });
}

/**
 * Timed span-overhead pass: the same hot loop with recording off and
 * on, as micro_obs_* records in BENCH_suite.json. These track the
 * per-span cost trend; the end-to-end overhead gate is
 * recordObsOverheadRecords below.
 */
void
recordObsBenches()
{
    const char *fast = std::getenv("DESKPAR_FAST");
    bool isFast = fast && fast[0] == '1';
    // Disabled spans cost nanoseconds, enabled ones two clock reads:
    // reps sized so both records land well above the JSON wall-time
    // resolution (see recordIngestBenches).
    int disabledReps = isFast ? 50'000'000 : 200'000'000;
    int enabledReps = isFast ? 2'000'000 : 8'000'000;
    bool wasEnabled = obs::enabled();
    auto spin = [](bool enabled, int reps) {
        obs::setEnabled(enabled);
        obs::reset();
        for (int i = 0; i < reps; ++i) {
            obs::Span span("micro.obs.span", obs::SpanKind::Other,
                           static_cast<std::uint64_t>(i));
            if ((i & 0xffff) == 0xffff)
                obs::reset(); // keep the ring from saturating
        }
        obs::setEnabled(false);
        obs::reset();
    };
    bench::appendBenchRecord(
        "micro_obs_span_disabled",
        bench::minWallSeconds(3,
                              [&]() { spin(false, disabledReps); }));
    bench::appendBenchRecord(
        "micro_obs_span_enabled",
        bench::minWallSeconds(3,
                              [&]() { spin(true, enabledReps); }));
    obs::setEnabled(wasEnabled);
}

/**
 * End-to-end instrumentation overhead gate: time the instrumented
 * mapped ingest + index + query pipeline with recording off and on,
 * in one process, and emit the two walls as a same-keyed
 * "micro_obs_pipeline" record pair (off first). In a fresh
 * $DESKPAR_BENCH_JSON file this is the only key with two records, so
 * `bench_compare --file ... --threshold 3` gates exactly the off->on
 * delta — the enabled-mode budget from DESIGN.md section 12. The
 * passes interleave and each mode keeps its min-of-N wall, so a
 * scheduling hiccup in one round can't fake a regression.
 */
void
recordObsOverheadRecords()
{
    const char *fast = std::getenv("DESKPAR_FAST");
    bool isFast = fast && fast[0] == '1';
    // Sized so each timed pass spans a few hundred ms: long enough
    // that the 1 ms record resolution and scheduler noise sit well
    // under the 3% threshold, short enough for CI.
    int reps = isFast ? 1000 : 4000;
    const int kRounds = 3;
    bool wasEnabled = obs::enabled();

    auto pipelineOnce = [] {
        trace::io::MappedFile file = trace::io::MappedFile::openOrThrow(
            ingestEtlPath(), "bench");
        trace::ParseOptions popts;
        popts.source = ingestEtlPath();
        popts.threads = 1;
        trace::IngestReport report;
        auto bundle = trace::decodeEtl(file.span(), popts, report);
        analysis::TraceIndex index(bundle);
        auto profile = index.concurrency(samplePids());
        benchmark::DoNotOptimize(profile.tlp());
    };
    auto timedPass = [&](bool enabled) {
        obs::setEnabled(enabled);
        obs::reset();
        auto start = std::chrono::steady_clock::now();
        for (int i = 0; i < reps; ++i) {
            pipelineOnce();
            // Drain periodically so the enabled pass measures the
            // record path throughout, never the saturated-ring drops.
            if ((i & 15) == 15)
                obs::reset();
        }
        std::chrono::duration<double> wall =
            std::chrono::steady_clock::now() - start;
        obs::setEnabled(false);
        obs::reset();
        return wall.count();
    };

    double best[2] = {1e300, 1e300};
    for (int round = 0; round < kRounds; ++round)
        for (int mode = 0; mode < 2; ++mode)
            best[mode] = std::min(best[mode], timedPass(mode == 1));
    bench::appendBenchRecord("micro_obs_pipeline", best[0]);
    bench::appendBenchRecord("micro_obs_pipeline", best[1]);
    obs::setEnabled(wasEnabled);
}

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    recordIngestBenches();
    recordObsBenches();
    recordObsOverheadRecords();
    return 0;
}

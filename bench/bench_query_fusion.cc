/**
 * @file
 * Query-fusion microbenchmark: a 16-query batch over one recorded
 * HandBrake trace, evaluated two ways — the straight-line reference
 * (analysis::legacy::runQueries, one independent full-trace sweep
 * per row) and the fusing planner (Session::query, one cswitch pass
 * per distinct filter). Verifies the two produce bit-identical rows
 * (also across 1/2/7 worker threads), records both wall times as
 * micro_query_* bench records, and fails unless the fused path is at
 * least DESKPAR_QUERY_MIN_SPEEDUP (default 2.0) times faster.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <utility>
#include <vector>

#include "bench_util.hh"

using namespace deskpar;

namespace {

/**
 * The measured batch: 16 queries over three distinct cswitch
 * filters (the app, system-wide, the app on CPUs 0-3), mixing
 * whole-window folds with bucketed series so the sequential baseline
 * pays one sweep per row while the planner pays one pass per filter.
 */
std::vector<analysis::Query>
buildBatch(const trace::PidSet &app)
{
    using analysis::Query;
    using analysis::QueryGroupBy;
    using analysis::QueryMetric;

    auto make = [](QueryMetric m, trace::PidSet pids,
                   QueryGroupBy g = QueryGroupBy::None,
                   sim::SimDuration bucket = 0) {
        Query q;
        q.metric = m;
        q.filter.pids = std::move(pids);
        q.groupBy = g;
        q.bucket = bucket;
        return q;
    };

    std::vector<Query> batch;
    // Filter A: the application's pid set.
    batch.push_back(make(QueryMetric::Tlp, app));
    batch.push_back(make(QueryMetric::BusyFraction, app));
    batch.push_back(make(QueryMetric::Tlp, app,
                         QueryGroupBy::TimeBucket, sim::msec(250)));
    batch.push_back(make(QueryMetric::Tlp, app,
                         QueryGroupBy::TimeBucket, sim::msec(100)));
    batch.push_back(make(QueryMetric::BusyFraction, app,
                         QueryGroupBy::TimeBucket, sim::sec(1.0)));
    batch.push_back(make(QueryMetric::ContextSwitchRate, app));
    batch.push_back(make(QueryMetric::ContextSwitchRate, app,
                         QueryGroupBy::TimeBucket, sim::msec(500)));
    batch.push_back(make(QueryMetric::DurationHistogram, app));
    batch.push_back(make(QueryMetric::Tlp, app, QueryGroupBy::Phase));
    batch.push_back(make(QueryMetric::GpuOccupancy, app));
    batch.push_back(make(QueryMetric::GpuOccupancy, app,
                         QueryGroupBy::GpuEngine));
    // Filter B: system-wide.
    batch.push_back(make(QueryMetric::Tlp, {}));
    batch.push_back(make(QueryMetric::BusyFraction, {}));
    batch.push_back(make(QueryMetric::ContextSwitchRate, {}));
    batch.push_back(make(QueryMetric::DurationHistogram, {}));
    // Filter C: the app narrowed to CPUs 0-3.
    Query masked = make(QueryMetric::Tlp, app);
    masked.filter.cpuMask = 0xF;
    batch.push_back(std::move(masked));
    return batch;
}

/** Field-exact comparison; prints the first difference. */
bool
sameResults(const std::vector<analysis::QueryResult> &a,
            const std::vector<analysis::QueryResult> &b,
            const char *what)
{
    if (a.size() != b.size()) {
        std::fprintf(stderr, "FAIL (%s): %zu vs %zu results\n", what,
                     a.size(), b.size());
        return false;
    }
    for (std::size_t q = 0; q < a.size(); ++q) {
        const auto &ra = a[q].rows;
        const auto &rb = b[q].rows;
        if (ra.size() != rb.size()) {
            std::fprintf(stderr,
                         "FAIL (%s): query %zu has %zu vs %zu rows\n",
                         what, q, ra.size(), rb.size());
            return false;
        }
        for (std::size_t r = 0; r < ra.size(); ++r) {
            const analysis::QueryRow &x = ra[r];
            const analysis::QueryRow &y = rb[r];
            if (x.key != y.key || x.t0 != y.t0 || x.t1 != y.t1 ||
                x.pid != y.pid || x.tid != y.tid ||
                x.value != y.value || x.histogram != y.histogram) {
                std::fprintf(
                    stderr,
                    "FAIL (%s): query %zu row %zu differs: key "
                    "'%s'/'%s' value %.17g/%.17g\n",
                    what, q, r, x.key.c_str(), y.key.c_str(), x.value,
                    y.value);
                return false;
            }
        }
    }
    return true;
}

} // namespace

int
main()
{
    bench::banner(
        "Query fusion - 16-query batch, fused vs sequential",
        "analysis methodology of Sections III and V");

    bench::SuiteTimer timer("bench_query_fusion");
    apps::RunOptions options = bench::paperRunOptions();

    std::vector<apps::SuiteJob> jobs = {
        apps::suiteJob("handbrake", options)};
    apps::AppRunResult result =
        std::move(bench::runSuiteParallel(jobs).front());

    const trace::TraceBundle &bundle = result.lastBundle;
    std::vector<analysis::Query> batch = buildBatch(result.lastPids);

    std::printf("trace: %zu cswitches, %zu gpu packets, %.1f s, "
                "%u cpus; batch: %zu queries\n",
                bundle.cswitches.size(), bundle.gpuPackets.size(),
                sim::toSeconds(bundle.duration()),
                bundle.numLogicalCpus, batch.size());

    analysis::Session session(bundle);
    std::printf("\n%s\n",
                session.plan(batch).explain().str().c_str());

    // Min-of-N wall times; the same-shaped inner repeat keeps the
    // timed region well above clock resolution on small fast-mode
    // traces.
    constexpr int kReps = 5;
    constexpr int kInner = 8;
    using Clock = std::chrono::steady_clock;

    std::vector<analysis::QueryResult> reference;
    double bestSeq = 1e300;
    for (int rep = 0; rep < kReps; ++rep) {
        Clock::time_point start = Clock::now();
        for (int i = 0; i < kInner; ++i) {
            auto r = analysis::legacy::runQueries(bundle, batch);
            if (rep == 0 && i == 0)
                reference = std::move(r);
        }
        std::chrono::duration<double> wall = Clock::now() - start;
        bestSeq = std::min(bestSeq, wall.count());
    }

    std::vector<analysis::QueryResult> fused;
    double bestFused = 1e300;
    for (int rep = 0; rep < kReps; ++rep) {
        Clock::time_point start = Clock::now();
        for (int i = 0; i < kInner; ++i) {
            // Compile cost is part of the fused path.
            analysis::QueryPlan plan = session.plan(batch);
            auto r = plan.run();
            if (rep == 0 && i == 0)
                fused = std::move(r);
        }
        std::chrono::duration<double> wall = Clock::now() - start;
        bestFused = std::min(bestFused, wall.count());
    }

    if (!sameResults(reference, fused, "fused vs sequential"))
        return 1;
    analysis::QueryPlan plan = session.plan(batch);
    if (!sameResults(fused, plan.run(1), "1 thread") ||
        !sameResults(fused, plan.run(2), "2 threads") ||
        !sameResults(fused, plan.run(7), "7 threads"))
        return 1;
    std::printf("results: fused == sequential reference, "
                "bit-identical at 1/2/7 threads\n");

    // The records keep the whole kInner-batch wall time: per-batch
    // fused time is sub-millisecond, below the record format's
    // resolution.
    double speedup = bestSeq / bestFused;
    std::printf("\nsequential %.3f ms/batch, fused %.3f ms/batch, "
                "speedup %.2fx\n",
                bestSeq * 1e3 / kInner, bestFused * 1e3 / kInner,
                speedup);
    bench::appendBenchRecord("micro_query_sequential", bestSeq);
    bench::appendBenchRecord("micro_query_fused", bestFused);

    double minSpeedup = 2.0;
    if (const char *env = std::getenv("DESKPAR_QUERY_MIN_SPEEDUP"))
        minSpeedup = std::strtod(env, nullptr);
    if (speedup < minSpeedup) {
        std::fprintf(stderr,
                     "FAIL: fused speedup %.2fx is below the %.2fx "
                     "floor\n",
                     speedup, minSpeedup);
        return 1;
    }
    std::printf("PASS: fused speedup %.2fx >= %.2fx floor\n", speedup,
                minSpeedup);
    return 0;
}

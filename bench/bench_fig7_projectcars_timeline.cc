/**
 * @file
 * Figure 7: instantaneous TLP and GPU utilization over time for
 * Project CARS 2 on the Oculus Rift at 4/8/12 logical cores (SMT
 * on). At 4 cores ASW clamps the game to 45 FPS, which lowers both
 * TLP and GPU utilization; at 8-12 cores it holds 90 FPS with TLP
 * bursts between 2 and 6.
 */

#include "analysis/framerate.hh"
#include "bench_util.hh"

using namespace deskpar;

int
main()
{
    bench::banner(
        "Figure 7 - Project CARS 2 (Rift) TLP/GPU vs cores",
        "Section V-C-1, Figure 7");

    bench::SuiteTimer timer("bench_fig7_projectcars_timeline");

    // Also report the ASW state via frame statistics per core count.
    for (unsigned cores : {4u, 8u, 12u}) {
        apps::RunOptions options = bench::paperRunOptions();
        options.iterations = 1;
        options.config.activeCpus = cores;
        apps::AppRunResult result =
            apps::runWorkload("projectcars2", options);
        const auto &frames = result.iterations[0].metrics.frames;
        std::printf("%2u cores: presented %.1f FPS (real %.1f, "
                    "synthesized share %.0f%%)\n",
                    cores, result.fps.mean(), result.realFps.mean(),
                    frames.synthesizedShare() * 100.0);
    }

    bench::runTimelineFigure("projectcars2", {4, 8, 12},
                             sim::msec(250));
    std::printf("\nExpected shape: at 4 logical cores ASW clamps to "
                "45 FPS (half the synthesized frames, reduced TLP "
                "and GPU); at 8-12 cores stable 90 FPS with TLP "
                "mostly between 2 and 6 and bursts higher.\n");
    return 0;
}

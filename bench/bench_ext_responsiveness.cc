/**
 * @file
 * Extension experiment (the 2000-era thread the paper builds on):
 * Flautner et al. observed that even when average TLP stayed under
 * 2, "a second processor improved the responsiveness of interactive
 * applications" (paper Section II). We reproduce that: Microsoft
 * Word runs together with a saturating background transcode, and we
 * measure the input-to-dispatch latency of Word's UI as the active
 * core count grows. The background job is a fixed two-thread encode
 * (it does not grow with the machine), as in the 2000 study's
 * uniprocessor-vs-SMP comparison.
 */

#include <cstdio>
#include <iostream>

#include "analysis/responsiveness.hh"
#include "apps/blocks.hh"
#include "apps/registry.hh"
#include "bench_util.hh"
#include "input/driver.hh"

using namespace deskpar;

int
main()
{
    bench::banner(
        "Extension - responsiveness vs core count under load",
        "Section II background (Flautner et al. 2000)");

    report::TextTable table({"Logical cores", "Word TLP",
                             "Inputs", "Mean response (ms)",
                             "Max response (ms)"});

    for (unsigned cores : {1u, 2u, 4u, 6u}) {
        sim::MachineConfig config =
            sim::MachineConfig::paperDefault();
        config.seed = 42;
        config.smtEnabled = false; // physical cores, 2000-style
        config.activeCpus = cores;
        sim::Machine machine(config);
        machine.session().start(0);

        // The interactive app under test plus a fixed-width
        // CPU-bound background job ("video encode in background").
        auto word = apps::makeWorkload("word");
        apps::AppInstance instance = word->instantiate(machine);
        auto &encoder = machine.createProcess("bg-encode", 0.2);
        for (int t = 0; t < 2; ++t) {
            encoder.createThread(
                std::make_shared<apps::CpuGrinder>(
                    sim::Dist::normal(40.0, 5.0)),
                "enc-" + std::to_string(t));
        }

        input::AutomationDriver driver;
        driver.install(machine, instance.script);

        machine.run(sim::sec(30.0));
        machine.session().stop(machine.now());
        trace::TraceBundle bundle = machine.session().takeBundle();

        auto pids = trace::pidsWithPrefix(bundle, "word");
        auto metrics = analysis::analyzeApp(bundle, pids);
        auto response =
            analysis::computeResponsiveness(bundle, pids);

        table.row()
            .cell(std::uint64_t(cores))
            .cell(metrics.tlp(), 2)
            .cell(std::uint64_t(response.inputs))
            .cell(response.meanLatencyMs(), 2)
            .cell(response.maxLatencyMs(), 2);
    }
    table.print(std::cout);

    std::printf(
        "\nExpected shape: with a single core the UI input waits "
        "behind the transcoder's quantum (response in the\n"
        "milliseconds); from two cores on, an idle CPU is almost "
        "always available and response collapses toward zero —\n"
        "Flautner's 'second processor improves responsiveness' "
        "result, even though Word's TLP barely moves.\n");
    return 0;
}

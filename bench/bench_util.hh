/**
 * @file
 * Shared helpers for the table/figure bench binaries: standard run
 * options (3 iterations x 30 s, the paper's protocol) and small
 * formatting utilities.
 */

#ifndef DESKPAR_BENCH_BENCH_UTIL_HH
#define DESKPAR_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/timeseries.hh"
#include "apps/harness.hh"
#include "apps/registry.hh"
#include "report/figure.hh"
#include "report/table.hh"

namespace deskpar::bench {

/** The paper's measurement protocol. */
inline apps::RunOptions
paperRunOptions()
{
    apps::RunOptions options;
    options.iterations = 3;
    options.duration = sim::sec(30.0);
    options.seedBase = 42;
    // DESKPAR_FAST=1 trims the protocol for smoke runs.
    if (const char *fast = std::getenv("DESKPAR_FAST");
        fast && fast[0] == '1') {
        options.iterations = 1;
        options.duration = sim::sec(8.0);
    }
    return options;
}

/** Print the standard bench banner. */
inline void
banner(const char *what, const char *paper_ref)
{
    std::printf("== deskpar reproduction: %s ==\n", what);
    std::printf("   (paper: %s)\n\n", paper_ref);
}

/** "x.x +- y.y" cell for avg/sigma pairs. */
inline std::string
meanSigma(const analysis::RunningStat &stat, int precision = 1)
{
    return report::formatNumber(stat.mean(), precision) + " +- " +
           report::formatNumber(stat.stddev(), precision);
}

/**
 * Shared driver for the Figures 5-7 timelines: run @p id once per
 * core count, print the instantaneous-TLP and GPU-utilization series
 * plus summary stats.
 */
inline void
runTimelineFigure(const std::string &id,
                  const std::vector<unsigned> &core_counts,
                  sim::SimDuration window)
{
    for (unsigned cores : core_counts) {
        apps::RunOptions options = paperRunOptions();
        options.iterations = 1;
        options.config.activeCpus = cores;
        apps::AppRunResult result = apps::runWorkload(id, options);

        auto conc = analysis::concurrencySeries(result.lastBundle,
                                                result.lastPids,
                                                window);
        auto gpu = analysis::gpuUtilSeries(result.lastBundle,
                                           result.lastPids, window);

        std::printf("\n--- %u logical cores (SMT on) ---\n", cores);
        std::printf("avg TLP %.2f | max instantaneous TLP %.1f | "
                    "GPU util %.1f%% | frames/s %.1f\n",
                    result.tlp(), conc.maxValue(), result.gpuUtil(),
                    result.fps.mean());

        report::Figure figure(
            "Instantaneous TLP (window avg), " +
                std::to_string(cores) + " cores",
            "time (s)", "threads running");
        auto &series = figure.addSeries("TLP");
        for (const auto &point : conc.points)
            series.add(sim::toSeconds(point.t), point.value);
        figure.printAscii(std::cout, 64, 10);

        report::Figure gfig("GPU utilization (%), " +
                                std::to_string(cores) + " cores",
                            "time (s)", "GPU %");
        auto &gseries = gfig.addSeries("GPU");
        for (const auto &point : gpu.points)
            gseries.add(sim::toSeconds(point.t), point.value);
        gfig.printAscii(std::cout, 64, 8);
    }
}

} // namespace deskpar::bench

#endif // DESKPAR_BENCH_BENCH_UTIL_HH

/**
 * @file
 * Shared helpers for the table/figure bench binaries: standard run
 * options (3 iterations x 30 s, the paper's protocol) and small
 * formatting utilities.
 */

#ifndef DESKPAR_BENCH_BENCH_UTIL_HH
#define DESKPAR_BENCH_BENCH_UTIL_HH

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "analysis/session.hh"
#include "apps/harness.hh"
#include "apps/registry.hh"
#include "apps/runner.hh"
#include "report/figure.hh"
#include "report/table.hh"

namespace deskpar::bench {

/** The paper's measurement protocol. */
inline apps::RunOptions
paperRunOptions()
{
    apps::RunOptions options;
    options.iterations = 3;
    options.duration = sim::sec(30.0);
    options.seedBase = 42;
    // DESKPAR_FAST=1 trims the protocol for smoke runs.
    if (const char *fast = std::getenv("DESKPAR_FAST");
        fast && fast[0] == '1') {
        options.iterations = 1;
        options.duration = sim::sec(8.0);
    }
    return options;
}

/** Print the standard bench banner. */
inline void
banner(const char *what, const char *paper_ref)
{
    std::printf("== deskpar reproduction: %s ==\n", what);
    std::printf("   (paper: %s)\n\n", paper_ref);
}

/**
 * Fan @p jobs out across the SuiteRunner (thread count from
 * DESKPAR_JOBS, default: all host cores) and return the results in
 * submission order. The shared entry point for the suite benches.
 */
inline std::vector<apps::AppRunResult>
runSuiteParallel(const std::vector<apps::SuiteJob> &jobs)
{
    return apps::runSuite(jobs);
}

/**
 * TLP of a run's retained trace, computed through the fused query
 * path (Session::query). Bit-identical to the TraceIndex value the
 * harness reads, so under DESKPAR_FAST (one iteration) this equals
 * result.tlp() exactly; under the full 3-iteration protocol it is
 * the final iteration's TLP (within sigma of the mean).
 */
inline double
fusedTlp(const apps::AppRunResult &result)
{
    analysis::Session session(result.lastBundle);
    return session.query({analysis::tlpQuery(result.lastPids)})
        .front()
        .rows.front()
        .value;
}

/**
 * Append one wall-time JSON record (bench name, wall seconds, runner
 * thread count) to BENCH_suite.json — or $DESKPAR_BENCH_JSON — so the
 * perf trajectory of the suite benches is captured run over run.
 * Callers that aggregate their own samples (e.g. min-of-N A/B passes)
 * use this directly; scope timing goes through SuiteTimer.
 */
inline void
appendBenchRecord(const std::string &name, double wall_seconds)
{
    unsigned jobs = apps::SuiteRunner::defaultThreads();
    unsigned fast = 0;
    if (const char *env = std::getenv("DESKPAR_FAST");
        env && env[0] == '1') {
        fast = 1;
    }
    const char *path = std::getenv("DESKPAR_BENCH_JSON");
    std::ofstream out(path ? path : "BENCH_suite.json",
                      std::ios::app);
    char line[256];
    std::snprintf(line, sizeof(line),
                  "{\"bench\":\"%s\",\"wall_seconds\":%.3f,"
                  "\"jobs\":%u,\"fast\":%u}",
                  name.c_str(), wall_seconds, jobs, fast);
    out << line << "\n";
    std::printf("\n[%s] wall %.3f s, %u runner thread(s)\n",
                name.c_str(), wall_seconds, jobs);
}

/**
 * Wall seconds of the fastest of @p repeats runs of @p fn. The
 * micro_* records feed bench_compare's last-vs-previous gate, and a
 * single-shot sample flaps with scheduler noise: the minimum of a
 * few repeats is the standard stable estimator of the true cost
 * (noise only ever adds time). Keep repeats small (3-5) — the point
 * is de-flaking, not statistics.
 */
template <typename Fn>
inline double
minWallSeconds(unsigned repeats, Fn &&fn)
{
    double best = std::numeric_limits<double>::infinity();
    for (unsigned r = 0; r < repeats; ++r) {
        auto start = std::chrono::steady_clock::now();
        fn();
        std::chrono::duration<double> wall =
            std::chrono::steady_clock::now() - start;
        if (wall.count() < best)
            best = wall.count();
    }
    return best;
}

/**
 * Wall-clock scope timer for a bench binary: appendBenchRecord on
 * destruction.
 */
class SuiteTimer
{
  public:
    explicit SuiteTimer(std::string name)
        : name_(std::move(name)),
          start_(std::chrono::steady_clock::now())
    {
    }

    SuiteTimer(const SuiteTimer &) = delete;
    SuiteTimer &operator=(const SuiteTimer &) = delete;

    ~SuiteTimer()
    {
        std::chrono::duration<double> wall =
            std::chrono::steady_clock::now() - start_;
        appendBenchRecord(name_, wall.count());
    }

  private:
    std::string name_;
    std::chrono::steady_clock::time_point start_;
};

/** "x.x +- y.y" cell for avg/sigma pairs. */
inline std::string
meanSigma(const analysis::RunningStat &stat, int precision = 1)
{
    return report::formatNumber(stat.mean(), precision) + " +- " +
           report::formatNumber(stat.stddev(), precision);
}

/**
 * Shared driver for the Figures 5-7 timelines: run @p id once per
 * core count, print the instantaneous-TLP and GPU-utilization series
 * plus summary stats.
 */
inline void
runTimelineFigure(const std::string &id,
                  const std::vector<unsigned> &core_counts,
                  sim::SimDuration window)
{
    // One suite job per core count: the simulations fan out across
    // the runner pool, and the per-run series share one Session so
    // every window is a pair of binary searches instead of a full
    // event-stream sweep.
    std::vector<apps::SuiteJob> jobs;
    jobs.reserve(core_counts.size());
    for (unsigned cores : core_counts) {
        apps::RunOptions options = paperRunOptions();
        options.iterations = 1;
        options.config.activeCpus = cores;
        jobs.push_back(apps::suiteJob(id, options));
    }
    std::vector<apps::AppRunResult> results = runSuiteParallel(jobs);

    for (std::size_t i = 0; i < results.size(); ++i) {
        unsigned cores = core_counts[i];
        const apps::AppRunResult &result = results[i];

        analysis::Session session(result.lastBundle);
        auto conc =
            session.concurrencySeries(result.lastPids, window);
        auto gpu = session.gpuUtilSeries(result.lastPids, window);

        std::printf("\n--- %u logical cores (SMT on) ---\n", cores);
        std::printf("avg TLP %.2f | max instantaneous TLP %.1f | "
                    "GPU util %.1f%% | frames/s %.1f\n",
                    result.tlp(), conc.maxValue(), result.gpuUtil(),
                    result.fps.mean());

        report::Figure figure(
            "Instantaneous TLP (window avg), " +
                std::to_string(cores) + " cores",
            "time (s)", "threads running");
        auto &series = figure.addSeries("TLP");
        for (const auto &point : conc.points)
            series.add(sim::toSeconds(point.t), point.value);
        figure.printAscii(std::cout, 64, 10);

        report::Figure gfig("GPU utilization (%), " +
                                std::to_string(cores) + " cores",
                            "time (s)", "GPU %");
        auto &gseries = gfig.addSeries("GPU");
        for (const auto &point : gpu.points)
            gseries.add(sim::toSeconds(point.t), point.value);
        gfig.printAscii(std::cout, 64, 8);
    }
}

} // namespace deskpar::bench

#endif // DESKPAR_BENCH_BENCH_UTIL_HH

/**
 * @file
 * Table II: TLP and GPU utilization of all 30 applications on the
 * 6-core/12-thread machine with the GTX 1080 Ti — the paper's
 * headline table, including the execution-time heat map, per-category
 * averages, and the summary statistics quoted in the abstract
 * (suite-average TLP ~3.1; 6 of 30 apps above TLP 4; most apps touch
 * the maximum instantaneous TLP of 12).
 */

#include <cstdio>
#include <iostream>
#include <map>

#include "bench_util.hh"
#include "report/heatmap.hh"

using namespace deskpar;

int
main()
{
    bench::banner("Table II - application TLP and GPU utilization",
                  "Section V-A, Table II");

    bench::SuiteTimer timer("bench_table2_suite");
    apps::RunOptions options = bench::paperRunOptions();

    // All 30 applications x 3 iterations fan out across the
    // SuiteRunner; results come back in suite row order.
    std::vector<apps::SuiteJob> jobs;
    for (const auto &entry : apps::tableTwoSuite())
        jobs.push_back(apps::suiteJob(entry.id, options));
    std::vector<apps::AppRunResult> results =
        bench::runSuiteParallel(jobs);

    report::TextTable table({"Category", "Application",
                             "Execution time c0..c12", "TLP",
                             "GPU util (%)", "Max conc."});

    struct CategoryStats
    {
        analysis::RunningStat tlp;
        analysis::RunningStat gpu;
    };
    std::map<std::string, CategoryStats> categories;
    analysis::RunningStat suiteTlp;
    unsigned above4 = 0;
    unsigned reachedMax = 0;
    unsigned count = 0;

    std::size_t next = 0;
    for (const auto &entry : apps::tableTwoSuite()) {
        const apps::AppRunResult &result = results[next++];

        const std::string &name = result.agg.app;
        std::string gpu_cell = bench::meanSigma(result.agg.gpuUtil);
        // Star only utilization capped at 100% by packet overlap
        // (the paper's PhoenixMiner footnote).
        if (result.agg.gpuOverlapped &&
            result.agg.gpuUtil.mean() > 99.9) {
            gpu_cell = "*" + gpu_cell;
        }

        table.row()
            .cell(entry.category)
            .cell(name)
            .cell(report::heatmapRow(result.agg.meanC))
            .cell(bench::meanSigma(result.agg.tlp, 2))
            .cell(gpu_cell)
            .cell(result.agg.maxConcurrency.mean(), 0);

        auto &cat = categories[entry.category];
        cat.tlp.add(result.tlp());
        cat.gpu.add(result.gpuUtil());
        suiteTlp.add(result.tlp());
        if (result.tlp() > 4.0)
            ++above4;
        if (result.agg.maxConcurrency.max() >=
            options.config.activeLogicalCpus()) {
            ++reachedMax;
        }
        ++count;
    }

    table.print(std::cout);
    std::printf("\n%s\n", report::heatmapLegend().c_str());
    std::printf("* two packets were simultaneously executing on the "
                "GPU throughout the experiment\n");

    std::printf("\nPer-category averages:\n");
    report::TextTable cats({"Category", "Avg TLP", "Avg GPU (%)"});
    for (const auto &[name, stats] : categories) {
        cats.row()
            .cell(name)
            .cell(stats.tlp.mean(), 1)
            .cell(stats.gpu.mean(), 1);
    }
    cats.print(std::cout);

    std::printf("\nSummary: suite-average TLP = %.1f (paper: 3.1); "
                "%u of %u apps above TLP 4 (paper: 6 of 30);\n"
                "%u of %u apps reached the maximum instantaneous "
                "TLP of %u during execution.\n",
                suiteTlp.mean(), above4, count, reachedMax, count,
                options.config.activeLogicalCpus());
    return 0;
}

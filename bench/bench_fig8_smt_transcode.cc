/**
 * @file
 * Figure 8: transcode rate and GPU utilization of HandBrake and WinX
 * for 2-6 logical cores, with and without SMT, on the GTX 1080 Ti
 * and the GTX 680 — plus the Section V-C-2 SMT contention counters
 * (the VTune observation that SMT raises intra-core stalls from
 * ~5.3% to ~10.7% for HandBrake while relieving the LLC).
 *
 * With SMT, n logical cores are n/2 physical cores; without, n
 * physical cores. The paper's findings: transcode rates drop when
 * SMT is enabled at equal logical-core count; WinX outruns HandBrake
 * thanks to NVENC; transcode rates are GPU-independent while the
 * GTX 680 shows ~4x the utilization of the 1080 Ti.
 */

#include <cstdio>
#include <iostream>

#include "apps/video.hh"
#include "bench_util.hh"

using namespace deskpar;

int
main()
{
    bench::banner("Figure 8 - SMT and GPU offload on transcoding",
                  "Section V-C-2 / V-D-1, Figure 8");

    bench::SuiteTimer timer("bench_fig8_smt_transcode");

    struct GpuChoice
    {
        const char *label;
        sim::GpuSpec spec;
    };
    const GpuChoice kGpus[] = {
        {"GTX 1080 Ti", sim::GpuSpec::gtx1080Ti()},
        {"GTX 680", sim::GpuSpec::gtx680()},
    };

    report::TextTable table({"App", "GPU", "SMT", "Logical cores",
                             "Transcode rate (FPS)", "GPU util (%)",
                             "SMT-shared busy (%)",
                             "Contention stalls (%)"});

    // Fan the full (app x GPU x SMT x cores) grid out in one batch.
    std::vector<apps::SuiteJob> jobs;
    for (const char *app : {"handbrake", "winx"}) {
        for (const auto &gpu : kGpus) {
            for (bool smt : {true, false}) {
                for (unsigned cores : {2u, 4u, 6u}) {
                    apps::RunOptions options =
                        bench::paperRunOptions();
                    options.config.gpu = gpu.spec;
                    options.config.smtEnabled = smt;
                    options.config.activeCpus = cores;
                    jobs.push_back(apps::suiteJob(app, options));
                }
            }
        }
    }
    std::vector<apps::AppRunResult> results =
        bench::runSuiteParallel(jobs);

    std::size_t next = 0;
    for (const char *app : {"handbrake", "winx"}) {
        for (const auto &gpu : kGpus) {
            for (bool smt : {true, false}) {
                for (unsigned cores : {2u, 4u, 6u}) {
                    const apps::AppRunResult &result =
                        results[next++];

                    const auto &sched =
                        result.iterations.back().sched;
                    double shared =
                        sched.busyTime
                            ? 100.0 *
                                  static_cast<double>(
                                      sched.smtSharedTime) /
                                  static_cast<double>(sched.busyTime)
                            : 0.0;
                    table.row()
                        .cell(std::string(app))
                        .cell(gpu.label)
                        .cell(smt ? "on" : "off")
                        .cell(std::uint64_t(cores))
                        .cell(result.fps.mean(), 1)
                        .cell(result.gpuUtil(), 1)
                        .cell(shared, 1)
                        .cell(sched.contentionStallFraction() * 100.0,
                              1);
                }
            }
        }
    }

    table.print(std::cout);
    std::printf(
        "\nExpected shape: at equal logical-core count, SMT-on rates "
        "are lower (half the physical cores; contention stalls rise "
        "from ~5.3%% toward ~10.7%%).\nWinX beats HandBrake via "
        "NVENC; rates are nearly identical across GPUs while the "
        "GTX 680 runs at ~4x the utilization.\n");
    return 0;
}

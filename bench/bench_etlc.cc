/**
 * @file
 * .etlc container microbenchmark over the Table II suite corpus:
 * packs every retained trace as v3 .etl and block-compressed .etlc,
 * reports the corpus compression ratio, then times a cold open
 * (mmap + full ingest + index warm) against a warm reopen from the
 * .dpidx index cache. Warm sessions are checked against their cold
 * twins (TLP and frame stats must be bit-identical). Records
 * micro_etlc_pack / micro_etlc_cold_open / micro_etlc_warm_open
 * bench records; DESKPAR_ETLC_MIN_RATIO (default 2) sets the corpus
 * ratio floor and DESKPAR_ETLC_MIN_WARM_SPEEDUP (default 1.5) a
 * cold/warm wall-time floor — the run fails below either. The
 * defaults sit under the measured 2.2x / 3x so the gate catches
 * regressions, not noise; see DESIGN.md section 15 for why the
 * simulator corpus entropy caps the ratio well below real ETW
 * captures.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "analysis/index_cache.hh"
#include "bench_util.hh"
#include "trace/etl.hh"
#include "trace/etlc.hh"
#include "trace/merge.hh"

using namespace deskpar;

namespace {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

double
envFloor(const char *name, double fallback)
{
    if (const char *value = std::getenv(name))
        return std::atof(value);
    return fallback;
}

struct PackedTrace
{
    std::string label;
    fs::path etl;
    fs::path etlc;
    double tlp = 0.0;
    double avgFps = 0.0;
};

} // namespace

int
main()
{
    bench::banner(
        ".etlc container - pack ratio and warm-reopen latency",
        "trace-collection methodology of Section II");

    bench::SuiteTimer timer("bench_etlc");
    apps::RunOptions options = bench::paperRunOptions();

    std::vector<apps::SuiteJob> jobs;
    for (const apps::SuiteEntry &entry : apps::tableTwoSuite())
        jobs.push_back(apps::suiteJob(entry.id, options));
    std::vector<apps::AppRunResult> results =
        bench::runSuiteParallel(jobs);

    fs::path dir = fs::temp_directory_path() / "deskpar_bench_etlc";
    fs::create_directories(dir);

    // Pack: write the v3 baseline untimed; time the .etlc pack of
    // the whole corpus min-of-N (a single-shot record flaps with
    // scheduler noise and trips bench_compare's gate).
    std::vector<PackedTrace> corpus;
    std::vector<trace::TraceBundle> bundles;
    std::uintmax_t etlBytes = 0;
    for (std::size_t i = 0; i < results.size(); ++i) {
        // Live simulation bundles are not time-ordered; both
        // writers demand the canonical sort.
        trace::TraceBundle bundle = results[i].lastBundle;
        trace::sortBundle(bundle);
        PackedTrace packed;
        packed.label = jobs[i].label;
        packed.etl = dir / (packed.label + ".etl");
        packed.etlc = dir / (packed.label + ".etlc");
        trace::writeEtl(bundle, packed.etl.string());
        etlBytes += fs::file_size(packed.etl);
        corpus.push_back(std::move(packed));
        bundles.push_back(std::move(bundle));
    }
    double packWall = bench::minWallSeconds(3, [&]() {
        for (std::size_t i = 0; i < corpus.size(); ++i)
            trace::writeEtlc(bundles[i], corpus[i].etlc.string());
    });
    bundles.clear();
    std::uintmax_t etlcBytes = 0;
    for (const PackedTrace &packed : corpus)
        etlcBytes += fs::file_size(packed.etlc);

    double ratio = etlcBytes
                       ? double(etlBytes) / double(etlcBytes)
                       : 0.0;
    std::printf("corpus: %zu traces, .etl %.2f MiB -> .etlc "
                "%.2f MiB (%.2fx)\n",
                corpus.size(), double(etlBytes) / (1 << 20),
                double(etlcBytes) / (1 << 20), ratio);

    // Cold: ingest every .etlc with the cache disabled. min-of-N
    // over the whole corpus keeps the timed region large.
    constexpr int kReps = 3;
    analysis::OpenOptions cold;
    cold.useCache = false;
    cold.refreshCache = false;
    double coldWall = 1e300;
    for (int rep = 0; rep < kReps; ++rep) {
        Clock::time_point start = Clock::now();
        for (PackedTrace &packed : corpus) {
            analysis::OpenResult opened = analysis::openSession(
                packed.etlc.string(), cold);
            if (!opened.report.ok() || opened.warm) {
                std::fprintf(stderr, "FAIL: cold open of %s: %s\n",
                             packed.label.c_str(),
                             opened.report.summary().c_str());
                return 1;
            }
            if (rep == 0) {
                packed.tlp = opened.session
                                 ->concurrency(trace::PidSet{})
                                 .tlp();
                packed.avgFps =
                    opened.session->frameStats(trace::PidSet{}).avgFps;
            }
        }
        coldWall = std::min(
            coldWall,
            std::chrono::duration<double>(Clock::now() - start)
                .count());
    }

    // Seed the caches once (untimed), then time warm reopens and
    // cross-check each against its cold twin.
    for (const PackedTrace &packed : corpus) {
        analysis::OpenResult opened =
            analysis::openSession(packed.etlc.string());
        if (!opened.wroteCache && !opened.warm) {
            std::fprintf(stderr, "FAIL: no cache written for %s\n",
                         packed.label.c_str());
            return 1;
        }
    }
    double warmWall = 1e300;
    for (int rep = 0; rep < kReps; ++rep) {
        Clock::time_point start = Clock::now();
        for (const PackedTrace &packed : corpus) {
            analysis::OpenResult opened =
                analysis::openSession(packed.etlc.string());
            if (!opened.warm) {
                std::fprintf(stderr,
                             "FAIL: %s did not open warm\n",
                             packed.label.c_str());
                return 1;
            }
            double tlp = opened.session
                             ->concurrency(trace::PidSet{})
                             .tlp();
            double fps = opened.session->frameStats(trace::PidSet{}).avgFps;
            bool sameTlp =
                tlp == packed.tlp || (tlp != tlp &&
                                      packed.tlp != packed.tlp);
            bool sameFps =
                fps == packed.avgFps ||
                (fps != fps && packed.avgFps != packed.avgFps);
            if (!sameTlp || !sameFps) {
                std::fprintf(stderr,
                             "FAIL: warm %s diverges (tlp "
                             "%.17g/%.17g, fps %.17g/%.17g)\n",
                             packed.label.c_str(), tlp, packed.tlp,
                             fps, packed.avgFps);
                return 1;
            }
        }
        warmWall = std::min(
            warmWall,
            std::chrono::duration<double>(Clock::now() - start)
                .count());
    }

    double speedup = warmWall > 0.0 ? coldWall / warmWall : 0.0;
    std::printf("open: cold %.3f ms, warm %.3f ms (%.1fx) over %zu "
                "traces\n",
                coldWall * 1e3, warmWall * 1e3, speedup,
                corpus.size());

    bench::appendBenchRecord("micro_etlc_pack", packWall);
    bench::appendBenchRecord("micro_etlc_cold_open", coldWall);
    bench::appendBenchRecord("micro_etlc_warm_open", warmWall);

    int status = 0;
    double minRatio = envFloor("DESKPAR_ETLC_MIN_RATIO", 2.0);
    if (ratio < minRatio) {
        std::fprintf(stderr,
                     "FAIL: compression ratio %.2fx below the "
                     "%.2fx floor\n",
                     ratio, minRatio);
        status = 1;
    }
    double minSpeedup =
        envFloor("DESKPAR_ETLC_MIN_WARM_SPEEDUP", 1.5);
    if (speedup < minSpeedup) {
        std::fprintf(stderr,
                     "FAIL: warm speedup %.1fx below the %.1fx "
                     "floor\n",
                     speedup, minSpeedup);
        status = 1;
    }
    return status;
}

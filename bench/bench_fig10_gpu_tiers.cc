/**
 * @file
 * Figure 10: GPU utilization of the GTX 680 versus the GTX 1080 Ti
 * for the applications with substantial GPU use: Windows Media
 * Player, VLC, WinX, Bitcoin Miner, EasyMiner and Windows Ethereum
 * Miner. (VR is excluded — it requires a GPU above GTX 970 — and
 * PhoenixMiner does not support the GTX 680, as in the paper.)
 *
 * Also reports miner hash work: the GTX 680 completes >= 2x less
 * work despite running at full utilization, and Windows Ethereum
 * Miner shows *lower* utilization on Kepler (pre-crypto
 * architecture, unoptimized path).
 */

#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_util.hh"

using namespace deskpar;

int
main()
{
    bench::banner("Figure 10 - GPU utilization: GTX 680 vs 1080 Ti",
                  "Section V-D-2, Figure 10");

    bench::SuiteTimer timer("bench_fig10_gpu_tiers");

    const std::vector<std::string> kApps = {
        "wmplayer", "vlc", "winx", "bitcoinminer", "easyminer",
        "wineth"};

    report::TextTable table({"Application", "GTX 680 util (%)",
                             "GTX 1080 Ti util (%)",
                             "680/1080 Ti work ratio"});

    // Both GPU tiers of every app run concurrently: jobs alternate
    // (app, GTX 680), (app, GTX 1080 Ti) in kApps order.
    std::vector<apps::SuiteJob> jobs;
    for (const auto &id : kApps) {
        apps::RunOptions mid = bench::paperRunOptions();
        mid.config.gpu = sim::GpuSpec::gtx680();
        apps::RunOptions high = bench::paperRunOptions();
        high.config.gpu = sim::GpuSpec::gtx1080Ti();
        jobs.push_back(apps::suiteJob(id, mid));
        jobs.back().label = id + "@gtx680";
        jobs.push_back(apps::suiteJob(id, high));
        jobs.back().label = id + "@gtx1080ti";
    }
    std::vector<apps::AppRunResult> results =
        bench::runSuiteParallel(jobs);

    std::size_t next = 0;
    for (std::size_t app = 0; app < kApps.size(); ++app) {
        const apps::AppRunResult &r680 = results[next++];
        const apps::AppRunResult &r1080 = results[next++];

        double work680 = r680.iterations.back().gpuWork;
        double work1080 = r1080.iterations.back().gpuWork;
        std::string ratio =
            work1080 > 0.0
                ? report::formatNumber(work680 / work1080, 2)
                : "-";

        table.row()
            .cell(r680.agg.app)
            .cell(r680.gpuUtil(), 1)
            .cell(r1080.gpuUtil(), 1)
            .cell(ratio);
    }
    table.print(std::cout);

    std::printf("\nExpected shape: media players and WinX run ~3-4x "
                "higher utilization on the GTX 680; Bitcoin miners "
                "saturate both GPUs\nbut complete >=2x less work on "
                "the 680 (work ratio <= 0.5); Windows Ethereum Miner "
                "is the exception with *lower* 680 utilization "
                "(Kepler-unoptimized kernel).\n");
    return 0;
}

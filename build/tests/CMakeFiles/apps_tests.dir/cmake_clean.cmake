file(REMOVE_RECURSE
  "CMakeFiles/apps_tests.dir/apps/blocks_test.cc.o"
  "CMakeFiles/apps_tests.dir/apps/blocks_test.cc.o.d"
  "CMakeFiles/apps_tests.dir/apps/browser_mining_test.cc.o"
  "CMakeFiles/apps_tests.dir/apps/browser_mining_test.cc.o.d"
  "CMakeFiles/apps_tests.dir/apps/harness_test.cc.o"
  "CMakeFiles/apps_tests.dir/apps/harness_test.cc.o.d"
  "CMakeFiles/apps_tests.dir/apps/legacy_test.cc.o"
  "CMakeFiles/apps_tests.dir/apps/legacy_test.cc.o.d"
  "CMakeFiles/apps_tests.dir/apps/noise_test.cc.o"
  "CMakeFiles/apps_tests.dir/apps/noise_test.cc.o.d"
  "CMakeFiles/apps_tests.dir/apps/registry_test.cc.o"
  "CMakeFiles/apps_tests.dir/apps/registry_test.cc.o.d"
  "CMakeFiles/apps_tests.dir/apps/standard_test.cc.o"
  "CMakeFiles/apps_tests.dir/apps/standard_test.cc.o.d"
  "CMakeFiles/apps_tests.dir/apps/suite_property_test.cc.o"
  "CMakeFiles/apps_tests.dir/apps/suite_property_test.cc.o.d"
  "CMakeFiles/apps_tests.dir/apps/video_test.cc.o"
  "CMakeFiles/apps_tests.dir/apps/video_test.cc.o.d"
  "CMakeFiles/apps_tests.dir/apps/vr_test.cc.o"
  "CMakeFiles/apps_tests.dir/apps/vr_test.cc.o.d"
  "apps_tests"
  "apps_tests.pdb"
  "apps_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apps_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

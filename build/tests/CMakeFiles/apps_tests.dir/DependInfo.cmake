
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/apps/blocks_test.cc" "tests/CMakeFiles/apps_tests.dir/apps/blocks_test.cc.o" "gcc" "tests/CMakeFiles/apps_tests.dir/apps/blocks_test.cc.o.d"
  "/root/repo/tests/apps/browser_mining_test.cc" "tests/CMakeFiles/apps_tests.dir/apps/browser_mining_test.cc.o" "gcc" "tests/CMakeFiles/apps_tests.dir/apps/browser_mining_test.cc.o.d"
  "/root/repo/tests/apps/harness_test.cc" "tests/CMakeFiles/apps_tests.dir/apps/harness_test.cc.o" "gcc" "tests/CMakeFiles/apps_tests.dir/apps/harness_test.cc.o.d"
  "/root/repo/tests/apps/legacy_test.cc" "tests/CMakeFiles/apps_tests.dir/apps/legacy_test.cc.o" "gcc" "tests/CMakeFiles/apps_tests.dir/apps/legacy_test.cc.o.d"
  "/root/repo/tests/apps/noise_test.cc" "tests/CMakeFiles/apps_tests.dir/apps/noise_test.cc.o" "gcc" "tests/CMakeFiles/apps_tests.dir/apps/noise_test.cc.o.d"
  "/root/repo/tests/apps/registry_test.cc" "tests/CMakeFiles/apps_tests.dir/apps/registry_test.cc.o" "gcc" "tests/CMakeFiles/apps_tests.dir/apps/registry_test.cc.o.d"
  "/root/repo/tests/apps/standard_test.cc" "tests/CMakeFiles/apps_tests.dir/apps/standard_test.cc.o" "gcc" "tests/CMakeFiles/apps_tests.dir/apps/standard_test.cc.o.d"
  "/root/repo/tests/apps/suite_property_test.cc" "tests/CMakeFiles/apps_tests.dir/apps/suite_property_test.cc.o" "gcc" "tests/CMakeFiles/apps_tests.dir/apps/suite_property_test.cc.o.d"
  "/root/repo/tests/apps/video_test.cc" "tests/CMakeFiles/apps_tests.dir/apps/video_test.cc.o" "gcc" "tests/CMakeFiles/apps_tests.dir/apps/video_test.cc.o.d"
  "/root/repo/tests/apps/vr_test.cc" "tests/CMakeFiles/apps_tests.dir/apps/vr_test.cc.o" "gcc" "tests/CMakeFiles/apps_tests.dir/apps/vr_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/deskpar_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/deskpar_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/input/CMakeFiles/deskpar_input.dir/DependInfo.cmake"
  "/root/repo/build/src/report/CMakeFiles/deskpar_report.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/deskpar_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/deskpar_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

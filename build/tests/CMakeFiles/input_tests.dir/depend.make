# Empty dependencies file for input_tests.
# This may be replaced when dependencies are built.

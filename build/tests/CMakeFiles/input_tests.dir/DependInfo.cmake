
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/input/driver_test.cc" "tests/CMakeFiles/input_tests.dir/input/driver_test.cc.o" "gcc" "tests/CMakeFiles/input_tests.dir/input/driver_test.cc.o.d"
  "/root/repo/tests/input/script_io_test.cc" "tests/CMakeFiles/input_tests.dir/input/script_io_test.cc.o" "gcc" "tests/CMakeFiles/input_tests.dir/input/script_io_test.cc.o.d"
  "/root/repo/tests/input/script_test.cc" "tests/CMakeFiles/input_tests.dir/input/script_test.cc.o" "gcc" "tests/CMakeFiles/input_tests.dir/input/script_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/deskpar_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/deskpar_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/input/CMakeFiles/deskpar_input.dir/DependInfo.cmake"
  "/root/repo/build/src/report/CMakeFiles/deskpar_report.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/deskpar_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/deskpar_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/input_tests.dir/input/driver_test.cc.o"
  "CMakeFiles/input_tests.dir/input/driver_test.cc.o.d"
  "CMakeFiles/input_tests.dir/input/script_io_test.cc.o"
  "CMakeFiles/input_tests.dir/input/script_io_test.cc.o.d"
  "CMakeFiles/input_tests.dir/input/script_test.cc.o"
  "CMakeFiles/input_tests.dir/input/script_test.cc.o.d"
  "input_tests"
  "input_tests.pdb"
  "input_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/input_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/sim_tests.dir/sim/cpu_test.cc.o"
  "CMakeFiles/sim_tests.dir/sim/cpu_test.cc.o.d"
  "CMakeFiles/sim_tests.dir/sim/dist_test.cc.o"
  "CMakeFiles/sim_tests.dir/sim/dist_test.cc.o.d"
  "CMakeFiles/sim_tests.dir/sim/event_queue_test.cc.o"
  "CMakeFiles/sim_tests.dir/sim/event_queue_test.cc.o.d"
  "CMakeFiles/sim_tests.dir/sim/gpu_test.cc.o"
  "CMakeFiles/sim_tests.dir/sim/gpu_test.cc.o.d"
  "CMakeFiles/sim_tests.dir/sim/machine_test.cc.o"
  "CMakeFiles/sim_tests.dir/sim/machine_test.cc.o.d"
  "CMakeFiles/sim_tests.dir/sim/memory_test.cc.o"
  "CMakeFiles/sim_tests.dir/sim/memory_test.cc.o.d"
  "CMakeFiles/sim_tests.dir/sim/priority_test.cc.o"
  "CMakeFiles/sim_tests.dir/sim/priority_test.cc.o.d"
  "CMakeFiles/sim_tests.dir/sim/rng_test.cc.o"
  "CMakeFiles/sim_tests.dir/sim/rng_test.cc.o.d"
  "CMakeFiles/sim_tests.dir/sim/scheduler_param_test.cc.o"
  "CMakeFiles/sim_tests.dir/sim/scheduler_param_test.cc.o.d"
  "CMakeFiles/sim_tests.dir/sim/scheduler_test.cc.o"
  "CMakeFiles/sim_tests.dir/sim/scheduler_test.cc.o.d"
  "CMakeFiles/sim_tests.dir/sim/sync_test.cc.o"
  "CMakeFiles/sim_tests.dir/sim/sync_test.cc.o.d"
  "CMakeFiles/sim_tests.dir/sim/thread_test.cc.o"
  "CMakeFiles/sim_tests.dir/sim/thread_test.cc.o.d"
  "sim_tests"
  "sim_tests.pdb"
  "sim_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim/cpu_test.cc" "tests/CMakeFiles/sim_tests.dir/sim/cpu_test.cc.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/cpu_test.cc.o.d"
  "/root/repo/tests/sim/dist_test.cc" "tests/CMakeFiles/sim_tests.dir/sim/dist_test.cc.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/dist_test.cc.o.d"
  "/root/repo/tests/sim/event_queue_test.cc" "tests/CMakeFiles/sim_tests.dir/sim/event_queue_test.cc.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/event_queue_test.cc.o.d"
  "/root/repo/tests/sim/gpu_test.cc" "tests/CMakeFiles/sim_tests.dir/sim/gpu_test.cc.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/gpu_test.cc.o.d"
  "/root/repo/tests/sim/machine_test.cc" "tests/CMakeFiles/sim_tests.dir/sim/machine_test.cc.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/machine_test.cc.o.d"
  "/root/repo/tests/sim/memory_test.cc" "tests/CMakeFiles/sim_tests.dir/sim/memory_test.cc.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/memory_test.cc.o.d"
  "/root/repo/tests/sim/priority_test.cc" "tests/CMakeFiles/sim_tests.dir/sim/priority_test.cc.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/priority_test.cc.o.d"
  "/root/repo/tests/sim/rng_test.cc" "tests/CMakeFiles/sim_tests.dir/sim/rng_test.cc.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/rng_test.cc.o.d"
  "/root/repo/tests/sim/scheduler_param_test.cc" "tests/CMakeFiles/sim_tests.dir/sim/scheduler_param_test.cc.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/scheduler_param_test.cc.o.d"
  "/root/repo/tests/sim/scheduler_test.cc" "tests/CMakeFiles/sim_tests.dir/sim/scheduler_test.cc.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/scheduler_test.cc.o.d"
  "/root/repo/tests/sim/sync_test.cc" "tests/CMakeFiles/sim_tests.dir/sim/sync_test.cc.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/sync_test.cc.o.d"
  "/root/repo/tests/sim/thread_test.cc" "tests/CMakeFiles/sim_tests.dir/sim/thread_test.cc.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/thread_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/deskpar_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/deskpar_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/input/CMakeFiles/deskpar_input.dir/DependInfo.cmake"
  "/root/repo/build/src/report/CMakeFiles/deskpar_report.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/deskpar_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/deskpar_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/analysis/analyzer_test.cc" "tests/CMakeFiles/analysis_tests.dir/analysis/analyzer_test.cc.o" "gcc" "tests/CMakeFiles/analysis_tests.dir/analysis/analyzer_test.cc.o.d"
  "/root/repo/tests/analysis/framerate_test.cc" "tests/CMakeFiles/analysis_tests.dir/analysis/framerate_test.cc.o" "gcc" "tests/CMakeFiles/analysis_tests.dir/analysis/framerate_test.cc.o.d"
  "/root/repo/tests/analysis/gpu_queue_test.cc" "tests/CMakeFiles/analysis_tests.dir/analysis/gpu_queue_test.cc.o" "gcc" "tests/CMakeFiles/analysis_tests.dir/analysis/gpu_queue_test.cc.o.d"
  "/root/repo/tests/analysis/gpu_util_test.cc" "tests/CMakeFiles/analysis_tests.dir/analysis/gpu_util_test.cc.o" "gcc" "tests/CMakeFiles/analysis_tests.dir/analysis/gpu_util_test.cc.o.d"
  "/root/repo/tests/analysis/intervals_test.cc" "tests/CMakeFiles/analysis_tests.dir/analysis/intervals_test.cc.o" "gcc" "tests/CMakeFiles/analysis_tests.dir/analysis/intervals_test.cc.o.d"
  "/root/repo/tests/analysis/power_threads_test.cc" "tests/CMakeFiles/analysis_tests.dir/analysis/power_threads_test.cc.o" "gcc" "tests/CMakeFiles/analysis_tests.dir/analysis/power_threads_test.cc.o.d"
  "/root/repo/tests/analysis/responsiveness_test.cc" "tests/CMakeFiles/analysis_tests.dir/analysis/responsiveness_test.cc.o" "gcc" "tests/CMakeFiles/analysis_tests.dir/analysis/responsiveness_test.cc.o.d"
  "/root/repo/tests/analysis/stats_test.cc" "tests/CMakeFiles/analysis_tests.dir/analysis/stats_test.cc.o" "gcc" "tests/CMakeFiles/analysis_tests.dir/analysis/stats_test.cc.o.d"
  "/root/repo/tests/analysis/timeseries_test.cc" "tests/CMakeFiles/analysis_tests.dir/analysis/timeseries_test.cc.o" "gcc" "tests/CMakeFiles/analysis_tests.dir/analysis/timeseries_test.cc.o.d"
  "/root/repo/tests/analysis/tlp_test.cc" "tests/CMakeFiles/analysis_tests.dir/analysis/tlp_test.cc.o" "gcc" "tests/CMakeFiles/analysis_tests.dir/analysis/tlp_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/deskpar_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/deskpar_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/input/CMakeFiles/deskpar_input.dir/DependInfo.cmake"
  "/root/repo/build/src/report/CMakeFiles/deskpar_report.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/deskpar_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/deskpar_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

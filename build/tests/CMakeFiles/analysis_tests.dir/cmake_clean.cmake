file(REMOVE_RECURSE
  "CMakeFiles/analysis_tests.dir/analysis/analyzer_test.cc.o"
  "CMakeFiles/analysis_tests.dir/analysis/analyzer_test.cc.o.d"
  "CMakeFiles/analysis_tests.dir/analysis/framerate_test.cc.o"
  "CMakeFiles/analysis_tests.dir/analysis/framerate_test.cc.o.d"
  "CMakeFiles/analysis_tests.dir/analysis/gpu_queue_test.cc.o"
  "CMakeFiles/analysis_tests.dir/analysis/gpu_queue_test.cc.o.d"
  "CMakeFiles/analysis_tests.dir/analysis/gpu_util_test.cc.o"
  "CMakeFiles/analysis_tests.dir/analysis/gpu_util_test.cc.o.d"
  "CMakeFiles/analysis_tests.dir/analysis/intervals_test.cc.o"
  "CMakeFiles/analysis_tests.dir/analysis/intervals_test.cc.o.d"
  "CMakeFiles/analysis_tests.dir/analysis/power_threads_test.cc.o"
  "CMakeFiles/analysis_tests.dir/analysis/power_threads_test.cc.o.d"
  "CMakeFiles/analysis_tests.dir/analysis/responsiveness_test.cc.o"
  "CMakeFiles/analysis_tests.dir/analysis/responsiveness_test.cc.o.d"
  "CMakeFiles/analysis_tests.dir/analysis/stats_test.cc.o"
  "CMakeFiles/analysis_tests.dir/analysis/stats_test.cc.o.d"
  "CMakeFiles/analysis_tests.dir/analysis/timeseries_test.cc.o"
  "CMakeFiles/analysis_tests.dir/analysis/timeseries_test.cc.o.d"
  "CMakeFiles/analysis_tests.dir/analysis/tlp_test.cc.o"
  "CMakeFiles/analysis_tests.dir/analysis/tlp_test.cc.o.d"
  "analysis_tests"
  "analysis_tests.pdb"
  "analysis_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for deskpar_input.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libdeskpar_input.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/deskpar_input.dir/driver.cc.o"
  "CMakeFiles/deskpar_input.dir/driver.cc.o.d"
  "CMakeFiles/deskpar_input.dir/script.cc.o"
  "CMakeFiles/deskpar_input.dir/script.cc.o.d"
  "libdeskpar_input.a"
  "libdeskpar_input.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deskpar_input.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libdeskpar_report.a"
)

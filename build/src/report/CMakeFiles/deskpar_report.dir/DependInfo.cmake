
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/report/figure.cc" "src/report/CMakeFiles/deskpar_report.dir/figure.cc.o" "gcc" "src/report/CMakeFiles/deskpar_report.dir/figure.cc.o.d"
  "/root/repo/src/report/heatmap.cc" "src/report/CMakeFiles/deskpar_report.dir/heatmap.cc.o" "gcc" "src/report/CMakeFiles/deskpar_report.dir/heatmap.cc.o.d"
  "/root/repo/src/report/history.cc" "src/report/CMakeFiles/deskpar_report.dir/history.cc.o" "gcc" "src/report/CMakeFiles/deskpar_report.dir/history.cc.o.d"
  "/root/repo/src/report/json.cc" "src/report/CMakeFiles/deskpar_report.dir/json.cc.o" "gcc" "src/report/CMakeFiles/deskpar_report.dir/json.cc.o.d"
  "/root/repo/src/report/table.cc" "src/report/CMakeFiles/deskpar_report.dir/table.cc.o" "gcc" "src/report/CMakeFiles/deskpar_report.dir/table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/deskpar_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/deskpar_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/deskpar_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty compiler generated dependencies file for deskpar_report.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/deskpar_report.dir/figure.cc.o"
  "CMakeFiles/deskpar_report.dir/figure.cc.o.d"
  "CMakeFiles/deskpar_report.dir/heatmap.cc.o"
  "CMakeFiles/deskpar_report.dir/heatmap.cc.o.d"
  "CMakeFiles/deskpar_report.dir/history.cc.o"
  "CMakeFiles/deskpar_report.dir/history.cc.o.d"
  "CMakeFiles/deskpar_report.dir/json.cc.o"
  "CMakeFiles/deskpar_report.dir/json.cc.o.d"
  "CMakeFiles/deskpar_report.dir/table.cc.o"
  "CMakeFiles/deskpar_report.dir/table.cc.o.d"
  "libdeskpar_report.a"
  "libdeskpar_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deskpar_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/csv.cc" "src/trace/CMakeFiles/deskpar_trace.dir/csv.cc.o" "gcc" "src/trace/CMakeFiles/deskpar_trace.dir/csv.cc.o.d"
  "/root/repo/src/trace/etl.cc" "src/trace/CMakeFiles/deskpar_trace.dir/etl.cc.o" "gcc" "src/trace/CMakeFiles/deskpar_trace.dir/etl.cc.o.d"
  "/root/repo/src/trace/filter.cc" "src/trace/CMakeFiles/deskpar_trace.dir/filter.cc.o" "gcc" "src/trace/CMakeFiles/deskpar_trace.dir/filter.cc.o.d"
  "/root/repo/src/trace/merge.cc" "src/trace/CMakeFiles/deskpar_trace.dir/merge.cc.o" "gcc" "src/trace/CMakeFiles/deskpar_trace.dir/merge.cc.o.d"
  "/root/repo/src/trace/session.cc" "src/trace/CMakeFiles/deskpar_trace.dir/session.cc.o" "gcc" "src/trace/CMakeFiles/deskpar_trace.dir/session.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

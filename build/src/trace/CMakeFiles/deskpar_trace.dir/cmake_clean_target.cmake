file(REMOVE_RECURSE
  "libdeskpar_trace.a"
)

# Empty dependencies file for deskpar_trace.
# This may be replaced when dependencies are built.

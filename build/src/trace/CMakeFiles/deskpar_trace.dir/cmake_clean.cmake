file(REMOVE_RECURSE
  "CMakeFiles/deskpar_trace.dir/csv.cc.o"
  "CMakeFiles/deskpar_trace.dir/csv.cc.o.d"
  "CMakeFiles/deskpar_trace.dir/etl.cc.o"
  "CMakeFiles/deskpar_trace.dir/etl.cc.o.d"
  "CMakeFiles/deskpar_trace.dir/filter.cc.o"
  "CMakeFiles/deskpar_trace.dir/filter.cc.o.d"
  "CMakeFiles/deskpar_trace.dir/merge.cc.o"
  "CMakeFiles/deskpar_trace.dir/merge.cc.o.d"
  "CMakeFiles/deskpar_trace.dir/session.cc.o"
  "CMakeFiles/deskpar_trace.dir/session.cc.o.d"
  "libdeskpar_trace.a"
  "libdeskpar_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deskpar_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/deskpar_apps.dir/assistant.cc.o"
  "CMakeFiles/deskpar_apps.dir/assistant.cc.o.d"
  "CMakeFiles/deskpar_apps.dir/blocks.cc.o"
  "CMakeFiles/deskpar_apps.dir/blocks.cc.o.d"
  "CMakeFiles/deskpar_apps.dir/browser.cc.o"
  "CMakeFiles/deskpar_apps.dir/browser.cc.o.d"
  "CMakeFiles/deskpar_apps.dir/harness.cc.o"
  "CMakeFiles/deskpar_apps.dir/harness.cc.o.d"
  "CMakeFiles/deskpar_apps.dir/image_office.cc.o"
  "CMakeFiles/deskpar_apps.dir/image_office.cc.o.d"
  "CMakeFiles/deskpar_apps.dir/legacy.cc.o"
  "CMakeFiles/deskpar_apps.dir/legacy.cc.o.d"
  "CMakeFiles/deskpar_apps.dir/media.cc.o"
  "CMakeFiles/deskpar_apps.dir/media.cc.o.d"
  "CMakeFiles/deskpar_apps.dir/mining.cc.o"
  "CMakeFiles/deskpar_apps.dir/mining.cc.o.d"
  "CMakeFiles/deskpar_apps.dir/noise.cc.o"
  "CMakeFiles/deskpar_apps.dir/noise.cc.o.d"
  "CMakeFiles/deskpar_apps.dir/registry.cc.o"
  "CMakeFiles/deskpar_apps.dir/registry.cc.o.d"
  "CMakeFiles/deskpar_apps.dir/standard.cc.o"
  "CMakeFiles/deskpar_apps.dir/standard.cc.o.d"
  "CMakeFiles/deskpar_apps.dir/startup.cc.o"
  "CMakeFiles/deskpar_apps.dir/startup.cc.o.d"
  "CMakeFiles/deskpar_apps.dir/video.cc.o"
  "CMakeFiles/deskpar_apps.dir/video.cc.o.d"
  "CMakeFiles/deskpar_apps.dir/vr.cc.o"
  "CMakeFiles/deskpar_apps.dir/vr.cc.o.d"
  "libdeskpar_apps.a"
  "libdeskpar_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deskpar_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libdeskpar_apps.a"
)

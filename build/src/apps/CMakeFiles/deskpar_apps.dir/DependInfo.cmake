
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/assistant.cc" "src/apps/CMakeFiles/deskpar_apps.dir/assistant.cc.o" "gcc" "src/apps/CMakeFiles/deskpar_apps.dir/assistant.cc.o.d"
  "/root/repo/src/apps/blocks.cc" "src/apps/CMakeFiles/deskpar_apps.dir/blocks.cc.o" "gcc" "src/apps/CMakeFiles/deskpar_apps.dir/blocks.cc.o.d"
  "/root/repo/src/apps/browser.cc" "src/apps/CMakeFiles/deskpar_apps.dir/browser.cc.o" "gcc" "src/apps/CMakeFiles/deskpar_apps.dir/browser.cc.o.d"
  "/root/repo/src/apps/harness.cc" "src/apps/CMakeFiles/deskpar_apps.dir/harness.cc.o" "gcc" "src/apps/CMakeFiles/deskpar_apps.dir/harness.cc.o.d"
  "/root/repo/src/apps/image_office.cc" "src/apps/CMakeFiles/deskpar_apps.dir/image_office.cc.o" "gcc" "src/apps/CMakeFiles/deskpar_apps.dir/image_office.cc.o.d"
  "/root/repo/src/apps/legacy.cc" "src/apps/CMakeFiles/deskpar_apps.dir/legacy.cc.o" "gcc" "src/apps/CMakeFiles/deskpar_apps.dir/legacy.cc.o.d"
  "/root/repo/src/apps/media.cc" "src/apps/CMakeFiles/deskpar_apps.dir/media.cc.o" "gcc" "src/apps/CMakeFiles/deskpar_apps.dir/media.cc.o.d"
  "/root/repo/src/apps/mining.cc" "src/apps/CMakeFiles/deskpar_apps.dir/mining.cc.o" "gcc" "src/apps/CMakeFiles/deskpar_apps.dir/mining.cc.o.d"
  "/root/repo/src/apps/noise.cc" "src/apps/CMakeFiles/deskpar_apps.dir/noise.cc.o" "gcc" "src/apps/CMakeFiles/deskpar_apps.dir/noise.cc.o.d"
  "/root/repo/src/apps/registry.cc" "src/apps/CMakeFiles/deskpar_apps.dir/registry.cc.o" "gcc" "src/apps/CMakeFiles/deskpar_apps.dir/registry.cc.o.d"
  "/root/repo/src/apps/standard.cc" "src/apps/CMakeFiles/deskpar_apps.dir/standard.cc.o" "gcc" "src/apps/CMakeFiles/deskpar_apps.dir/standard.cc.o.d"
  "/root/repo/src/apps/startup.cc" "src/apps/CMakeFiles/deskpar_apps.dir/startup.cc.o" "gcc" "src/apps/CMakeFiles/deskpar_apps.dir/startup.cc.o.d"
  "/root/repo/src/apps/video.cc" "src/apps/CMakeFiles/deskpar_apps.dir/video.cc.o" "gcc" "src/apps/CMakeFiles/deskpar_apps.dir/video.cc.o.d"
  "/root/repo/src/apps/vr.cc" "src/apps/CMakeFiles/deskpar_apps.dir/vr.cc.o" "gcc" "src/apps/CMakeFiles/deskpar_apps.dir/vr.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/deskpar_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/input/CMakeFiles/deskpar_input.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/deskpar_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/deskpar_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

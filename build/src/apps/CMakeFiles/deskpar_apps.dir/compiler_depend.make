# Empty compiler generated dependencies file for deskpar_apps.
# This may be replaced when dependencies are built.

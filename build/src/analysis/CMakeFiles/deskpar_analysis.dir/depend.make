# Empty dependencies file for deskpar_analysis.
# This may be replaced when dependencies are built.

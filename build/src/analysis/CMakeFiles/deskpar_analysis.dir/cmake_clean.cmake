file(REMOVE_RECURSE
  "CMakeFiles/deskpar_analysis.dir/analyzer.cc.o"
  "CMakeFiles/deskpar_analysis.dir/analyzer.cc.o.d"
  "CMakeFiles/deskpar_analysis.dir/framerate.cc.o"
  "CMakeFiles/deskpar_analysis.dir/framerate.cc.o.d"
  "CMakeFiles/deskpar_analysis.dir/gpu_queue.cc.o"
  "CMakeFiles/deskpar_analysis.dir/gpu_queue.cc.o.d"
  "CMakeFiles/deskpar_analysis.dir/gpu_util.cc.o"
  "CMakeFiles/deskpar_analysis.dir/gpu_util.cc.o.d"
  "CMakeFiles/deskpar_analysis.dir/intervals.cc.o"
  "CMakeFiles/deskpar_analysis.dir/intervals.cc.o.d"
  "CMakeFiles/deskpar_analysis.dir/power.cc.o"
  "CMakeFiles/deskpar_analysis.dir/power.cc.o.d"
  "CMakeFiles/deskpar_analysis.dir/responsiveness.cc.o"
  "CMakeFiles/deskpar_analysis.dir/responsiveness.cc.o.d"
  "CMakeFiles/deskpar_analysis.dir/stats.cc.o"
  "CMakeFiles/deskpar_analysis.dir/stats.cc.o.d"
  "CMakeFiles/deskpar_analysis.dir/threads.cc.o"
  "CMakeFiles/deskpar_analysis.dir/threads.cc.o.d"
  "CMakeFiles/deskpar_analysis.dir/timeseries.cc.o"
  "CMakeFiles/deskpar_analysis.dir/timeseries.cc.o.d"
  "CMakeFiles/deskpar_analysis.dir/tlp.cc.o"
  "CMakeFiles/deskpar_analysis.dir/tlp.cc.o.d"
  "libdeskpar_analysis.a"
  "libdeskpar_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deskpar_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

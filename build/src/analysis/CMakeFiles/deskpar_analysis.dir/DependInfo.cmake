
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/analyzer.cc" "src/analysis/CMakeFiles/deskpar_analysis.dir/analyzer.cc.o" "gcc" "src/analysis/CMakeFiles/deskpar_analysis.dir/analyzer.cc.o.d"
  "/root/repo/src/analysis/framerate.cc" "src/analysis/CMakeFiles/deskpar_analysis.dir/framerate.cc.o" "gcc" "src/analysis/CMakeFiles/deskpar_analysis.dir/framerate.cc.o.d"
  "/root/repo/src/analysis/gpu_queue.cc" "src/analysis/CMakeFiles/deskpar_analysis.dir/gpu_queue.cc.o" "gcc" "src/analysis/CMakeFiles/deskpar_analysis.dir/gpu_queue.cc.o.d"
  "/root/repo/src/analysis/gpu_util.cc" "src/analysis/CMakeFiles/deskpar_analysis.dir/gpu_util.cc.o" "gcc" "src/analysis/CMakeFiles/deskpar_analysis.dir/gpu_util.cc.o.d"
  "/root/repo/src/analysis/intervals.cc" "src/analysis/CMakeFiles/deskpar_analysis.dir/intervals.cc.o" "gcc" "src/analysis/CMakeFiles/deskpar_analysis.dir/intervals.cc.o.d"
  "/root/repo/src/analysis/power.cc" "src/analysis/CMakeFiles/deskpar_analysis.dir/power.cc.o" "gcc" "src/analysis/CMakeFiles/deskpar_analysis.dir/power.cc.o.d"
  "/root/repo/src/analysis/responsiveness.cc" "src/analysis/CMakeFiles/deskpar_analysis.dir/responsiveness.cc.o" "gcc" "src/analysis/CMakeFiles/deskpar_analysis.dir/responsiveness.cc.o.d"
  "/root/repo/src/analysis/stats.cc" "src/analysis/CMakeFiles/deskpar_analysis.dir/stats.cc.o" "gcc" "src/analysis/CMakeFiles/deskpar_analysis.dir/stats.cc.o.d"
  "/root/repo/src/analysis/threads.cc" "src/analysis/CMakeFiles/deskpar_analysis.dir/threads.cc.o" "gcc" "src/analysis/CMakeFiles/deskpar_analysis.dir/threads.cc.o.d"
  "/root/repo/src/analysis/timeseries.cc" "src/analysis/CMakeFiles/deskpar_analysis.dir/timeseries.cc.o" "gcc" "src/analysis/CMakeFiles/deskpar_analysis.dir/timeseries.cc.o.d"
  "/root/repo/src/analysis/tlp.cc" "src/analysis/CMakeFiles/deskpar_analysis.dir/tlp.cc.o" "gcc" "src/analysis/CMakeFiles/deskpar_analysis.dir/tlp.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/deskpar_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

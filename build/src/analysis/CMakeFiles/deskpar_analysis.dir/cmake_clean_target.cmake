file(REMOVE_RECURSE
  "libdeskpar_analysis.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/deskpar_sim.dir/cpu.cc.o"
  "CMakeFiles/deskpar_sim.dir/cpu.cc.o.d"
  "CMakeFiles/deskpar_sim.dir/event_queue.cc.o"
  "CMakeFiles/deskpar_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/deskpar_sim.dir/gpu.cc.o"
  "CMakeFiles/deskpar_sim.dir/gpu.cc.o.d"
  "CMakeFiles/deskpar_sim.dir/machine.cc.o"
  "CMakeFiles/deskpar_sim.dir/machine.cc.o.d"
  "CMakeFiles/deskpar_sim.dir/process.cc.o"
  "CMakeFiles/deskpar_sim.dir/process.cc.o.d"
  "CMakeFiles/deskpar_sim.dir/scheduler.cc.o"
  "CMakeFiles/deskpar_sim.dir/scheduler.cc.o.d"
  "CMakeFiles/deskpar_sim.dir/sync.cc.o"
  "CMakeFiles/deskpar_sim.dir/sync.cc.o.d"
  "CMakeFiles/deskpar_sim.dir/thread.cc.o"
  "CMakeFiles/deskpar_sim.dir/thread.cc.o.d"
  "libdeskpar_sim.a"
  "libdeskpar_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deskpar_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for deskpar_sim.
# This may be replaced when dependencies are built.

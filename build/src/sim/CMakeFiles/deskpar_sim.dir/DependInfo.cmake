
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cpu.cc" "src/sim/CMakeFiles/deskpar_sim.dir/cpu.cc.o" "gcc" "src/sim/CMakeFiles/deskpar_sim.dir/cpu.cc.o.d"
  "/root/repo/src/sim/event_queue.cc" "src/sim/CMakeFiles/deskpar_sim.dir/event_queue.cc.o" "gcc" "src/sim/CMakeFiles/deskpar_sim.dir/event_queue.cc.o.d"
  "/root/repo/src/sim/gpu.cc" "src/sim/CMakeFiles/deskpar_sim.dir/gpu.cc.o" "gcc" "src/sim/CMakeFiles/deskpar_sim.dir/gpu.cc.o.d"
  "/root/repo/src/sim/machine.cc" "src/sim/CMakeFiles/deskpar_sim.dir/machine.cc.o" "gcc" "src/sim/CMakeFiles/deskpar_sim.dir/machine.cc.o.d"
  "/root/repo/src/sim/process.cc" "src/sim/CMakeFiles/deskpar_sim.dir/process.cc.o" "gcc" "src/sim/CMakeFiles/deskpar_sim.dir/process.cc.o.d"
  "/root/repo/src/sim/scheduler.cc" "src/sim/CMakeFiles/deskpar_sim.dir/scheduler.cc.o" "gcc" "src/sim/CMakeFiles/deskpar_sim.dir/scheduler.cc.o.d"
  "/root/repo/src/sim/sync.cc" "src/sim/CMakeFiles/deskpar_sim.dir/sync.cc.o" "gcc" "src/sim/CMakeFiles/deskpar_sim.dir/sync.cc.o.d"
  "/root/repo/src/sim/thread.cc" "src/sim/CMakeFiles/deskpar_sim.dir/thread.cc.o" "gcc" "src/sim/CMakeFiles/deskpar_sim.dir/thread.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/deskpar_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libdeskpar_sim.a"
)

# Empty dependencies file for bench_validation_automation.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_validation_automation.dir/bench_validation_automation.cc.o"
  "CMakeFiles/bench_validation_automation.dir/bench_validation_automation.cc.o.d"
  "bench_validation_automation"
  "bench_validation_automation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_validation_automation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig2_tlp_evolution.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for bench_ext_responsiveness.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_responsiveness.dir/bench_ext_responsiveness.cc.o"
  "CMakeFiles/bench_ext_responsiveness.dir/bench_ext_responsiveness.cc.o.d"
  "bench_ext_responsiveness"
  "bench_ext_responsiveness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_responsiveness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

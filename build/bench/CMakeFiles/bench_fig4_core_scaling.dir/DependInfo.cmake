
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig4_core_scaling.cc" "bench/CMakeFiles/bench_fig4_core_scaling.dir/bench_fig4_core_scaling.cc.o" "gcc" "bench/CMakeFiles/bench_fig4_core_scaling.dir/bench_fig4_core_scaling.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/deskpar_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/report/CMakeFiles/deskpar_report.dir/DependInfo.cmake"
  "/root/repo/build/src/input/CMakeFiles/deskpar_input.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/deskpar_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/deskpar_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/deskpar_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_winx_cuda.dir/bench_table3_winx_cuda.cc.o"
  "CMakeFiles/bench_table3_winx_cuda.dir/bench_table3_winx_cuda.cc.o.d"
  "bench_table3_winx_cuda"
  "bench_table3_winx_cuda.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_winx_cuda.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

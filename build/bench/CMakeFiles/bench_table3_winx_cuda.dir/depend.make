# Empty dependencies file for bench_table3_winx_cuda.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for bench_fig12_vr_headsets.
# This may be replaced when dependencies are built.

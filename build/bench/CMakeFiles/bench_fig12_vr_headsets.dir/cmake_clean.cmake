file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_vr_headsets.dir/bench_fig12_vr_headsets.cc.o"
  "CMakeFiles/bench_fig12_vr_headsets.dir/bench_fig12_vr_headsets.cc.o.d"
  "bench_fig12_vr_headsets"
  "bench_fig12_vr_headsets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_vr_headsets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

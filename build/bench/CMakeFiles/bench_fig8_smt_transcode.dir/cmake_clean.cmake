file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_smt_transcode.dir/bench_fig8_smt_transcode.cc.o"
  "CMakeFiles/bench_fig8_smt_transcode.dir/bench_fig8_smt_transcode.cc.o.d"
  "bench_fig8_smt_transcode"
  "bench_fig8_smt_transcode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_smt_transcode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

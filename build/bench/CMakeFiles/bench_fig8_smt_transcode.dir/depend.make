# Empty dependencies file for bench_fig8_smt_transcode.
# This may be replaced when dependencies are built.

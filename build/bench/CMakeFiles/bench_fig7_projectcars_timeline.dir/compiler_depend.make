# Empty compiler generated dependencies file for bench_fig7_projectcars_timeline.
# This may be replaced when dependencies are built.

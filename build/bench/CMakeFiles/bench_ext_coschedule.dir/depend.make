# Empty dependencies file for bench_ext_coschedule.
# This may be replaced when dependencies are built.

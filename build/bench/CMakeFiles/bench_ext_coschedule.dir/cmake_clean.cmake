file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_coschedule.dir/bench_ext_coschedule.cc.o"
  "CMakeFiles/bench_ext_coschedule.dir/bench_ext_coschedule.cc.o.d"
  "bench_ext_coschedule"
  "bench_ext_coschedule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_coschedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

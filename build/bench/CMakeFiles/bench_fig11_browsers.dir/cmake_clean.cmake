file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_browsers.dir/bench_fig11_browsers.cc.o"
  "CMakeFiles/bench_fig11_browsers.dir/bench_fig11_browsers.cc.o.d"
  "bench_fig11_browsers"
  "bench_fig11_browsers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_browsers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

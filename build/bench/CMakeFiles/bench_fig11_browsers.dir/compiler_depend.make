# Empty compiler generated dependencies file for bench_fig11_browsers.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_gpu_tiers.dir/bench_fig10_gpu_tiers.cc.o"
  "CMakeFiles/bench_fig10_gpu_tiers.dir/bench_fig10_gpu_tiers.cc.o.d"
  "bench_fig10_gpu_tiers"
  "bench_fig10_gpu_tiers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_gpu_tiers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_vr_framerate.dir/bench_fig13_vr_framerate.cc.o"
  "CMakeFiles/bench_fig13_vr_framerate.dir/bench_fig13_vr_framerate.cc.o.d"
  "bench_fig13_vr_framerate"
  "bench_fig13_vr_framerate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_vr_framerate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

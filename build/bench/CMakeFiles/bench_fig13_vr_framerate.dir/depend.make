# Empty dependencies file for bench_fig13_vr_framerate.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_2010_testbed.dir/bench_ext_2010_testbed.cc.o"
  "CMakeFiles/bench_ext_2010_testbed.dir/bench_ext_2010_testbed.cc.o.d"
  "bench_ext_2010_testbed"
  "bench_ext_2010_testbed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_2010_testbed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_ext_2010_testbed.
# This may be replaced when dependencies are built.

# Empty dependencies file for bench_ext_app_vs_system.
# This may be replaced when dependencies are built.

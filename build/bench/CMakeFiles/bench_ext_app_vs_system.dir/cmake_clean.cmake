file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_app_vs_system.dir/bench_ext_app_vs_system.cc.o"
  "CMakeFiles/bench_ext_app_vs_system.dir/bench_ext_app_vs_system.cc.o.d"
  "bench_ext_app_vs_system"
  "bench_ext_app_vs_system.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_app_vs_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig6_photoshop_timeline.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for bench_fig9_premiere_gpu.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for deskpar_cli.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/deskpar_cli.dir/deskpar.cc.o"
  "CMakeFiles/deskpar_cli.dir/deskpar.cc.o.d"
  "deskpar"
  "deskpar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deskpar_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for vr_frame_pacing.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/vr_frame_pacing.dir/vr_frame_pacing.cpp.o"
  "CMakeFiles/vr_frame_pacing.dir/vr_frame_pacing.cpp.o.d"
  "vr_frame_pacing"
  "vr_frame_pacing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vr_frame_pacing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

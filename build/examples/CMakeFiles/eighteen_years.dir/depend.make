# Empty dependencies file for eighteen_years.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/eighteen_years.dir/eighteen_years.cpp.o"
  "CMakeFiles/eighteen_years.dir/eighteen_years.cpp.o.d"
  "eighteen_years"
  "eighteen_years.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eighteen_years.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

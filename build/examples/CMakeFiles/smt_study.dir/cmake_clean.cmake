file(REMOVE_RECURSE
  "CMakeFiles/smt_study.dir/smt_study.cpp.o"
  "CMakeFiles/smt_study.dir/smt_study.cpp.o.d"
  "smt_study"
  "smt_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smt_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for smt_study.
# This may be replaced when dependencies are built.

/**
 * @file
 * Shared flag parsing for deskpar subcommands.
 *
 * Every subcommand used to hand-roll its own argv loop, and the loops
 * drifted: one treated a bad number as a generic runtime error (exit
 * 1), another called usage() (exit 2), a third silently took 0. This
 * helper makes the behavior uniform by construction:
 *
 *   cli::Parser parser("query");
 *   parser.flag("--explain", &explain);
 *   parser.option("--app", "PREFIX", &prefix);
 *   parser.positionals(&args, 2, cli::Parser::kUnlimited);
 *   if (!parser.parse(argc, argv, 2))
 *       return 2;   // message already on stderr
 *
 * All parse failures print one line to stderr in the shape
 * "deskpar <command>: <what>" and the command exits 2, matching
 * usage(). Numeric options reject trailing junk ("8x" is an error,
 * not 8), which the old std::stoul loops accepted into exit 1.
 *
 * The common cross-command options (--jobs, --json, --app,
 * --lenient-traces) are registered through addCommonOptions() with a
 * mask, so their spelling, value names, and error text cannot drift
 * between subcommands again.
 */

#ifndef DESKPAR_TOOLS_CLI_OPTIONS_HH
#define DESKPAR_TOOLS_CLI_OPTIONS_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <string>
#include <type_traits>
#include <vector>

namespace deskpar::cli {

/** Strict unsigned parse ("8x" fails); shared with option(). */
bool parseUnsigned(const std::string &text, std::uint64_t &out);

/** Strict finite-double parse. */
bool parseDouble(const std::string &text, double &out);

class Parser
{
  public:
    static constexpr std::size_t kUnlimited =
        std::numeric_limits<std::size_t>::max();

    /** @p command names the subcommand in error messages. */
    explicit Parser(std::string command);

    /** Boolean flag: present sets *out to true. */
    Parser &flag(const char *name, bool *out);

    /** String-valued option: `--name VALUE` or `--name=VALUE`. */
    Parser &option(const char *name, const char *valueName,
                   std::string *out);

    /**
     * Unsigned integer option (any unsigned width); rejects sign,
     * junk, and out-of-range values.
     */
    template <typename T>
    std::enable_if_t<std::is_unsigned_v<T> &&
                         !std::is_same_v<T, bool>,
                     Parser &>
    option(const char *name, const char *valueName, T *out)
    {
        return option(
            name, valueName,
            [out](const std::string &value, std::string &error) {
                std::uint64_t parsed = 0;
                if (!parseUnsigned(value, parsed) ||
                    parsed > std::numeric_limits<T>::max()) {
                    error = "expects a non-negative integer, got '" +
                            value + "'";
                    return false;
                }
                *out = static_cast<T>(parsed);
                return true;
            });
    }

    /** Finite double option; rejects junk. */
    Parser &option(const char *name, const char *valueName,
                   double *out);

    /**
     * Option with custom validation. The callback returns false and
     * fills @p error (appended to "deskpar <cmd>: option '--x': ")
     * to reject the value.
     */
    Parser &option(const char *name, const char *valueName,
                   std::function<bool(const std::string &value,
                                      std::string &error)>
                       callback);

    /**
     * Collect non-option arguments. parse() fails when fewer than
     * @p min or more than @p max are given. Without this call any
     * positional argument is an error.
     */
    Parser &positionals(std::vector<std::string> *out, std::size_t min,
                        std::size_t max, const char *what = "argument");

    /**
     * Parse argv[first..argc). On failure prints one
     * "deskpar <command>: ..." line to stderr and returns false; the
     * caller should exit 2. Arguments after a literal "--" are all
     * positional.
     */
    bool parse(int argc, char **argv, int first);

  private:
    struct Option
    {
        std::string name;
        std::string valueName; // empty for flags
        bool *flagOut = nullptr;
        std::function<bool(const std::string &, std::string &)> apply;
    };

    bool fail(const std::string &what) const;
    const Option *findOption(const std::string &name) const;

    std::string command_;
    std::vector<Option> options_;
    std::vector<std::string> *positionals_ = nullptr;
    std::size_t minPositionals_ = 0;
    std::size_t maxPositionals_ = 0;
    std::string positionalWhat_ = "argument";
};

/** Which of the shared options a subcommand accepts. */
enum CommonOption : unsigned {
    kOptJobs = 1u << 0,    ///< --jobs N (0 = auto)
    kOptJson = 1u << 1,    ///< --json
    kOptLenient = 1u << 2, ///< --lenient-traces
    kOptApp = 1u << 3,     ///< --app PREFIX
};

/** The options every subcommand spells the same way. */
struct CommonOptions
{
    unsigned jobs = 0;
    bool json = false;
    bool lenient = false;
    std::string appPrefix;
};

/** Register the masked subset of common options on @p parser. */
void addCommonOptions(Parser &parser, CommonOptions &out,
                      unsigned mask);

} // namespace deskpar::cli

#endif // DESKPAR_TOOLS_CLI_OPTIONS_HH

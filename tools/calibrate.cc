// Calibration scratch tool: run the suite, print measured vs target.
#include <cstdio>
#include <cstring>
#include <map>
#include <string>

#include "apps/harness.hh"
#include "apps/registry.hh"

using namespace deskpar;

struct Target { double tlp, gpu; };
static const std::map<std::string, Target> kTargets = {
    {"photoshop", {8.6, 1.6}},   {"maya", {2.7, 9.9}},
    {"autocad", {1.2, 9.0}},     {"acrobat", {1.3, 0.0}},
    {"excel", {2.1, 2.1}},       {"powerpoint", {1.2, 4.0}},
    {"word", {1.3, 1.7}},        {"outlook", {1.3, 2.5}},
    {"quicktime", {1.1, 16.4}},  {"wmplayer", {1.3, 16.1}},
    {"vlc", {1.8, 15.7}},        {"powerdirector", {4.3, 6.3}},
    {"premiere", {1.8, 0.6}},    {"handbrake", {9.4, 0.4}},
    {"winx", {9.2, 13.6}},       {"firefox", {2.2, 8.6}},
    {"chrome", {2.2, 5.1}},      {"edge", {2.0, 4.0}},
    {"azsunshine", {3.4, 68.2}}, {"fallout4", {4.0, 84.9}},
    {"rawdata", {2.6, 90.9}},    {"serioussam", {2.4, 72.2}},
    {"spacepirate", {2.7, 61.6}},{"projectcars2", {3.8, 80.2}},
    {"bitcoinminer", {5.4, 98.9}},{"easyminer", {11.9, 96.1}},
    {"phoenixminer", {1.0, 100.0}},{"wineth", {1.0, 99.7}},
    {"cortana", {1.4, 2.7}},     {"braina", {1.1, 0.0}},
};

int main(int argc, char **argv) {
    apps::RunOptions opts;
    opts.iterations = 3;
    opts.duration = sim::sec(30);
    std::string only = argc > 1 ? argv[1] : "";
    std::printf("%-14s %6s %6s | %6s %6s | %7s %7s\n", "app", "TLP", "tgt",
                "GPU%", "tgt", "dTLP", "dGPU");
    for (const auto &entry : apps::tableTwoSuite()) {
        if (!only.empty() && entry.id != only) continue;
        auto res = apps::runWorkload(entry.id, opts);
        auto t = kTargets.at(entry.id);
        std::printf("%-14s %6.2f %6.2f | %6.1f %6.1f | %+6.1f%% %+6.1f%%\n",
                    entry.id.c_str(), res.tlp(), t.tlp, res.gpuUtil(), t.gpu,
                    t.tlp ? 100.0 * (res.tlp() - t.tlp) / t.tlp : 0.0,
                    t.gpu ? 100.0 * (res.gpuUtil() - t.gpu) / t.gpu : 0.0);
        std::fflush(stdout);
    }
    return 0;
}

/**
 * @file
 * deskpar — the command-line front end of the toolkit.
 *
 *   deskpar list
 *       List every workload in the Table II suite.
 *
 *   deskpar run <id> [options]
 *       Run one workload and print its metrics.
 *
 *   deskpar sweep <id> --cores 4,8,12 [options]
 *       Core-scaling sweep (the Figure 4 methodology).
 *
 *   deskpar sweep --count N --seed S --out DIR [--resume]
 *           [--seconds X] [--shard-size K] [--jobs N]
 *       Seeded corpus sweep (apps/sweep.hh): N scenarios sampled
 *       from app x cores x SMT x scheduler-policy space, executed
 *       in shards across the work-stealing runner with a resumable
 *       checkpoint. Same seed => byte-identical sweep.jsonl at any
 *       job count and across --resume boundaries.
 *
 *   deskpar suite [options]
 *       The full Table II suite, one row per application.
 *
 *   deskpar threads <id> [options]
 *       Per-thread busy-time breakdown (WPA's by-thread view).
 *
 *   deskpar legacy [options]
 *       The 2010 Blake et al. suite on its contemporary machine.
 *
 *   deskpar report <prefix> [options]
 *       Run the full suite and write <prefix>.md (markdown results
 *       table) and <prefix>.jsonl (one JSON record per application)
 *       — a reproducibility dossier.
 *
 *   deskpar replay <file...> [--app PREFIX] [--lenient-traces]
 *           [--json]
 *       Re-analyze saved traces (.etl, block-compressed .etlc, or a
 *       CPU Usage .csv — formats are sniffed, not guessed from the
 *       name). A corrupt file fails that file only — its structured
 *       parse error is reported and every other file still completes.
 *       --lenient-traces skips malformed records instead and
 *       analyzes what remains (the report notes what was dropped).
 *       --json emits one analyze document per file (JSONL), the same
 *       schema the serve analyze op returns.
 *
 *   deskpar pack <trace> [-o OUT] [--verify] [--index] [--jobs N]
 *           [--lenient-traces]
 *       Convert a .etl or CPU-Usage .csv trace to the block-
 *       compressed columnar .etlc container (trace/etlc.hh) and
 *       print the size ratio. --verify re-decodes the packed file
 *       and cross-checks every analyzer output against the source
 *       (exit 1 on any mismatch); --index additionally writes the
 *       .dpidx spill of the built TraceIndex next to the output so
 *       later opens skip ingest entirely (analysis/index_cache.hh).
 *
 *   deskpar stats <file...> [replay options] [--stats-json FILE]
 *           [--selftrace FILE]
 *       Replay with self-tracing on: the pipeline's own spans are
 *       collected, reported as JSON, serialized as a DeskPar .etl,
 *       and re-ingested so the toolkit computes the TLP of its own
 *       run (see src/obs/).
 *
 *   deskpar query <file> [--json] [--explain] [--jobs N]
 *           [--lenient-traces] <spec>...
 *       Batch metric queries over a saved trace, compiled into one
 *       fused pass per distinct filter (analysis/query_plan.hh).
 *       Each spec is metric[/key=value]..., e.g.
 *         tlp/app=handbrake
 *         busy/pids=5,6/t0=1.5/t1=20/cpus=0-3
 *         gpu/by=engine      csrate/by=thread
 *         dhist/app=chrome   tlp/by=bucket:250ms
 *       --explain prints the fused plan (distinct filters, column
 *       passes, metrics per pass) before running; --json emits the
 *       versioned query document (schema 1).
 *
 *   deskpar bottlenecks <file> [--json] [--app PREFIX] [--top N]
 *           [--jobs N] [--lenient-traces]
 *       Wakeup-chain serialization-bottleneck report
 *       (analysis/blocking.hh): per-thread ready-queue waits
 *       (victims), time others spent blocked behind each thread
 *       (culprits), the hottest wakeup edges, the critical path,
 *       and the bottleneck-limited vs structurally-serial
 *       classification. --top caps each ranking section.
 *
 *   deskpar serve <socket> [--workers N] [--cache-mb MB]
 *           [--request-jobs N]
 *       Resident analysis daemon (src/serve/): hot traces stay in a
 *       byte-bounded session cache, requests arrive as newline-
 *       delimited JSON on a local AF_UNIX socket, and repeat
 *       requests against the same file skip ingest entirely.
 *
 *   deskpar client <socket> <op> [args] [options]
 *       One request against a running serve: ping | stats |
 *       shutdown | analyze <trace> | query <trace> <spec>... |
 *       bottlenecks <trace> | frames <trace> | series <trace>
 *       [--kind K --window-ms X] | raw <json-line>. Prints the
 *       result document — byte-identical to the equivalent CLI
 *       --json invocation.
 *
 * The per-command synopses live in kCommands below; usage() renders
 * that table, so help text cannot drift from the dispatcher again.
 *
 * Exit codes are uniform: 0 success, 1 runtime failure (bad trace,
 * failed verify, degraded lenient ingest), 2 usage error (unknown
 * option, malformed number, missing argument).
 *
 * Common options:
 *   --cores N        active CPUs (logical with SMT, physical without)
 *   --no-smt         disable SMT (one hardware thread per core)
 *   --gpu NAME       1080ti | 680 | 285
 *   --iterations N   default 3
 *   --seconds S      simulated seconds per iteration (default 30)
 *   --seed S         seed base (default 42)
 *   --manual         human-operator input instead of automation
 *   --noise X        background-noise intensity (default 0 = off)
 *   --etl FILE       save the last iteration's trace as .etl
 *   --cpu-csv FILE   export the CPU Usage (Precise) CSV
 *   --gpu-csv FILE   export the GPU Utilization CSV
 *   --timeline MS    print an instantaneous-TLP timeline (window MS)
 *   --json           machine-readable output (run subcommand)
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/index_cache.hh"
#include "analysis/power.hh"
#include "analysis/responsiveness.hh"
#include "analysis/service.hh"
#include "analysis/session.hh"
#include "analysis/threads.hh"
#include "analysis/timeseries.hh"
#include "obs/obs.hh"
#include "obs/selftrace.hh"
#include "apps/harness.hh"
#include "apps/legacy.hh"
#include "apps/registry.hh"
#include "apps/runner.hh"
#include "apps/sweep.hh"
#include "report/documents.hh"
#include "report/figure.hh"
#include "report/json.hh"
#include "report/heatmap.hh"
#include "report/table.hh"
#include "serve/client.hh"
#include "serve/json_value.hh"
#include "serve/protocol.hh"
#include "serve/server.hh"
#include "trace/csv.hh"
#include "trace/diagnostic.hh"
#include "trace/etl.hh"
#include "trace/etlc.hh"
#include "trace/io.hh"
#include "trace/merge.hh"

#include "cli_options.hh"

using namespace deskpar;

namespace {

struct CliOptions
{
    apps::RunOptions run;
    std::string etlPath;
    std::string cpuCsvPath;
    std::string gpuCsvPath;
    sim::SimDuration timelineWindow = 0;
    std::vector<unsigned> sweepCores = {4, 8, 12};
    bool json = false;
};

/**
 * The single source of the command surface: main() dispatches on
 * .name and usage() renders .synopsis/.summary, so adding a command
 * here is the whole help-text story.
 */
struct CommandHelp
{
    const char *name;
    const char *synopsis;
    const char *summary;
};

constexpr CommandHelp kCommands[] = {
    {"list", "list", "list every workload in the Table II suite"},
    {"run", "run <id> [options]",
     "run one workload and print its metrics"},
    {"sweep", "sweep <id> --cores 4,8,12 [options]",
     "core-scaling sweep (the Figure 4 methodology)"},
    {"sweep (corpus)",
     "sweep --count N --seed S --out DIR [--resume] "
     "[--seconds X] [--shard-size K] [--jobs N]",
     "seeded corpus sweep: N sampled scenarios, sharded + "
     "resumable, one JSON metric row each"},
    {"suite", "suite [options]",
     "the full Table II suite, one row per application"},
    {"threads", "threads <id> [options]",
     "per-thread busy-time breakdown and power estimate"},
    {"legacy", "legacy [options]",
     "the 2010 Blake et al. suite on its contemporary machine"},
    {"report", "report <prefix> [options]",
     "write <prefix>.md and <prefix>.jsonl (reproducibility dossier)"},
    {"replay",
     "replay <file...> [--app PREFIX] [--lenient-traces] [--json]",
     "re-analyze saved .etl / .etlc / CPU-Usage .csv traces"},
    {"pack",
     "pack <trace> [-o OUT] [--verify] [--index] [--jobs N] "
     "[--lenient-traces]",
     "convert a trace to block-compressed columnar .etlc "
     "(+ optional .dpidx index cache)"},
    {"stats",
     "stats <file...> [replay options] [--stats-json FILE] "
     "[--selftrace FILE]",
     "replay with self-tracing: analyze DeskPar's own run with "
     "DeskPar"},
    {"query",
     "query <file> [--json] [--explain] [--jobs N] "
     "[--lenient-traces] <spec>...",
     "fused batch metric queries over a saved trace"},
    {"bottlenecks",
     "bottlenecks <file> [--json] [--app PREFIX] [--top N] "
     "[--jobs N] [--lenient-traces]",
     "wakeup-chain serialization-bottleneck report (ready-queue "
     "waits, culprits, critical path)"},
    {"serve",
     "serve <socket> [--workers N] [--cache-mb MB] "
     "[--request-jobs N]",
     "resident analysis daemon: hot traces stay cached, requests "
     "are JSON lines on a local socket"},
    {"client",
     "client <socket> <op> [args] [options]",
     "send one request to a running deskpar serve and print the "
     "result document"},
};

[[noreturn]] void
usage()
{
    std::fprintf(stderr, "usage: deskpar <command> [options]\n\n"
                         "commands:\n");
    for (const CommandHelp &cmd : kCommands)
        std::fprintf(stderr, "  %-58s %s\n", cmd.synopsis,
                     cmd.summary);
    std::fprintf(stderr,
                 "\n(common run options are listed in the header of "
                 "tools/deskpar.cc)\n");
    std::exit(2);
}

bool
parseCoreList(const std::string &arg, std::vector<unsigned> &cores,
              std::string &error)
{
    cores.clear();
    std::size_t pos = 0;
    while (pos < arg.size()) {
        std::size_t comma = arg.find(',', pos);
        if (comma == std::string::npos)
            comma = arg.size();
        std::uint64_t value = 0;
        if (!cli::parseUnsigned(arg.substr(pos, comma - pos),
                                value)) {
            error = "expects a comma-separated core list, got '" +
                    arg + "'";
            return false;
        }
        cores.push_back(static_cast<unsigned>(value));
        pos = comma + 1;
    }
    if (cores.empty()) {
        error = "expects a comma-separated core list, got '" + arg +
                "'";
        return false;
    }
    return true;
}

bool
gpuByName(const std::string &name, sim::GpuSpec &gpu,
          std::string &error)
{
    if (name == "1080ti") {
        gpu = sim::GpuSpec::gtx1080Ti();
    } else if (name == "680") {
        gpu = sim::GpuSpec::gtx680();
    } else if (name == "285") {
        gpu = sim::GpuSpec::gtx285();
    } else {
        error = "expects 1080ti, 680, or 285, got '" + name + "'";
        return false;
    }
    return true;
}

/**
 * The shared run/sweep/suite/threads/legacy/report option set, on
 * the cli::Parser so every malformed value is a uniform exit-2
 * usage error (the old std::stoul loops threw into exit 1).
 */
bool
parseRunOptions(const char *command, int argc, char **argv, int first,
                CliOptions &cli)
{
    cli.run.iterations = 3;
    cli.run.duration = sim::sec(30.0);
    cli.run.seedBase = 42;

    double seconds = 30.0;
    double timelineMs = 0.0;
    bool noSmt = false;
    cli::Parser parser(command);
    parser.option("--cores", "LIST",
                  [&cli](const std::string &value,
                         std::string &error) {
                      if (!parseCoreList(value, cli.sweepCores,
                                         error))
                          return false;
                      cli.run.config.activeCpus =
                          cli.sweepCores.front();
                      return true;
                  });
    parser.flag("--no-smt", &noSmt);
    parser.option("--gpu", "NAME",
                  [&cli](const std::string &value,
                         std::string &error) {
                      return gpuByName(value, cli.run.config.gpu,
                                       error);
                  });
    parser.option("--iterations", "N", &cli.run.iterations);
    parser.option("--seconds", "S", &seconds);
    parser.option("--seed", "S", &cli.run.seedBase);
    parser.flag("--manual", &cli.run.manualInput);
    parser.option("--noise", "X", &cli.run.noiseIntensity);
    parser.option("--etl", "FILE", &cli.etlPath);
    parser.option("--cpu-csv", "FILE", &cli.cpuCsvPath);
    parser.option("--gpu-csv", "FILE", &cli.gpuCsvPath);
    parser.option("--timeline", "MS", &timelineMs);
    parser.flag("--json", &cli.json);
    if (!parser.parse(argc, argv, first))
        return false;

    if (noSmt)
        cli.run.config.smtEnabled = false;
    cli.run.duration = sim::sec(seconds);
    if (timelineMs > 0)
        cli.timelineWindow = sim::msec(timelineMs);
    return true;
}

void
printRun(const std::string &id, const apps::AppRunResult &result,
         const analysis::Session &session)
{
    std::printf("%s\n", apps::makeWorkload(id)->spec().name.c_str());
    std::printf("  TLP        %.2f +- %.2f\n",
                result.agg.tlp.mean(), result.agg.tlp.stddev());
    std::printf("  GPU util   %.1f%% +- %.1f%%%s\n",
                result.agg.gpuUtil.mean(),
                result.agg.gpuUtil.stddev(),
                result.agg.gpuOverlapped ? " (overlapping packets)"
                                         : "");
    std::printf("  frames/s   %.1f (real %.1f)\n",
                result.fps.mean(), result.realFps.mean());
    std::printf("  max conc.  %.0f\n",
                result.agg.maxConcurrency.max());
    std::printf("  exec time  %s\n",
                report::heatmapRow(result.agg.meanC).c_str());

    auto responsiveness = session.responsiveness(result.lastPids);
    if (responsiveness.inputs > 0) {
        std::printf("  response   %.2f ms mean (%zu inputs)\n",
                    responsiveness.meanLatencyMs(),
                    responsiveness.inputs);
    }
}

int
cmdList()
{
    report::TextTable table({"Id", "Category", "Application"});
    for (const auto &entry : apps::tableTwoSuite()) {
        table.row()
            .cell(entry.id)
            .cell(entry.category)
            .cell(apps::makeWorkload(entry.id)->spec().name);
    }
    table.print(std::cout);
    return 0;
}

int
cmdRun(const std::string &id, CliOptions cli)
{
    apps::AppRunResult result = apps::runWorkload(id, cli.run);
    // One session serves the summary's responsiveness column and the
    // optional timeline below.
    analysis::Session session(result.lastBundle);
    if (cli.json)
        report::writeJson(std::cout, result.agg);
    else
        printRun(id, result, session);

    if (!cli.etlPath.empty()) {
        trace::writeEtl(result.lastBundle, cli.etlPath);
        std::printf("  wrote %s\n", cli.etlPath.c_str());
    }
    if (!cli.cpuCsvPath.empty()) {
        trace::writeCpuUsageCsv(result.lastBundle, cli.cpuCsvPath);
        std::printf("  wrote %s\n", cli.cpuCsvPath.c_str());
    }
    if (!cli.gpuCsvPath.empty()) {
        trace::writeGpuUtilCsv(result.lastBundle, cli.gpuCsvPath);
        std::printf("  wrote %s\n", cli.gpuCsvPath.c_str());
    }
    if (cli.timelineWindow > 0) {
        auto series = session.concurrencySeries(result.lastPids,
                                                cli.timelineWindow);
        report::Figure figure("Instantaneous TLP", "time (s)",
                              "threads");
        auto &s = figure.addSeries(id);
        for (const auto &point : series.points)
            s.add(sim::toSeconds(point.t), point.value);
        figure.printAscii(std::cout, 72, 12);
    }
    return 0;
}

int
cmdSweep(const std::string &id, CliOptions cli)
{
    report::TextTable table({"Logical cores", "TLP", "GPU util (%)",
                             "Frames/s", "Response (ms)"});
    for (unsigned cores : cli.sweepCores) {
        apps::RunOptions options = cli.run;
        options.config.activeCpus = cores;
        apps::AppRunResult result = apps::runWorkload(id, options);
        analysis::Session session(result.lastBundle);
        auto resp = session.responsiveness(result.lastPids);
        table.row()
            .cell(std::uint64_t(cores))
            .cell(result.tlp(), 2)
            .cell(result.gpuUtil(), 1)
            .cell(result.fps.mean(), 1)
            .cell(resp.inputs ? resp.meanLatencyMs() : 0.0, 2);
    }
    table.print(std::cout);
    return 0;
}

int
cmdCorpusSweep(int argc, char **argv, int first)
{
    apps::SweepOptions options;
    unsigned count = 0;
    unsigned shardSize = 0;
    bool haveShardSize = false;
    cli::Parser parser("sweep");
    parser.option("--count", "N", &count);
    parser.option("--seed", "S", &options.seed);
    parser.option("--out", "DIR", &options.outDir);
    parser.flag("--resume", &options.resume);
    parser.option("--seconds", "S", &options.seconds);
    parser.option("--shard-size", "K",
                  [&](const std::string &value, std::string &error) {
                      std::uint64_t parsed = 0;
                      if (!cli::parseUnsigned(value, parsed)) {
                          error = "expects a non-negative integer, "
                                  "got '" +
                                  value + "'";
                          return false;
                      }
                      shardSize = static_cast<unsigned>(parsed);
                      haveShardSize = true;
                      return true;
                  });
    parser.option("--jobs", "N", &options.threads);
    if (!parser.parse(argc, argv, first))
        return 2;
    options.count = count;
    if (haveShardSize)
        options.shardSize = shardSize;
    if (options.count == 0 || options.outDir.empty()) {
        std::fprintf(stderr,
                     "deskpar sweep: a corpus sweep needs --count "
                     "and --out\n");
        return 2;
    }

    apps::SweepReport report = apps::runSweep(options);
    std::printf("sweep: %u scenarios, %u shards (%u reused, %u run "
                "this pass)\n",
                report.scenariosTotal, report.shardsTotal,
                report.shardsReused, report.scenariosRun);
    if (report.complete) {
        std::printf("wrote %s\n", report.mergedPath.c_str());
        return 0;
    }
    std::printf("stopped early; rerun with --resume to finish\n");
    return 1;
}

int
cmdThreads(const std::string &id, CliOptions cli)
{
    cli.run.iterations = 1;
    apps::AppRunResult result = apps::runWorkload(id, cli.run);
    auto threads = analysis::topThreads(result.lastBundle,
                                        result.lastPids, 20);
    report::TextTable table({"Process", "Thread", "Tid",
                             "Busy (ms)", "Busy (%)",
                             "Dispatches"});
    for (const auto &t : threads) {
        table.row()
            .cell(t.processName)
            .cell(t.threadName)
            .cell(std::uint64_t(t.tid))
            .cell(sim::toMillis(t.busyTime), 1)
            .cell(100.0 *
                      t.busyShare(result.lastBundle.duration()),
                  2)
            .cell(t.dispatches);
    }
    table.print(std::cout);

    analysis::Session session(result.lastBundle);
    auto power =
        session.power(cli.run.config.cpu, cli.run.config.gpu);
    std::printf("\nestimated power: %.1f W CPU + %.1f W GPU\n",
                power.cpuWatts, power.gpuWatts);
    return 0;
}

int
cmdLegacy(CliOptions cli)
{
    cli.run.config = apps::blake2010Config();
    report::TextTable table({"Id", "TLP", "2010 figure",
                             "GPU util (%)", "2010 figure "});
    for (const auto &entry : apps::legacySuite()) {
        auto model = entry.factory();
        apps::AppRunResult result =
            apps::runWorkload(*model, cli.run);
        table.row()
            .cell(entry.id)
            .cell(result.tlp(), 2)
            .cell(entry.tlp2010, 1)
            .cell(result.gpuUtil(), 1)
            .cell(entry.gpu2010, 1);
    }
    table.print(std::cout);
    return 0;
}

int
cmdReport(const std::string &prefix, CliOptions cli)
{
    std::ofstream md(prefix + ".md");
    std::ofstream jsonl(prefix + ".jsonl");
    if (!md || !jsonl) {
        std::fprintf(stderr, "cannot open output files '%s.*'\n",
                     prefix.c_str());
        return 1;
    }

    md << "# deskpar suite results\n\n";
    md << "Protocol: " << cli.run.iterations << " iterations x "
       << sim::toSeconds(cli.run.duration)
       << " simulated seconds, " << cli.run.config.activeCpus
       << (cli.run.config.smtEnabled ? " logical CPUs (SMT on), "
                                     : " physical cores (SMT off), ")
       << cli.run.config.gpu.model << ", seed "
       << cli.run.seedBase << ".\n\n";

    report::TextTable table({"Application", "Category", "TLP",
                             "sigma", "GPU util (%)", "sigma ",
                             "Max conc."});
    for (const auto &entry : apps::tableTwoSuite()) {
        apps::AppRunResult result =
            apps::runWorkload(entry.id, cli.run);
        table.row()
            .cell(apps::makeWorkload(entry.id)->spec().name)
            .cell(entry.category)
            .cell(result.agg.tlp.mean(), 2)
            .cell(result.agg.tlp.stddev(), 2)
            .cell(result.agg.gpuUtil.mean(), 1)
            .cell(result.agg.gpuUtil.stddev(), 1)
            .cell(result.agg.maxConcurrency.mean(), 0);
        report::writeJson(jsonl, result.agg);
        std::printf("  %-14s done\n", entry.id.c_str());
        std::fflush(stdout);
    }
    table.printMarkdown(md);
    std::printf("wrote %s.md and %s.jsonl\n", prefix.c_str(),
                prefix.c_str());
    return 0;
}

int
cmdSuite(CliOptions cli)
{
    std::vector<apps::SuiteJob> jobs;
    std::vector<std::string> ids;
    for (const auto &entry : apps::tableTwoSuite()) {
        jobs.push_back(apps::suiteJob(entry.id, cli.run));
        ids.push_back(entry.id);
    }
    apps::SuiteOutcome outcome =
        apps::SuiteRunner().runRecoverable(jobs);

    report::TextTable table(
        {"Id", "TLP", "GPU util (%)", "Max conc."});
    for (std::size_t j = 0; j < jobs.size(); ++j) {
        if (outcome.failed(j)) {
            table.row().cell(ids[j]).cell("FAILED").cell("-").cell(
                "-");
            continue;
        }
        const apps::AppRunResult &result = outcome.results[j];
        table.row()
            .cell(ids[j])
            .cell(result.tlp(), 2)
            .cell(result.gpuUtil(), 1)
            .cell(result.agg.maxConcurrency.mean(), 0);
    }
    table.print(std::cout);
    for (const apps::JobFailure &f : outcome.failures)
        std::fprintf(stderr, "deskpar: job '%s' failed: %s\n",
                     f.label.c_str(), f.diagnostic().str().c_str());
    return outcome.ok() ? 0 : 1;
}

/** Arguments shared by the replay and stats commands. */
struct ReplayOptions
{
    std::vector<std::string> files;
    std::string appPrefix;
    bool lenient = false;
    bool json = false;
    /** stats only: output paths ("" = stdout / not written). */
    std::string statsJsonPath;
    std::string selfTracePath;
};

bool
parseReplayOptions(const char *command, int argc, char **argv,
                   int first, bool statsFlags, ReplayOptions &opts)
{
    cli::Parser parser(command);
    parser.option("--app", "PREFIX", &opts.appPrefix);
    parser.flag("--lenient-traces", &opts.lenient);
    if (statsFlags) {
        parser.option("--stats-json", "FILE", &opts.statsJsonPath);
        parser.option("--selftrace", "FILE", &opts.selfTracePath);
    } else {
        parser.flag("--json", &opts.json);
    }
    parser.positionals(&opts.files, 1, cli::Parser::kUnlimited,
                       "trace file");
    return parser.parse(argc, argv, first);
}

/** Run the replay batch: one recoverable job per file. */
apps::SuiteOutcome
runReplayBatch(const ReplayOptions &opts)
{
    apps::RunOptions options;
    options.iterations = 1;
    trace::ParseMode mode = opts.lenient ? trace::ParseMode::Lenient
                                         : trace::ParseMode::Strict;
    std::vector<apps::SuiteJob> jobs;
    for (const std::string &file : opts.files)
        jobs.push_back(
            apps::replayJob(file, options, opts.appPrefix, mode));

    // Collect pipeline diagnostics (lenient-ingest degradation,
    // out-of-range-CPU analysis warnings) instead of letting worker
    // threads interleave them on stderr mid-table; replay them once
    // the batch is done.
    trace::CollectingDiagnosticSink sink;
    apps::SuiteOutcome outcome;
    {
        trace::ScopedDiagnosticSink scope(sink);
        outcome = apps::SuiteRunner().runRecoverable(jobs);
    }
    for (const trace::Diagnostic &d : sink.diagnostics())
        std::fprintf(stderr, "deskpar: %s\n", d.str().c_str());
    return outcome;
}

/** Print the per-file replay table + failures; 0 when all files ok. */
int
reportReplayOutcome(const ReplayOptions &opts,
                    const apps::SuiteOutcome &outcome)
{
    report::TextTable table({"Trace", "Size (MB)", "Ingest (MB/s)",
                             "TLP", "GPU util (%)", "Max conc.",
                             "Status"});
    for (std::size_t j = 0; j < opts.files.size(); ++j) {
        if (outcome.failed(j)) {
            table.row()
                .cell(opts.files[j])
                .cell("-")
                .cell("-")
                .cell("-")
                .cell("-")
                .cell("-")
                .cell("FAILED");
            continue;
        }
        const apps::AppRunResult &result = outcome.results[j];
        table.row()
            .cell(opts.files[j])
            .cell(static_cast<double>(result.ingest.bytes) / 1e6, 2)
            .cell(result.ingest.mbPerSec(), 1)
            .cell(result.tlp(), 2)
            .cell(result.gpuUtil(), 1)
            .cell(result.agg.maxConcurrency.mean(), 0)
            .cell("ok");
    }
    table.print(std::cout);
    for (const apps::JobFailure &f : outcome.failures)
        std::fprintf(stderr, "deskpar: %s\n",
                     f.diagnostic().str().c_str());
    if (!outcome.ok()) {
        std::fprintf(stderr, "deskpar: replay batch degraded: %s\n",
                     outcome.ingest.summary().c_str());
        return 1;
    }
    return 0;
}

/**
 * `replay --json`: one analyze document per file (JSONL) through the
 * same Service + document writer the serve analyze op uses, so the
 * two outputs are byte-identical. A failed file emits a failure
 * document and the batch continues, matching the table path's
 * fail-one-file-only contract.
 */
int
jsonReplay(const ReplayOptions &opts)
{
    analysis::Service service;
    int status = 0;
    for (const std::string &file : opts.files) {
        analysis::ServiceTraceRequest request;
        request.path = file;
        request.appPrefix = opts.appPrefix;
        request.lenient = opts.lenient;
        request.jobs = 0; // auto, like the batch replay path
        try {
            analysis::ServiceAnalyzeResult result =
                service.analyze(request);
            report::writeAnalyzeDocument(std::cout, result);
            std::cout << '\n';
            if (result.degraded) {
                std::fprintf(stderr,
                             "deskpar: degraded ingest: %s\n",
                             result.degradedSummary.c_str());
                status = 1;
            }
        } catch (const std::exception &err) {
            report::writeAnalyzeFailureDocument(std::cout, file,
                                                err.what());
            std::cout << '\n';
            std::fprintf(stderr, "deskpar: %s\n", err.what());
            status = 1;
        }
    }
    return status;
}

int
cmdReplay(int argc, char **argv, int first)
{
    ReplayOptions opts;
    if (!parseReplayOptions("replay", argc, argv, first,
                            /*statsFlags=*/false, opts))
        return 2;
    if (opts.json)
        return jsonReplay(opts);
    return reportReplayOutcome(opts, runReplayBatch(opts));
}

int
cmdStats(int argc, char **argv, int first)
{
    ReplayOptions opts;
    if (!parseReplayOptions("stats", argc, argv, first,
                            /*statsFlags=*/true, opts))
        return 2;

    // Record the batch. reset() scopes the snapshot to this run even
    // when DESKPAR_OBS=1 already traced process startup.
    obs::setEnabled(true);
    obs::reset();
    apps::SuiteOutcome outcome = runReplayBatch(opts);
    obs::Snapshot snapshot = obs::collect();
    obs::setEnabled(false);

    int status = reportReplayOutcome(opts, outcome);

    if (snapshot.empty()) {
        std::fprintf(stderr,
                     "deskpar: no self-trace spans recorded (built "
                     "with DESKPAR_OBS=OFF?)\n");
        return status ? status : 1;
    }

    if (opts.statsJsonPath.empty()) {
        obs::writeStatsJson(std::cout, snapshot);
        std::cout << '\n';
    } else {
        std::ofstream out(opts.statsJsonPath);
        if (!out) {
            std::fprintf(stderr, "cannot open '%s'\n",
                         opts.statsJsonPath.c_str());
            return 1;
        }
        obs::writeStatsJson(out, snapshot);
        out << '\n';
        std::printf("wrote %s\n", opts.statsJsonPath.c_str());
    }

    // Close the loop: spans -> .etl bytes -> DeskPar's own ingest ->
    // per-phase TLP. The in-memory round trip always runs, so the
    // printed numbers come from a decoded trace, not the snapshot.
    trace::TraceBundle selfBundle = obs::toTraceBundle(snapshot);
    if (!opts.selfTracePath.empty()) {
        trace::writeEtl(selfBundle, opts.selfTracePath);
        std::printf("wrote %s\n", opts.selfTracePath.c_str());
    }
    std::ostringstream etlBytes;
    trace::writeEtl(selfBundle, etlBytes);
    std::string image = etlBytes.str();
    trace::ParseOptions popts;
    popts.source = "<selftrace>";
    trace::IngestReport report;
    analysis::Session session(
        trace::decodeEtl(trace::io::ByteSpan(image), popts, report));
    if (!report.ok()) {
        std::fprintf(stderr,
                     "deskpar: self-trace round trip failed: %s\n",
                     report.summary().c_str());
        return 1;
    }

    report::TextTable table(
        {"Pipeline phase", "TLP", "Max conc.", "Busy (%)"});
    auto phaseRow = [&](const std::string &label,
                        const trace::PidSet &pids) {
        if (pids.empty())
            return;
        auto profile = session.concurrency(pids);
        table.row()
            .cell(label)
            .cell(profile.tlp(), 2)
            .cell(std::uint64_t(profile.maxConcurrency()))
            .cell(100.0 * (1.0 - profile.idleFraction()), 1);
    };
    for (unsigned kind = 0; kind < obs::kNumSpanKinds; ++kind) {
        std::string name = obs::selfTraceProcessName(
            static_cast<obs::SpanKind>(kind));
        phaseRow(name, session.pids(name));
    }
    phaseRow("pipeline (all)", session.pids(obs::kSelfTracePrefix));
    std::printf("\nself-trace analysis (%u threads, %llu spans):\n",
                snapshot.threads,
                static_cast<unsigned long long>(
                    snapshot.spans.size()));
    table.print(std::cout);
    return status;
}

void
printQueryResult(const analysis::QueryResult &result)
{
    std::printf("== %s\n", result.query.label.c_str());
    report::TextTable table({"Key", "t0 (s)", "t1 (s)", "Value"});
    for (const analysis::QueryRow &row : result.rows) {
        table.row()
            .cell(row.key.empty() ? "(all)" : row.key)
            .cell(sim::toSeconds(row.t0), 3)
            .cell(sim::toSeconds(row.t1), 3)
            .cell(row.value, 4);
    }
    table.print(std::cout);
    if (result.query.metric ==
        analysis::QueryMetric::DurationHistogram) {
        for (const analysis::QueryRow &row : result.rows) {
            bool any = false;
            for (std::size_t b = 0; b < row.histogram.size(); ++b) {
                if (row.histogram[b] == 0)
                    continue;
                if (!any)
                    std::printf("  %s bursts by duration:\n",
                                row.key.empty() ? "(all)"
                                                : row.key.c_str());
                any = true;
                std::printf("    [2^%-2zu, 2^%zu) ns  %llu\n", b,
                            b + 1,
                            static_cast<unsigned long long>(
                                row.histogram[b]));
            }
        }
    }
}

/**
 * Map @p path and decode it by format sniff: a .csv suffix selects
 * the CPU-Usage reader, the .etlc magic the block-compressed
 * columnar reader, anything else the .etl v3 reader. @p who names
 * the command in open-failure diagnostics.
 */
trace::TraceBundle
ingestTraceFile(const std::string &path,
                const trace::ParseOptions &popts,
                trace::IngestReport &report, const char *who)
{
    trace::TraceBundle bundle;
    trace::io::MappedFile file =
        trace::io::MappedFile::openOrThrow(path, who);
    if (path.size() > 4 &&
        path.compare(path.size() - 4, 4, ".csv") == 0) {
        report = trace::decodeCpuUsageCsv(file.span(), bundle, popts);
    } else if (trace::isEtlcData(file.span())) {
        bundle = trace::decodeEtlc(file.span(), popts, report);
    } else {
        bundle = trace::decodeEtl(file.span(), popts, report);
    }
    return bundle;
}

int
cmdQuery(int argc, char **argv, int first)
{
    cli::CommonOptions common;
    bool explain = false;
    std::vector<std::string> args;
    cli::Parser parser("query");
    cli::addCommonOptions(parser, common,
                          cli::kOptJobs | cli::kOptJson |
                              cli::kOptLenient);
    parser.flag("--explain", &explain);
    parser.positionals(&args, 2, cli::Parser::kUnlimited,
                       "trace file + specs");
    if (!parser.parse(argc, argv, first))
        return 2;

    analysis::ServiceQueryRequest request;
    request.trace.path = args[0];
    request.trace.lenient = common.lenient;
    request.trace.jobs = common.jobs;
    request.specs.assign(args.begin() + 1, args.end());
    request.explain = explain;

    analysis::Service service;
    analysis::ServiceQueryResult result = service.query(request);
    if (result.degraded)
        std::fprintf(stderr, "deskpar: degraded ingest: %s\n",
                     result.degradedSummary.c_str());

    if (explain)
        std::fputs(result.explainText.c_str(), stdout);
    if (common.json) {
        report::writeQueryDocument(std::cout, result);
        std::cout << '\n';
    } else {
        for (const analysis::QueryResult &qr : result.results)
            printQueryResult(qr);
    }
    return result.degraded ? 1 : 0;
}

int
cmdBottlenecks(int argc, char **argv, int first)
{
    cli::CommonOptions common;
    std::size_t top = 10;
    std::vector<std::string> args;
    cli::Parser parser("bottlenecks");
    cli::addCommonOptions(parser, common,
                          cli::kOptJobs | cli::kOptJson |
                              cli::kOptLenient | cli::kOptApp);
    parser.option("--top", "N", &top);
    parser.positionals(&args, 1, 1, "trace file");
    if (!parser.parse(argc, argv, first))
        return 2;

    analysis::ServiceBottlenecksRequest request;
    request.trace.path = args[0];
    request.trace.appPrefix = common.appPrefix;
    request.trace.lenient = common.lenient;
    request.trace.jobs = common.jobs;
    request.top = top;

    analysis::Service service;
    analysis::ServiceBottlenecksResult result =
        service.bottlenecks(request);
    if (result.degraded)
        std::fprintf(stderr, "deskpar: degraded ingest: %s\n",
                     result.degradedSummary.c_str());

    if (common.json) {
        report::writeBottlenecksDocument(std::cout, result);
        std::cout << '\n';
    } else {
        std::fputs(
            analysis::blocking::renderReport(result.report, top)
                .c_str(),
            stdout);
    }
    return result.degraded ? 1 : 0;
}

/** "<input minus .etl/.csv suffix>.etlc" (or append when neither). */
std::string
defaultPackOutput(const std::string &path)
{
    for (const char *suffix : {".etl", ".csv"}) {
        std::size_t n = std::strlen(suffix);
        if (path.size() > n &&
            path.compare(path.size() - n, n, suffix) == 0)
            return path.substr(0, path.size() - n) + ".etlc";
    }
    return path + ".etlc";
}

int
cmdPack(int argc, char **argv, int first)
{
    cli::CommonOptions common;
    std::string outPath;
    bool verify = false;
    bool writeIndex = false;
    std::vector<std::string> args;
    cli::Parser parser("pack");
    cli::addCommonOptions(parser, common,
                          cli::kOptJobs | cli::kOptLenient);
    parser.option("-o", "FILE", &outPath);
    parser.option("--output", "FILE", &outPath);
    parser.flag("--verify", &verify);
    parser.flag("--index", &writeIndex);
    parser.positionals(&args, 1, 1, "trace file");
    if (!parser.parse(argc, argv, first))
        return 2;
    const std::string &path = args[0];
    bool lenient = common.lenient;
    unsigned jobs = common.jobs;
    if (outPath.empty())
        outPath = defaultPackOutput(path);
    if (outPath == path) {
        std::fprintf(stderr,
                     "deskpar: pack would overwrite its input "
                     "'%s'; pass -o to choose another output\n",
                     path.c_str());
        return 1;
    }

    trace::ParseOptions popts;
    popts.mode = lenient ? trace::ParseMode::Lenient
                         : trace::ParseMode::Strict;
    popts.source = path;
    popts.threads = jobs;
    trace::IngestReport report;
    trace::TraceBundle bundle =
        ingestTraceFile(path, popts, report, "pack");
    // A degraded lenient ingest still packs what survived, but the
    // run exits nonzero: the output is not a faithful conversion.
    int status = 0;
    if (!report.ok()) {
        if (!lenient)
            throw trace::TraceParseError(report.errors.front());
        std::fprintf(stderr, "deskpar: degraded ingest: %s\n",
                     report.summary().c_str());
        status = 1;
    }

    // CSV sources carry no ordering guarantee; the writer demands
    // the canonical sort.
    trace::sortBundle(bundle);
    trace::writeEtlc(bundle, outPath);

    std::error_code ec;
    auto inSize = std::filesystem::file_size(path, ec);
    auto outSize = std::filesystem::file_size(outPath, ec);
    if (!ec && outSize > 0)
        std::printf("%s: %llu bytes -> %s: %llu bytes (%.2fx)\n",
                    path.c_str(),
                    static_cast<unsigned long long>(inSize),
                    outPath.c_str(),
                    static_cast<unsigned long long>(outSize),
                    static_cast<double>(inSize) /
                        static_cast<double>(outSize));
    else
        std::printf("wrote %s\n", outPath.c_str());

    if (!verify && !writeIndex)
        return status;

    // Both --verify and --index re-decode the bytes actually on disk
    // (strict: the file we just wrote must be flawless).
    trace::ParseOptions vpopts;
    vpopts.source = outPath;
    vpopts.threads = jobs;
    trace::IngestReport vreport;
    trace::TraceBundle packed =
        trace::readEtlc(outPath, vpopts, vreport);
    if (!vreport.ok()) {
        std::fprintf(stderr,
                     "deskpar: pack --verify: re-decode of %s "
                     "failed: %s\n",
                     outPath.c_str(), vreport.summary().c_str());
        return 1;
    }

    auto mismatch = [&](const char *what) {
        std::fprintf(stderr,
                     "deskpar: pack --verify: %s differs between "
                     "%s and %s\n",
                     what, path.c_str(), outPath.c_str());
        status = 1;
    };
    // Exact comparison; both sides run the same code on what must be
    // the same events, so even doubles have to match bit for bit.
    auto eqd = [](double a, double b) {
        return a == b || (a != a && b != b);
    };

    if (verify) {
        // Canonical-bytes equality covers every event field at once.
        std::ostringstream srcImage, packedImage;
        trace::writeEtlc(bundle, srcImage);
        trace::writeEtlc(packed, packedImage);
        if (srcImage.str() != packedImage.str())
            mismatch("canonical .etlc image");
    }

    analysis::Session srcSession(std::move(bundle));
    analysis::Session packedSession(std::move(packed));

    if (verify) {
        const trace::PidSet all;
        auto a = srcSession.concurrency(all);
        auto b = packedSession.concurrency(all);
        if (a.c != b.c || a.numCpus != b.numCpus ||
            a.window != b.window ||
            a.outOfRangeCpuEvents != b.outOfRangeCpuEvents)
            mismatch("concurrency profile");

        auto ga = srcSession.gpuUtil(all);
        auto gb = packedSession.gpuUtil(all);
        if (!eqd(ga.aggregateRatio, gb.aggregateRatio) ||
            !eqd(ga.busyRatio, gb.busyRatio) ||
            ga.perEngine != gb.perEngine ||
            ga.packetCount != gb.packetCount ||
            ga.overlapped != gb.overlapped)
            mismatch("GPU utilization");

        auto fa = srcSession.frameStats(all);
        auto fb = packedSession.frameStats(all);
        if (fa.frames != fb.frames ||
            fa.synthesizedFrames != fb.synthesizedFrames ||
            !eqd(fa.avgFps, fb.avgFps) ||
            !eqd(fa.fpsStddev, fb.fpsStddev) ||
            !eqd(fa.onePercentLowFps, fb.onePercentLowFps))
            mismatch("frame statistics");

        auto ra = srcSession.responsiveness(all);
        auto rb = packedSession.responsiveness(all);
        if (ra.inputs != rb.inputs || ra.answered != rb.answered ||
            ra.latency.count() != rb.latency.count() ||
            !eqd(ra.latency.mean(), rb.latency.mean()) ||
            !eqd(ra.latency.max(), rb.latency.max()))
            mismatch("responsiveness");

        sim::CpuSpec cpu;
        sim::GpuSpec gpu;
        auto pa = srcSession.power(cpu, gpu);
        auto pb = packedSession.power(cpu, gpu);
        if (!eqd(pa.cpuWatts, pb.cpuWatts) ||
            !eqd(pa.gpuWatts, pb.gpuWatts) ||
            !eqd(pa.seconds, pb.seconds))
            mismatch("power estimate");

        std::vector<analysis::Query> queries;
        for (const char *spec :
             {"tlp", "gpu/by=engine", "csrate/by=thread"})
            queries.push_back(analysis::parseQuerySpec(spec));
        auto qa = srcSession.query(queries, jobs);
        auto qb = packedSession.query(queries, jobs);
        bool queriesEqual = qa.size() == qb.size();
        for (std::size_t q = 0; queriesEqual && q < qa.size(); ++q) {
            queriesEqual = qa[q].rows.size() == qb[q].rows.size();
            for (std::size_t r = 0;
                 queriesEqual && r < qa[q].rows.size(); ++r) {
                const analysis::QueryRow &x = qa[q].rows[r];
                const analysis::QueryRow &y = qb[q].rows[r];
                queriesEqual =
                    x.key == y.key && x.t0 == y.t0 &&
                    x.t1 == y.t1 && x.pid == y.pid &&
                    x.tid == y.tid && eqd(x.value, y.value) &&
                    x.histogram == y.histogram;
            }
        }
        if (!queriesEqual)
            mismatch("query batch results");

        if (status == 0)
            std::printf("verify: %s reproduces every analyzer "
                        "output of %s\n",
                        outPath.c_str(), path.c_str());
    }

    if (writeIndex) {
        packedSession.index().warm(trace::PidSet{});
        std::string error;
        if (analysis::saveIndexCache(packedSession, outPath,
                                     error)) {
            std::printf("wrote %s\n",
                        analysis::indexCachePath(outPath).c_str());
        } else {
            std::fprintf(stderr,
                         "deskpar: pack --index: %s\n",
                         error.c_str());
            status = 1;
        }
    }
    return status;
}

int
cmdServe(int argc, char **argv, int first)
{
    unsigned workers = 4;
    std::uint64_t cacheMb = 256;
    unsigned requestJobs = 1;
    std::vector<std::string> args;
    cli::Parser parser("serve");
    parser.option("--workers", "N", &workers);
    parser.option("--cache-mb", "MB", &cacheMb);
    parser.option("--request-jobs", "N", &requestJobs);
    parser.positionals(&args, 1, 1, "socket path");
    if (!parser.parse(argc, argv, first))
        return 2;

    serve::ServerOptions options;
    options.socketPath = args[0];
    options.workers = workers ? workers : 1;
    options.cacheBytes = cacheMb << 20;
    options.requestJobs = requestJobs;

    serve::Server server(options);
    server.start();
    std::printf("deskpar serve: listening on %s (%u workers)\n",
                options.socketPath.c_str(), options.workers);
    std::fflush(stdout);
    server.wait();
    server.stop();
    std::printf("deskpar serve: stopped\n");
    return 0;
}

int
cmdClient(int argc, char **argv, int first)
{
    cli::CommonOptions common;
    bool explain = false;
    std::uint64_t top = 10;
    std::uint64_t id = 0;
    std::string kind = "tlp";
    double windowMs = 100.0;
    std::vector<std::string> args;
    cli::Parser parser("client");
    cli::addCommonOptions(parser, common,
                          cli::kOptLenient | cli::kOptApp);
    parser.flag("--explain", &explain);
    parser.option("--top", "N", &top);
    parser.option("--id", "N", &id);
    parser.option("--kind", "KIND", &kind);
    parser.option("--window-ms", "MS", &windowMs);
    parser.positionals(&args, 2, cli::Parser::kUnlimited,
                       "socket + op");
    if (!parser.parse(argc, argv, first))
        return 2;

    auto argError = [](const char *what) {
        std::fprintf(stderr, "deskpar client: %s\n", what);
        return 2;
    };

    const std::string &socketPath = args[0];
    const std::string &op = args[1];
    std::string line;
    if (op == "raw") {
        if (args.size() != 3)
            return argError("raw needs exactly one JSON line");
        line = args[2];
    } else {
        bool needsTrace = op == "analyze" || op == "query" ||
                          op == "bottlenecks" || op == "series" ||
                          op == "frames";
        bool known = needsTrace || op == "ping" || op == "stats" ||
                     op == "shutdown";
        if (!known)
            return argError("unknown op (expected ping, stats, "
                            "shutdown, analyze, query, bottlenecks, "
                            "series, frames, or raw)");
        if (needsTrace && args.size() < 3)
            return argError("this op needs a trace path");
        if (op == "query" && args.size() < 4)
            return argError("query needs a trace path and at least "
                            "one spec");
        if (op != "query" && needsTrace && args.size() > 3)
            return argError("unexpected extra argument");
        if (!needsTrace && args.size() > 2)
            return argError("unexpected extra argument");

        std::ostringstream request;
        report::JsonWriter json(request);
        json.beginObject().field("op", op).field("id", id);
        if (needsTrace) {
            json.field("trace", args[2]);
            if (!common.appPrefix.empty())
                json.field("app", common.appPrefix);
            if (common.lenient)
                json.field("lenient", true);
        }
        if (op == "query") {
            json.beginArray("specs");
            for (std::size_t i = 3; i < args.size(); ++i)
                json.value(args[i]);
            json.endArray();
            if (explain)
                json.field("explain", true);
        }
        if (op == "bottlenecks")
            json.field("top", top);
        if (op == "series") {
            json.field("kind", kind);
            json.field("window_ns",
                       static_cast<std::uint64_t>(windowMs * 1e6));
        }
        json.endObject();
        line = request.str();
    }

    serve::Client client;
    std::string error;
    if (!client.connect(socketPath, error)) {
        std::fprintf(stderr, "deskpar client: %s\n", error.c_str());
        return 1;
    }
    std::string response;
    if (!client.call(line, response, error)) {
        std::fprintf(stderr, "deskpar client: %s\n", error.c_str());
        return 1;
    }

    serve::JsonValue envelope;
    if (!serve::parseJson(response, envelope, error)) {
        std::fprintf(stderr,
                     "deskpar client: malformed response: %s\n",
                     error.c_str());
        return 1;
    }
    if (const serve::JsonValue *diags = envelope.find("diagnostics");
        diags && diags->isArray()) {
        for (const serve::JsonValue &d : diags->array())
            std::fprintf(stderr, "deskpar: %s: %s\n",
                         d.stringOr("component", "serve").c_str(),
                         d.stringOr("message", "").c_str());
    }
    if (!envelope.boolOr("ok", false)) {
        const serve::JsonValue *err = envelope.find("error");
        std::string errKind =
            err ? err->stringOr("kind", "internal") : "internal";
        std::string message =
            err ? err->stringOr("message", "request failed")
                : "request failed";
        std::fprintf(stderr, "deskpar: %s\n", message.c_str());
        // Server-side usage errors exit like local ones.
        return errKind == "parse" ? 2 : 1;
    }

    std::string document;
    if (!serve::extractResult(response, document)) {
        std::fprintf(stderr,
                     "deskpar client: response envelope carries no "
                     "result document\n");
        return 1;
    }
    std::printf("%s\n", document.c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        usage();
    std::string command = argv[1];
    try {
        if (command == "list")
            return cmdList();
        if (command == "suite" || command == "legacy") {
            CliOptions cli;
            if (!parseRunOptions(command.c_str(), argc, argv, 2,
                                 cli))
                return 2;
            return command == "suite" ? cmdSuite(cli)
                                      : cmdLegacy(cli);
        }
        if (command == "report") {
            if (argc < 3)
                usage();
            CliOptions cli;
            if (!parseRunOptions("report", argc, argv, 3, cli))
                return 2;
            return cmdReport(argv[2], cli);
        }
        if (command == "replay")
            return cmdReplay(argc, argv, 2);
        if (command == "stats")
            return cmdStats(argc, argv, 2);
        if (command == "query")
            return cmdQuery(argc, argv, 2);
        if (command == "bottlenecks")
            return cmdBottlenecks(argc, argv, 2);
        if (command == "pack")
            return cmdPack(argc, argv, 2);
        if (command == "serve")
            return cmdServe(argc, argv, 2);
        if (command == "client")
            return cmdClient(argc, argv, 2);
        if (command == "run" || command == "sweep" ||
            command == "threads") {
            if (argc < 3)
                usage();
            std::string id = argv[2];
            // `sweep --count ...` (no workload id) is the seeded
            // corpus sweep; `sweep <id> ...` stays the Figure 4
            // core-scaling sweep.
            if (command == "sweep" && id.rfind("--", 0) == 0)
                return cmdCorpusSweep(argc, argv, 2);
            CliOptions cli;
            if (!parseRunOptions(command.c_str(), argc, argv, 3,
                                 cli))
                return 2;
            if (command == "run")
                return cmdRun(id, cli);
            if (command == "sweep")
                return cmdSweep(id, cli);
            return cmdThreads(id, cli);
        }
    } catch (const std::exception &err) {
        std::fprintf(stderr, "deskpar: %s\n", err.what());
        return 1;
    }
    usage();
}

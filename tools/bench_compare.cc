/**
 * @file
 * Regression gate over BENCH_suite.json: compare the latest wall-time
 * record of every suite bench against the previous record with the
 * same configuration and exit nonzero when any slowed down by more
 * than the threshold.
 *
 * Records are the one-line JSON objects SuiteTimer appends:
 *
 *   {"bench":"bench_table2_suite","wall_seconds":1.234,"jobs":4,"fast":0}
 *
 * Grouping key is (bench, jobs, fast) — a 1-thread fast smoke run is
 * not comparable to a 4-thread full run. Older records without the
 * "fast" field count as fast=0. Keys with fewer than two records are
 * reported but never fail the gate, so the first CI run after adding
 * a bench passes.
 *
 * Usage: bench_compare [--file PATH] [--threshold PCT]
 *   --file       defaults to BENCH_suite.json (or $DESKPAR_BENCH_JSON)
 *   --threshold  allowed slowdown in percent, default 20
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <tuple>
#include <vector>

namespace {

struct Record
{
    std::string bench;
    double wallSeconds = 0.0;
    unsigned jobs = 0;
    unsigned fast = 0;
};

/**
 * Pull one JSON field out of a SuiteTimer line. The writer emits a
 * fixed flat shape (no nesting, no escapes in values we read), so a
 * substring scan is enough — no JSON library in the toolchain.
 */
bool
jsonField(const std::string &line, const char *key, std::string &out)
{
    // Built by append rather than operator+ chaining: GCC 12 at -O3
    // misfires -Werror=restrict on the temporary-chain form.
    std::string needle = "\"";
    needle += key;
    needle += "\":";
    std::size_t pos = line.find(needle);
    if (pos == std::string::npos)
        return false;
    pos += needle.size();
    if (pos < line.size() && line[pos] == '"') {
        std::size_t end = line.find('"', pos + 1);
        if (end == std::string::npos)
            return false;
        out = line.substr(pos + 1, end - pos - 1);
        return true;
    }
    std::size_t end = pos;
    while (end < line.size() && line[end] != ',' && line[end] != '}')
        ++end;
    out = line.substr(pos, end - pos);
    return true;
}

bool
parseRecord(const std::string &line, Record &record)
{
    std::string value;
    if (!jsonField(line, "bench", value) || value.empty())
        return false;
    record.bench = value;
    if (!jsonField(line, "wall_seconds", value))
        return false;
    record.wallSeconds = std::strtod(value.c_str(), nullptr);
    record.jobs = 0;
    if (jsonField(line, "jobs", value))
        record.jobs =
            static_cast<unsigned>(std::strtoul(value.c_str(),
                                               nullptr, 10));
    record.fast = 0;
    if (jsonField(line, "fast", value))
        record.fast =
            static_cast<unsigned>(std::strtoul(value.c_str(),
                                               nullptr, 10));
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    const char *env = std::getenv("DESKPAR_BENCH_JSON");
    std::string path = env ? env : "BENCH_suite.json";
    double threshold = 20.0;

    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--file") == 0 && i + 1 < argc) {
            path = argv[++i];
        } else if (std::strcmp(argv[i], "--threshold") == 0 &&
                   i + 1 < argc) {
            threshold = std::strtod(argv[++i], nullptr);
        } else {
            std::fprintf(stderr,
                         "usage: bench_compare [--file PATH] "
                         "[--threshold PCT]\n");
            return 2;
        }
    }

    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "bench_compare: cannot open %s\n",
                     path.c_str());
        return 2;
    }

    // Records per (bench, jobs, fast), in file (= chronological)
    // order.
    std::map<std::tuple<std::string, unsigned, unsigned>,
             std::vector<double>>
        groups;
    std::string line;
    while (std::getline(in, line)) {
        Record record;
        if (!parseRecord(line, record))
            continue;
        groups[{record.bench, record.jobs, record.fast}].push_back(
            record.wallSeconds);
    }
    if (groups.empty()) {
        std::printf("bench_compare: no records in %s\n",
                    path.c_str());
        return 0;
    }

    int regressions = 0;
    for (const auto &[key, walls] : groups) {
        const auto &[bench, jobs, fast] = key;
        if (walls.size() < 2) {
            std::printf("%-36s jobs=%u fast=%u  %7.3fs  "
                        "(first record, no baseline)\n",
                        bench.c_str(), jobs, fast, walls.back());
            continue;
        }
        double prev = walls[walls.size() - 2];
        double last = walls.back();
        double change =
            prev > 0.0 ? (last - prev) / prev * 100.0 : 0.0;
        bool regressed = change > threshold;
        std::printf("%-36s jobs=%u fast=%u  %7.3fs -> %7.3fs  "
                    "(%+.1f%%)%s\n",
                    bench.c_str(), jobs, fast, prev, last, change,
                    regressed ? "  REGRESSION" : "");
        if (regressed)
            ++regressions;
    }
    if (regressions > 0) {
        std::fprintf(stderr,
                     "bench_compare: %d bench(es) regressed more "
                     "than %.0f%%\n",
                     regressions, threshold);
        return 1;
    }
    return 0;
}

#include "tools/cli_options.hh"

#include <cerrno>
#include <cstdio>
#include <cstdlib>

namespace deskpar::cli {

bool
parseUnsigned(const std::string &text, std::uint64_t &out)
{
    if (text.empty() || text[0] == '-' || text[0] == '+')
        return false;
    errno = 0;
    char *end = nullptr;
    unsigned long long value = std::strtoull(text.c_str(), &end, 10);
    if (errno != 0 || end == text.c_str() || *end != '\0')
        return false;
    out = value;
    return true;
}

bool
parseDouble(const std::string &text, double &out)
{
    if (text.empty())
        return false;
    errno = 0;
    char *end = nullptr;
    double value = std::strtod(text.c_str(), &end);
    if (errno != 0 || end == text.c_str() || *end != '\0')
        return false;
    out = value;
    return true;
}

Parser::Parser(std::string command)
    : command_(std::move(command))
{}

Parser &
Parser::flag(const char *name, bool *out)
{
    Option opt;
    opt.name = name;
    opt.flagOut = out;
    options_.push_back(std::move(opt));
    return *this;
}

Parser &
Parser::option(const char *name, const char *valueName,
               std::string *out)
{
    return option(name, valueName,
                  [out](const std::string &value, std::string &) {
                      *out = value;
                      return true;
                  });
}

Parser &
Parser::option(const char *name, const char *valueName, double *out)
{
    return option(name, valueName,
                  [out](const std::string &value, std::string &error) {
                      double parsed = 0;
                      if (!parseDouble(value, parsed)) {
                          error = "expects a number, got '" + value +
                                  "'";
                          return false;
                      }
                      *out = parsed;
                      return true;
                  });
}

Parser &
Parser::option(const char *name, const char *valueName,
               std::function<bool(const std::string &, std::string &)>
                   callback)
{
    Option opt;
    opt.name = name;
    opt.valueName = valueName;
    opt.apply = std::move(callback);
    options_.push_back(std::move(opt));
    return *this;
}

Parser &
Parser::positionals(std::vector<std::string> *out, std::size_t min,
                    std::size_t max, const char *what)
{
    positionals_ = out;
    minPositionals_ = min;
    maxPositionals_ = max;
    positionalWhat_ = what;
    return *this;
}

bool
Parser::fail(const std::string &what) const
{
    std::fprintf(stderr, "deskpar %s: %s\n", command_.c_str(),
                 what.c_str());
    return false;
}

const Parser::Option *
Parser::findOption(const std::string &name) const
{
    for (const Option &opt : options_)
        if (opt.name == name)
            return &opt;
    return nullptr;
}

bool
Parser::parse(int argc, char **argv, int first)
{
    std::vector<std::string> positional;
    bool optionsDone = false;

    for (int i = first; i < argc; ++i) {
        std::string arg = argv[i];
        if (!optionsDone && arg == "--") {
            optionsDone = true;
            continue;
        }
        bool looksLikeOption =
            !optionsDone && arg.size() >= 2 && arg[0] == '-';
        if (!looksLikeOption) {
            positional.push_back(std::move(arg));
            continue;
        }

        // Split --name=value; otherwise the value is the next argv.
        std::string name = arg;
        std::string value;
        bool haveValue = false;
        std::size_t eq = arg.find('=');
        if (eq != std::string::npos) {
            name = arg.substr(0, eq);
            value = arg.substr(eq + 1);
            haveValue = true;
        }

        const Option *opt = findOption(name);
        if (!opt)
            return fail("unknown option '" + name + "'");

        if (opt->flagOut) {
            if (haveValue)
                return fail("option '" + name +
                            "' does not take a value");
            *opt->flagOut = true;
            continue;
        }

        if (!haveValue) {
            if (i + 1 >= argc)
                return fail("option '" + name + "' needs a " +
                            opt->valueName + " value");
            value = argv[++i];
        }
        std::string error;
        if (!opt->apply(value, error))
            return fail("option '" + name + "' " + error);
    }

    if (!positionals_) {
        if (!positional.empty())
            return fail("unexpected argument '" + positional.front() +
                        "'");
        return true;
    }
    if (positional.size() < minPositionals_) {
        if (minPositionals_ == 1)
            return fail("missing " + positionalWhat_);
        return fail("expected at least " +
                    std::to_string(minPositionals_) +
                    " arguments (" + positionalWhat_ + ")");
    }
    if (positional.size() > maxPositionals_)
        return fail("unexpected argument '" +
                    positional[maxPositionals_] + "'");
    *positionals_ = std::move(positional);
    return true;
}

void
addCommonOptions(Parser &parser, CommonOptions &out, unsigned mask)
{
    if (mask & kOptJobs)
        parser.option("--jobs", "N", &out.jobs);
    if (mask & kOptJson)
        parser.flag("--json", &out.json);
    if (mask & kOptLenient)
        parser.flag("--lenient-traces", &out.lenient);
    if (mask & kOptApp)
        parser.option("--app", "PREFIX", &out.appPrefix);
}

} // namespace deskpar::cli

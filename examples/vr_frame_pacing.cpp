/**
 * @file
 * VR frame pacing explorer: pick a game, sweep headsets and core
 * counts, and watch how ASW / asynchronous reprojection shape the
 * real and presented frame streams (the Section V-F methodology).
 */

#include <cstdio>
#include <iostream>

#include "analysis/timeseries.hh"
#include "apps/harness.hh"
#include "apps/vr.hh"
#include "report/table.hh"

using namespace deskpar;

int
main()
{
    const apps::VrGame game = apps::VrGame::ProjectCars2;
    const apps::Headset headsets[] = {apps::Headset::rift(),
                                      apps::Headset::vive(),
                                      apps::Headset::vivePro()};

    std::printf("VR frame pacing: %s\n\n", apps::vrGameName(game));

    report::TextTable table({"Headset", "Cores", "TLP",
                             "GPU util (%)", "Presented FPS",
                             "Real FPS", "Synth (%)"});

    for (unsigned cores : {12u, 8u, 4u}) {
        for (const auto &headset : headsets) {
            apps::RunOptions options;
            options.iterations = 1;
            options.duration = sim::sec(12.0);
            options.config.activeCpus = cores;

            auto model = apps::makeVrGame(game, headset);
            apps::AppRunResult result =
                apps::runWorkload(*model, options);
            const auto &frames =
                result.iterations[0].metrics.frames;

            table.row()
                .cell(headset.name)
                .cell(std::uint64_t(cores))
                .cell(result.tlp(), 2)
                .cell(result.gpuUtil(), 1)
                .cell(result.fps.mean(), 1)
                .cell(result.realFps.mean(), 1)
                .cell(frames.synthesizedShare() * 100.0, 1);
        }
    }
    table.print(std::cout);

    std::printf(
        "\nWhat to look for: at 12 logical cores everything holds "
        "90 FPS; at 4, the Rift's ASW clamps the game to 45 real "
        "FPS\n(half the presents are synthesized) while the Vive "
        "headsets keep pushing toward 90 and pay with oscillating "
        "dips.\n");
    return 0;
}

/**
 * @file
 * The offline half of the paper's Figure 1 workflow: record a trace,
 * save it as a binary .etl container, export the two wpaexporter
 * CSVs, parse them back, and compute TLP / GPU utilization from the
 * parsed data — demonstrating that analyses can run fully decoupled
 * from the simulator.
 */

#include <cstdio>
#include <fstream>
#include <sstream>

#include "analysis/analyzer.hh"
#include "apps/harness.hh"
#include "trace/csv.hh"
#include "trace/etl.hh"

using namespace deskpar;

int
main()
{
    const std::string dir = "/tmp";
    const std::string etl_path = dir + "/deskpar_example.etl";
    const std::string cpu_csv = dir + "/deskpar_cpu_usage.csv";
    const std::string gpu_csv = dir + "/deskpar_gpu_util.csv";

    // 1. "Start Testbench / Start trace": run WinX for 15 s.
    apps::RunOptions options;
    options.iterations = 1;
    options.duration = sim::sec(15.0);
    apps::AppRunResult run = apps::runWorkload("winx", options);
    std::printf("recorded %zu events (%zu context switches, %zu GPU "
                "packets)\n",
                run.lastBundle.totalEvents(),
                run.lastBundle.cswitches.size(),
                run.lastBundle.gpuPackets.size());

    // 2. "Save trace -> .etl file".
    trace::writeEtl(run.lastBundle, etl_path);
    std::ifstream probe(etl_path, std::ios::binary | std::ios::ate);
    std::printf("wrote %s (%lld bytes)\n", etl_path.c_str(),
                static_cast<long long>(probe.tellg()));

    // 3. "Extract columns (WPA) -> .csv files".
    trace::TraceBundle from_etl = trace::readEtl(etl_path);
    trace::writeCpuUsageCsv(from_etl, cpu_csv);
    trace::writeGpuUtilCsv(from_etl, gpu_csv);
    std::printf("exported %s and %s\n", cpu_csv.c_str(),
                gpu_csv.c_str());

    // 4. "Custom scripts": parse the CSVs back and analyze.
    trace::TraceBundle parsed;
    parsed.startTime = from_etl.startTime;
    parsed.stopTime = from_etl.stopTime;
    parsed.numLogicalCpus = from_etl.numLogicalCpus;
    {
        std::ifstream in(cpu_csv);
        trace::readCpuUsageCsv(in, parsed);
    }
    {
        std::ifstream in(gpu_csv);
        trace::readGpuUtilCsv(in, parsed);
    }

    analysis::AppMetrics offline =
        analysis::analyzeApp(parsed, "winx");
    analysis::AppMetrics live =
        analysis::analyzeApp(run.lastBundle, "winx");

    std::printf("\n%-22s %10s %10s\n", "metric", "live", "offline");
    std::printf("%-22s %10.3f %10.3f\n", "TLP", live.tlp(),
                offline.tlp());
    std::printf("%-22s %10.2f %10.2f\n", "GPU utilization (%)",
                live.gpuUtilPercent(), offline.gpuUtilPercent());
    std::printf("%-22s %10.3f %10.3f\n", "idle fraction c0",
                live.concurrency.idleFraction(),
                offline.concurrency.idleFraction());
    std::printf("\nLive and offline numbers match: the analysis "
                "pipeline is provider-agnostic.\n");
    return 0;
}

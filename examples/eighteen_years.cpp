/**
 * @file
 * The title experiment in one program: the same application lineage
 * measured on its contemporary machine — Photoshop CS4 / HandBrake
 * 0.9 / Firefox 3.5 / QuickTime 7.6 on the 2010 dual-Xeon + GTX 285
 * testbed versus Photoshop CC / HandBrake 1.1 / Firefox 60 /
 * QuickTime 7.7.9 on the 2018 i7-8700K + GTX 1080 Ti — an
 * 18-year-perspective snapshot of how software caught up with
 * hardware.
 */

#include <cstdio>
#include <iostream>

#include "apps/harness.hh"
#include "apps/legacy.hh"
#include "apps/registry.hh"
#include "report/table.hh"

using namespace deskpar;

int
main()
{
    struct Pair
    {
        const char *lineage;
        const char *id2010; // legacy suite id
        const char *id2018; // Table II suite id
    };
    const Pair kPairs[] = {
        {"Photoshop", "photoshop-cs4", "photoshop"},
        {"Excel", "excel-2007", "excel"},
        {"Word", "word-2007", "word"},
        {"HandBrake", "handbrake-09", "handbrake"},
        {"Firefox", "firefox-35", "firefox"},
        {"QuickTime", "quicktime-76", "quicktime"},
        {"PowerDirector", "powerdirector-7", "powerdirector"},
    };

    apps::RunOptions on2010;
    on2010.iterations = 1;
    on2010.duration = sim::sec(20.0);
    on2010.config = apps::blake2010Config();

    apps::RunOptions on2018;
    on2018.iterations = 1;
    on2018.duration = sim::sec(20.0);

    std::printf("The 18-year perspective: one lineage, two "
                "machines\n\n");
    report::TextTable table({"Lineage", "TLP 2010", "TLP 2018",
                             "GPU% 2010", "GPU% 2018"});

    for (const Pair &pair : kPairs) {
        const apps::LegacyEntry *legacy = nullptr;
        for (const auto &entry : apps::legacySuite()) {
            if (entry.id == pair.id2010)
                legacy = &entry;
        }
        auto old_model = legacy->factory();
        auto old_run = apps::runWorkload(*old_model, on2010);
        auto new_run = apps::runWorkload(pair.id2018, on2018);

        table.row()
            .cell(std::string(pair.lineage))
            .cell(old_run.tlp(), 2)
            .cell(new_run.tlp(), 2)
            .cell(old_run.gpuUtil(), 1)
            .cell(new_run.gpuUtil(), 1);
    }
    table.print(std::cout);

    std::printf(
        "\nReading the table (the paper's Figures 2-3 in "
        "miniature): TLP held or grew wherever software invested in "
        "parallelism\n(Photoshop's filter engine, HandBrake's pool, "
        "multi-process Firefox), while GPU utilization mostly *fell* "
        "despite\nabsolute GPU work growing — the 1080 Ti brings "
        "~50x the GTX 285's shader throughput, far outpacing what "
        "applications\noffload. Browsers are the exception: "
        "compositing moved wholesale onto the GPU.\n");
    return 0;
}

/**
 * @file
 * SMT study (the Section V-C-2 methodology): for a chosen workload,
 * compare SMT-on vs SMT-off at equal logical-core and equal
 * physical-core counts, with the contention counters that explain
 * the result.
 *
 *   $ ./examples/smt_study [workload-id]
 */

#include <cstdio>
#include <iostream>
#include <string>

#include "apps/harness.hh"
#include "apps/registry.hh"
#include "report/table.hh"

using namespace deskpar;

namespace {

struct Row
{
    const char *label;
    unsigned cpus;
    bool smt;
};

} // namespace

int
main(int argc, char **argv)
{
    std::string id = argc > 1 ? argv[1] : "handbrake";
    std::printf("SMT study for %s\n\n", id.c_str());

    const Row rows[] = {
        {"6 physical, SMT off", 6, false},
        {"6 physical, SMT on (12 logical)", 12, true},
        {"3 physical, SMT on (6 logical)", 6, true},
        {"2 physical, SMT off", 2, false},
        {"1 physical, SMT on (2 logical)", 2, true},
    };

    report::TextTable table({"Configuration", "TLP", "Rate (FPS)",
                             "Busy shared w/ sibling (%)",
                             "Contention stalls (%)"});

    for (const Row &row : rows) {
        apps::RunOptions options;
        options.iterations = 3;
        options.duration = sim::sec(15.0);
        options.config.activeCpus = row.cpus;
        options.config.smtEnabled = row.smt;

        apps::AppRunResult result = apps::runWorkload(id, options);
        const auto &sched = result.iterations.back().sched;
        double shared =
            sched.busyTime
                ? 100.0 * static_cast<double>(sched.smtSharedTime) /
                      static_cast<double>(sched.busyTime)
                : 0.0;
        table.row()
            .cell(row.label)
            .cell(result.tlp(), 2)
            .cell(result.fps.mean(), 1)
            .cell(shared, 1)
            .cell(sched.contentionStallFraction() * 100.0, 1);
    }

    table.print(std::cout);
    std::printf(
        "\nReading the table: SMT helps the whole chip a little "
        "(6C/12T vs 6C/6T) because co-runners share cache, but at "
        "equal\nlogical-core counts SMT halves the physical "
        "resources and loses — the paper's Figure 8 conclusion. The "
        "contention-stall\ncolumn mirrors the VTune numbers the "
        "paper quotes (5.3%% alone, ~10.7%% with a busy sibling).\n");
    return 0;
}

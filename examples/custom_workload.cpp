/**
 * @file
 * Authoring a custom workload model: a "photo organizer" that
 * periodically imports a batch of images (fork-join thumbnailing on
 * a worker pool) between user interactions, then studying how its
 * TLP scales with the active core count — the Figure 4 methodology
 * applied to your own application.
 */

#include <cstdio>
#include <iostream>

#include "apps/harness.hh"
#include "apps/standard.hh"
#include "report/figure.hh"

using namespace deskpar;
using namespace deskpar::apps;

namespace {

/** Build the custom model from the standard skeleton. */
WorkloadPtr
makePhotoOrganizer()
{
    StandardAppParams p;
    p.spec = {"photo-organizer", "Photo Organizer (custom)",
              "Example"};
    p.smtFriendliness = 0.3;

    // The user clicks around the library at 2 Hz.
    p.inputRateHz = 2.0;
    p.uiBurstMs = sim::Dist::normal(3.0, 0.8);
    p.uiGpuMs = sim::Dist::fixed(0.5); // thumbnail grid redraw

    // Every 4th interaction triggers a batch import: 8 workers
    // thumbnail ~15 ms of work each, two rounds.
    p.renderWorkers = 8;
    p.workerChunkMs = sim::Dist::normal(15.0, 3.0);
    p.phaseEveryNthInput = 4;
    p.phaseRounds = 2;

    // A background indexer ticks along.
    StandardAppParams::Service indexer;
    indexer.name = "indexer";
    indexer.params.periodMs = sim::Dist::normal(250.0, 50.0);
    indexer.params.burstMs = sim::Dist::normal(2.0, 0.5);
    p.services.push_back(indexer);

    return std::make_unique<StandardAppModel>(std::move(p));
}

} // namespace

int
main()
{
    std::printf("Custom workload: core-scaling study "
                "(Figure 4 methodology)\n\n");

    report::Figure figure("Photo Organizer: TLP vs logical cores",
                          "logical cores", "TLP");
    auto &series = figure.addSeries("photo-organizer");
    auto &ideal = figure.addSeries("ideal");

    for (unsigned cores : {2u, 4u, 6u, 8u, 10u, 12u}) {
        RunOptions options;
        options.iterations = 3;
        options.duration = sim::sec(15.0);
        options.config.activeCpus = cores;

        auto model = makePhotoOrganizer();
        AppRunResult result = runWorkload(*model, options);
        series.add(cores, result.tlp());
        ideal.add(cores, cores);
        std::printf("  %2u logical cores: TLP %.2f, GPU %.1f%%\n",
                    cores, result.tlp(), result.gpuUtil());
    }

    std::printf("\n");
    figure.printAscii(std::cout, 56, 12);
    std::printf("\nThe import phases scale with the pool while UI "
                "handling stays serial, so TLP grows sub-linearly "
                "and saturates near the pool width.\n");
    return 0;
}

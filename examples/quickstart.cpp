/**
 * @file
 * Quickstart: run one application from the benchmark suite on the
 * paper's machine and print its TLP and GPU utilization — the whole
 * measurement pipeline in a dozen lines.
 *
 *   $ ./examples/quickstart [workload-id]
 */

#include <cstdio>
#include <string>

#include "apps/harness.hh"
#include "apps/registry.hh"
#include "report/heatmap.hh"

using namespace deskpar;

int
main(int argc, char **argv)
{
    std::string id = argc > 1 ? argv[1] : "handbrake";

    // 1. Configure the machine (Table I defaults: i7-8700K with 12
    //    logical CPUs, GTX 1080 Ti) and the paper's protocol.
    apps::RunOptions options;
    options.iterations = 3;
    options.duration = sim::sec(20.0);

    // 2. Run the workload; the harness traces each iteration and
    //    aggregates the analysis results.
    apps::AppRunResult result = apps::runWorkload(id, options);

    // 3. Report.
    std::printf("%s on %s\n",
                apps::makeWorkload(id)->spec().name.c_str(),
                options.config.cpu.model.c_str());
    std::printf("  TLP            %.2f +- %.2f (max instantaneous "
                "%.0f)\n",
                result.agg.tlp.mean(), result.agg.tlp.stddev(),
                result.agg.maxConcurrency.max());
    std::printf("  GPU util       %.1f%% +- %.1f%%\n",
                result.agg.gpuUtil.mean(),
                result.agg.gpuUtil.stddev());
    std::printf("  frames/second  %.1f\n", result.fps.mean());
    std::printf("  exec time      %s\n",
                report::heatmapRow(result.agg.meanC).c_str());
    std::printf("  (%s)\n", report::heatmapLegend().c_str());
    return 0;
}

/**
 * @file
 * The shared concurrency-timeline machinery behind TraceIndex and the
 * fused query planner (analysis/query_plan.hh).
 *
 * PR 3 introduced the compressed breakpoint timeline inside
 * trace_index.cc; the query layer needs the same structure for
 * arbitrary filters (pid set, single thread, cpu mask), so the build
 * and query algorithms live here, parameterized by a TimelineSpec.
 * With the default spec (no tid, all cpus) the builder reproduces the
 * original TraceIndex sweep event for event, which is what keeps the
 * index-backed queries bit-identical to analysis::legacy.
 *
 * The builder can additionally collect, in the same single pass:
 *  - the sorted switch-in (dispatch) column, used by responsiveness
 *    and by the context-switch-rate metric,
 *  - per-CPU busy-burst intervals (one contiguous run of target work
 *    on one CPU), used by the duration-histogram metric, and
 *  - per-dispatch ready-wait intervals ([readyTime, timestamp)),
 *    used by the ready-wait metrics (waitfrac/readylat/topblocked).
 */

#ifndef DESKPAR_ANALYSIS_CONCURRENCY_TIMELINE_HH
#define DESKPAR_ANALYSIS_CONCURRENCY_TIMELINE_HH

#include <cstdint>
#include <vector>

#include "analysis/intervals.hh"
#include "analysis/tlp.hh"
#include "trace/filter.hh"
#include "trace/session.hh"

namespace deskpar::analysis::detail {

/**
 * CPU selection mask for a query filter. Bit i selects logical CPU i;
 * kAllCpus (the default) disables masking entirely. CPUs with id >=
 * 64 can only be selected by kAllCpus — no real desktop trace in the
 * paper's corpus exceeds that, and the mask stays one word.
 */
using CpuMask = std::uint64_t;
inline constexpr CpuMask kAllCpus = ~static_cast<CpuMask>(0);

inline bool
cpuInMask(CpuMask mask, trace::CpuId cpu)
{
    if (mask == kAllCpus)
        return true;
    return cpu < 64 && ((mask >> cpu) & 1u) != 0;
}

/**
 * What counts as "target work" for one timeline: a pid set (empty =
 * every non-idle process), optionally narrowed to one thread and/or a
 * cpu mask. Events on masked-out CPUs are invisible to the sweep —
 * they produce no dispatches, no occupancy deltas, and no
 * out-of-range accounting.
 */
struct TimelineSpec
{
    trace::PidSet pids;
    bool hasTid = false;
    trace::Tid tid = 0;
    CpuMask cpuMask = kAllCpus;
};

/** The spec's switch-in predicate (pid 0 is the idle process). */
inline bool
isTargetSwitch(const TimelineSpec &spec, trace::Pid pid, trace::Tid tid)
{
    if (pid == 0)
        return false;
    if (!spec.pids.empty() && spec.pids.count(pid) == 0)
        return false;
    return !spec.hasTid || tid == spec.tid;
}

/**
 * The concurrency level of one filter as a piecewise-constant
 * function of time, compressed to its breakpoints.
 *
 * levels[i] is the number of CPUs running target threads on
 * [times[i], times[i+1)); the level is 0 before times[0] and
 * levels.back() extends past the last breakpoint. Zero-net groups of
 * equal-timestamp deltas are dropped, so consecutive levels differ.
 *
 * cum holds strided checkpoint rows of kStride segments:
 * cum[k*(cutoff+1) + l] is the (integer) time spent at clamped level
 * l over [times[0], times[k*kStride]). A windowed query therefore
 * costs two binary searches, one checkpoint-row difference, and at
 * most kStride edge segments per side.
 *
 * usable is false when the stream cannot be represented faithfully:
 * the header reports zero CPUs, or disorder produced a negative
 * cumulative level (whether the legacy sweep panics on such a trace
 * depends on the queried window, so those queries take the sweep
 * path verbatim).
 */
struct ConcurrencyTimeline
{
    static constexpr std::size_t kStride = 32;

    bool usable = false;
    unsigned cutoff = 0;
    std::uint64_t outOfRangeCpuEvents = 0;
    std::vector<sim::SimTime> times;
    std::vector<int> levels;
    std::vector<sim::SimDuration> cum;
};

/**
 * Per-CPU busy bursts of one filter: each interval is one contiguous
 * run of target work on a single CPU (open bursts close at the
 * bundle's stopTime). Sorted by begin; maxEnd[i] is the running
 * maximum of bursts[0..i].end, so the bursts that can intersect a
 * window are a binary-searchable candidate range, exactly like the
 * GPU packet columns.
 */
struct BurstColumns
{
    std::vector<Interval> bursts;
    std::vector<sim::SimTime> maxEnd;
};

/**
 * Ready-wait columns of one filter: one [readyTime, timestamp) wait
 * interval per target switch-in, zero-length waits kept (the latency
 * mean counts every dispatch), sorted by end (the dispatch time).
 * minBegin[i] is the suffix minimum of begin[i..), so a windowed
 * fold stops scanning as soon as no remaining interval can reach
 * back into the window — the mirror image of BurstColumns::maxEnd,
 * because waits sort naturally by their *end*.
 */
struct WaitColumns
{
    std::vector<sim::SimTime> begin;
    std::vector<sim::SimTime> end;
    std::vector<sim::SimTime> minBegin;
};

/**
 * One fused pass over the cswitch stream: build the compressed
 * timeline for @p spec and optionally collect the sorted dispatch
 * column, the busy-burst columns, and the ready-wait columns. With a
 * default-constructed filter (beyond the pid set) this is the
 * original TraceIndex sweep, preserved operation for operation.
 */
void buildConcurrencyTimeline(const trace::TraceBundle &bundle,
                              const TimelineSpec &spec,
                              ConcurrencyTimeline &timeline,
                              std::vector<sim::SimTime> *dispatches,
                              BurstColumns *bursts,
                              WaitColumns *waits = nullptr);

/**
 * Windowed histogram from a usable timeline. Bit-identical to the
 * reference sweep: the time-at-level decomposition is the same
 * integer sum split differently, and the single divide-by-window per
 * level is the only floating-point operation.
 */
ConcurrencyProfile queryConcurrencyTimeline(
    const ConcurrencyTimeline &timeline, sim::SimTime t0,
    sim::SimTime t1);

/**
 * The direct single-sweep concurrency histogram, generalized over
 * TimelineSpec. With the default spec this is exactly the
 * analysis::legacy::computeConcurrency body (which now wraps it);
 * @p emit_warning false suppresses the out-of-range-cpu Diagnostic so
 * batch callers can dedupe it per trace (the count still lands in
 * ConcurrencyProfile::outOfRangeCpuEvents). @p num_cpus must be
 * resolved (nonzero) and the window non-empty; callers keep the
 * legacy fatal checks.
 */
ConcurrencyProfile sweepConcurrency(const trace::TraceBundle &bundle,
                                    const TimelineSpec &spec,
                                    sim::SimTime t0, sim::SimTime t1,
                                    unsigned num_cpus,
                                    bool emit_warning);

} // namespace deskpar::analysis::detail

#endif // DESKPAR_ANALYSIS_CONCURRENCY_TIMELINE_HH

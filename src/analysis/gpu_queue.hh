/**
 * @file
 * GPU queue-delay analysis: how long packets wait in an engine queue
 * before executing. Utilization (gpu_util.hh) answers "is the GPU
 * busy?"; queue delay answers "is the GPU a bottleneck?" — the
 * distinction behind the paper's GTX 680 observations, where the
 * mid-end board reaches high utilization while transcode rates stay
 * unchanged (deep queues, no stall) but mining throughput collapses.
 */

#ifndef DESKPAR_ANALYSIS_GPU_QUEUE_HH
#define DESKPAR_ANALYSIS_GPU_QUEUE_HH

#include <array>

#include "analysis/stats.hh"
#include "trace/event.hh"
#include "trace/filter.hh"
#include "trace/session.hh"

namespace deskpar::analysis {

/**
 * Queue-delay statistics of one trace window.
 */
struct GpuQueueStats
{
    /** Packets analyzed. */
    std::size_t packets = 0;
    /** Packets that waited at all. */
    std::size_t delayedPackets = 0;
    /** Wait (start - queued) stats in nanoseconds, all packets. */
    RunningStat waitNs;
    /** Execution (finish - start) stats in nanoseconds. */
    RunningStat execNs;
    /** Per-engine mean wait in ns. */
    std::array<double, trace::kNumGpuEngines> meanWaitPerEngine{};

    double meanWaitMs() const { return waitNs.mean() * 1e-6; }
    double maxWaitMs() const { return waitNs.max() * 1e-6; }

    /** Fraction of packets that queued behind earlier work. */
    double
    delayedShare() const
    {
        return packets ? static_cast<double>(delayedPackets) /
                             static_cast<double>(packets)
                       : 0.0;
    }
};

/**
 * Compute queue statistics for the processes in @p pids (empty =
 * all) over the whole bundle window.
 */
GpuQueueStats computeGpuQueueStats(const trace::TraceBundle &bundle,
                                   const trace::PidSet &pids);

} // namespace deskpar::analysis

#endif // DESKPAR_ANALYSIS_GPU_QUEUE_HH

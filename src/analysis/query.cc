#include "analysis/query.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "sim/logging.hh"

namespace deskpar::analysis {

using sim::SimDuration;
using sim::SimTime;
using trace::Pid;
using trace::Tid;

const char *
queryMetricName(QueryMetric metric)
{
    switch (metric) {
      case QueryMetric::Tlp:
        return "tlp";
      case QueryMetric::BusyFraction:
        return "busy";
      case QueryMetric::GpuOccupancy:
        return "gpu";
      case QueryMetric::ContextSwitchRate:
        return "csrate";
      case QueryMetric::DurationHistogram:
        return "dhist";
      case QueryMetric::WaitFraction:
        return "waitfrac";
      case QueryMetric::ReadyLatency:
        return "readylat";
      case QueryMetric::TopBlocked:
        return "topblocked";
    }
    return "?";
}

const char *
queryGroupByName(QueryGroupBy groupBy)
{
    switch (groupBy) {
      case QueryGroupBy::None:
        return "none";
      case QueryGroupBy::Process:
        return "process";
      case QueryGroupBy::Thread:
        return "thread";
      case QueryGroupBy::Phase:
        return "phase";
      case QueryGroupBy::GpuEngine:
        return "engine";
      case QueryGroupBy::TimeBucket:
        return "bucket";
    }
    return "?";
}

namespace {

/** Display key of one pid: its recorded name, or "pid<N>". */
std::string
processKey(const trace::TraceBundle &bundle, Pid pid)
{
    auto it = bundle.processNames.find(pid);
    if (it != bundle.processNames.end() && !it->second.empty())
        return it->second;
    return "pid" + std::to_string(pid);
}

/**
 * Exact decimal-seconds image of an integer nanosecond count
 * ("1.25", "0.000000128"). The old %g formatter rounded to six
 * significant digits, so sub-millisecond bucket widths and offsets
 * did not survive a print/parse round trip.
 */
std::string
formatDecimalSeconds(SimTime t)
{
    std::string s = std::to_string(t / 1000000000ull);
    std::uint64_t frac = t % 1000000000ull;
    if (frac != 0) {
        char buf[16];
        std::snprintf(buf, sizeof buf, "%09llu",
                      static_cast<unsigned long long>(frac));
        std::string digits = buf;
        while (digits.back() == '0')
            digits.pop_back();
        s += '.';
        s += digits;
    }
    return s;
}

/**
 * Exact decimal -> integer nanoseconds: digits[.digits] at @p scale
 * nanoseconds per unit. Returns false on any non-digit character,
 * precision finer than one nanosecond, or overflow — the caller
 * falls back to the strtod path for scientific notation.
 */
bool
decimalToNs(const std::string &text, std::uint64_t scale,
            std::uint64_t &out)
{
    constexpr std::uint64_t kMax = ~std::uint64_t{0};
    std::size_t i = 0;
    bool any = false;
    std::uint64_t whole = 0;
    for (; i < text.size() && text[i] >= '0' && text[i] <= '9'; ++i) {
        auto d = static_cast<std::uint64_t>(text[i] - '0');
        if (whole > (kMax - d) / 10)
            return false;
        whole = whole * 10 + d;
        any = true;
    }
    std::uint64_t frac = 0;
    if (i < text.size() && text[i] == '.') {
        ++i;
        std::uint64_t unit = scale;
        for (; i < text.size() && text[i] >= '0' && text[i] <= '9';
             ++i) {
            auto d = static_cast<std::uint64_t>(text[i] - '0');
            unit /= 10;
            if (d != 0 && unit == 0)
                return false;
            frac += d * unit;
            any = true;
        }
    }
    if (!any || i != text.size())
        return false;
    if (whole > (kMax - frac) / scale)
        return false;
    out = whole * scale + frac;
    return true;
}

} // namespace

Query
parseQuerySpec(const std::string &spec)
{
    auto bad = [&spec](const std::string &why) {
        deskpar::fatal("query spec '" + spec + "': " + why);
    };

    std::vector<std::string> tokens;
    for (std::size_t pos = 0; pos <= spec.size();) {
        std::size_t slash = spec.find('/', pos);
        if (slash == std::string::npos)
            slash = spec.size();
        tokens.push_back(spec.substr(pos, slash - pos));
        pos = slash + 1;
    }
    if (tokens.empty() || tokens[0].empty())
        bad("missing metric (tlp|busy|gpu|csrate|dhist|waitfrac|"
            "readylat|topblocked)");

    Query query;
    const std::string &metric = tokens[0];
    if (metric == "tlp") {
        query.metric = QueryMetric::Tlp;
    } else if (metric == "busy") {
        query.metric = QueryMetric::BusyFraction;
    } else if (metric == "gpu") {
        query.metric = QueryMetric::GpuOccupancy;
    } else if (metric == "csrate") {
        query.metric = QueryMetric::ContextSwitchRate;
    } else if (metric == "dhist") {
        query.metric = QueryMetric::DurationHistogram;
    } else if (metric == "waitfrac") {
        query.metric = QueryMetric::WaitFraction;
    } else if (metric == "readylat") {
        query.metric = QueryMetric::ReadyLatency;
    } else if (metric == "topblocked") {
        query.metric = QueryMetric::TopBlocked;
    } else {
        bad("unknown metric '" + metric + "'");
    }

    auto parseNumber = [&bad](const std::string &text,
                              const char *what, const char **rest) {
        const char *begin = text.c_str();
        char *end = nullptr;
        double v = std::strtod(begin, &end);
        if (end == begin || v < 0.0)
            bad(std::string("bad ") + what + " '" + text + "'");
        if (rest)
            *rest = end;
        else if (*end != '\0')
            bad(std::string("bad ") + what + " '" + text + "'");
        return v;
    };

    // Strip the ns|us|ms|s suffix; false when none matches (plain
    // "ns" etc. degrades to an empty body, which the parsers reject).
    auto splitUnit = [](const std::string &text, std::string &body,
                        std::uint64_t &scale) {
        auto ends = [&text](const char *suf, std::size_t n) {
            return text.size() > n &&
                   text.compare(text.size() - n, n, suf) == 0;
        };
        if (ends("ns", 2))
            scale = 1;
        else if (ends("us", 2))
            scale = 1000;
        else if (ends("ms", 2))
            scale = 1000000;
        else if (ends("s", 1))
            scale = 1000000000;
        else
            return false;
        body = text.substr(0, text.size() - (scale == 1000000000 ? 1 : 2));
        return true;
    };

    auto parseDuration = [&bad, &parseNumber,
                          &splitUnit](const std::string &text,
                                      const char *what) {
        // Exact integer path first: the decimal strings
        // querySpecString prints must round-trip bit for bit.
        std::string body;
        std::uint64_t scale = 0;
        std::uint64_t ns = 0;
        SimDuration d = 0;
        if (splitUnit(text, body, scale) &&
            decimalToNs(body, scale, ns)) {
            d = ns;
        } else {
            // Fallback for scientific notation ("2.5e-3s"): strtod
            // plus a re-validated suffix, rounded to the nearest
            // nanosecond.
            const char *suffix = nullptr;
            double v = parseNumber(text, what, &suffix);
            double fscale = 0.0;
            std::string suf(suffix);
            if (suf == "ns")
                fscale = 1.0;
            else if (suf == "us")
                fscale = 1e3;
            else if (suf == "ms")
                fscale = 1e6;
            else if (suf == "s")
                fscale = 1e9;
            else
                bad(std::string(what) + " '" + text +
                    "' needs a ns|us|ms|s suffix");
            d = static_cast<SimDuration>(std::llround(v * fscale));
        }
        if (d == 0)
            bad(std::string(what) + " '" + text + "' must be > 0");
        return d;
    };

    // Seconds offsets: exact decimal first, for the same reason.
    auto parseTime = [&parseNumber](const std::string &text,
                                    const char *what) {
        std::uint64_t ns = 0;
        if (decimalToNs(text, 1000000000ull, ns))
            return static_cast<SimTime>(ns);
        return sim::sec(parseNumber(text, what, nullptr));
    };

    for (std::size_t i = 1; i < tokens.size(); ++i) {
        const std::string &tok = tokens[i];
        std::size_t eq = tok.find('=');
        if (eq == std::string::npos || eq == 0)
            bad("expected key=value, got '" + tok + "'");
        std::string key = tok.substr(0, eq);
        std::string value = tok.substr(eq + 1);
        if (key == "app") {
            if (value.empty())
                bad("empty app prefix");
            query.filter.namePrefix = value;
        } else if (key == "pids") {
            for (std::size_t pos = 0; pos <= value.size();) {
                std::size_t comma = value.find(',', pos);
                if (comma == std::string::npos)
                    comma = value.size();
                std::string item = value.substr(pos, comma - pos);
                const char *begin = item.c_str();
                char *end = nullptr;
                unsigned long pid = std::strtoul(begin, &end, 10);
                if (end == begin || *end != '\0')
                    bad("bad pid '" + item + "'");
                query.filter.pids.insert(static_cast<Pid>(pid));
                pos = comma + 1;
            }
            if (query.filter.pids.empty())
                bad("empty pid list");
        } else if (key == "t0") {
            query.filter.t0 = parseTime(value, "t0");
        } else if (key == "t1") {
            query.filter.t1 = parseTime(value, "t1");
        } else if (key == "cpus") {
            detail::CpuMask mask = 0;
            for (std::size_t pos = 0; pos <= value.size();) {
                std::size_t comma = value.find(',', pos);
                if (comma == std::string::npos)
                    comma = value.size();
                std::string item = value.substr(pos, comma - pos);
                const char *begin = item.c_str();
                char *end = nullptr;
                unsigned long lo = std::strtoul(begin, &end, 10);
                unsigned long hi = lo;
                if (end != begin && *end == '-') {
                    const char *hbegin = end + 1;
                    hi = std::strtoul(hbegin, &end, 10);
                    if (end == hbegin)
                        bad("bad cpu range '" + item + "'");
                }
                if (end == begin || *end != '\0' || hi < lo)
                    bad("bad cpu id '" + item + "'");
                if (hi >= 64)
                    bad("cpu ids above 63 are not maskable");
                for (unsigned long cpu = lo; cpu <= hi; ++cpu)
                    mask |= detail::CpuMask{1} << cpu;
                pos = comma + 1;
            }
            if (mask == 0)
                bad("empty cpu list");
            query.filter.cpuMask = mask;
        } else if (key == "by") {
            std::string group = value;
            std::size_t colon = value.find(':');
            if (colon != std::string::npos) {
                group = value.substr(0, colon);
                query.bucket = parseDuration(value.substr(colon + 1),
                                             "bucket width");
            }
            if (group == "process") {
                query.groupBy = QueryGroupBy::Process;
            } else if (group == "thread") {
                query.groupBy = QueryGroupBy::Thread;
            } else if (group == "phase") {
                query.groupBy = QueryGroupBy::Phase;
            } else if (group == "engine") {
                query.groupBy = QueryGroupBy::GpuEngine;
            } else if (group == "bucket") {
                query.groupBy = QueryGroupBy::TimeBucket;
                if (query.bucket == 0)
                    bad("by=bucket needs a width "
                        "(e.g. by=bucket:250ms)");
            } else {
                bad("unknown group-by '" + group + "'");
            }
        } else if (key == "label") {
            query.label = value;
        } else {
            bad("unknown field '" + key + "'");
        }
    }
    return query;
}

std::string
querySpecString(const Query &query)
{
    std::string s = queryMetricName(query.metric);
    if (!query.filter.namePrefix.empty()) {
        s += "/app=" + query.filter.namePrefix;
    } else if (!query.filter.pids.empty()) {
        std::vector<Pid> pids(query.filter.pids.begin(),
                              query.filter.pids.end());
        std::sort(pids.begin(), pids.end());
        s += "/pids=";
        for (std::size_t i = 0; i < pids.size(); ++i) {
            if (i > 0)
                s += ',';
            s += std::to_string(pids[i]);
        }
    }
    if (query.filter.t0 != 0)
        s += "/t0=" + formatDecimalSeconds(query.filter.t0);
    if (query.filter.t1 != 0)
        s += "/t1=" + formatDecimalSeconds(query.filter.t1);
    if (query.filter.cpuMask != detail::kAllCpus) {
        s += "/cpus=";
        bool firstCpu = true;
        for (unsigned cpu = 0; cpu < 64; ++cpu) {
            if (!detail::cpuInMask(query.filter.cpuMask, cpu))
                continue;
            if (!firstCpu)
                s += ',';
            s += std::to_string(cpu);
            firstCpu = false;
        }
    }
    if (query.groupBy != QueryGroupBy::None) {
        s += "/by=";
        s += queryGroupByName(query.groupBy);
        if (query.groupBy == QueryGroupBy::TimeBucket)
            s += ":" + formatDecimalSeconds(query.bucket) + "s";
    }
    return s;
}

Query
tlpQuery(trace::PidSet pids)
{
    Query query;
    query.metric = QueryMetric::Tlp;
    query.filter.pids = std::move(pids);
    return query;
}

Query
tlpSeriesQuery(trace::PidSet pids, SimDuration window)
{
    Query query;
    query.metric = QueryMetric::Tlp;
    query.filter.pids = std::move(pids);
    query.groupBy = QueryGroupBy::TimeBucket;
    query.bucket = window;
    return query;
}

Query
gpuUtilSeriesQuery(trace::PidSet pids, SimDuration window)
{
    Query query;
    query.metric = QueryMetric::GpuOccupancy;
    query.filter.pids = std::move(pids);
    query.groupBy = QueryGroupBy::TimeBucket;
    query.bucket = window;
    return query;
}

namespace detail {

ResolvedFilter
resolveQueryFilter(const trace::TraceBundle &bundle,
                   const QueryFilter &filter)
{
    ResolvedFilter out;
    out.cpuMask = filter.cpuMask;
    out.pids = filter.pids;
    if (out.pids.empty() && !filter.namePrefix.empty()) {
        std::vector<Pid> matched =
            bundle.pidsByPrefix(filter.namePrefix);
        if (matched.empty())
            deskpar::fatal("query: no process name matches prefix '" +
                           filter.namePrefix + "'");
        out.pids.insert(matched.begin(), matched.end());
    }
    out.t0 = filter.t0 != 0 ? filter.t0 : bundle.startTime;
    out.t1 = filter.t1 != 0 ? filter.t1 : bundle.stopTime;
    if (out.t1 <= out.t0)
        deskpar::fatal("query: empty window");
    return out;
}

std::vector<QueryRowSpec>
expandQueryRows(const trace::TraceBundle &bundle, const Query &query)
{
    if (query.groupBy == QueryGroupBy::GpuEngine &&
        query.metric != QueryMetric::GpuOccupancy)
        deskpar::fatal("query: engine group-by requires the gpu "
                       "metric");
    if (query.metric == QueryMetric::GpuOccupancy &&
        query.groupBy == QueryGroupBy::Thread)
        deskpar::fatal("query: gpu metric cannot group by thread "
                       "(packets carry no tid)");
    if (query.groupBy == QueryGroupBy::TimeBucket &&
        query.bucket == 0)
        deskpar::fatal("query: bucket group-by requires a width");

    ResolvedFilter f = resolveQueryFilter(bundle, query.filter);
    std::vector<QueryRowSpec> rows;

    auto baseRow = [&f]() {
        QueryRowSpec row;
        row.t0 = f.t0;
        row.t1 = f.t1;
        row.pids = f.pids;
        return row;
    };

    switch (query.groupBy) {
      case QueryGroupBy::None: {
        rows.push_back(baseRow());
        break;
      }
      case QueryGroupBy::Process: {
        std::vector<Pid> pids;
        if (f.pids.empty()) {
            trace::PidSet all = trace::allApplicationPids(bundle);
            pids.assign(all.begin(), all.end());
        } else {
            pids.assign(f.pids.begin(), f.pids.end());
        }
        std::sort(pids.begin(), pids.end());
        for (Pid pid : pids) {
            QueryRowSpec row = baseRow();
            row.key = processKey(bundle, pid);
            row.pids = trace::PidSet{pid};
            row.pidLabel = pid;
            rows.push_back(std::move(row));
        }
        break;
      }
      case QueryGroupBy::Thread: {
        // Distinct switch-in targets, discovery narrowed by the same
        // mask the evaluation will use.
        std::vector<std::pair<Pid, Tid>> threads;
        for (const auto &e : bundle.cswitches) {
            if (!cpuInMask(f.cpuMask, e.cpu))
                continue;
            if (e.newPid == 0 || e.newTid == 0)
                continue;
            if (!f.pids.empty() && f.pids.count(e.newPid) == 0)
                continue;
            threads.emplace_back(e.newPid, e.newTid);
        }
        std::sort(threads.begin(), threads.end());
        threads.erase(std::unique(threads.begin(), threads.end()),
                      threads.end());
        for (const auto &[pid, tid] : threads) {
            QueryRowSpec row = baseRow();
            row.key =
                processKey(bundle, pid) + "/tid" + std::to_string(tid);
            row.pids = trace::PidSet{pid};
            row.hasTid = true;
            row.tid = tid;
            row.pidLabel = pid;
            row.tidLabel = tid;
            rows.push_back(std::move(row));
        }
        break;
      }
      case QueryGroupBy::Phase: {
        // A phase runs from its marker to the next phase marker (the
        // last one to the end of the filter window), intersected with
        // the window; empty intersections vanish.
        std::vector<const trace::MarkerEvent *> phases;
        for (const auto &m : bundle.markers) {
            if (m.label.rfind("phase:", 0) == 0)
                phases.push_back(&m);
        }
        std::stable_sort(phases.begin(), phases.end(),
                         [](const auto *a, const auto *b) {
                             return a->timestamp < b->timestamp;
                         });
        for (std::size_t i = 0; i < phases.size(); ++i) {
            SimTime begin = phases[i]->timestamp;
            SimTime end = i + 1 < phases.size()
                              ? phases[i + 1]->timestamp
                              : f.t1;
            Interval iv = Interval{begin, end}.clampTo(f.t0, f.t1);
            if (iv.empty())
                continue;
            QueryRowSpec row = baseRow();
            row.key = phases[i]->label;
            row.t0 = iv.begin;
            row.t1 = iv.end;
            rows.push_back(std::move(row));
        }
        break;
      }
      case QueryGroupBy::GpuEngine: {
        for (unsigned e = 0; e < trace::kNumGpuEngines; ++e) {
            QueryRowSpec row = baseRow();
            row.key = trace::gpuEngineName(
                static_cast<trace::GpuEngineId>(e));
            row.engine = static_cast<int>(e);
            rows.push_back(std::move(row));
        }
        break;
      }
      case QueryGroupBy::TimeBucket: {
        for (SimTime t = f.t0; t < f.t1; t += query.bucket) {
            SimTime end = std::min(t + query.bucket, f.t1);
            if (end <= t)
                break;
            QueryRowSpec row = baseRow();
            row.t0 = t;
            row.t1 = end;
            rows.push_back(std::move(row));
        }
        break;
      }
    }
    return rows;
}

std::vector<Interval>
collectBursts(const trace::TraceBundle &bundle,
              const TimelineSpec &spec)
{
    // The burst state machine of buildConcurrencyTimeline, standalone:
    // same transitions, same inverted-burst drops, same end-of-stream
    // closing — but written independently as the differential-test
    // reference for the planner's sorted burst columns.
    const unsigned cutoff = bundle.numLogicalCpus;
    std::vector<Interval> bursts;
    if (cutoff == 0)
        return bursts;
    std::vector<std::uint8_t> busy(cutoff, 0);
    std::vector<SimTime> start(cutoff, 0);
    for (const auto &e : bundle.cswitches) {
        if (!cpuInMask(spec.cpuMask, e.cpu))
            continue;
        if (e.cpu >= cutoff)
            continue;
        std::uint8_t now_busy =
            isTargetSwitch(spec, e.newPid, e.newTid) ? 1 : 0;
        if (busy[e.cpu] == now_busy)
            continue;
        if (now_busy)
            start[e.cpu] = e.timestamp;
        else if (e.timestamp > start[e.cpu])
            bursts.push_back(Interval{start[e.cpu], e.timestamp});
        busy[e.cpu] = now_busy;
    }
    for (unsigned cpu = 0; cpu < cutoff; ++cpu) {
        if (busy[cpu] && bundle.stopTime > start[cpu])
            bursts.push_back(Interval{start[cpu], bundle.stopTime});
    }
    return bursts;
}

std::vector<Interval>
collectWaits(const trace::TraceBundle &bundle,
             const TimelineSpec &spec)
{
    std::vector<Interval> waits;
    for (const auto &e : bundle.cswitches) {
        if (!cpuInMask(spec.cpuMask, e.cpu))
            continue;
        if (!isTargetSwitch(spec, e.newPid, e.newTid))
            continue;
        // The readers clamp inverted ready times, but a hand-built
        // bundle may still carry one; clamp again so the wait cannot
        // wrap. Like the dispatch column (csrate), waits ignore the
        // header CPU count — a switch-in is a switch-in.
        SimTime ready = std::min(e.readyTime, e.timestamp);
        waits.push_back(Interval{ready, e.timestamp});
    }
    return waits;
}

WaitFold
foldWaits(const std::vector<Interval> &waits, SimTime t0, SimTime t1)
{
    WaitFold fold;
    for (const Interval &w : waits) {
        if (w.end >= t0 && w.end < t1) {
            ++fold.dispatches;
            fold.latencyNs += w.end - w.begin;
        }
        if (w.end > t0 && w.begin < t1) {
            SimTime lo = std::max(w.begin, t0);
            SimTime hi = std::min(w.end, t1);
            fold.overlapNs += hi - lo;
        }
    }
    return fold;
}

ConcurrencyProfile
referenceConcurrency(const trace::TraceBundle &bundle,
                     const TimelineSpec &spec, SimTime t0, SimTime t1)
{
    unsigned num_cpus = bundle.numLogicalCpus;
    if (num_cpus == 0)
        deskpar::fatal("computeConcurrency: unknown CPU count");
    if (t1 <= t0)
        deskpar::fatal("computeConcurrency: empty window");
    return sweepConcurrency(bundle, spec, t0, t1, num_cpus,
                            /*emit_warning=*/true);
}

} // namespace detail

namespace legacy {

QueryResult
runQuery(const trace::TraceBundle &bundle, const Query &query)
{
    QueryResult out;
    out.query = query;
    if (out.query.label.empty())
        out.query.label = querySpecString(query);

    std::vector<detail::QueryRowSpec> specs =
        detail::expandQueryRows(bundle, query);
    out.rows.reserve(specs.size());

    // The engine rows of one query share a window; one fold fills all
    // five, like the planner's engine task.
    GpuUtilization engineUtil;
    bool engineFolded = false;

    for (const detail::QueryRowSpec &spec : specs) {
        QueryRow row;
        row.key = spec.key;
        row.t0 = spec.t0;
        row.t1 = spec.t1;
        row.pid = spec.pidLabel;
        row.tid = spec.tidLabel;

        detail::TimelineSpec ts;
        ts.pids = spec.pids;
        ts.hasTid = spec.hasTid;
        ts.tid = spec.tid;
        ts.cpuMask = query.filter.cpuMask;

        switch (query.metric) {
          case QueryMetric::Tlp:
          case QueryMetric::BusyFraction: {
            ConcurrencyProfile profile = detail::referenceConcurrency(
                bundle, ts, spec.t0, spec.t1);
            row.value =
                detail::metricFromProfile(query.metric, profile);
            break;
          }
          case QueryMetric::GpuOccupancy: {
            if (spec.engine >= 0) {
                if (!engineFolded) {
                    engineUtil = computeGpuUtil(bundle, spec.pids,
                                                spec.t0, spec.t1);
                    engineFolded = true;
                }
                row.value = detail::engineOccupancyPercent(
                    engineUtil, spec.engine);
            } else {
                row.value = detail::engineOccupancyPercent(
                    computeGpuUtil(bundle, spec.pids, spec.t0,
                                   spec.t1),
                    -1);
            }
            break;
          }
          case QueryMetric::ContextSwitchRate: {
            std::uint64_t count = 0;
            for (const auto &e : bundle.cswitches) {
                if (!detail::cpuInMask(ts.cpuMask, e.cpu))
                    continue;
                if (!detail::isTargetSwitch(ts, e.newPid, e.newTid))
                    continue;
                if (e.timestamp >= spec.t0 && e.timestamp < spec.t1)
                    ++count;
            }
            row.value =
                detail::contextSwitchRate(count, spec.t1 - spec.t0);
            break;
          }
          case QueryMetric::DurationHistogram: {
            std::vector<Interval> bursts =
                detail::collectBursts(bundle, ts);
            row.histogram.assign(kDurationHistogramBuckets, 0);
            std::uint64_t count = 0;
            for (const Interval &burst : bursts) {
                Interval iv = burst.clampTo(spec.t0, spec.t1);
                if (iv.empty())
                    continue;
                ++count;
                ++row.histogram[detail::durationHistogramBucket(
                    iv.length())];
            }
            row.value = static_cast<double>(count);
            break;
          }
          case QueryMetric::WaitFraction:
          case QueryMetric::ReadyLatency:
          case QueryMetric::TopBlocked: {
            std::vector<Interval> waits =
                detail::collectWaits(bundle, ts);
            detail::WaitFold fold =
                detail::foldWaits(waits, spec.t0, spec.t1);
            row.value = detail::waitMetricValue(query.metric, fold,
                                                spec.t1 - spec.t0);
            break;
          }
        }
        out.rows.push_back(std::move(row));
    }
    return out;
}

std::vector<QueryResult>
runQueries(const trace::TraceBundle &bundle,
           const std::vector<Query> &queries)
{
    std::vector<QueryResult> out;
    out.reserve(queries.size());
    for (const Query &query : queries)
        out.push_back(runQuery(bundle, query));
    return out;
}

} // namespace legacy

} // namespace deskpar::analysis

/**
 * @file
 * Interactive responsiveness: the latency from a user-input delivery
 * to the application's first CPU dispatch afterwards.
 *
 * This extends the reproduction toward the 2000-era methodology the
 * paper builds on: Flautner et al. found that a second processor
 * improved the *responsiveness* of interactive applications even
 * when average TLP stayed below 2 (Section II). The input drivers
 * mark every delivery in the trace, so responsiveness can be
 * computed from the same bundles as TLP.
 */

#ifndef DESKPAR_ANALYSIS_RESPONSIVENESS_HH
#define DESKPAR_ANALYSIS_RESPONSIVENESS_HH

#include <vector>

#include "analysis/stats.hh"
#include "trace/filter.hh"
#include "trace/session.hh"

namespace deskpar::analysis {

/** Marker-label prefix the input drivers stamp on deliveries. */
inline constexpr const char *kInputMarkerPrefix = "input:";

/**
 * Input-to-dispatch latency statistics.
 */
struct Responsiveness
{
    /** Inputs found in the trace window. */
    std::size_t inputs = 0;
    /** Inputs that saw a subsequent dispatch of the application. */
    std::size_t answered = 0;
    /** Latency stats over answered inputs, in nanoseconds. */
    RunningStat latency;

    double meanLatencyMs() const { return latency.mean() * 1e-6; }
    double maxLatencyMs() const { return latency.max() * 1e-6; }
};

/**
 * Compute responsiveness for the application consisting of @p pids
 * (empty = any non-idle process): for each input marker, the time
 * until the next context switch that puts one of the application's
 * threads on a CPU.
 *
 * A thin wrapper over TraceIndex (trace_index.hh), which caches the
 * sorted dispatch column per pid set.
 *
 * @deprecated Thin shim over a throwaway analysis::Session; callers
 * issuing more than one query per bundle should hold a Session
 * (analysis/session.hh).
 */
Responsiveness computeResponsiveness(const trace::TraceBundle &bundle,
                                     const trace::PidSet &pids);

namespace legacy {

/**
 * The direct implementation — the bit-identical reference for the
 * index-backed path.
 */
Responsiveness computeResponsiveness(const trace::TraceBundle &bundle,
                                     const trace::PidSet &pids);

} // namespace legacy

namespace detail {

/**
 * The marker-matching half of computeResponsiveness, over a sorted
 * dispatch column. Shared by the legacy path (which collects the
 * column per call) and the index (which caches it per pid set).
 */
Responsiveness
responsivenessFromDispatches(const trace::TraceBundle &bundle,
                             const std::vector<sim::SimTime> &dispatches);

} // namespace detail

} // namespace deskpar::analysis

#endif // DESKPAR_ANALYSIS_RESPONSIVENESS_HH

#include "analysis/session.hh"

#include <utility>

#include "sim/logging.hh"
#include "trace/filter.hh"

namespace deskpar::analysis {

Session::Session(const TraceBundle &bundle) : bundle_(&bundle) {}

Session::Session(TraceBundle &&bundle)
    : owned_(std::make_unique<TraceBundle>(std::move(bundle))),
      bundle_(owned_.get())
{}

Session::~Session() = default;

const TraceIndex &
Session::index() const
{
    std::call_once(indexOnce_, [this] {
        index_ = std::make_unique<TraceIndex>(*bundle_);
    });
    return *index_;
}

void
Session::adoptIndex(std::unique_ptr<TraceIndex> index) const
{
    bool installed = false;
    std::call_once(indexOnce_, [&] {
        index_ = std::move(index);
        installed = true;
    });
    if (!installed)
        deskpar::fatal("Session::adoptIndex: index already built");
}

PidSet
Session::pids(const std::string &prefix) const
{
    return prefix.empty() ? trace::allApplicationPids(*bundle_)
                          : trace::pidsWithPrefix(*bundle_, prefix);
}

AppMetrics
Session::app(const PidSet &pids) const
{
    return analyzeApp(index(), pids);
}

AppMetrics
Session::app(const std::string &prefix) const
{
    return analyzeApp(index(), prefix);
}

ConcurrencyProfile
Session::concurrency(const PidSet &pids, sim::SimTime t0,
                     sim::SimTime t1, unsigned num_cpus) const
{
    return index().concurrency(pids, t0, t1, num_cpus);
}

ConcurrencyProfile
Session::concurrency(const PidSet &pids) const
{
    return index().concurrency(pids);
}

GpuUtilization
Session::gpuUtil(const PidSet &pids, sim::SimTime t0,
                 sim::SimTime t1) const
{
    return index().gpuUtil(pids, t0, t1);
}

GpuUtilization
Session::gpuUtil(const PidSet &pids) const
{
    return index().gpuUtil(pids);
}

FrameStats
Session::frameStats(const PidSet &pids) const
{
    return index().frameStats(pids);
}

Responsiveness
Session::responsiveness(const PidSet &pids) const
{
    return index().responsiveness(pids);
}

PowerEstimate
Session::power(const sim::CpuSpec &cpu, const sim::GpuSpec &gpu) const
{
    return index().power(cpu, gpu);
}

TimeSeries
Session::tlpSeries(const PidSet &pids, sim::SimDuration window) const
{
    return analysis::tlpSeries(index(), pids, window);
}

TimeSeries
Session::concurrencySeries(const PidSet &pids,
                           sim::SimDuration window) const
{
    return analysis::concurrencySeries(index(), pids, window);
}

TimeSeries
Session::gpuUtilSeries(const PidSet &pids,
                       sim::SimDuration window) const
{
    return analysis::gpuUtilSeries(index(), pids, window);
}

TimeSeries
Session::frameRateSeries(const PidSet &pids,
                         sim::SimDuration window) const
{
    return analysis::frameRateSeries(index(), pids, window);
}

QueryPlan
Session::plan(const std::vector<Query> &queries) const
{
    // The planner sweeps the raw cswitch stream, which a warm
    // (cache-restored) Session intentionally does not carry.
    if (index().restored())
        deskpar::fatal(
            "Session::plan: query plans are not supported on a "
            "cache-restored Session; reopen the trace with a cold "
            "ingest");
    return QueryPlan::compile(index(), queries);
}

std::vector<QueryResult>
Session::query(const std::vector<Query> &queries,
               unsigned threads) const
{
    return plan(queries).run(threads);
}

blocking::BlockingReport
Session::bottlenecks(const PidSet &pids, unsigned threads) const
{
    // The wakeup-chain sweep also needs the raw cswitch stream.
    if (index().restored())
        deskpar::fatal(
            "Session::bottlenecks: bottleneck analysis is not "
            "supported on a cache-restored Session; reopen the "
            "trace with a cold ingest");
    return blocking::analyze(index(), pids, threads);
}

} // namespace deskpar::analysis

#include "analysis/query_plan.hh"

#include <algorithm>
#include <exception>
#include <map>
#include <tuple>
#include <utility>

#include "analysis/trace_index.hh"
#include "obs/obs.hh"
#include "sim/logging.hh"
#include "sim/parallel.hh"

namespace deskpar::analysis {

using sim::SimTime;
using trace::Pid;

namespace {

/** Human description of a filter, for --explain. */
std::string
describeFilter(const detail::TimelineSpec &spec)
{
    std::string desc;
    if (spec.pids.empty()) {
        desc = "all processes";
    } else {
        std::vector<Pid> pids(spec.pids.begin(), spec.pids.end());
        std::sort(pids.begin(), pids.end());
        desc = "pids={";
        for (std::size_t i = 0; i < pids.size(); ++i) {
            if (i > 0)
                desc += ',';
            desc += std::to_string(pids[i]);
        }
        desc += '}';
    }
    if (spec.hasTid)
        desc += " tid=" + std::to_string(spec.tid);
    if (spec.cpuMask != detail::kAllCpus) {
        desc += " cpus=";
        bool first = true;
        for (unsigned cpu = 0; cpu < 64; ++cpu) {
            if (!detail::cpuInMask(spec.cpuMask, cpu))
                continue;
            if (!first)
                desc += ',';
            desc += std::to_string(cpu);
            first = false;
        }
    }
    return desc;
}

} // namespace

std::string
QueryPlanExplain::str() const
{
    std::string out = "plan: " + std::to_string(queries) +
                      " quer" + (queries == 1 ? "y" : "ies") + ", " +
                      std::to_string(rows) + " row" +
                      (rows == 1 ? "" : "s") + ", " +
                      std::to_string(distinctFilters) +
                      " distinct filter" +
                      (distinctFilters == 1 ? "" : "s") + ", " +
                      std::to_string(columnPasses) +
                      " column pass" +
                      (columnPasses == 1 ? "" : "es") + "\n";
    for (std::size_t i = 0; i < passes.size(); ++i) {
        const QueryPlanPass &pass = passes[i];
        out += "  filter " + std::to_string(i + 1) + ": " +
               pass.filter + "  [";
        for (std::size_t m = 0; m < pass.metrics.size(); ++m) {
            if (m > 0)
                out += ',';
            out += pass.metrics[m];
        }
        out += "]  rows=" + std::to_string(pass.rows) + "  builds=";
        std::string builds;
        if (pass.buildsTimeline)
            builds = "timeline";
        if (pass.buildsDispatches)
            builds += std::string(builds.empty() ? "" : "+") +
                      "dispatches";
        if (pass.buildsBursts)
            builds += std::string(builds.empty() ? "" : "+") +
                      "bursts";
        if (pass.buildsWaits)
            builds += std::string(builds.empty() ? "" : "+") +
                      "waits";
        if (builds.empty())
            builds = "none (shared gpu columns)";
        out += builds + "\n";
    }
    return out;
}

QueryPlan
QueryPlan::compile(const TraceIndex &index,
                   const std::vector<Query> &queries)
{
    obs::Span span("query.plan", obs::SpanKind::Plan, queries.size());
    const trace::TraceBundle &bundle = index.bundle();

    QueryPlan plan;
    plan.index_ = &index;
    plan.skeleton_.reserve(queries.size());

    // Distinct row filters, keyed by (sorted pids, tid, cpu mask).
    using FilterKey =
        std::tuple<std::vector<Pid>, bool, trace::Tid, detail::CpuMask>;
    std::map<FilterKey, std::size_t> filterIds;

    auto internFilter = [&](const trace::PidSet &pids, bool hasTid,
                            trace::Tid tid, detail::CpuMask mask) {
        std::vector<Pid> sorted(pids.begin(), pids.end());
        std::sort(sorted.begin(), sorted.end());
        FilterKey key{std::move(sorted), hasTid, tid, mask};
        auto [it, inserted] =
            filterIds.emplace(std::move(key), plan.filters_.size());
        if (inserted) {
            Filter filter;
            filter.spec.pids = pids;
            filter.spec.hasTid = hasTid;
            filter.spec.tid = tid;
            filter.spec.cpuMask = mask;
            plan.filters_.push_back(std::move(filter));
            plan.explain_.passes.push_back(
                QueryPlanPass{describeFilter(
                                  plan.filters_.back().spec),
                              {}, 0, false, false, false});
        }
        return it->second;
    };

    for (std::size_t qi = 0; qi < queries.size(); ++qi) {
        const Query &query = queries[qi];
        QueryResult result;
        result.query = query;
        if (result.query.label.empty())
            result.query.label = querySpecString(query);

        std::vector<detail::QueryRowSpec> specs =
            detail::expandQueryRows(bundle, query);
        result.rows.reserve(specs.size());
        for (const detail::QueryRowSpec &spec : specs) {
            QueryRow row;
            row.key = spec.key;
            row.t0 = spec.t0;
            row.t1 = spec.t1;
            row.pid = spec.pidLabel;
            row.tid = spec.tidLabel;
            result.rows.push_back(std::move(row));
        }

        auto addTask = [&](std::size_t firstRow, std::size_t rowCount,
                           const detail::QueryRowSpec &spec) {
            Task task;
            task.queryIdx = qi;
            task.firstRow = firstRow;
            task.rowCount = rowCount;
            task.metric = query.metric;
            task.spec = spec;
            // GPU rows read the index's shared packet columns; the
            // interned filter only records sharing for --explain (no
            // column needs). The cswitch metrics intern the exact
            // event filter their sweep would use.
            bool gpu = query.metric == QueryMetric::GpuOccupancy;
            task.filterIdx = internFilter(
                spec.pids, !gpu && spec.hasTid,
                !gpu && spec.hasTid ? spec.tid : 0,
                gpu ? detail::kAllCpus : query.filter.cpuMask);
            Filter &filter = plan.filters_[task.filterIdx];
            QueryPlanPass &pass =
                plan.explain_.passes[task.filterIdx];
            switch (query.metric) {
              case QueryMetric::Tlp:
              case QueryMetric::BusyFraction:
                filter.needTimeline = true;
                break;
              case QueryMetric::ContextSwitchRate:
                filter.needDispatches = true;
                break;
              case QueryMetric::DurationHistogram:
                filter.needBursts = true;
                break;
              case QueryMetric::WaitFraction:
              case QueryMetric::ReadyLatency:
              case QueryMetric::TopBlocked:
                filter.needWaits = true;
                break;
              case QueryMetric::GpuOccupancy:
                break;
            }
            const char *metricName = queryMetricName(query.metric);
            if (std::find(pass.metrics.begin(), pass.metrics.end(),
                          metricName) == pass.metrics.end())
                pass.metrics.push_back(metricName);
            pass.rows += rowCount;
            plan.tasks_.push_back(std::move(task));
        };

        if (query.groupBy == QueryGroupBy::GpuEngine &&
            !specs.empty()) {
            // The five engine rows share one packet fold.
            addTask(0, specs.size(), specs[0]);
        } else {
            for (std::size_t ri = 0; ri < specs.size(); ++ri)
                addTask(ri, 1, specs[ri]);
        }

        plan.explain_.rows += result.rows.size();
        plan.skeleton_.push_back(std::move(result));
    }

    plan.explain_.queries = queries.size();
    plan.explain_.distinctFilters = plan.filters_.size();
    for (std::size_t fi = 0; fi < plan.filters_.size(); ++fi) {
        const Filter &filter = plan.filters_[fi];
        QueryPlanPass &pass = plan.explain_.passes[fi];
        pass.buildsTimeline = filter.needTimeline;
        pass.buildsDispatches = filter.needDispatches;
        pass.buildsBursts = filter.needBursts;
        pass.buildsWaits = filter.needWaits;
        if (filter.needTimeline || filter.needDispatches ||
            filter.needBursts || filter.needWaits)
            ++plan.explain_.columnPasses;
    }
    return plan;
}

std::vector<QueryResult>
QueryPlan::run(unsigned threads) const
{
    obs::Span span("query.execute", obs::SpanKind::Plan,
                   tasks_.size());
    const trace::TraceBundle &bundle = index_->bundle();
    unsigned jobs = sim::resolveJobs(threads);

    // Phase A: one fused cswitch pass per distinct filter that needs
    // columns. The columns are plan-local (not interned in the index)
    // so concurrent builds never contend on the index mutex.
    struct FilterColumns
    {
        detail::ConcurrencyTimeline timeline;
        std::vector<SimTime> dispatches;
        detail::BurstColumns bursts;
        detail::WaitColumns waits;
    };
    std::vector<FilterColumns> columns(filters_.size());
    sim::parallelFor(jobs, filters_.size(), [&](std::size_t fi) {
        const Filter &filter = filters_[fi];
        if (!filter.needTimeline && !filter.needDispatches &&
            !filter.needBursts && !filter.needWaits)
            return;
        obs::Span buildSpan("query.build.columns",
                            obs::SpanKind::Index,
                            bundle.cswitches.size());
        detail::buildConcurrencyTimeline(
            bundle, filter.spec, columns[fi].timeline,
            filter.needDispatches ? &columns[fi].dispatches : nullptr,
            filter.needBursts ? &columns[fi].bursts : nullptr,
            filter.needWaits ? &columns[fi].waits : nullptr);
    });

    // Once per trace, not once per query: fold every pass's count
    // through the index's deduplicated warning, in filter order so
    // the emitted count is deterministic.
    for (const FilterColumns &cols : columns)
        index_->warnOutOfRangeOnce(cols.timeline.outOfRangeCpuEvents,
                                   cols.timeline.cutoff);

    // Phase B: evaluate every task against the shared columns. Each
    // task writes only its own rows; errors are parked per task and
    // the lowest-index one rethrown, so failures are the ones the
    // serial reference hits first, at any thread count.
    std::vector<QueryResult> results = skeleton_;
    std::vector<std::exception_ptr> errors(tasks_.size());

    auto evalTask = [&](std::size_t ti) {
        const Task &task = tasks_[ti];
        obs::Span rowSpan("query.row", obs::SpanKind::Query, ti);
        QueryResult &result = results[task.queryIdx];
        const detail::QueryRowSpec &spec = task.spec;
        switch (task.metric) {
          case QueryMetric::Tlp:
          case QueryMetric::BusyFraction: {
            if (bundle.numLogicalCpus == 0)
                deskpar::fatal(
                    "computeConcurrency: unknown CPU count");
            if (spec.t1 <= spec.t0)
                deskpar::fatal("computeConcurrency: empty window");
            const FilterColumns &cols = columns[task.filterIdx];
            ConcurrencyProfile profile;
            if (cols.timeline.usable) {
                profile = detail::queryConcurrencyTimeline(
                    cols.timeline, spec.t0, spec.t1);
            } else {
                // Poisoned timeline (disordered stream): the direct
                // sweep, panics and all, warning already deduped.
                profile = detail::sweepConcurrency(
                    bundle, filters_[task.filterIdx].spec, spec.t0,
                    spec.t1, bundle.numLogicalCpus,
                    /*emit_warning=*/false);
            }
            result.rows[task.firstRow].value =
                detail::metricFromProfile(task.metric, profile);
            break;
          }
          case QueryMetric::GpuOccupancy: {
            GpuUtilization util =
                index_->gpuUtil(spec.pids, spec.t0, spec.t1);
            for (std::size_t k = 0; k < task.rowCount; ++k) {
                // Engine-group rows are emitted in engine order, so
                // row k of the task reads engine k.
                int engine = task.rowCount > 1
                                 ? static_cast<int>(k)
                                 : spec.engine;
                result.rows[task.firstRow + k].value =
                    detail::engineOccupancyPercent(util, engine);
            }
            break;
          }
          case QueryMetric::ContextSwitchRate: {
            const std::vector<SimTime> &dispatches =
                columns[task.filterIdx].dispatches;
            auto lo = std::lower_bound(dispatches.begin(),
                                       dispatches.end(), spec.t0);
            auto hi = std::lower_bound(dispatches.begin(),
                                       dispatches.end(), spec.t1);
            result.rows[task.firstRow].value =
                detail::contextSwitchRate(
                    static_cast<std::uint64_t>(hi - lo),
                    spec.t1 - spec.t0);
            break;
          }
          case QueryMetric::DurationHistogram: {
            const detail::BurstColumns &bc =
                columns[task.filterIdx].bursts;
            QueryRow &row = result.rows[task.firstRow];
            row.histogram.assign(kDurationHistogramBuckets, 0);
            // Bursts intersecting the window begin before t1 and the
            // running-max end column bounds how far back candidates
            // reach — the GPU packet candidate-range trick.
            std::size_t last = static_cast<std::size_t>(
                std::lower_bound(
                    bc.bursts.begin(), bc.bursts.end(), spec.t1,
                    [](const Interval &iv, SimTime t) {
                        return iv.begin < t;
                    }) -
                bc.bursts.begin());
            std::size_t first = static_cast<std::size_t>(
                std::upper_bound(
                    bc.maxEnd.begin(),
                    bc.maxEnd.begin() +
                        static_cast<std::ptrdiff_t>(last),
                    spec.t0) -
                bc.maxEnd.begin());
            std::uint64_t count = 0;
            for (std::size_t i = first; i < last; ++i) {
                Interval iv =
                    bc.bursts[i].clampTo(spec.t0, spec.t1);
                if (iv.empty())
                    continue;
                ++count;
                ++row.histogram[detail::durationHistogramBucket(
                    iv.length())];
            }
            row.value = static_cast<double>(count);
            break;
          }
          case QueryMetric::WaitFraction:
          case QueryMetric::ReadyLatency:
          case QueryMetric::TopBlocked: {
            const detail::WaitColumns &wc =
                columns[task.filterIdx].waits;
            detail::WaitFold fold;
            // Dispatch latency: switch-ins with end (= dispatch
            // time) in [t0, t1) form one contiguous range of the
            // end-sorted column.
            auto lo = std::lower_bound(wc.end.begin(), wc.end.end(),
                                       spec.t0);
            auto hi = std::lower_bound(wc.end.begin(), wc.end.end(),
                                       spec.t1);
            for (auto it = lo; it != hi; ++it) {
                auto i = static_cast<std::size_t>(
                    it - wc.end.begin());
                ++fold.dispatches;
                fold.latencyNs += wc.end[i] - wc.begin[i];
            }
            // Window overlap: candidates end past t0; the
            // suffix-minimum begin column bounds how far the scan
            // must run before nothing can reach back to t1.
            auto i0 = static_cast<std::size_t>(
                std::upper_bound(wc.end.begin(), wc.end.end(),
                                 spec.t0) -
                wc.end.begin());
            for (std::size_t i = i0; i < wc.end.size(); ++i) {
                if (wc.minBegin[i] >= spec.t1)
                    break;
                if (wc.begin[i] >= spec.t1)
                    continue;
                SimTime wlo = std::max(wc.begin[i], spec.t0);
                SimTime whi = std::min(wc.end[i], spec.t1);
                fold.overlapNs += whi - wlo;
            }
            result.rows[task.firstRow].value =
                detail::waitMetricValue(task.metric, fold,
                                        spec.t1 - spec.t0);
            break;
          }
        }
    };

    sim::parallelFor(jobs, tasks_.size(), [&](std::size_t ti) {
        try {
            evalTask(ti);
        } catch (...) {
            errors[ti] = std::current_exception();
        }
    });
    for (const std::exception_ptr &error : errors) {
        if (error)
            std::rethrow_exception(error);
    }
    return results;
}

} // namespace deskpar::analysis

/**
 * @file
 * The one front door to trace analysis: a Session owns (or borrows)
 * one TraceBundle plus its lazily-built TraceIndex and answers every
 * metric query the toolkit knows.
 *
 * Before this facade existed the API surface was four analyzeApp
 * overloads plus seven free functions (computeConcurrency,
 * computeGpuUtil, computeFrameStats, computeResponsiveness,
 * estimatePower, *Series), each of which silently rebuilt a fresh
 * TraceIndex when handed a bare bundle — so a caller computing three
 * metrics paid three full cswitch sweeps. A Session builds the index
 * once, on first query, and every subsequent query of any metric
 * reuses the cached columns. The old free functions survive as thin
 * shims over a throwaway Session (see their @deprecated notes) so
 * existing callers and the differential tests keep compiling.
 *
 * Lifetime: the borrowing constructor aliases the caller's bundle,
 * which must outlive the Session (the same contract TraceIndex had);
 * the owning constructor moves the bundle in, which is what pipeline
 * code that ingests-then-analyzes wants. Sessions are immovable —
 * the index holds a reference into the bundle storage.
 *
 * Thread safety: same as TraceIndex — concurrent queries are fine,
 * column builds serialize internally.
 */

#ifndef DESKPAR_ANALYSIS_SESSION_HH
#define DESKPAR_ANALYSIS_SESSION_HH

#include <memory>
#include <mutex>
#include <string>

#include "analysis/analyzer.hh"
#include "analysis/blocking.hh"
#include "analysis/power.hh"
#include "analysis/query_plan.hh"
#include "analysis/responsiveness.hh"
#include "analysis/timeseries.hh"
#include "analysis/trace_index.hh"

namespace deskpar::analysis {

class Session
{
  public:
    /** Borrow @p bundle; it must outlive the Session. */
    explicit Session(const TraceBundle &bundle);

    /** Take ownership of @p bundle. */
    explicit Session(TraceBundle &&bundle);

    ~Session();

    Session(const Session &) = delete;
    Session &operator=(const Session &) = delete;

    /** The analyzed bundle. */
    const TraceBundle &bundle() const { return *bundle_; }

    /** The shared index (built on first use). */
    const TraceIndex &index() const;

    /**
     * Install a pre-built index — the warm-reopen path of the index
     * cache (analysis/index_cache.hh), which restores columns from
     * disk and hands the Session an index that borrows this
     * Session's bundle. Fatal if the Session already built its own
     * index. Metrics needing the raw cswitch stream (plan()/query()/
     * bottlenecks()) refuse cache-restored Sessions.
     */
    void adoptIndex(std::unique_ptr<TraceIndex> index) const;

    /**
     * Pids of the application whose process names start with
     * @p prefix; an empty prefix selects every non-idle application
     * process. May be empty (no match) — queries over an empty set
     * mean "system-wide", so check when a specific app was asked for.
     */
    PidSet pids(const std::string &prefix) const;

    /** Fused per-app metrics (concurrency + GPU + frames). */
    AppMetrics app(const PidSet &pids) const;

    /** As above; fatals when @p prefix matches no process. */
    AppMetrics app(const std::string &prefix) const;

    /** Windowed concurrency histogram (Equation 1 inputs). */
    ConcurrencyProfile concurrency(const PidSet &pids, sim::SimTime t0,
                                   sim::SimTime t1,
                                   unsigned num_cpus = 0) const;

    /** Whole-bundle window. */
    ConcurrencyProfile concurrency(const PidSet &pids) const;

    /** Windowed GPU utilization. */
    GpuUtilization gpuUtil(const PidSet &pids, sim::SimTime t0,
                           sim::SimTime t1) const;

    /** Whole-bundle window. */
    GpuUtilization gpuUtil(const PidSet &pids) const;

    /** Frame statistics. */
    FrameStats frameStats(const PidSet &pids) const;

    /** Input-to-dispatch latency. */
    Responsiveness responsiveness(const PidSet &pids) const;

    /** Machine-level power estimate. */
    PowerEstimate power(const sim::CpuSpec &cpu,
                        const sim::GpuSpec &gpu) const;

    /** Per-window TLP curve. */
    TimeSeries tlpSeries(const PidSet &pids,
                         sim::SimDuration window) const;

    /** Per-window average concurrency (Figures 5-7). */
    TimeSeries concurrencySeries(const PidSet &pids,
                                 sim::SimDuration window) const;

    /** Per-window GPU utilization percent. */
    TimeSeries gpuUtilSeries(const PidSet &pids,
                             sim::SimDuration window) const;

    /** Per-window presented FPS. */
    TimeSeries frameRateSeries(const PidSet &pids,
                               sim::SimDuration window) const;

    /**
     * Compile a query batch into a fused plan (query_plan.hh): one
     * cswitch pass per distinct filter instead of one per row. The
     * plan borrows the Session's index and can be inspected
     * (explain()) and run repeatedly.
     */
    QueryPlan plan(const std::vector<Query> &queries) const;

    /**
     * Compile and run a query batch; results are bit-identical to
     * legacy::runQueries at any thread count (@p threads 0 means
     * DESKPAR_JOBS / hardware concurrency).
     */
    std::vector<QueryResult> query(const std::vector<Query> &queries,
                                   unsigned threads = 0) const;

    /**
     * Wakeup-chain serialization-bottleneck report (blocking.hh):
     * ready-queue waits, wakeup-edge culprits, and the critical
     * path, bit-identical to blocking::legacy::analyze at any
     * thread count.
     */
    blocking::BlockingReport bottlenecks(const PidSet &pids,
                                         unsigned threads = 0) const;

  private:
    /** Set iff constructed by move (bundle_ points into it). */
    std::unique_ptr<TraceBundle> owned_;
    const TraceBundle *bundle_;

    mutable std::once_flag indexOnce_;
    mutable std::unique_ptr<TraceIndex> index_;
};

} // namespace deskpar::analysis

#endif // DESKPAR_ANALYSIS_SESSION_HH

#include "analysis/session_cache.hh"

#include <chrono>
#include <exception>
#include <utility>
#include <vector>

#include "obs/obs.hh"
#include "sim/logging.hh"
#include "trace/csv.hh"
#include "trace/etl.hh"
#include "trace/etlc.hh"
#include "trace/io.hh"

namespace deskpar::analysis {

namespace {

/**
 * Flat allowance for the index columns the bundle estimate cannot
 * see. The columns are a constant-factor reshape of the cswitch
 * stream, which dominates memoryBytes() for any trace large enough
 * to matter for eviction, so a small fixed pad keeps the accounting
 * honest without a second estimator.
 */
constexpr std::uint64_t kIndexAllowanceBytes = 256u << 10;

bool
hasSuffix(const std::string &path, const char *suffix)
{
    std::size_t n = std::char_traits<char>::length(suffix);
    return path.size() > n &&
           path.compare(path.size() - n, n, suffix) == 0;
}

std::string
slotKey(const std::string &path, trace::ParseMode mode)
{
    // \x1f cannot appear in the mode tag, so keys never collide
    // across (path, mode) pairs even for adversarial paths.
    return path + '\x1f' +
           (mode == trace::ParseMode::Lenient ? 'L' : 'S');
}

} // namespace

struct SessionCache::Slot
{
    enum class State { Loading, Ready, Failed };

    std::mutex mutex;
    std::condition_variable cv;
    State state = State::Loading;

    TraceIdentity identity;
    std::shared_ptr<const Session> session;
    std::shared_ptr<const trace::IngestReport> report;
    trace::IngestStats ingest;
    /** Charged against the cache budget while resident. */
    std::uint64_t bytes = 0;
    /** LRU stamp (cache clock_); only meaningful while resident. */
    std::uint64_t lastUse = 0;
    /** Still accounted in residentBytes_ / eligible for eviction. */
    bool resident = false;
    /** Set with state == Failed; rethrown to every waiter. */
    std::exception_ptr error;
};

SessionCache::SessionCache(const SessionCacheOptions &options)
    : options_(options)
{}

SessionCache::~SessionCache() = default;

void
SessionCache::fill(Slot &slot, const std::string &path,
                   trace::ParseMode mode)
{
    obs::Span span("serve.session.ingest", obs::SpanKind::Ingest);

    std::string error;
    if (!probeTraceIdentity(path, slot.identity, error))
        fatal(error);

    trace::ParseOptions popts;
    popts.mode = mode;
    popts.source = path;

    auto report = std::make_shared<trace::IngestReport>();
    trace::TraceBundle bundle;
    auto start = std::chrono::steady_clock::now();
    {
        trace::io::MappedFile file =
            trace::io::MappedFile::openOrThrow(path, "SessionCache");
        slot.ingest.bytes = file.span().size();
        if (hasSuffix(path, ".csv")) {
            *report =
                trace::decodeCpuUsageCsv(file.span(), bundle, popts);
        } else if (trace::isEtlcData(file.span())) {
            bundle = trace::decodeEtlc(file.span(), popts, *report);
        } else {
            bundle = trace::decodeEtl(file.span(), popts, *report);
        }
    }
    if (mode == trace::ParseMode::Strict && !report->ok()) {
        if (!report->errors.empty())
            throw trace::TraceParseError(report->errors.front());
        trace::ParseError generic;
        generic.source = path;
        generic.section = "ingest";
        generic.reason = report->summary();
        throw trace::TraceParseError(std::move(generic));
    }

    auto session = std::make_shared<Session>(std::move(bundle));
    // Materialize the shared column state before the Session is
    // published: every later reader then takes the lock-free fast
    // path, and the build cost lands on the cold request that caused
    // the ingest, where the latency is expected.
    session->index().warm(PidSet{});
    slot.ingest.seconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - start)
            .count();

    slot.bytes =
        session->bundle().memoryBytes() + kIndexAllowanceBytes;
    slot.session = std::move(session);
    slot.report = std::move(report);
}

SessionCache::Lease
SessionCache::acquire(const std::string &path, trace::ParseMode mode)
{
    std::string key = slotKey(path, mode);
    while (true) {
        std::shared_ptr<Slot> slot;
        bool filler = false;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            auto it = slots_.find(key);
            if (it != slots_.end()) {
                slot = it->second;
            } else {
                slot = std::make_shared<Slot>();
                slots_.emplace(key, slot);
                ++counters_.misses;
                filler = true;
            }
        }

        if (filler) {
            try {
                fill(*slot, path, mode);
            } catch (...) {
                {
                    std::lock_guard<std::mutex> lock(mutex_);
                    auto it = slots_.find(key);
                    if (it != slots_.end() && it->second == slot)
                        slots_.erase(it);
                }
                std::lock_guard<std::mutex> slock(slot->mutex);
                slot->state = Slot::State::Failed;
                slot->error = std::current_exception();
                slot->cv.notify_all();
                throw;
            }
            {
                std::lock_guard<std::mutex> lock(mutex_);
                ++counters_.ingests;
                slot->resident = true;
                slot->lastUse = ++clock_;
                residentBytes_ += slot->bytes;
                enforceBudgetLocked(slot.get());
            }
            std::lock_guard<std::mutex> slock(slot->mutex);
            slot->state = Slot::State::Ready;
            slot->cv.notify_all();
            return Lease{slot->session, slot->report, slot->ingest,
                         /*warm=*/false};
        }

        {
            std::unique_lock<std::mutex> slock(slot->mutex);
            slot->cv.wait(slock, [&] {
                return slot->state != Slot::State::Loading;
            });
            if (slot->state == Slot::State::Failed)
                std::rethrow_exception(slot->error);
        }

        // Ready hit: serve only while the on-disk file still matches
        // the identity we ingested. A failed probe (file deleted) or
        // a mismatch drops the entry and retries cold.
        TraceIdentity current;
        std::string error;
        bool fresh = probeTraceIdentity(path, current, error) &&
                     current == slot->identity;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            auto it = slots_.find(key);
            bool mapped = it != slots_.end() && it->second == slot;
            if (fresh) {
                if (mapped)
                    slot->lastUse = ++clock_;
                ++counters_.hits;
                return Lease{slot->session, slot->report,
                             slot->ingest, /*warm=*/true};
            }
            if (mapped)
                dropLocked(key, *slot, counters_.invalidations);
        }
        // Stale: loop around and ingest the new bytes.
    }
}

void
SessionCache::invalidate(const std::string &path)
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (trace::ParseMode mode :
         {trace::ParseMode::Strict, trace::ParseMode::Lenient}) {
        auto it = slots_.find(slotKey(path, mode));
        if (it != slots_.end()) {
            auto slot = it->second;
            dropLocked(it->first, *slot, counters_.invalidations);
        }
    }
}

SessionCacheStats
SessionCache::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    SessionCacheStats stats = counters_;
    stats.residentBytes = residentBytes_;
    stats.entries = slots_.size();
    return stats;
}

void
SessionCache::dropLocked(const std::string &key, Slot &slot,
                         std::uint64_t &counter)
{
    if (slot.resident) {
        residentBytes_ -= slot.bytes;
        slot.resident = false;
    }
    ++counter;
    slots_.erase(key);
}

void
SessionCache::enforceBudgetLocked(const Slot *keep)
{
    while (residentBytes_ > options_.maxBytes) {
        const std::string *victimKey = nullptr;
        Slot *victim = nullptr;
        for (auto &entry : slots_) {
            Slot *slot = entry.second.get();
            // Loading slots are not yet resident; the just-inserted
            // entry is exempt so a single over-budget trace can
            // still be served (it becomes the next victim).
            if (!slot->resident || slot == keep)
                continue;
            if (!victim || slot->lastUse < victim->lastUse) {
                victimKey = &entry.first;
                victim = slot;
            }
        }
        if (!victim)
            break;
        // dropLocked erases the map node *victimKey points into, so
        // copy the key first. In-flight leases keep the Session
        // alive through their shared_ptr; only the cache lets go.
        std::string key = *victimKey;
        auto hold = slots_[key];
        dropLocked(key, *victim, counters_.evictions);
    }
}

} // namespace deskpar::analysis

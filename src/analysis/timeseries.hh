/**
 * @file
 * Windowed time series over a trace: instantaneous TLP, concurrency,
 * GPU utilization and frame rate. These back the paper's Figures 5-7
 * (TLP/GPU over time under core scaling) and Figure 13 (instantaneous
 * VR frame rate per headset).
 */

#ifndef DESKPAR_ANALYSIS_TIMESERIES_HH
#define DESKPAR_ANALYSIS_TIMESERIES_HH

#include <vector>

#include "trace/filter.hh"
#include "trace/session.hh"

namespace deskpar::analysis {

class TraceIndex;

using trace::PidSet;
using trace::TraceBundle;

/** One sample of a time series; @p t is the window's start time. */
struct TimePoint
{
    sim::SimTime t = 0;
    double value = 0.0;
};

/** A named series, ready for plotting or table dumps. */
struct TimeSeries
{
    std::string name;
    sim::SimDuration window = 0;
    std::vector<TimePoint> points;

    double maxValue() const;
    double meanValue() const;
};

/**
 * Per-window TLP (Eq. 1 within each window; 0 for fully idle
 * windows). Windows of length @p window tile [bundle.startTime,
 * bundle.stopTime).
 *
 * The bundle overloads build one TraceIndex internally; callers
 * producing several series from one bundle (e.g. the timeline
 * figures) should build the index themselves and use the index
 * overloads so the windowed queries share columns.
 *
 * @deprecated Thin shim over a throwaway analysis::Session; callers
 * issuing more than one query per bundle should hold a Session
 * (analysis/session.hh).
 */
TimeSeries tlpSeries(const TraceBundle &bundle, const PidSet &pids,
                     sim::SimDuration window);

/** Index-backed variant: every window is two binary searches. */
TimeSeries tlpSeries(const TraceIndex &index, const PidSet &pids,
                     sim::SimDuration window);

/**
 * Per-window average concurrency including idle time — the
 * "instantaneous TLP" curve of Figures 5-7.
 */
TimeSeries concurrencySeries(const TraceBundle &bundle,
                             const PidSet &pids,
                             sim::SimDuration window);

/** Index-backed variant. */
TimeSeries concurrencySeries(const TraceIndex &index,
                             const PidSet &pids,
                             sim::SimDuration window);

/** Per-window GPU utilization percent (aggregate, capped at 100). */
TimeSeries gpuUtilSeries(const TraceBundle &bundle, const PidSet &pids,
                         sim::SimDuration window);

/** Index-backed variant. */
TimeSeries gpuUtilSeries(const TraceIndex &index, const PidSet &pids,
                         sim::SimDuration window);

/**
 * Per-window presented frames per second (synthesized frames
 * included: that's what the display shows).
 */
TimeSeries frameRateSeries(const TraceBundle &bundle,
                           const PidSet &pids,
                           sim::SimDuration window);

/** Index-backed variant (already linear; provided for symmetry). */
TimeSeries frameRateSeries(const TraceIndex &index, const PidSet &pids,
                           sim::SimDuration window);

} // namespace deskpar::analysis

#endif // DESKPAR_ANALYSIS_TIMESERIES_HH

/**
 * @file
 * The fusing query planner: compile a *batch* of Query values into an
 * execution plan that walks the cswitch stream once per distinct
 * filter, then answers every row of every query from the resulting
 * columns.
 *
 * A naive batch evaluation (legacy::runQueries) pays one full event
 * sweep per row — a 16-query TLP/busy/csrate/dhist batch over the
 * same application re-reads the same cswitch vector dozens of times.
 * The planner deduplicates the per-row event filters (pid set, tid,
 * cpu mask) and builds, per distinct filter, every column any of its
 * rows needs — concurrency timeline, dispatch column, burst columns —
 * in ONE fused buildConcurrencyTimeline pass. Row evaluation is then
 * binary searches and checkpoint diffs. GPU rows are answered from
 * the index's shared packet columns and need no pass of their own.
 *
 * Both phases fan out with sim::parallelFor, and the results are
 * bit-identical at any DESKPAR_JOBS:
 *  - every task writes only its own result rows, reading immutable
 *    shared columns, so values never depend on scheduling;
 *  - the floating-point fold of each row is the same operation
 *    sequence the reference (legacy::runQuery) performs, via the
 *    shared detail:: fold helpers and the proven timeline/GPU query
 *    paths;
 *  - errors are captured per task and the lowest-index one is
 *    rethrown after the join, which is exactly the error the serial
 *    reference would hit first.
 *
 * The out-of-range-cpu warning is emitted at most once per trace
 * (TraceIndex::warnOutOfRangeOnce), not once per query in the batch.
 */

#ifndef DESKPAR_ANALYSIS_QUERY_PLAN_HH
#define DESKPAR_ANALYSIS_QUERY_PLAN_HH

#include <cstddef>
#include <string>
#include <vector>

#include "analysis/concurrency_timeline.hh"
#include "analysis/query.hh"

namespace deskpar::analysis {

class TraceIndex;

/** Explain entry: one distinct filter (= at most one column pass). */
struct QueryPlanPass
{
    /** Human description of the filter ("pids={5,6} cpus=0-3"). */
    std::string filter;
    /** Metric names answered from this filter, first-use order. */
    std::vector<std::string> metrics;
    /** Result rows answered from this filter. */
    std::size_t rows = 0;
    /** Columns the fused pass builds (all false: no pass needed). */
    bool buildsTimeline = false;
    bool buildsDispatches = false;
    bool buildsBursts = false;
    bool buildsWaits = false;
};

/** What `deskpar query --explain` prints. */
struct QueryPlanExplain
{
    std::size_t queries = 0;
    std::size_t rows = 0;
    std::size_t distinctFilters = 0;
    /** Filters whose pass actually sweeps the cswitch stream. */
    std::size_t columnPasses = 0;
    std::vector<QueryPlanPass> passes;

    /** Render as the multi-line --explain text. */
    std::string str() const;
};

/**
 * A compiled batch. Compilation resolves name prefixes and expands
 * groups (so it touches the bundle's lazy name index single-threaded)
 * and is cheap — all event work happens in run(). A plan can be run
 * any number of times; @p threads 0 means resolveJobs (DESKPAR_JOBS).
 */
class QueryPlan
{
  public:
    /**
     * Compile @p queries against @p index's bundle. The index must
     * outlive the plan. Fatal on invalid queries (unmatched prefix,
     * empty window, invalid metric/group combination).
     */
    static QueryPlan compile(const TraceIndex &index,
                             const std::vector<Query> &queries);

    /** Execute: one QueryResult per compiled query, in order. */
    std::vector<QueryResult> run(unsigned threads = 0) const;

    const QueryPlanExplain &explain() const { return explain_; }

  private:
    QueryPlan() = default;

    /** One distinct row filter and the columns its rows need. */
    struct Filter
    {
        detail::TimelineSpec spec;
        bool needTimeline = false;
        bool needDispatches = false;
        bool needBursts = false;
        bool needWaits = false;
    };

    /**
     * One evaluation unit: fills rows [firstRow, firstRow+rowCount)
     * of results[queryIdx]. rowCount > 1 only for a GpuEngine group,
     * whose five rows share one packet fold (row k = engine k).
     */
    struct Task
    {
        std::size_t queryIdx = 0;
        std::size_t filterIdx = 0;
        std::size_t firstRow = 0;
        std::size_t rowCount = 1;
        QueryMetric metric = QueryMetric::Tlp;
        detail::QueryRowSpec spec;
    };

    const TraceIndex *index_ = nullptr;
    /** Per-query results with rows pre-shaped (values unset). */
    std::vector<QueryResult> skeleton_;
    std::vector<Filter> filters_;
    std::vector<Task> tasks_;
    QueryPlanExplain explain_;
};

} // namespace deskpar::analysis

#endif // DESKPAR_ANALYSIS_QUERY_PLAN_HH

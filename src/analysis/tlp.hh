/**
 * @file
 * Thread-Level Parallelism per the paper's Equation 1:
 *
 *     TLP = ( sum_{i=1..n} c_i * i ) / ( 1 - c_0 )
 *
 * where c_i is the fraction of the observation window during which
 * exactly i logical CPUs were simultaneously running threads of the
 * application under study, and n is the number of logical CPUs.
 * c_0 (idle time) is factored out, so waiting for user input does not
 * dilute the metric.
 */

#ifndef DESKPAR_ANALYSIS_TLP_HH
#define DESKPAR_ANALYSIS_TLP_HH

#include <cstdint>
#include <vector>

#include "trace/diagnostic.hh"
#include "trace/filter.hh"
#include "trace/session.hh"

namespace deskpar::analysis {

using trace::PidSet;
using trace::TraceBundle;

/**
 * The concurrency histogram of one trace window plus derived metrics.
 */
struct ConcurrencyProfile
{
    /**
     * c[i]: fraction of the window with exactly i target threads
     * running; size is numCpus + 1 and the entries sum to 1.
     */
    std::vector<double> c;

    /** Logical CPU count n (the TLP ceiling). */
    unsigned numCpus = 0;

    /** Window length the fractions refer to. */
    sim::SimDuration window = 0;

    /**
     * Context-switch events whose cpu id is >= numCpus. Such events
     * contradict the trace header (a corrupt stream or a wrong CPU
     * count); they are excluded from the histogram and counted here
     * instead of silently folding into the top concurrency level.
     */
    std::uint64_t outOfRangeCpuEvents = 0;

    /** TLP per Equation 1; 0 when the window is fully idle. */
    double tlp() const;

    /** Highest concurrency level observed (max instantaneous TLP). */
    unsigned maxConcurrency() const;

    /** c_0: fraction of the window with no target thread running. */
    double
    idleFraction() const
    {
        return c.empty() ? 1.0 : c[0];
    }

    /** Average concurrency including idle time (TLP * (1 - c0)). */
    double utilization() const;
};

/**
 * Compute the concurrency profile of @p bundle over
 * [@p t0, @p t1) for the processes in @p pids.
 *
 * An empty @p pids means "every non-idle process" — the system-wide
 * TLP of the 2000/2010 studies. @p num_cpus caps the histogram; pass
 * bundle.numLogicalCpus (the default 0 means exactly that).
 *
 * A thin wrapper over TraceIndex (trace_index.hh): callers issuing
 * many windowed queries against one bundle should build the index
 * once and query it instead of paying a per-call sweep.
 *
 * @deprecated Thin shim over a throwaway analysis::Session; callers
 * issuing more than one query per bundle should hold a Session
 * (analysis/session.hh).
 */
ConcurrencyProfile
computeConcurrency(const TraceBundle &bundle, const PidSet &pids,
                   sim::SimTime t0, sim::SimTime t1,
                   unsigned num_cpus = 0);

/** Convenience: whole-bundle window. */
ConcurrencyProfile
computeConcurrency(const TraceBundle &bundle, const PidSet &pids);

namespace legacy {

/**
 * The direct single-sweep implementation: the reference the
 * index-backed path is proven bit-identical against (and the
 * fallback for traces the index cannot represent). Same contract as
 * analysis::computeConcurrency.
 */
ConcurrencyProfile
computeConcurrency(const TraceBundle &bundle, const PidSet &pids,
                   sim::SimTime t0, sim::SimTime t1,
                   unsigned num_cpus = 0);

/** Convenience: whole-bundle window. */
ConcurrencyProfile
computeConcurrency(const TraceBundle &bundle, const PidSet &pids);

} // namespace legacy

namespace detail {

/**
 * Build (without emitting) the warning-severity Diagnostic for
 * @p count context switches on cpu ids >= @p num_cpus. Callers that
 * dedupe the warning per trace pair it with
 * trace::emitDiagnosticOnce.
 */
trace::Diagnostic outOfRangeCpusDiagnostic(std::uint64_t count,
                                           unsigned num_cpus);

/**
 * Emit the out-of-range-cpu Diagnostic through trace::emitDiagnostic
 * (shared by the legacy sweep and the trace-index build; goes to
 * stderr unless the caller installed a DiagnosticSink).
 */
void warnOutOfRangeCpus(std::uint64_t count, unsigned num_cpus);

} // namespace detail

} // namespace deskpar::analysis

#endif // DESKPAR_ANALYSIS_TLP_HH

#include "analysis/tlp.hh"

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "analysis/concurrency_timeline.hh"
#include "analysis/session.hh"
#include "analysis/trace_index.hh"
#include "sim/logging.hh"
#include "trace/diagnostic.hh"
#include "trace/parse.hh"

namespace deskpar::analysis {

double
ConcurrencyProfile::tlp() const
{
    if (c.empty())
        return 0.0;
    double busy = 1.0 - c[0];
    if (busy <= 0.0)
        return 0.0;
    double weighted = 0.0;
    for (std::size_t i = 1; i < c.size(); ++i)
        weighted += c[i] * static_cast<double>(i);
    return weighted / busy;
}

unsigned
ConcurrencyProfile::maxConcurrency() const
{
    for (std::size_t i = c.size(); i-- > 1;) {
        if (c[i] > 0.0)
            return static_cast<unsigned>(i);
    }
    return 0;
}

double
ConcurrencyProfile::utilization() const
{
    double weighted = 0.0;
    for (std::size_t i = 1; i < c.size(); ++i)
        weighted += c[i] * static_cast<double>(i);
    return weighted;
}

namespace detail {

trace::Diagnostic
outOfRangeCpusDiagnostic(std::uint64_t count, unsigned num_cpus)
{
    trace::ParseError err;
    err.section = "CSwitch";
    err.field = "cpu";
    err.reason = std::to_string(count) +
                 " context switch(es) on cpu ids >= the header's " +
                 std::to_string(num_cpus) +
                 " logical CPUs; excluded from the concurrency "
                 "histogram";
    trace::Diagnostic diag;
    diag.severity = trace::Severity::Warning;
    diag.component = "analysis";
    diag.detail = std::move(err);
    return diag;
}

void
warnOutOfRangeCpus(std::uint64_t count, unsigned num_cpus)
{
    trace::emitDiagnostic(outOfRangeCpusDiagnostic(count, num_cpus));
}

} // namespace detail

namespace legacy {

ConcurrencyProfile
computeConcurrency(const TraceBundle &bundle, const PidSet &pids,
                   sim::SimTime t0, sim::SimTime t1, unsigned num_cpus)
{
    if (num_cpus == 0)
        num_cpus = bundle.numLogicalCpus;
    if (num_cpus == 0)
        deskpar::fatal("computeConcurrency: unknown CPU count");
    if (t1 <= t0)
        deskpar::fatal("computeConcurrency: empty window");

    // The sweep body lives in concurrency_timeline.cc so the query
    // planner can run it for arbitrary filters (tid, cpu mask) and
    // with the out-of-range warning deduped; the default spec below
    // is this function's historical behavior, warning included.
    detail::TimelineSpec spec;
    spec.pids = pids;
    return detail::sweepConcurrency(bundle, spec, t0, t1, num_cpus,
                                    /*emit_warning=*/true);
}

ConcurrencyProfile
computeConcurrency(const TraceBundle &bundle, const PidSet &pids)
{
    return computeConcurrency(bundle, pids, bundle.startTime,
                              bundle.stopTime);
}

} // namespace legacy

ConcurrencyProfile
computeConcurrency(const TraceBundle &bundle, const PidSet &pids,
                   sim::SimTime t0, sim::SimTime t1, unsigned num_cpus)
{
    return Session(bundle).concurrency(pids, t0, t1, num_cpus);
}

ConcurrencyProfile
computeConcurrency(const TraceBundle &bundle, const PidSet &pids)
{
    return computeConcurrency(bundle, pids, bundle.startTime,
                              bundle.stopTime);
}

} // namespace deskpar::analysis

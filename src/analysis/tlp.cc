#include "analysis/tlp.hh"

#include <algorithm>
#include <map>

#include "sim/logging.hh"

namespace deskpar::analysis {

double
ConcurrencyProfile::tlp() const
{
    if (c.empty())
        return 0.0;
    double busy = 1.0 - c[0];
    if (busy <= 0.0)
        return 0.0;
    double weighted = 0.0;
    for (std::size_t i = 1; i < c.size(); ++i)
        weighted += c[i] * static_cast<double>(i);
    return weighted / busy;
}

unsigned
ConcurrencyProfile::maxConcurrency() const
{
    for (std::size_t i = c.size(); i-- > 1;) {
        if (c[i] > 0.0)
            return static_cast<unsigned>(i);
    }
    return 0;
}

double
ConcurrencyProfile::utilization() const
{
    double weighted = 0.0;
    for (std::size_t i = 1; i < c.size(); ++i)
        weighted += c[i] * static_cast<double>(i);
    return weighted;
}

ConcurrencyProfile
computeConcurrency(const TraceBundle &bundle, const PidSet &pids,
                   sim::SimTime t0, sim::SimTime t1, unsigned num_cpus)
{
    using sim::SimTime;

    if (num_cpus == 0)
        num_cpus = bundle.numLogicalCpus;
    if (num_cpus == 0)
        deskpar::fatal("computeConcurrency: unknown CPU count");
    if (t1 <= t0)
        deskpar::fatal("computeConcurrency: empty window");

    auto isTarget = [&pids](trace::Pid pid) {
        if (pid == 0)
            return false;
        return pids.empty() || pids.count(pid) != 0;
    };

    // Sweep the per-CPU run timelines into +1/-1 deltas at the times
    // a target thread starts/stops occupying a CPU.
    std::map<SimTime, int> deltas;
    std::map<trace::CpuId, bool> cpuBusy; // target thread on cpu?

    for (const auto &e : bundle.cswitches) {
        bool &busy = cpuBusy[e.cpu];
        bool now_busy = isTarget(e.newPid);
        if (busy == now_busy)
            continue;
        SimTime ts = std::clamp(e.timestamp, t0, t1);
        deltas[ts] += now_busy ? 1 : -1;
        busy = now_busy;
    }
    // Threads still on a CPU at the window end: close at t1 (the
    // deltas map records the +1; no -1 needed since the sweep ends).

    ConcurrencyProfile profile;
    profile.numCpus = num_cpus;
    profile.window = t1 - t0;
    profile.c.assign(num_cpus + 1, 0.0);

    SimTime prev = t0;
    int level = 0;
    std::vector<sim::SimDuration> timeAt(num_cpus + 1, 0);
    for (const auto &[ts, delta] : deltas) {
        if (ts > prev) {
            auto lvl = static_cast<unsigned>(std::clamp(
                level, 0, static_cast<int>(num_cpus)));
            timeAt[lvl] += ts - prev;
            prev = ts;
        }
        level += delta;
        if (level < 0)
            deskpar::panic("computeConcurrency: negative concurrency");
    }
    if (t1 > prev) {
        auto lvl = static_cast<unsigned>(
            std::clamp(level, 0, static_cast<int>(num_cpus)));
        timeAt[lvl] += t1 - prev;
    }

    double window = static_cast<double>(profile.window);
    for (unsigned i = 0; i <= num_cpus; ++i)
        profile.c[i] = static_cast<double>(timeAt[i]) / window;
    return profile;
}

ConcurrencyProfile
computeConcurrency(const TraceBundle &bundle, const PidSet &pids)
{
    return computeConcurrency(bundle, pids, bundle.startTime,
                              bundle.stopTime);
}

} // namespace deskpar::analysis

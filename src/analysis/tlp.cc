#include "analysis/tlp.hh"

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "analysis/session.hh"
#include "analysis/trace_index.hh"
#include "sim/logging.hh"
#include "trace/diagnostic.hh"
#include "trace/parse.hh"

namespace deskpar::analysis {

double
ConcurrencyProfile::tlp() const
{
    if (c.empty())
        return 0.0;
    double busy = 1.0 - c[0];
    if (busy <= 0.0)
        return 0.0;
    double weighted = 0.0;
    for (std::size_t i = 1; i < c.size(); ++i)
        weighted += c[i] * static_cast<double>(i);
    return weighted / busy;
}

unsigned
ConcurrencyProfile::maxConcurrency() const
{
    for (std::size_t i = c.size(); i-- > 1;) {
        if (c[i] > 0.0)
            return static_cast<unsigned>(i);
    }
    return 0;
}

double
ConcurrencyProfile::utilization() const
{
    double weighted = 0.0;
    for (std::size_t i = 1; i < c.size(); ++i)
        weighted += c[i] * static_cast<double>(i);
    return weighted;
}

namespace detail {

void
warnOutOfRangeCpus(std::uint64_t count, unsigned num_cpus)
{
    trace::ParseError err;
    err.section = "CSwitch";
    err.field = "cpu";
    err.reason = std::to_string(count) +
                 " context switch(es) on cpu ids >= the header's " +
                 std::to_string(num_cpus) +
                 " logical CPUs; excluded from the concurrency "
                 "histogram";
    trace::Diagnostic diag;
    diag.severity = trace::Severity::Warning;
    diag.component = "analysis";
    diag.detail = std::move(err);
    trace::emitDiagnostic(diag);
}

} // namespace detail

namespace legacy {

ConcurrencyProfile
computeConcurrency(const TraceBundle &bundle, const PidSet &pids,
                   sim::SimTime t0, sim::SimTime t1, unsigned num_cpus)
{
    using sim::SimTime;

    if (num_cpus == 0)
        num_cpus = bundle.numLogicalCpus;
    if (num_cpus == 0)
        deskpar::fatal("computeConcurrency: unknown CPU count");
    if (t1 <= t0)
        deskpar::fatal("computeConcurrency: empty window");

    auto isTarget = [&pids](trace::Pid pid) {
        if (pid == 0)
            return false;
        return pids.empty() || pids.count(pid) != 0;
    };

    // Sweep the per-CPU run timelines into +1/-1 deltas at the times
    // a target thread starts/stops occupying a CPU. A flat sorted
    // vector replaces the old std::map: one O(n log n) sort instead
    // of a red-black-tree insert per context switch, and the per-CPU
    // busy flags are a flat array indexed by CpuId.
    std::vector<std::pair<SimTime, int>> deltas;
    deltas.reserve(bundle.cswitches.size());
    std::vector<std::uint8_t> cpuBusy(num_cpus, 0);
    std::uint64_t out_of_range = 0;

    for (const auto &e : bundle.cswitches) {
        if (e.cpu >= cpuBusy.size()) {
            // A cpu id past the header's CPU count contradicts the
            // trace; count it instead of growing the histogram and
            // clamp-folding the phantom CPU into the top level.
            ++out_of_range;
            continue;
        }
        std::uint8_t now_busy = isTarget(e.newPid) ? 1 : 0;
        if (cpuBusy[e.cpu] == now_busy)
            continue;
        SimTime ts = std::clamp(e.timestamp, t0, t1);
        deltas.emplace_back(ts, now_busy ? 1 : -1);
        cpuBusy[e.cpu] = now_busy;
    }
    // Threads still on a CPU at the window end: close at t1 (the
    // delta list records the +1; no -1 needed since the sweep ends).

    // cswitches are chronological, so a stable sort keeps each CPU's
    // +1 ahead of its matching -1 even when clamping collapses both
    // onto a window edge.
    std::stable_sort(deltas.begin(), deltas.end(),
                     [](const auto &a, const auto &b) {
                         return a.first < b.first;
                     });

    ConcurrencyProfile profile;
    profile.numCpus = num_cpus;
    profile.window = t1 - t0;
    profile.c.assign(num_cpus + 1, 0.0);
    profile.outOfRangeCpuEvents = out_of_range;

    SimTime prev = t0;
    int level = 0;
    std::vector<sim::SimDuration> timeAt(num_cpus + 1, 0);
    for (const auto &[ts, delta] : deltas) {
        if (ts > prev) {
            if (level < 0)
                deskpar::panic(
                    "computeConcurrency: negative concurrency");
            auto lvl = static_cast<unsigned>(std::clamp(
                level, 0, static_cast<int>(num_cpus)));
            timeAt[lvl] += ts - prev;
            prev = ts;
        }
        level += delta;
    }
    if (level < 0)
        deskpar::panic("computeConcurrency: negative concurrency");
    if (t1 > prev) {
        auto lvl = static_cast<unsigned>(
            std::clamp(level, 0, static_cast<int>(num_cpus)));
        timeAt[lvl] += t1 - prev;
    }

    if (out_of_range > 0)
        detail::warnOutOfRangeCpus(out_of_range, num_cpus);

    double window = static_cast<double>(profile.window);
    for (unsigned i = 0; i <= num_cpus; ++i)
        profile.c[i] = static_cast<double>(timeAt[i]) / window;
    return profile;
}

ConcurrencyProfile
computeConcurrency(const TraceBundle &bundle, const PidSet &pids)
{
    return computeConcurrency(bundle, pids, bundle.startTime,
                              bundle.stopTime);
}

} // namespace legacy

ConcurrencyProfile
computeConcurrency(const TraceBundle &bundle, const PidSet &pids,
                   sim::SimTime t0, sim::SimTime t1, unsigned num_cpus)
{
    return Session(bundle).concurrency(pids, t0, t1, num_cpus);
}

ConcurrencyProfile
computeConcurrency(const TraceBundle &bundle, const PidSet &pids)
{
    return computeConcurrency(bundle, pids, bundle.startTime,
                              bundle.stopTime);
}

} // namespace deskpar::analysis

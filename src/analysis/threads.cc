#include "analysis/threads.hh"

#include <algorithm>
#include <map>
#include <unordered_map>

namespace deskpar::analysis {

double
ThreadActivity::busyShare(sim::SimDuration window) const
{
    if (window == 0)
        return 0.0;
    return static_cast<double>(busyTime) /
           static_cast<double>(window);
}

std::vector<ThreadActivity>
threadBreakdown(const trace::TraceBundle &bundle,
                const trace::PidSet &pids)
{
    auto isTarget = [&pids](trace::Pid pid) {
        return pid != 0 && (pids.empty() || pids.count(pid) != 0);
    };

    struct Running
    {
        trace::Tid tid = 0;
        trace::Pid pid = 0;
        sim::SimTime since = 0;
        bool busy = false;
    };
    std::map<trace::CpuId, Running> perCpu;
    std::map<std::pair<trace::Pid, trace::Tid>, ThreadActivity> acc;

    auto charge = [&](const Running &running, sim::SimTime until) {
        auto &activity = acc[{running.pid, running.tid}];
        activity.pid = running.pid;
        activity.tid = running.tid;
        activity.busyTime += until - running.since;
    };

    for (const auto &e : bundle.cswitches) {
        Running &running = perCpu[e.cpu];
        if (running.busy)
            charge(running, e.timestamp);
        running.busy = isTarget(e.newPid);
        running.tid = e.newTid;
        running.pid = e.newPid;
        running.since = e.timestamp;
        if (running.busy)
            ++acc[{e.newPid, e.newTid}].dispatches;
    }
    for (auto &[cpu, running] : perCpu) {
        if (running.busy)
            charge(running, bundle.stopTime);
    }

    // Attach names from lifecycle events and the process table.
    std::unordered_map<trace::Tid, std::string> threadNames;
    for (const auto &e : bundle.threadEvents) {
        if (e.created)
            threadNames[e.tid] = e.name;
    }

    std::vector<ThreadActivity> out;
    out.reserve(acc.size());
    for (auto &[key, activity] : acc) {
        auto pname = bundle.processNames.find(activity.pid);
        if (pname != bundle.processNames.end())
            activity.processName = pname->second;
        auto tname = threadNames.find(activity.tid);
        if (tname != threadNames.end())
            activity.threadName = tname->second;
        out.push_back(std::move(activity));
    }
    std::sort(out.begin(), out.end(),
              [](const ThreadActivity &a, const ThreadActivity &b) {
                  return a.busyTime > b.busyTime;
              });
    return out;
}

std::vector<ThreadActivity>
topThreads(const trace::TraceBundle &bundle, const trace::PidSet &pids,
           std::size_t n)
{
    auto all = threadBreakdown(bundle, pids);
    if (all.size() > n)
        all.resize(n);
    return all;
}

} // namespace deskpar::analysis

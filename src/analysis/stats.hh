/**
 * @file
 * Small statistics helpers: Welford running mean/variance and
 * aggregation of repeated-iteration results (the paper reports the
 * average and standard deviation of 3 iterations per application).
 */

#ifndef DESKPAR_ANALYSIS_STATS_HH
#define DESKPAR_ANALYSIS_STATS_HH

#include <cmath>
#include <cstddef>
#include <vector>

namespace deskpar::analysis {

/**
 * Numerically stable running mean / standard deviation.
 */
class RunningStat
{
  public:
    /** Add one sample. */
    void
    add(double x)
    {
        ++n_;
        double delta = x - mean_;
        mean_ += delta / static_cast<double>(n_);
        m2_ += delta * (x - mean_);
        if (n_ == 1 || x < min_)
            min_ = x;
        if (n_ == 1 || x > max_)
            max_ = x;
    }

    std::size_t count() const { return n_; }
    double mean() const { return n_ ? mean_ : 0.0; }
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }

    /** Population standard deviation (the paper's sigma). */
    double
    stddev() const
    {
        if (n_ < 2)
            return 0.0;
        return std::sqrt(m2_ / static_cast<double>(n_));
    }

    /** Sample standard deviation (n-1 denominator). */
    double
    sampleStddev() const
    {
        if (n_ < 2)
            return 0.0;
        return std::sqrt(m2_ / static_cast<double>(n_ - 1));
    }

  private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/** Mean of a vector (0 for empty input). */
double meanOf(const std::vector<double> &values);

/** Population standard deviation of a vector. */
double stddevOf(const std::vector<double> &values);

} // namespace deskpar::analysis

#endif // DESKPAR_ANALYSIS_STATS_HH

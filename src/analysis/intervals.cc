#include "analysis/intervals.hh"

#include <algorithm>

namespace deskpar::analysis {

Interval
Interval::clampTo(SimTime lo, SimTime hi) const
{
    Interval out;
    out.begin = std::max(begin, lo);
    out.end = std::min(end, hi);
    if (out.end < out.begin)
        out.end = out.begin;
    return out;
}

SimDuration
totalLength(const std::vector<Interval> &intervals)
{
    SimDuration total = 0;
    for (const auto &iv : intervals)
        total += iv.length();
    return total;
}

void
mergeIntervalsInPlace(std::vector<Interval> &intervals)
{
    std::erase_if(intervals,
                  [](const Interval &iv) { return iv.empty(); });
    std::sort(intervals.begin(), intervals.end(),
              [](const Interval &a, const Interval &b) {
                  return a.begin < b.begin;
              });
    // Compact the merged runs into the front of the same vector.
    std::size_t out = 0;
    for (std::size_t i = 0; i < intervals.size(); ++i) {
        if (out > 0 && intervals[i].begin <= intervals[out - 1].end) {
            intervals[out - 1].end =
                std::max(intervals[out - 1].end, intervals[i].end);
        } else {
            intervals[out++] = intervals[i];
        }
    }
    intervals.resize(out);
}

std::vector<Interval>
mergeIntervals(std::vector<Interval> intervals)
{
    mergeIntervalsInPlace(intervals);
    return intervals;
}

SimDuration
unionLengthInPlace(std::vector<Interval> &intervals)
{
    mergeIntervalsInPlace(intervals);
    return totalLength(intervals);
}

SimDuration
unionLength(std::vector<Interval> intervals)
{
    return unionLengthInPlace(intervals);
}

} // namespace deskpar::analysis

#include "analysis/intervals.hh"

#include <algorithm>

namespace deskpar::analysis {

Interval
Interval::clampTo(SimTime lo, SimTime hi) const
{
    Interval out;
    out.begin = std::max(begin, lo);
    out.end = std::min(end, hi);
    if (out.end < out.begin)
        out.end = out.begin;
    return out;
}

SimDuration
totalLength(const std::vector<Interval> &intervals)
{
    SimDuration total = 0;
    for (const auto &iv : intervals)
        total += iv.length();
    return total;
}

std::vector<Interval>
mergeIntervals(std::vector<Interval> intervals)
{
    std::erase_if(intervals,
                  [](const Interval &iv) { return iv.empty(); });
    std::sort(intervals.begin(), intervals.end(),
              [](const Interval &a, const Interval &b) {
                  return a.begin < b.begin;
              });
    std::vector<Interval> merged;
    for (const auto &iv : intervals) {
        if (!merged.empty() && iv.begin <= merged.back().end)
            merged.back().end = std::max(merged.back().end, iv.end);
        else
            merged.push_back(iv);
    }
    return merged;
}

SimDuration
unionLength(std::vector<Interval> intervals)
{
    return totalLength(mergeIntervals(std::move(intervals)));
}

} // namespace deskpar::analysis

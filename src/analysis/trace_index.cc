#include "analysis/trace_index.hh"

#include <algorithm>
#include <cstdint>
#include <utility>

#include "analysis/concurrency_timeline.hh"
#include "analysis/intervals.hh"
#include "obs/obs.hh"
#include "sim/logging.hh"

namespace deskpar::analysis {

using sim::SimDuration;
using sim::SimTime;

/**
 * Columns derived from the events of one pid set. The cswitch-derived
 * pieces (timeline + dispatch column) are built in one fused sweep
 * (detail::buildConcurrencyTimeline, shared with the query planner);
 * frame statistics sweep a different event vector and build on first
 * use.
 */
struct TraceIndex::PidColumns
{
    trace::PidSet pids;

    bool cswitchBuilt = false;
    detail::ConcurrencyTimeline timeline;
    /** Sorted switch-in times of target threads (responsiveness). */
    std::vector<SimTime> dispatches;

    bool framesBuilt = false;
    FrameStats frames;
};

/**
 * Pid-agnostic GPU packet columns: the start-time column is binary
 * searchable when the stream is sorted, and the running-max finish
 * column bounds how far back a window's candidates can reach.
 */
struct TraceIndex::GpuColumns
{
    bool sortedByStart = true;
    std::vector<SimTime> starts;
    std::vector<SimTime> maxFinish;
};

/** Per-CPU busy intervals (pid-agnostic; the power estimate). */
struct TraceIndex::CpuBusyColumns
{
    std::map<trace::CpuId, std::vector<Interval>> busy;
};

namespace {

/**
 * Fused sweep: concurrency timeline + dispatch column, via the
 * shared builder with this pid set's default filter (no tid, all
 * cpus) — the exact historical TraceIndex sweep.
 */
void
buildCswitchColumns(const trace::TraceBundle &bundle,
                    TraceIndex::PidColumns &cols)
{
    obs::Span span("index.build.cswitch", obs::SpanKind::Index,
                   bundle.cswitches.size());
    detail::TimelineSpec spec;
    spec.pids = cols.pids;
    detail::buildConcurrencyTimeline(bundle, spec, cols.timeline,
                                     &cols.dispatches, nullptr);
}

} // namespace

TraceIndex::TraceIndex(const TraceBundle &bundle) : bundle_(bundle) {}

TraceIndex::~TraceIndex() = default;

const TraceIndex::PidColumns &
TraceIndex::pidColumns(const PidSet &pids) const
{
    std::vector<trace::Pid> key(pids.begin(), pids.end());
    std::sort(key.begin(), key.end());

    std::lock_guard<std::mutex> lock(mutex_);
    std::unique_ptr<PidColumns> &slot = perPid_[std::move(key)];
    if (!slot) {
        slot = std::make_unique<PidColumns>();
        slot->pids = pids;
    }
    return *slot;
}

const TraceIndex::PidColumns &
TraceIndex::cswitchColumns(const PidSet &pids) const
{
    const PidColumns &cols = pidColumns(pids);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!cols.cswitchBuilt) {
            auto &mutable_cols = const_cast<PidColumns &>(cols);
            buildCswitchColumns(bundle_, mutable_cols);
            mutable_cols.cswitchBuilt = true;
        }
    }
    warnOutOfRangeOnce(cols.timeline.outOfRangeCpuEvents,
                       cols.timeline.cutoff);
    return cols;
}

void
TraceIndex::warnOutOfRangeOnce(std::uint64_t count,
                               unsigned num_cpus) const
{
    if (count == 0 || num_cpus == 0)
        return;
    trace::emitDiagnosticOnce(
        warnedOutOfRange_,
        detail::outOfRangeCpusDiagnostic(count, num_cpus));
}

const TraceIndex::GpuColumns &
TraceIndex::gpuColumns() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (!gpu_) {
        obs::Span span("index.build.gpu", obs::SpanKind::Index,
                       bundle_.gpuPackets.size());
        auto gc = std::make_unique<GpuColumns>();
        const auto &packets = bundle_.gpuPackets;
        gc->starts.reserve(packets.size());
        gc->maxFinish.reserve(packets.size());
        SimTime mx = 0;
        for (std::size_t i = 0; i < packets.size(); ++i) {
            if (i > 0 && packets[i].start < packets[i - 1].start)
                gc->sortedByStart = false;
            gc->starts.push_back(packets[i].start);
            mx = i == 0 ? packets[i].finish
                        : std::max(mx, packets[i].finish);
            gc->maxFinish.push_back(mx);
        }
        gpu_ = std::move(gc);
    }
    return *gpu_;
}

const TraceIndex::CpuBusyColumns &
TraceIndex::cpuBusyColumns() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (!cpuBusy_) {
        obs::Span span("index.build.cpubusy", obs::SpanKind::Index,
                       bundle_.cswitches.size());
        auto cb = std::make_unique<CpuBusyColumns>();
        cb->busy = detail::cpuBusyIntervals(bundle_);
        cpuBusy_ = std::move(cb);
    }
    return *cpuBusy_;
}

ConcurrencyProfile
TraceIndex::concurrency(const PidSet &pids, SimTime t0, SimTime t1,
                        unsigned num_cpus) const
{
    obs::Span span("index.query.concurrency", obs::SpanKind::Query);
    unsigned resolved =
        num_cpus ? num_cpus : bundle_.numLogicalCpus;
    if (resolved == 0)
        deskpar::fatal("computeConcurrency: unknown CPU count");
    if (t1 <= t0)
        deskpar::fatal("computeConcurrency: empty window");

    const PidColumns &cols = cswitchColumns(pids);
    if (!cols.timeline.usable || cols.timeline.cutoff != resolved) {
        // Direct sweep, warning suppressed: the per-trace dedup below
        // replaces the old once-per-query emission (the profile still
        // carries the count).
        detail::TimelineSpec spec;
        spec.pids = pids;
        ConcurrencyProfile profile = detail::sweepConcurrency(
            bundle_, spec, t0, t1, resolved, /*emit_warning=*/false);
        warnOutOfRangeOnce(profile.outOfRangeCpuEvents, resolved);
        return profile;
    }
    return detail::queryConcurrencyTimeline(cols.timeline, t0, t1);
}

ConcurrencyProfile
TraceIndex::concurrency(const PidSet &pids) const
{
    return concurrency(pids, bundle_.startTime, bundle_.stopTime);
}

GpuUtilization
TraceIndex::gpuUtil(const PidSet &pids, SimTime t0, SimTime t1) const
{
    obs::Span span("index.query.gpu", obs::SpanKind::Query);
    if (t1 <= t0)
        deskpar::fatal("computeGpuUtil: empty window");

    const GpuColumns &gc = gpuColumns();
    std::size_t first = 0;
    std::size_t last = bundle_.gpuPackets.size();
    if (gc.sortedByStart) {
        // Packets intersecting [t0, t1) start before t1 and have not
        // finished by t0; the running-max finish column is monotone,
        // so both bounds are binary searches.
        last = static_cast<std::size_t>(
            std::lower_bound(gc.starts.begin(), gc.starts.end(), t1) -
            gc.starts.begin());
        first = static_cast<std::size_t>(
            std::upper_bound(gc.maxFinish.begin(),
                             gc.maxFinish.begin() +
                                 static_cast<std::ptrdiff_t>(last),
                             t0) -
            gc.maxFinish.begin());
    }
    return detail::foldGpuPackets(bundle_, pids, t0, t1, first, last);
}

GpuUtilization
TraceIndex::gpuUtil(const PidSet &pids) const
{
    return gpuUtil(pids, bundle_.startTime, bundle_.stopTime);
}

FrameStats
TraceIndex::frameStats(const PidSet &pids) const
{
    obs::Span span("index.query.frames", obs::SpanKind::Query);
    const PidColumns &cols = pidColumns(pids);
    std::lock_guard<std::mutex> lock(mutex_);
    if (!cols.framesBuilt) {
        obs::Span buildSpan("index.build.frames",
                            obs::SpanKind::Index,
                            bundle_.frames.size());
        auto &mutable_cols = const_cast<PidColumns &>(cols);
        mutable_cols.frames =
            legacy::computeFrameStats(bundle_, pids);
        mutable_cols.framesBuilt = true;
    }
    return cols.frames;
}

Responsiveness
TraceIndex::responsiveness(const PidSet &pids) const
{
    obs::Span span("index.query.responsiveness",
                   obs::SpanKind::Query);
    const PidColumns &cols = cswitchColumns(pids);
    return detail::responsivenessFromDispatches(bundle_,
                                                cols.dispatches);
}

PowerEstimate
TraceIndex::power(const sim::CpuSpec &cpu,
                  const sim::GpuSpec &gpu) const
{
    obs::Span span("index.query.power", obs::SpanKind::Query);
    PowerEstimate out;
    out.seconds = sim::toSeconds(bundle_.duration());
    if (bundle_.duration() == 0)
        return out;
    GpuUtilization util = gpuUtil(PidSet{});
    return detail::powerFromBusyIntervals(cpuBusyColumns().busy,
                                          out.seconds,
                                          util.busyRatio, cpu, gpu);
}

void
TraceIndex::warm(const PidSet &pids) const
{
    cswitchColumns(pids);
    frameStats(pids);
    gpuColumns();
}

} // namespace deskpar::analysis

#include "analysis/trace_index.hh"

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <utility>

#include "analysis/concurrency_timeline.hh"
#include "analysis/intervals.hh"
#include "obs/obs.hh"
#include "sim/logging.hh"
#include "trace/etl.hh"

namespace deskpar::analysis {

using sim::SimDuration;
using sim::SimTime;

/**
 * Columns derived from the events of one pid set. The cswitch-derived
 * pieces (timeline + dispatch column) are built in one fused sweep
 * (detail::buildConcurrencyTimeline, shared with the query planner);
 * frame statistics sweep a different event vector and build on first
 * use.
 */
struct TraceIndex::PidColumns
{
    trace::PidSet pids;

    bool cswitchBuilt = false;
    detail::ConcurrencyTimeline timeline;
    /** Sorted switch-in times of target threads (responsiveness). */
    std::vector<SimTime> dispatches;
    /** Ready-wait intervals, end-sorted (the index cache spills
     *  these so a warm `deskpar serve` reopen keeps them). */
    detail::WaitColumns waits;

    bool framesBuilt = false;
    FrameStats frames;
};

/**
 * Pid-agnostic GPU packet columns: the start-time column is binary
 * searchable when the stream is sorted, and the running-max finish
 * column bounds how far back a window's candidates can reach.
 */
struct TraceIndex::GpuColumns
{
    bool sortedByStart = true;
    std::vector<SimTime> starts;
    std::vector<SimTime> maxFinish;
};

/** Per-CPU busy intervals (pid-agnostic; the power estimate). */
struct TraceIndex::CpuBusyColumns
{
    std::map<trace::CpuId, std::vector<Interval>> busy;
};

namespace {

/**
 * Fused sweep: concurrency timeline + dispatch column, via the
 * shared builder with this pid set's default filter (no tid, all
 * cpus) — the exact historical TraceIndex sweep.
 */
void
buildCswitchColumns(const trace::TraceBundle &bundle,
                    TraceIndex::PidColumns &cols)
{
    obs::Span span("index.build.cswitch", obs::SpanKind::Index,
                   bundle.cswitches.size());
    detail::TimelineSpec spec;
    spec.pids = cols.pids;
    detail::buildConcurrencyTimeline(bundle, spec, cols.timeline,
                                     &cols.dispatches, nullptr,
                                     &cols.waits);
}

// ---- column-blob primitives (index cache serialization) ----

void
putZigzag(std::string &out, std::int64_t v)
{
    trace::putVarint(out, (static_cast<std::uint64_t>(v) << 1) ^
                              static_cast<std::uint64_t>(v >> 63));
}

void
putDoubleBits(std::string &out, double v)
{
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<char>((bits >> (8 * i)) & 0xff));
}

bool
getU64(std::string_view data, std::size_t &pos, std::uint64_t &value)
{
    value = 0;
    unsigned shift = 0;
    while (true) {
        if (pos >= data.size() || shift >= 64)
            return false;
        auto byte = static_cast<std::uint8_t>(data[pos++]);
        value |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
        if (!(byte & 0x80))
            return true;
        shift += 7;
    }
}

bool
getZigzag(std::string_view data, std::size_t &pos,
          std::int64_t &value)
{
    std::uint64_t z = 0;
    if (!getU64(data, pos, z))
        return false;
    value = static_cast<std::int64_t>(z >> 1) ^
            -static_cast<std::int64_t>(z & 1);
    return true;
}

bool
getByte(std::string_view data, std::size_t &pos, std::uint8_t &value)
{
    if (pos >= data.size())
        return false;
    value = static_cast<std::uint8_t>(data[pos++]);
    return true;
}

bool
getDoubleBits(std::string_view data, std::size_t &pos, double &value)
{
    if (data.size() - pos < 8)
        return false;
    std::uint64_t bits = 0;
    for (int i = 0; i < 8; ++i)
        bits |= static_cast<std::uint64_t>(
                    static_cast<std::uint8_t>(data[pos + i]))
                << (8 * i);
    pos += 8;
    std::memcpy(&value, &bits, sizeof value);
    return true;
}

/** Bound an element count by the bytes left (each takes ≥ 1 byte). */
bool
getCount(std::string_view data, std::size_t &pos, std::uint64_t &n)
{
    return getU64(data, pos, n) && n <= data.size() - pos;
}

/** The serializeColumns()/adoptColumns() blob format version. */
constexpr std::uint64_t kColumnsVersion = 1;

} // namespace

TraceIndex::TraceIndex(const TraceBundle &bundle) : bundle_(bundle) {}

TraceIndex::~TraceIndex() = default;

const TraceIndex::PidColumns &
TraceIndex::pidColumns(const PidSet &pids) const
{
    std::vector<trace::Pid> key(pids.begin(), pids.end());
    std::sort(key.begin(), key.end());

    std::lock_guard<std::mutex> lock(mutex_);
    std::unique_ptr<PidColumns> &slot = perPid_[std::move(key)];
    if (!slot) {
        slot = std::make_unique<PidColumns>();
        slot->pids = pids;
    }
    return *slot;
}

const TraceIndex::PidColumns &
TraceIndex::cswitchColumns(const PidSet &pids) const
{
    const PidColumns &cols = pidColumns(pids);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!cols.cswitchBuilt) {
            // A restored index has no cswitch stream to sweep — the
            // cache intentionally drops it. Recomputing here would
            // silently return empty columns; fail loudly instead.
            if (restored_)
                deskpar::fatal(
                    "TraceIndex: pid set not present in the restored "
                    "index cache (reopen the trace with a cold "
                    "ingest)");
            auto &mutable_cols = const_cast<PidColumns &>(cols);
            buildCswitchColumns(bundle_, mutable_cols);
            mutable_cols.cswitchBuilt = true;
        }
    }
    warnOutOfRangeOnce(cols.timeline.outOfRangeCpuEvents,
                       cols.timeline.cutoff);
    return cols;
}

void
TraceIndex::warnOutOfRangeOnce(std::uint64_t count,
                               unsigned num_cpus) const
{
    if (count == 0 || num_cpus == 0)
        return;
    trace::emitDiagnosticOnce(
        warnedOutOfRange_,
        detail::outOfRangeCpusDiagnostic(count, num_cpus));
}

const TraceIndex::GpuColumns &
TraceIndex::gpuColumns() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (!gpu_) {
        obs::Span span("index.build.gpu", obs::SpanKind::Index,
                       bundle_.gpuPackets.size());
        auto gc = std::make_unique<GpuColumns>();
        const auto &packets = bundle_.gpuPackets;
        gc->starts.reserve(packets.size());
        gc->maxFinish.reserve(packets.size());
        SimTime mx = 0;
        for (std::size_t i = 0; i < packets.size(); ++i) {
            if (i > 0 && packets[i].start < packets[i - 1].start)
                gc->sortedByStart = false;
            gc->starts.push_back(packets[i].start);
            mx = i == 0 ? packets[i].finish
                        : std::max(mx, packets[i].finish);
            gc->maxFinish.push_back(mx);
        }
        gpu_ = std::move(gc);
    }
    return *gpu_;
}

const TraceIndex::CpuBusyColumns &
TraceIndex::cpuBusyColumns() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (!cpuBusy_) {
        if (restored_)
            deskpar::fatal(
                "TraceIndex: per-CPU busy columns missing from the "
                "restored index cache (reopen the trace with a cold "
                "ingest)");
        obs::Span span("index.build.cpubusy", obs::SpanKind::Index,
                       bundle_.cswitches.size());
        auto cb = std::make_unique<CpuBusyColumns>();
        cb->busy = detail::cpuBusyIntervals(bundle_);
        cpuBusy_ = std::move(cb);
    }
    return *cpuBusy_;
}

ConcurrencyProfile
TraceIndex::concurrency(const PidSet &pids, SimTime t0, SimTime t1,
                        unsigned num_cpus) const
{
    obs::Span span("index.query.concurrency", obs::SpanKind::Query);
    unsigned resolved =
        num_cpus ? num_cpus : bundle_.numLogicalCpus;
    if (resolved == 0)
        deskpar::fatal("computeConcurrency: unknown CPU count");
    if (t1 <= t0)
        deskpar::fatal("computeConcurrency: empty window");

    const PidColumns &cols = cswitchColumns(pids);
    if (!cols.timeline.usable || cols.timeline.cutoff != resolved) {
        if (restored_)
            deskpar::fatal(
                "TraceIndex: query needs a cswitch sweep the "
                "restored index cache cannot answer (reopen the "
                "trace with a cold ingest)");
        // Direct sweep, warning suppressed: the per-trace dedup below
        // replaces the old once-per-query emission (the profile still
        // carries the count).
        detail::TimelineSpec spec;
        spec.pids = pids;
        ConcurrencyProfile profile = detail::sweepConcurrency(
            bundle_, spec, t0, t1, resolved, /*emit_warning=*/false);
        warnOutOfRangeOnce(profile.outOfRangeCpuEvents, resolved);
        return profile;
    }
    return detail::queryConcurrencyTimeline(cols.timeline, t0, t1);
}

ConcurrencyProfile
TraceIndex::concurrency(const PidSet &pids) const
{
    return concurrency(pids, bundle_.startTime, bundle_.stopTime);
}

GpuUtilization
TraceIndex::gpuUtil(const PidSet &pids, SimTime t0, SimTime t1) const
{
    obs::Span span("index.query.gpu", obs::SpanKind::Query);
    if (t1 <= t0)
        deskpar::fatal("computeGpuUtil: empty window");

    const GpuColumns &gc = gpuColumns();
    std::size_t first = 0;
    std::size_t last = bundle_.gpuPackets.size();
    if (gc.sortedByStart) {
        // Packets intersecting [t0, t1) start before t1 and have not
        // finished by t0; the running-max finish column is monotone,
        // so both bounds are binary searches.
        last = static_cast<std::size_t>(
            std::lower_bound(gc.starts.begin(), gc.starts.end(), t1) -
            gc.starts.begin());
        first = static_cast<std::size_t>(
            std::upper_bound(gc.maxFinish.begin(),
                             gc.maxFinish.begin() +
                                 static_cast<std::ptrdiff_t>(last),
                             t0) -
            gc.maxFinish.begin());
    }
    return detail::foldGpuPackets(bundle_, pids, t0, t1, first, last);
}

GpuUtilization
TraceIndex::gpuUtil(const PidSet &pids) const
{
    return gpuUtil(pids, bundle_.startTime, bundle_.stopTime);
}

FrameStats
TraceIndex::frameStats(const PidSet &pids) const
{
    obs::Span span("index.query.frames", obs::SpanKind::Query);
    const PidColumns &cols = pidColumns(pids);
    std::lock_guard<std::mutex> lock(mutex_);
    if (!cols.framesBuilt) {
        obs::Span buildSpan("index.build.frames",
                            obs::SpanKind::Index,
                            bundle_.frames.size());
        auto &mutable_cols = const_cast<PidColumns &>(cols);
        mutable_cols.frames =
            legacy::computeFrameStats(bundle_, pids);
        mutable_cols.framesBuilt = true;
    }
    return cols.frames;
}

Responsiveness
TraceIndex::responsiveness(const PidSet &pids) const
{
    obs::Span span("index.query.responsiveness",
                   obs::SpanKind::Query);
    const PidColumns &cols = cswitchColumns(pids);
    return detail::responsivenessFromDispatches(bundle_,
                                                cols.dispatches);
}

PowerEstimate
TraceIndex::power(const sim::CpuSpec &cpu,
                  const sim::GpuSpec &gpu) const
{
    obs::Span span("index.query.power", obs::SpanKind::Query);
    PowerEstimate out;
    out.seconds = sim::toSeconds(bundle_.duration());
    if (bundle_.duration() == 0)
        return out;
    GpuUtilization util = gpuUtil(PidSet{});
    return detail::powerFromBusyIntervals(cpuBusyColumns().busy,
                                          out.seconds,
                                          util.busyRatio, cpu, gpu);
}

void
TraceIndex::warm(const PidSet &pids) const
{
    cswitchColumns(pids);
    frameStats(pids);
    gpuColumns();
}

bool
TraceIndex::hasCswitchColumns(const PidSet &pids) const
{
    std::vector<trace::Pid> key(pids.begin(), pids.end());
    std::sort(key.begin(), key.end());
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = perPid_.find(key);
    return it != perPid_.end() && it->second->cswitchBuilt;
}

std::string
TraceIndex::serializeColumns() const
{
    // Build the pid-agnostic families first (their builders take the
    // same mutex the serialization walk holds).
    const GpuColumns &gc = gpuColumns();
    const CpuBusyColumns &cb = cpuBusyColumns();

    std::lock_guard<std::mutex> lock(mutex_);
    obs::Span span("index.serialize", obs::SpanKind::Index);

    for (const auto &[key, slot] : perPid_) {
        if (slot->cswitchBuilt && !slot->timeline.usable)
            return std::string(); // legacy-fallback index: no cache
    }

    std::string out;
    trace::putVarint(out, kColumnsVersion);

    out.push_back(gc.sortedByStart ? 1 : 0);
    trace::putVarint(out, gc.starts.size());
    SimTime prev = 0;
    for (SimTime s : gc.starts) { // may be unsorted → zigzag deltas
        putZigzag(out, static_cast<std::int64_t>(s - prev));
        prev = s;
    }
    prev = 0;
    for (SimTime f : gc.maxFinish) { // running max → plain deltas
        trace::putVarint(out, f - prev);
        prev = f;
    }

    trace::putVarint(out, cb.busy.size());
    for (const auto &[cpu, intervals] : cb.busy) {
        trace::putVarint(out, cpu);
        trace::putVarint(out, intervals.size());
        prev = 0;
        for (const Interval &iv : intervals) {
            putZigzag(out, static_cast<std::int64_t>(iv.begin - prev));
            prev = iv.begin;
            trace::putVarint(out, iv.end - iv.begin);
        }
    }

    trace::putVarint(out, perPid_.size());
    for (const auto &[key, slot] : perPid_) {
        trace::putVarint(out, key.size());
        trace::Pid prevPid = 0;
        for (trace::Pid pid : key) { // key is sorted
            trace::putVarint(out, pid - prevPid);
            prevPid = pid;
        }
        const PidColumns &c = *slot;
        out.push_back(c.cswitchBuilt ? 1 : 0);
        if (c.cswitchBuilt) {
            const detail::ConcurrencyTimeline &tl = c.timeline;
            out.push_back(tl.usable ? 1 : 0);
            trace::putVarint(out, tl.cutoff);
            trace::putVarint(out, tl.outOfRangeCpuEvents);
            trace::putVarint(out, tl.times.size());
            prev = 0;
            for (SimTime t : tl.times) { // sorted breakpoints
                trace::putVarint(out, t - prev);
                prev = t;
            }
            trace::putVarint(out, tl.levels.size());
            for (int level : tl.levels)
                putZigzag(out, level);
            trace::putVarint(out, tl.cum.size());
            for (SimDuration d : tl.cum)
                trace::putVarint(out, d);
            trace::putVarint(out, c.dispatches.size());
            prev = 0;
            for (SimTime t : c.dispatches) { // sorted
                trace::putVarint(out, t - prev);
                prev = t;
            }
            trace::putVarint(out, c.waits.begin.size());
            prev = 0;
            for (SimTime t : c.waits.begin) {
                putZigzag(out, static_cast<std::int64_t>(t - prev));
                prev = t;
            }
            prev = 0;
            for (SimTime t : c.waits.end) { // end-sorted
                trace::putVarint(out, t - prev);
                prev = t;
            }
            // minBegin is the suffix minimum of the begin column in
            // this order — recomputed on adopt, never stored.
        }
        out.push_back(c.framesBuilt ? 1 : 0);
        if (c.framesBuilt) {
            trace::putVarint(out, c.frames.frames);
            trace::putVarint(out, c.frames.synthesizedFrames);
            putDoubleBits(out, c.frames.avgFps);
            putDoubleBits(out, c.frames.fpsStddev);
            putDoubleBits(out, c.frames.onePercentLowFps);
        }
    }
    return out;
}

bool
TraceIndex::adoptColumns(std::string_view data, std::string *error)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (gpu_ || cpuBusy_ || !perPid_.empty())
        deskpar::fatal(
            "TraceIndex::adoptColumns: columns already built");
    obs::Span span("index.adopt", obs::SpanKind::Index, data.size());

    auto fail = [&](const char *what) {
        if (error)
            *error = what;
        gpu_.reset();
        cpuBusy_.reset();
        perPid_.clear();
        return false;
    };

    std::size_t pos = 0;
    std::uint64_t v = 0;
    if (!getU64(data, pos, v) || v != kColumnsVersion)
        return fail("unsupported index-columns version");

    std::uint8_t flag = 0;
    if (!getByte(data, pos, flag))
        return fail("truncated GPU columns");
    auto gc = std::make_unique<GpuColumns>();
    gc->sortedByStart = flag != 0;
    std::uint64_t n = 0;
    if (!getCount(data, pos, n))
        return fail("corrupt GPU column count");
    gc->starts.reserve(static_cast<std::size_t>(n));
    gc->maxFinish.reserve(static_cast<std::size_t>(n));
    SimTime prev = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
        std::int64_t d = 0;
        if (!getZigzag(data, pos, d))
            return fail("truncated GPU start column");
        prev += static_cast<std::uint64_t>(d);
        gc->starts.push_back(prev);
    }
    prev = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
        std::uint64_t d = 0;
        if (!getU64(data, pos, d))
            return fail("truncated GPU finish column");
        prev += d;
        gc->maxFinish.push_back(prev);
    }

    auto cb = std::make_unique<CpuBusyColumns>();
    std::uint64_t cpus = 0;
    if (!getCount(data, pos, cpus))
        return fail("corrupt CPU-busy map size");
    for (std::uint64_t c = 0; c < cpus; ++c) {
        std::uint64_t cpu = 0, count = 0;
        if (!getU64(data, pos, cpu) || !getCount(data, pos, count))
            return fail("corrupt CPU-busy entry");
        auto &intervals = cb->busy[static_cast<trace::CpuId>(cpu)];
        intervals.reserve(static_cast<std::size_t>(count));
        prev = 0;
        for (std::uint64_t i = 0; i < count; ++i) {
            std::int64_t db = 0;
            std::uint64_t len = 0;
            if (!getZigzag(data, pos, db) || !getU64(data, pos, len))
                return fail("truncated CPU-busy intervals");
            prev += static_cast<std::uint64_t>(db);
            intervals.push_back(Interval{prev, prev + len});
        }
    }

    std::uint64_t sets = 0;
    if (!getCount(data, pos, sets))
        return fail("corrupt pid-set count");
    for (std::uint64_t s = 0; s < sets; ++s) {
        std::uint64_t pidCount = 0;
        if (!getCount(data, pos, pidCount))
            return fail("corrupt pid-set size");
        std::vector<trace::Pid> key;
        key.reserve(static_cast<std::size_t>(pidCount));
        trace::Pid prevPid = 0;
        for (std::uint64_t i = 0; i < pidCount; ++i) {
            std::uint64_t d = 0;
            if (!getU64(data, pos, d))
                return fail("truncated pid set");
            prevPid += static_cast<trace::Pid>(d);
            key.push_back(prevPid);
        }
        auto cols = std::make_unique<PidColumns>();
        cols->pids = PidSet(key.begin(), key.end());

        if (!getByte(data, pos, flag))
            return fail("truncated cswitch-built flag");
        if (flag) {
            detail::ConcurrencyTimeline &tl = cols->timeline;
            if (!getByte(data, pos, flag))
                return fail("truncated timeline header");
            tl.usable = flag != 0;
            std::uint64_t cutoff = 0;
            if (!getU64(data, pos, cutoff) ||
                !getU64(data, pos, tl.outOfRangeCpuEvents))
                return fail("truncated timeline header");
            tl.cutoff = static_cast<unsigned>(cutoff);
            if (!getCount(data, pos, n))
                return fail("corrupt timeline size");
            tl.times.reserve(static_cast<std::size_t>(n));
            prev = 0;
            for (std::uint64_t i = 0; i < n; ++i) {
                std::uint64_t d = 0;
                if (!getU64(data, pos, d))
                    return fail("truncated timeline times");
                prev += d;
                tl.times.push_back(prev);
            }
            if (!getCount(data, pos, n))
                return fail("corrupt level-column size");
            tl.levels.reserve(static_cast<std::size_t>(n));
            for (std::uint64_t i = 0; i < n; ++i) {
                std::int64_t level = 0;
                if (!getZigzag(data, pos, level))
                    return fail("truncated level column");
                tl.levels.push_back(static_cast<int>(level));
            }
            if (!getCount(data, pos, n))
                return fail("corrupt checkpoint size");
            tl.cum.reserve(static_cast<std::size_t>(n));
            for (std::uint64_t i = 0; i < n; ++i) {
                std::uint64_t d = 0;
                if (!getU64(data, pos, d))
                    return fail("truncated checkpoint column");
                tl.cum.push_back(d);
            }
            if (!getCount(data, pos, n))
                return fail("corrupt dispatch-column size");
            cols->dispatches.reserve(static_cast<std::size_t>(n));
            prev = 0;
            for (std::uint64_t i = 0; i < n; ++i) {
                std::uint64_t d = 0;
                if (!getU64(data, pos, d))
                    return fail("truncated dispatch column");
                prev += d;
                cols->dispatches.push_back(prev);
            }
            if (!getCount(data, pos, n))
                return fail("corrupt wait-column size");
            detail::WaitColumns &w = cols->waits;
            w.begin.reserve(static_cast<std::size_t>(n));
            w.end.reserve(static_cast<std::size_t>(n));
            w.minBegin.reserve(static_cast<std::size_t>(n));
            prev = 0;
            for (std::uint64_t i = 0; i < n; ++i) {
                std::int64_t d = 0;
                if (!getZigzag(data, pos, d))
                    return fail("truncated wait begins");
                prev += static_cast<std::uint64_t>(d);
                w.begin.push_back(prev);
            }
            prev = 0;
            for (std::uint64_t i = 0; i < n; ++i) {
                std::uint64_t d = 0;
                if (!getU64(data, pos, d))
                    return fail("truncated wait ends");
                prev += d;
                w.end.push_back(prev);
            }
            // Rebuild the suffix-minimum column the serializer
            // elides; one reverse pass over the decoded begins.
            w.minBegin.assign(w.begin.size(), 0);
            SimTime mn = 0;
            for (std::size_t i = w.begin.size(); i-- > 0;) {
                mn = i + 1 == w.begin.size()
                         ? w.begin[i]
                         : std::min(mn, w.begin[i]);
                w.minBegin[i] = mn;
            }
            cols->cswitchBuilt = true;
        }

        if (!getByte(data, pos, flag))
            return fail("truncated frames-built flag");
        if (flag) {
            std::uint64_t frames = 0, synth = 0;
            if (!getU64(data, pos, frames) ||
                !getU64(data, pos, synth) ||
                !getDoubleBits(data, pos, cols->frames.avgFps) ||
                !getDoubleBits(data, pos, cols->frames.fpsStddev) ||
                !getDoubleBits(data, pos,
                               cols->frames.onePercentLowFps))
                return fail("truncated frame statistics");
            cols->frames.frames = static_cast<std::size_t>(frames);
            cols->frames.synthesizedFrames =
                static_cast<std::size_t>(synth);
            cols->framesBuilt = true;
        }
        perPid_[std::move(key)] = std::move(cols);
    }
    if (pos != data.size())
        return fail("trailing bytes in index-columns blob");

    gpu_ = std::move(gc);
    cpuBusy_ = std::move(cb);
    restored_ = true;
    return true;
}

} // namespace deskpar::analysis

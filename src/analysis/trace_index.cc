#include "analysis/trace_index.hh"

#include <algorithm>
#include <cstdint>
#include <utility>

#include "analysis/intervals.hh"
#include "obs/obs.hh"
#include "sim/logging.hh"

namespace deskpar::analysis {

using sim::SimDuration;
using sim::SimTime;

/**
 * The concurrency level of one pid set as a piecewise-constant
 * function of time, compressed to its breakpoints.
 *
 * levels[i] is the number of CPUs running target threads on
 * [times[i], times[i+1)); the level is 0 before times[0] and
 * levels.back() extends past the last breakpoint. Zero-net groups of
 * equal-timestamp deltas are dropped, so consecutive levels differ.
 *
 * cum holds strided checkpoint rows of kStride segments:
 * cum[k*(cutoff+1) + l] is the (integer) time spent at clamped level
 * l over [times[0], times[k*kStride]). A windowed query therefore
 * costs two binary searches, one checkpoint-row difference, and at
 * most kStride edge segments per side.
 *
 * usable is false when the stream cannot be represented faithfully:
 * the header reports zero CPUs, or disorder produced a negative
 * cumulative level (whether the legacy sweep panics on such a trace
 * depends on the queried window, so those queries take the legacy
 * path verbatim).
 */
struct TraceIndex::ConcurrencyTimeline
{
    static constexpr std::size_t kStride = 32;

    bool usable = false;
    unsigned cutoff = 0;
    std::uint64_t outOfRangeCpuEvents = 0;
    std::vector<SimTime> times;
    std::vector<int> levels;
    std::vector<SimDuration> cum;
};

/**
 * Columns derived from the events of one pid set. The cswitch-derived
 * pieces (timeline + dispatch column) are built in one fused sweep;
 * frame statistics sweep a different event vector and build on first
 * use.
 */
struct TraceIndex::PidColumns
{
    trace::PidSet pids;

    bool cswitchBuilt = false;
    ConcurrencyTimeline timeline;
    /** Sorted switch-in times of target threads (responsiveness). */
    std::vector<SimTime> dispatches;

    bool framesBuilt = false;
    FrameStats frames;
};

/**
 * Pid-agnostic GPU packet columns: the start-time column is binary
 * searchable when the stream is sorted, and the running-max finish
 * column bounds how far back a window's candidates can reach.
 */
struct TraceIndex::GpuColumns
{
    bool sortedByStart = true;
    std::vector<SimTime> starts;
    std::vector<SimTime> maxFinish;
};

/** Per-CPU busy intervals (pid-agnostic; the power estimate). */
struct TraceIndex::CpuBusyColumns
{
    std::map<trace::CpuId, std::vector<Interval>> busy;
};

namespace {

/** Fused sweep: concurrency timeline + dispatch column. */
void
buildCswitchColumns(const trace::TraceBundle &bundle,
                    TraceIndex::PidColumns &cols);

void
buildCswitchColumns(const trace::TraceBundle &bundle,
                    TraceIndex::PidColumns &cols)
{
    obs::Span span("index.build.cswitch", obs::SpanKind::Index,
                   bundle.cswitches.size());
    const trace::PidSet &pids = cols.pids;
    auto isTarget = [&pids](trace::Pid pid) {
        if (pid == 0)
            return false;
        return pids.empty() || pids.count(pid) != 0;
    };

    TraceIndex::ConcurrencyTimeline &tl = cols.timeline;
    tl.cutoff = bundle.numLogicalCpus;
    const unsigned cutoff = tl.cutoff;

    // Emit (timestamp, +1/-1) occupancy deltas in stream order — the
    // per-CPU busy flags are a state machine over the stream, exactly
    // as in the legacy sweep — and collect the dispatch column in the
    // same pass.
    std::vector<std::pair<SimTime, int>> deltas;
    deltas.reserve(bundle.cswitches.size());
    std::vector<std::uint8_t> cpuBusy(cutoff, 0);
    bool sorted = true;
    SimTime prev_ts = 0;

    for (const auto &e : bundle.cswitches) {
        if (e.newPid != 0 &&
            (pids.empty() || pids.count(e.newPid) != 0)) {
            cols.dispatches.push_back(e.timestamp);
        }
        if (e.timestamp < prev_ts)
            sorted = false;
        prev_ts = e.timestamp;
        if (cutoff == 0)
            continue;
        if (e.cpu >= cutoff) {
            ++tl.outOfRangeCpuEvents;
            continue;
        }
        std::uint8_t now_busy = isTarget(e.newPid) ? 1 : 0;
        if (cpuBusy[e.cpu] == now_busy)
            continue;
        deltas.emplace_back(e.timestamp, now_busy ? 1 : -1);
        cpuBusy[e.cpu] = now_busy;
    }
    std::sort(cols.dispatches.begin(), cols.dispatches.end());

    if (tl.outOfRangeCpuEvents > 0 && cutoff > 0)
        detail::warnOutOfRangeCpus(tl.outOfRangeCpuEvents, cutoff);
    if (cutoff == 0)
        return; // every query must take the legacy path (it fatals)

    // The legacy sweep stable-sorts its (clamped) deltas; sorting the
    // unclamped emission stably yields the same per-timestamp group
    // sums for every window, which is all the level function depends
    // on.
    if (!sorted) {
        std::stable_sort(deltas.begin(), deltas.end(),
                         [](const auto &a, const auto &b) {
                             return a.first < b.first;
                         });
    }

    // Compress equal-timestamp groups into breakpoints. A negative
    // cumulative level means the (disordered) stream closed a CPU
    // before opening it; poison the timeline so queries fall back.
    long long level = 0;
    for (std::size_t i = 0; i < deltas.size();) {
        SimTime ts = deltas[i].first;
        long long sum = 0;
        for (; i < deltas.size() && deltas[i].first == ts; ++i)
            sum += deltas[i].second;
        if (sum == 0)
            continue;
        level += sum;
        if (level < 0) {
            tl.times.clear();
            tl.levels.clear();
            return;
        }
        tl.times.push_back(ts);
        tl.levels.push_back(static_cast<int>(level));
    }
    tl.usable = true;

    // Checkpoint rows: running per-level time at every kStride-th
    // breakpoint. Integer sums, so checkpoint differences decompose
    // a window exactly.
    const std::size_t L = cutoff + 1;
    const std::size_t n = tl.times.size();
    if (n == 0)
        return;
    const std::size_t rows =
        (n - 1) / TraceIndex::ConcurrencyTimeline::kStride + 1;
    tl.cum.assign(rows * L, 0);
    std::vector<SimDuration> acc(L, 0);
    for (std::size_t j = 0; j < n; ++j) {
        if (j % TraceIndex::ConcurrencyTimeline::kStride == 0) {
            std::copy(
                acc.begin(), acc.end(),
                tl.cum.begin() +
                    static_cast<std::ptrdiff_t>(
                        (j / TraceIndex::ConcurrencyTimeline::kStride) *
                        L));
        }
        if (j + 1 < n) {
            auto lvl = static_cast<unsigned>(std::clamp(
                tl.levels[j], 0, static_cast<int>(cutoff)));
            acc[lvl] += tl.times[j + 1] - tl.times[j];
        }
    }
}

/**
 * Windowed histogram from a usable timeline. Bit-identical to the
 * legacy sweep: the time-at-level decomposition is the same integer
 * sum split differently, and the single divide-by-window per level
 * is the only floating-point operation, as in legacy.
 */
ConcurrencyProfile
queryTimeline(const TraceIndex::ConcurrencyTimeline &tl, SimTime t0,
              SimTime t1)
{
    constexpr std::size_t kStride =
        TraceIndex::ConcurrencyTimeline::kStride;
    const unsigned num_cpus = tl.cutoff;
    const std::size_t L = num_cpus + 1;

    ConcurrencyProfile profile;
    profile.numCpus = num_cpus;
    profile.window = t1 - t0;
    profile.c.assign(L, 0.0);
    profile.outOfRangeCpuEvents = tl.outOfRangeCpuEvents;

    std::vector<SimDuration> timeAt(L, 0);
    const std::vector<SimTime> &times = tl.times;
    const std::size_t n = times.size();
    auto clampLvl = [num_cpus](int level) {
        return static_cast<unsigned>(
            std::clamp(level, 0, static_cast<int>(num_cpus)));
    };

    // First breakpoint strictly inside the window.
    std::size_t idx =
        static_cast<std::size_t>(
            std::upper_bound(times.begin(), times.end(), t0) -
            times.begin());

    // Head: the tail of the segment containing t0.
    SimTime headEnd = (idx < n && times[idx] < t1) ? times[idx] : t1;
    int headLevel = idx == 0 ? 0 : tl.levels[idx - 1];
    timeAt[clampLvl(headLevel)] += headEnd - t0;

    if (idx < n && times[idx] < t1) {
        std::size_t j = idx; // position: exactly at breakpoint j
        while (true) {
            if (j % kStride == 0) {
                // Jump over whole checkpoint rows: the largest
                // aligned breakpoint k2*kStride still <= t1.
                std::size_t k1 = j / kStride;
                std::size_t maxk = (n - 1) / kStride;
                std::size_t k2 = k1;
                for (std::size_t lo = k1 + 1, hi = maxk; lo <= hi;) {
                    std::size_t mid = lo + (hi - lo) / 2;
                    if (times[mid * kStride] <= t1) {
                        k2 = mid;
                        lo = mid + 1;
                    } else {
                        hi = mid - 1;
                    }
                }
                if (k2 > k1) {
                    const SimDuration *a = &tl.cum[k1 * L];
                    const SimDuration *b = &tl.cum[k2 * L];
                    for (std::size_t l = 0; l < L; ++l)
                        timeAt[l] += b[l] - a[l];
                    j = k2 * kStride;
                    continue;
                }
            }
            // Segment j = [times[j], times[j+1)); the last level
            // extends past the final breakpoint.
            SimTime segEnd = (j + 1 < n) ? times[j + 1] : t1;
            if (segEnd >= t1) {
                timeAt[clampLvl(tl.levels[j])] += t1 - times[j];
                break;
            }
            timeAt[clampLvl(tl.levels[j])] += segEnd - times[j];
            ++j;
        }
    }

    double window = static_cast<double>(profile.window);
    for (std::size_t i = 0; i < L; ++i)
        profile.c[i] = static_cast<double>(timeAt[i]) / window;
    return profile;
}

} // namespace

TraceIndex::TraceIndex(const TraceBundle &bundle) : bundle_(bundle) {}

TraceIndex::~TraceIndex() = default;

const TraceIndex::PidColumns &
TraceIndex::pidColumns(const PidSet &pids) const
{
    std::vector<trace::Pid> key(pids.begin(), pids.end());
    std::sort(key.begin(), key.end());

    std::lock_guard<std::mutex> lock(mutex_);
    std::unique_ptr<PidColumns> &slot = perPid_[std::move(key)];
    if (!slot) {
        slot = std::make_unique<PidColumns>();
        slot->pids = pids;
    }
    return *slot;
}

const TraceIndex::GpuColumns &
TraceIndex::gpuColumns() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (!gpu_) {
        obs::Span span("index.build.gpu", obs::SpanKind::Index,
                       bundle_.gpuPackets.size());
        auto gc = std::make_unique<GpuColumns>();
        const auto &packets = bundle_.gpuPackets;
        gc->starts.reserve(packets.size());
        gc->maxFinish.reserve(packets.size());
        SimTime mx = 0;
        for (std::size_t i = 0; i < packets.size(); ++i) {
            if (i > 0 && packets[i].start < packets[i - 1].start)
                gc->sortedByStart = false;
            gc->starts.push_back(packets[i].start);
            mx = i == 0 ? packets[i].finish
                        : std::max(mx, packets[i].finish);
            gc->maxFinish.push_back(mx);
        }
        gpu_ = std::move(gc);
    }
    return *gpu_;
}

const TraceIndex::CpuBusyColumns &
TraceIndex::cpuBusyColumns() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (!cpuBusy_) {
        obs::Span span("index.build.cpubusy", obs::SpanKind::Index,
                       bundle_.cswitches.size());
        auto cb = std::make_unique<CpuBusyColumns>();
        cb->busy = detail::cpuBusyIntervals(bundle_);
        cpuBusy_ = std::move(cb);
    }
    return *cpuBusy_;
}

ConcurrencyProfile
TraceIndex::concurrency(const PidSet &pids, SimTime t0, SimTime t1,
                        unsigned num_cpus) const
{
    obs::Span span("index.query.concurrency", obs::SpanKind::Query);
    unsigned resolved =
        num_cpus ? num_cpus : bundle_.numLogicalCpus;
    if (resolved == 0)
        deskpar::fatal("computeConcurrency: unknown CPU count");
    if (t1 <= t0)
        deskpar::fatal("computeConcurrency: empty window");

    const PidColumns &cols = pidColumns(pids);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!cols.cswitchBuilt) {
            auto &mutable_cols = const_cast<PidColumns &>(cols);
            buildCswitchColumns(bundle_, mutable_cols);
            mutable_cols.cswitchBuilt = true;
        }
    }
    if (!cols.timeline.usable || cols.timeline.cutoff != resolved) {
        return legacy::computeConcurrency(bundle_, pids, t0, t1,
                                          num_cpus);
    }
    return queryTimeline(cols.timeline, t0, t1);
}

ConcurrencyProfile
TraceIndex::concurrency(const PidSet &pids) const
{
    return concurrency(pids, bundle_.startTime, bundle_.stopTime);
}

GpuUtilization
TraceIndex::gpuUtil(const PidSet &pids, SimTime t0, SimTime t1) const
{
    obs::Span span("index.query.gpu", obs::SpanKind::Query);
    if (t1 <= t0)
        deskpar::fatal("computeGpuUtil: empty window");

    const GpuColumns &gc = gpuColumns();
    std::size_t first = 0;
    std::size_t last = bundle_.gpuPackets.size();
    if (gc.sortedByStart) {
        // Packets intersecting [t0, t1) start before t1 and have not
        // finished by t0; the running-max finish column is monotone,
        // so both bounds are binary searches.
        last = static_cast<std::size_t>(
            std::lower_bound(gc.starts.begin(), gc.starts.end(), t1) -
            gc.starts.begin());
        first = static_cast<std::size_t>(
            std::upper_bound(gc.maxFinish.begin(),
                             gc.maxFinish.begin() +
                                 static_cast<std::ptrdiff_t>(last),
                             t0) -
            gc.maxFinish.begin());
    }
    return detail::foldGpuPackets(bundle_, pids, t0, t1, first, last);
}

GpuUtilization
TraceIndex::gpuUtil(const PidSet &pids) const
{
    return gpuUtil(pids, bundle_.startTime, bundle_.stopTime);
}

FrameStats
TraceIndex::frameStats(const PidSet &pids) const
{
    obs::Span span("index.query.frames", obs::SpanKind::Query);
    const PidColumns &cols = pidColumns(pids);
    std::lock_guard<std::mutex> lock(mutex_);
    if (!cols.framesBuilt) {
        obs::Span buildSpan("index.build.frames",
                            obs::SpanKind::Index,
                            bundle_.frames.size());
        auto &mutable_cols = const_cast<PidColumns &>(cols);
        mutable_cols.frames =
            legacy::computeFrameStats(bundle_, pids);
        mutable_cols.framesBuilt = true;
    }
    return cols.frames;
}

Responsiveness
TraceIndex::responsiveness(const PidSet &pids) const
{
    obs::Span span("index.query.responsiveness",
                   obs::SpanKind::Query);
    const PidColumns &cols = pidColumns(pids);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!cols.cswitchBuilt) {
            auto &mutable_cols = const_cast<PidColumns &>(cols);
            buildCswitchColumns(bundle_, mutable_cols);
            mutable_cols.cswitchBuilt = true;
        }
    }
    return detail::responsivenessFromDispatches(bundle_,
                                                cols.dispatches);
}

PowerEstimate
TraceIndex::power(const sim::CpuSpec &cpu,
                  const sim::GpuSpec &gpu) const
{
    obs::Span span("index.query.power", obs::SpanKind::Query);
    PowerEstimate out;
    out.seconds = sim::toSeconds(bundle_.duration());
    if (bundle_.duration() == 0)
        return out;
    GpuUtilization util = gpuUtil(PidSet{});
    return detail::powerFromBusyIntervals(cpuBusyColumns().busy,
                                          out.seconds,
                                          util.busyRatio, cpu, gpu);
}

void
TraceIndex::warm(const PidSet &pids) const
{
    const PidColumns &cols = pidColumns(pids);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!cols.cswitchBuilt) {
            auto &mutable_cols = const_cast<PidColumns &>(cols);
            buildCswitchColumns(bundle_, mutable_cols);
            mutable_cols.cswitchBuilt = true;
        }
    }
    frameStats(pids);
    gpuColumns();
}

} // namespace deskpar::analysis

#include "analysis/power.hh"

#include <map>
#include <vector>

#include "analysis/gpu_util.hh"
#include "analysis/intervals.hh"
#include "analysis/session.hh"
#include "analysis/trace_index.hh"

namespace deskpar::analysis {

namespace detail {

std::map<trace::CpuId, std::vector<Interval>>
cpuBusyIntervals(const trace::TraceBundle &bundle)
{
    std::map<trace::CpuId, std::vector<Interval>> out;
    std::map<trace::CpuId, sim::SimTime> busySince;
    std::map<trace::CpuId, bool> busy;

    for (const auto &e : bundle.cswitches) {
        bool now_busy = e.newPid != 0;
        bool &was_busy = busy[e.cpu];
        if (was_busy && !now_busy) {
            out[e.cpu].push_back(
                Interval{busySince[e.cpu], e.timestamp});
        } else if (!was_busy && now_busy) {
            busySince[e.cpu] = e.timestamp;
        }
        was_busy = now_busy;
    }
    for (auto &[cpu, is_busy] : busy) {
        if (is_busy) {
            out[cpu].push_back(
                Interval{busySince[cpu], bundle.stopTime});
        }
    }
    return out;
}

PowerEstimate
powerFromBusyIntervals(
    const std::map<trace::CpuId, std::vector<Interval>> &intervals,
    double seconds, double gpu_busy_ratio, const sim::CpuSpec &cpu,
    const sim::GpuSpec &gpu)
{
    PowerEstimate out;
    out.seconds = seconds;

    // A physical core burns its share of (TDP - idle) while either
    // hardware thread runs; the second thread adds only a small
    // increment (shared FUs/caches) — that is why SMT is nearly free
    // energy-wise.
    constexpr double kSmtPowerIncrement = 0.07;

    unsigned tpc = cpu.threadsPerCore;
    double core_seconds = 0.0;  // physical-core busy time
    double smt_seconds = 0.0;   // both-siblings-busy time
    for (unsigned core = 0; core < cpu.physicalCores; ++core) {
        std::vector<Interval> any;
        double thread_sum = 0.0;
        for (unsigned t = 0; t < tpc; ++t) {
            auto it = intervals.find(core * tpc + t);
            if (it == intervals.end())
                continue;
            thread_sum += sim::toSeconds(totalLength(it->second));
            any.insert(any.end(), it->second.begin(),
                       it->second.end());
        }
        double union_s = sim::toSeconds(unionLengthInPlace(any));
        core_seconds += union_s;
        smt_seconds += thread_sum - union_s;
    }

    double per_core = (cpu.tdpWatts - cpu.idleWatts) /
                      static_cast<double>(cpu.physicalCores);
    out.cpuWatts =
        cpu.idleWatts +
        per_core * (core_seconds +
                    kSmtPowerIncrement * smt_seconds) /
            out.seconds;

    out.gpuWatts = gpu.idleWatts +
                   (gpu.tdpWatts - gpu.idleWatts) * gpu_busy_ratio;
    return out;
}

} // namespace detail

namespace legacy {

PowerEstimate
estimatePower(const trace::TraceBundle &bundle,
              const sim::CpuSpec &cpu, const sim::GpuSpec &gpu)
{
    PowerEstimate out;
    out.seconds = sim::toSeconds(bundle.duration());
    if (bundle.duration() == 0)
        return out;

    GpuUtilization util =
        legacy::computeGpuUtil(bundle, trace::PidSet{});
    return detail::powerFromBusyIntervals(
        detail::cpuBusyIntervals(bundle), out.seconds,
        util.busyRatio, cpu, gpu);
}

} // namespace legacy

PowerEstimate
estimatePower(const trace::TraceBundle &bundle,
              const sim::CpuSpec &cpu, const sim::GpuSpec &gpu)
{
    return Session(bundle).power(cpu, gpu);
}

} // namespace deskpar::analysis

/**
 * @file
 * The composable trace-query vocabulary: filter -> group-by ->
 * metric, as a value type.
 *
 * Every analysis in the paper reproduction is an instance of one
 * small pattern (select events, partition them, fold a metric per
 * partition) — Pipit makes the same observation for parallel-trace
 * analysis at large. A Query names one such instance:
 *
 *   filter   pid set / process-name prefix / time window / cpu mask
 *   group-by process | thread | phase marker | GPU engine |
 *            fixed-width time bucket | none
 *   metric   TLP (Equation 1) | busy fraction | GPU packet
 *            occupancy | context-switch rate | duration histogram |
 *            ready-wait fraction | ready latency | blocked seconds
 *
 * Queries are data, not code: they can be parsed from the CLI's
 * compact text syntax (parseQuerySpec), batched, and compiled by the
 * fusing planner (query_plan.hh) into one pass per distinct filter.
 * analysis::legacy::runQuery is the straight-line reference the
 * planner is proven bit-identical against — each row evaluated with
 * an independent full sweep, exactly what a caller would have
 * hand-written before this layer existed.
 */

#ifndef DESKPAR_ANALYSIS_QUERY_HH
#define DESKPAR_ANALYSIS_QUERY_HH

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/concurrency_timeline.hh"
#include "analysis/gpu_util.hh"
#include "analysis/tlp.hh"
#include "trace/event.hh"
#include "trace/filter.hh"
#include "trace/session.hh"

namespace deskpar::analysis {

/** What to fold per group. */
enum class QueryMetric : std::uint8_t {
    /** TLP per Equation 1 (idle factored out). */
    Tlp = 0,
    /** 1 - c_0: fraction of the window with any target thread on. */
    BusyFraction = 1,
    /** GPU packet occupancy percent (Section III-B, capped at 100). */
    GpuOccupancy = 2,
    /** Target switch-ins per second of window. */
    ContextSwitchRate = 3,
    /** Histogram of per-CPU busy-burst durations (log2 buckets). */
    DurationHistogram = 4,
    /**
     * Mean number of target threads sitting ready-to-run: the summed
     * [readyTime, timestamp) wait time inside the window, divided by
     * the window. A TLP-style number, but counting threads that
     * *could* have run — the serialization signal of Section IV.
     */
    WaitFraction = 5,
    /** Mean ready-queue latency (seconds) per in-window dispatch. */
    ReadyLatency = 6,
    /** Absolute in-window ready-wait seconds (for top-N ranking). */
    TopBlocked = 7,
};

/** How to partition the filtered window into rows. */
enum class QueryGroupBy : std::uint8_t {
    None = 0,
    /** One row per pid of the resolved set. */
    Process = 1,
    /** One row per distinct (pid, tid) switch-in target. */
    Thread = 2,
    /** One row per "phase:" marker interval. */
    Phase = 3,
    /** One row per GPU engine (GpuOccupancy only). */
    GpuEngine = 4,
    /** One row per fixed-width time bucket (Query::bucket). */
    TimeBucket = 5,
};

/** Spec-syntax name of a metric ("tlp", "busy", ...). */
const char *queryMetricName(QueryMetric metric);

/** Spec-syntax name of a group-by ("process", "bucket", ...). */
const char *queryGroupByName(QueryGroupBy groupBy);

/** Log2-spaced duration buckets: bucket i covers [2^i, 2^{i+1}) ns. */
inline constexpr unsigned kDurationHistogramBuckets = 32;

/**
 * Event selection. An empty pid set with an empty prefix means
 * "every non-idle process" (system-wide); a non-empty prefix is
 * resolved against the bundle's process names (and it is fatal for
 * it to match nothing — a misspelled application must not silently
 * become a system-wide number). t1 == 0 selects the whole bundle
 * window. The cpu mask narrows the cswitch-derived metrics to a CPU
 * subset; GPU packets carry no cpu and ignore it.
 */
struct QueryFilter
{
    trace::PidSet pids;
    std::string namePrefix;
    sim::SimTime t0 = 0;
    sim::SimTime t1 = 0;
    detail::CpuMask cpuMask = detail::kAllCpus;
};

/** One query: filter -> group-by -> metric. */
struct Query
{
    QueryMetric metric = QueryMetric::Tlp;
    QueryFilter filter;
    QueryGroupBy groupBy = QueryGroupBy::None;
    /** Bucket width for QueryGroupBy::TimeBucket (else ignored). */
    sim::SimDuration bucket = 0;
    /** Display label; defaults to the canonical spec string. */
    std::string label;
};

/** One result row (one group of one query). */
struct QueryRow
{
    /** Group key (process name, phase label, engine name, ...). */
    std::string key;
    /** The row's window. */
    sim::SimTime t0 = 0;
    sim::SimTime t1 = 0;
    /** Set for Process/Thread rows. */
    trace::Pid pid = 0;
    trace::Tid tid = 0;
    /** The metric value (for DurationHistogram: the burst count). */
    double value = 0.0;
    /** DurationHistogram only: kDurationHistogramBuckets counts. */
    std::vector<std::uint64_t> histogram;
};

/** All rows of one query, in deterministic group order. */
struct QueryResult
{
    Query query;
    std::vector<QueryRow> rows;
};

/**
 * Parse the CLI's compact spec syntax:
 *
 *   metric[/key=value]...
 *
 * with metric one of tlp|busy|gpu|csrate|dhist|waitfrac|readylat|
 * topblocked and fields
 *   app=PREFIX  pids=1,2,3  t0=SECONDS  t1=SECONDS
 *   cpus=0,2-5  by=process|thread|phase|engine|bucket:WIDTH
 *   label=NAME
 * where WIDTH is a duration like 250ms, 2s, 500us, 100000ns.
 * Fatal (FatalError) on malformed specs.
 */
Query parseQuerySpec(const std::string &spec);

/** Canonical spec string of @p query (inverse of parseQuerySpec). */
std::string querySpecString(const Query &query);

/**
 * @{ Canned queries: existing metric entry points re-expressed in
 * the query vocabulary. Each is exact: running it (fused or
 * reference) reproduces the corresponding Session call bit for bit —
 * tlpQuery == concurrency(pids).tlp(), tlpSeriesQuery ==
 * tlpSeries(pids, window).points[i].value, gpuUtilSeriesQuery ==
 * gpuUtilSeries(pids, window).points[i].value.
 */
Query tlpQuery(trace::PidSet pids);
Query tlpSeriesQuery(trace::PidSet pids, sim::SimDuration window);
Query gpuUtilSeriesQuery(trace::PidSet pids,
                         sim::SimDuration window);
/** @} */

namespace legacy {

/**
 * The straight-line reference: evaluate @p query with one
 * independent full-trace sweep per row — computeConcurrency /
 * computeGpuUtil / direct event scans, nothing shared, warnings
 * emitted per sweep as the legacy functions always did. This is what
 * the fused planner (query_plan.hh) is differentially tested
 * against, and the "sequential per-metric calls" baseline of
 * bench_query_fusion.
 */
QueryResult runQuery(const trace::TraceBundle &bundle,
                     const Query &query);

/** runQuery over a batch, in order. */
std::vector<QueryResult> runQueries(const trace::TraceBundle &bundle,
                                    const std::vector<Query> &queries);

} // namespace legacy

namespace detail {

/** A query filter after name/window resolution. */
struct ResolvedFilter
{
    trace::PidSet pids;
    sim::SimTime t0 = 0;
    sim::SimTime t1 = 0;
    CpuMask cpuMask = kAllCpus;
};

/**
 * Resolve prefix -> pids (fatal when a non-empty prefix matches no
 * process) and default the window to the bundle's (fatal when the
 * resolved window is empty). Touches the bundle's lazy name index,
 * so resolve before fanning out across threads.
 */
ResolvedFilter resolveQueryFilter(const trace::TraceBundle &bundle,
                                  const QueryFilter &filter);

/**
 * One expanded row before evaluation: its window, its (narrowed)
 * event filter, and its display identity.
 */
struct QueryRowSpec
{
    std::string key;
    sim::SimTime t0 = 0;
    sim::SimTime t1 = 0;
    trace::PidSet pids;
    bool hasTid = false;
    trace::Tid tid = 0;
    /** Display identity for Process/Thread rows. */
    trace::Pid pidLabel = 0;
    trace::Tid tidLabel = 0;
    /** >= 0: this row reads perEngine[engine] (GpuEngine group). */
    int engine = -1;
};

/**
 * Expand @p query into row specs, in the deterministic order the
 * result rows will have. Shared by the reference runner and the
 * planner, so grouping semantics cannot drift between them. Fatal on
 * invalid metric/group combinations (GPU occupancy per thread,
 * non-GPU metric per engine, TimeBucket without a width).
 */
std::vector<QueryRowSpec> expandQueryRows(
    const trace::TraceBundle &bundle, const Query &query);

/** Log2 bucket index of duration @p d (ns), capped at the top. */
inline unsigned
durationHistogramBucket(sim::SimDuration d)
{
    unsigned bucket = 0;
    while (d > 1 && bucket + 1 < kDurationHistogramBuckets) {
        d >>= 1;
        ++bucket;
    }
    return bucket;
}

/** The final value fold of the concurrency-profile metrics. */
inline double
metricFromProfile(QueryMetric metric, const ConcurrencyProfile &p)
{
    return metric == QueryMetric::Tlp ? p.tlp()
                                      : 1.0 - p.idleFraction();
}

/** The final value fold of the GPU metric (engine < 0: aggregate). */
inline double
engineOccupancyPercent(const GpuUtilization &util, int engine)
{
    if (engine < 0)
        return util.utilizationPercent();
    double ratio = util.perEngine[static_cast<unsigned>(engine)];
    return (ratio > 1.0 ? 1.0 : ratio) * 100.0;
}

/** The final value fold of the context-switch-rate metric. */
inline double
contextSwitchRate(std::uint64_t count, sim::SimDuration window)
{
    return static_cast<double>(count) / sim::toSeconds(window);
}

/**
 * Busy bursts of @p spec in stream order (unsorted, inverted bursts
 * dropped): the reference implementation the planner's sorted burst
 * columns are tested against.
 */
std::vector<Interval> collectBursts(const trace::TraceBundle &bundle,
                                    const TimelineSpec &spec);

/**
 * Ready-wait intervals of @p spec in stream order: one
 * [readyTime, timestamp) interval per target switch-in, zero-length
 * waits included (the latency mean counts every dispatch). Inverted
 * ready times are clamped to the timestamp, mirroring the lenient
 * readers, so a hand-built bundle cannot wrap the wait. The
 * reference the planner's end-sorted wait columns are tested
 * against.
 */
std::vector<Interval> collectWaits(const trace::TraceBundle &bundle,
                                   const TimelineSpec &spec);

/**
 * Integer fold of the ready-wait metrics over one window: wait time
 * overlapping [t0, t1), plus the full latency and count of the
 * dispatches whose switch-in lands inside it. All sums are integer
 * nanoseconds, so the reference sweep (stream order) and the
 * planner's sorted columns produce bit-identical folds.
 */
struct WaitFold
{
    std::uint64_t overlapNs = 0;
    std::uint64_t latencyNs = 0;
    std::uint64_t dispatches = 0;
};

/** Accumulate @p waits (as collectWaits emits them) over a window. */
WaitFold foldWaits(const std::vector<Interval> &waits, sim::SimTime t0,
                   sim::SimTime t1);

/** The final value fold of the ready-wait metrics. */
inline double
waitMetricValue(QueryMetric metric, const WaitFold &fold,
                sim::SimDuration window)
{
    switch (metric) {
      case QueryMetric::WaitFraction:
        return sim::toSeconds(fold.overlapNs) / sim::toSeconds(window);
      case QueryMetric::ReadyLatency:
        return fold.dispatches == 0
                   ? 0.0
                   : sim::toSeconds(fold.latencyNs) /
                         static_cast<double>(fold.dispatches);
      default:
        return sim::toSeconds(fold.overlapNs);
    }
}

/**
 * Reference concurrency profile for an arbitrary filter: the legacy
 * fatal checks plus one direct sweep (warning emitted, as legacy
 * always did). With a default-shaped spec this is exactly
 * legacy::computeConcurrency.
 */
ConcurrencyProfile referenceConcurrency(
    const trace::TraceBundle &bundle, const TimelineSpec &spec,
    sim::SimTime t0, sim::SimTime t1);

} // namespace detail

} // namespace deskpar::analysis

#endif // DESKPAR_ANALYSIS_QUERY_HH

#include "analysis/service.hh"

#include <utility>

#include "sim/logging.hh"
#include "trace/filter.hh"

namespace deskpar::analysis {

namespace {

/**
 * replayJob's pid resolution, verbatim: empty prefix means "the
 * application processes", and a trace with no match is a trace
 * problem (TraceParseError), not a usage problem.
 */
trace::PidSet
resolveReplayPids(const Session &session, const std::string &path,
                  const std::string &appPrefix)
{
    trace::PidSet pids =
        appPrefix.empty()
            ? trace::allApplicationPids(session.bundle())
            : trace::pidsWithPrefix(session.bundle(), appPrefix);
    if (pids.empty()) {
        trace::ParseError err;
        err.source = path;
        err.section = "replay";
        err.reason = appPrefix.empty()
                         ? "trace contains no application processes"
                         : "no process name starts with '" +
                               appPrefix + "'";
        throw trace::TraceParseError(std::move(err));
    }
    return pids;
}

/**
 * The system-wide-capable resolution of bottlenecks/series/frames:
 * empty prefix selects everything, a non-matching prefix is a usage
 * error with `deskpar bottlenecks`' message.
 */
trace::PidSet
resolveScopePids(const Session &session, const std::string &appPrefix)
{
    if (appPrefix.empty())
        return trace::PidSet{};
    trace::PidSet pids = session.pids(appPrefix);
    if (pids.empty())
        // Raw FatalError (no "fatal: " prefix): the CLI's top-level
        // handler prints "deskpar: <what>", and this message must
        // stay byte-identical to the pre-Service bottlenecks error.
        throw FatalError("no process name matches prefix '" +
                         appPrefix + "'");
    return pids;
}

/** Degraded-ingest flags shared by every result struct. */
template <typename Result>
void
noteIngest(Result &result, const SessionCache::Lease &lease)
{
    result.warm = lease.warm;
    if (lease.report && !lease.report->ok()) {
        result.degraded = true;
        result.degradedSummary = lease.report->summary();
    }
}

} // namespace

const char *
serviceSeriesKindName(ServiceSeriesKind kind)
{
    switch (kind) {
      case ServiceSeriesKind::Tlp:
        return "tlp";
      case ServiceSeriesKind::Concurrency:
        return "concurrency";
      case ServiceSeriesKind::GpuUtil:
        return "gpu_util";
      case ServiceSeriesKind::FrameRate:
        return "frame_rate";
    }
    return "tlp";
}

Service::Service(const Options &options)
    : cache_(options.cache)
{}

SessionCache::Lease
Service::open(const ServiceTraceRequest &request)
{
    return cache_.acquire(request.path,
                          request.lenient
                              ? trace::ParseMode::Lenient
                              : trace::ParseMode::Strict);
}

ServiceAnalyzeResult
Service::analyze(const ServiceTraceRequest &request)
{
    SessionCache::Lease lease = open(request);
    trace::PidSet pids = resolveReplayPids(
        *lease.session, request.path, request.appPrefix);

    ServiceAnalyzeResult result;
    result.path = request.path;
    result.appPrefix = request.appPrefix;
    result.metrics = lease.session->app(pids);
    result.ingest = lease.ingest;
    result.events = lease.session->bundle().totalEvents();
    noteIngest(result, lease);
    return result;
}

ServiceQueryResult
Service::query(const ServiceQueryRequest &request)
{
    if (request.specs.empty())
        fatal("query: no query specs given");
    std::vector<Query> queries;
    queries.reserve(request.specs.size());
    for (const std::string &spec : request.specs)
        queries.push_back(parseQuerySpec(spec));

    SessionCache::Lease lease = open(request.trace);
    QueryPlan plan = lease.session->plan(queries);

    ServiceQueryResult result;
    if (request.explain)
        result.explainText = plan.explain().str();
    result.results = plan.run(request.trace.jobs);
    noteIngest(result, lease);
    return result;
}

ServiceBottlenecksResult
Service::bottlenecks(const ServiceBottlenecksRequest &request)
{
    SessionCache::Lease lease = open(request.trace);
    trace::PidSet pids =
        resolveScopePids(*lease.session, request.trace.appPrefix);

    ServiceBottlenecksResult result;
    result.report =
        lease.session->bottlenecks(pids, request.trace.jobs);
    result.top = request.top;
    noteIngest(result, lease);
    return result;
}

ServiceSeriesResult
Service::series(const ServiceSeriesRequest &request)
{
    if (request.window == 0)
        fatal("series: window must be positive");
    SessionCache::Lease lease = open(request.trace);
    trace::PidSet pids =
        resolveScopePids(*lease.session, request.trace.appPrefix);

    ServiceSeriesResult result;
    result.kind = request.kind;
    switch (request.kind) {
      case ServiceSeriesKind::Tlp:
        result.series =
            lease.session->tlpSeries(pids, request.window);
        break;
      case ServiceSeriesKind::Concurrency:
        result.series =
            lease.session->concurrencySeries(pids, request.window);
        break;
      case ServiceSeriesKind::GpuUtil:
        result.series =
            lease.session->gpuUtilSeries(pids, request.window);
        break;
      case ServiceSeriesKind::FrameRate:
        result.series =
            lease.session->frameRateSeries(pids, request.window);
        break;
    }
    noteIngest(result, lease);
    return result;
}

ServiceFramesResult
Service::frames(const ServiceFramesRequest &request)
{
    SessionCache::Lease lease = open(request.trace);
    trace::PidSet pids =
        resolveScopePids(*lease.session, request.trace.appPrefix);

    ServiceFramesResult result;
    result.frames = lease.session->frameStats(pids);
    noteIngest(result, lease);
    return result;
}

void
Service::invalidate(const std::string &path)
{
    cache_.invalidate(path);
}

} // namespace deskpar::analysis

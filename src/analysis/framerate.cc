#include "analysis/framerate.hh"

#include <algorithm>
#include <vector>

#include "analysis/stats.hh"
#include "analysis/session.hh"
#include "analysis/trace_index.hh"

namespace deskpar::analysis {

namespace legacy {

FrameStats
computeFrameStats(const TraceBundle &bundle, const PidSet &pids)
{
    FrameStats stats;
    std::vector<sim::SimTime> times;

    for (const auto &frame : bundle.frames) {
        if (!pids.empty() && pids.count(frame.pid) == 0)
            continue;
        ++stats.frames;
        if (frame.synthesized)
            ++stats.synthesizedFrames;
        times.push_back(frame.timestamp);
    }
    if (stats.frames == 0)
        return stats;

    double span = sim::toSeconds(bundle.duration());
    if (span > 0.0)
        stats.avgFps = static_cast<double>(stats.frames) / span;

    if (times.size() < 2)
        return stats;
    std::sort(times.begin(), times.end());

    std::vector<double> gaps;
    gaps.reserve(times.size() - 1);
    RunningStat fps;
    for (std::size_t i = 1; i < times.size(); ++i) {
        auto gap = static_cast<double>(times[i] - times[i - 1]);
        if (gap <= 0.0)
            continue;
        gaps.push_back(gap);
        fps.add(1e9 / gap);
    }
    stats.fpsStddev = fps.stddev();

    if (!gaps.empty()) {
        std::sort(gaps.begin(), gaps.end());
        // Worst 1% of gaps: take the 99th-percentile gap length.
        std::size_t idx = (gaps.size() * 99) / 100;
        if (idx >= gaps.size())
            idx = gaps.size() - 1;
        stats.onePercentLowFps = 1e9 / gaps[idx];
    }
    return stats;
}

} // namespace legacy

FrameStats
computeFrameStats(const TraceBundle &bundle, const PidSet &pids)
{
    return Session(bundle).frameStats(pids);
}

} // namespace deskpar::analysis

#include "analysis/gpu_queue.hh"

namespace deskpar::analysis {

GpuQueueStats
computeGpuQueueStats(const trace::TraceBundle &bundle,
                     const trace::PidSet &pids)
{
    GpuQueueStats out;
    std::array<RunningStat, trace::kNumGpuEngines> perEngine;

    for (const auto &e : bundle.gpuPackets) {
        if (!pids.empty() && pids.count(e.pid) == 0)
            continue;
        ++out.packets;
        auto wait = static_cast<double>(e.start - e.queued);
        auto exec = static_cast<double>(e.finish - e.start);
        out.waitNs.add(wait);
        out.execNs.add(exec);
        if (wait > 0.0)
            ++out.delayedPackets;
        perEngine[static_cast<unsigned>(e.engine)].add(wait);
    }
    for (unsigned i = 0; i < trace::kNumGpuEngines; ++i)
        out.meanWaitPerEngine[i] = perEngine[i].mean();
    return out;
}

} // namespace deskpar::analysis

/**
 * @file
 * High-level analysis entry points: summarize one trace into the
 * paper's per-application metrics, and aggregate repeated iterations
 * into mean / standard deviation rows (Table II reports avg and sigma
 * of 3 iterations).
 */

#ifndef DESKPAR_ANALYSIS_ANALYZER_HH
#define DESKPAR_ANALYSIS_ANALYZER_HH

#include <string>
#include <vector>

#include "analysis/framerate.hh"
#include "analysis/gpu_util.hh"
#include "analysis/stats.hh"
#include "analysis/tlp.hh"

namespace deskpar::analysis {

class TraceIndex;

/**
 * Metrics of one application in one trace (one iteration).
 */
struct AppMetrics
{
    ConcurrencyProfile concurrency;
    GpuUtilization gpu;
    FrameStats frames;

    double tlp() const { return concurrency.tlp(); }
    double gpuUtilPercent() const { return gpu.utilizationPercent(); }
};

/**
 * Analyze @p bundle for the application consisting of processes whose
 * names start with @p process_prefix (empty = system-wide).
 *
 * The bundle overloads build one TraceIndex internally and run the
 * fused sweep; callers analyzing the same bundle repeatedly (e.g.
 * multiple iterations or app + system views) should build the index
 * once and use the index overloads.
 *
 * @deprecated Thin shim over a throwaway analysis::Session; callers
 * issuing more than one query per bundle should hold a Session
 * (analysis/session.hh).
 */
AppMetrics analyzeApp(const TraceBundle &bundle,
                      const std::string &process_prefix);

/** Analyze with an explicit pid set. */
AppMetrics analyzeApp(const TraceBundle &bundle, const PidSet &pids);

/**
 * Index-backed fused analysis: one cswitch sweep, one frame sweep and
 * one GPU column build fill every AppMetrics field (columns are
 * reused when already cached on the index).
 */
AppMetrics analyzeApp(const TraceIndex &index,
                      const std::string &process_prefix);

/** Index-backed variant with an explicit pid set. */
AppMetrics analyzeApp(const TraceIndex &index, const PidSet &pids);

/**
 * Aggregate of N iterations of one application: the Table II row.
 */
struct IterationAggregate
{
    std::string app;
    RunningStat tlp;
    RunningStat gpuUtil;
    RunningStat maxConcurrency;
    /** Mean execution-time fractions c_0 .. c_n across iterations. */
    std::vector<double> meanC;
    bool gpuOverlapped = false;

    /** Fold one iteration's metrics in. */
    void add(const AppMetrics &metrics);
};

} // namespace deskpar::analysis

#endif // DESKPAR_ANALYSIS_ANALYZER_HH

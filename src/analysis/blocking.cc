#include "analysis/blocking.hh"

#include <algorithm>
#include <cstdio>
#include <map>
#include <tuple>
#include <utility>
#include <vector>

#include "analysis/session.hh"
#include "analysis/trace_index.hh"
#include "obs/obs.hh"
#include "sim/parallel.hh"

namespace deskpar::analysis::blocking {

using sim::SimTime;
using trace::Pid;
using trace::Tid;

namespace {

using Key = std::pair<Pid, Tid>;

struct EdgeAgg
{
    std::uint64_t count = 0;
    std::uint64_t waitNs = 0;
};

struct ChainState
{
    std::uint64_t chainNs = 0;
    std::uint64_t links = 0;
    Key prev{0, 0};
    bool hasPrev = false;
};

/**
 * Everything one deterministic pass over the cswitch stream yields.
 * The per-thread wait/run folds are *not* done here — the wait
 * samples stay a flat stream-ordered vector so the two analyze()
 * flavors can fold them differently (inline maps vs parallelFor)
 * and still land on identical integer sums.
 */
struct SweepResult
{
    std::map<Key, std::uint64_t> runNs;
    std::map<Key, std::uint64_t> blockedNs;
    std::map<std::pair<Key, Key>, EdgeAgg> edges;
    std::map<Key, ChainState> chains;
    /** (thread, wait ns) per target switch-in, stream order. */
    std::vector<std::pair<Key, std::uint64_t>> waitSamples;
    std::uint64_t totalRunNs = 0;
    std::uint64_t totalWaitNs = 0;
    /**
     * Observed stream extent and CPU population — the fallback
     * window when the bundle header is empty (bare CPU-Usage CSVs
     * carry no startTime/stopTime/numLogicalCpus).
     */
    SimTime minTs = 0;
    SimTime maxTs = 0;
    std::size_t cpusSeen = 0;
    bool sawEvents = false;
};

/**
 * The chain sweep: a per-CPU running-thread state machine over the
 * cswitch stream. Both analyze() flavors run this exact sequential
 * code — the serialization chain is a DP whose order matters, so it
 * cannot fan out; only the per-thread folds afterwards can.
 */
void
sweep(const trace::TraceBundle &bundle, const trace::PidSet &pids,
      SweepResult &r)
{
    auto target = [&pids](Pid pid, Tid tid) {
        (void)tid;
        if (pid == 0)
            return false;
        return pids.empty() || pids.count(pid) != 0;
    };

    struct Occupant
    {
        Pid pid = 0;
        Tid tid = 0;
        SimTime since = 0;
        bool valid = false;
    };
    // Ordered so the end-of-stream close below visits CPUs
    // deterministically.
    std::map<trace::CpuId, Occupant> cpus;

    auto closeSegment = [&r, &target](const Occupant &occ,
                                      SimTime now) {
        // Disordered streams can invert a segment; drop it rather
        // than wrap the unsigned subtraction.
        if (!occ.valid || now <= occ.since)
            return;
        if (!target(occ.pid, occ.tid))
            return;
        std::uint64_t seg = now - occ.since;
        Key key{occ.pid, occ.tid};
        r.runNs[key] += seg;
        r.totalRunNs += seg;
        r.chains[key].chainNs += seg;
    };

    for (const auto &e : bundle.cswitches) {
        if (!r.sawEvents) {
            r.minTs = e.timestamp;
            r.maxTs = e.timestamp;
            r.sawEvents = true;
        } else {
            r.minTs = std::min(r.minTs, e.timestamp);
            r.maxTs = std::max(r.maxTs, e.timestamp);
        }
        Occupant &occ = cpus[e.cpu];
        closeSegment(occ, e.timestamp);

        if (target(e.newPid, e.newTid)) {
            // Readers clamp inverted ready times; clamp again so a
            // hand-built bundle cannot wrap the wait.
            SimTime ready = std::min(e.readyTime, e.timestamp);
            std::uint64_t wait = e.timestamp - ready;
            Key to{e.newPid, e.newTid};
            r.waitSamples.emplace_back(to, wait);
            r.totalWaitNs += wait;
            if (e.oldPid != 0 && target(e.oldPid, e.oldTid)) {
                // The wakeup edge: old held this CPU for the tail of
                // the wait, so the chain may continue through it.
                Key from{e.oldPid, e.oldTid};
                EdgeAgg &edge = r.edges[{from, to}];
                ++edge.count;
                edge.waitNs += wait;
                r.blockedNs[from] += wait;
                ChainState &fromChain = r.chains[from];
                ChainState &toChain = r.chains[to];
                if (fromChain.chainNs > toChain.chainNs) {
                    toChain.chainNs = fromChain.chainNs;
                    toChain.links = fromChain.links + 1;
                    toChain.prev = from;
                    toChain.hasPrev = true;
                }
            }
        }

        if (e.newPid == 0) {
            occ.valid = false;
        } else {
            occ = Occupant{e.newPid, e.newTid, e.timestamp, true};
        }
    }

    // Threads still on a CPU when the trace stops: their final
    // segment runs to the observation-window end (the header's if it
    // has one, else the last timestamp the stream showed us).
    SimTime stop = std::max(bundle.stopTime, r.maxTs);
    for (const auto &[cpu, occ] : cpus)
        closeSegment(occ, stop);
    r.cpusSeen = cpus.size();
}

std::string
threadName(const trace::TraceBundle &bundle, Pid pid)
{
    auto it = bundle.processNames.find(pid);
    if (it != bundle.processNames.end() && !it->second.empty())
        return it->second;
    return "pid" + std::to_string(pid);
}

/**
 * Sorting, totals, edge flattening, and critical-path extraction —
 * identical in both flavors, and pure integer/string work.
 */
void
finalize(const trace::TraceBundle &bundle, SweepResult &r,
         std::vector<ThreadBlocking> rows, BlockingReport &report)
{
    // Headerless bundles (bare CPU-Usage CSVs) get the observed
    // stream extent so the wait-TLP and serial-fraction ratios stay
    // meaningful; ETL headers win when present.
    if (bundle.stopTime > bundle.startTime) {
        report.t0 = bundle.startTime;
        report.t1 = std::max(bundle.stopTime, r.maxTs);
    } else if (r.sawEvents) {
        report.t0 = r.minTs;
        report.t1 = r.maxTs;
    }
    report.numCpus = bundle.numLogicalCpus != 0
                         ? bundle.numLogicalCpus
                         : static_cast<unsigned>(r.cpusSeen);
    report.totalRunNs = r.totalRunNs;
    report.totalWaitNs = r.totalWaitNs;
    report.dispatches = r.waitSamples.size();

    for (ThreadBlocking &row : rows)
        row.name = threadName(bundle, row.pid);
    std::sort(rows.begin(), rows.end(),
              [](const ThreadBlocking &a, const ThreadBlocking &b) {
                  if (a.waitNs != b.waitNs)
                      return a.waitNs > b.waitNs;
                  if (a.pid != b.pid)
                      return a.pid < b.pid;
                  return a.tid < b.tid;
              });
    report.threads = std::move(rows);

    report.edges.reserve(r.edges.size());
    for (const auto &[key, agg] : r.edges) {
        WakeupEdge edge;
        edge.fromPid = key.first.first;
        edge.fromTid = key.first.second;
        edge.toPid = key.second.first;
        edge.toTid = key.second.second;
        edge.count = agg.count;
        edge.waitNs = agg.waitNs;
        report.edges.push_back(edge);
    }
    std::sort(report.edges.begin(), report.edges.end(),
              [](const WakeupEdge &a, const WakeupEdge &b) {
                  if (a.waitNs != b.waitNs)
                      return a.waitNs > b.waitNs;
                  return std::tie(a.fromPid, a.fromTid, a.toPid,
                                  a.toTid) <
                         std::tie(b.fromPid, b.fromTid, b.toPid,
                                  b.toTid);
              });

    // Critical path: the thread whose chain is longest; ties resolve
    // to the lowest (pid, tid) by map order. The predecessor
    // pointers summarize a DP whose state mutates as the sweep
    // advances, so the backwalk is a bounded summary, not an exact
    // segment list.
    Key best{0, 0};
    const ChainState *bestChain = nullptr;
    for (const auto &[key, chain] : r.chains) {
        if (!bestChain || chain.chainNs > bestChain->chainNs) {
            best = key;
            bestChain = &chain;
        }
    }
    if (bestChain && bestChain->chainNs > 0) {
        report.criticalPathNs = bestChain->chainNs;
        report.criticalPathSwitches = bestChain->links;
        std::vector<CriticalPathHop> hops;
        Key cur = best;
        for (std::size_t i = 0; i < 64; ++i) {
            hops.push_back(CriticalPathHop{cur.first, cur.second});
            auto it = r.chains.find(cur);
            if (it == r.chains.end() || !it->second.hasPrev)
                break;
            cur = it->second.prev;
        }
        std::reverse(hops.begin(), hops.end());
        report.criticalPath = std::move(hops);
    }
}

std::uint64_t
lookupNs(const std::map<Key, std::uint64_t> &map, Key key)
{
    auto it = map.find(key);
    return it == map.end() ? 0 : it->second;
}

/** Sorted distinct thread keys the report must have rows for. */
std::vector<Key>
threadKeys(const SweepResult &r)
{
    std::vector<Key> keys;
    for (const auto &[key, ns] : r.runNs)
        keys.push_back(key);
    for (const auto &[key, ns] : r.blockedNs)
        keys.push_back(key);
    for (const auto &[key, wait] : r.waitSamples)
        keys.push_back(key);
    std::sort(keys.begin(), keys.end());
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
    return keys;
}

} // namespace

double
BlockingReport::windowSeconds() const
{
    return sim::toSeconds(t1 - t0);
}

double
BlockingReport::waitTlp() const
{
    double window = windowSeconds();
    return window > 0.0 ? sim::toSeconds(totalWaitNs) / window : 0.0;
}

double
BlockingReport::serialFraction() const
{
    double window = windowSeconds();
    return window > 0.0 ? sim::toSeconds(criticalPathNs) / window
                        : 0.0;
}

const char *
BlockingReport::classification() const
{
    return bottleneckLimited() ? "bottleneck-limited"
                               : "structurally serial";
}

namespace legacy {

BlockingReport
analyze(const trace::TraceBundle &bundle, const trace::PidSet &pids)
{
    SweepResult r;
    sweep(bundle, pids, r);

    // Inline sequential fold: one ordered map, stream-order adds.
    struct WaitAgg
    {
        std::uint64_t waitNs = 0;
        std::uint64_t maxWaitNs = 0;
        std::uint64_t dispatches = 0;
    };
    std::map<Key, WaitAgg> waits;
    for (const auto &[key, wait] : r.waitSamples) {
        WaitAgg &agg = waits[key];
        agg.waitNs += wait;
        agg.maxWaitNs = std::max(agg.maxWaitNs, wait);
        ++agg.dispatches;
    }

    std::vector<ThreadBlocking> rows;
    for (Key key : threadKeys(r)) {
        ThreadBlocking row;
        row.pid = key.first;
        row.tid = key.second;
        row.runNs = lookupNs(r.runNs, key);
        row.blockedNs = lookupNs(r.blockedNs, key);
        auto it = waits.find(key);
        if (it != waits.end()) {
            row.waitNs = it->second.waitNs;
            row.maxWaitNs = it->second.maxWaitNs;
            row.dispatches = it->second.dispatches;
        }
        rows.push_back(std::move(row));
    }

    BlockingReport report;
    finalize(bundle, r, std::move(rows), report);
    return report;
}

} // namespace legacy

BlockingReport
analyze(const TraceIndex &index, const trace::PidSet &pids,
        unsigned threads)
{
    const trace::TraceBundle &bundle = index.bundle();
    obs::Span span("blocking.analyze", obs::SpanKind::Query,
                   bundle.cswitches.size());

    SweepResult r;
    sweep(bundle, pids, r);

    // Bucket the stream-ordered wait samples per thread (sequential,
    // cheap), then fold every thread's bucket concurrently. Each
    // task owns its row outright, and the per-thread sample order is
    // the stream order legacy folds in — integer sums, so any
    // DESKPAR_JOBS lands on the identical report.
    std::vector<Key> keys = threadKeys(r);
    std::map<Key, std::size_t> indexOf;
    for (std::size_t i = 0; i < keys.size(); ++i)
        indexOf.emplace(keys[i], i);
    std::vector<std::vector<std::uint64_t>> samples(keys.size());
    for (const auto &[key, wait] : r.waitSamples)
        samples[indexOf.find(key)->second].push_back(wait);

    std::vector<ThreadBlocking> rows(keys.size());
    unsigned jobs = sim::resolveJobs(threads);
    sim::parallelFor(jobs, keys.size(), [&](std::size_t i) {
        ThreadBlocking &row = rows[i];
        row.pid = keys[i].first;
        row.tid = keys[i].second;
        row.runNs = lookupNs(r.runNs, keys[i]);
        row.blockedNs = lookupNs(r.blockedNs, keys[i]);
        for (std::uint64_t wait : samples[i]) {
            row.waitNs += wait;
            row.maxWaitNs = std::max(row.maxWaitNs, wait);
            ++row.dispatches;
        }
    });

    BlockingReport report;
    finalize(bundle, r, std::move(rows), report);
    return report;
}

BlockingReport
analyze(const Session &session, const trace::PidSet &pids,
        unsigned threads)
{
    return analyze(session.index(), pids, threads);
}

namespace {

std::string
fmtMs(std::uint64_t ns)
{
    char buf[48];
    std::snprintf(buf, sizeof buf, "%.3f",
                  static_cast<double>(ns) / 1e6);
    return buf;
}

std::string
fmt3(double v)
{
    char buf[48];
    std::snprintf(buf, sizeof buf, "%.3f", v);
    return buf;
}

std::string
threadLabel(const ThreadBlocking &t)
{
    return t.name + "/tid" + std::to_string(t.tid);
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x", c);
            out += buf;
            continue;
        }
        out += c;
    }
    return out;
}

const ThreadBlocking *
findThread(const BlockingReport &report, Pid pid, Tid tid)
{
    for (const ThreadBlocking &t : report.threads) {
        if (t.pid == pid && t.tid == tid)
            return &t;
    }
    return nullptr;
}

std::string
hopLabel(const BlockingReport &report, const CriticalPathHop &hop)
{
    if (const ThreadBlocking *t =
            findThread(report, hop.pid, hop.tid))
        return threadLabel(*t);
    return "pid" + std::to_string(hop.pid) + "/tid" +
           std::to_string(hop.tid);
}

} // namespace

std::string
renderReport(const BlockingReport &report, std::size_t top)
{
    std::string out;
    out += "window " + fmt3(report.windowSeconds()) + " s, " +
           std::to_string(report.numCpus) + " cpus, " +
           std::to_string(report.dispatches) + " dispatches\n";
    out += "on-cpu " + fmtMs(report.totalRunNs) + " ms, ready-wait " +
           fmtMs(report.totalWaitNs) + " ms (wait-TLP " +
           fmt3(report.waitTlp()) + ")\n";
    out += "critical path " + fmtMs(report.criticalPathNs) +
           " ms across " +
           std::to_string(report.criticalPathSwitches) +
           " wakeups (serial fraction " +
           fmt3(report.serialFraction()) + ")\n";
    out += std::string("classification: ") + report.classification() +
           "\n";

    out += "\ntop blocked threads (victims):\n";
    std::size_t shown = 0;
    for (const ThreadBlocking &t : report.threads) {
        if (shown >= top)
            break;
        if (t.waitNs == 0)
            break; // sorted by waitNs: nothing further waited
        ++shown;
        out += "  " + threadLabel(t) + "  wait " + fmtMs(t.waitNs) +
               " ms over " + std::to_string(t.dispatches) +
               " dispatches (max " + fmtMs(t.maxWaitNs) +
               " ms), on-cpu " + fmtMs(t.runNs) + " ms\n";
    }
    if (shown == 0)
        out += "  (none)\n";

    out += "\ntop blocking threads (culprits):\n";
    std::vector<const ThreadBlocking *> culprits;
    for (const ThreadBlocking &t : report.threads) {
        if (t.blockedNs > 0)
            culprits.push_back(&t);
    }
    std::sort(culprits.begin(), culprits.end(),
              [](const ThreadBlocking *a, const ThreadBlocking *b) {
                  if (a->blockedNs != b->blockedNs)
                      return a->blockedNs > b->blockedNs;
                  if (a->pid != b->pid)
                      return a->pid < b->pid;
                  return a->tid < b->tid;
              });
    if (culprits.size() > top)
        culprits.resize(top);
    for (const ThreadBlocking *t : culprits) {
        out += "  " + threadLabel(*t) + "  others waited " +
               fmtMs(t->blockedNs) + " ms behind it, on-cpu " +
               fmtMs(t->runNs) + " ms\n";
    }
    if (culprits.empty())
        out += "  (none)\n";

    out += "\nhottest wakeup edges:\n";
    std::size_t edgeCount = std::min(top, report.edges.size());
    for (std::size_t i = 0; i < edgeCount; ++i) {
        const WakeupEdge &e = report.edges[i];
        if (e.waitNs == 0)
            break;
        std::string from = "pid" + std::to_string(e.fromPid) +
                           "/tid" + std::to_string(e.fromTid);
        std::string to = "pid" + std::to_string(e.toPid) + "/tid" +
                         std::to_string(e.toTid);
        if (const ThreadBlocking *t =
                findThread(report, e.fromPid, e.fromTid))
            from = threadLabel(*t);
        if (const ThreadBlocking *t =
                findThread(report, e.toPid, e.toTid))
            to = threadLabel(*t);
        out += "  " + from + " -> " + to + "  " + fmtMs(e.waitNs) +
               " ms over " + std::to_string(e.count) + " wakeups" +
               (e.fromPid == e.toPid && e.fromTid == e.toTid
                    ? " (self)"
                    : "") +
               "\n";
    }
    if (edgeCount == 0 ||
        (edgeCount > 0 && report.edges[0].waitNs == 0))
        out += "  (none)\n";

    out += "\ncritical path (root -> terminal):\n";
    if (report.criticalPath.empty()) {
        out += "  (empty)\n";
    } else {
        // The backwalk can cycle through a tight wakeup loop for all
        // 64 capped hops; the text report shows the head and tail of
        // the path instead of the full loop (the JSON has it all).
        constexpr std::size_t kMaxHops = 12;
        std::size_t n = report.criticalPath.size();
        if (n <= kMaxHops) {
            for (const CriticalPathHop &hop : report.criticalPath)
                out += "  " + hopLabel(report, hop) + "\n";
        } else {
            for (std::size_t i = 0; i < kMaxHops - 2; ++i)
                out += "  " +
                       hopLabel(report, report.criticalPath[i]) +
                       "\n";
            out += "  ... (" +
                   std::to_string(n - (kMaxHops - 1)) +
                   " more hops)\n";
            out += "  " +
                   hopLabel(report, report.criticalPath[n - 1]) +
                   "\n";
        }
    }
    return out;
}

std::string
renderReportJson(const BlockingReport &report, std::size_t top)
{
    std::string out = "{\n";
    out += "  \"window_s\": " + fmt3(report.windowSeconds()) + ",\n";
    out += "  \"num_cpus\": " + std::to_string(report.numCpus) +
           ",\n";
    out += "  \"dispatches\": " + std::to_string(report.dispatches) +
           ",\n";
    out += "  \"run_ms\": " + fmtMs(report.totalRunNs) + ",\n";
    out += "  \"wait_ms\": " + fmtMs(report.totalWaitNs) + ",\n";
    out += "  \"wait_tlp\": " + fmt3(report.waitTlp()) + ",\n";
    out += "  \"critical_path_ms\": " + fmtMs(report.criticalPathNs) +
           ",\n";
    out += "  \"critical_path_switches\": " +
           std::to_string(report.criticalPathSwitches) + ",\n";
    out += "  \"serial_fraction\": " + fmt3(report.serialFraction()) +
           ",\n";
    out += "  \"classification\": \"" +
           std::string(report.classification()) + "\",\n";

    out += "  \"threads\": [\n";
    std::size_t count = std::min(top, report.threads.size());
    for (std::size_t i = 0; i < count; ++i) {
        const ThreadBlocking &t = report.threads[i];
        out += "    {\"pid\": " + std::to_string(t.pid) +
               ", \"tid\": " + std::to_string(t.tid) +
               ", \"name\": \"" + jsonEscape(t.name) +
               "\", \"run_ms\": " + fmtMs(t.runNs) +
               ", \"wait_ms\": " + fmtMs(t.waitNs) +
               ", \"max_wait_ms\": " + fmtMs(t.maxWaitNs) +
               ", \"blocked_behind_ms\": " + fmtMs(t.blockedNs) +
               ", \"dispatches\": " + std::to_string(t.dispatches) +
               "}";
        out += i + 1 < count ? ",\n" : "\n";
    }
    out += "  ],\n";

    out += "  \"edges\": [\n";
    count = std::min(top, report.edges.size());
    for (std::size_t i = 0; i < count; ++i) {
        const WakeupEdge &e = report.edges[i];
        out += "    {\"from_pid\": " + std::to_string(e.fromPid) +
               ", \"from_tid\": " + std::to_string(e.fromTid) +
               ", \"to_pid\": " + std::to_string(e.toPid) +
               ", \"to_tid\": " + std::to_string(e.toTid) +
               ", \"count\": " + std::to_string(e.count) +
               ", \"wait_ms\": " + fmtMs(e.waitNs) + "}";
        out += i + 1 < count ? ",\n" : "\n";
    }
    out += "  ],\n";

    out += "  \"critical_path\": [";
    for (std::size_t i = 0; i < report.criticalPath.size(); ++i) {
        const CriticalPathHop &hop = report.criticalPath[i];
        out += i == 0 ? "" : ", ";
        out += "{\"pid\": " + std::to_string(hop.pid) +
               ", \"tid\": " + std::to_string(hop.tid) + "}";
    }
    out += "]\n";
    out += "}\n";
    return out;
}

} // namespace deskpar::analysis::blocking

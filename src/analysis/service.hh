/**
 * @file
 * The unified request API of the analysis layer: typed request
 * structs in, typed result structs out, one implementation shared by
 * every front end.
 *
 * Before this facade, each CLI subcommand hand-rolled the same
 * open-trace / check-report / resolve-pids / run / emit sequence
 * with small accidental differences (exit codes, degraded handling,
 * error text). A Service centralizes that sequence once:
 *
 *   request struct  ->  Service method  ->  result struct
 *
 * and the callers — `deskpar query/bottlenecks/replay --json`, the
 * `deskpar serve` request demultiplexer, tests — only decide how to
 * render the result (report/documents.hh renders each result struct
 * as the one JSON schema both the CLI and the server emit).
 *
 * Traces are opened through a resident SessionCache, so a Service
 * embedded in the server answers repeat requests against the same
 * file from memory. Results are computed with the same Session calls
 * the one-shot CLI paths use, so a served response is byte-identical
 * (after rendering) to the equivalent cold CLI invocation.
 *
 * Errors are exceptions: TraceParseError for trace-content problems
 * (including "no matching process", matching replayJob), FatalError
 * for user errors (bad spec, bad prefix, unreadable file). Callers
 * map them to exit codes or error envelopes.
 */

#ifndef DESKPAR_ANALYSIS_SERVICE_HH
#define DESKPAR_ANALYSIS_SERVICE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/analyzer.hh"
#include "analysis/blocking.hh"
#include "analysis/query.hh"
#include "analysis/session_cache.hh"
#include "analysis/timeseries.hh"

namespace deskpar::analysis {

/** How a request names and opens its trace; common to every op. */
struct ServiceTraceRequest
{
    std::string path;
    /**
     * Process-name prefix selecting the app. Meaning matches the
     * command each op mirrors: analyze treats empty as "every
     * application process" (and fails on a trace with none, like
     * replay); bottlenecks/series/frames treat empty as system-wide.
     */
    std::string appPrefix;
    bool lenient = false;
    /**
     * Worker threads for the metric computation (not the ingest).
     * Server requests keep the default 1 so each request stays on
     * its own worker and per-request diagnostics stay exact; the
     * CLI passes its --jobs through (0 = DESKPAR_JOBS / hardware).
     */
    unsigned jobs = 1;
};

/** `deskpar replay`'s per-file numbers, served resident. */
struct ServiceAnalyzeResult
{
    std::string path;
    std::string appPrefix;
    AppMetrics metrics;
    trace::IngestStats ingest;
    std::uint64_t events = 0;
    /** Lenient ingest dropped records ("degraded" in replay). */
    bool degraded = false;
    /** Served from the resident cache without an ingest. */
    bool warm = false;
    /** report->summary() of a degraded ingest, else empty. */
    std::string degradedSummary;
};

struct ServiceQueryRequest
{
    ServiceTraceRequest trace;
    /** Compact spec strings (parseQuerySpec syntax). */
    std::vector<std::string> specs;
    bool explain = false;
};

struct ServiceQueryResult
{
    std::vector<QueryResult> results;
    /** plan.explain() text when the request asked for it. */
    std::string explainText;
    bool degraded = false;
    bool warm = false;
    std::string degradedSummary;
};

struct ServiceBottlenecksRequest
{
    ServiceTraceRequest trace;
    /** Rows per report section. */
    std::size_t top = 10;
};

struct ServiceBottlenecksResult
{
    blocking::BlockingReport report;
    std::size_t top = 10;
    bool degraded = false;
    bool warm = false;
    std::string degradedSummary;
};

/** Which per-window curve a series request wants. */
enum class ServiceSeriesKind : std::uint8_t {
    Tlp = 0,
    Concurrency = 1,
    GpuUtil = 2,
    FrameRate = 3,
};

const char *serviceSeriesKindName(ServiceSeriesKind kind);

struct ServiceSeriesRequest
{
    ServiceTraceRequest trace;
    ServiceSeriesKind kind = ServiceSeriesKind::Tlp;
    /** Window width in SimTime ticks (ns). */
    sim::SimDuration window = 0;
};

struct ServiceSeriesResult
{
    ServiceSeriesKind kind = ServiceSeriesKind::Tlp;
    TimeSeries series;
    bool degraded = false;
    bool warm = false;
    std::string degradedSummary;
};

struct ServiceFramesRequest
{
    ServiceTraceRequest trace;
};

struct ServiceFramesResult
{
    FrameStats frames;
    bool degraded = false;
    bool warm = false;
    std::string degradedSummary;
};

class Service
{
  public:
    struct Options
    {
        SessionCacheOptions cache;
    };

    explicit Service(const Options &options = {});

    Service(const Service &) = delete;
    Service &operator=(const Service &) = delete;

    /**
     * Whole-trace app metrics — the numbers `deskpar replay` prints,
     * from the resident cache. Pid resolution and failure text match
     * replayJob exactly: an empty prefix selects every application
     * process, and no match throws TraceParseError (section
     * "replay").
     */
    ServiceAnalyzeResult analyze(const ServiceTraceRequest &request);

    /**
     * Parse, fuse-plan, and run a query batch. Every spec is parsed
     * before the trace is opened (a typo in spec 3 costs nothing),
     * matching `deskpar query`. Throws FatalError on a malformed
     * spec.
     */
    ServiceQueryResult query(const ServiceQueryRequest &request);

    /**
     * Wakeup-chain bottleneck report. Empty prefix = system-wide;
     * a non-matching prefix throws FatalError with the same message
     * `deskpar bottlenecks` prints.
     */
    ServiceBottlenecksResult
    bottlenecks(const ServiceBottlenecksRequest &request);

    /** One windowed curve (TLP / concurrency / GPU util / FPS). */
    ServiceSeriesResult series(const ServiceSeriesRequest &request);

    /** Frame statistics for the selected pids. */
    ServiceFramesResult frames(const ServiceFramesRequest &request);

    /** Drop the resident entry for @p path. */
    void invalidate(const std::string &path);

    SessionCacheStats cacheStats() const { return cache_.stats(); }

  private:
    SessionCache::Lease open(const ServiceTraceRequest &request);

    SessionCache cache_;
};

} // namespace deskpar::analysis

#endif // DESKPAR_ANALYSIS_SERVICE_HH

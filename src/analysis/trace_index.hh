/**
 * @file
 * Columnar trace index: one structure-of-arrays view of a TraceBundle
 * that every metric queries instead of re-sweeping the event vectors.
 *
 * The legacy analyses each performed their own full linear scan, once
 * per pid set and once per time window, so the timeline figures paid
 * O(windows x events) and the Table II suite re-read the same cswitch
 * stream several times per iteration. The index is built once per
 * (bundle, pid set) and answers windowed queries with two binary
 * searches plus prefix-sum differences:
 *
 *  - Concurrency: the cswitch stream is compressed into a sorted
 *    breakpoint column (times[], levels[]), levels[i] holding the
 *    number of busy target CPUs on [times[i], times[i+1)). Strided
 *    checkpoint rows carry per-level prefix sums of busy time, so a
 *    windowed histogram costs two binary searches, two checkpoint
 *    diffs, and at most one stride of edge segments per side.
 *  - GPU: a start-time column plus a running-max finish column bound
 *    the packets that can intersect a window; the candidates are then
 *    folded with the exact legacy loop, in stream order, so the
 *    floating-point sums are bit-identical.
 *  - Frames / responsiveness / power columns are built in the same
 *    fused sweeps and cached per pid set.
 *
 * Every query is bit-identical to the legacy single-sweep functions
 * (analysis::legacy::*): the integer time-at-level decomposition is
 * exact, and floating-point folds reuse the legacy operation order.
 * Traces the index cannot represent faithfully (disordered streams
 * that produce negative concurrency, a query num_cpus differing from
 * the header) transparently fall back to the legacy sweep, panics
 * and all.
 *
 * Thread safety: column builds are serialized on an internal mutex;
 * queries after a build only read. The index borrows the bundle — the
 * caller keeps the bundle alive and unmodified for the index's
 * lifetime.
 */

#ifndef DESKPAR_ANALYSIS_TRACE_INDEX_HH
#define DESKPAR_ANALYSIS_TRACE_INDEX_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/framerate.hh"
#include "analysis/gpu_util.hh"
#include "analysis/power.hh"
#include "analysis/responsiveness.hh"
#include "analysis/tlp.hh"
#include "trace/filter.hh"
#include "trace/session.hh"

namespace deskpar::analysis {

class TraceIndex
{
  public:
    /** Borrow @p bundle; columns are built lazily on first query. */
    explicit TraceIndex(const TraceBundle &bundle);
    ~TraceIndex();

    TraceIndex(const TraceIndex &) = delete;
    TraceIndex &operator=(const TraceIndex &) = delete;

    /** The indexed bundle. */
    const TraceBundle &bundle() const { return bundle_; }

    /**
     * Concurrency histogram over [@p t0, @p t1), same contract as
     * computeConcurrency. Queries with @p num_cpus differing from
     * the bundle header (0 means the header value) fall back to the
     * legacy sweep, as do timelines poisoned by disordered streams.
     */
    ConcurrencyProfile concurrency(const PidSet &pids, sim::SimTime t0,
                                   sim::SimTime t1,
                                   unsigned num_cpus = 0) const;

    /** Whole-bundle window. */
    ConcurrencyProfile concurrency(const PidSet &pids) const;

    /** GPU utilization over [@p t0, @p t1), as computeGpuUtil. */
    GpuUtilization gpuUtil(const PidSet &pids, sim::SimTime t0,
                           sim::SimTime t1) const;

    /** Whole-bundle window. */
    GpuUtilization gpuUtil(const PidSet &pids) const;

    /** Frame statistics, as computeFrameStats (cached per pid set). */
    FrameStats frameStats(const PidSet &pids) const;

    /**
     * Input-to-dispatch latency, as computeResponsiveness, using the
     * cached sorted dispatch column of the pid set.
     */
    Responsiveness responsiveness(const PidSet &pids) const;

    /**
     * Power estimate, as estimatePower, from the cached per-CPU busy
     * intervals and the GPU columns.
     */
    PowerEstimate power(const sim::CpuSpec &cpu,
                        const sim::GpuSpec &gpu) const;

    /**
     * Eagerly build every column the fused analyzeApp sweep needs
     * for @p pids (useful before sharing the index across threads).
     */
    void warm(const PidSet &pids) const;

    /**
     * Emit the out-of-range-cpu warning for @p count excluded events
     * at most once over this index's lifetime (any thread). Queries
     * against one trace used to repeat the warning once per window /
     * per batch entry; the count is still reported per profile via
     * ConcurrencyProfile::outOfRangeCpuEvents. No-op when @p count or
     * @p num_cpus is zero. Used by the index's own column builds and
     * by the fused query planner (query_plan.hh).
     */
    void warnOutOfRangeOnce(std::uint64_t count,
                            unsigned num_cpus) const;

    /**
     * Serialize every built column family — GPU and per-CPU-busy
     * columns (built here if missing), plus each cached pid set's
     * concurrency checkpoints, dispatch column, wait intervals and
     * frame statistics — into a portable byte blob for the on-disk
     * index cache (analysis/index_cache.hh). Returns an empty string
     * when any built timeline is unusable (disordered stream): such
     * an index answers queries through the legacy fallback sweep,
     * which a warm reopen cannot reproduce, so it is not cacheable.
     */
    std::string serializeColumns() const;

    /**
     * Populate a freshly constructed index from a serializeColumns()
     * blob instead of sweeping the bundle. Only legal before any
     * column build (fatal otherwise). Returns false with @p error set
     * when the blob is malformed; the index is left empty and usable
     * for a normal cold build. On success the index is marked
     * restored(): queries against pid sets absent from the blob, and
     * windowed sweeps the checkpoints cannot answer, fail loudly
     * instead of silently recomputing from a bundle whose cswitch
     * stream the cache intentionally omits.
     */
    bool adoptColumns(std::string_view data, std::string *error);

    /** True when the columns came from adoptColumns(). */
    bool restored() const { return restored_; }

    /** True when the cswitch columns of @p pids are already built. */
    bool hasCswitchColumns(const PidSet &pids) const;

    /**
     * Column layouts; defined in trace_index.cc (opaque to callers,
     * named here so the build/query helpers can take them).
     */
    struct PidColumns;
    struct GpuColumns;
    struct CpuBusyColumns;

  private:
    const PidColumns &pidColumns(const PidSet &pids) const;
    const PidColumns &cswitchColumns(const PidSet &pids) const;
    const GpuColumns &gpuColumns() const;
    const CpuBusyColumns &cpuBusyColumns() const;

    const TraceBundle &bundle_;

    /** One warning per indexed trace (warnOutOfRangeOnce). */
    mutable std::atomic<bool> warnedOutOfRange_{false};

    /** Columns restored from a cache blob (adoptColumns). */
    mutable bool restored_ = false;

    mutable std::mutex mutex_;
    /** Per-pid-set columns, keyed by the sorted pid list. */
    mutable std::map<std::vector<trace::Pid>,
                     std::unique_ptr<PidColumns>>
        perPid_;
    mutable std::unique_ptr<GpuColumns> gpu_;
    mutable std::unique_ptr<CpuBusyColumns> cpuBusy_;
};

} // namespace deskpar::analysis

#endif // DESKPAR_ANALYSIS_TRACE_INDEX_HH

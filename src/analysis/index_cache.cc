#include "analysis/index_cache.hh"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "obs/obs.hh"
#include "sim/logging.hh"
#include "trace/csv.hh"
#include "trace/etl.hh"
#include "trace/etlc.hh"
#include "trace/io.hh"

namespace deskpar::analysis {

namespace {

const char kDpidxMagic[8] = {'D', 'P', 'I', 'D', 'X', '\x01',
                             '\x00', '\x00'};

constexpr std::uint64_t kDpidxVersion = 1;

/** Bytes of the trace file the identity hash covers. */
constexpr std::size_t kHeaderHashBytes = std::size_t(64) << 10;

std::uint64_t
fnv1a64(trace::io::ByteSpan data)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (char c : data) {
        h ^= static_cast<std::uint8_t>(c);
        h *= 0x100000001b3ull;
    }
    return h;
}

bool
getU64(std::string_view data, std::size_t &pos, std::uint64_t &value)
{
    value = 0;
    unsigned shift = 0;
    while (true) {
        if (pos >= data.size() || shift >= 64)
            return false;
        auto byte = static_cast<std::uint8_t>(data[pos++]);
        value |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
        if (!(byte & 0x80))
            return true;
        shift += 7;
    }
}

/** Does @p path end with @p suffix? (case-sensitive, like the CLI) */
bool
hasSuffix(const std::string &path, const char *suffix)
{
    std::size_t n = std::char_traits<char>::length(suffix);
    return path.size() > n &&
           path.compare(path.size() - n, n, suffix) == 0;
}

} // namespace

bool
probeTraceIdentity(const std::string &path, TraceIdentity &out,
                   std::string &error)
{
    std::error_code ec;
    auto size = std::filesystem::file_size(path, ec);
    if (ec) {
        error = "cannot stat " + path + ": " + ec.message();
        return false;
    }
    auto mtime = std::filesystem::last_write_time(path, ec);
    if (ec) {
        error = "cannot stat " + path + ": " + ec.message();
        return false;
    }
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        error = "cannot open " + path;
        return false;
    }
    std::string head(std::min<std::size_t>(
                         kHeaderHashBytes,
                         static_cast<std::size_t>(size)),
                     '\0');
    in.read(head.data(), static_cast<std::streamsize>(head.size()));
    if (static_cast<std::size_t>(in.gcount()) != head.size()) {
        error = "cannot read " + path;
        return false;
    }
    out.fileSize = size;
    out.mtime = static_cast<std::uint64_t>(
        mtime.time_since_epoch().count());
    out.headerHash = fnv1a64(head);
    return true;
}

std::string
indexCachePath(const std::string &tracePath)
{
    return tracePath + ".dpidx";
}

bool
saveIndexCache(const Session &session, const std::string &tracePath,
               std::string &error)
{
    obs::Span span("index.cache.save", obs::SpanKind::Index);
    TraceIdentity id;
    if (!probeTraceIdentity(tracePath, id, error))
        return false;

    std::string columns = session.index().serializeColumns();
    if (columns.empty()) {
        error = "index is not cacheable (queries fall back to the "
                "legacy sweep)";
        return false;
    }

    // The columns replace the cswitch stream; everything else the
    // analyses read (names, GPU packets, frames, lifecycle, markers)
    // rides along verbatim as a small embedded .etlc image.
    trace::TraceBundle remainder = session.bundle();
    remainder.cswitches.clear();
    std::ostringstream bundleImage;
    try {
        trace::writeEtlc(remainder, bundleImage);
    } catch (const trace::TraceParseError &e) {
        error = std::string("bundle not cacheable: ") +
                e.error().str();
        return false;
    }
    std::string bundleBytes = std::move(bundleImage).str();

    std::string body;
    trace::putVarint(body, kDpidxVersion);
    trace::putVarint(body, id.fileSize);
    trace::putVarint(body, id.mtime);
    trace::putVarint(body, id.headerHash);
    trace::putVarint(body, session.bundle().cswitches.size());
    trace::putVarint(body, bundleBytes.size());
    body.append(bundleBytes);
    trace::putVarint(body, columns.size());
    body.append(columns);

    std::uint32_t crc = trace::crc32c(body);
    std::string path = indexCachePath(tracePath);
    std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary);
        if (!out) {
            error = "cannot write " + tmp;
            return false;
        }
        out.write(kDpidxMagic, sizeof(kDpidxMagic));
        for (int i = 0; i < 4; ++i)
            out.put(static_cast<char>((crc >> (8 * i)) & 0xff));
        out.write(body.data(),
                  static_cast<std::streamsize>(body.size()));
        if (!out) {
            error = "cannot write " + tmp;
            return false;
        }
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        std::filesystem::remove(tmp, ec);
        error = "cannot move cache into place: " + path;
        return false;
    }
    return true;
}

std::unique_ptr<Session>
loadCachedSession(const std::string &tracePath, std::string &error)
{
    obs::Span span("index.cache.load", obs::SpanKind::Index);
    std::string path = indexCachePath(tracePath);
    trace::io::MappedFile file;
    if (!file.open(path, error))
        return nullptr;
    trace::io::ByteSpan data = file.span();

    if (data.size() < sizeof(kDpidxMagic) + 4 ||
        data.compare(0, sizeof(kDpidxMagic),
                     std::string_view(kDpidxMagic,
                                      sizeof(kDpidxMagic))) != 0) {
        error = path + ": not an index cache";
        return nullptr;
    }
    std::uint32_t crc = 0;
    for (int i = 0; i < 4; ++i)
        crc |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(
                   data[sizeof(kDpidxMagic) + i]))
               << (8 * i);
    std::string_view body = data.substr(sizeof(kDpidxMagic) + 4);
    if (trace::crc32c(body) != crc) {
        error = path + ": checksum mismatch (cache corrupt)";
        return nullptr;
    }

    std::size_t pos = 0;
    std::uint64_t version = 0;
    TraceIdentity cached;
    std::uint64_t cswitchCount = 0, bundleLen = 0;
    if (!getU64(body, pos, version) || version != kDpidxVersion) {
        error = path + ": unsupported cache version";
        return nullptr;
    }
    if (!getU64(body, pos, cached.fileSize) ||
        !getU64(body, pos, cached.mtime) ||
        !getU64(body, pos, cached.headerHash) ||
        !getU64(body, pos, cswitchCount) ||
        !getU64(body, pos, bundleLen) ||
        bundleLen > body.size() - pos) {
        error = path + ": truncated cache header";
        return nullptr;
    }

    TraceIdentity current;
    if (!probeTraceIdentity(tracePath, current, error))
        return nullptr;
    if (current != cached) {
        error = path + ": stale cache (trace file changed)";
        return nullptr;
    }

    std::string_view bundleBytes =
        body.substr(pos, static_cast<std::size_t>(bundleLen));
    pos += static_cast<std::size_t>(bundleLen);
    std::uint64_t colsLen = 0;
    if (!getU64(body, pos, colsLen) ||
        colsLen > body.size() - pos) {
        error = path + ": truncated columns blob";
        return nullptr;
    }
    std::string_view columns =
        body.substr(pos, static_cast<std::size_t>(colsLen));
    pos += static_cast<std::size_t>(colsLen);
    if (pos != body.size()) {
        error = path + ": trailing bytes in cache";
        return nullptr;
    }

    trace::ParseOptions popts;
    popts.mode = trace::ParseMode::Strict;
    popts.source = path;
    trace::IngestReport report;
    trace::TraceBundle bundle =
        trace::decodeEtlc(bundleBytes, popts, report);
    if (!report.ok()) {
        error = path + ": embedded bundle corrupt: " +
                report.summary();
        return nullptr;
    }

    auto session = std::make_unique<Session>(std::move(bundle));
    auto index = std::make_unique<TraceIndex>(session->bundle());
    std::string adoptError;
    if (!index->adoptColumns(columns, &adoptError)) {
        error = path + ": " + adoptError;
        return nullptr;
    }
    session->adoptIndex(std::move(index));
    return session;
}

OpenResult
openSession(const std::string &tracePath, const OpenOptions &options)
{
    obs::Span span("index.cache.open", obs::SpanKind::Index);
    OpenResult result;
    result.cachePath = indexCachePath(tracePath);

    if (options.useCache) {
        std::string error;
        if (auto session = loadCachedSession(tracePath, error)) {
            bool covered = session->index().hasCswitchColumns(
                PidSet{});
            for (const std::string &prefix : options.prefixes) {
                if (!covered)
                    break;
                covered = session->index().hasCswitchColumns(
                    session->pids(prefix));
            }
            if (covered) {
                result.session = std::move(session);
                result.warm = true;
                result.report.source = tracePath;
                result.report.mode = options.parse.mode;
                return result;
            }
        }
    }

    trace::ParseOptions popts = options.parse;
    if (popts.source.empty())
        popts.source = tracePath;
    trace::TraceBundle bundle;
    {
        trace::io::MappedFile file =
            trace::io::MappedFile::openOrThrow(tracePath,
                                               "openSession");
        if (hasSuffix(tracePath, ".csv")) {
            result.report = trace::decodeCpuUsageCsv(file.span(),
                                                     bundle, popts);
        } else if (trace::isEtlcData(file.span())) {
            bundle = trace::decodeEtlc(file.span(), popts,
                                       result.report);
        } else {
            bundle = trace::decodeEtl(file.span(), popts,
                                      result.report);
        }
    }

    result.session = std::make_unique<Session>(std::move(bundle));
    result.session->index().warm(PidSet{});
    for (const std::string &prefix : options.prefixes)
        result.session->index().warm(result.session->pids(prefix));

    if (options.refreshCache && result.report.ok()) {
        std::string error;
        result.wroteCache =
            saveIndexCache(*result.session, tracePath, error);
    }
    return result;
}

} // namespace deskpar::analysis

#include "analysis/analyzer.hh"

#include "analysis/session.hh"
#include "analysis/trace_index.hh"
#include "sim/logging.hh"

namespace deskpar::analysis {

AppMetrics
analyzeApp(const TraceIndex &index, const std::string &process_prefix)
{
    PidSet pids;
    if (!process_prefix.empty()) {
        pids = trace::pidsWithPrefix(index.bundle(), process_prefix);
        if (pids.empty()) {
            deskpar::fatal("analyzeApp: no process named " +
                           process_prefix);
        }
    }
    return analyzeApp(index, pids);
}

AppMetrics
analyzeApp(const TraceIndex &index, const PidSet &pids)
{
    AppMetrics metrics;
    metrics.concurrency = index.concurrency(pids);
    metrics.gpu = index.gpuUtil(pids);
    metrics.frames = index.frameStats(pids);
    return metrics;
}

AppMetrics
analyzeApp(const TraceBundle &bundle, const std::string &process_prefix)
{
    return Session(bundle).app(process_prefix);
}

AppMetrics
analyzeApp(const TraceBundle &bundle, const PidSet &pids)
{
    return Session(bundle).app(pids);
}

void
IterationAggregate::add(const AppMetrics &metrics)
{
    tlp.add(metrics.tlp());
    gpuUtil.add(metrics.gpuUtilPercent());
    maxConcurrency.add(
        static_cast<double>(metrics.concurrency.maxConcurrency()));
    gpuOverlapped = gpuOverlapped || metrics.gpu.overlapped;

    const auto &c = metrics.concurrency.c;
    if (meanC.size() < c.size())
        meanC.resize(c.size(), 0.0);
    // Incremental mean: meanC_k = meanC_{k-1} + (x - meanC_{k-1}) / k.
    double k = static_cast<double>(tlp.count());
    for (std::size_t i = 0; i < c.size(); ++i)
        meanC[i] += (c[i] - meanC[i]) / k;
}

} // namespace deskpar::analysis

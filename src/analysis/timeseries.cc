#include "analysis/timeseries.hh"

#include <algorithm>

#include "analysis/gpu_util.hh"
#include "analysis/tlp.hh"
#include "analysis/session.hh"
#include "analysis/trace_index.hh"
#include "sim/logging.hh"

namespace deskpar::analysis {

double
TimeSeries::maxValue() const
{
    double best = 0.0;
    for (const auto &p : points)
        best = std::max(best, p.value);
    return best;
}

double
TimeSeries::meanValue() const
{
    if (points.empty())
        return 0.0;
    double sum = 0.0;
    for (const auto &p : points)
        sum += p.value;
    return sum / static_cast<double>(points.size());
}

namespace {

template <typename PerWindow>
TimeSeries
buildSeries(const TraceBundle &bundle, sim::SimDuration window,
            std::string name, PerWindow per_window)
{
    if (window == 0)
        deskpar::fatal("timeseries: zero window");
    TimeSeries series;
    series.name = std::move(name);
    series.window = window;
    for (sim::SimTime t = bundle.startTime; t < bundle.stopTime;
         t += window) {
        sim::SimTime end = std::min(t + window, bundle.stopTime);
        if (end <= t)
            break;
        series.points.push_back(TimePoint{t, per_window(t, end)});
    }
    return series;
}

} // namespace

TimeSeries
tlpSeries(const TraceIndex &index, const PidSet &pids,
          sim::SimDuration window)
{
    return buildSeries(
        index.bundle(), window, "TLP",
        [&](sim::SimTime t0, sim::SimTime t1) {
            return index.concurrency(pids, t0, t1).tlp();
        });
}

TimeSeries
tlpSeries(const TraceBundle &bundle, const PidSet &pids,
          sim::SimDuration window)
{
    return Session(bundle).tlpSeries(pids, window);
}

TimeSeries
concurrencySeries(const TraceIndex &index, const PidSet &pids,
                  sim::SimDuration window)
{
    return buildSeries(
        index.bundle(), window, "Concurrency",
        [&](sim::SimTime t0, sim::SimTime t1) {
            return index.concurrency(pids, t0, t1).utilization();
        });
}

TimeSeries
concurrencySeries(const TraceBundle &bundle, const PidSet &pids,
                  sim::SimDuration window)
{
    return Session(bundle).concurrencySeries(pids, window);
}

TimeSeries
gpuUtilSeries(const TraceIndex &index, const PidSet &pids,
              sim::SimDuration window)
{
    return buildSeries(
        index.bundle(), window, "GPU Utilization (%)",
        [&](sim::SimTime t0, sim::SimTime t1) {
            return index.gpuUtil(pids, t0, t1).utilizationPercent();
        });
}

TimeSeries
gpuUtilSeries(const TraceBundle &bundle, const PidSet &pids,
              sim::SimDuration window)
{
    return Session(bundle).gpuUtilSeries(pids, window);
}

TimeSeries
frameRateSeries(const TraceBundle &bundle, const PidSet &pids,
                sim::SimDuration window)
{
    TimeSeries series = buildSeries(
        bundle, window, "Frame Rate (FPS)",
        [](sim::SimTime, sim::SimTime) { return 0.0; });
    if (series.points.empty())
        return series;

    for (const auto &frame : bundle.frames) {
        if (!pids.empty() && pids.count(frame.pid) == 0)
            continue;
        if (frame.timestamp < bundle.startTime ||
            frame.timestamp >= bundle.stopTime) {
            continue;
        }
        auto idx = static_cast<std::size_t>(
            (frame.timestamp - bundle.startTime) / window);
        if (idx < series.points.size())
            series.points[idx].value += 1.0;
    }
    // Convert counts to frames per second.
    for (auto &point : series.points) {
        sim::SimTime end =
            std::min(point.t + window, bundle.stopTime);
        double span = sim::toSeconds(end - point.t);
        if (span > 0.0)
            point.value /= span;
    }
    return series;
}

TimeSeries
frameRateSeries(const TraceIndex &index, const PidSet &pids,
                sim::SimDuration window)
{
    return frameRateSeries(index.bundle(), pids, window);
}

} // namespace deskpar::analysis

/**
 * @file
 * GPU utilization per the paper's Section III-B: "the amount of time
 * spent by work packets actually running over a period of time ...
 * measured by aggregating for all packets the ratio of packet running
 * time to total time."
 *
 * The aggregate ratio can exceed 1 when packets overlap on multiple
 * hardware queues (the paper's PhoenixMiner footnote: "two packets
 * were simultaneously executing on the GPU throughout the
 * experiment"); the reported utilization is capped at 100% with the
 * overlap flagged. The union-busy ratio is also computed.
 */

#ifndef DESKPAR_ANALYSIS_GPU_UTIL_HH
#define DESKPAR_ANALYSIS_GPU_UTIL_HH

#include <array>
#include <cstddef>

#include "trace/event.hh"
#include "trace/filter.hh"
#include "trace/session.hh"

namespace deskpar::analysis {

using trace::PidSet;
using trace::TraceBundle;

/**
 * GPU utilization of one trace window.
 */
struct GpuUtilization
{
    /** Sum of packet running time over the window (may exceed 1). */
    double aggregateRatio = 0.0;

    /** Fraction of the window with at least one packet running. */
    double busyRatio = 0.0;

    /** Aggregate ratio broken down per engine. */
    std::array<double, trace::kNumGpuEngines> perEngine{};

    /** Number of packets contributing. */
    std::size_t packetCount = 0;

    /** True when packets overlapped (aggregate > busy). */
    bool overlapped = false;

    /** The paper's headline number: min(aggregate, 1) * 100. */
    double
    utilizationPercent() const
    {
        return (aggregateRatio > 1.0 ? 1.0 : aggregateRatio) * 100.0;
    }
};

/**
 * Compute GPU utilization over [@p t0, @p t1) for processes in
 * @p pids (empty set = all processes).
 *
 * A thin wrapper over TraceIndex (trace_index.hh); callers issuing
 * many windowed queries should build the index once instead.
 *
 * @deprecated Thin shim over a throwaway analysis::Session; callers
 * issuing more than one query per bundle should hold a Session
 * (analysis/session.hh).
 */
GpuUtilization computeGpuUtil(const TraceBundle &bundle,
                              const PidSet &pids, sim::SimTime t0,
                              sim::SimTime t1);

/** Convenience: whole-bundle window. */
GpuUtilization computeGpuUtil(const TraceBundle &bundle,
                              const PidSet &pids);

namespace legacy {

/**
 * The direct full-scan implementation — the bit-identical reference
 * for the index-backed path. Same contract as computeGpuUtil.
 */
GpuUtilization computeGpuUtil(const TraceBundle &bundle,
                              const PidSet &pids, sim::SimTime t0,
                              sim::SimTime t1);

/** Convenience: whole-bundle window. */
GpuUtilization computeGpuUtil(const TraceBundle &bundle,
                              const PidSet &pids);

} // namespace legacy

namespace detail {

/**
 * Fold gpuPackets[first, last) into a GpuUtilization over
 * [@p t0, @p t1), in stream order. Shared by the legacy scan
 * (first=0, last=size) and the index's candidate-range query, so the
 * floating-point accumulation order — and hence the result — is the
 * same in both: packets clamped to nothing contribute no terms.
 */
GpuUtilization foldGpuPackets(const TraceBundle &bundle,
                              const PidSet &pids, sim::SimTime t0,
                              sim::SimTime t1, std::size_t first,
                              std::size_t last);

} // namespace detail

} // namespace deskpar::analysis

#endif // DESKPAR_ANALYSIS_GPU_UTIL_HH

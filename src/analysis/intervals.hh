/**
 * @file
 * Interval algebra shared by the TLP and GPU-utilization analyses.
 */

#ifndef DESKPAR_ANALYSIS_INTERVALS_HH
#define DESKPAR_ANALYSIS_INTERVALS_HH

#include <vector>

#include "sim/types.hh"

namespace deskpar::analysis {

using sim::SimDuration;
using sim::SimTime;

/** Half-open interval [begin, end). */
struct Interval
{
    SimTime begin = 0;
    SimTime end = 0;

    SimDuration
    length() const
    {
        return end > begin ? end - begin : 0;
    }

    bool empty() const { return end <= begin; }

    /** Intersect with [lo, hi); may produce an empty interval. */
    Interval clampTo(SimTime lo, SimTime hi) const;
};

/** Sum of interval lengths (no overlap handling). */
SimDuration totalLength(const std::vector<Interval> &intervals);

/**
 * Merge overlapping/adjacent intervals in place: @p intervals is
 * sorted, compacted and shrunk to the disjoint union, with no
 * temporary vector. Input need not be sorted.
 */
void mergeIntervalsInPlace(std::vector<Interval> &intervals);

/**
 * Merge overlapping/adjacent intervals; input need not be sorted.
 * Returns sorted disjoint intervals.
 */
std::vector<Interval> mergeIntervals(std::vector<Interval> intervals);

/**
 * Length of the union of @p intervals, merging in place (the vector
 * is left merged, as by mergeIntervalsInPlace).
 */
SimDuration unionLengthInPlace(std::vector<Interval> &intervals);

/** Length of the union of @p intervals. */
SimDuration unionLength(std::vector<Interval> intervals);

} // namespace deskpar::analysis

#endif // DESKPAR_ANALYSIS_INTERVALS_HH

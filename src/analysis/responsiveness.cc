#include "analysis/responsiveness.hh"

#include <algorithm>
#include <cstring>
#include <vector>

#include "analysis/session.hh"
#include "analysis/trace_index.hh"

namespace deskpar::analysis {

namespace detail {

Responsiveness
responsivenessFromDispatches(
    const trace::TraceBundle &bundle,
    const std::vector<sim::SimTime> &dispatches)
{
    Responsiveness out;

    const std::size_t prefix_len =
        std::strlen(kInputMarkerPrefix);
    for (const auto &marker : bundle.markers) {
        if (marker.label.compare(0, prefix_len,
                                 kInputMarkerPrefix) != 0) {
            continue;
        }
        ++out.inputs;
        auto it = std::lower_bound(dispatches.begin(),
                                   dispatches.end(),
                                   marker.timestamp);
        if (it == dispatches.end())
            continue;
        ++out.answered;
        out.latency.add(
            static_cast<double>(*it - marker.timestamp));
    }
    return out;
}

} // namespace detail

namespace legacy {

Responsiveness
computeResponsiveness(const trace::TraceBundle &bundle,
                      const trace::PidSet &pids)
{
    // Dispatch times of the application's threads, sorted (cswitch
    // streams are time-ordered already, but be defensive).
    std::vector<sim::SimTime> dispatches;
    for (const auto &e : bundle.cswitches) {
        bool is_app = e.newPid != 0 &&
                      (pids.empty() || pids.count(e.newPid) != 0);
        if (is_app)
            dispatches.push_back(e.timestamp);
    }
    std::sort(dispatches.begin(), dispatches.end());

    return detail::responsivenessFromDispatches(bundle, dispatches);
}

} // namespace legacy

Responsiveness
computeResponsiveness(const trace::TraceBundle &bundle,
                      const trace::PidSet &pids)
{
    return Session(bundle).responsiveness(pids);
}

} // namespace deskpar::analysis

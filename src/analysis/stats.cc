#include "analysis/stats.hh"

namespace deskpar::analysis {

double
meanOf(const std::vector<double> &values)
{
    RunningStat stat;
    for (double v : values)
        stat.add(v);
    return stat.mean();
}

double
stddevOf(const std::vector<double> &values)
{
    RunningStat stat;
    for (double v : values)
        stat.add(v);
    return stat.stddev();
}

} // namespace deskpar::analysis

#include "analysis/concurrency_timeline.hh"

#include <algorithm>
#include <utility>

#include "sim/logging.hh"

namespace deskpar::analysis::detail {

using sim::SimDuration;
using sim::SimTime;

void
buildConcurrencyTimeline(const trace::TraceBundle &bundle,
                         const TimelineSpec &spec,
                         ConcurrencyTimeline &tl,
                         std::vector<SimTime> *dispatches,
                         BurstColumns *bursts, WaitColumns *waits)
{
    tl.cutoff = bundle.numLogicalCpus;
    const unsigned cutoff = tl.cutoff;

    // Emit (timestamp, +1/-1) occupancy deltas in stream order — the
    // per-CPU busy flags are a state machine over the stream, exactly
    // as in the reference sweep — and collect the dispatch and burst
    // columns from the same transitions.
    std::vector<std::pair<SimTime, int>> deltas;
    deltas.reserve(bundle.cswitches.size());
    std::vector<std::uint8_t> cpuBusy(cutoff, 0);
    std::vector<SimTime> burstStart;
    if (bursts)
        burstStart.assign(cutoff, 0);
    bool sorted = true;
    SimTime prev_ts = 0;

    for (const auto &e : bundle.cswitches) {
        if (!cpuInMask(spec.cpuMask, e.cpu))
            continue;
        bool target = isTargetSwitch(spec, e.newPid, e.newTid);
        if (dispatches && target)
            dispatches->push_back(e.timestamp);
        if (waits && target) {
            // Readers clamp inverted ready times; clamp again so a
            // hand-built bundle cannot wrap the wait.
            waits->begin.push_back(
                std::min(e.readyTime, e.timestamp));
            waits->end.push_back(e.timestamp);
        }
        if (e.timestamp < prev_ts)
            sorted = false;
        prev_ts = e.timestamp;
        if (cutoff == 0)
            continue;
        if (e.cpu >= cutoff) {
            ++tl.outOfRangeCpuEvents;
            continue;
        }
        std::uint8_t now_busy = target ? 1 : 0;
        if (cpuBusy[e.cpu] == now_busy)
            continue;
        deltas.emplace_back(e.timestamp, now_busy ? 1 : -1);
        if (bursts) {
            if (now_busy)
                burstStart[e.cpu] = e.timestamp;
            else if (e.timestamp > burstStart[e.cpu])
                bursts->bursts.push_back(
                    Interval{burstStart[e.cpu], e.timestamp});
        }
        cpuBusy[e.cpu] = now_busy;
    }
    if (dispatches)
        std::sort(dispatches->begin(), dispatches->end());
    if (waits) {
        // Sort by end (already the stream order for a sorted bundle;
        // a stable sort keeps equal-end rows paired) and compute the
        // suffix-minimum begin column.
        const std::size_t n = waits->end.size();
        std::vector<std::pair<SimTime, SimTime>> rows;
        rows.reserve(n);
        for (std::size_t i = 0; i < n; ++i)
            rows.emplace_back(waits->end[i], waits->begin[i]);
        std::stable_sort(rows.begin(), rows.end(),
                         [](const auto &a, const auto &b) {
                             return a.first < b.first;
                         });
        waits->minBegin.assign(n, 0);
        SimTime mn = 0;
        for (std::size_t i = n; i-- > 0;) {
            waits->end[i] = rows[i].first;
            waits->begin[i] = rows[i].second;
            mn = i + 1 == n ? rows[i].second
                            : std::min(mn, rows[i].second);
            waits->minBegin[i] = mn;
        }
    }
    if (bursts) {
        // CPUs still busy at the end of the stream: close the burst
        // at the observation-window end. Disordered streams can
        // produce inverted bursts; those are dropped on emission.
        for (unsigned cpu = 0; cpu < cutoff; ++cpu) {
            if (cpuBusy[cpu] && bundle.stopTime > burstStart[cpu])
                bursts->bursts.push_back(
                    Interval{burstStart[cpu], bundle.stopTime});
        }
        std::sort(bursts->bursts.begin(), bursts->bursts.end(),
                  [](const Interval &a, const Interval &b) {
                      return a.begin < b.begin;
                  });
        bursts->maxEnd.reserve(bursts->bursts.size());
        SimTime mx = 0;
        for (std::size_t i = 0; i < bursts->bursts.size(); ++i) {
            mx = i == 0 ? bursts->bursts[i].end
                        : std::max(mx, bursts->bursts[i].end);
            bursts->maxEnd.push_back(mx);
        }
    }

    if (cutoff == 0)
        return; // every query must take the sweep path (it fatals)

    // The reference sweep stable-sorts its (clamped) deltas; sorting
    // the unclamped emission stably yields the same per-timestamp
    // group sums for every window, which is all the level function
    // depends on.
    if (!sorted) {
        std::stable_sort(deltas.begin(), deltas.end(),
                         [](const auto &a, const auto &b) {
                             return a.first < b.first;
                         });
    }

    // Compress equal-timestamp groups into breakpoints. A negative
    // cumulative level means the (disordered) stream closed a CPU
    // before opening it; poison the timeline so queries fall back.
    long long level = 0;
    for (std::size_t i = 0; i < deltas.size();) {
        SimTime ts = deltas[i].first;
        long long sum = 0;
        for (; i < deltas.size() && deltas[i].first == ts; ++i)
            sum += deltas[i].second;
        if (sum == 0)
            continue;
        level += sum;
        if (level < 0) {
            tl.times.clear();
            tl.levels.clear();
            return;
        }
        tl.times.push_back(ts);
        tl.levels.push_back(static_cast<int>(level));
    }
    tl.usable = true;

    // Checkpoint rows: running per-level time at every kStride-th
    // breakpoint. Integer sums, so checkpoint differences decompose
    // a window exactly.
    const std::size_t L = cutoff + 1;
    const std::size_t n = tl.times.size();
    if (n == 0)
        return;
    const std::size_t rows =
        (n - 1) / ConcurrencyTimeline::kStride + 1;
    tl.cum.assign(rows * L, 0);
    std::vector<SimDuration> acc(L, 0);
    for (std::size_t j = 0; j < n; ++j) {
        if (j % ConcurrencyTimeline::kStride == 0) {
            std::copy(acc.begin(), acc.end(),
                      tl.cum.begin() +
                          static_cast<std::ptrdiff_t>(
                              (j / ConcurrencyTimeline::kStride) *
                              L));
        }
        if (j + 1 < n) {
            auto lvl = static_cast<unsigned>(std::clamp(
                tl.levels[j], 0, static_cast<int>(cutoff)));
            acc[lvl] += tl.times[j + 1] - tl.times[j];
        }
    }
}

ConcurrencyProfile
queryConcurrencyTimeline(const ConcurrencyTimeline &tl, SimTime t0,
                         SimTime t1)
{
    constexpr std::size_t kStride = ConcurrencyTimeline::kStride;
    const unsigned num_cpus = tl.cutoff;
    const std::size_t L = num_cpus + 1;

    ConcurrencyProfile profile;
    profile.numCpus = num_cpus;
    profile.window = t1 - t0;
    profile.c.assign(L, 0.0);
    profile.outOfRangeCpuEvents = tl.outOfRangeCpuEvents;

    std::vector<SimDuration> timeAt(L, 0);
    const std::vector<SimTime> &times = tl.times;
    const std::size_t n = times.size();
    auto clampLvl = [num_cpus](int level) {
        return static_cast<unsigned>(
            std::clamp(level, 0, static_cast<int>(num_cpus)));
    };

    // First breakpoint strictly inside the window.
    std::size_t idx = static_cast<std::size_t>(
        std::upper_bound(times.begin(), times.end(), t0) -
        times.begin());

    // Head: the tail of the segment containing t0.
    SimTime headEnd = (idx < n && times[idx] < t1) ? times[idx] : t1;
    int headLevel = idx == 0 ? 0 : tl.levels[idx - 1];
    timeAt[clampLvl(headLevel)] += headEnd - t0;

    if (idx < n && times[idx] < t1) {
        std::size_t j = idx; // position: exactly at breakpoint j
        while (true) {
            if (j % kStride == 0) {
                // Jump over whole checkpoint rows: the largest
                // aligned breakpoint k2*kStride still <= t1.
                std::size_t k1 = j / kStride;
                std::size_t maxk = (n - 1) / kStride;
                std::size_t k2 = k1;
                for (std::size_t lo = k1 + 1, hi = maxk; lo <= hi;) {
                    std::size_t mid = lo + (hi - lo) / 2;
                    if (times[mid * kStride] <= t1) {
                        k2 = mid;
                        lo = mid + 1;
                    } else {
                        hi = mid - 1;
                    }
                }
                if (k2 > k1) {
                    const SimDuration *a = &tl.cum[k1 * L];
                    const SimDuration *b = &tl.cum[k2 * L];
                    for (std::size_t l = 0; l < L; ++l)
                        timeAt[l] += b[l] - a[l];
                    j = k2 * kStride;
                    continue;
                }
            }
            // Segment j = [times[j], times[j+1)); the last level
            // extends past the final breakpoint.
            SimTime segEnd = (j + 1 < n) ? times[j + 1] : t1;
            if (segEnd >= t1) {
                timeAt[clampLvl(tl.levels[j])] += t1 - times[j];
                break;
            }
            timeAt[clampLvl(tl.levels[j])] += segEnd - times[j];
            ++j;
        }
    }

    double window = static_cast<double>(profile.window);
    for (std::size_t i = 0; i < L; ++i)
        profile.c[i] = static_cast<double>(timeAt[i]) / window;
    return profile;
}

ConcurrencyProfile
sweepConcurrency(const trace::TraceBundle &bundle,
                 const TimelineSpec &spec, SimTime t0, SimTime t1,
                 unsigned num_cpus, bool emit_warning)
{
    // Sweep the per-CPU run timelines into +1/-1 deltas at the times
    // a target thread starts/stops occupying a CPU. A flat sorted
    // vector replaces the old std::map: one O(n log n) sort instead
    // of a red-black-tree insert per context switch, and the per-CPU
    // busy flags are a flat array indexed by CpuId.
    std::vector<std::pair<SimTime, int>> deltas;
    deltas.reserve(bundle.cswitches.size());
    std::vector<std::uint8_t> cpuBusy(num_cpus, 0);
    std::uint64_t out_of_range = 0;

    for (const auto &e : bundle.cswitches) {
        if (!cpuInMask(spec.cpuMask, e.cpu))
            continue;
        if (e.cpu >= cpuBusy.size()) {
            // A cpu id past the header's CPU count contradicts the
            // trace; count it instead of growing the histogram and
            // clamp-folding the phantom CPU into the top level.
            ++out_of_range;
            continue;
        }
        std::uint8_t now_busy =
            isTargetSwitch(spec, e.newPid, e.newTid) ? 1 : 0;
        if (cpuBusy[e.cpu] == now_busy)
            continue;
        SimTime ts = std::clamp(e.timestamp, t0, t1);
        deltas.emplace_back(ts, now_busy ? 1 : -1);
        cpuBusy[e.cpu] = now_busy;
    }
    // Threads still on a CPU at the window end: close at t1 (the
    // delta list records the +1; no -1 needed since the sweep ends).

    // cswitches are chronological, so a stable sort keeps each CPU's
    // +1 ahead of its matching -1 even when clamping collapses both
    // onto a window edge.
    std::stable_sort(deltas.begin(), deltas.end(),
                     [](const auto &a, const auto &b) {
                         return a.first < b.first;
                     });

    ConcurrencyProfile profile;
    profile.numCpus = num_cpus;
    profile.window = t1 - t0;
    profile.c.assign(num_cpus + 1, 0.0);
    profile.outOfRangeCpuEvents = out_of_range;

    SimTime prev = t0;
    int level = 0;
    std::vector<SimDuration> timeAt(num_cpus + 1, 0);
    for (const auto &[ts, delta] : deltas) {
        if (ts > prev) {
            if (level < 0)
                deskpar::panic(
                    "computeConcurrency: negative concurrency");
            auto lvl = static_cast<unsigned>(std::clamp(
                level, 0, static_cast<int>(num_cpus)));
            timeAt[lvl] += ts - prev;
            prev = ts;
        }
        level += delta;
    }
    if (level < 0)
        deskpar::panic("computeConcurrency: negative concurrency");
    if (t1 > prev) {
        auto lvl = static_cast<unsigned>(
            std::clamp(level, 0, static_cast<int>(num_cpus)));
        timeAt[lvl] += t1 - prev;
    }

    if (out_of_range > 0 && emit_warning)
        detail::warnOutOfRangeCpus(out_of_range, num_cpus);

    double window = static_cast<double>(profile.window);
    for (unsigned i = 0; i <= num_cpus; ++i)
        profile.c[i] = static_cast<double>(timeAt[i]) / window;
    return profile;
}

} // namespace deskpar::analysis::detail

/**
 * @file
 * Wakeup-chain serialization-bottleneck analysis, in the spirit of
 * GAPP (Generic Automatic Parallel Profiler): given only the CSwitch
 * stream with per-dispatch ready times, reconstruct which thread's
 * switch-out made whom runnable on which CPU, rank threads by the
 * time others spent blocked behind them, and extract the longest
 * serialized execution chain (the trace's critical path).
 *
 * The model is deliberately minimal — it needs nothing beyond what
 * every reader in this repo already decodes:
 *
 *  - every switch-in of thread T at time t carries readyTime r <= t
 *    (the readers clamp or reject inversions); [r, t) is T's
 *    ready-queue wait for that dispatch;
 *  - the *wakeup edge* of that dispatch is (old -> T): the thread
 *    whose switch-out on that CPU let T run. With CSwitch-only data
 *    the immediately preceding occupant is the serializing
 *    predecessor — it held the CPU for the whole tail of T's wait.
 *    Idle switch-outs (pid 0) carry no edge: the CPU was free, so
 *    nothing on it serialized T. Self-edges (old == T) are kept —
 *    they mark quantum-limited threads that block on themselves;
 *  - the *critical path* chains run segments through wakeup edges:
 *    at each dispatch the new thread either continues its own chain
 *    or adopts the predecessor's longer one, and every on-CPU
 *    nanosecond extends the chain. The maximum over threads is the
 *    length of the longest serialized execution sequence, and
 *    criticalPathNs / window ("serial fraction") says how much of
 *    the wall clock one such chain alone covers.
 *
 * Everything is summed in integer nanoseconds, so the fused path
 * (blocking::analyze over a Session/TraceIndex, per-thread folds
 * fanned out with sim::parallelFor) is bit-identical to the
 * sequential reference (blocking::legacy::analyze) at any
 * DESKPAR_JOBS — the differential tests assert EXPECT_EQ on whole
 * reports.
 *
 * With a pid filter, the analysis is *within* the selected set:
 * foreign threads neither appear as victims nor as culprits (their
 * occupancy still closes run segments correctly).
 */

#ifndef DESKPAR_ANALYSIS_BLOCKING_HH
#define DESKPAR_ANALYSIS_BLOCKING_HH

#include <cstdint>
#include <string>
#include <vector>

#include "trace/filter.hh"
#include "trace/session.hh"

namespace deskpar::analysis {

class TraceIndex;
class Session;

namespace blocking {

/** Per-thread blocking aggregates (integer ns, so folds are exact). */
struct ThreadBlocking
{
    trace::Pid pid = 0;
    trace::Tid tid = 0;
    /** Process name at report time ("pid<N>" when unnamed). */
    std::string name;
    /** Time on CPU. */
    std::uint64_t runNs = 0;
    /** Ready-queue wait summed over this thread's dispatches. */
    std::uint64_t waitNs = 0;
    /** Longest single ready-queue wait. */
    std::uint64_t maxWaitNs = 0;
    /** Time *other* threads waited behind this thread's switch-outs. */
    std::uint64_t blockedNs = 0;
    /** Switch-ins. */
    std::uint64_t dispatches = 0;

    bool operator==(const ThreadBlocking &) const = default;
};

/** One wakeup edge: from's switch-out let to run. */
struct WakeupEdge
{
    trace::Pid fromPid = 0;
    trace::Tid fromTid = 0;
    trace::Pid toPid = 0;
    trace::Tid toTid = 0;
    /** Dispatches of to attributed to from. */
    std::uint64_t count = 0;
    /** Summed ready-queue wait across those dispatches. */
    std::uint64_t waitNs = 0;

    bool operator==(const WakeupEdge &) const = default;
};

/** One hop of the extracted critical path (root first). */
struct CriticalPathHop
{
    trace::Pid pid = 0;
    trace::Tid tid = 0;

    bool operator==(const CriticalPathHop &) const = default;
};

struct BlockingReport
{
    /** The analyzed window (the bundle's). */
    sim::SimTime t0 = 0;
    sim::SimTime t1 = 0;
    unsigned numCpus = 0;
    /** Target switch-ins. */
    std::uint64_t dispatches = 0;
    /** Summed target on-CPU time. */
    std::uint64_t totalRunNs = 0;
    /** Summed target ready-queue wait. */
    std::uint64_t totalWaitNs = 0;
    /** Sorted by waitNs descending, then (pid, tid) ascending. */
    std::vector<ThreadBlocking> threads;
    /** Sorted by waitNs descending, then endpoints ascending. */
    std::vector<WakeupEdge> edges;
    /** Longest serialized execution chain (run segments only). */
    std::uint64_t criticalPathNs = 0;
    /** Wakeup links along that chain. */
    std::uint64_t criticalPathSwitches = 0;
    /**
     * The chain's thread hops, root first, truncated to the last 64
     * links (the recorded predecessor pointers summarize a DP, so a
     * long chain revisiting threads folds onto itself).
     */
    std::vector<CriticalPathHop> criticalPath;

    bool operator==(const BlockingReport &) const = default;

    /** Window seconds. */
    double windowSeconds() const;

    /**
     * Mean number of threads sitting ready-to-run: totalWaitNs over
     * the window. The TLP-style serialization signal — "how many
     * runnable threads were denied a CPU on average".
     */
    double waitTlp() const;

    /** criticalPathNs / window: chain occupancy of the wall clock. */
    double serialFraction() const;

    /**
     * Classification for the suite table: a low-TLP app with
     * substantial ready-queue waiting (waitTlp >= 0.5) is
     * *bottleneck-limited* (runnable work exists, serialization
     * denies it CPUs); one with little waiting is *structurally
     * serial* (there was nothing else to run).
     */
    bool bottleneckLimited() const { return waitTlp() >= 0.5; }

    /** "bottleneck-limited" or "structurally serial". */
    const char *classification() const;
};

namespace legacy {

/**
 * The sequential reference: one straight sweep of bundle.cswitches,
 * per-thread aggregates accumulated inline in ordered maps. This is
 * what the fused path is differentially tested against.
 */
BlockingReport analyze(const trace::TraceBundle &bundle,
                       const trace::PidSet &pids);

} // namespace legacy

/**
 * The fused path: the same deterministic chain sweep over the
 * index's bundle, but per-thread wait/run folds deferred to a
 * sim::parallelFor over the discovered threads — disjoint writes
 * into pre-sized rows, integer sums, so the report is EXPECT_EQ-
 * identical to legacy::analyze at any @p threads (0 = DESKPAR_JOBS).
 */
BlockingReport analyze(const TraceIndex &index,
                       const trace::PidSet &pids,
                       unsigned threads = 0);

/** Convenience overload: analyze @p session's bundle. */
BlockingReport analyze(const Session &session,
                       const trace::PidSet &pids,
                       unsigned threads = 0);

/**
 * Render the human-readable bottleneck report: summary line, top
 * victim threads (most time blocked), top culprit threads (most
 * time others blocked behind them), hottest wakeup edges, and the
 * critical path. @p top caps each ranking section.
 */
std::string renderReport(const BlockingReport &report,
                         std::size_t top = 10);

/** Render as a JSON object (for `deskpar bottlenecks --json`). */
std::string renderReportJson(const BlockingReport &report,
                             std::size_t top = 10);

} // namespace blocking

} // namespace deskpar::analysis

#endif // DESKPAR_ANALYSIS_BLOCKING_HH

/**
 * @file
 * Byte-bounded LRU cache of resident analysis Sessions — the memory
 * behind `deskpar serve`.
 *
 * A cold trace open costs an mmap + full ingest + the index's fused
 * cswitch sweep; a resident service must pay that once per file, not
 * once per request. The cache keys entries by trace file *identity*
 * (size / mtime / FNV-1a header hash — the same TraceIdentity the
 * .dpidx spill cache uses, see index_cache.hh) plus parse mode, and
 * holds fully materialized Sessions (bundle + index), so every
 * request the toolkit knows — metrics, fused queries, bottleneck
 * sweeps — is answerable from a hit.
 *
 * Contracts:
 *
 *  - **Single ingest under racing opens.** Two clients asking for the
 *    same (path, mode) at once share one ingest: the first request
 *    creates a Loading slot and ingests outside the cache-wide lock;
 *    later requests block on the slot and receive the same shared
 *    Session. `stats().ingests` counts real ingests, which the
 *    concurrency tests pin to 1 for N racers.
 *
 *  - **Identity invalidation.** Every hit re-probes the file's
 *    identity (stat + 64 KiB hash). A rewritten trace never serves
 *    stale results: the mismatching entry is dropped and re-ingested.
 *
 *  - **Eviction by bytes.** Entry cost is the bundle's memoryBytes()
 *    estimate plus a fixed index allowance. When the resident total
 *    exceeds maxBytes, least-recently-used Ready entries are dropped
 *    until it fits (in-flight leases keep their Session alive via
 *    shared_ptr; eviction only severs the cache's reference). A
 *    single entry larger than the whole budget is admitted — and
 *    becomes the first eviction victim when anything else arrives.
 *
 *  - **Failure is not cached.** An ingest that throws removes the
 *    Loading slot and rethrows to every waiter; the next acquire
 *    retries from scratch.
 *
 * Thread safety: every public method is safe to call concurrently.
 */

#ifndef DESKPAR_ANALYSIS_SESSION_CACHE_HH
#define DESKPAR_ANALYSIS_SESSION_CACHE_HH

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "analysis/index_cache.hh"
#include "analysis/session.hh"
#include "trace/parse.hh"

namespace deskpar::analysis {

struct SessionCacheOptions
{
    /** Resident-bytes budget before LRU eviction kicks in. */
    std::uint64_t maxBytes = 256ull << 20;
};

/** Counters for the `/stats` endpoint and the cache tests. */
struct SessionCacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    /** Cold ingests actually performed (<= misses under racing). */
    std::uint64_t ingests = 0;
    std::uint64_t evictions = 0;
    /** Entries dropped because the file changed underneath them. */
    std::uint64_t invalidations = 0;
    std::uint64_t residentBytes = 0;
    std::uint64_t entries = 0;
};

class SessionCache
{
  public:
    explicit SessionCache(const SessionCacheOptions &options = {});
    ~SessionCache();

    SessionCache(const SessionCache &) = delete;
    SessionCache &operator=(const SessionCache &) = delete;

    /**
     * One acquired resident trace. The shared_ptrs pin the Session
     * (and its cold-ingest report) for the lease's lifetime, so a
     * concurrent eviction can never pull a Session out from under a
     * running request.
     */
    struct Lease
    {
        std::shared_ptr<const Session> session;
        /** The cold ingest's report (ok() == false => degraded). */
        std::shared_ptr<const trace::IngestReport> report;
        /** File size + ingest wall time of the cold open. */
        trace::IngestStats ingest;
        /** True when served without performing an ingest. */
        bool warm = false;
    };

    /**
     * Open @p path resident: return the cached Session when the file
     * identity still matches, else ingest (format-sniffed: .csv
     * suffix, .etlc magic, .etl otherwise), index, and cache it.
     * Throws TraceParseError on a strict-mode parse failure and
     * FatalError when the file cannot be opened; a lenient-mode
     * degraded ingest succeeds with lease.report->ok() == false.
     */
    Lease acquire(const std::string &path, trace::ParseMode mode);

    /** Drop the entry for @p path (both modes), if resident. */
    void invalidate(const std::string &path);

    SessionCacheStats stats() const;

  private:
    struct Slot;

    /** Ingest + index + pre-warm shared lookup state. Throws. */
    static void fill(Slot &slot, const std::string &path,
                     trace::ParseMode mode);

    /** Unlink @p slot from the LRU accounting (mutex_ held). */
    void dropLocked(const std::string &key, Slot &slot,
                    std::uint64_t &counter);

    /** Evict LRU Ready slots until the budget fits (mutex_ held). */
    void enforceBudgetLocked(const Slot *keep);

    SessionCacheOptions options_;

    mutable std::mutex mutex_;
    std::map<std::string, std::shared_ptr<Slot>> slots_;
    std::uint64_t residentBytes_ = 0;
    /** Monotonic LRU clock; bumped on every hit. */
    std::uint64_t clock_ = 0;
    SessionCacheStats counters_;
};

} // namespace deskpar::analysis

#endif // DESKPAR_ANALYSIS_SESSION_CACHE_HH

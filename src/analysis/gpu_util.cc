#include "analysis/gpu_util.hh"

#include "analysis/intervals.hh"
#include "sim/logging.hh"

namespace deskpar::analysis {

GpuUtilization
computeGpuUtil(const TraceBundle &bundle, const PidSet &pids,
               sim::SimTime t0, sim::SimTime t1)
{
    if (t1 <= t0)
        deskpar::fatal("computeGpuUtil: empty window");

    GpuUtilization out;
    double window = static_cast<double>(t1 - t0);

    std::vector<Interval> busy;
    for (const auto &e : bundle.gpuPackets) {
        if (!pids.empty() && pids.count(e.pid) == 0)
            continue;
        Interval iv = Interval{e.start, e.finish}.clampTo(t0, t1);
        if (iv.empty())
            continue;
        ++out.packetCount;
        double share = static_cast<double>(iv.length()) / window;
        out.aggregateRatio += share;
        out.perEngine[static_cast<unsigned>(e.engine)] += share;
        busy.push_back(iv);
    }

    out.busyRatio =
        static_cast<double>(unionLengthInPlace(busy)) / window;
    out.overlapped = out.aggregateRatio > out.busyRatio + 1e-9;
    return out;
}

GpuUtilization
computeGpuUtil(const TraceBundle &bundle, const PidSet &pids)
{
    return computeGpuUtil(bundle, pids, bundle.startTime,
                          bundle.stopTime);
}

} // namespace deskpar::analysis

#include "analysis/gpu_util.hh"

#include "analysis/intervals.hh"
#include "analysis/session.hh"
#include "analysis/trace_index.hh"
#include "sim/logging.hh"

namespace deskpar::analysis {

namespace detail {

GpuUtilization
foldGpuPackets(const TraceBundle &bundle, const PidSet &pids,
               sim::SimTime t0, sim::SimTime t1, std::size_t first,
               std::size_t last)
{
    GpuUtilization out;
    double window = static_cast<double>(t1 - t0);

    std::vector<Interval> busy;
    for (std::size_t i = first; i < last; ++i) {
        const auto &e = bundle.gpuPackets[i];
        if (!pids.empty() && pids.count(e.pid) == 0)
            continue;
        Interval iv = Interval{e.start, e.finish}.clampTo(t0, t1);
        if (iv.empty())
            continue;
        ++out.packetCount;
        double share = static_cast<double>(iv.length()) / window;
        out.aggregateRatio += share;
        out.perEngine[static_cast<unsigned>(e.engine)] += share;
        busy.push_back(iv);
    }

    out.busyRatio =
        static_cast<double>(unionLengthInPlace(busy)) / window;
    out.overlapped = out.aggregateRatio > out.busyRatio + 1e-9;
    return out;
}

} // namespace detail

namespace legacy {

GpuUtilization
computeGpuUtil(const TraceBundle &bundle, const PidSet &pids,
               sim::SimTime t0, sim::SimTime t1)
{
    if (t1 <= t0)
        deskpar::fatal("computeGpuUtil: empty window");
    return detail::foldGpuPackets(bundle, pids, t0, t1, 0,
                                  bundle.gpuPackets.size());
}

GpuUtilization
computeGpuUtil(const TraceBundle &bundle, const PidSet &pids)
{
    return computeGpuUtil(bundle, pids, bundle.startTime,
                          bundle.stopTime);
}

} // namespace legacy

GpuUtilization
computeGpuUtil(const TraceBundle &bundle, const PidSet &pids,
               sim::SimTime t0, sim::SimTime t1)
{
    return Session(bundle).gpuUtil(pids, t0, t1);
}

GpuUtilization
computeGpuUtil(const TraceBundle &bundle, const PidSet &pids)
{
    return computeGpuUtil(bundle, pids, bundle.startTime,
                          bundle.stopTime);
}

} // namespace deskpar::analysis

/**
 * @file
 * Frame-rate statistics from frame-present events: average FPS,
 * stability (stddev), and the share of synthesized (reprojected)
 * frames — the quantities behind the paper's VR analysis (Section
 * V-F, Figure 13).
 */

#ifndef DESKPAR_ANALYSIS_FRAMERATE_HH
#define DESKPAR_ANALYSIS_FRAMERATE_HH

#include "trace/filter.hh"
#include "trace/session.hh"

namespace deskpar::analysis {

using trace::PidSet;
using trace::TraceBundle;

/** Summary of a frame stream. */
struct FrameStats
{
    std::size_t frames = 0;
    std::size_t synthesizedFrames = 0;
    /** Presented frames per second over the whole window. */
    double avgFps = 0.0;
    /** Standard deviation of instantaneous FPS (1/frame-gap). */
    double fpsStddev = 0.0;
    /** Worst 1% of frame gaps expressed as FPS ("1% low"). */
    double onePercentLowFps = 0.0;

    double
    synthesizedShare() const
    {
        return frames ? static_cast<double>(synthesizedFrames) /
                            static_cast<double>(frames)
                      : 0.0;
    }
};

/**
 * Compute frame statistics for @p pids (empty = all). A thin wrapper
 * over TraceIndex (trace_index.hh), which caches the result per pid
 * set.
 *
 * @deprecated Thin shim over a throwaway analysis::Session; callers
 * issuing more than one query per bundle should hold a Session
 * (analysis/session.hh).
 */
FrameStats computeFrameStats(const TraceBundle &bundle,
                             const PidSet &pids);

namespace legacy {

/**
 * The direct single-sweep implementation — the bit-identical
 * reference for (and backing store of) the index-cached path.
 */
FrameStats computeFrameStats(const TraceBundle &bundle,
                             const PidSet &pids);

} // namespace legacy

} // namespace deskpar::analysis

#endif // DESKPAR_ANALYSIS_FRAMERATE_HH

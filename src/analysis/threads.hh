/**
 * @file
 * Per-thread trace breakdown: busy time, dispatch counts, and names
 * per tid — WPA's "CPU Usage (Precise) by thread" view, used to see
 * *which* threads carry an application's TLP.
 */

#ifndef DESKPAR_ANALYSIS_THREADS_HH
#define DESKPAR_ANALYSIS_THREADS_HH

#include <string>
#include <vector>

#include "trace/filter.hh"
#include "trace/session.hh"

namespace deskpar::analysis {

/**
 * Aggregate activity of one thread over the trace window.
 */
struct ThreadActivity
{
    trace::Pid pid = 0;
    trace::Tid tid = 0;
    std::string processName;
    std::string threadName;
    /** Total on-CPU time. */
    sim::SimDuration busyTime = 0;
    /** Number of dispatches (switch-ins). */
    std::uint64_t dispatches = 0;

    /** Busy time as a fraction of the window. */
    double busyShare(sim::SimDuration window) const;
};

/**
 * Per-thread activity for the processes in @p pids (empty = all
 * non-idle), sorted by descending busy time.
 */
std::vector<ThreadActivity>
threadBreakdown(const trace::TraceBundle &bundle,
                const trace::PidSet &pids);

/** The @p n busiest threads. */
std::vector<ThreadActivity>
topThreads(const trace::TraceBundle &bundle, const trace::PidSet &pids,
           std::size_t n);

} // namespace deskpar::analysis

#endif // DESKPAR_ANALYSIS_THREADS_HH

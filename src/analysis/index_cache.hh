/**
 * @file
 * Spill-to-disk TraceIndex cache: near-instant warm trace reopen.
 *
 * Cold-opening a trace costs a full ingest (parse every record) plus
 * the index's fused cswitch sweep — the two things `deskpar serve`
 * style workloads must not pay per request. This module serializes a
 * built analysis::TraceIndex next to its trace as `<trace>.dpidx`:
 *
 *   dpidx := magic "DPIDX\x01\0\0" (8 bytes),
 *            CRC32C of everything after it (4 bytes, LE),
 *            varint version,
 *            identity: varint file-size, varint mtime,
 *                      varint header-hash (FNV-1a 64 over the first
 *                      64 KiB of the trace file),
 *            varint cswitch-count (informational),
 *            varint length + embedded .etlc bundle image with the
 *                cswitch section EMPTIED (the columns replace it),
 *            varint length + TraceIndex::serializeColumns() blob
 *
 * A warm open costs: stat + 64 KiB hash of the trace (identity
 * check), CRC of the cache, decoding the small embedded bundle
 * (names, GPU packets, frames, lifecycle, markers — everything but
 * the dominant cswitch stream), and adoptColumns(). The cswitch
 * stream itself is never re-read: the concurrency checkpoints,
 * dispatch columns, wait intervals and per-CPU busy intervals come
 * back verbatim, so every cached metric is bit-identical to a fresh
 * build. Queries the columns cannot answer (pid sets that were never
 * warmed, raw-stream sweeps like plan()/bottlenecks()) fail loudly —
 * never silently recompute against the emptied stream.
 *
 * Staleness: any identity mismatch (size, mtime, header hash), CRC
 * mismatch, or malformed payload is treated as "no cache" and the
 * caller falls back to a cold ingest (openSession does this
 * automatically and rewrites the cache).
 */

#ifndef DESKPAR_ANALYSIS_INDEX_CACHE_HH
#define DESKPAR_ANALYSIS_INDEX_CACHE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "analysis/session.hh"
#include "trace/parse.hh"

namespace deskpar::analysis {

/** Identity of a trace file, the cache key. */
struct TraceIdentity
{
    std::uint64_t fileSize = 0;
    /** last_write_time ticks (platform epoch — compared, not shown). */
    std::uint64_t mtime = 0;
    /** FNV-1a 64 of the first min(64 KiB, size) bytes. */
    std::uint64_t headerHash = 0;

    bool operator==(const TraceIdentity &o) const
    {
        return fileSize == o.fileSize && mtime == o.mtime &&
               headerHash == o.headerHash;
    }
    bool operator!=(const TraceIdentity &o) const
    {
        return !(*this == o);
    }
};

/**
 * Stat + hash @p path. Returns false with @p error set when the file
 * cannot be read.
 */
bool probeTraceIdentity(const std::string &path, TraceIdentity &out,
                        std::string &error);

/** Cache path of @p tracePath: `<trace>.dpidx`. */
std::string indexCachePath(const std::string &tracePath);

/**
 * Serialize @p session's index (plus the non-cswitch remainder of
 * its bundle) next to @p tracePath. The caller should have warmed
 * the pid sets it wants servable (TraceIndex::warm); only built
 * columns are spilled. Returns false with @p error set when the
 * trace identity cannot be probed, the index is not cacheable
 * (legacy-fallback timeline), the bundle fails .etlc encoding
 * validation, or the file cannot be written.
 */
bool saveIndexCache(const Session &session,
                    const std::string &tracePath, std::string &error);

/**
 * Warm path: validate `<trace>.dpidx` against @p tracePath's current
 * identity and reconstruct a Session from it without touching the
 * trace's event payload. Returns nullptr with @p error set when
 * there is no usable cache (missing, stale, corrupt) — the caller
 * falls back to a cold open.
 */
std::unique_ptr<Session>
loadCachedSession(const std::string &tracePath, std::string &error);

/** How openSession should ingest and cache. */
struct OpenOptions
{
    trace::ParseOptions parse;
    /**
     * Process-name prefixes whose pid sets must be answerable. The
     * whole-trace set (PidSet{}) is always included. A cache that
     * is missing any of them is treated as stale.
     */
    std::vector<std::string> prefixes;
    /** Try the warm path first. */
    bool useCache = true;
    /** (Re)write the cache after a successful cold ingest. */
    bool refreshCache = true;
};

/** What openSession did. */
struct OpenResult
{
    std::unique_ptr<Session> session;
    /** Cold ingest report; default-constructed on a warm open. */
    trace::IngestReport report;
    /** True when the session came from the cache. */
    bool warm = false;
    /** True when a fresh cache file was written. */
    bool wroteCache = false;
    std::string cachePath;
};

/**
 * Open @p tracePath for analysis: warm from `<trace>.dpidx` when the
 * cache is valid and covers every requested pid set, else cold —
 * mmap + format-sniffed ingest (.csv suffix, .etlc magic, .etl
 * otherwise), warm the requested sets, and refresh the cache.
 * Throws FatalError when the trace file itself cannot be opened;
 * ingest defects are reported via OpenResult::report (check ok()).
 */
OpenResult openSession(const std::string &tracePath,
                       const OpenOptions &options = {});

} // namespace deskpar::analysis

#endif // DESKPAR_ANALYSIS_INDEX_CACHE_HH

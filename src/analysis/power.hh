/**
 * @file
 * First-order power/energy estimation from a trace.
 *
 * The paper's framing (Dennard scaling, dark silicon, TDP walls,
 * Section I and the ASIC-vs-GPU mining citation) motivates asking
 * what the measured utilization *costs*. This estimator converts a
 * trace's CPU concurrency and GPU busy time into package power using
 * the specs' TDP/idle figures:
 *
 *   P_cpu = idle + (TDP - idle) * busy-logical-CPUs / num-logical
 *   P_gpu = idle + (TDP - idle) * busy-fraction
 *
 * It is deliberately linear-in-utilization — good enough to compare
 * configurations (SMT on/off, core counts, GPU offload) and to rank
 * energy-per-frame, not to predict wall-socket watts.
 */

#ifndef DESKPAR_ANALYSIS_POWER_HH
#define DESKPAR_ANALYSIS_POWER_HH

#include <map>
#include <vector>

#include "analysis/intervals.hh"
#include "sim/cpu.hh"
#include "sim/gpu.hh"
#include "trace/event.hh"
#include "trace/session.hh"

namespace deskpar::analysis {

/**
 * Power/energy summary of one trace window.
 */
struct PowerEstimate
{
    double cpuWatts = 0.0;
    double gpuWatts = 0.0;
    /** Window length in seconds. */
    double seconds = 0.0;

    double totalWatts() const { return cpuWatts + gpuWatts; }
    double energyJoules() const { return totalWatts() * seconds; }

    /** Joules per unit of work (e.g. per transcoded frame). */
    double
    energyPer(double units) const
    {
        return units > 0.0 ? energyJoules() / units : 0.0;
    }
};

/**
 * Estimate average power over the whole bundle window. All processes
 * contribute (power is a machine-level quantity).
 *
 * A thin wrapper over TraceIndex (trace_index.hh), which caches the
 * per-CPU busy intervals and GPU columns.
 *
 * @deprecated Thin shim over a throwaway analysis::Session; callers
 * issuing more than one query per bundle should hold a Session
 * (analysis/session.hh).
 */
PowerEstimate estimatePower(const trace::TraceBundle &bundle,
                            const sim::CpuSpec &cpu,
                            const sim::GpuSpec &gpu);

namespace legacy {

/**
 * The direct implementation — the bit-identical reference for the
 * index-backed path.
 */
PowerEstimate estimatePower(const trace::TraceBundle &bundle,
                            const sim::CpuSpec &cpu,
                            const sim::GpuSpec &gpu);

} // namespace legacy

namespace detail {

/**
 * Per-logical-CPU busy intervals reconstructed from the context-
 * switch stream (any non-idle pid counts; power is machine-level).
 * Shared by the legacy estimator and the index's cached column.
 */
std::map<trace::CpuId, std::vector<Interval>>
cpuBusyIntervals(const trace::TraceBundle &bundle);

/**
 * The spec-model half of estimatePower over prebuilt busy intervals
 * and a GPU busy ratio. @p seconds must be the nonzero window length.
 */
PowerEstimate powerFromBusyIntervals(
    const std::map<trace::CpuId, std::vector<Interval>> &intervals,
    double seconds, double gpu_busy_ratio, const sim::CpuSpec &cpu,
    const sim::GpuSpec &gpu);

} // namespace detail

} // namespace deskpar::analysis

#endif // DESKPAR_ANALYSIS_POWER_HH

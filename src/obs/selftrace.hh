/**
 * @file
 * Self-tracing: serialize an obs::Snapshot as a TraceBundle so the
 * toolkit's own pipeline run can be analyzed by the toolkit's own
 * tools (Equation 1 pointed at ourselves).
 *
 * Mapping:
 *  - Each logical obs thread slot becomes one synthetic logical CPU
 *    (and tid slot + 1; tid 0 stays the idle thread).
 *  - Each SpanKind becomes a synthetic process ("deskpar.ingest",
 *    "deskpar.query", ...). At any instant a thread is attributed to
 *    the *innermost* open span's kind, so a CSV chunk decoded inside
 *    a pool task counts as ingest time, not pool time.
 *  - Context switches are emitted at every point the innermost kind
 *    changes (including to/from idle), which turns span nesting into
 *    an ordinary CPU Usage (Precise) stream: computeConcurrency over
 *    pid prefix "deskpar.ingest" is the parallel-ingest TLP.
 *  - Query-kind spans are additionally emitted as GPU compute
 *    packets, so the index-query phase shows up in the GPU
 *    utilization view (aggregate ratio = query concurrency).
 *  - Depth-0 Job spans also leave begin markers ("obs:<name>").
 *
 * The resulting bundle round-trips through writeEtl/decodeEtl like
 * any other trace; `deskpar stats` does exactly that to prove the
 * loop closes.
 */

#ifndef DESKPAR_OBS_SELFTRACE_HH
#define DESKPAR_OBS_SELFTRACE_HH

#include "obs/obs.hh"
#include "trace/session.hh"

namespace deskpar::obs {

/** Name prefix shared by every synthetic self-trace process. */
inline constexpr const char *kSelfTracePrefix = "deskpar.";

/** Synthetic pid of @p kind (stable across runs). */
trace::Pid selfTracePid(SpanKind kind);

/** Synthetic process name of @p kind ("deskpar.ingest", ...). */
std::string selfTraceProcessName(SpanKind kind);

/**
 * Build the synthetic bundle described above from @p snapshot.
 * The observation window is [0, max span end]; numLogicalCpus is the
 * snapshot's thread-slot count. An empty snapshot yields an empty
 * one-CPU bundle.
 */
trace::TraceBundle toTraceBundle(const Snapshot &snapshot);

} // namespace deskpar::obs

#endif // DESKPAR_OBS_SELFTRACE_HH

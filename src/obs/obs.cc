#include "obs/obs.hh"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <ostream>

namespace deskpar::obs {

const char *
spanKindName(SpanKind kind)
{
    switch (kind) {
      case SpanKind::Task:
        return "task";
      case SpanKind::Job:
        return "job";
      case SpanKind::Ingest:
        return "ingest";
      case SpanKind::Index:
        return "index";
      case SpanKind::Query:
        return "query";
      case SpanKind::Report:
        return "report";
      case SpanKind::Plan:
        return "plan";
      case SpanKind::Serve:
        return "serve";
      case SpanKind::Other:
        break;
    }
    return "other";
}

std::vector<SpanStat>
aggregate(const Snapshot &snapshot)
{
    // Name pointers are not unique across translation units, so
    // group by string content. Per-name thread sets are tiny (peak
    // pool width), a sorted vector is enough.
    std::vector<SpanStat> stats;
    std::vector<std::vector<std::uint32_t>> threadSets;
    for (const SpanRecord &span : snapshot.spans) {
        std::size_t slot = stats.size();
        for (std::size_t i = 0; i < stats.size(); ++i) {
            if (stats[i].name == span.name ||
                std::strcmp(stats[i].name, span.name) == 0) {
                slot = i;
                break;
            }
        }
        if (slot == stats.size()) {
            SpanStat stat;
            stat.name = span.name;
            stat.kind = span.kind;
            stat.minNs = span.durationNs();
            stats.push_back(stat);
            threadSets.emplace_back();
        }
        SpanStat &stat = stats[slot];
        std::uint64_t ns = span.durationNs();
        ++stat.count;
        stat.totalNs += ns;
        stat.minNs = std::min(stat.minNs, ns);
        stat.maxNs = std::max(stat.maxNs, ns);
        auto &threads = threadSets[slot];
        auto it = std::lower_bound(threads.begin(), threads.end(),
                                   span.thread);
        if (it == threads.end() || *it != span.thread)
            threads.insert(it, span.thread);
    }
    for (std::size_t i = 0; i < stats.size(); ++i)
        stats[i].threads =
            static_cast<std::uint32_t>(threadSets[i].size());
    std::sort(stats.begin(), stats.end(),
              [](const SpanStat &a, const SpanStat &b) {
                  if (a.totalNs != b.totalNs)
                      return a.totalNs > b.totalNs;
                  return std::strcmp(a.name, b.name) < 0;
              });
    return stats;
}

void
writeStatsJson(std::ostream &out, const Snapshot &snapshot)
{
    // Span/counter names are instrumentation-site literals (no
    // quotes or backslashes), so raw emission is escape-correct.
    out << "{\"schema\":1,\"obs\":{\"threads\":" << snapshot.threads
        << ",\"dropped_spans\":" << snapshot.droppedSpans
        << ",\"spans\":[";
    std::vector<SpanStat> stats = aggregate(snapshot);
    for (std::size_t i = 0; i < stats.size(); ++i) {
        const SpanStat &s = stats[i];
        out << (i ? "," : "") << "{\"name\":\"" << s.name
            << "\",\"kind\":\"" << spanKindName(s.kind)
            << "\",\"count\":" << s.count
            << ",\"total_ns\":" << s.totalNs
            << ",\"min_ns\":" << s.minNs << ",\"max_ns\":" << s.maxNs
            << ",\"threads\":" << s.threads << "}";
    }
    out << "],\"counters\":[";
    for (std::size_t i = 0; i < snapshot.counters.size(); ++i) {
        out << (i ? "," : "") << "{\"name\":\""
            << snapshot.counters[i].name
            << "\",\"total\":" << snapshot.counters[i].total << "}";
    }
    out << "]}}";
}

#if !defined(DESKPAR_OBS_DISABLED)

namespace detail {

std::atomic<bool> g_enabled{[] {
    const char *env = std::getenv("DESKPAR_OBS");
    return env && env[0] == '1';
}()};

ThreadLog::ThreadLog(std::uint32_t id, std::size_t capacity)
    : id_(id), ring_(capacity ? capacity : 1)
{}

void
ThreadLog::push(const SpanRecord &record)
{
    std::uint64_t head = head_.load(std::memory_order_relaxed);
    std::uint64_t tail = tail_.load(std::memory_order_acquire);
    if (head - tail >= ring_.size()) {
        dropped_.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    ring_[head % ring_.size()] = record;
    head_.store(head + 1, std::memory_order_release);
}

void
ThreadLog::add(const char *name, std::int64_t delta)
{
    for (CounterSlot &slot : counters_) {
        const char *cur = slot.name.load(std::memory_order_relaxed);
        if (cur == nullptr) {
            // Owner thread is the sole name writer; publish the name
            // after which the total becomes meaningful to readers.
            slot.total.store(0, std::memory_order_relaxed);
            slot.name.store(name, std::memory_order_release);
            cur = name;
        }
        if (cur == name || std::strcmp(cur, name) == 0) {
            slot.total.fetch_add(delta, std::memory_order_relaxed);
            return;
        }
    }
    // All slots taken by other names: the counter is dropped. 64
    // distinct names per thread is far beyond the instrumentation's
    // vocabulary, so this is a theoretical path.
}

void
ThreadLog::drainInto(std::vector<SpanRecord> &out)
{
    std::uint64_t head = head_.load(std::memory_order_acquire);
    std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    for (std::uint64_t i = tail; i != head; ++i)
        out.push_back(ring_[i % ring_.size()]);
    tail_.store(head, std::memory_order_release);
}

void
ThreadLog::countersInto(std::vector<CounterTotal> &out) const
{
    for (const CounterSlot &slot : counters_) {
        const char *name = slot.name.load(std::memory_order_acquire);
        if (!name)
            continue;
        std::int64_t total =
            slot.total.load(std::memory_order_relaxed);
        bool merged = false;
        for (CounterTotal &existing : out) {
            if (existing.name == name ||
                std::strcmp(existing.name, name) == 0) {
                existing.total += total;
                merged = true;
                break;
            }
        }
        if (!merged)
            out.push_back({name, total});
    }
}

void
ThreadLog::clear()
{
    tail_.store(head_.load(std::memory_order_acquire),
                std::memory_order_release);
    dropped_.store(0, std::memory_order_relaxed);
    for (CounterSlot &slot : counters_) {
        slot.name.store(nullptr, std::memory_order_relaxed);
        slot.total.store(0, std::memory_order_relaxed);
    }
}

std::size_t
defaultRingCapacity()
{
    if (const char *env = std::getenv("DESKPAR_OBS_BUFFER")) {
        char *end = nullptr;
        unsigned long n = std::strtoul(env, &end, 10);
        if (end && *end == '\0' && n > 0 && n <= (1u << 24))
            return static_cast<std::size_t>(n);
    }
    return 1 << 16;
}

/**
 * Owner of every ThreadLog ever created plus the free-list of slots
 * whose thread has exited. Leaked on purpose: thread_local handle
 * destructors (including the main thread's at process exit) must
 * outlive it safely.
 */
struct Registry
{
    std::mutex mutex;
    std::vector<std::unique_ptr<ThreadLog>> logs;
    std::vector<std::uint32_t> freeSlots;
    std::size_t ringCapacity = defaultRingCapacity();
};

Registry &
registry()
{
    static Registry *r = new Registry;
    return *r;
}

/** Releases the thread's slot back to the free-list at thread exit. */
struct Handle
{
    ThreadLog *log = nullptr;

    ~Handle()
    {
        if (!log)
            return;
        Registry &reg = registry();
        std::lock_guard<std::mutex> lock(reg.mutex);
        reg.freeSlots.push_back(log->id());
    }
};

thread_local Handle t_handle;

ThreadLog *
threadLog()
{
    if (t_handle.log)
        return t_handle.log;
    Registry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    if (!reg.freeSlots.empty()) {
        std::uint32_t slot = reg.freeSlots.back();
        reg.freeSlots.pop_back();
        t_handle.log = reg.logs[slot].get();
    } else {
        auto slot = static_cast<std::uint32_t>(reg.logs.size());
        reg.logs.push_back(
            std::make_unique<ThreadLog>(slot, reg.ringCapacity));
        t_handle.log = reg.logs.back().get();
    }
    return t_handle.log;
}

std::uint64_t
nowNs()
{
    static const std::chrono::steady_clock::time_point epoch =
        std::chrono::steady_clock::now();
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch)
            .count());
}

} // namespace detail

void
setEnabled(bool on)
{
    if (on) {
        // Pin the epoch (and its init guard) before any span races.
        detail::nowNs();
    }
    detail::enabledFlag().store(on, std::memory_order_relaxed);
}

Snapshot
collect()
{
    Snapshot snapshot;
    // collect() and threadLog() share the registry mutex, so a
    // collection concurrent with new-thread registration is ordered;
    // records of threads registered later land in the next collect.
    detail::Registry &reg = detail::registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    snapshot.threads = static_cast<std::uint32_t>(reg.logs.size());
    for (auto &log : reg.logs) {
        log->drainInto(snapshot.spans);
        log->countersInto(snapshot.counters);
        snapshot.droppedSpans += log->dropped();
    }
    std::sort(snapshot.spans.begin(), snapshot.spans.end(),
              [](const SpanRecord &a, const SpanRecord &b) {
                  if (a.startNs != b.startNs)
                      return a.startNs < b.startNs;
                  if (a.thread != b.thread)
                      return a.thread < b.thread;
                  return a.depth < b.depth;
              });
    std::sort(snapshot.counters.begin(), snapshot.counters.end(),
              [](const CounterTotal &a, const CounterTotal &b) {
                  return std::strcmp(a.name, b.name) < 0;
              });
    return snapshot;
}

void
reset()
{
    detail::Registry &reg = detail::registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    for (auto &log : reg.logs)
        log->clear();
}

void
setRingCapacity(std::size_t spans)
{
    detail::Registry &reg = detail::registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    reg.ringCapacity = spans ? spans : 1;
}

#else // DESKPAR_OBS_DISABLED

Snapshot
collect()
{
    return {};
}

void
reset()
{}

void
setRingCapacity(std::size_t)
{}

#endif // DESKPAR_OBS_DISABLED

} // namespace deskpar::obs

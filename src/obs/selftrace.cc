#include "obs/selftrace.hh"

#include <algorithm>
#include <map>
#include <utility>
#include <vector>

namespace deskpar::obs {

namespace {

/**
 * Synthetic pid block. Well above the simulator's handed-out pids
 * (which start at 1 and grow by process count) so a self-trace can
 * even be merged with an ordinary bundle without collisions.
 */
constexpr trace::Pid kSelfTracePidBase = 9000;

/** Tid of @p pid's thread on obs thread slot @p thread. */
trace::Tid
selfTraceTid(trace::Pid pid, std::uint32_t thread)
{
    return pid * 1000 + thread + 1;
}

/** One (time, pid) attribution change on a thread's synthetic CPU. */
struct Segment
{
    std::uint64_t time = 0;
    trace::Pid pid = 0;
};

/**
 * Reduce one thread's (properly nested) spans to the timeline of its
 * innermost open span's pid. Boundary events are processed in time
 * order with closes before opens, closes innermost-first and opens
 * outermost-first, which replays the RAII open/close order exactly.
 * The sparse stack tolerates spans lost to ring overflow (a missing
 * parent leaves a null level instead of corrupting attribution).
 */
std::vector<Segment>
threadSegments(const std::vector<const SpanRecord *> &spans)
{
    struct Edge
    {
        std::uint64_t time = 0;
        bool open = false;
        const SpanRecord *span = nullptr;
    };
    std::vector<Edge> edges;
    edges.reserve(spans.size() * 2);
    for (const SpanRecord *span : spans) {
        if (span->endNs <= span->startNs)
            continue; // zero-length: no attributable time
        edges.push_back({span->startNs, true, span});
        edges.push_back({span->endNs, false, span});
    }
    std::sort(edges.begin(), edges.end(),
              [](const Edge &a, const Edge &b) {
                  if (a.time != b.time)
                      return a.time < b.time;
                  if (a.open != b.open)
                      return !a.open; // closes first
                  if (a.open)
                      return a.span->depth < b.span->depth;
                  return a.span->depth > b.span->depth;
              });

    std::vector<Segment> segments;
    std::vector<const SpanRecord *> stack;
    trace::Pid current = 0;
    std::size_t i = 0;
    while (i < edges.size()) {
        std::uint64_t now = edges[i].time;
        for (; i < edges.size() && edges[i].time == now; ++i) {
            const Edge &edge = edges[i];
            std::size_t depth = edge.span->depth;
            if (edge.open) {
                if (stack.size() <= depth)
                    stack.resize(depth + 1, nullptr);
                stack[depth] = edge.span;
            } else {
                if (depth < stack.size() &&
                    stack[depth] == edge.span)
                    stack[depth] = nullptr;
                while (!stack.empty() && stack.back() == nullptr)
                    stack.pop_back();
            }
        }
        const SpanRecord *innermost = nullptr;
        for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
            if (*it) {
                innermost = *it;
                break;
            }
        }
        trace::Pid pid =
            innermost ? selfTracePid(innermost->kind) : 0;
        if (pid != current) {
            segments.push_back({now, pid});
            current = pid;
        }
    }
    return segments;
}

} // namespace

trace::Pid
selfTracePid(SpanKind kind)
{
    return kSelfTracePidBase + static_cast<trace::Pid>(kind);
}

std::string
selfTraceProcessName(SpanKind kind)
{
    switch (kind) {
      case SpanKind::Task:
        return "deskpar.parallel";
      case SpanKind::Job:
        return "deskpar.job";
      case SpanKind::Ingest:
        return "deskpar.ingest";
      case SpanKind::Index:
        return "deskpar.index";
      case SpanKind::Query:
        return "deskpar.query";
      case SpanKind::Report:
        return "deskpar.report";
      case SpanKind::Plan:
        return "deskpar.plan";
      case SpanKind::Serve:
        return "deskpar.serve";
      case SpanKind::Other:
        break;
    }
    return "deskpar.other";
}

trace::TraceBundle
toTraceBundle(const Snapshot &snapshot)
{
    trace::TraceBundle bundle;
    bundle.startTime = 0;
    bundle.stopTime = 1;
    bundle.numLogicalCpus = snapshot.threads ? snapshot.threads : 1;

    std::uint32_t maxThread = 0;
    std::uint64_t maxEnd = 0;
    for (const SpanRecord &span : snapshot.spans) {
        maxThread = std::max(maxThread, span.thread);
        maxEnd = std::max(maxEnd, span.endNs);
    }
    if (maxEnd > 0)
        bundle.stopTime = maxEnd;
    bundle.numLogicalCpus =
        std::max(bundle.numLogicalCpus, maxThread + 1);

    // Per-thread span lists (snapshot order is already by start).
    std::vector<std::vector<const SpanRecord *>> perThread(
        bundle.numLogicalCpus);
    bool present[kNumSpanKinds] = {};
    for (const SpanRecord &span : snapshot.spans) {
        perThread[span.thread].push_back(&span);
        present[static_cast<unsigned>(span.kind)] = true;

        if (span.kind == SpanKind::Query) {
            trace::GpuPacketEvent packet;
            packet.queued = span.startNs;
            packet.start = span.startNs;
            packet.finish = span.endNs;
            packet.pid = selfTracePid(SpanKind::Query);
            packet.engine = trace::GpuEngineId::Compute;
            packet.packetId = static_cast<std::uint32_t>(
                bundle.gpuPackets.size());
            packet.queueSlot =
                static_cast<std::uint8_t>(span.thread & 0xff);
            bundle.gpuPackets.push_back(packet);
        }
        if (span.depth == 0 && span.kind == SpanKind::Job) {
            trace::MarkerEvent marker;
            marker.timestamp = span.startNs;
            marker.label = std::string("obs:") + span.name;
            bundle.markers.push_back(std::move(marker));
        }
    }

    for (unsigned kind = 0; kind < kNumSpanKinds; ++kind) {
        if (!present[kind])
            continue;
        auto k = static_cast<SpanKind>(kind);
        bundle.processNames[selfTracePid(k)] =
            selfTraceProcessName(k);
    }

    // Innermost-kind segments -> context switches on cpu = thread.
    // A kind resuming after being shadowed by a nested span was
    // conceptually runnable the whole time, so its ready time is the
    // moment it was last switched out on this thread — that makes
    // the ready-queue waits `deskpar bottlenecks` derives from a
    // self-trace real, not uniformly zero. First dispatches carry
    // readyTime == timestamp (no observable wait).
    for (std::uint32_t thread = 0; thread < perThread.size();
         ++thread) {
        trace::Pid prevPid = 0;
        std::map<trace::Pid, std::uint64_t> lastOut;
        for (const Segment &seg : threadSegments(perThread[thread])) {
            trace::CSwitchEvent e;
            e.timestamp = seg.time;
            e.cpu = thread;
            e.oldPid = prevPid;
            e.oldTid =
                prevPid ? selfTraceTid(prevPid, thread) : 0;
            e.newPid = seg.pid;
            e.newTid = seg.pid ? selfTraceTid(seg.pid, thread) : 0;
            auto out = lastOut.find(seg.pid);
            e.readyTime =
                out != lastOut.end() ? out->second : seg.time;
            if (prevPid)
                lastOut[prevPid] = seg.time;
            bundle.cswitches.push_back(e);
            prevPid = seg.pid;
        }
    }

    // writeEtl's delta encoding needs every stream time-sorted.
    std::stable_sort(bundle.cswitches.begin(),
                     bundle.cswitches.end(),
                     [](const trace::CSwitchEvent &a,
                        const trace::CSwitchEvent &b) {
                         return a.timestamp < b.timestamp;
                     });
    std::stable_sort(bundle.gpuPackets.begin(),
                     bundle.gpuPackets.end(),
                     [](const trace::GpuPacketEvent &a,
                        const trace::GpuPacketEvent &b) {
                         return a.start < b.start;
                     });
    std::stable_sort(bundle.markers.begin(), bundle.markers.end(),
                     [](const trace::MarkerEvent &a,
                        const trace::MarkerEvent &b) {
                         return a.timestamp < b.timestamp;
                     });
    return bundle;
}

} // namespace deskpar::obs

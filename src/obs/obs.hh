/**
 * @file
 * Pipeline-wide observability: RAII spans and monotonic counters the
 * toolkit records about *itself* while it runs.
 *
 * The paper's whole method is characterizing applications from their
 * thread-activity timelines; this layer lets DeskPar do the same to
 * its own pipeline. Every instrumented hot path (suite-runner tasks,
 * parallel chunk/section decode, index builds and queries, report
 * emission) opens a Span; the records land in per-thread ring
 * buffers and are collected after the run into a Snapshot that
 * serializes two ways:
 *
 *  - a machine-readable JSON stats report (writeStatsJson), and
 *  - DeskPar's own .etl trace container (obs/selftrace.hh), where
 *    each span becomes a synthetic context-switch / GPU-packet
 *    stream — so `deskpar replay` and analysis::TraceIndex compute
 *    the TLP of DeskPar's own ingest/analysis run (Equation 1,
 *    pointed at ourselves).
 *
 * Cost model:
 *  - Compiled out (-DDESKPAR_OBS=OFF): Span/counterAdd are empty
 *    inlines; zero code, zero data.
 *  - Disabled at runtime (the default; enable with the DESKPAR_OBS=1
 *    environment variable or obs::setEnabled): one relaxed atomic
 *    load per span/counter, no allocation, no clock read. The
 *    zero-allocation guard test pins this down.
 *  - Enabled: two steady_clock reads plus one store into a
 *    preallocated single-producer ring per span. Buffers are
 *    recycled across pool threads, so memory is bounded by the peak
 *    concurrent thread count, not the total thread count.
 *
 * Threading: each ring is written only by its owner thread and
 * drained by collect() with acquire/release ordering (SPSC). A full
 * ring drops the record and counts the drop — instrumentation never
 * blocks the pipeline.
 */

#ifndef DESKPAR_OBS_OBS_HH
#define DESKPAR_OBS_OBS_HH

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace deskpar::obs {

/**
 * Coarse span category. The self-trace exporter maps each kind to a
 * synthetic process ("deskpar.ingest", "deskpar.query", ...), so the
 * per-phase TLP of the pipeline falls out of the ordinary
 * application-level analysis machinery.
 */
enum class SpanKind : std::uint8_t {
    /** Generic parallel-pool work (worker loops, stolen tasks). */
    Task = 0,
    /** A suite job / simulation iteration / replay lifecycle. */
    Job = 1,
    /** Trace decode: CSV chunks, .etl sections, file ingest. */
    Ingest = 2,
    /** TraceIndex column builds. */
    Index = 3,
    /** Metric queries answered by the index. */
    Query = 4,
    /** Report/figure/JSON emission. */
    Report = 5,
    /** Anything else. */
    Other = 6,
    /** Query-plan compilation and fused batch execution. */
    Plan = 7,
    /** One `deskpar serve` request, demultiplexer to response. */
    Serve = 8,
};

/** Number of distinct span kinds (array sizing). */
inline constexpr unsigned kNumSpanKinds = 9;

/** Human-readable kind name ("task", "ingest", ...). */
const char *spanKindName(SpanKind kind);

/**
 * One closed span. @p name must be a string with static storage
 * duration (instrumentation sites pass literals); records store the
 * pointer, not a copy, so recording never allocates.
 */
struct SpanRecord
{
    const char *name = nullptr;
    /** Monotonic nanoseconds since the process obs epoch. */
    std::uint64_t startNs = 0;
    std::uint64_t endNs = 0;
    /** Optional payload (bytes decoded, task index, ...). */
    std::uint64_t arg = 0;
    /** Logical thread slot (recycled across pool threads). */
    std::uint32_t thread = 0;
    /** Nesting depth at open (0 = outermost on its thread). */
    std::uint16_t depth = 0;
    SpanKind kind = SpanKind::Other;

    std::uint64_t durationNs() const { return endNs - startNs; }
};

/** Aggregated total of one counter across all threads. */
struct CounterTotal
{
    const char *name = nullptr;
    std::int64_t total = 0;
};

/**
 * Everything collect() drains: the closed spans of every thread
 * (sorted by start time), counter totals, and bookkeeping.
 */
struct Snapshot
{
    std::vector<SpanRecord> spans;
    std::vector<CounterTotal> counters;
    /** Spans lost to full rings (never blocks the pipeline). */
    std::uint64_t droppedSpans = 0;
    /** Logical thread slots that recorded at least once. */
    std::uint32_t threads = 0;

    bool empty() const { return spans.empty() && counters.empty(); }
};

/** Per-span-name aggregate for the stats report. */
struct SpanStat
{
    const char *name = nullptr;
    SpanKind kind = SpanKind::Other;
    std::uint64_t count = 0;
    std::uint64_t totalNs = 0;
    std::uint64_t minNs = 0;
    std::uint64_t maxNs = 0;
    /** Distinct threads the span ran on. */
    std::uint32_t threads = 0;

    double meanNs() const
    {
        return count ? static_cast<double>(totalNs) /
                           static_cast<double>(count)
                     : 0.0;
    }
};

#if !defined(DESKPAR_OBS_DISABLED)

namespace detail {

/** Single-producer ring of closed spans plus counter slots. */
class ThreadLog
{
  public:
    explicit ThreadLog(std::uint32_t id, std::size_t capacity);

    std::uint32_t id() const { return id_; }

    /** Owner thread only. */
    void push(const SpanRecord &record);
    void add(const char *name, std::int64_t delta);

    /** Collector side: drain published spans into @p out. */
    void drainInto(std::vector<SpanRecord> &out);
    /** Collector side: fold counter totals into @p out. */
    void countersInto(std::vector<CounterTotal> &out) const;
    /** Collector side: drops so far. */
    std::uint64_t dropped() const
    {
        return dropped_.load(std::memory_order_relaxed);
    }

    /** Collector side, quiescent only: zero everything (reset()). */
    void clear();

    /** Owner-thread nesting depth (maintained by Span). */
    std::uint16_t depth = 0;

  private:
    static constexpr std::size_t kMaxCounters = 64;

    std::uint32_t id_;
    std::vector<SpanRecord> ring_;
    std::atomic<std::uint64_t> head_{0};
    std::atomic<std::uint64_t> tail_{0};
    std::atomic<std::uint64_t> dropped_{0};

    struct CounterSlot
    {
        std::atomic<const char *> name{nullptr};
        std::atomic<std::int64_t> total{0};
    };
    CounterSlot counters_[kMaxCounters];
};

/** True when recording is on (env DESKPAR_OBS / setEnabled). */
inline std::atomic<bool> &
enabledFlag()
{
    extern std::atomic<bool> g_enabled;
    return g_enabled;
}

/** The calling thread's log, acquiring a recycled slot on first use. */
ThreadLog *threadLog();

/** Monotonic nanoseconds since the process obs epoch. */
std::uint64_t nowNs();

} // namespace detail

/** True when spans/counters are being recorded. */
inline bool
enabled()
{
    return detail::enabledFlag().load(std::memory_order_relaxed);
}

/**
 * Turn recording on/off programmatically (`deskpar stats`, tests).
 * The DESKPAR_OBS environment variable ("1"/"0") sets the initial
 * state; default off.
 */
void setEnabled(bool on);

/**
 * RAII span. Construction snapshots the clock when recording is on;
 * destruction publishes the closed record to the thread's ring.
 * Cheap enough for per-task/per-chunk granularity; not meant for
 * per-event inner loops.
 */
class Span
{
  public:
    explicit Span(const char *name, SpanKind kind = SpanKind::Other,
                  std::uint64_t arg = 0)
    {
        if (!enabled())
            return;
        log_ = detail::threadLog();
        name_ = name;
        kind_ = kind;
        arg_ = arg;
        depth_ = log_->depth++;
        startNs_ = detail::nowNs();
    }

    ~Span()
    {
        if (!log_)
            return;
        --log_->depth;
        SpanRecord record;
        record.name = name_;
        record.startNs = startNs_;
        record.endNs = detail::nowNs();
        record.arg = arg_;
        record.thread = log_->id();
        record.depth = depth_;
        record.kind = kind_;
        log_->push(record);
    }

    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

    /** Attach/replace the payload after construction. */
    void setArg(std::uint64_t arg) { arg_ = arg; }

  private:
    detail::ThreadLog *log_ = nullptr;
    const char *name_ = nullptr;
    std::uint64_t startNs_ = 0;
    std::uint64_t arg_ = 0;
    std::uint16_t depth_ = 0;
    SpanKind kind_ = SpanKind::Other;
};

/**
 * Add @p delta to the per-thread counter @p name (a literal).
 * Totals are aggregated across threads at collect() time.
 */
inline void
counterAdd(const char *name, std::int64_t delta)
{
    if (!enabled())
        return;
    detail::threadLog()->add(name, delta);
}

#else // DESKPAR_OBS_DISABLED: compile the whole layer out.

inline bool enabled() { return false; }
inline void setEnabled(bool) {}

class Span
{
  public:
    explicit Span(const char *, SpanKind = SpanKind::Other,
                  std::uint64_t = 0)
    {}
    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;
    void setArg(std::uint64_t) {}
};

inline void counterAdd(const char *, std::int64_t) {}

#endif // DESKPAR_OBS_DISABLED

/**
 * Drain every thread's ring into one Snapshot, spans sorted by
 * (start, thread, depth). Safe while other threads keep recording —
 * they simply land in the next collect. Compiled-out builds return
 * an empty snapshot.
 */
Snapshot collect();

/**
 * Discard all pending records and counter totals. Registered thread
 * buffers stay alive (live threads keep their slots); call between
 * measured phases or tests.
 */
void reset();

/**
 * Ring capacity (spans per thread slot) for buffers created *after*
 * this call; existing buffers keep their size. Default 65536, or the
 * DESKPAR_OBS_BUFFER environment variable.
 */
void setRingCapacity(std::size_t spans);

/** Aggregate a snapshot per span name, sorted by total time desc. */
std::vector<SpanStat> aggregate(const Snapshot &snapshot);

/**
 * Machine-readable stats report: one JSON object with per-span-name
 * aggregates and counter totals (`deskpar stats`; consumable by
 * tools/bench_compare-style line scanners).
 */
void writeStatsJson(std::ostream &out, const Snapshot &snapshot);

} // namespace deskpar::obs

#endif // DESKPAR_OBS_OBS_HH

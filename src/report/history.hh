/**
 * @file
 * Historical comparison data for Figures 2 and 3: the 2000 (Flautner
 * et al.) and 2010 (Blake et al.) TLP / GPU-utilization numbers the
 * paper plots next to its 2018 measurements.
 *
 * The paper itself imports these from prior work; the values here are
 * transcribed from the bars of Figures 2 and 3 (the originals publish
 * no tables), so they are approximate to within the figure's
 * resolution (~0.1 TLP / ~2% GPU).
 */

#ifndef DESKPAR_REPORT_HISTORY_HH
#define DESKPAR_REPORT_HISTORY_HH

#include <string>
#include <vector>

namespace deskpar::report {

/** One historical bar of Figure 2 or 3. */
struct HistoryEntry
{
    std::string app;      ///< display label ("Photoshop CS4")
    std::string category; ///< figure group ("Image Authoring")
    int year;             ///< 2000 or 2010
    double value;         ///< TLP or GPU utilization %
};

/** Figure 2's 2000/2010 TLP bars. */
const std::vector<HistoryEntry> &tlpHistory();

/** Figure 3's 2010 GPU-utilization bars. */
const std::vector<HistoryEntry> &gpuHistory();

} // namespace deskpar::report

#endif // DESKPAR_REPORT_HISTORY_HH

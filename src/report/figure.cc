#include "report/figure.hh"

#include <algorithm>
#include <cmath>
#include <map>
#include <ostream>

#include "report/table.hh"
#include "obs/obs.hh"
#include "sim/logging.hh"

namespace deskpar::report {

Series &
Figure::addSeries(const std::string &name)
{
    series_.push_back(Series{name, {}, {}});
    return series_.back();
}

void
Figure::printData(std::ostream &out) const
{
    obs::Span span("report.figure", obs::SpanKind::Report);
    out << "# " << title_ << "\n";
    out << "# x: " << xLabel_ << ", y: " << yLabel_ << "\n";

    // Collect the union of x values across series.
    std::map<double, std::vector<std::string>> rows;
    for (std::size_t s = 0; s < series_.size(); ++s) {
        for (std::size_t i = 0; i < series_[s].x.size(); ++i) {
            auto &row = rows[series_[s].x[i]];
            row.resize(series_.size());
            row[s] = formatNumber(series_[s].y[i], 3);
        }
    }

    out << xLabel_;
    for (const auto &s : series_)
        out << '\t' << s.name;
    out << '\n';
    for (const auto &[x, cells] : rows) {
        out << formatNumber(x, 3);
        for (std::size_t s = 0; s < series_.size(); ++s) {
            out << '\t'
                << (s < cells.size() && !cells[s].empty()
                        ? cells[s]
                        : std::string("-"));
        }
        out << '\n';
    }
}

void
Figure::printAscii(std::ostream &out, unsigned width,
                   unsigned height) const
{
    obs::Span span("report.figure", obs::SpanKind::Report);
    if (series_.empty() || width < 8 || height < 4) {
        out << "(no data)\n";
        return;
    }

    double xmin = 1e300, xmax = -1e300;
    double ymin = 0.0, ymax = -1e300;
    for (const auto &s : series_) {
        for (double v : s.x) {
            xmin = std::min(xmin, v);
            xmax = std::max(xmax, v);
        }
        for (double v : s.y) {
            ymin = std::min(ymin, v);
            ymax = std::max(ymax, v);
        }
    }
    if (xmax <= xmin)
        xmax = xmin + 1.0;
    if (ymax <= ymin)
        ymax = ymin + 1.0;

    std::vector<std::string> grid(height, std::string(width, ' '));
    const char glyphs[] = "*o+x%&";
    for (std::size_t s = 0; s < series_.size(); ++s) {
        char glyph = glyphs[s % (sizeof(glyphs) - 1)];
        for (std::size_t i = 0; i < series_[s].x.size(); ++i) {
            double fx = (series_[s].x[i] - xmin) / (xmax - xmin);
            double fy = (series_[s].y[i] - ymin) / (ymax - ymin);
            auto col = static_cast<unsigned>(
                std::lround(fx * (width - 1)));
            auto row = static_cast<unsigned>(
                std::lround((1.0 - fy) * (height - 1)));
            grid[row][col] = glyph;
        }
    }

    out << title_ << "\n";
    for (unsigned r = 0; r < height; ++r) {
        double yv = ymax - (ymax - ymin) * r / (height - 1);
        char label[16];
        std::snprintf(label, sizeof(label), "%8.1f |", yv);
        out << label << grid[r] << '\n';
    }
    out << "          " << std::string(width, '-') << '\n';
    char xlab[64];
    std::snprintf(xlab, sizeof(xlab), "%10.1f%*s%.1f  (%s)\n", xmin,
                  static_cast<int>(width - 8), "", xmax,
                  xLabel_.c_str());
    out << xlab;
    out << "  legend:";
    for (std::size_t s = 0; s < series_.size(); ++s) {
        out << "  " << glyphs[s % (sizeof(glyphs) - 1)] << '='
            << series_[s].name;
    }
    out << '\n';
}

void
printBarGroups(std::ostream &out, const std::string &title,
               const std::vector<std::string> &groups,
               const std::vector<Series> &series, double max_value,
               unsigned bar_width)
{
    if (max_value <= 0.0)
        fatal("printBarGroups: non-positive max");
    out << title << "\n";
    std::size_t label_width = 0;
    for (const auto &s : series)
        label_width = std::max(label_width, s.name.size());

    for (std::size_t g = 0; g < groups.size(); ++g) {
        out << groups[g] << "\n";
        for (const auto &s : series) {
            if (g >= s.y.size())
                continue;
            double v = s.y[g];
            auto bars = static_cast<unsigned>(std::lround(
                std::clamp(v / max_value, 0.0, 1.0) * bar_width));
            out << "  ";
            out << s.name;
            out << std::string(label_width - s.name.size() + 1, ' ');
            out << '|' << std::string(bars, '#')
                << std::string(bar_width - bars, ' ') << "| "
                << formatNumber(v, 1) << '\n';
        }
    }
}

} // namespace deskpar::report

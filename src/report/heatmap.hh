/**
 * @file
 * Execution-time heat map: the Table II visualization — for each
 * application, the percentage of wall time spent with exactly i
 * logical CPUs busy, shaded per cell.
 */

#ifndef DESKPAR_REPORT_HEATMAP_HH
#define DESKPAR_REPORT_HEATMAP_HH

#include <string>
#include <vector>

namespace deskpar::report {

/**
 * Render one c_0..c_n row as shaded cells. Shades use a 9-step ASCII
 * ramp; each cell is annotated only by shade (the paper's heat map
 * carries no numbers either).
 */
std::string heatmapRow(const std::vector<double> &fractions);

/** The shade character for a fraction in [0, 1]. */
char shadeFor(double fraction);

/** Legend line explaining the ramp. */
std::string heatmapLegend();

} // namespace deskpar::report

#endif // DESKPAR_REPORT_HEATMAP_HH

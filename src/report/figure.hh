/**
 * @file
 * Figure helpers: named series containers, ASCII charts, and data
 * dumps for the paper's line/bar figures.
 */

#ifndef DESKPAR_REPORT_FIGURE_HH
#define DESKPAR_REPORT_FIGURE_HH

#include <deque>
#include <iosfwd>
#include <string>
#include <vector>

namespace deskpar::report {

/** One (x, y) series of a figure. */
struct Series
{
    std::string name;
    std::vector<double> x;
    std::vector<double> y;

    void
    add(double xv, double yv)
    {
        x.push_back(xv);
        y.push_back(yv);
    }
};

/**
 * A figure: a titled collection of series sharing axes.
 */
class Figure
{
  public:
    Figure(std::string title, std::string x_label,
           std::string y_label)
        : title_(std::move(title)), xLabel_(std::move(x_label)),
          yLabel_(std::move(y_label))
    {}

    /**
     * Add a series; the returned reference stays valid across later
     * addSeries() calls (deque storage).
     */
    Series &addSeries(const std::string &name);

    const std::deque<Series> &series() const { return series_; }
    const std::string &title() const { return title_; }

    /**
     * Print the data as a column table: x, then one column per
     * series (series must share x grids; missing points blank).
     */
    void printData(std::ostream &out) const;

    /**
     * Render an ASCII chart (y down-sampled to @p height rows,
     * x to @p width columns), one glyph per series.
     */
    void printAscii(std::ostream &out, unsigned width = 72,
                    unsigned height = 16) const;

  private:
    std::string title_;
    std::string xLabel_;
    std::string yLabel_;
    std::deque<Series> series_;
};

/** Grouped-bar rendering for categorical figures (Figs 2/3/11/12). */
void printBarGroups(std::ostream &out, const std::string &title,
                    const std::vector<std::string> &groups,
                    const std::vector<Series> &series,
                    double max_value, unsigned bar_width = 40);

} // namespace deskpar::report

#endif // DESKPAR_REPORT_FIGURE_HH

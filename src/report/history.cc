#include "report/history.hh"

namespace deskpar::report {

const std::vector<HistoryEntry> &
tlpHistory()
{
    static const std::vector<HistoryEntry> kEntries = {
        // 3D gaming
        {"Quake 2", "3D Gaming", 2000, 1.2},
        {"Crysis", "3D Gaming", 2010, 2.0},
        {"Call of Duty 4", "3D Gaming", 2010, 1.8},
        {"Bioshock", "3D Gaming", 2010, 1.6},
        // Image authoring
        {"Photoshop 4.0.1", "Image Authoring", 2000, 1.5},
        {"Maya3D 2010", "Image Authoring", 2010, 2.3},
        {"Photoshop CS4", "Image Authoring", 2010, 1.7},
        // Office
        {"AdobeReader 4.0", "Office", 2000, 1.1},
        {"PowerPoint 97", "Office", 2000, 1.1},
        {"Word 97", "Office", 2000, 1.2},
        {"Excel 97", "Office", 2000, 1.1},
        {"AdobeReader 9.0", "Office", 2010, 1.3},
        {"PowerPoint 2007", "Office", 2010, 1.4},
        {"Word 2007", "Office", 2010, 1.4},
        {"Excel 2007", "Office", 2010, 1.5},
        // Media playback
        {"Win Media Player (2000)", "Media Playback", 2000, 1.8},
        {"Quicktime 4.0.3", "Media Playback", 2000, 1.3},
        {"Quicktime 7.6", "Media Playback", 2010, 2.0},
        {"Win Media Player (2010)", "Media Playback", 2010, 2.3},
        // Video authoring & transcoding
        {"Premier 4.2", "Video Authoring & Transcoding", 2000, 2.1},
        {"PowerDirector v7", "Video Authoring & Transcoding", 2010,
         4.0},
        {"HandBrake 0.9", "Video Authoring & Transcoding", 2010,
         8.3},
        // Web browsing
        {"IE 5", "Web Browsing", 2000, 1.4},
        {"Firefox 3.5", "Web Browsing", 2010, 1.8},
    };
    return kEntries;
}

const std::vector<HistoryEntry> &
gpuHistory()
{
    static const std::vector<HistoryEntry> kEntries = {
        {"Call of Duty 4", "3D Gaming", 2010, 60.0},
        {"Bioshock", "3D Gaming", 2010, 65.0},
        {"Crysis", "3D Gaming", 2010, 75.0},
        {"Maya3D 2010", "Image Authoring", 2010, 12.0},
        {"Photoshop CS4", "Image Authoring", 2010, 4.0},
        {"Street & Trips 2010", "Office", 2010, 2.0},
        {"AdobeReader 9.0", "Office", 2010, 1.0},
        {"PowerPoint 2007", "Office", 2010, 2.5},
        {"Word 2007", "Office", 2010, 2.0},
        {"Excel 2007", "Office", 2010, 2.5},
        {"Quicktime 7.6", "Media Playback", 2010, 15.0},
        {"Win Media Player (2010)", "Media Playback", 2010, 20.0},
        {"PowerDirector v7", "Video Authoring & Transcoding", 2010,
         10.0},
        {"HandBrake 0.9", "Video Authoring & Transcoding", 2010,
         1.0},
        {"Safari 4.0", "Web Browsing", 2010, 8.0},
        {"Firefox 3.5", "Web Browsing", 2010, 5.0},
    };
    return kEntries;
}

} // namespace deskpar::report

/**
 * @file
 * The one JSON schema of the analysis toolkit.
 *
 * Every machine-readable result — `deskpar replay/query/bottlenecks
 * --json` on the CLI and every `deskpar serve` response — is one of
 * the documents below, written by one function per result type. Each
 * document is a single line (the serve protocol is newline-delimited
 * JSON; the CLI appends the trailing '\n' itself where it wants one)
 * and carries:
 *
 *   "schema": 1      version gate for downstream consumers
 *   "command": ...   which result type this is
 *
 * followed by the result fields. Field names are the ones the
 * pre-unification CLI emitters used ("tlp", "gpu_util_percent",
 * "rows"/"key"/"t0"/"value", "wait_ms"/"critical_path"/...), so
 * existing scrapers keep working on the renamed envelope; numeric
 * formatting also matches the old emitters (%.9g timestamps, %.17g
 * query values, %.3f millisecond fields).
 *
 * The server and the CLI call the *same* writer with the *same*
 * Service result struct, which is what makes a served response
 * byte-identical to the equivalent CLI invocation.
 */

#ifndef DESKPAR_REPORT_DOCUMENTS_HH
#define DESKPAR_REPORT_DOCUMENTS_HH

#include <iosfwd>

#include "analysis/service.hh"

namespace deskpar::report {

/** The version every document stamps as "schema". */
constexpr std::uint64_t kSchemaVersion = 1;

/** `{"schema":1,"command":"analyze",...}` — one replayed trace. */
void writeAnalyzeDocument(std::ostream &out,
                          const analysis::ServiceAnalyzeResult &r);

/**
 * The analyze document of a trace that failed to replay —
 * `deskpar replay --json` emits one line per file, failures
 * included, so a batch stays one-record-per-input.
 */
void writeAnalyzeFailureDocument(std::ostream &out,
                                 const std::string &path,
                                 const std::string &error);

/** `{"schema":1,"command":"query","queries":[...]}`. */
void writeQueryDocument(std::ostream &out,
                        const analysis::ServiceQueryResult &r);

/** `{"schema":1,"command":"bottlenecks",...}` (renderReportJson's
 *  field names, one line). */
void
writeBottlenecksDocument(std::ostream &out,
                         const analysis::ServiceBottlenecksResult &r);

/** `{"schema":1,"command":"series","kind":...,"points":[...]}`. */
void writeSeriesDocument(std::ostream &out,
                         const analysis::ServiceSeriesResult &r);

/** `{"schema":1,"command":"frames",...}`. */
void writeFramesDocument(std::ostream &out,
                         const analysis::ServiceFramesResult &r);

} // namespace deskpar::report

#endif // DESKPAR_REPORT_DOCUMENTS_HH

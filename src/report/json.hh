/**
 * @file
 * JSON result export: machine-readable output of the analysis
 * results for downstream tooling (plotting, CI regression checks).
 * Includes a minimal escape-correct writer — no external JSON
 * dependency.
 */

#ifndef DESKPAR_REPORT_JSON_HH
#define DESKPAR_REPORT_JSON_HH

#include <iosfwd>
#include <string>

#include "analysis/analyzer.hh"

namespace deskpar::report {

/**
 * Minimal streaming JSON writer. Call the begin/end pairs in
 * document order; keys and values are escaped.
 */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &out)
        : out_(out)
    {}

    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray(const std::string &key = {});
    JsonWriter &endArray();

    JsonWriter &key(const std::string &name);
    JsonWriter &value(const std::string &v);
    JsonWriter &value(double v);
    /**
     * Double with an explicit %g significant-digit count: the
     * unified result documents emit query values at full round-trip
     * precision (17) and timestamps at 9, matching what the CLI
     * always printed.
     */
    JsonWriter &value(double v, int digits);
    /**
     * Double with a fixed decimal count (%.*f) — the bottleneck
     * documents keep renderReportJson's 3-decimal ms/ratio text.
     */
    JsonWriter &valueFixed(double v, int decimals);
    JsonWriter &value(std::uint64_t v);
    JsonWriter &value(bool v);

    /** key + value in one call. */
    template <typename T>
    JsonWriter &
    field(const std::string &name, const T &v)
    {
        key(name);
        return value(v);
    }

    /** Escape @p s per RFC 8259 (quotes not included). */
    static std::string escape(const std::string &s);

  private:
    void separator();

    std::ostream &out_;
    /** Whether the current nesting level already has an element. */
    std::string hasElement_; // stack of 0/1 flags
};

/** Serialize one trace's application metrics. */
void writeJson(std::ostream &out,
               const analysis::AppMetrics &metrics);

/** Serialize a multi-iteration aggregate (the Table II row). */
void writeJson(std::ostream &out,
               const analysis::IterationAggregate &aggregate);

} // namespace deskpar::report

#endif // DESKPAR_REPORT_JSON_HH

#include "report/heatmap.hh"

#include <algorithm>

namespace deskpar::report {

namespace {

/** Nine shades from empty to full. */
constexpr const char kRamp[] = " .:-=+*#@";
constexpr int kRampSteps = 9;

} // namespace

char
shadeFor(double fraction)
{
    double f = std::clamp(fraction, 0.0, 1.0);
    // Emphasize small fractions: most cells hold a few percent.
    int idx = 0;
    if (f >= 0.001) {
        static const double kThresholds[] = {
            0.005, 0.02, 0.05, 0.12, 0.25, 0.45, 0.70};
        idx = 1;
        for (double t : kThresholds) {
            if (f >= t)
                ++idx;
        }
        idx = std::min(idx, kRampSteps - 1);
    }
    return kRamp[idx];
}

std::string
heatmapRow(const std::vector<double> &fractions)
{
    std::string out;
    out.reserve(fractions.size() * 2 + 2);
    out += '[';
    for (double f : fractions) {
        out += shadeFor(f);
        out += ' ';
    }
    if (!fractions.empty())
        out.pop_back();
    out += ']';
    return out;
}

std::string
heatmapLegend()
{
    return "heat map shades (share of wall time): ' '<0.1% "
           "'.'<0.5% ':'<2% '-'<5% '='<12% '+'<25% '*'<45% "
           "'#'<70% '@'>=70%";
}

} // namespace deskpar::report

#include "report/json.hh"

#include <cmath>
#include <cstdio>
#include <ostream>

#include "sim/logging.hh"
#include "obs/obs.hh"

namespace deskpar::report {

std::string
JsonWriter::escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
JsonWriter::separator()
{
    if (!hasElement_.empty()) {
        if (hasElement_.back() == '1')
            out_ << ',';
        else
            hasElement_.back() = '1';
    }
}

JsonWriter &
JsonWriter::beginObject()
{
    separator();
    out_ << '{';
    hasElement_.push_back('0');
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    if (hasElement_.empty())
        panic("JsonWriter::endObject: nothing open");
    hasElement_.pop_back();
    out_ << '}';
    return *this;
}

JsonWriter &
JsonWriter::beginArray(const std::string &name)
{
    if (!name.empty())
        key(name);
    // Mark the array itself as the parent level's element (after a
    // key the flag is '0' so this adds no comma).
    separator();
    out_ << '[';
    hasElement_.push_back('0');
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    if (hasElement_.empty())
        panic("JsonWriter::endArray: nothing open");
    hasElement_.pop_back();
    out_ << ']';
    return *this;
}

JsonWriter &
JsonWriter::key(const std::string &name)
{
    separator();
    out_ << '"' << escape(name) << "\":";
    // The upcoming value must not emit another separator.
    if (!hasElement_.empty())
        hasElement_.back() = '0';
    return *this;
}

JsonWriter &
JsonWriter::value(const std::string &v)
{
    separator();
    out_ << '"' << escape(v) << '"';
    return *this;
}

JsonWriter &
JsonWriter::value(double v)
{
    return value(v, 6);
}

JsonWriter &
JsonWriter::value(double v, int digits)
{
    separator();
    if (std::isfinite(v)) {
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.*g", digits, v);
        out_ << buf;
    } else {
        out_ << "null";
    }
    return *this;
}

JsonWriter &
JsonWriter::valueFixed(double v, int decimals)
{
    separator();
    if (std::isfinite(v)) {
        char buf[48];
        std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
        out_ << buf;
    } else {
        out_ << "null";
    }
    return *this;
}

JsonWriter &
JsonWriter::value(std::uint64_t v)
{
    separator();
    out_ << v;
    return *this;
}

JsonWriter &
JsonWriter::value(bool v)
{
    separator();
    out_ << (v ? "true" : "false");
    return *this;
}

void
writeJson(std::ostream &out, const analysis::AppMetrics &metrics)
{
    obs::Span span("report.json", obs::SpanKind::Report);
    JsonWriter json(out);
    json.beginObject()
        .field("tlp", metrics.tlp())
        .field("gpu_util_percent", metrics.gpuUtilPercent())
        .field("gpu_aggregate_ratio", metrics.gpu.aggregateRatio)
        .field("gpu_busy_ratio", metrics.gpu.busyRatio)
        .field("gpu_overlapped", metrics.gpu.overlapped)
        .field("idle_fraction", metrics.concurrency.idleFraction())
        .field("max_concurrency",
               std::uint64_t(metrics.concurrency.maxConcurrency()))
        .field("avg_fps", metrics.frames.avgFps)
        .field("frames", std::uint64_t(metrics.frames.frames));
    json.beginArray("c");
    for (double c : metrics.concurrency.c)
        json.value(c);
    json.endArray();
    json.endObject();
    out << '\n';
}

void
writeJson(std::ostream &out,
          const analysis::IterationAggregate &aggregate)
{
    obs::Span span("report.json", obs::SpanKind::Report);
    JsonWriter json(out);
    json.beginObject()
        .field("app", aggregate.app)
        .field("iterations", std::uint64_t(aggregate.tlp.count()))
        .field("tlp_mean", aggregate.tlp.mean())
        .field("tlp_stddev", aggregate.tlp.stddev())
        .field("gpu_util_mean", aggregate.gpuUtil.mean())
        .field("gpu_util_stddev", aggregate.gpuUtil.stddev())
        .field("max_concurrency_mean",
               aggregate.maxConcurrency.mean())
        .field("gpu_overlapped", aggregate.gpuOverlapped);
    json.beginArray("mean_c");
    for (double c : aggregate.meanC)
        json.value(c);
    json.endArray();
    json.endObject();
    out << '\n';
}

} // namespace deskpar::report

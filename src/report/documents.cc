#include "report/documents.hh"

#include <algorithm>
#include <ostream>

#include "report/json.hh"
#include "sim/types.hh"

namespace deskpar::report {

namespace {

/** "schema" + "command" + shared ingest flags, object left open. */
JsonWriter &
beginDocument(JsonWriter &json, const char *command)
{
    json.beginObject()
        .field("schema", kSchemaVersion)
        .field("command", std::string(command));
    return json;
}

/**
 * Degraded-ingest marker. Deliberately NOT the lease's warm flag or
 * wall-clock ingest rate: documents contain only deterministic
 * fields, which is what lets a served response be byte-identical to
 * the equivalent CLI invocation regardless of cache state.
 */
void
ingestFlags(JsonWriter &json, bool degraded,
            const std::string &degradedSummary)
{
    json.field("degraded", degraded);
    if (degraded)
        json.field("degraded_summary", degradedSummary);
}

} // namespace

void
writeAnalyzeDocument(std::ostream &out,
                     const analysis::ServiceAnalyzeResult &r)
{
    JsonWriter json(out);
    beginDocument(json, "analyze")
        .field("trace", r.path)
        .field("app", r.appPrefix)
        .field("status", std::string("ok"));
    ingestFlags(json, r.degraded, r.degradedSummary);
    json.field("bytes", r.ingest.bytes)
        .field("events", r.events)
        // Metric field names as the pre-unification writeJson
        // emitter spelled them, so the per-trace record is a strict
        // superset of the old document.
        .field("tlp", r.metrics.tlp())
        .field("gpu_util_percent", r.metrics.gpuUtilPercent())
        .field("gpu_aggregate_ratio", r.metrics.gpu.aggregateRatio)
        .field("gpu_busy_ratio", r.metrics.gpu.busyRatio)
        .field("gpu_overlapped", r.metrics.gpu.overlapped)
        .field("idle_fraction",
               r.metrics.concurrency.idleFraction())
        .field("max_concurrency",
               std::uint64_t(r.metrics.concurrency.maxConcurrency()))
        .field("avg_fps", r.metrics.frames.avgFps)
        .field("frames", std::uint64_t(r.metrics.frames.frames));
    json.beginArray("c");
    for (double c : r.metrics.concurrency.c)
        json.value(c);
    json.endArray();
    json.endObject();
}

void
writeAnalyzeFailureDocument(std::ostream &out, const std::string &path,
                            const std::string &error)
{
    JsonWriter json(out);
    beginDocument(json, "analyze")
        .field("trace", path)
        .field("status", std::string("failed"))
        .field("error", error);
    json.endObject();
}

void
writeQueryDocument(std::ostream &out,
                   const analysis::ServiceQueryResult &r)
{
    JsonWriter json(out);
    beginDocument(json, "query");
    ingestFlags(json, r.degraded, r.degradedSummary);
    if (!r.explainText.empty())
        json.field("explain", r.explainText);
    json.beginArray("queries");
    for (const analysis::QueryResult &result : r.results) {
        json.beginObject()
            .field("query", result.query.label)
            .field("metric",
                   std::string(analysis::queryMetricName(
                       result.query.metric)));
        json.beginArray("rows");
        for (const analysis::QueryRow &row : result.rows) {
            json.beginObject().field("key", row.key);
            // Timestamp/value precision as the old writeQueryJson:
            // %.9g seconds, %.17g values (lossless round trip).
            json.key("t0").value(sim::toSeconds(row.t0), 9);
            json.key("t1").value(sim::toSeconds(row.t1), 9);
            if (row.pid != 0)
                json.field("pid", std::uint64_t(row.pid));
            if (row.tid != 0)
                json.field("tid", std::uint64_t(row.tid));
            json.key("value").value(row.value, 17);
            if (!row.histogram.empty()) {
                json.beginArray("histogram");
                for (std::uint64_t count : row.histogram)
                    json.value(count);
                json.endArray();
            }
            json.endObject();
        }
        json.endArray();
        json.endObject();
    }
    json.endArray();
    json.endObject();
}

void
writeBottlenecksDocument(std::ostream &out,
                         const analysis::ServiceBottlenecksResult &r)
{
    const analysis::blocking::BlockingReport &report = r.report;
    auto ms = [](std::uint64_t ns) {
        return static_cast<double>(ns) / 1e6;
    };

    JsonWriter json(out);
    beginDocument(json, "bottlenecks");
    ingestFlags(json, r.degraded, r.degradedSummary);
    // Field names and 3-decimal formatting of renderReportJson, so
    // scrapers of the old multi-line document only need to tolerate
    // the one-line envelope.
    json.key("window_s").valueFixed(report.windowSeconds(), 3);
    json.field("num_cpus", std::uint64_t(report.numCpus))
        .field("dispatches", report.dispatches);
    json.key("run_ms").valueFixed(ms(report.totalRunNs), 3);
    json.key("wait_ms").valueFixed(ms(report.totalWaitNs), 3);
    json.key("wait_tlp").valueFixed(report.waitTlp(), 3);
    json.key("critical_path_ms")
        .valueFixed(ms(report.criticalPathNs), 3);
    json.field("critical_path_switches", report.criticalPathSwitches);
    json.key("serial_fraction").valueFixed(report.serialFraction(), 3);
    json.field("classification",
               std::string(report.classification()));

    json.beginArray("threads");
    std::size_t count = std::min(r.top, report.threads.size());
    for (std::size_t i = 0; i < count; ++i) {
        const analysis::blocking::ThreadBlocking &t =
            report.threads[i];
        json.beginObject()
            .field("pid", std::uint64_t(t.pid))
            .field("tid", std::uint64_t(t.tid))
            .field("name", t.name);
        json.key("run_ms").valueFixed(ms(t.runNs), 3);
        json.key("wait_ms").valueFixed(ms(t.waitNs), 3);
        json.key("max_wait_ms").valueFixed(ms(t.maxWaitNs), 3);
        json.key("blocked_behind_ms").valueFixed(ms(t.blockedNs), 3);
        json.field("dispatches", t.dispatches);
        json.endObject();
    }
    json.endArray();

    json.beginArray("edges");
    count = std::min(r.top, report.edges.size());
    for (std::size_t i = 0; i < count; ++i) {
        const analysis::blocking::WakeupEdge &e = report.edges[i];
        json.beginObject()
            .field("from_pid", std::uint64_t(e.fromPid))
            .field("from_tid", std::uint64_t(e.fromTid))
            .field("to_pid", std::uint64_t(e.toPid))
            .field("to_tid", std::uint64_t(e.toTid))
            .field("count", e.count);
        json.key("wait_ms").valueFixed(ms(e.waitNs), 3);
        json.endObject();
    }
    json.endArray();

    json.beginArray("critical_path");
    for (const analysis::blocking::CriticalPathHop &hop :
         report.criticalPath) {
        json.beginObject()
            .field("pid", std::uint64_t(hop.pid))
            .field("tid", std::uint64_t(hop.tid))
            .endObject();
    }
    json.endArray();
    json.endObject();
}

void
writeSeriesDocument(std::ostream &out,
                    const analysis::ServiceSeriesResult &r)
{
    JsonWriter json(out);
    beginDocument(json, "series")
        .field("kind",
               std::string(analysis::serviceSeriesKindName(r.kind)))
        .field("name", r.series.name);
    ingestFlags(json, r.degraded, r.degradedSummary);
    json.key("window_s").value(sim::toSeconds(r.series.window), 9);
    json.beginArray("points");
    for (const analysis::TimePoint &point : r.series.points) {
        json.beginObject();
        json.key("t").value(sim::toSeconds(point.t), 9);
        json.key("value").value(point.value, 17);
        json.endObject();
    }
    json.endArray();
    json.endObject();
}

void
writeFramesDocument(std::ostream &out,
                    const analysis::ServiceFramesResult &r)
{
    JsonWriter json(out);
    beginDocument(json, "frames");
    ingestFlags(json, r.degraded, r.degradedSummary);
    json.field("frames", std::uint64_t(r.frames.frames))
        .field("synthesized_frames",
               std::uint64_t(r.frames.synthesizedFrames))
        .field("avg_fps", r.frames.avgFps)
        .field("fps_stddev", r.frames.fpsStddev)
        .field("one_percent_low_fps", r.frames.onePercentLowFps)
        .field("synthesized_share", r.frames.synthesizedShare());
    json.endObject();
}

} // namespace deskpar::report

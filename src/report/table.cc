#include "report/table.hh"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <ostream>

#include "sim/logging.hh"
#include "obs/obs.hh"

namespace deskpar::report {

std::string
formatNumber(double value, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
    return buf;
}

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    if (headers_.empty())
        fatal("TextTable: no columns");
}

TextTable &
TextTable::row()
{
    rows_.emplace_back();
    return *this;
}

TextTable &
TextTable::cell(const std::string &value)
{
    if (rows_.empty())
        fatal("TextTable::cell: call row() first");
    if (rows_.back().size() >= headers_.size())
        fatal("TextTable::cell: too many cells in row");
    rows_.back().push_back(value);
    return *this;
}

TextTable &
TextTable::cell(double value, int precision)
{
    return cell(formatNumber(value, precision));
}

TextTable &
TextTable::cell(std::uint64_t value)
{
    return cell(std::to_string(value));
}

namespace {

std::vector<std::size_t>
columnWidths(const std::vector<std::string> &headers,
             const std::vector<std::vector<std::string>> &rows)
{
    std::vector<std::size_t> widths(headers.size());
    for (std::size_t c = 0; c < headers.size(); ++c)
        widths[c] = headers[c].size();
    for (const auto &row : rows) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }
    return widths;
}

void
printPadded(std::ostream &out, const std::string &value,
            std::size_t width)
{
    out << value;
    for (std::size_t i = value.size(); i < width; ++i)
        out << ' ';
}

} // namespace

void
TextTable::print(std::ostream &out) const
{
    obs::Span span("report.table", obs::SpanKind::Report);
    auto widths = columnWidths(headers_, rows_);
    for (std::size_t c = 0; c < headers_.size(); ++c) {
        if (c)
            out << "  ";
        printPadded(out, headers_[c], widths[c]);
    }
    out << '\n';
    for (std::size_t c = 0; c < headers_.size(); ++c) {
        if (c)
            out << "  ";
        out << std::string(widths[c], '-');
    }
    out << '\n';
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c)
                out << "  ";
            printPadded(out, row[c], widths[c]);
        }
        out << '\n';
    }
}

void
TextTable::printMarkdown(std::ostream &out) const
{
    obs::Span span("report.table", obs::SpanKind::Report);
    out << '|';
    for (const auto &header : headers_)
        out << ' ' << header << " |";
    out << "\n|";
    for (std::size_t c = 0; c < headers_.size(); ++c)
        out << "---|";
    out << '\n';
    for (const auto &row : rows_) {
        out << '|';
        for (const auto &value : row)
            out << ' ' << value << " |";
        for (std::size_t c = row.size(); c < headers_.size(); ++c)
            out << " |";
        out << '\n';
    }
}

} // namespace deskpar::report

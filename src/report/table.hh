/**
 * @file
 * Text-table builder for benchmark output: fixed-precision numeric
 * cells, alignment, and optional markdown rendering — the formatting
 * layer every bench binary shares.
 */

#ifndef DESKPAR_REPORT_TABLE_HH
#define DESKPAR_REPORT_TABLE_HH

#include <iosfwd>
#include <string>
#include <vector>

namespace deskpar::report {

/**
 * A simple column-aligned table.
 */
class TextTable
{
  public:
    /** Create a table with the given column headers. */
    explicit TextTable(std::vector<std::string> headers);

    /** Begin a new row. */
    TextTable &row();

    /** Append a string cell to the current row. */
    TextTable &cell(const std::string &value);

    /** Append a numeric cell with @p precision decimals. */
    TextTable &cell(double value, int precision = 1);

    /** Append an integer cell. */
    TextTable &cell(std::uint64_t value);

    /** Number of data rows so far. */
    std::size_t rows() const { return rows_.size(); }

    /** Render with ASCII rules. */
    void print(std::ostream &out) const;

    /** Render as a GitHub-flavored markdown table. */
    void printMarkdown(std::ostream &out) const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format @p value with @p precision decimals. */
std::string formatNumber(double value, int precision);

} // namespace deskpar::report

#endif // DESKPAR_REPORT_TABLE_HH

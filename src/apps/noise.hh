/**
 * @file
 * Background system noise: the unrelated processes (service hosts,
 * compositor, indexer, antivirus) the paper explicitly *ends* before
 * tracing (Section III-C). Spawning them deliberately demonstrates
 * why the paper measures application-level TLP — system-wide TLP is
 * inflated by whatever else runs — and lets experiments quantify the
 * distortion.
 */

#ifndef DESKPAR_APPS_NOISE_HH
#define DESKPAR_APPS_NOISE_HH

#include "sim/machine.hh"

namespace deskpar::apps {

/**
 * Spawn a set of OS background processes on @p machine.
 *
 * @param intensity scales burst lengths and frequencies; 1.0 is a
 *        "typical idle Windows desktop" level (~3-5% of one core).
 */
void spawnBackgroundNoise(sim::Machine &machine,
                          double intensity = 1.0);

} // namespace deskpar::apps

#endif // DESKPAR_APPS_NOISE_HH

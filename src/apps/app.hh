/**
 * @file
 * WorkloadModel: the interface every benchmark application implements,
 * plus the AppInstance handle returned when a model is instantiated
 * on a machine.
 */

#ifndef DESKPAR_APPS_APP_HH
#define DESKPAR_APPS_APP_HH

#include <memory>
#include <string>

#include "input/script.hh"
#include "sim/machine.hh"

namespace deskpar::apps {

/**
 * Static identity of a benchmark application (the Table II rows).
 */
struct AppSpec
{
    /** Stable identifier used by the registry ("photoshop"). */
    std::string id;
    /** Display name with version ("Adobe Photoshop CC"). */
    std::string name;
    /** Category ("Image Authoring", "VR Gaming", ...). */
    std::string category;
};

/**
 * Handle returned by WorkloadModel::instantiate(): which processes
 * belong to the app and which input script drives it.
 */
struct AppInstance
{
    /** Prefix matching every process of the application. */
    std::string processPrefix;
    /** Scripted user input; empty for input-free workloads. */
    input::InputScript script;
};

/**
 * A benchmark application model. instantiate() creates the app's
 * processes and threads on a machine; the harness then installs the
 * input script, records a trace for duration(), and analyzes it.
 */
class WorkloadModel
{
  public:
    virtual ~WorkloadModel() = default;

    /** Application identity. */
    virtual const AppSpec &spec() const = 0;

    /** Length of the measured run. */
    virtual sim::SimDuration
    duration() const
    {
        return sim::sec(30.0);
    }

    /** Build the application's processes/threads on @p machine. */
    virtual AppInstance instantiate(sim::Machine &machine) = 0;
};

using WorkloadPtr = std::unique_ptr<WorkloadModel>;

} // namespace deskpar::apps

#endif // DESKPAR_APPS_APP_HH

/**
 * @file
 * Corpus-scale scenario sweeps: the generator that turns one seed
 * into thousands of app x machine x policy simulation scenarios, and
 * the sharded, resumable engine that runs them.
 *
 * Scenario i of a sweep is a pure function of (sweep seed, i): an
 * independent splitmix-derived RNG stream picks the workload, the
 * active core count (4/8/16/32 on a synthetic 2026-class 32-core
 * package), SMT on/off, and a named scheduler-policy preset; the
 * stream's seed also becomes the scenario's machine seed. Because
 * every row is pure and rows are assembled in index order, the same
 * seed yields byte-identical per-scenario metric rows at any
 * DESKPAR_JOBS and across resume boundaries — that reproducibility
 * is the contract the determinism tests pin.
 *
 * Execution is sharded: scenarios are grouped into fixed-size shards,
 * shards fan out across the work-stealing runner, and each completed
 * shard is written atomically (tmp + rename) as
 * `shard-NNNN.jsonl` next to an identity-keyed progress checkpoint
 * (`sweep.ckpt`, format in DESIGN.md section 16 — same
 * magic/CRC32C/varint shape as the .dpidx cache). `--resume`
 * revalidates shard files against the regenerated scenario configs,
 * so a corrupt or stale checkpoint — or a truncated shard file —
 * costs exactly the damaged shards, never the completed ones.
 */

#ifndef DESKPAR_APPS_SWEEP_HH
#define DESKPAR_APPS_SWEEP_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace deskpar::apps {

/** One sampled scenario: what to simulate and under which knobs. */
struct ScenarioConfig
{
    /** Position in the sweep (row key). */
    std::uint32_t index = 0;
    /** Workload registry id. */
    std::string app;
    /** Active logical CPUs (SMT) or physical cores (no SMT). */
    unsigned cores = 4;
    bool smt = true;
    /** Scheduler-policy preset name. */
    std::string policy;
    /** Timeslice of the preset. */
    sim::SimDuration quantum = 0;
    /** Machine seed: the scenario's splitmix-derived stream seed. */
    std::uint64_t seed = 0;

    bool
    operator==(const ScenarioConfig &other) const
    {
        return index == other.index && app == other.app &&
               cores == other.cores && smt == other.smt &&
               policy == other.policy &&
               quantum == other.quantum && seed == other.seed;
    }
};

/** Metric row of one executed scenario. */
struct ScenarioMetrics
{
    double tlp = 0.0;
    double gpuUtilPercent = 0.0;
    double avgFps = 0.0;
    std::uint64_t contextSwitches = 0;
    std::uint64_t traceEvents = 0;
};

/** Sweep parameters (the checkpoint identity). */
struct SweepOptions
{
    std::uint64_t seed = 1;
    /** Number of scenarios. */
    std::uint32_t count = 0;
    /** Output directory (created if missing). */
    std::string outDir;
    /** Reuse valid shard files from a previous run. */
    bool resume = false;
    /** Simulated seconds per scenario. */
    double seconds = 2.0;
    /** Scenarios per shard (progress/restart granularity). */
    std::uint32_t shardSize = 16;
    /** Worker threads; 0 = DESKPAR_JOBS / host cores. */
    unsigned threads = 0;
    /**
     * Test hook: stop cleanly after this many shards have completed
     * in this invocation (0 = run to the end). Simulates a
     * mid-sweep kill for the resume tests: the checkpoint and the
     * finished shard files stay behind, the merged output does not.
     */
    std::uint32_t stopAfterShards = 0;
};

/** What a sweep invocation did. */
struct SweepReport
{
    std::uint32_t scenariosTotal = 0;
    /** Scenarios simulated by this invocation. */
    std::uint32_t scenariosRun = 0;
    /** Shards skipped because a valid file already existed. */
    std::uint32_t shardsReused = 0;
    std::uint32_t shardsTotal = 0;
    /** Path of the merged sweep.jsonl ("" if stopped early). */
    std::string mergedPath;
    /** True when every shard completed and the merge was written. */
    bool complete = false;
};

/**
 * Scenario @p index of the sweep seeded @p seed. Pure and cheap:
 * resume validation regenerates configs instead of trusting disk.
 */
ScenarioConfig scenarioAt(std::uint64_t seed, std::uint32_t index);

/**
 * Simulate @p config for @p seconds simulated seconds and reduce the
 * trace to its metric row. Pure function of (config, seconds).
 */
ScenarioMetrics runScenario(const ScenarioConfig &config,
                            double seconds);

/**
 * The serialized JSON row of a scenario. Doubles are printed with
 * %.17g so the bytes round-trip the exact values — byte identity
 * across thread counts and resumes is the format's contract.
 */
std::string scenarioRow(const ScenarioConfig &config,
                        const ScenarioMetrics &metrics);

/**
 * The config prefix of scenarioRow (everything before the metrics):
 * what resume validation matches shard-file lines against without
 * re-running the simulation.
 */
std::string scenarioRowPrefix(const ScenarioConfig &config);

/** Shard-file name for @p shard ("shard-0007.jsonl"). */
std::string shardFileName(std::uint32_t shard);

/** Checkpoint file name ("sweep.ckpt"). */
const char *checkpointFileName();

/**
 * Serialize the progress checkpoint: identity (seed, count, shard
 * size, duration) plus the completed-shard bitmap.
 */
std::string encodeCheckpoint(const SweepOptions &options,
                             const std::vector<bool> &completed);

/**
 * Parse @p bytes; returns false (leaving @p completed empty) when
 * the checkpoint is corrupt, from another format version, or from a
 * sweep with a different identity.
 */
bool decodeCheckpoint(const std::string &bytes,
                      const SweepOptions &options,
                      std::vector<bool> &completed);

/**
 * Run (or resume) a sweep. Throws FatalError on unusable options or
 * I/O failure; individual scenario panics propagate (they are bugs —
 * scenarios are total by construction).
 */
SweepReport runSweep(const SweepOptions &options);

} // namespace deskpar::apps

#endif // DESKPAR_APPS_SWEEP_HH

/**
 * @file
 * The experiment harness: runs a workload model for N iterations on
 * configured machines, reproducing the paper's measurement loop of
 * Figure 1 (start app -> start trace -> drive inputs -> stop ->
 * analyze), and aggregates the per-iteration metrics.
 */

#ifndef DESKPAR_APPS_HARNESS_HH
#define DESKPAR_APPS_HARNESS_HH

#include <string>
#include <vector>

#include "analysis/analyzer.hh"
#include "apps/app.hh"
#include "sim/machine.hh"
#include "trace/parse.hh"
#include "trace/session.hh"

namespace deskpar::apps {

/**
 * Options for one experiment (iterations share everything except
 * the seed).
 */
struct RunOptions
{
    sim::MachineConfig config = sim::MachineConfig::paperDefault();
    unsigned iterations = 3;
    std::uint64_t seedBase = 1;
    /** 0 = use the model's duration(). */
    sim::SimDuration duration = 0;
    /** Drive inputs manually (jittered) instead of via automation. */
    bool manualInput = false;
    /**
     * Spawn OS background noise alongside the application (the
     * processes the paper kills before tracing); 0 disables,
     * 1.0 is a typical idle desktop. Application-level filtering
     * keeps the app metrics clean either way.
     */
    double noiseIntensity = 0.0;
};

/**
 * Metrics of one iteration.
 */
struct IterationResult
{
    analysis::AppMetrics metrics;
    sim::SchedulerStats sched;
    /** GPU work units completed for the app (hash-rate style). */
    double gpuWork = 0.0;
};

/**
 * Aggregated result of an experiment.
 */
struct AppRunResult
{
    analysis::IterationAggregate agg;
    std::vector<IterationResult> iterations;
    /** Presented/transcoded frames per second across iterations. */
    analysis::RunningStat fps;
    /** Real (non-synthesized) frames per second. */
    analysis::RunningStat realFps;
    /** Trace of the last iteration (timeline figures). */
    trace::TraceBundle lastBundle;
    /** Pid set of the app in lastBundle. */
    trace::PidSet lastPids;
    /** File-ingest accounting (replay jobs only; zero for sims). */
    trace::IngestStats ingest;

    double tlp() const { return agg.tlp.mean(); }
    double gpuUtil() const { return agg.gpuUtil.mean(); }
};

/**
 * Everything one simulated iteration produces. Intermediate form
 * shared by the serial loop and the parallel SuiteRunner so both
 * aggregate bit-identically.
 */
struct IterationOutput
{
    IterationResult result;
    trace::TraceBundle bundle;
    trace::PidSet pids;
    /** File-ingest accounting (replay jobs only; zero for sims). */
    trace::IngestStats ingest;
};

/**
 * Run iteration @p iter of @p model under @p options on a fresh
 * machine seeded with `options.seedBase + iter * 7919` (the protocol
 * seed derivation). Pure function of (model params, options, iter):
 * safe to call concurrently for independent iterations.
 */
IterationOutput runIteration(WorkloadModel &model,
                             const RunOptions &options,
                             unsigned iter);

/**
 * Fold one iteration into @p result. Iterations must be folded in
 * ascending iteration order for bit-identical aggregates; @p last
 * marks the final iteration, whose bundle/pids are retained.
 */
void foldIteration(AppRunResult &result, IterationOutput &&out,
                   bool last);

/** Run @p model under @p options. */
AppRunResult runWorkload(WorkloadModel &model,
                         const RunOptions &options);

/** Convenience: look up the workload by registry id and run it. */
AppRunResult runWorkload(const std::string &id,
                         const RunOptions &options);

} // namespace deskpar::apps

#endif // DESKPAR_APPS_HARNESS_HH

/**
 * @file
 * The experiment harness: runs a workload model for N iterations on
 * configured machines, reproducing the paper's measurement loop of
 * Figure 1 (start app -> start trace -> drive inputs -> stop ->
 * analyze), and aggregates the per-iteration metrics.
 */

#ifndef DESKPAR_APPS_HARNESS_HH
#define DESKPAR_APPS_HARNESS_HH

#include <string>
#include <vector>

#include "analysis/analyzer.hh"
#include "apps/app.hh"
#include "sim/machine.hh"
#include "trace/session.hh"

namespace deskpar::apps {

/**
 * Options for one experiment (iterations share everything except
 * the seed).
 */
struct RunOptions
{
    sim::MachineConfig config = sim::MachineConfig::paperDefault();
    unsigned iterations = 3;
    std::uint64_t seedBase = 1;
    /** 0 = use the model's duration(). */
    sim::SimDuration duration = 0;
    /** Drive inputs manually (jittered) instead of via automation. */
    bool manualInput = false;
    /**
     * Spawn OS background noise alongside the application (the
     * processes the paper kills before tracing); 0 disables,
     * 1.0 is a typical idle desktop. Application-level filtering
     * keeps the app metrics clean either way.
     */
    double noiseIntensity = 0.0;
};

/**
 * Metrics of one iteration.
 */
struct IterationResult
{
    analysis::AppMetrics metrics;
    sim::SchedulerStats sched;
    /** GPU work units completed for the app (hash-rate style). */
    double gpuWork = 0.0;
};

/**
 * Aggregated result of an experiment.
 */
struct AppRunResult
{
    analysis::IterationAggregate agg;
    std::vector<IterationResult> iterations;
    /** Presented/transcoded frames per second across iterations. */
    analysis::RunningStat fps;
    /** Real (non-synthesized) frames per second. */
    analysis::RunningStat realFps;
    /** Trace of the last iteration (timeline figures). */
    trace::TraceBundle lastBundle;
    /** Pid set of the app in lastBundle. */
    trace::PidSet lastPids;

    double tlp() const { return agg.tlp.mean(); }
    double gpuUtil() const { return agg.gpuUtil.mean(); }
};

/** Run @p model under @p options. */
AppRunResult runWorkload(WorkloadModel &model,
                         const RunOptions &options);

/** Convenience: look up the workload by registry id and run it. */
AppRunResult runWorkload(const std::string &id,
                         const RunOptions &options);

} // namespace deskpar::apps

#endif // DESKPAR_APPS_HARNESS_HH

/**
 * @file
 * Virtual-reality gaming workloads (Table II category 7, Figures 12
 * and 13): six games across three headsets.
 *
 * The game loop targets 90 FPS: per frame the main thread simulates,
 * fork-joins helper jobs (physics/audio/culling), submits the render
 * packet, and presents at the compositor deadline. Headsets differ in
 * render resolution and in their miss policy:
 *  - Oculus Rift: Asynchronous Spacewarp — on sustained misses the
 *    app is clamped to 45 FPS and the runtime synthesizes every other
 *    frame (the paper's 4-core observation);
 *  - HTC Vive / Vive Pro: asynchronous reprojection — the runtime
 *    keeps pushing 90 FPS and inserts an adjusted frame whenever the
 *    real render misses, so the real-frame rate oscillates 90/45.
 */

#ifndef DESKPAR_APPS_VR_HH
#define DESKPAR_APPS_VR_HH

#include <string>

#include "apps/app.hh"

namespace deskpar::apps {

/**
 * A VR headset model.
 */
struct Headset
{
    enum class Pacing { Asw, Reprojection };

    std::string name;
    /** Render-cost multiplier relative to Rift/Vive resolution. */
    double resolutionScale = 1.0;
    Pacing pacing = Pacing::Asw;
    /** In-process runtime/compositor helper threads. */
    unsigned runtimeThreads = 1;
    /** Per-frame work of each runtime thread (ms @ ref clock). */
    double runtimeFrameMs = 0.5;
    /** Per-frame GPU cost of the runtime compositor (lens warp,
     *  reprojection), added to every render packet. */
    double compositorGpuMs = 0.3;

    static Headset rift();
    static Headset vive();
    static Headset vivePro();
};

/** The six games of Section IV-F. */
enum class VrGame {
    ArizonaSunshine,
    Fallout4,
    RawData,
    SeriousSamVr,
    SpacePirateTrainer,
    ProjectCars2,
};

/** Display name of @p game ("Fallout 4 VR"). */
const char *vrGameName(VrGame game);

/** Registry id of @p game ("fallout4"). */
const char *vrGameId(VrGame game);

/** Build the workload for @p game on @p headset. */
WorkloadPtr makeVrGame(VrGame game, const Headset &headset);

/** Table II default: the Oculus Rift. */
WorkloadPtr makeVrGame(VrGame game);

} // namespace deskpar::apps

#endif // DESKPAR_APPS_VR_HH

#include "apps/mining.hh"

#include <memory>
#include <string>

#include "apps/blocks.hh"

namespace deskpar::apps {

namespace {

/**
 * One workload class covers all four miners; the factories below
 * select the knobs.
 */
struct MinerParams
{
    AppSpec spec;
    double smtFriendliness = 0.55; // hashing mixes ALU/memory well
    /** Number of saturating CPU hash threads; -1 = one per LCPU. */
    int cpuThreads = 0;
    double cpuChunkMs = 25.0;
    double cpuGapMs = 0.0;
    /** Parallel GPU kernel streams. */
    unsigned gpuStreams = 1;
    double kernelMs = 20.0;
    double prepMs = 0.2;
    /** Extra inter-kernel gap on pre-crypto GPU generations. */
    double keplerGapMs = 0.0;
};

class MinerModel : public WorkloadModel
{
  public:
    explicit MinerModel(MinerParams params)
        : params_(std::move(params))
    {}

    const AppSpec &spec() const override { return params_.spec; }

    AppInstance
    instantiate(sim::Machine &machine) override
    {
        auto &process = machine.createProcess(
            params_.spec.id, params_.smtFriendliness);

        unsigned cpu_threads =
            params_.cpuThreads < 0
                ? machine.activeLogicalCpus()
                : static_cast<unsigned>(params_.cpuThreads);
        for (unsigned i = 0; i < cpu_threads; ++i) {
            Dist gap = params_.cpuGapMs > 0.0
                           ? Dist::exponential(params_.cpuGapMs)
                           : Dist::fixed(0.0);
            process.createThread(
                std::make_shared<CpuGrinder>(
                    Dist::normal(params_.cpuChunkMs,
                                 params_.cpuChunkMs * 0.1),
                    gap),
                "hash-" + std::to_string(i));
        }

        GpuKernelLoopParams kernel;
        kernel.engine = GpuEngineId::Compute;
        kernel.kernelMs = Dist::normal(params_.kernelMs,
                                       params_.kernelMs * 0.05);
        kernel.prepMs = Dist::fixed(params_.prepMs);
        if (params_.keplerGapMs > 0.0 &&
            machine.gpu().spec().generation ==
                sim::GpuGeneration::Kepler) {
            kernel.gapMs = Dist::normal(params_.keplerGapMs,
                                        params_.keplerGapMs * 0.1);
        }
        for (unsigned s = 0; s < params_.gpuStreams; ++s) {
            process.createThread(
                std::make_shared<GpuKernelLoop>(kernel),
                "gpu-stream-" + std::to_string(s));
        }

        AppInstance instance;
        instance.processPrefix = params_.spec.id;
        return instance;
    }

  private:
    MinerParams params_;
};

} // namespace

WorkloadPtr
makeBitcoinMiner()
{
    MinerParams p;
    p.spec = {"bitcoinminer", "Bitcoin Miner 1.54.0",
              "Cryptocurrency Mining"};
    p.cpuThreads = 6;
    p.cpuChunkMs = 30.0;
    p.cpuGapMs = 3.3;
    p.gpuStreams = 1;
    p.kernelMs = 18.0;
    p.prepMs = 0.15;
    return std::make_unique<MinerModel>(std::move(p));
}

WorkloadPtr
makeEasyMiner()
{
    MinerParams p;
    p.spec = {"easyminer", "EasyMiner v0.87",
              "Cryptocurrency Mining"};
    p.cpuThreads = -1; // one hash thread per logical CPU
    p.cpuChunkMs = 25.0;
    p.cpuGapMs = 0.15;
    p.gpuStreams = 1;
    p.kernelMs = 15.0;
    p.prepMs = 0.12;
    return std::make_unique<MinerModel>(std::move(p));
}

WorkloadPtr
makePhoenixMiner()
{
    MinerParams p;
    p.spec = {"phoenixminer", "PhoenixMiner 3.0c",
              "Cryptocurrency Mining"};
    p.cpuThreads = 0;
    p.gpuStreams = 2; // dual command queues: overlapping packets
    p.kernelMs = 30.0;
    p.prepMs = 0.08;
    return std::make_unique<MinerModel>(std::move(p));
}

WorkloadPtr
makeWindowsEthMiner()
{
    MinerParams p;
    p.spec = {"wineth", "Windows Ethereum Miner 1.5.27",
              "Cryptocurrency Mining"};
    p.cpuThreads = 0;
    p.gpuStreams = 1;
    p.kernelMs = 25.0;
    p.prepMs = 0.1;
    p.keplerGapMs = 30.0; // unoptimized path on Kepler (Fig. 10)
    return std::make_unique<MinerModel>(std::move(p));
}

} // namespace deskpar::apps

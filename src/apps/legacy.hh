/**
 * @file
 * The 2010 testbed replication: period-appropriate workload models
 * for the Blake et al. comparison machine (dual-socket Nehalem-era
 * Xeon, GTX 285) so the "18-year perspective" can be replayed inside
 * one toolkit. The paper's Section II summarizes the 2010 findings
 * this module reproduces: "2-3 processor cores were still more than
 * sufficient for most applications and the GPU was mostly
 * underutilized."
 *
 * Models are calibrated to the 2010 bars of Figures 2-3 (see
 * report/history.cc): Photoshop CS4 1.7 TLP / 4% GPU, Office 2007
 * ~1.4 / ~2.5%, HandBrake 0.9 8.3 / 1%, Firefox 3.5 1.8 / 5%,
 * Quicktime 7.6 2.0 / 15%, PowerDirector v7 4.0 / 10%.
 */

#ifndef DESKPAR_APPS_LEGACY_HH
#define DESKPAR_APPS_LEGACY_HH

#include <vector>

#include "apps/app.hh"
#include "sim/machine.hh"

namespace deskpar::apps {

/**
 * The Blake et al. 2010 machine: 8 Nehalem cores (two sockets
 * modeled as one package) with SMT, and the GTX 285.
 */
sim::MachineConfig blake2010Config();

/** @{ 2010-era application models (Figure 2/3 bars). */
WorkloadPtr makePhotoshopCs4();
WorkloadPtr makeExcel2007();
WorkloadPtr makeWord2007();
WorkloadPtr makeHandBrake09();
WorkloadPtr makeFirefox35();
WorkloadPtr makeQuicktime76();
WorkloadPtr makePowerDirector7();
/** @} */

/** One 2010 suite member with its historical calibration targets. */
struct LegacyEntry
{
    std::string id;
    WorkloadPtr (*factory)();
    /** 2010 targets (TLP, GPU %) from Figures 2-3. */
    double tlp2010;
    double gpu2010;
};

/** All legacy models, for suite-style iteration. */
const std::vector<LegacyEntry> &legacySuite();

} // namespace deskpar::apps

#endif // DESKPAR_APPS_LEGACY_HH

#include "apps/registry.hh"

#include "apps/browser.hh"
#include "apps/mining.hh"
#include "apps/suite.hh"
#include "apps/video.hh"
#include "apps/vr.hh"
#include "sim/logging.hh"

namespace deskpar::apps {

const std::vector<SuiteEntry> &
tableTwoSuite()
{
    static const std::vector<SuiteEntry> kSuite = {
        {"photoshop", "Image Authoring", makePhotoshop},
        {"maya", "Image Authoring", makeMaya},
        {"autocad", "Image Authoring", makeAutoCad},

        {"acrobat", "Office", makeAcrobat},
        {"excel", "Office", makeExcel},
        {"powerpoint", "Office", makePowerPoint},
        {"word", "Office", makeWord},
        {"outlook", "Office", makeOutlook},

        {"quicktime", "Multimedia Playback", makeQuickTime},
        {"wmplayer", "Multimedia Playback", makeWindowsMediaPlayer},
        {"vlc", "Multimedia Playback", makeVlc},

        {"powerdirector", "Video Authoring", makePowerDirector},
        {"premiere", "Video Authoring", [] { return makePremiere(); }},

        {"handbrake", "Video Transcoding", makeHandBrake},
        {"winx", "Video Transcoding", [] { return makeWinX(true); }},

        {"firefox", "Web Browsing",
         [] { return makeBrowser(BrowserEngine::Firefox); }},
        {"chrome", "Web Browsing",
         [] { return makeBrowser(BrowserEngine::Chrome); }},
        {"edge", "Web Browsing",
         [] { return makeBrowser(BrowserEngine::Edge); }},

        {"azsunshine", "VR Gaming",
         [] { return makeVrGame(VrGame::ArizonaSunshine); }},
        {"fallout4", "VR Gaming",
         [] { return makeVrGame(VrGame::Fallout4); }},
        {"rawdata", "VR Gaming",
         [] { return makeVrGame(VrGame::RawData); }},
        {"serioussam", "VR Gaming",
         [] { return makeVrGame(VrGame::SeriousSamVr); }},
        {"spacepirate", "VR Gaming",
         [] { return makeVrGame(VrGame::SpacePirateTrainer); }},
        {"projectcars2", "VR Gaming",
         [] { return makeVrGame(VrGame::ProjectCars2); }},

        {"bitcoinminer", "Cryptocurrency Mining", makeBitcoinMiner},
        {"easyminer", "Cryptocurrency Mining", makeEasyMiner},
        {"phoenixminer", "Cryptocurrency Mining", makePhoenixMiner},
        {"wineth", "Cryptocurrency Mining", makeWindowsEthMiner},

        {"cortana", "Personal Assistant", makeCortana},
        {"braina", "Personal Assistant", makeBraina},
    };
    return kSuite;
}

WorkloadPtr
makeWorkload(const std::string &id)
{
    for (const auto &entry : tableTwoSuite()) {
        if (entry.id == id)
            return entry.factory();
    }
    fatal("makeWorkload: unknown workload id " + id);
}

std::vector<std::string>
workloadIds()
{
    std::vector<std::string> ids;
    ids.reserve(tableTwoSuite().size());
    for (const auto &entry : tableTwoSuite())
        ids.push_back(entry.id);
    return ids;
}

} // namespace deskpar::apps

/**
 * @file
 * SuiteRunner: a work-stealing thread pool that fans the measurement
 * pipeline's independent (workload, config, iteration) simulations
 * across host threads.
 *
 * Every simulation owns its Machine outright and shares no mutable
 * state with its siblings (workload models only read their immutable
 * parameters; all randomness forks from the machine seed), so the
 * fan-out needs no locking inside the sim. The runner preserves the
 * serial protocol's per-iteration seed derivation
 * (`seedBase + iter * 7919`) and folds iterations back in ascending
 * order, so aggregated results are bit-identical to runWorkload()
 * regardless of thread count or scheduling.
 *
 * Thread count resolution: explicit constructor argument, else the
 * DESKPAR_JOBS environment variable, else hardware concurrency.
 * With one thread the runner executes inline on the calling thread
 * (no pool), which is the CI serial leg.
 */

#ifndef DESKPAR_APPS_RUNNER_HH
#define DESKPAR_APPS_RUNNER_HH

#include <functional>
#include <string>
#include <vector>

#include "apps/harness.hh"

namespace deskpar::apps {

/**
 * One fan-out unit: a workload under one option set. The factory is
 * invoked once per iteration, on the worker thread, so each sim task
 * gets a private model instance.
 */
struct SuiteJob
{
    /** Diagnostic label ("handbrake@4c"). */
    std::string label;
    /** Builds a fresh model instance for one iteration. */
    std::function<WorkloadPtr()> factory;
    RunOptions options;
};

/** Job running the registry workload @p id under @p options. */
SuiteJob suiteJob(const std::string &id, const RunOptions &options);

/**
 * The parallel suite executor.
 */
class SuiteRunner
{
  public:
    /** @p threads = 0 resolves via defaultThreads(). */
    explicit SuiteRunner(unsigned threads = 0);

    /** Worker threads this runner fans out to. */
    unsigned threads() const { return threads_; }

    /**
     * Run every job, returning results in submission order (the
     * ordering is deterministic: scheduling never reorders results).
     * The first exception a task throws is rethrown here, after all
     * in-flight tasks finish; tasks not yet started are cancelled.
     */
    std::vector<AppRunResult> run(const std::vector<SuiteJob> &jobs) const;

    /**
     * Thread count from the DESKPAR_JOBS environment variable (a
     * positive integer), falling back to hardware concurrency.
     */
    static unsigned defaultThreads();

  private:
    unsigned threads_;
};

/** Convenience: run @p jobs on a default-sized SuiteRunner. */
std::vector<AppRunResult> runSuite(const std::vector<SuiteJob> &jobs);

} // namespace deskpar::apps

#endif // DESKPAR_APPS_RUNNER_HH

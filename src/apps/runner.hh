/**
 * @file
 * SuiteRunner: a work-stealing thread pool that fans the measurement
 * pipeline's independent (workload, config, iteration) simulations
 * across host threads.
 *
 * Every simulation owns its Machine outright and shares no mutable
 * state with its siblings (workload models only read their immutable
 * parameters; all randomness forks from the machine seed), so the
 * fan-out needs no locking inside the sim. The runner preserves the
 * serial protocol's per-iteration seed derivation
 * (`seedBase + iter * 7919`) and folds iterations back in ascending
 * order, so aggregated results are bit-identical to runWorkload()
 * regardless of thread count or scheduling.
 *
 * Thread count resolution: explicit constructor argument, else the
 * DESKPAR_JOBS environment variable, else hardware concurrency.
 * With one thread the runner executes inline on the calling thread
 * (no pool), which is the CI serial leg.
 */

#ifndef DESKPAR_APPS_RUNNER_HH
#define DESKPAR_APPS_RUNNER_HH

#include <functional>
#include <string>
#include <vector>

#include "apps/harness.hh"
#include "trace/diagnostic.hh"
#include "trace/parse.hh"

namespace deskpar::apps {

/**
 * One fan-out unit: a workload under one option set. The factory is
 * invoked once per iteration, on the worker thread, so each sim task
 * gets a private model instance.
 */
struct SuiteJob
{
    /** Diagnostic label ("handbrake@4c"). */
    std::string label;
    /** Builds a fresh model instance for one iteration. */
    std::function<WorkloadPtr()> factory;
    /**
     * Alternative to factory: produce one iteration directly
     * (trace-replay jobs). Exactly one of factory/direct is set.
     */
    std::function<IterationOutput(const RunOptions &, unsigned)>
        direct;
    RunOptions options;
};

/** Job running the registry workload @p id under @p options. */
SuiteJob suiteJob(const std::string &id, const RunOptions &options);

/**
 * Job replaying a saved .etl trace instead of simulating: every
 * iteration ingests @p path, filters to the processes whose names
 * start with @p appPrefix (empty = every non-idle pid), and analyzes
 * the result. Strict ingestion fails this one job with the reader's
 * structured ParseError — under runRecoverable() the rest of the
 * batch completes; lenient ingestion warns, analyzes whatever was
 * salvaged, and degrades the result instead of failing.
 */
SuiteJob replayJob(const std::string &path, const RunOptions &options,
                   const std::string &appPrefix = "",
                   trace::ParseMode mode = trace::ParseMode::Strict);

/** One suite job that could not produce a result. */
struct JobFailure
{
    /** Submission index within the batch. */
    std::size_t job = 0;
    std::string label;
    /**
     * Structured cause. Parse failures carry their full location;
     * other FatalErrors carry only reason (structured == false).
     */
    trace::ParseError error;
    bool structured = false;

    /** This failure as an error-severity "runner" Diagnostic. */
    trace::Diagnostic diagnostic() const;
};

/**
 * Outcome of a recoverable batch: per-job results plus the failures
 * that degraded it. results[j] is meaningful iff !failed(j).
 */
struct SuiteOutcome
{
    std::vector<AppRunResult> results;
    std::vector<JobFailure> failures;
    /** Batch-level ingest roll-up (one error per failed job). */
    trace::IngestReport ingest;

    bool ok() const { return failures.empty(); }
    bool failed(std::size_t job) const;
};

/**
 * The parallel suite executor.
 */
class SuiteRunner
{
  public:
    /** @p threads = 0 resolves via defaultThreads(). */
    explicit SuiteRunner(unsigned threads = 0);

    /** Worker threads this runner fans out to. */
    unsigned threads() const { return threads_; }

    /**
     * Run every job, returning results in submission order (the
     * ordering is deterministic: scheduling never reorders results).
     * The first exception a task throws is rethrown here, after all
     * in-flight tasks finish; tasks not yet started are cancelled.
     */
    std::vector<AppRunResult> run(const std::vector<SuiteJob> &jobs) const;

    /**
     * Degraded-batch variant: a FatalError (e.g. a TraceParseError
     * from a corrupt trace) in one job fails *that job only* — its
     * remaining iterations are cancelled, every other job still
     * runs, and the failure lands in the outcome's failure list and
     * IngestReport. PanicError and non-deskpar exceptions still
     * abort the batch: those are bugs, not data.
     */
    SuiteOutcome
    runRecoverable(const std::vector<SuiteJob> &jobs) const;

    /**
     * Thread count from the DESKPAR_JOBS environment variable (a
     * positive integer), falling back to hardware concurrency.
     */
    static unsigned defaultThreads();

  private:
    unsigned threads_;
};

/** Convenience: run @p jobs on a default-sized SuiteRunner. */
std::vector<AppRunResult> runSuite(const std::vector<SuiteJob> &jobs);

} // namespace deskpar::apps

#endif // DESKPAR_APPS_RUNNER_HH

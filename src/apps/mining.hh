/**
 * @file
 * Cryptocurrency-mining workloads (Table II category 8): Bitcoin
 * Miner and EasyMiner (Bitcoin, CPU+GPU), PhoenixMiner and Windows
 * Ethereum Miner (Ethereum, GPU).
 *
 * PhoenixMiner keeps two compute packets in flight (the paper's
 * "*100.0" footnote). Windows Ethereum Miner is not optimized for
 * pre-crypto architectures: on a Kepler board its submission path
 * leaves gaps between kernels, reproducing the lower GTX 680
 * utilization of Figure 10.
 */

#ifndef DESKPAR_APPS_MINING_HH
#define DESKPAR_APPS_MINING_HH

#include "apps/app.hh"

namespace deskpar::apps {

/** Bitcoin Miner 1.54.0: GPU kernels + a small CPU hash pool. */
WorkloadPtr makeBitcoinMiner();

/** EasyMiner 0.87: CPU mining on every logical CPU + GPU kernels. */
WorkloadPtr makeEasyMiner();

/** PhoenixMiner 3.0c: dual-stream GPU ethash (overlapping packets). */
WorkloadPtr makePhoenixMiner();

/** Windows Ethereum Miner 1.5.27: single-stream GPU ethash. */
WorkloadPtr makeWindowsEthMiner();

} // namespace deskpar::apps

#endif // DESKPAR_APPS_MINING_HH

#include "apps/legacy.hh"

#include "apps/standard.hh"
#include "apps/video.hh"

namespace deskpar::apps {

namespace {

/** GPU work sized as milliseconds on the GTX 285 (2010 packets were
 *  authored for 2010 boards, not for a 1080 Ti). */
sim::WorkUnits
gpu285Ms(GpuEngineId engine, double ms)
{
    static const sim::GpuSpec kBoard = sim::GpuSpec::gtx285();
    return kBoard.workForMs(engine, ms);
}

/** PeriodicBurst whose GPU packet is sized for the GTX 285. */
StandardAppParams::Service
gpu285Service(std::string name, double period_ms, double burst_ms,
              double gpu_ms,
              GpuEngineId engine = GpuEngineId::Graphics3D)
{
    StandardAppParams::Service service;
    service.name = std::move(name);
    service.params.periodMs = Dist::fixed(period_ms);
    service.params.burstMs = Dist::normal(burst_ms, burst_ms * 0.25);
    // Re-express the 285-milliseconds in reference-board units (the
    // blocks helper divides by the 1080 Ti rate at submission).
    double ref_ms = gpu285Ms(engine, gpu_ms) /
                    sim::GpuSpec::gtx1080Ti().throughput(engine) *
                    1e3;
    service.params.gpuPacketMs = Dist::normal(ref_ms, ref_ms * 0.1);
    service.params.gpuEngine = engine;
    service.params.anchorPeriod = true;
    return service;
}

} // namespace

sim::MachineConfig
blake2010Config()
{
    sim::MachineConfig config;
    sim::CpuSpec cpu = sim::CpuSpec::xeon2010();
    // Dual socket x 4 cores modeled as one 8-core package; no turbo
    // on the 2010 part, 2-way SMT, 8 MiB LLC per socket.
    cpu.model = "2x Intel Xeon (Nehalem), 4 cores each";
    cpu.physicalCores = 8;
    cpu.llcMiB = 16;
    cpu.ramGiB = 6;
    cpu.tdpWatts = 160.0;
    cpu.idleWatts = 25.0;
    config.cpu = cpu;
    config.gpu = sim::GpuSpec::gtx285();
    config.activeCpus = 16;
    config.smtEnabled = true;
    return config;
}

WorkloadPtr
makePhotoshopCs4()
{
    StandardAppParams p;
    p.spec = {"photoshop-cs4", "Adobe Photoshop CS4 (2010)",
              "Image Authoring"};
    p.smtFriendliness = 0.3;
    p.inputRateHz = 1.0;
    p.uiBurstMs = Dist::normal(8.0, 2.0);
    // 2010 filters: a 2-wide pool, not the 12-wide CC engine.
    p.renderWorkers = 2;
    p.workerChunkMs = Dist::normal(24.0, 4.0);
    p.phaseEveryNthInput = 3;
    p.phaseRounds = 2;
    p.services.push_back(
        gpu285Service("compositor", 100.0, 0.4, 4.0));
    return std::make_unique<StandardAppModel>(std::move(p));
}

WorkloadPtr
makeExcel2007()
{
    StandardAppParams p;
    p.spec = {"excel-2007", "Microsoft Excel 2007", "Office"};
    p.inputRateHz = 2.0;
    p.uiBurstMs = Dist::normal(5.0, 1.2);
    p.uiHelpers = 1;
    p.uiHelperMs = Dist::normal(3.2, 0.8);
    p.services.push_back(
        gpu285Service("grid-redraw", 60.0, 0.5, 1.5));
    return std::make_unique<StandardAppModel>(std::move(p));
}

WorkloadPtr
makeWord2007()
{
    StandardAppParams p;
    p.spec = {"word-2007", "Microsoft Word 2007", "Office"};
    p.inputRateHz = 3.0;
    p.uiBurstMs = Dist::normal(2.5, 0.6);
    p.uiHelpers = 1;
    p.uiHelperMs = Dist::normal(2.2, 0.6);
    p.services.push_back(gpu285Service("paint", 66.7, 0.4, 1.3));
    return std::make_unique<StandardAppModel>(std::move(p));
}

WorkloadPtr
makeHandBrake09()
{
    TranscoderParams p;
    p.spec = {"handbrake-09", "HandBrake 0.9 (2010)",
              "Video Transcoding"};
    p.smtFriendliness = 0.15;
    p.parallelFrameMs = 200.0;
    p.serialFrameMs = 21.0;
    p.workersPerLogicalCpu = 1.0;
    p.maxWorkers = 16;
    p.previewGpuMs = 0.01; // ~0.5 ms on the GTX 285
    return std::make_unique<TranscoderModel>(std::move(p));
}

WorkloadPtr
makeFirefox35()
{
    // 2010 browsers ran single-process: one UI/content thread plus
    // a garbage collector and a compositor — the model whose higher
    // single-tab TLP (GC churn on navigation) the paper contrasts
    // with today's multi-process designs.
    StandardAppParams p;
    p.spec = {"firefox-35", "Mozilla Firefox 3.5", "Web Browsing"};
    p.inputRateHz = 3.0;
    p.uiBurstMs = Dist::normal(6.0, 1.8);
    // GC + layout helpers after each navigation: the garbage-
    // collection churn the paper credits with 2010's higher
    // single-tab TLP.
    p.uiHelpers = 2;
    p.uiHelperMs = Dist::normal(5.0, 1.5);
    p.services.push_back(
        gpu285Service("compositor", 33.3, 0.7, 1.65));
    return std::make_unique<StandardAppModel>(std::move(p));
}

WorkloadPtr
makeQuicktime76()
{
    StandardAppParams p;
    p.spec = {"quicktime-76", "QuickTime 7.6 (2010)",
              "Media Playback"};
    p.smtFriendliness = 0.4;
    p.inputRateHz = 0.2;
    p.uiBurstMs = Dist::normal(3.0, 0.8);
    // Two aligned decode threads: the 2010 player's TLP of ~2.
    for (int i = 0; i < 2; ++i) {
        StandardAppParams::Service decode;
        decode.name = "decode-" + std::to_string(i);
        decode.params.periodMs = Dist::fixed(33.3);
        decode.params.burstMs = Dist::normal(3.2, 0.8);
        decode.params.startDelayMs = Dist::fixed(4.0);
        decode.params.anchorPeriod = true;
        p.services.push_back(decode);
    }
    auto render = gpu285Service("render", 33.3, 0.5, 5.0,
                                GpuEngineId::VideoDecode);
    render.params.presentsFrame = true;
    render.params.startDelayMs = Dist::fixed(4.2);
    p.services.push_back(render);
    return std::make_unique<StandardAppModel>(std::move(p));
}

WorkloadPtr
makePowerDirector7()
{
    StandardAppParams p;
    p.spec = {"powerdirector-7", "CyberLink PowerDirector v7",
              "Video Authoring"};
    p.inputRateHz = 2.0;
    p.uiBurstMs = Dist::normal(6.0, 1.5);
    p.renderWorkers = 5;
    p.workerChunkMs = Dist::normal(28.0, 4.0);
    p.phaseEveryNthInput = 2;
    p.phaseRounds = 4;
    p.services.push_back(
        gpu285Service("preview", 33.3, 0.6, 3.3));
    return std::make_unique<StandardAppModel>(std::move(p));
}

const std::vector<LegacyEntry> &
legacySuite()
{
    static const std::vector<LegacyEntry> kSuite = {
        {"photoshop-cs4", makePhotoshopCs4, 1.7, 4.0},
        {"excel-2007", makeExcel2007, 1.5, 2.5},
        {"word-2007", makeWord2007, 1.4, 2.0},
        {"handbrake-09", makeHandBrake09, 8.3, 1.0},
        {"firefox-35", makeFirefox35, 1.8, 5.0},
        {"quicktime-76", makeQuicktime76, 2.0, 15.0},
        {"powerdirector-7", makePowerDirector7, 4.0, 10.0},
    };
    return kSuite;
}

} // namespace deskpar::apps

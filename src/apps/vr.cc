#include "apps/vr.hh"

#include <algorithm>
#include <memory>

#include "apps/blocks.hh"
#include "apps/startup.hh"
#include "sim/logging.hh"

namespace deskpar::apps {

namespace {

/** 90 Hz compositor slot. */
constexpr double kSlotMs = 1000.0 / 90.0;

/** Per-game cost/structure knobs. */
struct VrGameParams
{
    const char *id;
    const char *name;
    double smtFriendliness;
    /** Main-thread simulation per frame (ms @ ref clock). */
    double cpuFrameMs;
    /** Fork-join helper jobs per frame. */
    unsigned workers;
    double workerFrameMs;
    /** Render packet at resolution scale 1.0 (ms on ref GPU). */
    double gpuFrameMs;
    /** Dynamic-resolution cap (Fallout renders capped internally). */
    double dynamicResCap;
    /** Extra CPU cost per unit of resolution above 1.0 (Fallout). */
    double cpuResPenalty;
    /** Render-cost multiplier during heavy scenes. */
    double spikeFactor;
};

VrGameParams
paramsOf(VrGame game)
{
    switch (game) {
      case VrGame::ArizonaSunshine:
        return {"azsunshine", "Arizona Sunshine 1.5", 0.35,
                2.2, 6, 2.55, 7.3, 2.0, 0.0, 1.08};
      case VrGame::Fallout4:
        return {"fallout4", "Fallout 4 VR 1.2", 0.35,
                3.6, 8, 2.75, 9.1, 1.0, 11.0, 1.05};
      case VrGame::RawData:
        return {"rawdata", "RAW Data 1.1.0", 0.35,
                1.8, 4, 2.7, 10.0, 2.0, 0.0, 1.02};
      case VrGame::SeriousSamVr:
        return {"serioussam", "Serious Sam VR BFE", 0.35,
                1.6, 4, 1.8, 7.7, 2.0, 0.0, 1.08};
      case VrGame::SpacePirateTrainer:
        return {"spacepirate", "Space Pirate Trainer 1.01", 0.35,
                1.7, 4, 2.9, 6.5, 2.0, 0.0, 1.08};
      case VrGame::ProjectCars2:
        return {"projectcars2", "Project CARS 2 1.7", 0.35,
                3.9, 7, 3.7, 8.6, 2.0, 0.0, 1.08};
    }
    deskpar::panic("paramsOf: bad VR game");
}

/**
 * The 90 Hz game loop with headset frame pacing.
 */
class GameLoop : public ThreadBehavior
{
  public:
    GameLoop(const VrGameParams &game, const Headset &headset,
             CrewSync crew)
        : game_(game), headset_(headset), crew_(crew)
    {
        effScale_ =
            std::min(headset_.resolutionScale, game_.dynamicResCap);
        cpuMs_ = game_.cpuFrameMs *
                 (1.0 + game_.cpuResPenalty *
                            std::max(0.0,
                                     headset_.resolutionScale - 1.0));
    }

    Action
    next(ThreadContext &ctx) override
    {
        while (true) {
            switch (step_) {
              case Step::FrameStart:
                if (slotNs_ == 0)
                    slotNs_ = sim::msec(kSlotMs);
                if (nextSlot_ == 0)
                    nextSlot_ = ctx.now;
                step_ = Step::Submit;
                continue;

              case Step::Submit: {
                // Render of frame N is submitted first and overlaps
                // the CPU simulation of frame N+1 (standard engine
                // pipelining). The Oculus runtime throttles the app
                // to one frame in flight; SteamVR lets it run one
                // frame ahead, keeping the GPU saturated when the
                // render exceeds the vsync budget.
                step_ = Step::Sim;
                // Occasional heavy scenes (zombie waves, crowded
                // grids) inflate render cost for ~half a second.
                if (spikeFramesLeft_ > 0) {
                    --spikeFramesLeft_;
                } else if (ctx.rng->bernoulli(1.0 / 300.0)) {
                    spikeFramesLeft_ = 30;
                }
                frameWorkStart_ = ctx.now;
                unsigned depth =
                    headset_.pacing == Headset::Pacing::Asw ? 1 : 2;
                if (ctx.gpuOutstanding < depth) {
                    ++submittedFrames_;
                    double spike =
                        spikeFramesLeft_ > 0 ? game_.spikeFactor : 1.0;
                    double ms = ctx.rng->normalNonNeg(
                        game_.gpuFrameMs * effScale_ * spike,
                        game_.gpuFrameMs * 0.03);
                    ms += ctx.rng->normalNonNeg(
                        headset_.compositorGpuMs,
                        headset_.compositorGpuMs * 0.25);
                    return Action::gpuAsync(
                        GpuEngineId::Graphics3D,
                        gpuMs(GpuEngineId::Graphics3D, ms));
                }
                continue;
              }

              case Step::Sim:
                step_ = Step::Dispatch;
                return Action::compute(cpuMs(
                    ctx.rng->normalNonNeg(cpuMs_, cpuMs_ * 0.12)));

              case Step::Dispatch:
                joinsLeft_ = crew_.workers;
                step_ = Step::Join;
                return Action::signalSync(crew_.work, crew_.workers);

              case Step::Join:
                if (joinsLeft_ > 0) {
                    --joinsLeft_;
                    return Action::waitSync(crew_.done);
                }
                step_ = Step::Deadline;
                continue;

              case Step::Deadline: {
                // Predictive ASW: Oculus drops the app to half rate
                // when per-frame CPU headroom runs out, and only
                // returns to full rate once a frame would fit in a
                // single vsync again.
                trackSlack(ctx.now - frameWorkStart_);
                unsigned periods = halfRate_ ? 2 : 1;
                nextSlot_ += periods * slotNs_;
                step_ = Step::Present;
                if (nextSlot_ > ctx.now)
                    return Action::sleepUntil(nextSlot_);
                // The CPU overran the slot; realign to now.
                nextSlot_ = ctx.now;
                continue;
              }

              case Step::Present: {
                // A real frame is shown when a submitted render has
                // completed and not been displayed yet (possibly one
                // vsync late — reprojection holds the previous image
                // meanwhile).
                unsigned completed =
                    submittedFrames_ - ctx.gpuOutstanding;
                bool rendered = completed > shownFrames_;
                if (rendered)
                    ++shownFrames_;
                trackMiss(!rendered);
                step_ = halfRate_ ? Step::AswFill
                                  : Step::FrameStart;
                return Action::present(!rendered);
              }

              case Step::AswFill:
                // ASW at 45 FPS: the runtime synthesizes the frame
                // between two real ones.
                step_ = Step::FrameStart;
                return Action::present(true);
            }
        }
    }

  private:
    enum class Step {
        FrameStart,
        Submit,
        Sim,
        Dispatch,
        Join,
        Deadline,
        Present,
        AswFill,
    };

    void
    trackMiss(bool missed)
    {
        if (headset_.pacing != Headset::Pacing::Asw)
            return;
        if (missed) {
            ++missStreak_;
            hitStreak_ = 0;
            if (!halfRate_ && missStreak_ >= 4)
                halfRate_ = true;
        } else {
            ++hitStreak_;
            missStreak_ = 0;
        }
    }

    void
    trackSlack(sim::SimDuration frame_busy)
    {
        if (headset_.pacing != Headset::Pacing::Asw)
            return;
        if (!halfRate_) {
            // Engage when CPU headroom drops under 15% of the slot.
            auto budget = static_cast<sim::SimDuration>(
                0.85 * static_cast<double>(slotNs_));
            if (frame_busy > budget) {
                if (++slackMisses_ >= 4)
                    halfRate_ = true;
            } else {
                slackMisses_ = 0;
            }
        } else {
            // Disengage only when the frame would comfortably fit
            // in a single vsync again.
            auto budget = static_cast<sim::SimDuration>(
                0.70 * static_cast<double>(slotNs_));
            if (frame_busy < budget) {
                if (++slackHits_ >= 45) {
                    halfRate_ = false;
                    slackHits_ = 0;
                }
            } else {
                slackHits_ = 0;
            }
        }
    }

    VrGameParams game_;
    Headset headset_;
    CrewSync crew_;
    double effScale_ = 1.0;
    double cpuMs_ = 1.0;
    Step step_ = Step::FrameStart;
    unsigned joinsLeft_ = 0;
    sim::SimDuration slotNs_ = 0;
    sim::SimTime nextSlot_ = 0;
    unsigned submittedFrames_ = 0;
    unsigned shownFrames_ = 0;
    sim::SimTime frameWorkStart_ = 0;
    unsigned slackMisses_ = 0;
    unsigned slackHits_ = 0;
    bool halfRate_ = false;
    unsigned spikeFramesLeft_ = 0;
    unsigned missStreak_ = 0;
    unsigned hitStreak_ = 0;
};

class VrGameModel : public WorkloadModel
{
  public:
    VrGameModel(VrGame game, Headset headset)
        : game_(paramsOf(game)), headset_(std::move(headset))
    {
        spec_ = {game_.id, game_.name, "VR Gaming"};
    }

    const AppSpec &spec() const override { return spec_; }

    AppInstance
    instantiate(sim::Machine &machine) override
    {
        auto &process = machine.createProcess(game_.id,
                                              game_.smtFriendliness);
        // Level/asset loading at start: wide, short-lived.
        spawnStartupBurst(machine, process, 2.5);

        CrewSync crew = makeCrew(machine, game_.workers);
        spawnCrewWorkers(
            process, crew,
            Dist::normal(game_.workerFrameMs,
                         game_.workerFrameMs * 0.2),
            "job");
        process.createThread(
            std::make_shared<GameLoop>(game_, headset_, crew),
            "game-loop");

        // Sensor-fusion/tracking thread: light 250 Hz ticks.
        PeriodicBurstParams tracking;
        tracking.periodMs = Dist::fixed(4.0);
        tracking.burstMs = Dist::normal(0.12, 0.03);
        process.createThread(std::make_shared<PeriodicBurst>(tracking),
                             "tracking");

        // Headset runtime helpers (compositor/ASW workers).
        for (unsigned i = 0; i < headset_.runtimeThreads; ++i) {
            PeriodicBurstParams runtime;
            runtime.periodMs = Dist::fixed(kSlotMs);
            runtime.burstMs = Dist::normal(
                headset_.runtimeFrameMs,
                headset_.runtimeFrameMs * 0.2);
            // Phase-locked with the game loop's frame work.
            runtime.startDelayMs = Dist::fixed(0.2 * i);
            runtime.anchorPeriod = true;
            process.createThread(
                std::make_shared<PeriodicBurst>(runtime),
                "vr-runtime-" + std::to_string(i));
        }

        // Controller handler: responds to player actions.
        InteractiveUiParams controller;
        controller.inputChannel = machine.inputChannel(
            input::channelOf(input::InputKind::VrController));
        controller.uiBurstMs = Dist::normal(1.2, 0.4);
        process.createThread(
            std::make_shared<InteractiveUi>(controller),
            "controller");

        AppInstance instance;
        instance.processPrefix = game_.id;
        auto count = static_cast<unsigned>(
            sim::toSeconds(duration()) * 3.0);
        instance.script.every(sim::msec(333), sim::msec(333), count,
                              input::InputKind::VrController);
        return instance;
    }

  private:
    VrGameParams game_;
    Headset headset_;
    AppSpec spec_;
};

} // namespace

Headset
Headset::rift()
{
    Headset h;
    h.name = "Oculus Rift";
    h.resolutionScale = 1.0;
    h.pacing = Pacing::Asw;
    h.runtimeThreads = 2;
    h.runtimeFrameMs = 0.8;
    h.compositorGpuMs = 0.3;
    return h;
}

Headset
Headset::vive()
{
    Headset h;
    h.name = "HTC Vive";
    h.resolutionScale = 1.02;
    h.pacing = Pacing::Reprojection;
    h.runtimeThreads = 1;
    h.runtimeFrameMs = 0.5;
    h.compositorGpuMs = 1.0;
    return h;
}

Headset
Headset::vivePro()
{
    Headset h;
    h.name = "HTC Vive Pro";
    h.resolutionScale = 1.15;
    h.pacing = Pacing::Reprojection;
    h.runtimeThreads = 1;
    h.runtimeFrameMs = 0.5;
    h.compositorGpuMs = 1.2;
    return h;
}

const char *
vrGameName(VrGame game)
{
    return paramsOf(game).name;
}

const char *
vrGameId(VrGame game)
{
    return paramsOf(game).id;
}

WorkloadPtr
makeVrGame(VrGame game, const Headset &headset)
{
    return std::make_unique<VrGameModel>(game, headset);
}

WorkloadPtr
makeVrGame(VrGame game)
{
    return makeVrGame(game, Headset::rift());
}

} // namespace deskpar::apps

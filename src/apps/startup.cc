#include "apps/startup.hh"

#include "apps/blocks.hh"
#include "sim/behaviors_basic.hh"

namespace deskpar::apps {

void
spawnStartupBurst(sim::Machine &machine, sim::SimProcess &process,
                  double burst_ms)
{
    unsigned width = machine.activeLogicalCpus();
    for (unsigned i = 0; i < width; ++i) {
        double ms = process.rng().normalNonNeg(burst_ms,
                                               burst_ms * 0.25);
        process.createThread(
            sim::makeSequence({sim::Action::compute(cpuMs(ms))}),
            "loader-" + std::to_string(i));
    }
}

} // namespace deskpar::apps

/**
 * @file
 * Reusable thread-behavior building blocks for workload models.
 *
 * Workload models compose these blocks into processes:
 *  - PeriodicBurst:  service/decode/render threads that tick;
 *  - PoolWorker:     persistent fork-join worker;
 *  - crewDispatch /  fork-join coordination helpers used by masters;
 *  - InteractiveUi:  input-driven UI thread with optional parallel
 *    render phases (the Photoshop-filter pattern);
 *  - GpuKernelLoop:  back-to-back GPU kernel submission (miners);
 *  - CpuGrinder:     saturating CPU worker (CPU mining).
 *
 * All durations are expressed as Dist (sampled per occurrence from
 * the process RNG), CPU work in milliseconds at the reference base
 * clock (3.7 GHz), and GPU work in milliseconds on the reference
 * GTX 1080 Ti — so one parameterization produces the paper-calibrated
 * operating point while scaling effects emerge from the machine.
 */

#ifndef DESKPAR_APPS_BLOCKS_HH
#define DESKPAR_APPS_BLOCKS_HH

#include <memory>
#include <string>

#include "sim/behavior.hh"
#include "sim/dist.hh"
#include "sim/machine.hh"

namespace deskpar::apps {

using sim::Action;
using sim::Dist;
using sim::GpuEngineId;
using sim::SyncId;
using sim::ThreadBehavior;
using sim::ThreadContext;

/** Reference base clock for expressing CPU bursts in milliseconds. */
inline constexpr double kRefClockGhz = 3.7;

/** CPU work units for @p ms milliseconds at the reference clock. */
inline sim::WorkUnits
cpuMs(double ms)
{
    return sim::workForMs(ms, kRefClockGhz);
}

/** GPU work units for @p ms milliseconds on the reference 1080 Ti. */
sim::WorkUnits gpuMs(GpuEngineId engine, double ms);

/**
 * Parameters for PeriodicBurst threads.
 */
struct PeriodicBurstParams
{
    /** Time between burst starts. */
    Dist periodMs = Dist::fixed(100.0);
    /** CPU burst per tick (ms at reference clock); may be zero. */
    Dist burstMs = Dist::fixed(1.0);
    /** GPU packet per tick (ms on reference GPU); zero disables. */
    Dist gpuPacketMs = Dist::fixed(0.0);
    GpuEngineId gpuEngine = GpuEngineId::Graphics3D;
    /** Wait for the GPU packet to finish before sleeping again. */
    bool gpuSync = false;
    /** Present a frame each tick (media/render threads). */
    bool presentsFrame = false;
    /** Initial offset before the first tick. */
    Dist startDelayMs = Dist::fixed(0.0);
    /** Stop after this many ticks; 0 = run forever. */
    unsigned tickLimit = 0;
    /**
     * Anchor ticks to absolute period boundaries (drift-free), so
     * same-period threads stay phase-locked — pipeline stages that
     * process the same frame (decoders, vsync-driven threads).
     * When false, the thread sleeps for a period *between* bursts.
     */
    bool anchorPeriod = false;
};

/**
 * A thread that periodically wakes, computes, optionally talks to the
 * GPU, optionally presents a frame, and sleeps again.
 */
class PeriodicBurst : public ThreadBehavior
{
  public:
    explicit PeriodicBurst(PeriodicBurstParams params)
        : params_(std::move(params))
    {}

    Action next(ThreadContext &ctx) override;

  private:
    enum class Step { Start, Sleep, Compute, Gpu, GpuWait, Present };

    PeriodicBurstParams params_;
    Step step_ = Step::Start;
    unsigned ticks_ = 0;
    sim::SimTime nextTick_ = 0;
};

/**
 * Fork-join crew handles: allocated once per crew via makeCrew().
 */
struct CrewSync
{
    SyncId work = sim::kNoSync;
    SyncId done = sim::kNoSync;
    unsigned workers = 0;
};

/** Allocate crew semaphores on @p machine. */
CrewSync makeCrew(sim::Machine &machine, unsigned workers);

/**
 * Persistent fork-join worker: waits for a work token, computes a
 * chunk, signals completion, repeats forever.
 */
class PoolWorker : public ThreadBehavior
{
  public:
    PoolWorker(CrewSync crew, Dist chunk_ms)
        : crew_(crew), chunkMs_(chunk_ms)
    {}

    Action next(ThreadContext &ctx) override;

  private:
    enum class Step { Wait, Compute, Signal };

    CrewSync crew_;
    Dist chunkMs_;
    Step step_ = Step::Wait;
};

/** Spawn @p crew.workers PoolWorker threads in @p process. */
void spawnCrewWorkers(sim::SimProcess &process, const CrewSync &crew,
                      Dist chunk_ms, const std::string &name_prefix);

/**
 * Parameters for InteractiveUi threads.
 */
struct InteractiveUiParams
{
    /** Input channel sync id the thread waits on. */
    SyncId inputChannel = sim::kNoSync;
    /** CPU burst per input event. */
    Dist uiBurstMs = Dist::fixed(2.0);
    /** GPU packet per input event (ms on reference GPU); 0 = none. */
    Dist uiGpuMs = Dist::fixed(0.0);
    GpuEngineId uiGpuEngine = GpuEngineId::Graphics3D;
    /**
     * Semaphore signalled per input event before the UI burst runs;
     * SignalDrivenWorkers listening on it overlap the burst.
     */
    SyncId helperTrigger = sim::kNoSync;
    /** Tokens signalled per event (number of helpers to wake). */
    unsigned helperCount = 1;
    /** Every Nth input triggers a parallel crew phase; 0 = never. */
    unsigned phaseEveryNthInput = 0;
    /** Crew used for parallel phases. */
    CrewSync crew;
    /** Serial master work before the phase is dispatched. */
    Dist phaseSetupMs = Dist::fixed(1.0);
    /** Rounds of crew dispatch per phase (chunked fork/join). */
    unsigned phaseRounds = 1;
};

/**
 * Input-driven UI thread: waits for a user event, runs a burst, and
 * on every Nth event dispatches a fork-join render phase to its crew
 * (the Photoshop-filter / Excel-sort pattern).
 */
class InteractiveUi : public ThreadBehavior
{
  public:
    explicit InteractiveUi(InteractiveUiParams params)
        : params_(std::move(params))
    {}

    Action next(ThreadContext &ctx) override;

  private:
    enum class Step {
        WaitInput,
        HelperSignal,
        Burst,
        Gpu,
        PhaseSetup,
        PhaseDispatch,
        PhaseJoin,
    };

    InteractiveUiParams params_;
    Step step_ = Step::WaitInput;
    unsigned inputsSeen_ = 0;
    unsigned joinsLeft_ = 0;
    unsigned roundsLeft_ = 0;
};

/**
 * A worker that bursts whenever its trigger semaphore is signalled
 * (no completion signal) — used to model work that fans out from a
 * user interaction and overlaps the UI burst: page loads, background
 * exports, NLU helpers.
 */
class SignalDrivenWorker : public ThreadBehavior
{
  public:
    SignalDrivenWorker(SyncId trigger, Dist burst_ms,
                       Dist gpu_ms = Dist::fixed(0.0),
                       GpuEngineId engine = GpuEngineId::Graphics3D)
        : trigger_(trigger), burstMs_(burst_ms), gpuMs_(gpu_ms),
          engine_(engine)
    {}

    Action next(ThreadContext &ctx) override;

  private:
    enum class Step { Wait, Compute, Gpu };

    SyncId trigger_;
    Dist burstMs_;
    Dist gpuMs_;
    GpuEngineId engine_;
    Step step_ = Step::Wait;
};

/**
 * Parameters for GpuKernelLoop threads.
 */
struct GpuKernelLoopParams
{
    /** Kernel size, ms on the reference GPU. */
    Dist kernelMs = Dist::fixed(50.0);
    GpuEngineId engine = GpuEngineId::Compute;
    /** CPU-side preparation per kernel (ms at reference clock). */
    Dist prepMs = Dist::fixed(0.2);
    /** Idle gap inserted between kernels (unoptimized paths). */
    Dist gapMs = Dist::fixed(0.0);
};

/**
 * Submits GPU kernels back to back: prep on CPU, launch, wait,
 * optional gap, repeat (cryptocurrency mining, GPU export).
 */
class GpuKernelLoop : public ThreadBehavior
{
  public:
    explicit GpuKernelLoop(GpuKernelLoopParams params)
        : params_(std::move(params))
    {}

    Action next(ThreadContext &ctx) override;

  private:
    enum class Step { Prep, Launch, Wait, Gap };

    GpuKernelLoopParams params_;
    Step step_ = Step::Prep;
};

/**
 * A CPU-saturating worker: computes chunks forever with optional
 * tiny gaps (CPU mining threads).
 */
class CpuGrinder : public ThreadBehavior
{
  public:
    CpuGrinder(Dist chunk_ms, Dist gap_ms = Dist::fixed(0.0))
        : chunkMs_(chunk_ms), gapMs_(gap_ms)
    {}

    Action next(ThreadContext &ctx) override;

  private:
    Dist chunkMs_;
    Dist gapMs_;
    bool computing_ = true;
};

} // namespace deskpar::apps

#endif // DESKPAR_APPS_BLOCKS_HH

/**
 * @file
 * Video authoring and transcoding workloads (Table II categories 4
 * and 5): HandBrake, WinX HD Video Converter (with/without
 * CUDA/NVENC), CyberLink PowerDirector, and Adobe Premiere Pro
 * (editing, or export with/without CUDA for Figure 9).
 *
 * The transcoders follow the x264-style structure the paper
 * describes: a worker pool sized to the logical CPU count crunches
 * slices of each output frame, a master serializes muxing between
 * frames (the periodic TLP troughs of Figure 5), and the NVENC path
 * offloads encoding as asynchronous video-engine packets.
 */

#ifndef DESKPAR_APPS_VIDEO_HH
#define DESKPAR_APPS_VIDEO_HH

#include "apps/app.hh"
#include "apps/blocks.hh"

namespace deskpar::apps {

/**
 * Parameters of a pool-based transcoder/exporter.
 */
struct TranscoderParams
{
    AppSpec spec;
    /** Transcoders share data poorly across SMT siblings. */
    double smtFriendliness = 0.15;
    /** Frame buffers + reference frames: a large working set. */
    double llcFootprintMiB = 9.0;
    /** Total parallel CPU work per output frame (ms @ ref clock). */
    double parallelFrameMs = 200.0;
    /** Serial master work per frame (muxing, rate control). */
    double serialFrameMs = 5.0;
    /** Worker threads per active logical CPU. */
    double workersPerLogicalCpu = 1.0;
    unsigned maxWorkers = 12;
    /** Per-frame GPU packet (ms on reference GPU); 0 disables. */
    double gpuPacketMs = 0.0;
    GpuEngineId gpuEngine = GpuEngineId::VideoEncode;
    /** Block on the packet each frame (else pipeline w/ backlog cap). */
    bool gpuSyncPerFrame = false;
    /** Max in-flight GPU packets before the master stalls. */
    unsigned gpuBacklogCap = 4;
    /** Tiny per-frame preview packet (HandBrake's <1% GPU). */
    double previewGpuMs = 0.0;
};

/**
 * The transcoder workload. Each completed output frame is recorded
 * as a frame-present event, so the analysis frame rate is the
 * transcode rate of Figure 8 / Table III.
 */
class TranscoderModel : public WorkloadModel
{
  public:
    explicit TranscoderModel(TranscoderParams params)
        : params_(std::move(params))
    {}

    const AppSpec &spec() const override { return params_.spec; }
    const TranscoderParams &params() const { return params_; }

    AppInstance instantiate(sim::Machine &machine) override;

  private:
    TranscoderParams params_;
};

/** HandBrake 1.1.0: CPU-only x264-style transcode. */
WorkloadPtr makeHandBrake();

/** WinX HD Video Converter; @p gpu_encode selects CUDA/NVENC. */
WorkloadPtr makeWinX(bool gpu_encode = true);

/** CyberLink PowerDirector v16: interactive editing + preview. */
WorkloadPtr makePowerDirector();

/**
 * PowerDirector's video export ("render it with and without CUDA
 * support", Section IV-D). @p cuda enables the GPU render path.
 */
WorkloadPtr makePowerDirectorExport(bool cuda);

/** Premiere Pro scenarios. */
enum class PremiereScenario {
    Editing,        ///< The Table II interactive session.
    ExportSoftware, ///< Figure 9 export, CUDA off.
    ExportCuda,     ///< Figure 9 export, CUDA on.
};

/** Adobe Premiere Pro CC. */
WorkloadPtr makePremiere(
    PremiereScenario scenario = PremiereScenario::Editing);

} // namespace deskpar::apps

#endif // DESKPAR_APPS_VIDEO_HH

#include "apps/runner.hh"

#include <atomic>
#include <cstdlib>
#include <deque>
#include <exception>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>

#include "apps/registry.hh"
#include "sim/logging.hh"

namespace deskpar::apps {
namespace {

/** One (job, iteration) simulation instance. */
struct SimTask
{
    std::size_t job = 0;
    unsigned iter = 0;
};

/**
 * Lock-based work-stealing scheduler: every worker owns a deque it
 * pops from the front of; an empty worker steals from the back of a
 * victim's deque. Tasks are coarse (a whole 30 s sim), so one mutex
 * per deque is plenty — contention is a few dozen lock acquisitions
 * per simulated half-minute.
 */
class StealingQueues
{
  public:
    StealingQueues(std::size_t workers, std::size_t tasks)
        : queues_(workers)
    {
        // Round-robin initial distribution; stealing rebalances
        // whatever the static split gets wrong.
        for (std::size_t t = 0; t < tasks; ++t)
            queues_[t % workers].tasks.push_back(t);
    }

    /** Pop from our own deque, else steal; false when all are dry. */
    bool
    next(std::size_t self, std::size_t &task)
    {
        auto &own = queues_[self];
        {
            std::lock_guard<std::mutex> lock(own.mutex);
            if (!own.tasks.empty()) {
                task = own.tasks.front();
                own.tasks.pop_front();
                return true;
            }
        }
        for (std::size_t i = 1; i < queues_.size(); ++i) {
            auto &victim = queues_[(self + i) % queues_.size()];
            std::lock_guard<std::mutex> lock(victim.mutex);
            if (!victim.tasks.empty()) {
                task = victim.tasks.back();
                victim.tasks.pop_back();
                return true;
            }
        }
        return false;
    }

  private:
    struct PerWorker
    {
        std::mutex mutex;
        std::deque<std::size_t> tasks;
    };
    std::deque<PerWorker> queues_;
};

/** Run one task, writing its slot in the per-job output matrix. */
void
runTask(const std::vector<SuiteJob> &jobs, const SimTask &task,
        std::vector<std::vector<std::optional<IterationOutput>>>
            &outputs,
        std::vector<std::string> &names)
{
    const SuiteJob &job = jobs[task.job];
    WorkloadPtr model = job.factory();
    if (!model)
        fatal("SuiteRunner: job '" + job.label +
              "' factory returned null");
    if (task.iter == 0)
        names[task.job] = model->spec().name;
    outputs[task.job][task.iter] =
        runIteration(*model, job.options, task.iter);
}

} // namespace

SuiteJob
suiteJob(const std::string &id, const RunOptions &options)
{
    SuiteJob job;
    job.label = id;
    job.factory = [id] { return makeWorkload(id); };
    job.options = options;
    return job;
}

SuiteRunner::SuiteRunner(unsigned threads)
    : threads_(threads ? threads : defaultThreads())
{}

unsigned
SuiteRunner::defaultThreads()
{
    if (const char *env = std::getenv("DESKPAR_JOBS")) {
        char *end = nullptr;
        unsigned long n = std::strtoul(env, &end, 10);
        if (end && *end == '\0' && n > 0 && n < 1024)
            return static_cast<unsigned>(n);
        warn("ignoring invalid DESKPAR_JOBS value '" +
             std::string(env) + "'");
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

std::vector<AppRunResult>
SuiteRunner::run(const std::vector<SuiteJob> &jobs) const
{
    std::vector<SimTask> tasks;
    for (std::size_t j = 0; j < jobs.size(); ++j) {
        if (!jobs[j].factory)
            fatal("SuiteRunner: job '" + jobs[j].label +
                  "' has no factory");
        if (jobs[j].options.iterations == 0)
            fatal("runWorkload: zero iterations");
        for (unsigned i = 0; i < jobs[j].options.iterations; ++i)
            tasks.push_back({j, i});
    }

    std::vector<std::vector<std::optional<IterationOutput>>> outputs(
        jobs.size());
    for (std::size_t j = 0; j < jobs.size(); ++j)
        outputs[j].resize(jobs[j].options.iterations);
    std::vector<std::string> names(jobs.size());

    std::size_t workers =
        std::min<std::size_t>(threads_, tasks.size());
    if (workers <= 1) {
        // Inline serial path (DESKPAR_JOBS=1 and tiny suites): same
        // task order as the legacy per-bench loops, no threads.
        for (const SimTask &task : tasks)
            runTask(jobs, task, outputs, names);
    } else {
        StealingQueues queues(workers, tasks.size());
        std::atomic<bool> abort{false};
        std::exception_ptr firstError;
        std::mutex errorMutex;

        auto worker = [&](std::size_t self) {
            std::size_t index;
            while (!abort.load(std::memory_order_relaxed) &&
                   queues.next(self, index)) {
                try {
                    runTask(jobs, tasks[index], outputs, names);
                } catch (...) {
                    std::lock_guard<std::mutex> lock(errorMutex);
                    if (!firstError)
                        firstError = std::current_exception();
                    abort.store(true, std::memory_order_relaxed);
                }
            }
        };

        std::vector<std::thread> pool;
        pool.reserve(workers);
        for (std::size_t w = 0; w < workers; ++w)
            pool.emplace_back(worker, w);
        for (auto &thread : pool)
            thread.join();
        if (firstError)
            std::rethrow_exception(firstError);
    }

    // Deterministic assembly: fold iterations in ascending order per
    // job, jobs in submission order — bitwise identical to the serial
    // runWorkload() loop.
    std::vector<AppRunResult> results(jobs.size());
    for (std::size_t j = 0; j < jobs.size(); ++j) {
        results[j].agg.app = names[j];
        unsigned iterations = jobs[j].options.iterations;
        for (unsigned i = 0; i < iterations; ++i) {
            foldIteration(results[j], std::move(*outputs[j][i]),
                          i + 1 == iterations);
        }
    }
    return results;
}

std::vector<AppRunResult>
runSuite(const std::vector<SuiteJob> &jobs)
{
    return SuiteRunner().run(jobs);
}

} // namespace deskpar::apps

#include "apps/runner.hh"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <deque>
#include <exception>
#include <fstream>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>

#include "analysis/analyzer.hh"
#include "analysis/trace_index.hh"
#include "apps/registry.hh"
#include "sim/logging.hh"
#include "trace/csv.hh"
#include "trace/etl.hh"
#include "trace/filter.hh"

namespace deskpar::apps {
namespace {

/** One (job, iteration) simulation instance. */
struct SimTask
{
    std::size_t job = 0;
    unsigned iter = 0;
};

/**
 * Lock-based work-stealing scheduler: every worker owns a deque it
 * pops from the front of; an empty worker steals from the back of a
 * victim's deque. Tasks are coarse (a whole 30 s sim), so one mutex
 * per deque is plenty — contention is a few dozen lock acquisitions
 * per simulated half-minute.
 */
class StealingQueues
{
  public:
    StealingQueues(std::size_t workers, std::size_t tasks)
        : queues_(workers)
    {
        // Round-robin initial distribution; stealing rebalances
        // whatever the static split gets wrong.
        for (std::size_t t = 0; t < tasks; ++t)
            queues_[t % workers].tasks.push_back(t);
    }

    /** Pop from our own deque, else steal; false when all are dry. */
    bool
    next(std::size_t self, std::size_t &task)
    {
        auto &own = queues_[self];
        {
            std::lock_guard<std::mutex> lock(own.mutex);
            if (!own.tasks.empty()) {
                task = own.tasks.front();
                own.tasks.pop_front();
                return true;
            }
        }
        for (std::size_t i = 1; i < queues_.size(); ++i) {
            auto &victim = queues_[(self + i) % queues_.size()];
            std::lock_guard<std::mutex> lock(victim.mutex);
            if (!victim.tasks.empty()) {
                task = victim.tasks.back();
                victim.tasks.pop_back();
                return true;
            }
        }
        return false;
    }

  private:
    struct PerWorker
    {
        std::mutex mutex;
        std::deque<std::size_t> tasks;
    };
    std::deque<PerWorker> queues_;
};

/** Run one task, writing its slot in the per-job output matrix. */
void
runTask(const std::vector<SuiteJob> &jobs, const SimTask &task,
        std::vector<std::vector<std::optional<IterationOutput>>>
            &outputs,
        std::vector<std::string> &names)
{
    const SuiteJob &job = jobs[task.job];
    if (job.direct) {
        if (task.iter == 0)
            names[task.job] = job.label;
        outputs[task.job][task.iter] =
            job.direct(job.options, task.iter);
        return;
    }
    WorkloadPtr model = job.factory();
    if (!model)
        fatal("SuiteRunner: job '" + job.label +
              "' factory returned null");
    if (task.iter == 0)
        names[task.job] = model->spec().name;
    outputs[task.job][task.iter] =
        runIteration(*model, job.options, task.iter);
}

/** Shared submission-time validation for run()/runRecoverable(). */
std::vector<SimTask>
buildTasks(const std::vector<SuiteJob> &jobs)
{
    std::vector<SimTask> tasks;
    for (std::size_t j = 0; j < jobs.size(); ++j) {
        if (!jobs[j].factory && !jobs[j].direct)
            fatal("SuiteRunner: job '" + jobs[j].label +
                  "' has no factory");
        if (jobs[j].factory && jobs[j].direct)
            fatal("SuiteRunner: job '" + jobs[j].label +
                  "' sets both factory and direct");
        if (jobs[j].options.iterations == 0)
            fatal("runWorkload: zero iterations");
        for (unsigned i = 0; i < jobs[j].options.iterations; ++i)
            tasks.push_back({j, i});
    }
    return tasks;
}

} // namespace

SuiteJob
suiteJob(const std::string &id, const RunOptions &options)
{
    SuiteJob job;
    job.label = id;
    job.factory = [id] { return makeWorkload(id); };
    job.options = options;
    return job;
}

SuiteJob
replayJob(const std::string &path, const RunOptions &options,
          const std::string &appPrefix, trace::ParseMode mode)
{
    // Every iteration of a replay job re-analyzes the same file, so
    // ingest and index it once and hand later iterations copies. The
    // state is shared by the lambda's copies across worker threads;
    // the mutex also orders the one real ingest against the reads.
    struct ReplayShared
    {
        std::mutex mutex;
        bool ready = false;
        trace::TraceBundle bundle;
        trace::PidSet pids;
        analysis::AppMetrics metrics;
    };
    auto shared = std::make_shared<ReplayShared>();

    SuiteJob job;
    job.label = path;
    job.options = options;
    job.direct = [path, appPrefix, mode,
                  shared](const RunOptions &, unsigned) {
        std::lock_guard<std::mutex> lock(shared->mutex);
        if (!shared->ready) {
            trace::ParseOptions popts;
            popts.mode = mode;
            popts.source = path;
            trace::IngestReport report;
            trace::TraceBundle bundle;
            if (path.size() > 4 &&
                path.compare(path.size() - 4, 4, ".csv") == 0) {
                std::ifstream in(path);
                if (!in)
                    fatal("cannot open trace '" + path + "'");
                report = trace::readCpuUsageCsv(in, bundle, popts);
            } else {
                bundle = trace::readEtl(path, popts, report);
            }
            if (!report.ok()) {
                // Strict: the file is rejected outright; the
                // structured error fails this job (recoverable at
                // the batch level). Lenient: analyze the salvaged
                // remainder, but tell the user the result is
                // degraded.
                if (mode == trace::ParseMode::Strict) {
                    throw trace::TraceParseError(
                        report.errors.front());
                }
                warn("replay '" + path +
                     "' degraded: " + report.summary());
            }
            trace::PidSet pids =
                appPrefix.empty()
                    ? trace::allApplicationPids(bundle)
                    : trace::pidsWithPrefix(bundle, appPrefix);
            if (pids.empty()) {
                trace::ParseError err;
                err.source = path;
                err.section = "replay";
                err.reason = appPrefix.empty()
                                 ? "trace contains no application "
                                   "processes"
                                 : "no process name starts with '" +
                                       appPrefix + "'";
                throw trace::TraceParseError(std::move(err));
            }
            analysis::TraceIndex index(bundle);
            shared->metrics = analysis::analyzeApp(index, pids);
            shared->bundle = std::move(bundle);
            shared->pids = std::move(pids);
            // Only a fully successful ingest publishes; a throwing
            // iteration leaves ready unset so retries (or sibling
            // cancellation) see the same failure.
            shared->ready = true;
        }
        IterationOutput out;
        out.result.metrics = shared->metrics;
        out.bundle = shared->bundle;
        out.pids = shared->pids;
        return out;
    };
    return job;
}

bool
SuiteOutcome::failed(std::size_t job) const
{
    for (const JobFailure &f : failures) {
        if (f.job == job)
            return true;
    }
    return false;
}

SuiteRunner::SuiteRunner(unsigned threads)
    : threads_(threads ? threads : defaultThreads())
{}

unsigned
SuiteRunner::defaultThreads()
{
    if (const char *env = std::getenv("DESKPAR_JOBS")) {
        char *end = nullptr;
        unsigned long n = std::strtoul(env, &end, 10);
        if (end && *end == '\0' && n > 0 && n < 1024)
            return static_cast<unsigned>(n);
        warn("ignoring invalid DESKPAR_JOBS value '" +
             std::string(env) + "'");
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

std::vector<AppRunResult>
SuiteRunner::run(const std::vector<SuiteJob> &jobs) const
{
    std::vector<SimTask> tasks = buildTasks(jobs);

    std::vector<std::vector<std::optional<IterationOutput>>> outputs(
        jobs.size());
    for (std::size_t j = 0; j < jobs.size(); ++j)
        outputs[j].resize(jobs[j].options.iterations);
    std::vector<std::string> names(jobs.size());

    std::size_t workers =
        std::min<std::size_t>(threads_, tasks.size());
    if (workers <= 1) {
        // Inline serial path (DESKPAR_JOBS=1 and tiny suites): same
        // task order as the legacy per-bench loops, no threads.
        for (const SimTask &task : tasks)
            runTask(jobs, task, outputs, names);
    } else {
        StealingQueues queues(workers, tasks.size());
        std::atomic<bool> abort{false};
        std::exception_ptr firstError;
        std::mutex errorMutex;

        auto worker = [&](std::size_t self) {
            std::size_t index;
            while (!abort.load(std::memory_order_relaxed) &&
                   queues.next(self, index)) {
                try {
                    runTask(jobs, tasks[index], outputs, names);
                } catch (...) {
                    std::lock_guard<std::mutex> lock(errorMutex);
                    if (!firstError)
                        firstError = std::current_exception();
                    abort.store(true, std::memory_order_relaxed);
                }
            }
        };

        std::vector<std::thread> pool;
        pool.reserve(workers);
        for (std::size_t w = 0; w < workers; ++w)
            pool.emplace_back(worker, w);
        for (auto &thread : pool)
            thread.join();
        if (firstError)
            std::rethrow_exception(firstError);
    }

    // Deterministic assembly: fold iterations in ascending order per
    // job, jobs in submission order — bitwise identical to the serial
    // runWorkload() loop.
    std::vector<AppRunResult> results(jobs.size());
    for (std::size_t j = 0; j < jobs.size(); ++j) {
        results[j].agg.app = names[j];
        unsigned iterations = jobs[j].options.iterations;
        for (unsigned i = 0; i < iterations; ++i) {
            foldIteration(results[j], std::move(*outputs[j][i]),
                          i + 1 == iterations);
        }
    }
    return results;
}

SuiteOutcome
SuiteRunner::runRecoverable(const std::vector<SuiteJob> &jobs) const
{
    std::vector<SimTask> tasks = buildTasks(jobs);

    std::vector<std::vector<std::optional<IterationOutput>>> outputs(
        jobs.size());
    for (std::size_t j = 0; j < jobs.size(); ++j)
        outputs[j].resize(jobs[j].options.iterations);
    std::vector<std::string> names(jobs.size());

    // One flag per job: set on first failure so siblings of a failed
    // job are cancelled instead of run (a corrupt trace fails the
    // same way every iteration).
    std::vector<std::atomic<bool>> failed(jobs.size());
    std::vector<JobFailure> failures;
    std::mutex failMutex;

    auto recordFailure = [&](std::size_t j, const FatalError &e) {
        std::lock_guard<std::mutex> lock(failMutex);
        if (failed[j].exchange(true, std::memory_order_relaxed))
            return;
        JobFailure f;
        f.job = j;
        f.label = jobs[j].label;
        if (auto *parse =
                dynamic_cast<const trace::TraceParseError *>(&e)) {
            f.error = parse->error();
            f.structured = true;
        } else {
            f.error.reason = e.what();
        }
        if (f.error.source.empty())
            f.error.source = jobs[j].label;
        failures.push_back(std::move(f));
    };

    // PanicError and foreign exceptions abort the whole batch (they
    // are bugs, not bad input); only FatalError degrades per-job.
    auto runOne = [&](const SimTask &task) {
        if (failed[task.job].load(std::memory_order_relaxed))
            return;
        try {
            runTask(jobs, task, outputs, names);
        } catch (const PanicError &) {
            throw;
        } catch (const FatalError &e) {
            recordFailure(task.job, e);
        }
    };

    std::size_t workers =
        std::min<std::size_t>(threads_, tasks.size());
    if (workers <= 1) {
        for (const SimTask &task : tasks)
            runOne(task);
    } else {
        StealingQueues queues(workers, tasks.size());
        std::atomic<bool> abort{false};
        std::exception_ptr firstError;
        std::mutex errorMutex;

        auto worker = [&](std::size_t self) {
            std::size_t index;
            while (!abort.load(std::memory_order_relaxed) &&
                   queues.next(self, index)) {
                try {
                    runOne(tasks[index]);
                } catch (...) {
                    std::lock_guard<std::mutex> lock(errorMutex);
                    if (!firstError)
                        firstError = std::current_exception();
                    abort.store(true, std::memory_order_relaxed);
                }
            }
        };

        std::vector<std::thread> pool;
        pool.reserve(workers);
        for (std::size_t w = 0; w < workers; ++w)
            pool.emplace_back(worker, w);
        for (auto &thread : pool)
            thread.join();
        if (firstError)
            std::rethrow_exception(firstError);
    }

    // Scheduling may interleave failures arbitrarily; report them in
    // submission order so batch output is deterministic.
    std::sort(failures.begin(), failures.end(),
              [](const JobFailure &a, const JobFailure &b) {
                  return a.job < b.job;
              });

    SuiteOutcome outcome;
    outcome.failures = std::move(failures);
    outcome.ingest.source = "<suite>";
    for (const JobFailure &f : outcome.failures)
        outcome.ingest.note(f.error, 64);
    outcome.ingest.recordsParsed =
        jobs.size() - outcome.failures.size();
    outcome.ingest.recordsSkipped = outcome.failures.size();

    outcome.results.resize(jobs.size());
    for (std::size_t j = 0; j < jobs.size(); ++j) {
        if (failed[j].load(std::memory_order_relaxed)) {
            outcome.results[j].agg.app = jobs[j].label;
            continue;
        }
        outcome.results[j].agg.app = names[j];
        unsigned iterations = jobs[j].options.iterations;
        for (unsigned i = 0; i < iterations; ++i) {
            foldIteration(outcome.results[j],
                          std::move(*outputs[j][i]),
                          i + 1 == iterations);
        }
    }
    return outcome;
}

std::vector<AppRunResult>
runSuite(const std::vector<SuiteJob> &jobs)
{
    return SuiteRunner().run(jobs);
}

} // namespace deskpar::apps

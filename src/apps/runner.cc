#include "apps/runner.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>

#include "analysis/session.hh"
#include "apps/registry.hh"
#include "obs/obs.hh"
#include "sim/logging.hh"
#include "sim/parallel.hh"
#include "trace/csv.hh"
#include "trace/diagnostic.hh"
#include "trace/etl.hh"
#include "trace/etlc.hh"
#include "trace/filter.hh"
#include "trace/io.hh"

namespace deskpar::apps {
namespace {

/** One (job, iteration) simulation instance. */
struct SimTask
{
    std::size_t job = 0;
    unsigned iter = 0;
};

/** Run one task, writing its slot in the per-job output matrix. */
void
runTask(const std::vector<SuiteJob> &jobs, const SimTask &task,
        std::vector<std::vector<std::optional<IterationOutput>>>
            &outputs,
        std::vector<std::string> &names)
{
    const SuiteJob &job = jobs[task.job];
    if (job.direct) {
        obs::Span span("suite.replay", obs::SpanKind::Job, task.job);
        if (task.iter == 0)
            names[task.job] = job.label;
        outputs[task.job][task.iter] =
            job.direct(job.options, task.iter);
        return;
    }
    obs::Span span("suite.sim", obs::SpanKind::Job, task.job);
    WorkloadPtr model = job.factory();
    if (!model)
        fatal("SuiteRunner: job '" + job.label +
              "' factory returned null");
    if (task.iter == 0)
        names[task.job] = model->spec().name;
    outputs[task.job][task.iter] =
        runIteration(*model, job.options, task.iter);
}

/** Shared submission-time validation for run()/runRecoverable(). */
std::vector<SimTask>
buildTasks(const std::vector<SuiteJob> &jobs)
{
    std::vector<SimTask> tasks;
    for (std::size_t j = 0; j < jobs.size(); ++j) {
        if (!jobs[j].factory && !jobs[j].direct)
            fatal("SuiteRunner: job '" + jobs[j].label +
                  "' has no factory");
        if (jobs[j].factory && jobs[j].direct)
            fatal("SuiteRunner: job '" + jobs[j].label +
                  "' sets both factory and direct");
        if (jobs[j].options.iterations == 0)
            fatal("runWorkload: zero iterations");
        for (unsigned i = 0; i < jobs[j].options.iterations; ++i)
            tasks.push_back({j, i});
    }
    return tasks;
}

} // namespace

SuiteJob
suiteJob(const std::string &id, const RunOptions &options)
{
    SuiteJob job;
    job.label = id;
    job.factory = [id] { return makeWorkload(id); };
    job.options = options;
    return job;
}

SuiteJob
replayJob(const std::string &path, const RunOptions &options,
          const std::string &appPrefix, trace::ParseMode mode)
{
    // Every iteration of a replay job re-analyzes the same file, so
    // ingest and index it once and hand later iterations copies. The
    // state is shared by the lambda's copies across worker threads;
    // the mutex also orders the one real ingest against the reads.
    struct ReplayShared
    {
        std::mutex mutex;
        bool ready = false;
        trace::TraceBundle bundle;
        trace::PidSet pids;
        analysis::AppMetrics metrics;
        trace::IngestStats stats;
    };
    auto shared = std::make_shared<ReplayShared>();

    SuiteJob job;
    job.label = path;
    job.options = options;
    job.direct = [path, appPrefix, mode,
                  shared](const RunOptions &, unsigned) {
        std::lock_guard<std::mutex> lock(shared->mutex);
        if (!shared->ready) {
            trace::ParseOptions popts;
            popts.mode = mode;
            popts.source = path;
            trace::IngestReport report;
            trace::TraceBundle bundle;
            auto begin = std::chrono::steady_clock::now();
            trace::io::MappedFile file =
                trace::io::MappedFile::openOrThrow(path, "replay");
            if (path.size() > 4 &&
                path.compare(path.size() - 4, 4, ".csv") == 0) {
                report = trace::decodeCpuUsageCsv(file.span(), bundle,
                                                  popts);
            } else if (trace::isEtlcData(file.span())) {
                bundle =
                    trace::decodeEtlc(file.span(), popts, report);
            } else {
                bundle = trace::decodeEtl(file.span(), popts, report);
            }
            shared->stats.bytes = file.size();
            shared->stats.seconds =
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - begin)
                    .count();
            file.close();
            if (!report.ok()) {
                // Strict: the file is rejected outright; the
                // structured error fails this job (recoverable at
                // the batch level). Lenient: analyze the salvaged
                // remainder, but tell the user the result is
                // degraded.
                if (mode == trace::ParseMode::Strict) {
                    throw trace::TraceParseError(
                        report.errors.front());
                }
                trace::Diagnostic degraded;
                degraded.severity = trace::Severity::Warning;
                degraded.component = "replay";
                degraded.detail.source = path;
                degraded.detail.reason =
                    "degraded: " + report.summary();
                trace::emitDiagnostic(degraded);
            }
            trace::PidSet pids =
                appPrefix.empty()
                    ? trace::allApplicationPids(bundle)
                    : trace::pidsWithPrefix(bundle, appPrefix);
            if (pids.empty()) {
                trace::ParseError err;
                err.source = path;
                err.section = "replay";
                err.reason = appPrefix.empty()
                                 ? "trace contains no application "
                                   "processes"
                                 : "no process name starts with '" +
                                       appPrefix + "'";
                throw trace::TraceParseError(std::move(err));
            }
            analysis::Session session(bundle);
            shared->metrics = session.app(pids);
            shared->bundle = std::move(bundle);
            shared->pids = std::move(pids);
            // Only a fully successful ingest publishes; a throwing
            // iteration leaves ready unset so retries (or sibling
            // cancellation) see the same failure.
            shared->ready = true;
        }
        IterationOutput out;
        out.result.metrics = shared->metrics;
        out.bundle = shared->bundle;
        out.pids = shared->pids;
        out.ingest = shared->stats;
        return out;
    };
    return job;
}

trace::Diagnostic
JobFailure::diagnostic() const
{
    trace::Diagnostic d;
    d.severity = trace::Severity::Error;
    d.component = "runner";
    d.detail = error;
    if (d.detail.source.empty())
        d.detail.source = label;
    return d;
}

bool
SuiteOutcome::failed(std::size_t job) const
{
    for (const JobFailure &f : failures) {
        if (f.job == job)
            return true;
    }
    return false;
}

SuiteRunner::SuiteRunner(unsigned threads)
    : threads_(threads ? threads : defaultThreads())
{}

unsigned
SuiteRunner::defaultThreads()
{
    return sim::resolveJobs();
}

std::vector<AppRunResult>
SuiteRunner::run(const std::vector<SuiteJob> &jobs) const
{
    obs::Span batchSpan("suite.batch", obs::SpanKind::Job,
                        jobs.size());
    std::vector<SimTask> tasks = buildTasks(jobs);

    std::vector<std::vector<std::optional<IterationOutput>>> outputs(
        jobs.size());
    for (std::size_t j = 0; j < jobs.size(); ++j)
        outputs[j].resize(jobs[j].options.iterations);
    std::vector<std::string> names(jobs.size());

    // parallelFor runs the whole suite inline (serial task order)
    // for one worker or one task, else on the work-stealing pool.
    sim::parallelFor(threads_, tasks.size(), [&](std::size_t index) {
        runTask(jobs, tasks[index], outputs, names);
    });

    // Deterministic assembly: fold iterations in ascending order per
    // job, jobs in submission order — bitwise identical to the serial
    // runWorkload() loop.
    std::vector<AppRunResult> results(jobs.size());
    for (std::size_t j = 0; j < jobs.size(); ++j) {
        results[j].agg.app = names[j];
        unsigned iterations = jobs[j].options.iterations;
        for (unsigned i = 0; i < iterations; ++i) {
            foldIteration(results[j], std::move(*outputs[j][i]),
                          i + 1 == iterations);
        }
    }
    return results;
}

SuiteOutcome
SuiteRunner::runRecoverable(const std::vector<SuiteJob> &jobs) const
{
    obs::Span batchSpan("suite.batch", obs::SpanKind::Job,
                        jobs.size());
    std::vector<SimTask> tasks = buildTasks(jobs);

    std::vector<std::vector<std::optional<IterationOutput>>> outputs(
        jobs.size());
    for (std::size_t j = 0; j < jobs.size(); ++j)
        outputs[j].resize(jobs[j].options.iterations);
    std::vector<std::string> names(jobs.size());

    // One flag per job: set on first failure so siblings of a failed
    // job are cancelled instead of run (a corrupt trace fails the
    // same way every iteration).
    std::vector<std::atomic<bool>> failed(jobs.size());
    std::vector<JobFailure> failures;
    std::mutex failMutex;

    auto recordFailure = [&](std::size_t j, const FatalError &e) {
        std::lock_guard<std::mutex> lock(failMutex);
        if (failed[j].exchange(true, std::memory_order_relaxed))
            return;
        JobFailure f;
        f.job = j;
        f.label = jobs[j].label;
        if (auto *parse =
                dynamic_cast<const trace::TraceParseError *>(&e)) {
            f.error = parse->error();
            f.structured = true;
        } else {
            f.error.reason = e.what();
        }
        if (f.error.source.empty())
            f.error.source = jobs[j].label;
        failures.push_back(std::move(f));
    };

    // PanicError and foreign exceptions abort the whole batch (they
    // are bugs, not bad input); only FatalError degrades per-job.
    auto runOne = [&](const SimTask &task) {
        if (failed[task.job].load(std::memory_order_relaxed))
            return;
        try {
            runTask(jobs, task, outputs, names);
        } catch (const PanicError &) {
            throw;
        } catch (const FatalError &e) {
            recordFailure(task.job, e);
        }
    };

    sim::parallelFor(threads_, tasks.size(), [&](std::size_t index) {
        runOne(tasks[index]);
    });

    // Scheduling may interleave failures arbitrarily; report them in
    // submission order so batch output is deterministic.
    std::sort(failures.begin(), failures.end(),
              [](const JobFailure &a, const JobFailure &b) {
                  return a.job < b.job;
              });

    SuiteOutcome outcome;
    outcome.failures = std::move(failures);
    outcome.ingest.source = "<suite>";
    for (const JobFailure &f : outcome.failures)
        outcome.ingest.note(f.error, 64);
    outcome.ingest.recordsParsed =
        jobs.size() - outcome.failures.size();
    outcome.ingest.recordsSkipped = outcome.failures.size();

    outcome.results.resize(jobs.size());
    for (std::size_t j = 0; j < jobs.size(); ++j) {
        if (failed[j].load(std::memory_order_relaxed)) {
            outcome.results[j].agg.app = jobs[j].label;
            continue;
        }
        outcome.results[j].agg.app = names[j];
        unsigned iterations = jobs[j].options.iterations;
        for (unsigned i = 0; i < iterations; ++i) {
            foldIteration(outcome.results[j],
                          std::move(*outputs[j][i]),
                          i + 1 == iterations);
        }
    }
    return outcome;
}

std::vector<AppRunResult>
runSuite(const std::vector<SuiteJob> &jobs)
{
    return SuiteRunner().run(jobs);
}

} // namespace deskpar::apps

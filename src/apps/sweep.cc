#include "apps/sweep.hh"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <mutex>
#include <sstream>
#include <string_view>
#include <utility>

#include "apps/harness.hh"
#include "apps/registry.hh"
#include "sim/cpu.hh"
#include "sim/logging.hh"
#include "sim/machine.hh"
#include "sim/parallel.hh"
#include "sim/rng.hh"
#include "trace/etl.hh"
#include "trace/etlc.hh"

namespace deskpar::apps {
namespace {

namespace fs = std::filesystem;

/** Checkpoint container version (bump on layout change). */
constexpr std::uint64_t kCheckpointVersion = 1;

/** Magic: "DPSWP" + version byte + two reserved zeros. */
constexpr char kCheckpointMagic[8] = {'D', 'P', 'S', 'W',
                                      'P', 1,   0,   0};

/** Core-count axis of the sweep (the paper's 4/8/16/32 extension). */
constexpr unsigned kCoreCounts[] = {4, 8, 16, 32};

/** Scheduler-policy presets: a name and its timeslice. */
struct PolicyPreset
{
    const char *name;
    sim::SimDuration quantum;
};

const PolicyPreset kPolicies[] = {
    {"interactive", sim::msec(5)},
    {"balanced", sim::msec(10)},
    {"batch", sim::msec(30)},
    {"throughput", sim::msec(60)},
};

/**
 * The sweep's synthetic 2026-class package: 32 SMT cores so every
 * sampled core count fits with and without SMT. Clocks follow the
 * contemporary desktop ladder; the exact values only shift the
 * simulated operating points, not any sweep mechanics.
 */
sim::CpuSpec
sweepCpuSpec()
{
    sim::CpuSpec spec;
    spec.model = "Synthetic 2026 desktop (32C/64T)";
    spec.physicalCores = 32;
    spec.threadsPerCore = 2;
    spec.baseClockGhz = 3.2;
    spec.turboClockGhz = 5.5;
    spec.llcMiB = 64;
    spec.ramGiB = 64;
    spec.tdpWatts = 250.0;
    spec.idleWatts = 10.0;
    return spec;
}

/** Registry ids in a stable (sorted) order. */
const std::vector<std::string> &
sortedWorkloadIds()
{
    static const std::vector<std::string> ids = [] {
        std::vector<std::string> v = workloadIds();
        std::sort(v.begin(), v.end());
        return v;
    }();
    return ids;
}

std::uint32_t
shardCount(const SweepOptions &options)
{
    return (options.count + options.shardSize - 1) /
           options.shardSize;
}

sim::SimDuration
sweepDuration(const SweepOptions &options)
{
    return sim::sec(options.seconds);
}

void
validateOptions(const SweepOptions &options)
{
    if (options.count == 0)
        fatal("sweep: --count must be positive");
    if (options.shardSize == 0)
        fatal("sweep: shard size must be positive");
    if (options.outDir.empty())
        fatal("sweep: --out directory required");
    if (options.seconds <= 0.0)
        fatal("sweep: --seconds must be positive");
}

/** Write @p bytes to @p path atomically (tmp + rename). */
void
writeFileAtomic(const fs::path &path, const std::string &bytes)
{
    fs::path tmp = path;
    tmp += ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size()));
        if (!out)
            fatal("sweep: cannot write " + tmp.string());
    }
    std::error_code ec;
    fs::rename(tmp, path, ec);
    if (ec)
        fatal("sweep: cannot rename " + tmp.string() + ": " +
              ec.message());
}

/** Whole file as a string; false if it does not exist / unreadable. */
bool
readFile(const fs::path &path, std::string &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    out = buffer.str();
    return true;
}

/** Scenario index range [first, last) of @p shard. */
std::pair<std::uint32_t, std::uint32_t>
shardRange(const SweepOptions &options, std::uint32_t shard)
{
    std::uint32_t first = shard * options.shardSize;
    std::uint32_t last = first + options.shardSize;
    if (last > options.count)
        last = options.count;
    return {first, last};
}

/**
 * Content-based shard validation: the file must hold exactly one
 * line per scenario of the shard, each starting with the
 * regenerated config prefix of its row. Trusting content instead of
 * the checkpoint is what makes resume immune to checkpoint
 * corruption: a damaged checkpoint can only cost re-validation,
 * never completed work, and a damaged shard file can only cost that
 * shard.
 */
bool
shardFileValid(const SweepOptions &options, std::uint32_t shard)
{
    std::string bytes;
    if (!readFile(fs::path(options.outDir) / shardFileName(shard),
                  bytes))
        return false;
    if (bytes.empty() || bytes.back() != '\n')
        return false;

    auto [first, last] = shardRange(options, shard);
    std::string_view rest = bytes;
    for (std::uint32_t index = first; index < last; ++index) {
        std::size_t eol = rest.find('\n');
        if (eol == std::string_view::npos)
            return false;
        std::string_view line = rest.substr(0, eol);
        rest.remove_prefix(eol + 1);
        std::string prefix =
            scenarioRowPrefix(scenarioAt(options.seed, index));
        if (line.size() <= prefix.size() ||
            line.compare(0, prefix.size(), prefix) != 0 ||
            line.back() != '}')
            return false;
    }
    return rest.empty();
}

} // namespace

ScenarioConfig
scenarioAt(std::uint64_t seed, std::uint32_t index)
{
    // One splitmix-derived stream per scenario: fork() mixes
    // (seed, index) through SplitMix64, so neighboring indices get
    // decorrelated streams and the stream seed doubles as the
    // scenario's machine seed.
    sim::Rng stream = sim::Rng(seed).fork(std::uint64_t(index));

    ScenarioConfig config;
    config.index = index;
    config.seed = stream.baseSeed();
    const std::vector<std::string> &ids = sortedWorkloadIds();
    config.app = ids[stream.raw() % ids.size()];
    config.cores = kCoreCounts[stream.raw() % std::size(kCoreCounts)];
    config.smt = (stream.raw() & 1) != 0;
    const PolicyPreset &policy =
        kPolicies[stream.raw() % std::size(kPolicies)];
    config.policy = policy.name;
    config.quantum = policy.quantum;
    return config;
}

ScenarioMetrics
runScenario(const ScenarioConfig &config, double seconds)
{
    RunOptions options;
    options.config.cpu = sweepCpuSpec();
    options.config.activeCpus = config.cores;
    options.config.smtEnabled = config.smt;
    options.config.quantum = config.quantum;
    options.iterations = 1;
    options.seedBase = config.seed;
    options.duration = sim::sec(seconds);

    WorkloadPtr model = makeWorkload(config.app);
    if (!model)
        fatal("sweep: unknown workload '" + config.app + "'");
    IterationOutput out = runIteration(*model, options, 0);

    ScenarioMetrics metrics;
    metrics.tlp = out.result.metrics.tlp();
    metrics.gpuUtilPercent = out.result.metrics.gpuUtilPercent();
    metrics.avgFps = out.result.metrics.frames.avgFps;
    metrics.contextSwitches = out.result.sched.contextSwitches;
    metrics.traceEvents = out.bundle.totalEvents();
    return metrics;
}

std::string
scenarioRowPrefix(const ScenarioConfig &config)
{
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "{\"index\":%u,\"app\":\"%s\",\"cores\":%u,"
                  "\"smt\":%u,\"policy\":\"%s\",\"quantum_ns\":%llu,"
                  "\"seed\":%llu",
                  config.index, config.app.c_str(), config.cores,
                  config.smt ? 1u : 0u, config.policy.c_str(),
                  static_cast<unsigned long long>(config.quantum),
                  static_cast<unsigned long long>(config.seed));
    return buf;
}

std::string
scenarioRow(const ScenarioConfig &config,
            const ScenarioMetrics &metrics)
{
    // %.17g round-trips the exact doubles: rows must be byte-stable
    // across thread counts and resume boundaries.
    char buf[256];
    std::snprintf(
        buf, sizeof(buf),
        ",\"tlp\":%.17g,\"gpu_util\":%.17g,\"avg_fps\":%.17g,"
        "\"cswitches\":%llu,\"events\":%llu}",
        metrics.tlp, metrics.gpuUtilPercent, metrics.avgFps,
        static_cast<unsigned long long>(metrics.contextSwitches),
        static_cast<unsigned long long>(metrics.traceEvents));
    return scenarioRowPrefix(config) + buf;
}

std::string
shardFileName(std::uint32_t shard)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "shard-%04u.jsonl", shard);
    return buf;
}

const char *
checkpointFileName()
{
    return "sweep.ckpt";
}

std::string
encodeCheckpoint(const SweepOptions &options,
                 const std::vector<bool> &completed)
{
    std::string body;
    trace::putVarint(body, kCheckpointVersion);
    trace::putVarint(body, options.seed);
    trace::putVarint(body, options.count);
    trace::putVarint(body, options.shardSize);
    trace::putVarint(body, static_cast<std::uint64_t>(
                               sweepDuration(options)));
    trace::putVarint(body, completed.size());
    std::string bitmap((completed.size() + 7) / 8, '\0');
    for (std::size_t i = 0; i < completed.size(); ++i) {
        if (completed[i])
            bitmap[i / 8] |= static_cast<char>(1u << (i % 8));
    }
    body += bitmap;

    std::string out(kCheckpointMagic, sizeof(kCheckpointMagic));
    std::uint32_t crc = trace::crc32c(body);
    for (int shift = 0; shift < 32; shift += 8)
        out.push_back(static_cast<char>((crc >> shift) & 0xff));
    out += body;
    return out;
}

bool
decodeCheckpoint(const std::string &bytes,
                 const SweepOptions &options,
                 std::vector<bool> &completed)
{
    completed.clear();
    constexpr std::size_t kHeader = sizeof(kCheckpointMagic) + 4;
    if (bytes.size() < kHeader)
        return false;
    if (bytes.compare(0, sizeof(kCheckpointMagic), kCheckpointMagic,
                      sizeof(kCheckpointMagic)) != 0)
        return false;
    std::uint32_t stored = 0;
    for (int i = 0; i < 4; ++i) {
        stored |= static_cast<std::uint32_t>(
                      static_cast<unsigned char>(
                          bytes[sizeof(kCheckpointMagic) + i]))
                  << (8 * i);
    }
    std::string body = bytes.substr(kHeader);
    if (trace::crc32c(body) != stored)
        return false;

    std::size_t pos = 0;
    std::uint64_t version = 0, seed = 0, count = 0, shardSize = 0;
    std::uint64_t duration = 0, shards = 0;
    trace::ParseError err;
    if (!trace::tryGetVarint(body, pos, version, err) ||
        !trace::tryGetVarint(body, pos, seed, err) ||
        !trace::tryGetVarint(body, pos, count, err) ||
        !trace::tryGetVarint(body, pos, shardSize, err) ||
        !trace::tryGetVarint(body, pos, duration, err) ||
        !trace::tryGetVarint(body, pos, shards, err))
        return false;
    if (version != kCheckpointVersion)
        return false;
    // Identity: a checkpoint from different sweep parameters is
    // stale, exactly like a .dpidx whose trace changed underneath.
    if (seed != options.seed || count != options.count ||
        shardSize != options.shardSize ||
        duration !=
            static_cast<std::uint64_t>(sweepDuration(options)))
        return false;
    if (shards != shardCount(options))
        return false;
    if (body.size() - pos != (shards + 7) / 8)
        return false;

    completed.resize(shards, false);
    for (std::uint64_t i = 0; i < shards; ++i) {
        unsigned char byte = static_cast<unsigned char>(
            body[pos + i / 8]);
        completed[i] = (byte >> (i % 8)) & 1;
    }
    return true;
}

SweepReport
runSweep(const SweepOptions &options)
{
    validateOptions(options);
    fs::create_directories(options.outDir);
    fs::path dir(options.outDir);

    std::uint32_t shards = shardCount(options);
    std::vector<bool> completed(shards, false);

    SweepReport report;
    report.scenariosTotal = options.count;
    report.shardsTotal = shards;

    if (options.resume) {
        // The checkpoint is consulted for a fast confirmation but
        // every claimed shard is revalidated against regenerated
        // configs; a corrupt/stale checkpoint therefore degrades to
        // a full rescan, never to lost or trusted-but-wrong work.
        std::string bytes;
        std::vector<bool> claimed;
        if (readFile(dir / checkpointFileName(), bytes))
            decodeCheckpoint(bytes, options, claimed);
        for (std::uint32_t s = 0; s < shards; ++s) {
            if (shardFileValid(options, s)) {
                completed[s] = true;
                ++report.shardsReused;
            }
        }
    }

    std::mutex progressMutex;
    auto writeCheckpoint = [&] {
        writeFileAtomic(dir / checkpointFileName(),
                        encodeCheckpoint(options, completed));
    };
    writeCheckpoint();

    std::vector<std::uint32_t> missing;
    for (std::uint32_t s = 0; s < shards; ++s) {
        if (!completed[s])
            missing.push_back(s);
    }

    std::atomic<bool> stopped{false};
    std::atomic<std::uint32_t> doneThisRun{0};

    unsigned threads =
        options.threads ? options.threads : sim::resolveJobs();
    sim::parallelFor(threads, missing.size(), [&](std::size_t task) {
        if (stopped.load(std::memory_order_relaxed))
            return;
        std::uint32_t shard = missing[task];
        auto [first, last] = shardRange(options, shard);
        std::string content;
        for (std::uint32_t index = first; index < last; ++index) {
            ScenarioConfig config =
                scenarioAt(options.seed, index);
            ScenarioMetrics metrics =
                runScenario(config, options.seconds);
            content += scenarioRow(config, metrics);
            content += '\n';
        }
        writeFileAtomic(dir / shardFileName(shard), content);
        std::uint32_t done;
        {
            std::lock_guard<std::mutex> lock(progressMutex);
            completed[shard] = true;
            writeCheckpoint();
            report.scenariosRun += last - first;
            done = doneThisRun.fetch_add(
                       1, std::memory_order_relaxed) +
                   1;
        }
        if (options.stopAfterShards &&
            done >= options.stopAfterShards)
            stopped.store(true, std::memory_order_relaxed);
    });

    if (stopped.load(std::memory_order_relaxed)) {
        report.complete = false;
        return report;
    }

    // Merge in shard order: byte-identical regardless of which
    // worker produced which shard, or which run produced it.
    std::string merged;
    for (std::uint32_t s = 0; s < shards; ++s) {
        std::string bytes;
        if (!readFile(dir / shardFileName(s), bytes))
            fatal("sweep: missing shard file " + shardFileName(s));
        merged += bytes;
    }
    fs::path mergedPath = dir / "sweep.jsonl";
    writeFileAtomic(mergedPath, merged);
    report.mergedPath = mergedPath.string();
    report.complete = true;
    return report;
}

} // namespace deskpar::apps

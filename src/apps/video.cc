#include "apps/video.hh"

#include <algorithm>
#include <cmath>

#include "apps/standard.hh"

namespace deskpar::apps {

namespace {

/**
 * The transcode master: serial mux work, fork a frame to the crew,
 * join, hand the frame to the GPU encoder if configured, present.
 */
class TranscodeMaster : public ThreadBehavior
{
  public:
    TranscodeMaster(const TranscoderParams &params, CrewSync crew)
        : params_(params), crew_(crew)
    {}

    Action
    next(ThreadContext &ctx) override
    {
        while (true) {
            switch (step_) {
              case Step::Serial:
                step_ = Step::Dispatch;
                return Action::compute(cpuMs(ctx.rng->normalNonNeg(
                    params_.serialFrameMs,
                    params_.serialFrameMs * 0.15)));

              case Step::Dispatch:
                joinsLeft_ = crew_.workers;
                step_ = Step::Join;
                return Action::signalSync(crew_.work, crew_.workers);

              case Step::Join:
                if (joinsLeft_ > 0) {
                    --joinsLeft_;
                    return Action::waitSync(crew_.done);
                }
                step_ = Step::Gpu;
                continue;

              case Step::Gpu:
                step_ = Step::GpuWait;
                if (params_.gpuPacketMs > 0.0) {
                    return Action::gpuAsync(
                        params_.gpuEngine,
                        gpuMs(params_.gpuEngine,
                              params_.gpuPacketMs));
                }
                continue;

              case Step::GpuWait:
                step_ = Step::Preview;
                if (params_.gpuPacketMs > 0.0 &&
                    (params_.gpuSyncPerFrame ||
                     ctx.gpuOutstanding > params_.gpuBacklogCap)) {
                    return Action::gpuSync();
                }
                continue;

              case Step::Preview:
                step_ = Step::Present;
                if (params_.previewGpuMs > 0.0) {
                    return Action::gpuAsync(
                        GpuEngineId::Graphics3D,
                        gpuMs(GpuEngineId::Graphics3D,
                              params_.previewGpuMs));
                }
                continue;

              case Step::Present:
                step_ = Step::Serial;
                return Action::present();
            }
        }
    }

  private:
    enum class Step {
        Serial,
        Dispatch,
        Join,
        Gpu,
        GpuWait,
        Preview,
        Present,
    };

    TranscoderParams params_;
    CrewSync crew_;
    Step step_ = Step::Serial;
    unsigned joinsLeft_ = 0;
};

} // namespace

AppInstance
TranscoderModel::instantiate(sim::Machine &machine)
{
    auto &process = machine.createProcess(params_.spec.id,
                                          params_.smtFriendliness);
    process.setLlcFootprintMiB(params_.llcFootprintMiB);

    auto workers = static_cast<unsigned>(std::lround(
        params_.workersPerLogicalCpu *
        static_cast<double>(machine.activeLogicalCpus())));
    workers = std::clamp(workers, 1u, params_.maxWorkers);

    CrewSync crew = makeCrew(machine, workers);
    double chunk_ms = params_.parallelFrameMs /
                      static_cast<double>(workers);
    spawnCrewWorkers(process, crew,
                     Dist::normal(chunk_ms, chunk_ms * 0.08),
                     "slice");
    process.createThread(
        std::make_shared<TranscodeMaster>(params_, crew), "master");

    AppInstance instance;
    instance.processPrefix = params_.spec.id;
    return instance;
}

WorkloadPtr
makeHandBrake()
{
    TranscoderParams p;
    p.spec = {"handbrake", "HandBrake 1.1.0", "Video Transcoding"};
    p.smtFriendliness = 0.15;
    p.parallelFrameMs = 220.0;
    p.serialFrameMs = 9.0;
    p.workersPerLogicalCpu = 1.0;
    p.previewGpuMs = 0.17;
    return std::make_unique<TranscoderModel>(std::move(p));
}

WorkloadPtr
makeWinX(bool gpu_encode)
{
    TranscoderParams p;
    p.spec = {"winx", "WinX HD Video Converter 5.12.1",
              "Video Transcoding"};
    p.smtFriendliness = 0.15;
    if (gpu_encode) {
        // NVENC handles encoding; the CPU pool decodes and filters.
        p.parallelFrameMs = 160.0;
        p.serialFrameMs = 3.0;
        p.workersPerLogicalCpu = 0.92;
        p.gpuPacketMs = 3.9;
        p.gpuEngine = GpuEngineId::VideoEncode;
        p.gpuSyncPerFrame = false;
        p.gpuBacklogCap = 4;
    } else {
        p.parallelFrameMs = 236.0;
        p.serialFrameMs = 1.5;
        p.workersPerLogicalCpu = 1.0;
    }
    return std::make_unique<TranscoderModel>(std::move(p));
}

WorkloadPtr
makePowerDirector()
{
    StandardAppParams p;
    p.spec = {"powerdirector", "CyberLink PowerDirector v16",
              "Video Authoring"};
    // Timeline editing with a 6-wide preview-render pool and a GPU
    // preview stream (transitions, color correction).
    p.smtFriendliness = 0.25;
    p.inputRateHz = 2.0;
    p.uiBurstMs = Dist::normal(6.0, 1.5);
    p.uiGpuMs = Dist::fixed(0.4);
    p.renderWorkers = 6;
    p.workerChunkMs = Dist::normal(25.5, 4.0);
    p.phaseEveryNthInput = 2;
    p.phaseRounds = 3;
    p.phaseSetupMs = Dist::normal(2.0, 0.5);
    StandardAppParams::Service preview;
    preview.name = "preview";
    preview.params.periodMs = Dist::fixed(33.3);
    preview.params.burstMs = Dist::normal(0.6, 0.15);
    preview.params.gpuPacketMs = Dist::normal(2.1, 0.4);
    p.services.push_back(preview);
    return std::make_unique<StandardAppModel>(std::move(p));
}

WorkloadPtr
makePowerDirectorExport(bool cuda)
{
    TranscoderParams p;
    p.spec = {"powerdirector", "CyberLink PowerDirector v16 (export)",
              "Video Authoring"};
    p.smtFriendliness = 0.2;
    p.workersPerLogicalCpu = 0.5;
    p.maxWorkers = 6;
    p.serialFrameMs = 4.0;
    if (cuda) {
        // Transitions/color correction rendered on CUDA.
        p.parallelFrameMs = 95.0;
        p.gpuPacketMs = 2.4;
        p.gpuEngine = GpuEngineId::Compute;
        p.gpuBacklogCap = 2;
    } else {
        p.parallelFrameMs = 135.0;
    }
    return std::make_unique<TranscoderModel>(std::move(p));
}

WorkloadPtr
makePremiere(PremiereScenario scenario)
{
    if (scenario == PremiereScenario::Editing) {
        StandardAppParams p;
        p.spec = {"premiere", "Adobe Premiere Pro CC",
                  "Video Authoring"};
        // Interactive editing: serial UI with a preview decoder; the
        // measured GPU use is minimal (0.6%).
        p.smtFriendliness = 0.25;
        p.inputRateHz = 1.5;
        p.uiBurstMs = Dist::normal(8.0, 2.0);
        p.uiGpuMs = Dist::fixed(0.15);
        p.uiHelpers = 1;
        p.uiHelperMs = Dist::normal(6.5, 1.5);
        StandardAppParams::Service decode;
        decode.name = "preview-decode";
        decode.params.periodMs = Dist::fixed(33.3);
        decode.params.burstMs = Dist::normal(4.5, 1.0);
        decode.params.startDelayMs = Dist::fixed(5.0);
        decode.params.anchorPeriod = true;
        p.services.push_back(decode);
        StandardAppParams::Service prender;
        prender.name = "preview-render";
        prender.params.periodMs = Dist::fixed(33.3);
        prender.params.burstMs = Dist::normal(3.2, 0.8);
        prender.params.startDelayMs = Dist::fixed(5.0);
        prender.params.anchorPeriod = true;
        p.services.push_back(prender);
        StandardAppParams::Service paint;
        paint.name = "paint";
        paint.params.periodMs = Dist::fixed(100.0);
        paint.params.burstMs = Dist::normal(0.4, 0.1);
        paint.params.gpuPacketMs = Dist::normal(0.55, 0.12);
        p.services.push_back(paint);
        return std::make_unique<StandardAppModel>(std::move(p));
    }

    TranscoderParams p;
    p.spec = {"premiere", "Adobe Premiere Pro CC (export)",
              "Video Authoring"};
    p.smtFriendliness = 0.2;
    p.workersPerLogicalCpu = 0.5;
    p.maxWorkers = 6;
    p.serialFrameMs = 5.0;
    if (scenario == PremiereScenario::ExportCuda) {
        // Mercury Playback Engine offloads effects to CUDA; the
        // paper observes little runtime change but lower TLP.
        p.parallelFrameMs = 105.0;
        p.gpuPacketMs = 3.0;
        p.gpuEngine = GpuEngineId::Compute;
        p.gpuSyncPerFrame = false;
        p.gpuBacklogCap = 2;
    } else {
        p.parallelFrameMs = 120.0;
    }
    return std::make_unique<TranscoderModel>(std::move(p));
}

} // namespace deskpar::apps

/**
 * @file
 * StandardAppModel: a parameterized workload skeleton covering the
 * interactive single-process applications of the suite (image
 * authoring, office, media playback, personal assistants, simple
 * video editors). It composes:
 *   - an input-driven UI thread (with optional fork-join render
 *     phases on every Nth event),
 *   - a crew of persistent pool workers for those phases,
 *   - any number of periodic service threads (decode, autosave,
 *     compositor, viewport, ...),
 * and generates the AutoIt-style input script that drives it.
 */

#ifndef DESKPAR_APPS_STANDARD_HH
#define DESKPAR_APPS_STANDARD_HH

#include <string>
#include <vector>

#include "apps/app.hh"
#include "apps/blocks.hh"

namespace deskpar::apps {

/**
 * Full parameterization of a StandardAppModel.
 */
struct StandardAppParams
{
    AppSpec spec;
    double smtFriendliness = 0.3;
    /** Working set for the (opt-in) LLC contention model. */
    double llcFootprintMiB = 1.5;

    /** @{ Input script. */
    double inputRateHz = 2.0;
    input::InputKind inputKind = input::InputKind::MouseClick;
    /**
     * The testbench's user-action sequence (the Section IV scripts,
     * e.g. Excel's "copy columns, zoom, ..."). Labels are assigned
     * to the generated input events cyclically and appear as trace
     * markers; an empty list leaves events unlabeled.
     */
    std::vector<std::string> actionSequence;
    /** @} */

    /** @{ UI thread. */
    Dist uiBurstMs = Dist::normal(2.0, 0.5);
    Dist uiGpuMs = Dist::fixed(0.0);
    GpuEngineId uiGpuEngine = GpuEngineId::Graphics3D;
    /** Helper threads bursting concurrently with the UI burst. */
    unsigned uiHelpers = 0;
    Dist uiHelperMs = Dist::fixed(0.0);
    /**
     * Run the UI thread at Elevated priority (Windows foreground
     * boost): input handling preempts batch work under contention.
     */
    bool elevatedUi = false;
    /** @} */

    /** @{ Fork-join render phases (0 workers disables). */
    unsigned renderWorkers = 0;
    Dist workerChunkMs = Dist::fixed(5.0);
    unsigned phaseEveryNthInput = 0;
    unsigned phaseRounds = 1;
    Dist phaseSetupMs = Dist::fixed(1.0);
    /** @} */

    /** Named periodic service threads. */
    struct Service
    {
        std::string name;
        PeriodicBurstParams params;
    };
    std::vector<Service> services;
};

/**
 * The configurable single-process interactive application.
 */
class StandardAppModel : public WorkloadModel
{
  public:
    explicit StandardAppModel(StandardAppParams params)
        : params_(std::move(params))
    {}

    const AppSpec &spec() const override { return params_.spec; }

    const StandardAppParams &params() const { return params_; }

    AppInstance instantiate(sim::Machine &machine) override;

  private:
    StandardAppParams params_;
};

} // namespace deskpar::apps

#endif // DESKPAR_APPS_STANDARD_HH

/**
 * @file
 * Factory functions for the StandardAppModel-based suite members:
 * image authoring, office, multimedia playback, and personal
 * assistants. The custom multi-process / pipeline workloads live in
 * their own headers (video.hh, browser.hh, vr.hh, mining.hh).
 *
 * Parameter values are calibrated so the Table II operating points
 * (TLP, GPU utilization at 12 logical CPUs with SMT on a GTX 1080 Ti)
 * are reproduced; every scaling trend then emerges from the machine
 * model (see DESIGN.md section 4).
 */

#ifndef DESKPAR_APPS_SUITE_HH
#define DESKPAR_APPS_SUITE_HH

#include "apps/app.hh"

namespace deskpar::apps {

/** @{ Image authoring (Section IV-A). */
WorkloadPtr makePhotoshop();
WorkloadPtr makeMaya();
WorkloadPtr makeAutoCad();
/** @} */

/** @{ Office (Section IV-B). */
WorkloadPtr makeAcrobat();
WorkloadPtr makeExcel();
WorkloadPtr makeOutlook();
WorkloadPtr makePowerPoint();
WorkloadPtr makeWord();
/** @} */

/** @{ Multimedia playback (Section IV-C). */
WorkloadPtr makeQuickTime();
WorkloadPtr makeWindowsMediaPlayer();
WorkloadPtr makeVlc();
/** @} */

/** @{ Personal assistants (Section IV-H). */
WorkloadPtr makeCortana();
WorkloadPtr makeBraina();
/** @} */

} // namespace deskpar::apps

#endif // DESKPAR_APPS_SUITE_HH

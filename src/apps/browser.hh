/**
 * @file
 * Web-browsing workloads (Table II category 6 and the Figure 11
 * scenario study). Browsers are the suite's multi-process
 * applications: a main/browser process, a GPU/compositor process,
 * and per-site renderer processes (with background-tab throttling),
 * which is why their application-level TLP spans several pids.
 */

#ifndef DESKPAR_APPS_BROWSER_HH
#define DESKPAR_APPS_BROWSER_HH

#include "apps/app.hh"

namespace deskpar::apps {

/** The three browsers of the paper. */
enum class BrowserEngine { Chrome, Firefox, Edge };

/** The paper's four browsing tests (Section IV-E). */
enum class BrowseScenario {
    MultiTab,  ///< YouTube + ESPN + CNN + BestBuy + flash, one tab each
    SingleTab, ///< the same sites visited in a single tab
    Espn,      ///< ESPN only: plenty of active content
    Wiki,      ///< Wikipedia only: little active content
};

/** Name of a browser engine ("chrome", "firefox", "edge"). */
const char *browserName(BrowserEngine engine);

/** Name of a scenario ("multi-tab", ...). */
const char *scenarioName(BrowseScenario scenario);

/** Build a browser workload for @p engine running @p scenario. */
WorkloadPtr makeBrowser(BrowserEngine engine,
                        BrowseScenario scenario =
                            BrowseScenario::MultiTab);

} // namespace deskpar::apps

#endif // DESKPAR_APPS_BROWSER_HH

#include "apps/harness.hh"

#include "apps/noise.hh"
#include "apps/registry.hh"
#include "input/driver.hh"
#include "sim/logging.hh"

namespace deskpar::apps {

AppRunResult
runWorkload(WorkloadModel &model, const RunOptions &options)
{
    if (options.iterations == 0)
        fatal("runWorkload: zero iterations");

    AppRunResult result;
    result.agg.app = model.spec().name;

    sim::SimDuration duration =
        options.duration ? options.duration : model.duration();

    for (unsigned iter = 0; iter < options.iterations; ++iter) {
        sim::MachineConfig config = options.config;
        config.seed = options.seedBase + iter * 7919;
        sim::Machine machine(config);

        machine.session().start(machine.now());
        if (options.noiseIntensity > 0.0)
            spawnBackgroundNoise(machine, options.noiseIntensity);
        AppInstance instance = model.instantiate(machine);

        if (!instance.script.empty()) {
            if (options.manualInput) {
                input::ManualDriver driver;
                driver.install(machine, instance.script);
            } else {
                input::AutomationDriver driver;
                driver.install(machine, instance.script);
            }
        }

        machine.run(duration);
        machine.session().stop(machine.now());
        trace::TraceBundle bundle = machine.session().takeBundle();

        trace::PidSet pids =
            trace::pidsWithPrefix(bundle, instance.processPrefix);
        if (pids.empty()) {
            fatal("runWorkload: no processes matched prefix " +
                  instance.processPrefix);
        }

        IterationResult ir;
        ir.metrics = analysis::analyzeApp(bundle, pids);
        ir.sched = machine.scheduler().stats();
        for (trace::Pid pid : pids)
            ir.gpuWork += machine.gpu().completedWork(pid);

        result.agg.add(ir.metrics);
        result.fps.add(ir.metrics.frames.avgFps);
        double span = sim::toSeconds(bundle.duration());
        if (span > 0.0) {
            auto real = static_cast<double>(
                ir.metrics.frames.frames -
                ir.metrics.frames.synthesizedFrames);
            result.realFps.add(real / span);
        }
        result.iterations.push_back(std::move(ir));

        if (iter + 1 == options.iterations) {
            result.lastPids = pids;
            result.lastBundle = std::move(bundle);
        }
    }
    return result;
}

AppRunResult
runWorkload(const std::string &id, const RunOptions &options)
{
    WorkloadPtr model = makeWorkload(id);
    return runWorkload(*model, options);
}

} // namespace deskpar::apps

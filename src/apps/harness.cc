#include "apps/harness.hh"

#include "analysis/session.hh"
#include "apps/noise.hh"
#include "apps/registry.hh"
#include "input/driver.hh"
#include "obs/obs.hh"
#include "sim/logging.hh"

namespace deskpar::apps {

IterationOutput
runIteration(WorkloadModel &model, const RunOptions &options,
             unsigned iter)
{
    obs::Span span("sim.iteration", obs::SpanKind::Job, iter);
    sim::SimDuration duration =
        options.duration ? options.duration : model.duration();

    sim::MachineConfig config = options.config;
    config.seed = options.seedBase + iter * 7919;
    sim::Machine machine(config);

    machine.session().start(machine.now());
    if (options.noiseIntensity > 0.0)
        spawnBackgroundNoise(machine, options.noiseIntensity);
    AppInstance instance = model.instantiate(machine);

    if (!instance.script.empty()) {
        if (options.manualInput) {
            input::ManualDriver driver;
            driver.install(machine, instance.script);
        } else {
            input::AutomationDriver driver;
            driver.install(machine, instance.script);
        }
    }

    machine.run(duration);
    machine.session().stop(machine.now());

    IterationOutput out;
    out.bundle = machine.session().takeBundle();
    out.pids =
        trace::pidsWithPrefix(out.bundle, instance.processPrefix);
    if (out.pids.empty()) {
        fatal("runWorkload: no processes matched prefix " +
              instance.processPrefix);
    }

    {
        analysis::Session session(out.bundle);
        out.result.metrics = session.app(out.pids);
    }
    out.result.sched = machine.scheduler().stats();
    for (trace::Pid pid : out.pids)
        out.result.gpuWork += machine.gpu().completedWork(pid);
    return out;
}

void
foldIteration(AppRunResult &result, IterationOutput &&out, bool last)
{
    result.agg.add(out.result.metrics);
    result.fps.add(out.result.metrics.frames.avgFps);
    double span = sim::toSeconds(out.bundle.duration());
    if (span > 0.0) {
        auto real = static_cast<double>(
            out.result.metrics.frames.frames -
            out.result.metrics.frames.synthesizedFrames);
        result.realFps.add(real / span);
    }
    result.iterations.push_back(std::move(out.result));
    if (out.ingest.bytes)
        result.ingest = out.ingest;

    if (last) {
        result.lastPids = std::move(out.pids);
        result.lastBundle = std::move(out.bundle);
    }
}

AppRunResult
runWorkload(WorkloadModel &model, const RunOptions &options)
{
    if (options.iterations == 0)
        fatal("runWorkload: zero iterations");

    AppRunResult result;
    result.agg.app = model.spec().name;

    for (unsigned iter = 0; iter < options.iterations; ++iter) {
        foldIteration(result, runIteration(model, options, iter),
                      iter + 1 == options.iterations);
    }
    return result;
}

AppRunResult
runWorkload(const std::string &id, const RunOptions &options)
{
    WorkloadPtr model = makeWorkload(id);
    return runWorkload(*model, options);
}

} // namespace deskpar::apps

/**
 * @file
 * The benchmark-suite registry: every Table II application by stable
 * id, in the paper's row order, with its category.
 */

#ifndef DESKPAR_APPS_REGISTRY_HH
#define DESKPAR_APPS_REGISTRY_HH

#include <functional>
#include <string>
#include <vector>

#include "apps/app.hh"

namespace deskpar::apps {

/** One suite member. */
struct SuiteEntry
{
    std::string id;
    std::string category;
    std::function<WorkloadPtr()> factory;
};

/**
 * The 30-application Table II suite in row order (default
 * configurations: Rift headset, WinX with CUDA, Premiere editing,
 * browsers on the multi-tab test).
 */
const std::vector<SuiteEntry> &tableTwoSuite();

/**
 * Instantiate a suite member by id.
 * Throws FatalError for unknown ids.
 */
WorkloadPtr makeWorkload(const std::string &id);

/** All registered ids (diagnostics, CLI listings). */
std::vector<std::string> workloadIds();

} // namespace deskpar::apps

#endif // DESKPAR_APPS_REGISTRY_HH

/**
 * @file
 * Image-authoring and office workload models (Table II categories 1
 * and 2), built on StandardAppModel.
 *
 * Calibration targets (TLP / GPU%): Photoshop 8.6/1.6, Maya 2.7/9.9,
 * AutoCAD 1.2/9.0, Acrobat 1.3/0.0, Excel 2.1/2.1, PowerPoint
 * 1.2/4.0, Word 1.3/1.7, Outlook 1.3/2.5.
 */

#include "apps/standard.hh"
#include "apps/suite.hh"

namespace deskpar::apps {

namespace {

StandardAppParams::Service
service(std::string name, PeriodicBurstParams params)
{
    return StandardAppParams::Service{std::move(name),
                                      std::move(params)};
}

} // namespace

WorkloadPtr
makePhotoshop()
{
    StandardAppParams p;
    p.spec = {"photoshop", "Adobe Photoshop CC", "Image Authoring"};
    // Filter rendering is embarrassingly parallel and dominates busy
    // time; user interaction is serial and bursty.
    p.smtFriendliness = 0.35;
    p.llcFootprintMiB = 10.0; // the 100-megapixel photograph
    p.inputRateHz = 1.0;
    p.uiBurstMs = Dist::normal(7.0, 1.5);
    p.uiGpuMs = Dist::fixed(0.2);
    p.actionSequence = {"pan canvas", "zoom", "apply filter",
                        "adjust layers", "select region",
                        "apply filter"};
    p.renderWorkers = 12;
    p.workerChunkMs = Dist::normal(26.0, 4.0);
    p.phaseEveryNthInput = 3; // a filter every ~3 interactions
    p.phaseRounds = 4;
    p.phaseSetupMs = Dist::normal(2.0, 0.5);
    // Canvas compositor keeps a light GPU stream alive.
    PeriodicBurstParams compositor;
    compositor.periodMs = Dist::fixed(100.0);
    compositor.burstMs = Dist::normal(0.4, 0.1);
    compositor.gpuPacketMs = Dist::normal(1.6, 0.3);
    p.services.push_back(service("compositor", compositor));
    return std::make_unique<StandardAppModel>(std::move(p));
}

WorkloadPtr
makeMaya()
{
    StandardAppParams p;
    p.spec = {"maya", "Autodesk Maya 3D 2019", "Image Authoring"};
    // Software raytrace phases use a moderate worker pool; hardware
    // rendering streams sizable packets to the 3D engine.
    p.smtFriendliness = 0.30;
    p.inputRateHz = 1.0;
    p.uiBurstMs = Dist::normal(9.0, 2.0);
    p.uiGpuMs = Dist::fixed(0.5);
    p.actionSequence = {"rotate camera", "pan", "zoom",
                        "smooth mesh", "software render",
                        "hardware render"};
    p.renderWorkers = 8;
    p.workerChunkMs = Dist::normal(20.0, 3.5);
    p.phaseEveryNthInput = 4;
    p.phaseRounds = 2;
    p.phaseSetupMs = Dist::normal(4.0, 1.0);
    PeriodicBurstParams viewport;
    viewport.periodMs = Dist::fixed(33.3);
    viewport.burstMs = Dist::normal(0.8, 0.2);
    viewport.gpuPacketMs = Dist::normal(3.3, 0.5);
    p.services.push_back(service("hw-render", viewport));
    return std::make_unique<StandardAppModel>(std::move(p));
}

WorkloadPtr
makeAutoCad()
{
    StandardAppParams p;
    p.spec = {"autocad", "Autodesk AutoCAD LT", "Image Authoring"};
    // CAD editing is essentially serial; the 3D viewport keeps the
    // GPU moderately busy redrawing the floorplan.
    p.smtFriendliness = 0.25;
    p.inputRateHz = 2.0;
    p.uiBurstMs = Dist::normal(4.5, 1.0);
    p.uiGpuMs = Dist::fixed(0.6);
    p.uiHelpers = 1;
    p.uiHelperMs = Dist::normal(2.6, 0.7);
    p.actionSequence = {"pan", "zoom", "draw", "fillet edges",
                        "mirror", "enter text"};
    PeriodicBurstParams viewport;
    viewport.periodMs = Dist::fixed(33.3);
    viewport.burstMs = Dist::normal(0.5, 0.15);
    viewport.gpuPacketMs = Dist::normal(3.0, 0.4);
    p.services.push_back(service("viewport", viewport));
    PeriodicBurstParams regen;
    regen.periodMs = Dist::normal(400.0, 50.0);
    regen.burstMs = Dist::normal(2.0, 0.5);
    p.services.push_back(service("regen", regen));
    return std::make_unique<StandardAppModel>(std::move(p));
}

WorkloadPtr
makeAcrobat()
{
    StandardAppParams p;
    p.spec = {"acrobat", "Adobe Acrobat Pro DC", "Office"};
    // PDF manipulation: serial UI work plus an indexing service;
    // no measurable GPU usage (Table II reports 0.0%).
    p.smtFriendliness = 0.25;
    p.inputRateHz = 2.0;
    p.uiBurstMs = Dist::normal(6.0, 1.5);
    p.uiHelpers = 1;
    p.uiHelperMs = Dist::normal(2.8, 0.8);
    p.actionSequence = {"scan document", "combine files",
                        "move pages", "insert link",
                        "add watermark", "sign",
                        "export to slides"};
    PeriodicBurstParams indexer;
    indexer.periodMs = Dist::normal(350.0, 60.0);
    indexer.burstMs = Dist::normal(3.5, 1.0);
    p.services.push_back(service("indexer", indexer));
    return std::make_unique<StandardAppModel>(std::move(p));
}

WorkloadPtr
makeExcel()
{
    StandardAppParams p;
    p.spec = {"excel", "Microsoft Excel 2016", "Office"};
    // The 1M-row workbook: recalculation uses the multithreaded
    // engine in short full-width phases (Excel touches all 12
    // logical CPUs; the paper highlights 3.7% of time at max TLP).
    p.smtFriendliness = 0.35;
    p.inputRateHz = 2.0;
    p.uiBurstMs = Dist::normal(4.0, 1.0);
    p.uiGpuMs = Dist::fixed(0.3);
    p.actionSequence = {"copy columns", "zoom", "pan",
                        "change layout", "compute means",
                        "sort rows", "filter rows",
                        "plot histogram"};
    p.renderWorkers = 12;
    p.workerChunkMs = Dist::normal(3.6, 0.9);
    p.phaseEveryNthInput = 6; // sort / mean / filter operations
    p.phaseRounds = 1;
    p.phaseSetupMs = Dist::normal(1.5, 0.4);
    PeriodicBurstParams redraw;
    redraw.periodMs = Dist::fixed(60.0);
    redraw.burstMs = Dist::normal(0.5, 0.1);
    redraw.gpuPacketMs = Dist::normal(1.2, 0.2);
    p.services.push_back(service("grid-redraw", redraw));
    return std::make_unique<StandardAppModel>(std::move(p));
}

WorkloadPtr
makeOutlook()
{
    StandardAppParams p;
    p.spec = {"outlook", "Microsoft Outlook 2016", "Office"};
    p.smtFriendliness = 0.25;
    p.inputRateHz = 1.5;
    p.uiBurstMs = Dist::normal(5.0, 1.2);
    p.uiGpuMs = Dist::fixed(0.3);
    p.uiHelpers = 1;
    p.uiHelperMs = Dist::normal(4.6, 1.0);
    p.actionSequence = {"compose email", "save draft",
                        "delete draft", "search", "reply",
                        "delete email", "recover email",
                        "move to junk", "categorize", "filter"};
    PeriodicBurstParams sync;
    sync.periodMs = Dist::normal(450.0, 80.0);
    sync.burstMs = Dist::normal(5.0, 1.5);
    p.services.push_back(service("mail-sync", sync));
    PeriodicBurstParams render;
    render.periodMs = Dist::fixed(60.0);
    render.burstMs = Dist::normal(0.4, 0.1);
    render.gpuPacketMs = Dist::normal(1.4, 0.3);
    p.services.push_back(service("list-render", render));
    return std::make_unique<StandardAppModel>(std::move(p));
}

WorkloadPtr
makePowerPoint()
{
    StandardAppParams p;
    p.spec = {"powerpoint", "Microsoft PowerPoint 2016", "Office"};
    // Shape animation keeps a steady GPU stream (4%); editing is
    // serial.
    p.smtFriendliness = 0.25;
    p.inputRateHz = 2.0;
    p.uiBurstMs = Dist::normal(4.5, 1.0);
    p.uiGpuMs = Dist::fixed(0.4);
    p.uiHelpers = 1;
    p.uiHelperMs = Dist::normal(1.8, 0.5);
    p.actionSequence = {"add bullet points", "format text",
                        "add shapes", "animate shapes",
                        "insert picture", "scale picture",
                        "rotate picture", "create table",
                        "fill table"};
    PeriodicBurstParams animate;
    animate.periodMs = Dist::fixed(33.3);
    animate.burstMs = Dist::normal(0.35, 0.1);
    animate.gpuPacketMs = Dist::normal(1.32, 0.25);
    p.services.push_back(service("animation", animate));
    return std::make_unique<StandardAppModel>(std::move(p));
}

WorkloadPtr
makeWord()
{
    StandardAppParams p;
    p.spec = {"word", "Microsoft Word 2016", "Office"};
    p.smtFriendliness = 0.25;
    p.inputRateHz = 3.0; // typing
    p.uiBurstMs = Dist::normal(2.2, 0.6);
    p.uiGpuMs = Dist::fixed(0.15);
    p.uiHelpers = 1;
    p.uiHelperMs = Dist::normal(2.6, 0.6);
    p.actionSequence = {"add text", "delete text",
                        "change formatting", "insert image",
                        "scale image", "move image"};
    PeriodicBurstParams spellcheck;
    spellcheck.periodMs = Dist::normal(300.0, 50.0);
    spellcheck.burstMs = Dist::normal(4.0, 1.2);
    p.services.push_back(service("proofing", spellcheck));
    PeriodicBurstParams paint;
    paint.periodMs = Dist::fixed(66.7);
    paint.burstMs = Dist::normal(0.3, 0.1);
    paint.gpuPacketMs = Dist::normal(1.0, 0.2);
    p.services.push_back(service("paint", paint));
    return std::make_unique<StandardAppModel>(std::move(p));
}

} // namespace deskpar::apps

/**
 * @file
 * Personal-assistant workload models (Table II category 9). The
 * testbench issues voice requests (news, weather, reminders, general
 * knowledge); the heavy inference runs in the datacenter, so locally
 * the apps do audio capture/feature extraction, then idle while the
 * cloud responds, then render the answer (Section IV-H).
 *
 * Calibration targets (TLP / GPU%): Cortana 1.4/2.7, Braina 1.1/0.0.
 */

#include "apps/standard.hh"
#include "apps/suite.hh"

namespace deskpar::apps {

WorkloadPtr
makeCortana()
{
    StandardAppParams p;
    p.spec = {"cortana", "Cortana", "Personal Assistant"};
    p.smtFriendliness = 0.3;
    // A voice request roughly every five seconds.
    p.inputRateHz = 0.2;
    p.inputKind = input::InputKind::VoiceRequest;
    // Local audio pipeline + response handling per request.
    p.uiBurstMs = Dist::normal(55.0, 12.0);
    p.uiGpuMs = Dist::fixed(1.0);
    p.actionSequence = {"daily news", "weather forecast",
                        "set alarm", "manage reminder",
                        "general knowledge", "word definition",
                        "simple math"};
    // Local feature extraction fans out to two helper threads that
    // overlap the main audio burst.
    p.uiHelpers = 2;
    p.uiHelperMs = Dist::normal(31.0, 7.0);
    // Wake-word detector and a UI animation loop keep two light
    // threads alive; the animation streams small GPU packets.
    PeriodicBurstParams waked;
    waked.periodMs = Dist::fixed(50.0);
    waked.burstMs = Dist::normal(0.5, 0.15);
    p.services.push_back({"wake-word", waked});
    PeriodicBurstParams anim;
    anim.periodMs = Dist::fixed(33.3);
    anim.burstMs = Dist::normal(0.3, 0.1);
    anim.gpuPacketMs = Dist::normal(0.85, 0.2);
    p.services.push_back({"animation", anim});
    return std::make_unique<StandardAppModel>(std::move(p));
}

WorkloadPtr
makeBraina()
{
    StandardAppParams p;
    p.spec = {"braina", "Braina 1.43", "Personal Assistant"};
    p.smtFriendliness = 0.3;
    p.inputRateHz = 0.167; // one request per six seconds
    p.inputKind = input::InputKind::VoiceRequest;
    p.uiBurstMs = Dist::normal(75.0, 18.0);
    p.uiHelpers = 1;
    p.uiHelperMs = Dist::normal(9.0, 3.0);
    p.actionSequence = {"daily news", "weather forecast",
                        "set alarm", "general knowledge",
                        "word definition", "simple math"};
    // Speech feature extraction ticks while listening; no GPU use.
    PeriodicBurstParams listen;
    listen.periodMs = Dist::fixed(80.0);
    listen.burstMs = Dist::normal(0.9, 0.25);
    p.services.push_back({"listener", listen});
    return std::make_unique<StandardAppModel>(std::move(p));
}

} // namespace deskpar::apps

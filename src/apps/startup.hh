/**
 * @file
 * Application-startup burst: real desktop applications touch every
 * logical CPU briefly while loading (DLL mapping, JIT, asset
 * decompression, cache warmup). This is why the paper observes most
 * applications attaining the maximum instantaneous TLP of 12 at some
 * point during execution even when their steady-state TLP is low
 * (e.g. Excel spends 3.7% of time at max width).
 */

#ifndef DESKPAR_APPS_STARTUP_HH
#define DESKPAR_APPS_STARTUP_HH

#include "sim/machine.hh"

namespace deskpar::apps {

/**
 * Spawn one short-lived loader thread per active logical CPU in
 * @p process, each computing a burst of ~@p burst_ms (at the
 * reference clock) and exiting.
 */
void spawnStartupBurst(sim::Machine &machine,
                       sim::SimProcess &process,
                       double burst_ms = 1.2);

} // namespace deskpar::apps

#endif // DESKPAR_APPS_STARTUP_HH

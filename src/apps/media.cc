/**
 * @file
 * Multimedia playback workload models (Table II category 3): a 480p
 * clip for the first half of the run, then the 1080p version of the
 * same video (the paper's Section IV-C testbench). The pipeline is
 * demux -> decode -> render; the render thread streams decode/
 * compose packets to the GPU's video engine and presents at the
 * content frame rate. The 1080p half submits ~4x the decode work of
 * the 480p half (pixel ratio), so the GPU-utilization timeline steps
 * up mid-run while the run average stays at the Table II value.
 *
 * Calibration targets (TLP / GPU%): QuickTime 1.1/16.4,
 * WMP 1.3/16.1, VLC 1.8/15.7.
 */

#include "apps/standard.hh"
#include "apps/suite.hh"

namespace deskpar::apps {

namespace {

/**
 * Shared skeleton: playback at 30 FPS with per-player knobs for
 * thread structure and per-frame costs.
 */
StandardAppParams
playerParams(AppSpec spec, double decode_threads_ms,
             unsigned extra_decoders, double gpu_frame_ms,
             double decoder_stagger_ms, double render_delay_ms)
{
    StandardAppParams p;
    p.spec = std::move(spec);
    p.smtFriendliness = 0.4;
    // Transport control: a couple of clicks to start each clip.
    p.inputRateHz = 0.2;
    p.uiBurstMs = Dist::normal(3.0, 0.8);

    // Demuxer: light periodic container parsing.
    PeriodicBurstParams demux;
    demux.periodMs = Dist::fixed(33.3);
    demux.burstMs = Dist::normal(0.25, 0.08);
    demux.anchorPeriod = true;
    p.services.push_back({"demux", demux});

    // Decoder(s): the CPU share of hybrid decode.
    for (unsigned i = 0; i <= extra_decoders; ++i) {
        PeriodicBurstParams decode;
        decode.periodMs = Dist::fixed(33.3);
        decode.burstMs =
            Dist::normal(decode_threads_ms, decode_threads_ms * 0.3);
        // Staggered slice decoders: bursts of one frame overlap
        // each other by (burst - stagger).
        decode.startDelayMs =
            Dist::fixed(4.0 + decoder_stagger_ms * i);
        decode.anchorPeriod = true;
        p.services.push_back(
            {"decode-" + std::to_string(i), decode});
    }

    // Renderer: GPU video-engine packet per frame + present. The
    // run splits into the 480p clip (first half) and the 1080p clip
    // (second half); packet sizes keep the run average at
    // gpu_frame_ms while the instantaneous utilization steps up 4x
    // at the clip switch.
    constexpr double kRunSeconds = 30.0;
    constexpr double kFrameMs = 33.3;
    const auto half_ticks = static_cast<unsigned>(
        kRunSeconds * 500.0 / kFrameMs);
    const double p480 = gpu_frame_ms * 2.0 / 5.0;
    const double p1080 = p480 * 4.0;

    PeriodicBurstParams clip480;
    clip480.periodMs = Dist::fixed(kFrameMs);
    clip480.burstMs = Dist::normal(0.5, 0.15);
    clip480.gpuPacketMs = Dist::normal(p480, p480 * 0.12);
    clip480.gpuEngine = GpuEngineId::VideoDecode;
    clip480.presentsFrame = true;
    clip480.startDelayMs = Dist::fixed(render_delay_ms);
    clip480.anchorPeriod = true;
    clip480.tickLimit = half_ticks;
    p.services.push_back({"render-480p", clip480});

    PeriodicBurstParams clip1080 = clip480;
    clip1080.gpuPacketMs = Dist::normal(p1080, p1080 * 0.12);
    clip1080.startDelayMs =
        Dist::fixed(kRunSeconds * 500.0 + render_delay_ms);
    clip1080.tickLimit = 0;
    p.services.push_back({"render-1080p", clip1080});
    return p;
}

} // namespace

WorkloadPtr
makeQuickTime()
{
    // Mostly sequential pipeline: tiny CPU decode share, decode
    // offloaded to the video engine.
    auto p = playerParams(
        {"quicktime", "QuickTime Player 7.7.9",
         "Multimedia Playback"},
        0.9, 0, 5.4, 0.0, 4.7);
    return std::make_unique<StandardAppModel>(std::move(p));
}

WorkloadPtr
makeWindowsMediaPlayer()
{
    auto p = playerParams(
        {"wmplayer", "Windows Media Player 12.0",
         "Multimedia Playback"},
        1.7, 1, 5.3, 0.9, 4.2);
    return std::make_unique<StandardAppModel>(std::move(p));
}

WorkloadPtr
makeVlc()
{
    // VLC decodes with a small thread pool (higher TLP).
    auto p = playerParams(
        {"vlc", "VLC Media Player 3.0.3", "Multimedia Playback"},
        2.2, 2, 5.2, 0.7, 4.2);
    return std::make_unique<StandardAppModel>(std::move(p));
}

} // namespace deskpar::apps

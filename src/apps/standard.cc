#include "apps/standard.hh"

#include "apps/startup.hh"

namespace deskpar::apps {

AppInstance
StandardAppModel::instantiate(sim::Machine &machine)
{
    auto &process = machine.createProcess(params_.spec.id,
                                          params_.smtFriendliness);
    process.setLlcFootprintMiB(params_.llcFootprintMiB);
    spawnStartupBurst(machine, process);

    InteractiveUiParams ui;
    ui.inputChannel =
        machine.inputChannel(input::channelOf(params_.inputKind));
    ui.uiBurstMs = params_.uiBurstMs;
    ui.uiGpuMs = params_.uiGpuMs;
    ui.uiGpuEngine = params_.uiGpuEngine;
    if (params_.uiHelpers > 0) {
        ui.helperTrigger = machine.sync().alloc();
        ui.helperCount = params_.uiHelpers;
        for (unsigned i = 0; i < params_.uiHelpers; ++i) {
            process.createThread(
                std::make_shared<SignalDrivenWorker>(
                    ui.helperTrigger, params_.uiHelperMs),
                "helper-" + std::to_string(i));
        }
    }
    if (params_.renderWorkers > 0) {
        ui.crew = makeCrew(machine, params_.renderWorkers);
        ui.phaseEveryNthInput = params_.phaseEveryNthInput;
        ui.phaseRounds = params_.phaseRounds;
        ui.phaseSetupMs = params_.phaseSetupMs;
        spawnCrewWorkers(process, ui.crew, params_.workerChunkMs,
                         "render");
    }
    auto &ui_thread = process.createThread(
        std::make_shared<InteractiveUi>(ui), "ui");
    if (params_.elevatedUi)
        ui_thread.setPriority(sim::ThreadPriority::Elevated);

    for (const auto &service : params_.services) {
        process.createThread(
            std::make_shared<PeriodicBurst>(service.params),
            service.name);
    }

    AppInstance instance;
    instance.processPrefix = params_.spec.id;
    if (params_.inputRateHz > 0.0) {
        auto period = static_cast<sim::SimDuration>(
            1e9 / params_.inputRateHz);
        auto count = static_cast<unsigned>(
            sim::toSeconds(duration()) * params_.inputRateHz);
        const auto &actions = params_.actionSequence;
        for (unsigned i = 0; i < count; ++i) {
            std::string label =
                actions.empty()
                    ? std::string{}
                    : actions[i % actions.size()];
            instance.script.at(period * (i + 1), params_.inputKind,
                               std::move(label));
        }
    }
    return instance;
}

} // namespace deskpar::apps

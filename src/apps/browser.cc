#include "apps/browser.hh"

#include <memory>
#include <string>

#include "apps/blocks.hh"
#include "apps/startup.hh"
#include "sim/logging.hh"

namespace deskpar::apps {

namespace {

/** Engine-specific structure and cost knobs. */
struct EngineTraits
{
    const char *name;
    /** Renderer processes per site instance (Chrome's model). */
    bool processPerSite;
    /** Content processes cap (Firefox uses a small pool). */
    unsigned rendererCap;
    /** Raster/tile workers per active renderer (Blink uses >1). */
    unsigned rasterWorkers;
    /** Compositor GPU packet per 60 Hz frame, ms on ref GPU. */
    double gpuFrameMs;
    /** Main-process burst per user event. */
    double mainBurstMs;
    /** Renderer layout/JS burst scale. */
    double rendererBurstMs;
};

EngineTraits
traitsOf(BrowserEngine engine)
{
    switch (engine) {
      case BrowserEngine::Chrome:
        return {"chrome", true, 10, 2, 0.30, 2.2, 4.2};
      case BrowserEngine::Firefox:
        // Fewer content processes; more GPU work to match.
        return {"firefox", false, 4, 2, 0.90, 2.4, 4.4};
      case BrowserEngine::Edge:
        return {"edge", false, 2, 1, 0.12, 2.0, 3.6};
    }
    deskpar::panic("traitsOf: bad engine");
}

/** Scenario-specific site mix. */
struct ScenarioTraits
{
    const char *name;
    unsigned sites;         ///< distinct site instances
    bool multiTab;          ///< inactive tabs exist (throttled)
    double activityScale;   ///< active-content factor (ESPN high)
    bool hasVideo;          ///< YouTube-style video present
    double videoDuty;       ///< fraction of the run the video plays
};

ScenarioTraits
traitsOf(BrowseScenario scenario)
{
    switch (scenario) {
      case BrowseScenario::MultiTab:
        return {"multi-tab", 5, true, 1.0, true, 1.0};
      case BrowseScenario::SingleTab:
        return {"single-tab", 5, false, 1.0, true, 0.35};
      case BrowseScenario::Espn:
        return {"espn", 1, false, 1.8, false, 0.0};
      case BrowseScenario::Wiki:
        return {"wiki", 1, false, 0.25, false, 0.0};
    }
    deskpar::panic("traitsOf: bad scenario");
}

class BrowserModel : public WorkloadModel
{
  public:
    BrowserModel(BrowserEngine engine, BrowseScenario scenario)
        : engine_(traitsOf(engine)), scenario_(traitsOf(scenario))
    {
        spec_ = {engine_.name,
                 std::string(engine_.name) + " (" +
                     scenario_.name + ")",
                 "Web Browsing"};
    }

    const AppSpec &spec() const override { return spec_; }

    AppInstance
    instantiate(sim::Machine &machine) override
    {
        // Every user interaction fans out through the process tree:
        // network fetch in the main process, parse/layout in the
        // active renderer, raster in the GPU process. They all
        // listen on one load trigger the UI thread signals.
        sim::SyncId load = machine.sync().alloc();
        unsigned listeners = 0;

        // Browser (main) process: UI thread + network service.
        auto &main = machine.createProcess(engine_.name, 0.3);
        spawnStartupBurst(machine, main);
        InteractiveUiParams ui;
        ui.inputChannel = machine.inputChannel(
            input::channelOf(input::InputKind::MouseClick));
        ui.uiBurstMs = Dist::normal(engine_.mainBurstMs,
                                    engine_.mainBurstMs * 0.3);
        ui.helperTrigger = load;
        main.createThread(
            std::make_shared<SignalDrivenWorker>(
                load, Dist::normal(1.5, 0.5)),
            "network");
        ++listeners;
        PeriodicBurstParams net;
        net.periodMs = Dist::exponential(90.0 /
                                         scenario_.activityScale);
        net.burstMs = Dist::normal(0.8, 0.25);
        main.createThread(std::make_shared<PeriodicBurst>(net),
                          "io-poll");

        // GPU process: 60 Hz compositor, plus video decode when a
        // video tab is playing.
        auto &gpu = machine.createProcess(
            std::string(engine_.name) + "-gpu", 0.3);
        PeriodicBurstParams compositor;
        compositor.periodMs = Dist::fixed(16.7);
        compositor.burstMs = Dist::normal(1.8, 0.45);
        compositor.startDelayMs = Dist::fixed(1.0);
        compositor.anchorPeriod = true;
        compositor.gpuPacketMs = Dist::normal(
            engine_.gpuFrameMs * scenario_.activityScale,
            engine_.gpuFrameMs * 0.15);
        gpu.createThread(std::make_shared<PeriodicBurst>(compositor),
                         "compositor");
        gpu.createThread(
            std::make_shared<SignalDrivenWorker>(
                load, Dist::normal(1.2, 0.4),
                Dist::normal(1.5 * scenario_.activityScale, 0.4)),
            "raster");
        ++listeners;
        if (scenario_.hasVideo) {
            PeriodicBurstParams video;
            video.periodMs = Dist::fixed(33.3);
            video.burstMs = Dist::normal(
                0.3 * scenario_.videoDuty, 0.1);
            video.gpuPacketMs = Dist::normal(
                1.1 * scenario_.videoDuty, 0.25);
            video.gpuEngine = GpuEngineId::VideoDecode;
            video.presentsFrame = true;
            gpu.createThread(std::make_shared<PeriodicBurst>(video),
                             "video-decode");
        }

        // Renderer processes. Multi-tab keeps one process per open
        // site (plus subframe processes for Chrome); a single tab
        // only keeps the current page and the one being torn down.
        unsigned renderers =
            engine_.processPerSite
                ? scenario_.sites +
                      (scenario_.activityScale > 1.2 ? 2 : 1)
                : std::min<unsigned>(engine_.rendererCap,
                                     scenario_.sites);
        if (!scenario_.multiTab)
            renderers = std::min(renderers,
                                 engine_.processPerSite ? 3u : 2u);
        if (scenario_.sites == 1 && engine_.processPerSite &&
            scenario_.activityScale > 1.2) {
            renderers = 3; // ESPN: main frame + ad/subframe processes
        }

        for (unsigned r = 0; r < renderers; ++r) {
            auto &proc = machine.createProcess(
                std::string(engine_.name) + "-renderer-" +
                    std::to_string(r),
                0.3);
            // Only the foreground page renders every vsync; other
            // processes are throttled background tabs (Chrome
            // 57-style) or lightly active subframes.
            bool active = r == 0;
            bool subframe = !active && scenario_.sites == 1;
            if (active) {
                // Vsync-driven rendering pipeline: the renderer main
                // thread (JS/style/layout) and its raster worker run
                // every frame, phase-locked with the compositor —
                // the parallel content loading the paper credits
                // multi-process browsers with.
                double burst = engine_.rendererBurstMs *
                               scenario_.activityScale;
                PeriodicBurstParams layout;
                layout.periodMs = Dist::fixed(16.7);
                layout.burstMs = Dist::normal(burst, burst * 0.15);
                layout.startDelayMs = Dist::fixed(0.0);
                layout.anchorPeriod = true;
                proc.createThread(
                    std::make_shared<PeriodicBurst>(layout),
                    "main");
                for (unsigned w = 0; w < engine_.rasterWorkers;
                     ++w) {
                    PeriodicBurstParams raster;
                    raster.periodMs = Dist::fixed(16.7);
                    raster.burstMs = Dist::normal(
                        burst * (w == 0 ? 1.0 : 0.22),
                        burst * 0.15);
                    raster.startDelayMs =
                        Dist::fixed(0.5 + 0.3 * w);
                    raster.anchorPeriod = true;
                    proc.createThread(
                        std::make_shared<PeriodicBurst>(raster),
                        "raster-" + std::to_string(w));
                }
            } else if (subframe) {
                // Ad/embed subframe process: animated ads render on
                // the same vsync grid as the main frame.
                PeriodicBurstParams layout;
                layout.periodMs = Dist::fixed(33.3);
                layout.burstMs = Dist::normal(2.4, 0.5);
                layout.startDelayMs = Dist::fixed(0.0);
                layout.anchorPeriod = true;
                proc.createThread(
                    std::make_shared<PeriodicBurst>(layout),
                    "subframe");
            } else {
                PeriodicBurstParams layout;
                layout.periodMs = Dist::exponential(600.0);
                layout.burstMs = Dist::normal(0.8, 0.3);
                layout.startDelayMs = Dist::uniform(0.0, 50.0);
                proc.createThread(
                    std::make_shared<PeriodicBurst>(layout),
                    "layout");
            }
            if (active) {
                // Parse/style/layout burst on each navigation.
                proc.createThread(
                    std::make_shared<SignalDrivenWorker>(
                        load,
                        Dist::normal(
                            4.5 * scenario_.activityScale, 1.2)),
                    "page-load");
                ++listeners;
            }
            if (active && scenario_.activityScale >= 1.0) {
                PeriodicBurstParams worker;
                worker.periodMs = Dist::exponential(70.0);
                worker.burstMs = Dist::normal(
                    1.6 * scenario_.activityScale, 0.5);
                worker.startDelayMs = Dist::uniform(0.0, 60.0);
                proc.createThread(
                    std::make_shared<PeriodicBurst>(worker),
                    "js-worker");
            }
        }

        ui.helperCount = listeners;
        main.createThread(std::make_shared<InteractiveUi>(ui), "ui");

        AppInstance instance;
        instance.processPrefix = engine_.name;
        // Browsing interactions: scrolls and clicks at ~2 Hz.
        auto count = static_cast<unsigned>(
            sim::toSeconds(duration()) * 2.0);
        instance.script.every(sim::msec(500), sim::msec(500), count,
                              input::InputKind::MouseClick);
        return instance;
    }

  private:
    EngineTraits engine_;
    ScenarioTraits scenario_;
    AppSpec spec_;
};

} // namespace

const char *
browserName(BrowserEngine engine)
{
    return traitsOf(engine).name;
}

const char *
scenarioName(BrowseScenario scenario)
{
    return traitsOf(scenario).name;
}

WorkloadPtr
makeBrowser(BrowserEngine engine, BrowseScenario scenario)
{
    return std::make_unique<BrowserModel>(engine, scenario);
}

} // namespace deskpar::apps

#include "apps/blocks.hh"

#include "sim/logging.hh"

namespace deskpar::apps {

sim::WorkUnits
gpuMs(GpuEngineId engine, double ms)
{
    static const sim::GpuSpec kRef = sim::GpuSpec::gtx1080Ti();
    return kRef.workForMs(engine, ms);
}

Action
PeriodicBurst::next(ThreadContext &ctx)
{
    while (true) {
        switch (step_) {
          case Step::Start:
            step_ = Step::Compute;
            {
                double delay = params_.startDelayMs.sample(*ctx.rng);
                // Anchor the tick grid at the first burst, so
                // equal-period threads with equal delays stay
                // phase-locked regardless of burst lengths.
                nextTick_ = ctx.now + sim::msec(delay);
                if (delay > 0.0)
                    return Action::sleep(sim::msec(delay));
            }
            continue;

          case Step::Sleep:
            if (params_.tickLimit &&
                ticks_ >= params_.tickLimit) {
                return Action::exit();
            }
            step_ = Step::Compute;
            if (params_.anchorPeriod) {
                nextTick_ += sim::msec(
                    params_.periodMs.sample(*ctx.rng));
                if (nextTick_ <= ctx.now)
                    nextTick_ = ctx.now; // overran; realign
                return Action::sleepUntil(nextTick_);
            }
            return Action::sleep(
                sim::msec(params_.periodMs.sample(*ctx.rng)));

          case Step::Compute: {
            ++ticks_;
            step_ = Step::Gpu;
            double ms = params_.burstMs.sample(*ctx.rng);
            if (ms > 0.0)
                return Action::compute(cpuMs(ms));
            continue;
          }

          case Step::Gpu: {
            step_ = params_.gpuSync ? Step::GpuWait : Step::Present;
            double ms = params_.gpuPacketMs.sample(*ctx.rng);
            if (ms > 0.0) {
                return Action::gpuAsync(params_.gpuEngine,
                                        gpuMs(params_.gpuEngine, ms));
            }
            step_ = Step::Present;
            continue;
          }

          case Step::GpuWait:
            step_ = Step::Present;
            return Action::gpuSync();

          case Step::Present:
            step_ = Step::Sleep;
            if (params_.presentsFrame)
                return Action::present();
            continue;
        }
    }
}

CrewSync
makeCrew(sim::Machine &machine, unsigned workers)
{
    if (workers == 0)
        deskpar::fatal("makeCrew: zero workers");
    CrewSync crew;
    crew.work = machine.sync().alloc();
    crew.done = machine.sync().alloc();
    crew.workers = workers;
    return crew;
}

Action
PoolWorker::next(ThreadContext &ctx)
{
    switch (step_) {
      case Step::Wait:
        step_ = Step::Compute;
        return Action::waitSync(crew_.work);
      case Step::Compute:
        step_ = Step::Signal;
        return Action::compute(cpuMs(chunkMs_.sample(*ctx.rng)));
      case Step::Signal:
        step_ = Step::Wait;
        return Action::signalSync(crew_.done);
    }
    deskpar::panic("PoolWorker: bad step");
}

void
spawnCrewWorkers(sim::SimProcess &process, const CrewSync &crew,
                 Dist chunk_ms, const std::string &name_prefix)
{
    for (unsigned i = 0; i < crew.workers; ++i) {
        process.createThread(
            std::make_shared<PoolWorker>(crew, chunk_ms),
            name_prefix + "-" + std::to_string(i));
    }
}

Action
SignalDrivenWorker::next(ThreadContext &ctx)
{
    while (true) {
        switch (step_) {
          case Step::Wait:
            step_ = Step::Compute;
            return Action::waitSync(trigger_);
          case Step::Compute: {
            step_ = Step::Gpu;
            double ms = burstMs_.sample(*ctx.rng);
            if (ms > 0.0)
                return Action::compute(cpuMs(ms));
            continue;
          }
          case Step::Gpu: {
            step_ = Step::Wait;
            double ms = gpuMs_.sample(*ctx.rng);
            if (ms > 0.0)
                return Action::gpuAsync(engine_, gpuMs(engine_, ms));
            continue;
          }
        }
    }
}

Action
InteractiveUi::next(ThreadContext &ctx)
{
    while (true) {
        switch (step_) {
          case Step::WaitInput:
            step_ = Step::HelperSignal;
            return Action::waitSync(params_.inputChannel);

          case Step::HelperSignal:
            step_ = Step::Burst;
            if (params_.helperTrigger != sim::kNoSync) {
                return Action::signalSync(params_.helperTrigger,
                                          params_.helperCount);
            }
            continue;

          case Step::Burst: {
            ++inputsSeen_;
            step_ = Step::Gpu;
            double ms = params_.uiBurstMs.sample(*ctx.rng);
            if (ms > 0.0)
                return Action::compute(cpuMs(ms));
            continue;
          }

          case Step::Gpu: {
            bool phase_due =
                params_.phaseEveryNthInput != 0 &&
                params_.crew.workers != 0 &&
                inputsSeen_ % params_.phaseEveryNthInput == 0;
            step_ = phase_due ? Step::PhaseSetup : Step::WaitInput;
            double ms = params_.uiGpuMs.sample(*ctx.rng);
            if (ms > 0.0) {
                return Action::gpuAsync(
                    params_.uiGpuEngine,
                    gpuMs(params_.uiGpuEngine, ms));
            }
            continue;
          }

          case Step::PhaseSetup:
            roundsLeft_ = params_.phaseRounds ? params_.phaseRounds
                                              : 1;
            step_ = Step::PhaseDispatch;
            return Action::compute(
                cpuMs(params_.phaseSetupMs.sample(*ctx.rng)));

          case Step::PhaseDispatch:
            joinsLeft_ = params_.crew.workers;
            --roundsLeft_;
            step_ = Step::PhaseJoin;
            return Action::signalSync(params_.crew.work,
                                      params_.crew.workers);

          case Step::PhaseJoin:
            if (joinsLeft_ > 0) {
                --joinsLeft_;
                return Action::waitSync(params_.crew.done);
            }
            step_ = roundsLeft_ > 0 ? Step::PhaseDispatch
                                    : Step::WaitInput;
            continue;
        }
    }
}

Action
GpuKernelLoop::next(ThreadContext &ctx)
{
    switch (step_) {
      case Step::Prep: {
        step_ = Step::Launch;
        double ms = params_.prepMs.sample(*ctx.rng);
        if (ms > 0.0)
            return Action::compute(cpuMs(ms));
        [[fallthrough]];
      }
      case Step::Launch:
        step_ = Step::Wait;
        return Action::gpuAsync(
            params_.engine,
            gpuMs(params_.engine, params_.kernelMs.sample(*ctx.rng)));
      case Step::Wait: {
        step_ = Step::Gap;
        return Action::gpuSync();
      }
      case Step::Gap: {
        step_ = Step::Prep;
        double ms = params_.gapMs.sample(*ctx.rng);
        if (ms > 0.0)
            return Action::sleep(sim::msec(ms));
        return next(ctx);
      }
    }
    deskpar::panic("GpuKernelLoop: bad step");
}

Action
CpuGrinder::next(ThreadContext &ctx)
{
    if (computing_) {
        computing_ = false;
        return Action::compute(cpuMs(chunkMs_.sample(*ctx.rng)));
    }
    computing_ = true;
    double gap = gapMs_.sample(*ctx.rng);
    if (gap > 0.0)
        return Action::sleep(sim::msec(gap));
    return Action::compute(cpuMs(chunkMs_.sample(*ctx.rng)));
}

} // namespace deskpar::apps

#include "apps/noise.hh"

#include <memory>

#include "apps/blocks.hh"

namespace deskpar::apps {

namespace {

struct NoiseSource
{
    const char *process;
    const char *thread;
    double periodMs;
    double burstMs;
    double gpuMs;
};

/** A typical idle-desktop census. */
const NoiseSource kSources[] = {
    {"svchost", "timer-work", 120.0, 0.5, 0.0},
    {"svchost", "net-poll", 300.0, 0.9, 0.0},
    {"dwm", "compose", 16.7, 0.15, 0.25},
    {"explorer", "shell-tick", 250.0, 0.7, 0.0},
    {"antivirus", "scan", 450.0, 2.2, 0.0},
    {"search-indexer", "crawl", 800.0, 3.0, 0.0},
};

} // namespace

void
spawnBackgroundNoise(sim::Machine &machine, double intensity)
{
    sim::SimProcess *current = nullptr;
    const char *current_name = "";
    for (const auto &src : kSources) {
        if (!current || std::string(current_name) != src.process) {
            current = &machine.createProcess(src.process, 0.3);
            current_name = src.process;
        }
        PeriodicBurstParams params;
        params.periodMs =
            Dist::exponential(src.periodMs / intensity);
        params.burstMs = Dist::normal(src.burstMs * intensity,
                                      src.burstMs * 0.3);
        if (src.gpuMs > 0.0)
            params.gpuPacketMs = Dist::fixed(src.gpuMs * intensity);
        current->createThread(
            std::make_shared<PeriodicBurst>(params), src.thread);
    }
}

} // namespace deskpar::apps

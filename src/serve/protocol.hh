/**
 * @file
 * The `deskpar serve` wire protocol: newline-delimited JSON over a
 * local stream socket.
 *
 * Each request is one line, one JSON object:
 *
 *   {"op":"query","id":7,"trace":"app.etl","specs":["tlp"],...}
 *
 * ops: "ping", "stats", "shutdown", "analyze", "query",
 * "bottlenecks", "series", "frames". Trace-bearing ops share the
 * fields trace (required), app, lenient, jobs; query adds specs
 * (array of parseQuerySpec strings) and explain; bottlenecks adds
 * top; series adds kind ("tlp"|"concurrency"|"gpu_util"|
 * "frame_rate") and window_ns.
 *
 * Each response is one line, one envelope:
 *
 *   {"schema":1,"id":7,"ok":true,"diagnostics":[...],"result":{...}}
 *   {"schema":1,"id":7,"ok":false,"error":{"message":...}}
 *
 * The result member is the *unmodified* document the equivalent CLI
 * command prints (report/documents.hh), and it is written LAST in
 * the envelope so a client can extract it byte-exactly
 * (extractResult) and diff it against the CLI. id echoes the
 * request's id (0 when absent) so a pipelining client can match
 * responses; responses to one connection are written in completion
 * order, not arrival order.
 */

#ifndef DESKPAR_SERVE_PROTOCOL_HH
#define DESKPAR_SERVE_PROTOCOL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/service.hh"
#include "trace/diagnostic.hh"

namespace deskpar::serve {

enum class RequestOp : std::uint8_t {
    Ping = 0,
    Stats = 1,
    Shutdown = 2,
    Analyze = 3,
    Query = 4,
    Bottlenecks = 5,
    Series = 6,
    Frames = 7,
};

const char *requestOpName(RequestOp op);

/** One decoded request line. */
struct Request
{
    RequestOp op = RequestOp::Ping;
    /** Client-chosen correlation id, echoed in the response. */
    std::uint64_t id = 0;
    analysis::ServiceTraceRequest trace;
    /** Query only. */
    std::vector<std::string> specs;
    bool explain = false;
    /** Bottlenecks only. */
    std::size_t top = 10;
    /** Series only. */
    analysis::ServiceSeriesKind seriesKind =
        analysis::ServiceSeriesKind::Tlp;
    sim::SimDuration window = 0;
};

/**
 * Decode one request line. Returns false with a message suitable
 * for the error envelope (bad JSON, unknown op, missing field);
 * never throws.
 */
bool parseRequest(const std::string &line, Request &out,
                  std::string &error);

/**
 * Success envelope around @p resultDocument (a one-line JSON
 * document from report/documents.hh, or "{}" for ops without one).
 * @p diagnostics are the request's captured pipeline diagnostics.
 * No trailing newline; the transport appends it.
 */
std::string
successEnvelope(std::uint64_t id, const std::string &resultDocument,
                const std::vector<trace::Diagnostic> &diagnostics);

/** Failure envelope. @p kind tags the error source ("parse",
 *  "trace", "internal"). */
std::string errorEnvelope(std::uint64_t id, const std::string &kind,
                          const std::string &message);

/**
 * Recover the byte-exact result document from a success envelope:
 * scans the envelope's top level (string/escape aware, brace-depth
 * counting — substring tricks inside string values cannot spoof it)
 * for the depth-1 "result" member and returns its value span.
 * Returns false on an error envelope or malformed input.
 */
bool extractResult(const std::string &envelope, std::string &document);

} // namespace deskpar::serve

#endif // DESKPAR_SERVE_PROTOCOL_HH

#include "serve/server.hh"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <sstream>
#include <unordered_map>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "analysis/session.hh"
#include "obs/obs.hh"
#include "obs/selftrace.hh"
#include "report/documents.hh"
#include "report/json.hh"
#include "sim/logging.hh"
#include "sim/parallel.hh"
#include "trace/diagnostic.hh"

namespace deskpar::serve {

namespace {

/** Latency samples kept per op for the percentile estimates. */
constexpr std::size_t kMaxLatencySamples = 4096;

/** Nearest-rank percentile of an unsorted sample copy. */
double
percentile(std::vector<double> samples, double p)
{
    if (samples.empty())
        return 0.0;
    std::sort(samples.begin(), samples.end());
    auto rank = static_cast<std::size_t>(
        p * static_cast<double>(samples.size() - 1) / 100.0 + 0.5);
    return samples[std::min(rank, samples.size() - 1)];
}

} // namespace

/** One accepted connection. Shared by the demux loop (reads) and
 *  any workers still writing responses for it. */
struct Server::Conn
{
    int fd = -1;
    /** Serializes response lines from concurrent workers. */
    std::mutex writeMutex;
    /** Bytes received but not yet newline-terminated. */
    std::string inbuf;
    /** Cleared by the demux loop on EOF; writers then drop output. */
    std::atomic<bool> open{true};

    ~Conn()
    {
        if (fd >= 0)
            ::close(fd);
    }
};

Server::Server(const ServerOptions &options)
    : options_(options),
      service_(analysis::Service::Options{
          analysis::SessionCacheOptions{options.cacheBytes}})
{}

Server::~Server()
{
    stop();
}

void
Server::start()
{
    if (started_)
        panic("Server::start called twice");
    if (options_.socketPath.empty())
        fatal("serve: socket path must not be empty");

    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (options_.socketPath.size() >= sizeof(addr.sun_path))
        fatal("serve: socket path too long (" +
              std::to_string(options_.socketPath.size()) +
              " bytes; the AF_UNIX limit is " +
              std::to_string(sizeof(addr.sun_path) - 1) + ")");
    std::memcpy(addr.sun_path, options_.socketPath.c_str(),
                options_.socketPath.size() + 1);

    listenFd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listenFd_ < 0)
        fatal("serve: socket: " + std::string(std::strerror(errno)));
    // A previous server instance may have left the path behind; a
    // live one will still hold the bind and we fail below.
    ::unlink(options_.socketPath.c_str());
    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) < 0) {
        int err = errno;
        ::close(listenFd_);
        listenFd_ = -1;
        fatal("serve: bind " + options_.socketPath + ": " +
              std::strerror(err));
    }
    if (::listen(listenFd_, 64) < 0) {
        int err = errno;
        ::close(listenFd_);
        listenFd_ = -1;
        fatal("serve: listen: " + std::string(std::strerror(err)));
    }
    if (::pipe(wakePipe_) < 0) {
        ::close(listenFd_);
        listenFd_ = -1;
        fatal("serve: pipe: " + std::string(std::strerror(errno)));
    }

    // The stats op analyzes the server's own spans; recording must
    // be on for them to exist. Restored on stop() so an embedding
    // process (tests) keeps its setting.
    obsWasEnabled_ = obs::enabled();
    obs::setEnabled(true);

    startTime_ = std::chrono::steady_clock::now();
    stopping_.store(false);
    stopRequested_ = false;
    started_ = true;

    demuxThread_ = std::thread([this] { demuxLoop(); });
    unsigned workers = options_.workers ? options_.workers : 1;
    poolThread_ = std::thread([this, workers] {
        // The request loops ride the same work-stealing pool the
        // batch paths use; each of the N tasks is one long-lived
        // loop, so the pool's N slots all stay busy serving.
        sim::parallelFor(workers, workers,
                         [this](std::size_t) { workerLoop(); });
    });
}

void
Server::wait()
{
    std::unique_lock<std::mutex> lock(waitMutex_);
    waitCv_.wait(lock, [this] { return stopRequested_; });
}

void
Server::requestStop()
{
    std::lock_guard<std::mutex> lock(waitMutex_);
    stopRequested_ = true;
    waitCv_.notify_all();
}

void
Server::stop()
{
    if (!started_)
        return;
    started_ = false;

    stopping_.store(true);
    // Wake the demux poll and every queue waiter.
    if (wakePipe_[1] >= 0) {
        char byte = 0;
        [[maybe_unused]] ssize_t n = ::write(wakePipe_[1], &byte, 1);
    }
    queueCv_.notify_all();

    if (demuxThread_.joinable())
        demuxThread_.join();
    if (poolThread_.joinable())
        poolThread_.join();

    if (listenFd_ >= 0) {
        ::close(listenFd_);
        listenFd_ = -1;
    }
    for (int i = 0; i < 2; ++i) {
        if (wakePipe_[i] >= 0) {
            ::close(wakePipe_[i]);
            wakePipe_[i] = -1;
        }
    }
    ::unlink(options_.socketPath.c_str());
    obs::setEnabled(obsWasEnabled_);
    requestStop();
}

void
Server::demuxLoop()
{
    std::unordered_map<int, std::shared_ptr<Conn>> conns;

    while (!stopping_.load(std::memory_order_relaxed)) {
        std::vector<pollfd> fds;
        fds.push_back({listenFd_, POLLIN, 0});
        fds.push_back({wakePipe_[0], POLLIN, 0});
        for (const auto &entry : conns)
            fds.push_back({entry.first, POLLIN, 0});

        if (::poll(fds.data(), fds.size(), -1) < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if (stopping_.load(std::memory_order_relaxed))
            break;

        if (fds[0].revents & POLLIN) {
            int fd = ::accept(listenFd_, nullptr, nullptr);
            if (fd >= 0) {
                auto conn = std::make_shared<Conn>();
                conn->fd = fd;
                conns.emplace(fd, std::move(conn));
            }
        }

        for (std::size_t i = 2; i < fds.size(); ++i) {
            if (!(fds[i].revents & (POLLIN | POLLHUP | POLLERR)))
                continue;
            auto it = conns.find(fds[i].fd);
            if (it == conns.end())
                continue;
            std::shared_ptr<Conn> conn = it->second;

            char buf[4096];
            ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
            if (n <= 0) {
                // EOF or error: no more requests will arrive. The
                // Conn stays alive (shared_ptr) until in-flight
                // responses finish; open=false makes them no-ops.
                conn->open.store(false);
                conns.erase(it);
                continue;
            }
            conn->inbuf.append(buf, static_cast<std::size_t>(n));

            std::size_t start = 0;
            while (true) {
                std::size_t nl = conn->inbuf.find('\n', start);
                if (nl == std::string::npos)
                    break;
                std::string line =
                    conn->inbuf.substr(start, nl - start);
                if (!line.empty() && line.back() == '\r')
                    line.pop_back();
                start = nl + 1;
                if (line.empty())
                    continue;
                std::lock_guard<std::mutex> lock(queueMutex_);
                queue_.push_back(Job{conn, std::move(line)});
                queueCv_.notify_one();
            }
            conn->inbuf.erase(0, start);

            if (conn->inbuf.size() > options_.maxRequestBytes) {
                writeLine(*conn,
                          errorEnvelope(0, "parse",
                                        "request line exceeds " +
                                            std::to_string(
                                                options_
                                                    .maxRequestBytes) +
                                            " bytes"));
                conn->open.store(false);
                conns.erase(conn->fd);
            }
        }
    }
}

void
Server::workerLoop()
{
    while (true) {
        Job job;
        {
            std::unique_lock<std::mutex> lock(queueMutex_);
            queueCv_.wait(lock, [this] {
                return stopping_.load(std::memory_order_relaxed) ||
                       !queue_.empty();
            });
            if (queue_.empty()) {
                if (stopping_.load(std::memory_order_relaxed))
                    return;
                continue;
            }
            job = std::move(queue_.front());
            queue_.pop_front();
        }
        handleJob(job);
    }
}

void
Server::handleJob(const Job &job)
{
    auto begin = std::chrono::steady_clock::now();

    Request request;
    std::string parseError;
    if (!parseRequest(job.line, request, parseError)) {
        recordLatency(RequestOp::Ping, 0.0, /*failed=*/true);
        writeLine(*job.conn,
                  errorEnvelope(0, "parse", parseError));
        return;
    }

    // Capture this request's pipeline diagnostics on this thread
    // (requests run their analysis at jobs=requestJobs, default 1,
    // so the whole request stays here) and span it for the server's
    // own stats/self-trace.
    trace::CollectingDiagnosticSink sink;
    trace::ScopedThreadDiagnosticSink scope(sink);
    obs::Span span("serve.request", obs::SpanKind::Serve,
                   static_cast<std::uint64_t>(request.op));

    std::string envelope;
    bool failed = false;
    try {
        std::ostringstream doc;
        switch (request.op) {
          case RequestOp::Ping:
            doc << "{\"schema\":" << report::kSchemaVersion
                << ",\"command\":\"ping\"}";
            break;
          case RequestOp::Stats:
            doc << statsDocument();
            break;
          case RequestOp::Shutdown:
            doc << "{\"schema\":" << report::kSchemaVersion
                << ",\"command\":\"shutdown\"}";
            break;
          case RequestOp::Analyze: {
            request.trace.jobs = options_.requestJobs;
            analysis::ServiceAnalyzeResult result =
                service_.analyze(request.trace);
            report::writeAnalyzeDocument(doc, result);
            break;
          }
          case RequestOp::Query: {
            analysis::ServiceQueryRequest sreq;
            sreq.trace = request.trace;
            sreq.trace.jobs = options_.requestJobs;
            sreq.specs = request.specs;
            sreq.explain = request.explain;
            analysis::ServiceQueryResult result =
                service_.query(sreq);
            report::writeQueryDocument(doc, result);
            break;
          }
          case RequestOp::Bottlenecks: {
            analysis::ServiceBottlenecksRequest sreq;
            sreq.trace = request.trace;
            sreq.trace.jobs = options_.requestJobs;
            sreq.top = request.top;
            analysis::ServiceBottlenecksResult result =
                service_.bottlenecks(sreq);
            report::writeBottlenecksDocument(doc, result);
            break;
          }
          case RequestOp::Series: {
            analysis::ServiceSeriesRequest sreq;
            sreq.trace = request.trace;
            sreq.trace.jobs = options_.requestJobs;
            sreq.kind = request.seriesKind;
            sreq.window = request.window;
            analysis::ServiceSeriesResult result =
                service_.series(sreq);
            report::writeSeriesDocument(doc, result);
            break;
          }
          case RequestOp::Frames: {
            analysis::ServiceFramesRequest sreq;
            sreq.trace = request.trace;
            sreq.trace.jobs = options_.requestJobs;
            analysis::ServiceFramesResult result =
                service_.frames(sreq);
            report::writeFramesDocument(doc, result);
            break;
          }
        }
        envelope = successEnvelope(request.id, doc.str(),
                                   sink.diagnostics());
    } catch (const trace::TraceParseError &e) {
        envelope = errorEnvelope(request.id, "trace", e.what());
        failed = true;
    } catch (const FatalError &e) {
        envelope = errorEnvelope(request.id, "fatal", e.what());
        failed = true;
    } catch (const std::exception &e) {
        envelope = errorEnvelope(request.id, "internal", e.what());
        failed = true;
    }

    // Count the request before its response becomes visible: a
    // client that has read a reply must find that request in the
    // stats op's counters, whichever worker serves the stats call.
    double ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - begin)
                    .count();
    recordLatency(request.op, ms, failed);

    writeLine(*job.conn, envelope);

    if (request.op == RequestOp::Shutdown)
        requestStop();
}

void
Server::writeLine(Conn &conn, const std::string &line)
{
    if (!conn.open.load(std::memory_order_relaxed))
        return;
    std::string framed = line;
    framed += '\n';
    std::lock_guard<std::mutex> lock(conn.writeMutex);
    std::size_t sent = 0;
    while (sent < framed.size()) {
        ssize_t n = ::send(conn.fd, framed.data() + sent,
                           framed.size() - sent, MSG_NOSIGNAL);
        if (n <= 0)
            return; // peer went away; the demux loop will notice
        sent += static_cast<std::size_t>(n);
    }
}

void
Server::recordLatency(RequestOp op, double ms, bool failed)
{
    std::lock_guard<std::mutex> lock(statsMutex_);
    OpStats &stats = opStats_[static_cast<unsigned>(op)];
    ++stats.count;
    if (failed)
        ++stats.errors;
    if (stats.samplesMs.size() < kMaxLatencySamples) {
        stats.samplesMs.push_back(ms);
    } else {
        stats.samplesMs[stats.next] = ms;
        stats.next = (stats.next + 1) % kMaxLatencySamples;
    }
}

std::string
Server::statsDocument()
{
    // The server analyzes itself: drain the obs rings and push the
    // spans through the ordinary self-trace -> Session pipeline to
    // get the service loop's TLP since the last stats call.
    double selfTlp = 0.0;
    std::uint64_t selfSpans = 0;
    {
        obs::Snapshot snapshot = obs::collect();
        selfSpans = snapshot.spans.size();
        if (!snapshot.spans.empty()) {
            analysis::Session session(
                obs::toTraceBundle(snapshot));
            trace::PidSet pids =
                session.pids(obs::kSelfTracePrefix);
            if (!pids.empty())
                selfTlp = session.concurrency(pids).tlp();
        }
    }

    double uptime = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - startTime_)
                        .count();
    analysis::SessionCacheStats cache = service_.cacheStats();

    std::ostringstream out;
    report::JsonWriter json(out);
    json.beginObject()
        .field("schema", report::kSchemaVersion)
        .field("command", std::string("server_stats"))
        .field("uptime_s", uptime)
        .field("workers", std::uint64_t(options_.workers))
        .field("self_tlp", selfTlp)
        .field("self_spans", selfSpans);

    json.key("cache");
    json.beginObject()
        .field("hits", cache.hits)
        .field("misses", cache.misses)
        .field("ingests", cache.ingests)
        .field("evictions", cache.evictions)
        .field("invalidations", cache.invalidations)
        .field("resident_bytes", cache.residentBytes)
        .field("entries", cache.entries)
        .endObject();

    json.key("requests");
    json.beginObject();
    {
        std::lock_guard<std::mutex> lock(statsMutex_);
        for (unsigned op = 0; op < 8; ++op) {
            const OpStats &stats = opStats_[op];
            if (stats.count == 0)
                continue;
            json.key(requestOpName(static_cast<RequestOp>(op)));
            json.beginObject()
                .field("count", stats.count)
                .field("errors", stats.errors)
                .field("p50_ms",
                       percentile(stats.samplesMs, 50.0))
                .field("p90_ms",
                       percentile(stats.samplesMs, 90.0))
                .field("p99_ms",
                       percentile(stats.samplesMs, 99.0))
                .endObject();
        }
    }
    json.endObject();
    json.endObject();
    return out.str();
}

} // namespace deskpar::serve

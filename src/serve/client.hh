/**
 * @file
 * Line-oriented client for the serve socket, shared by the
 * `deskpar client` subcommand, the server tests, and bench_serve.
 * Blocking, one connection, no framing beyond newline.
 */

#ifndef DESKPAR_SERVE_CLIENT_HH
#define DESKPAR_SERVE_CLIENT_HH

#include <string>

namespace deskpar::serve {

class Client
{
  public:
    Client() = default;
    ~Client();

    Client(const Client &) = delete;
    Client &operator=(const Client &) = delete;

    /** Connect to @p socketPath. False + @p error on failure. */
    bool connect(const std::string &socketPath, std::string &error);

    /** Send @p line (the trailing '\n' is added here). */
    bool sendLine(const std::string &line, std::string &error);

    /** Read one response line (without the '\n'). */
    bool readLine(std::string &line, std::string &error);

    /** sendLine + readLine. */
    bool call(const std::string &request, std::string &response,
              std::string &error);

    void close();

    bool connected() const { return fd_ >= 0; }

  private:
    int fd_ = -1;
    /** Bytes read past the last returned line. */
    std::string buffer_;
};

} // namespace deskpar::serve

#endif // DESKPAR_SERVE_CLIENT_HH

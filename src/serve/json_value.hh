/**
 * @file
 * Minimal JSON reader for the serve protocol.
 *
 * The server reads one request object per line; requests are small
 * (a path, a few strings, a few numbers), so a simple recursive-
 * descent parser into a tree value is the right tool — no external
 * dependency, no streaming. Writing stays on report::JsonWriter;
 * this is the read side only.
 *
 * Deviations from full RFC 8259 are rejections, not extensions:
 * depth is capped (stack safety against adversarial input on a
 * local socket), trailing garbage after the top-level value is an
 * error, and \uXXXX escapes (including surrogate pairs) decode to
 * UTF-8.
 */

#ifndef DESKPAR_SERVE_JSON_VALUE_HH
#define DESKPAR_SERVE_JSON_VALUE_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace deskpar::serve {

class JsonValue
{
  public:
    enum class Type { Null, Bool, Number, String, Array, Object };

    JsonValue() = default;

    Type type() const { return type_; }
    bool isNull() const { return type_ == Type::Null; }
    bool isBool() const { return type_ == Type::Bool; }
    bool isNumber() const { return type_ == Type::Number; }
    bool isString() const { return type_ == Type::String; }
    bool isArray() const { return type_ == Type::Array; }
    bool isObject() const { return type_ == Type::Object; }

    bool boolean() const { return bool_; }
    double number() const { return number_; }
    const std::string &string() const { return string_; }
    const std::vector<JsonValue> &array() const { return array_; }

    /** Object member, or nullptr when absent (or not an object). */
    const JsonValue *find(const std::string &key) const;

    /** @{ Typed member lookups with defaults for optional fields. */
    std::string stringOr(const std::string &key,
                         const std::string &fallback) const;
    double numberOr(const std::string &key, double fallback) const;
    bool boolOr(const std::string &key, bool fallback) const;
    /** @} */

  private:
    friend class JsonParser;

    Type type_ = Type::Null;
    bool bool_ = false;
    double number_ = 0.0;
    std::string string_;
    std::vector<JsonValue> array_;
    /** Last duplicate key wins, like every permissive reader. */
    std::map<std::string, JsonValue> object_;
};

/**
 * Parse @p text as one complete JSON value. On failure returns
 * false and sets @p error to a position-tagged message; @p out is
 * unspecified.
 */
bool parseJson(std::string_view text, JsonValue &out,
               std::string &error);

} // namespace deskpar::serve

#endif // DESKPAR_SERVE_JSON_VALUE_HH

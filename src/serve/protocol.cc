#include "serve/protocol.hh"

#include <cmath>
#include <sstream>

#include "report/documents.hh"
#include "report/json.hh"
#include "serve/json_value.hh"

namespace deskpar::serve {

namespace {

/** Positive integral number member, with range/type validation. */
bool
getCount(const JsonValue &object, const char *key,
         std::uint64_t &out, std::string &error)
{
    const JsonValue *v = object.find(key);
    if (!v)
        return true; // optional; caller keeps the default
    if (!v->isNumber() || v->number() < 0 ||
        v->number() != std::floor(v->number()) ||
        v->number() > 9e15) {
        error = std::string("field '") + key +
                "' must be a non-negative integer";
        return false;
    }
    out = static_cast<std::uint64_t>(v->number());
    return true;
}

} // namespace

const char *
requestOpName(RequestOp op)
{
    switch (op) {
      case RequestOp::Ping:
        return "ping";
      case RequestOp::Stats:
        return "stats";
      case RequestOp::Shutdown:
        return "shutdown";
      case RequestOp::Analyze:
        return "analyze";
      case RequestOp::Query:
        return "query";
      case RequestOp::Bottlenecks:
        return "bottlenecks";
      case RequestOp::Series:
        return "series";
      case RequestOp::Frames:
        return "frames";
    }
    return "ping";
}

bool
parseRequest(const std::string &line, Request &out, std::string &error)
{
    JsonValue root;
    if (!parseJson(line, root, error))
        return false;
    if (!root.isObject()) {
        error = "request must be a JSON object";
        return false;
    }

    const JsonValue *op = root.find("op");
    if (!op || !op->isString()) {
        error = "missing string field 'op'";
        return false;
    }
    const std::string &name = op->string();
    if (name == "ping") {
        out.op = RequestOp::Ping;
    } else if (name == "stats") {
        out.op = RequestOp::Stats;
    } else if (name == "shutdown") {
        out.op = RequestOp::Shutdown;
    } else if (name == "analyze") {
        out.op = RequestOp::Analyze;
    } else if (name == "query") {
        out.op = RequestOp::Query;
    } else if (name == "bottlenecks") {
        out.op = RequestOp::Bottlenecks;
    } else if (name == "series") {
        out.op = RequestOp::Series;
    } else if (name == "frames") {
        out.op = RequestOp::Frames;
    } else {
        error = "unknown op '" + name + "'";
        return false;
    }

    if (!getCount(root, "id", out.id, error))
        return false;

    bool wantsTrace = out.op == RequestOp::Analyze ||
                      out.op == RequestOp::Query ||
                      out.op == RequestOp::Bottlenecks ||
                      out.op == RequestOp::Series ||
                      out.op == RequestOp::Frames;
    if (!wantsTrace)
        return true;

    const JsonValue *trace = root.find("trace");
    if (!trace || !trace->isString() || trace->string().empty()) {
        error = std::string("op '") + name +
                "' needs a string field 'trace'";
        return false;
    }
    out.trace.path = trace->string();
    out.trace.appPrefix = root.stringOr("app", "");
    out.trace.lenient = root.boolOr("lenient", false);
    std::uint64_t jobs = out.trace.jobs;
    if (!getCount(root, "jobs", jobs, error))
        return false;
    out.trace.jobs = static_cast<unsigned>(jobs);

    if (out.op == RequestOp::Query) {
        const JsonValue *specs = root.find("specs");
        if (!specs || !specs->isArray() || specs->array().empty()) {
            error = "op 'query' needs a non-empty array 'specs'";
            return false;
        }
        for (const JsonValue &spec : specs->array()) {
            if (!spec.isString()) {
                error = "'specs' entries must be strings";
                return false;
            }
            out.specs.push_back(spec.string());
        }
        out.explain = root.boolOr("explain", false);
    }

    if (out.op == RequestOp::Bottlenecks) {
        std::uint64_t top = out.top;
        if (!getCount(root, "top", top, error))
            return false;
        out.top = static_cast<std::size_t>(top);
    }

    if (out.op == RequestOp::Series) {
        std::string kind = root.stringOr("kind", "tlp");
        if (kind == "tlp") {
            out.seriesKind = analysis::ServiceSeriesKind::Tlp;
        } else if (kind == "concurrency") {
            out.seriesKind =
                analysis::ServiceSeriesKind::Concurrency;
        } else if (kind == "gpu_util") {
            out.seriesKind = analysis::ServiceSeriesKind::GpuUtil;
        } else if (kind == "frame_rate") {
            out.seriesKind = analysis::ServiceSeriesKind::FrameRate;
        } else {
            error = "unknown series kind '" + kind + "'";
            return false;
        }
        std::uint64_t window = 0;
        if (!getCount(root, "window_ns", window, error))
            return false;
        if (window == 0) {
            error = "op 'series' needs a positive 'window_ns'";
            return false;
        }
        out.window = window;
    }
    return true;
}

std::string
successEnvelope(std::uint64_t id, const std::string &resultDocument,
                const std::vector<trace::Diagnostic> &diagnostics)
{
    std::ostringstream out;
    report::JsonWriter json(out);
    json.beginObject()
        .field("schema", report::kSchemaVersion)
        .field("id", id)
        .field("ok", true);
    json.beginArray("diagnostics");
    for (const trace::Diagnostic &d : diagnostics) {
        json.beginObject()
            .field("severity",
                   std::string(trace::severityName(d.severity)))
            .field("component", d.component)
            .field("message", d.detail.str())
            .endObject();
    }
    json.endArray();
    json.endObject();
    // Splice the pre-rendered result document in as the LAST member
    // so extractResult can return it byte-exactly. The writer would
    // re-escape it as a string, so close the object and reopen the
    // final brace by hand.
    std::string envelope = out.str();
    envelope.pop_back(); // trailing '}'
    envelope += ",\"result\":";
    envelope += resultDocument.empty() ? "{}" : resultDocument;
    envelope += '}';
    return envelope;
}

std::string
errorEnvelope(std::uint64_t id, const std::string &kind,
              const std::string &message)
{
    std::ostringstream out;
    report::JsonWriter json(out);
    json.beginObject()
        .field("schema", report::kSchemaVersion)
        .field("id", id)
        .field("ok", false);
    json.key("error");
    json.beginObject()
        .field("kind", kind)
        .field("message", message)
        .endObject();
    json.endObject();
    return out.str();
}

bool
extractResult(const std::string &envelope, std::string &document)
{
    // Scan the top level of the envelope object tracking string /
    // escape state and nesting depth; the "result" key at depth 1 is
    // the document. This cannot be spoofed by escaped content inside
    // string values (they never leave inString state).
    if (envelope.empty() || envelope.front() != '{')
        return false;
    int depth = 0;
    bool inString = false;
    bool escaped = false;
    const std::string marker = "\"result\":";
    for (std::size_t i = 0; i < envelope.size(); ++i) {
        char c = envelope[i];
        if (inString) {
            if (escaped)
                escaped = false;
            else if (c == '\\')
                escaped = true;
            else if (c == '"')
                inString = false;
            continue;
        }
        if (c == '"') {
            if (depth == 1 &&
                envelope.compare(i, marker.size(), marker) == 0) {
                std::size_t start = i + marker.size();
                // The value runs to the envelope's closing brace.
                if (start >= envelope.size() ||
                    envelope.back() != '}')
                    return false;
                document =
                    envelope.substr(start,
                                    envelope.size() - 1 - start);
                return !document.empty();
            }
            inString = true;
            continue;
        }
        if (c == '{' || c == '[')
            ++depth;
        else if (c == '}' || c == ']')
            --depth;
    }
    return false;
}

} // namespace deskpar::serve

#include "serve/client.hh"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace deskpar::serve {

Client::~Client()
{
    close();
}

void
Client::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    buffer_.clear();
}

bool
Client::connect(const std::string &socketPath, std::string &error)
{
    close();
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (socketPath.size() >= sizeof(addr.sun_path)) {
        error = "socket path too long: " + socketPath;
        return false;
    }
    std::memcpy(addr.sun_path, socketPath.c_str(),
                socketPath.size() + 1);

    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) {
        error = std::string("socket: ") + std::strerror(errno);
        return false;
    }
    if (::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) < 0) {
        error = "connect " + socketPath + ": " +
                std::strerror(errno);
        close();
        return false;
    }
    return true;
}

bool
Client::sendLine(const std::string &line, std::string &error)
{
    if (fd_ < 0) {
        error = "not connected";
        return false;
    }
    std::string framed = line;
    framed += '\n';
    std::size_t sent = 0;
    while (sent < framed.size()) {
        ssize_t n = ::send(fd_, framed.data() + sent,
                           framed.size() - sent, MSG_NOSIGNAL);
        if (n <= 0) {
            error = std::string("send: ") + std::strerror(errno);
            return false;
        }
        sent += static_cast<std::size_t>(n);
    }
    return true;
}

bool
Client::readLine(std::string &line, std::string &error)
{
    if (fd_ < 0) {
        error = "not connected";
        return false;
    }
    while (true) {
        std::size_t nl = buffer_.find('\n');
        if (nl != std::string::npos) {
            line = buffer_.substr(0, nl);
            buffer_.erase(0, nl + 1);
            return true;
        }
        char buf[4096];
        ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
        if (n == 0) {
            error = "server closed the connection";
            return false;
        }
        if (n < 0) {
            error = std::string("recv: ") + std::strerror(errno);
            return false;
        }
        buffer_.append(buf, static_cast<std::size_t>(n));
    }
}

bool
Client::call(const std::string &request, std::string &response,
             std::string &error)
{
    return sendLine(request, error) && readLine(response, error);
}

} // namespace deskpar::serve

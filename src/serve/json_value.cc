#include "serve/json_value.hh"

#include <cctype>
#include <cstdlib>
#include <cstring>

namespace deskpar::serve {

namespace {

/** Nesting cap: a local protocol never needs more; a hostile line
 *  must not be able to chew arbitrary parser stack. */
constexpr int kMaxDepth = 64;

} // namespace

/** The recursive-descent reader behind parseJson (befriended by
 *  JsonValue so it can fill the private members directly). */
class JsonParser
{
  public:
    JsonParser(std::string_view text, std::string &error)
        : text_(text), error_(error)
    {}

    bool
    parse(JsonValue &out)
    {
        skipWs();
        if (!parseValue(out, 0))
            return false;
        skipWs();
        if (pos_ != text_.size())
            return fail("trailing characters after JSON value");
        return true;
    }

  private:
    bool
    fail(const std::string &what)
    {
        error_ = "json: offset " + std::to_string(pos_) + ": " + what;
        return false;
    }

    void
    skipWs()
    {
        while (pos_ < text_.size()) {
            char c = text_[pos_];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r')
                break;
            ++pos_;
        }
    }

    bool
    consume(char expected)
    {
        if (pos_ < text_.size() && text_[pos_] == expected) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool
    literal(const char *word, std::size_t len)
    {
        if (text_.size() - pos_ < len ||
            text_.compare(pos_, len, word) != 0)
            return false;
        pos_ += len;
        return true;
    }

    static void
    appendUtf8(std::string &out, std::uint32_t cp)
    {
        if (cp < 0x80) {
            out += static_cast<char>(cp);
        } else if (cp < 0x800) {
            out += static_cast<char>(0xc0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3f));
        } else if (cp < 0x10000) {
            out += static_cast<char>(0xe0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (cp & 0x3f));
        } else {
            out += static_cast<char>(0xf0 | (cp >> 18));
            out += static_cast<char>(0x80 | ((cp >> 12) & 0x3f));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (cp & 0x3f));
        }
    }

    bool
    parseHex4(std::uint32_t &out)
    {
        if (text_.size() - pos_ < 4)
            return fail("truncated \\u escape");
        out = 0;
        for (int i = 0; i < 4; ++i) {
            char c = text_[pos_++];
            out <<= 4;
            if (c >= '0' && c <= '9')
                out |= static_cast<std::uint32_t>(c - '0');
            else if (c >= 'a' && c <= 'f')
                out |= static_cast<std::uint32_t>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                out |= static_cast<std::uint32_t>(c - 'A' + 10);
            else
                return fail("bad hex digit in \\u escape");
        }
        return true;
    }

    bool
    parseString(std::string &out)
    {
        if (!consume('"'))
            return fail("expected string");
        out.clear();
        while (true) {
            if (pos_ >= text_.size())
                return fail("unterminated string");
            char c = text_[pos_++];
            if (c == '"')
                return true;
            if (static_cast<unsigned char>(c) < 0x20)
                return fail("raw control character in string");
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                return fail("unterminated escape");
            char esc = text_[pos_++];
            switch (esc) {
              case '"':
                out += '"';
                break;
              case '\\':
                out += '\\';
                break;
              case '/':
                out += '/';
                break;
              case 'b':
                out += '\b';
                break;
              case 'f':
                out += '\f';
                break;
              case 'n':
                out += '\n';
                break;
              case 'r':
                out += '\r';
                break;
              case 't':
                out += '\t';
                break;
              case 'u': {
                std::uint32_t cp = 0;
                if (!parseHex4(cp))
                    return false;
                if (cp >= 0xd800 && cp <= 0xdbff) {
                    // High surrogate: a low surrogate must follow.
                    if (!literal("\\u", 2))
                        return fail("unpaired high surrogate");
                    std::uint32_t low = 0;
                    if (!parseHex4(low))
                        return false;
                    if (low < 0xdc00 || low > 0xdfff)
                        return fail("bad low surrogate");
                    cp = 0x10000 + ((cp - 0xd800) << 10) +
                         (low - 0xdc00);
                } else if (cp >= 0xdc00 && cp <= 0xdfff) {
                    return fail("unpaired low surrogate");
                }
                appendUtf8(out, cp);
                break;
              }
              default:
                return fail("unknown escape character");
            }
        }
    }

    bool
    parseNumber(JsonValue &out)
    {
        std::size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(
                    text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            ++pos_;
        if (pos_ == start)
            return fail("expected number");
        std::string token(text_.substr(start, pos_ - start));
        char *end = nullptr;
        double value = std::strtod(token.c_str(), &end);
        if (!end || *end != '\0')
            return fail("malformed number");
        out.type_ = JsonValue::Type::Number;
        out.number_ = value;
        return true;
    }

    bool
    parseValue(JsonValue &out, int depth)
    {
        if (depth > kMaxDepth)
            return fail("nesting too deep");
        skipWs();
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        char c = text_[pos_];
        if (c == '{') {
            ++pos_;
            out.type_ = JsonValue::Type::Object;
            skipWs();
            if (consume('}'))
                return true;
            while (true) {
                skipWs();
                std::string key;
                if (!parseString(key))
                    return false;
                skipWs();
                if (!consume(':'))
                    return fail("expected ':' after object key");
                JsonValue value;
                if (!parseValue(value, depth + 1))
                    return false;
                out.object_[key] = std::move(value);
                skipWs();
                if (consume(','))
                    continue;
                if (consume('}'))
                    return true;
                return fail("expected ',' or '}' in object");
            }
        }
        if (c == '[') {
            ++pos_;
            out.type_ = JsonValue::Type::Array;
            skipWs();
            if (consume(']'))
                return true;
            while (true) {
                JsonValue value;
                if (!parseValue(value, depth + 1))
                    return false;
                out.array_.push_back(std::move(value));
                skipWs();
                if (consume(','))
                    continue;
                if (consume(']'))
                    return true;
                return fail("expected ',' or ']' in array");
            }
        }
        if (c == '"') {
            out.type_ = JsonValue::Type::String;
            return parseString(out.string_);
        }
        if (literal("true", 4)) {
            out.type_ = JsonValue::Type::Bool;
            out.bool_ = true;
            return true;
        }
        if (literal("false", 5)) {
            out.type_ = JsonValue::Type::Bool;
            out.bool_ = false;
            return true;
        }
        if (literal("null", 4)) {
            out.type_ = JsonValue::Type::Null;
            return true;
        }
        return parseNumber(out);
    }

    std::string_view text_;
    std::string &error_;
    std::size_t pos_ = 0;
};

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (type_ != Type::Object)
        return nullptr;
    auto it = object_.find(key);
    return it != object_.end() ? &it->second : nullptr;
}

std::string
JsonValue::stringOr(const std::string &key,
                    const std::string &fallback) const
{
    const JsonValue *v = find(key);
    return v && v->isString() ? v->string() : fallback;
}

double
JsonValue::numberOr(const std::string &key, double fallback) const
{
    const JsonValue *v = find(key);
    return v && v->isNumber() ? v->number() : fallback;
}

bool
JsonValue::boolOr(const std::string &key, bool fallback) const
{
    const JsonValue *v = find(key);
    return v && v->isBool() ? v->boolean() : fallback;
}

bool
parseJson(std::string_view text, JsonValue &out, std::string &error)
{
    return JsonParser(text, error).parse(out);
}

} // namespace deskpar::serve

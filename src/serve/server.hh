/**
 * @file
 * `deskpar serve`: a resident trace-analysis daemon.
 *
 * One process keeps hot TraceIndexes in memory (analysis::Service's
 * byte-bounded SessionCache) and answers requests over a local
 * AF_UNIX stream socket, newline-delimited JSON both ways
 * (serve/protocol.hh). The analysis CLI pays a full ingest per
 * invocation; a serve client pays it once per file, then every
 * further analyze/query/bottlenecks request against that file is a
 * cache hit.
 *
 * Architecture:
 *
 *   demux thread --- poll(listen fd, wake pipe, conns)
 *        |              accepts, buffers, splits request lines
 *        v
 *   MPMC job queue
 *        |
 *        v
 *   worker pool --- sim::parallelFor(workers, workers, loop):
 *                   the same work-stealing pool the batch paths use,
 *                   each slot running a long-lived request loop
 *
 * Each request executes under an obs::Span(SpanKind::Serve) and a
 * thread-scoped diagnostic sink, so the response envelope carries
 * exactly the diagnostics that request produced (requests default to
 * jobs=1, keeping the whole request on one thread) and the server
 * can report its *own* TLP: the stats op feeds the drained span
 * snapshot through obs::toTraceBundle and the ordinary analysis
 * pipeline — the server measures itself with the tool it serves.
 *
 * Responses on one connection are written in completion order under
 * a per-connection write lock; the request id lets a pipelining
 * client re-associate them.
 */

#ifndef DESKPAR_SERVE_SERVER_HH
#define DESKPAR_SERVE_SERVER_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "analysis/service.hh"
#include "serve/protocol.hh"

namespace deskpar::serve {

struct ServerOptions
{
    /** AF_UNIX socket path (kept short: the ABI caps it at ~107). */
    std::string socketPath;
    /** Request worker threads. */
    unsigned workers = 4;
    /** Resident session-cache budget. */
    std::uint64_t cacheBytes = 256ull << 20;
    /**
     * Analysis threads per request. The default 1 keeps each request
     * on its own pool worker: concurrency comes from serving many
     * requests, and per-request diagnostics stay exact.
     */
    unsigned requestJobs = 1;
    /** Reject a connection whose pending line exceeds this. */
    std::size_t maxRequestBytes = 1u << 20;
};

class Server
{
  public:
    explicit Server(const ServerOptions &options);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /**
     * Bind, listen, and launch the demux thread and worker pool.
     * Throws FatalError when the socket cannot be created (path too
     * long, address in use, permissions).
     */
    void start();

    /** Block until a shutdown request (or stop()) arrives. */
    void wait();

    /**
     * Drain and join everything, close the socket, unlink the path.
     * Idempotent; must not be called from a request worker — the
     * shutdown op only signals wait(), the waiting thread stops.
     */
    void stop();

    const std::string &socketPath() const
    {
        return options_.socketPath;
    }

    analysis::Service &service() { return service_; }

    /**
     * The stats op's document: uptime, per-op request counts and
     * latency percentiles, session-cache counters, and the server's
     * own TLP from the self-trace spans accumulated since the last
     * stats call (collecting drains the obs rings).
     */
    std::string statsDocument();

  private:
    struct Conn;
    struct Job
    {
        std::shared_ptr<Conn> conn;
        std::string line;
    };

    /** Latency/err accounting for one RequestOp. */
    struct OpStats
    {
        std::uint64_t count = 0;
        std::uint64_t errors = 0;
        /** Capped sample ring of request latencies (ms). */
        std::vector<double> samplesMs;
        std::size_t next = 0;
    };

    void demuxLoop();
    void workerLoop();
    void handleJob(const Job &job);
    void writeLine(Conn &conn, const std::string &line);
    void recordLatency(RequestOp op, double ms, bool failed);
    void requestStop();

    ServerOptions options_;
    analysis::Service service_;

    int listenFd_ = -1;
    int wakePipe_[2] = {-1, -1};
    bool started_ = false;
    bool obsWasEnabled_ = false;

    std::thread demuxThread_;
    /** Runs parallelFor hosting the worker loops. */
    std::thread poolThread_;

    std::mutex queueMutex_;
    std::condition_variable queueCv_;
    std::deque<Job> queue_;
    std::atomic<bool> stopping_{false};

    std::mutex waitMutex_;
    std::condition_variable waitCv_;
    bool stopRequested_ = false;

    std::mutex statsMutex_;
    OpStats opStats_[8];
    std::chrono::steady_clock::time_point startTime_;
};

} // namespace deskpar::serve

#endif // DESKPAR_SERVE_SERVER_HH

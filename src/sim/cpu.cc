#include "sim/cpu.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace deskpar::sim {

double
CpuSpec::clockGhz(unsigned busyPhysicalCores) const
{
    if (busyPhysicalCores <= 2 || physicalCores <= 2)
        return turboClockGhz;
    if (busyPhysicalCores >= physicalCores)
        return baseClockGhz;
    // Linear taper from full turbo at 2 busy cores to base at all-busy.
    double span = static_cast<double>(physicalCores - 2);
    double over = static_cast<double>(busyPhysicalCores - 2);
    return turboClockGhz - (turboClockGhz - baseClockGhz) * (over / span);
}

CpuSpec
CpuSpec::i78700K()
{
    CpuSpec spec;
    spec.model = "Intel Core i7-8700K";
    spec.physicalCores = 6;
    spec.threadsPerCore = 2;
    spec.baseClockGhz = 3.70;
    spec.turboClockGhz = 4.70;
    spec.llcMiB = 12;
    spec.ramGiB = 64;
    spec.tdpWatts = 95.0;
    spec.idleWatts = 8.0;
    return spec;
}

CpuSpec
CpuSpec::xeon2010()
{
    CpuSpec spec;
    spec.model = "2010 dual-socket Xeon (one socket)";
    spec.physicalCores = 4;
    spec.threadsPerCore = 2;
    spec.baseClockGhz = 2.26;
    spec.turboClockGhz = 2.26;
    spec.llcMiB = 8;
    spec.ramGiB = 6;
    return spec;
}

std::vector<bool>
CpuTopology::maskSmt(unsigned n_logical) const
{
    if (spec_.threadsPerCore != 2)
        fatal("CpuTopology::maskSmt: package has no SMT");
    if (n_logical == 0 || n_logical % 2 != 0 ||
        n_logical > numLogicalCpus()) {
        fatal("CpuTopology::maskSmt: bad logical-CPU count");
    }
    std::vector<bool> mask(numLogicalCpus(), false);
    for (unsigned i = 0; i < n_logical; ++i)
        mask[i] = true;
    return mask;
}

std::vector<bool>
CpuTopology::maskNoSmt(unsigned n_physical) const
{
    if (n_physical == 0 || n_physical > spec_.physicalCores)
        fatal("CpuTopology::maskNoSmt: bad physical-core count");
    std::vector<bool> mask(numLogicalCpus(), false);
    for (unsigned core = 0; core < n_physical; ++core)
        mask[core * spec_.threadsPerCore] = true;
    return mask;
}

} // namespace deskpar::sim

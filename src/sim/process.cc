#include "sim/process.hh"

#include <utility>

#include "sim/logging.hh"
#include "sim/machine.hh"

namespace deskpar::sim {

SimProcess::SimProcess(Machine &machine, Pid pid, std::string name,
                       double smt_friendliness, Rng rng)
    : machine_(machine), pid_(pid), name_(std::move(name)),
      smtFriendliness_(smt_friendliness), rng_(std::move(rng))
{}

SimThread &
SimProcess::createThread(std::shared_ptr<ThreadBehavior> behavior,
                         std::string name)
{
    if (!behavior)
        fatal("SimProcess::createThread: null behavior");
    Tid tid = pid_ * 10000 + nextTid_++;
    auto thread = std::make_unique<SimThread>(*this, tid,
                                              std::move(name),
                                              std::move(behavior));
    SimThread &ref = *thread;
    threads_.push_back(std::move(thread));
    ref.start();
    return ref;
}

unsigned
SimProcess::liveThreads() const
{
    unsigned live = 0;
    for (const auto &thread : threads_) {
        if (!thread->terminated())
            ++live;
    }
    return live;
}

} // namespace deskpar::sim

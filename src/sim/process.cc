#include "sim/process.hh"

#include <utility>

#include "sim/logging.hh"
#include "sim/machine.hh"

namespace deskpar::sim {

SimProcess::SimProcess(Machine &machine, Pid pid, std::string name,
                       double smt_friendliness, Rng rng)
    : machine_(machine), pid_(pid), name_(std::move(name)),
      smtFriendliness_(smt_friendliness), rng_(std::move(rng))
{}

SimProcess::~SimProcess()
{
    // Thread runtimes live in the machine arena; run their
    // destructors here (reverse creation order) — the arena frees
    // the storage with the machine.
    for (auto it = threads_.rbegin(); it != threads_.rend(); ++it)
        machine_.arena().destroy(*it);
}

SimThread &
SimProcess::createThread(std::shared_ptr<ThreadBehavior> behavior,
                         std::string name)
{
    if (!behavior)
        fatal("SimProcess::createThread: null behavior");
    Tid tid = pid_ * 10000 + nextTid_++;
    SimThread *thread = machine_.arena().create<SimThread>(
        *this, tid, std::move(name), std::move(behavior));
    threads_.push_back(thread);
    thread->start();
    return *thread;
}

unsigned
SimProcess::liveThreads() const
{
    unsigned live = 0;
    for (const auto &thread : threads_) {
        if (!thread->terminated())
            ++live;
    }
    return live;
}

} // namespace deskpar::sim

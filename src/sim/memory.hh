/**
 * @file
 * Last-level-cache contention model (opt-in).
 *
 * The paper's Section V-C-2 explains SMT's transcoding behavior with
 * cache effects measured by VTune: co-running threads relieve LLC /
 * off-chip pressure by sharing data, but contend for intra-core
 * resources. The base machine captures the intra-core half with the
 * SMT friendliness factor; this model adds the chip-level half: when
 * the working sets of the *running* processes oversubscribe the LLC,
 * every running thread pays a throughput penalty (the extra-miss
 * stall time).
 *
 * The model is deliberately coarse — one footprint per process, a
 * smooth penalty curve — and disabled by default so the calibrated
 * Table II operating points stay put; enable it via
 * MachineConfig::llcModelEnabled to study cache-pressure scenarios
 * (see bench_ablation_machine section E).
 */

#ifndef DESKPAR_SIM_MEMORY_HH
#define DESKPAR_SIM_MEMORY_HH

#include "sim/types.hh"

namespace deskpar::sim {

/**
 * LLC contention calculator. Stateless aside from its parameters;
 * the scheduler feeds it the aggregate running footprint.
 */
class LlcModel
{
  public:
    /**
     * @param llc_mib       cache capacity (from CpuSpec)
     * @param penalty_slope throughput lost per unit of
     *                      oversubscription (dimensionless)
     * @param min_factor    floor on the throughput factor
     */
    LlcModel(double llc_mib, double penalty_slope = 0.30,
             double min_factor = 0.55)
        : llcMiB_(llc_mib), penaltySlope_(penalty_slope),
          minFactor_(min_factor)
    {}

    double llcMiB() const { return llcMiB_; }

    /**
     * Throughput factor in (0, 1] for the current aggregate working
     * set of running processes. 1.0 while the LLC holds everything;
     * smoothly decreasing once @p running_footprint_mib exceeds
     * capacity.
     */
    double
    throughputFactor(double running_footprint_mib) const
    {
        if (running_footprint_mib <= llcMiB_ || llcMiB_ <= 0.0)
            return 1.0;
        double oversub = running_footprint_mib / llcMiB_ - 1.0;
        double factor = 1.0 / (1.0 + penaltySlope_ * oversub);
        return factor < minFactor_ ? minFactor_ : factor;
    }

  private:
    double llcMiB_;
    double penaltySlope_;
    double minFactor_;
};

} // namespace deskpar::sim

#endif // DESKPAR_SIM_MEMORY_HH

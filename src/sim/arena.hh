/**
 * @file
 * Arena: a chunked bump allocator for simulation-lifetime objects.
 *
 * A Machine owns one Arena; everything whose lifetime equals the run
 * (SimThread runtimes today; any per-run state tomorrow) is carved
 * out of it instead of individually heap-allocated, so mid-run thread
 * spawns — the handbrake/premiere pool ramps spawn continuously — do
 * not touch malloc once the current chunk has room.
 *
 * Ownership rules (also in DESIGN.md section 16):
 *  - The arena owns raw memory, never object lifetimes. Whoever calls
 *    create<T>() must call destroy(ptr) (or the object's destructor)
 *    before the arena dies; the arena's own destructor only frees the
 *    chunks.
 *  - Arena memory is never returned or reused within a run; the whole
 *    arena is dropped with the Machine. This is deliberate: per-run
 *    peak footprint is small (threads are a few hundred bytes each)
 *    and a free-list would buy nothing but bookkeeping.
 *  - Not thread-safe. A Machine is single-threaded by construction;
 *    each suite-runner worker owns its own Machine and arena.
 */

#ifndef DESKPAR_SIM_ARENA_HH
#define DESKPAR_SIM_ARENA_HH

#include <cstddef>
#include <memory>
#include <new>
#include <utility>
#include <vector>

namespace deskpar::sim {

/**
 * Chunked bump allocator; see file comment for the ownership rules.
 */
class Arena
{
  public:
    explicit Arena(std::size_t chunkBytes = 64 * 1024)
        : chunkBytes_(chunkBytes)
    {}

    Arena(const Arena &) = delete;
    Arena &operator=(const Arena &) = delete;

    /**
     * Raw aligned storage; valid until the arena is destroyed.
     * Alignment is capped at alignof(std::max_align_t) — the chunk
     * base guarantee — so offsets aligned within a chunk stay
     * aligned absolutely.
     */
    void *
    allocate(std::size_t size, std::size_t align)
    {
        static_assert(sizeof(unsigned char) == 1);
        if (align > alignof(std::max_align_t))
            align = alignof(std::max_align_t);
        std::size_t offset = (used_ + align - 1) & ~(align - 1);
        if (chunks_.empty() || offset + size > chunkSize_) {
            std::size_t want =
                size > chunkBytes_ ? size : chunkBytes_;
            chunks_.push_back(
                std::make_unique<unsigned char[]>(want));
            chunkSize_ = want;
            offset = 0;
        }
        void *ptr = chunks_.back().get() + offset;
        used_ = offset + size;
        allocated_ += size;
        return ptr;
    }

    /** Construct a T in arena storage. Caller must destroy() it. */
    template <typename T, typename... Args>
    T *
    create(Args &&...args)
    {
        void *ptr = allocate(sizeof(T), alignof(T));
        return new (ptr) T(std::forward<Args>(args)...);
    }

    /** Run the destructor of an arena-created object. */
    template <typename T>
    void
    destroy(T *ptr)
    {
        if (ptr)
            ptr->~T();
    }

    /** Total payload bytes handed out (diagnostics). */
    std::size_t bytesAllocated() const { return allocated_; }

    /** Number of chunks the arena has mapped (diagnostics). */
    std::size_t chunkCount() const { return chunks_.size(); }

  private:
    std::size_t chunkBytes_;
    std::size_t chunkSize_ = 0;
    std::size_t used_ = 0;
    std::size_t allocated_ = 0;
    std::vector<std::unique_ptr<unsigned char[]>> chunks_;
};

} // namespace deskpar::sim

#endif // DESKPAR_SIM_ARENA_HH

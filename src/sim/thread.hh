/**
 * @file
 * SimThread: the runtime of one simulated OS thread. A thread owns a
 * ThreadBehavior and interprets the actions it yields: zero-time
 * actions are processed inline; Compute hands the thread to the
 * scheduler; Sleep/Wait/GpuSync park it until the corresponding wakeup.
 */

#ifndef DESKPAR_SIM_THREAD_HH
#define DESKPAR_SIM_THREAD_HH

#include <memory>
#include <string>

#include "sim/action.hh"
#include "sim/behavior.hh"
#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace deskpar::sim {

class SimProcess;
class OsScheduler;

/** Lifecycle states of a simulated thread. */
enum class ThreadState : std::uint8_t {
    Created,    ///< Not yet started.
    Ready,      ///< Has compute work, waiting for a CPU.
    Running,    ///< On a CPU.
    Sleeping,   ///< Timed block.
    BlockedSync,///< Waiting on a semaphore (or user input).
    BlockedGpu, ///< Waiting for its GPU packets to drain.
    Terminated, ///< Done.
};

/** Human-readable state name (for diagnostics and tests). */
const char *threadStateName(ThreadState state);

/**
 * Scheduling priority class, Windows-flavored: Elevated threads are
 * dispatched ahead of Normal ones, Normal ahead of Background.
 * Interactive applications mark their UI threads Elevated so input
 * handling preempts batch work promptly (the responsiveness
 * mechanism of the 2000 study).
 */
enum class ThreadPriority : std::uint8_t {
    Background = 0,
    Normal = 1,
    Elevated = 2,
};

/**
 * One simulated thread. Created through SimProcess::createThread().
 */
class SimThread
{
  public:
    SimThread(SimProcess &process, Tid tid, std::string name,
              std::shared_ptr<ThreadBehavior> behavior);

    SimThread(const SimThread &) = delete;
    SimThread &operator=(const SimThread &) = delete;

    Tid tid() const { return tid_; }
    Pid pid() const;
    const std::string &name() const { return name_; }

    /** Scheduling priority class (default Normal). */
    ThreadPriority priority() const { return priority_; }
    void setPriority(ThreadPriority priority)
    {
        priority_ = priority;
    }
    SimProcess &process() { return process_; }
    const SimProcess &process() const { return process_; }
    ThreadState state() const { return state_; }
    bool terminated() const { return state_ == ThreadState::Terminated; }

    /**
     * Begin execution: process actions until the thread blocks, wants
     * a CPU (then it enqueues with the scheduler), or exits.
     */
    void start();

    /**
     * Wake a blocked thread (semaphore token granted, sleep expired,
     * GPU drained). Continues interpreting the behavior.
     */
    void wake();

    /** @{ Scheduler interface. */

    /** Remaining compute work of the current Compute action. */
    WorkUnits remainingWork() const { return remainingWork_; }

    /** Deduct completed work (on preemption or rate change). */
    void consumeWork(WorkUnits done);

    /** Time this thread last became ready (CSwitch "Ready Time"). */
    SimTime readyTime() const { return readyTime_; }

    /** Scheduler bookkeeping: mark running on @p cpu / ready / etc. */
    void setState(ThreadState state) { state_ = state; }
    void setReadyTime(SimTime t) { readyTime_ = t; }

    /**
     * Called by the scheduler when the current Compute action's work
     * reaches zero while the thread is on a CPU. Pulls further actions;
     * @return true if the thread has a fresh Compute action and should
     * keep running on its CPU without a context switch.
     */
    bool continueOnCpu();
    /** @} */

    /** GPU completion callback target. */
    void onGpuPacketDone();

    /** Total compute work units this thread has retired. */
    WorkUnits retiredWork() const { return retiredWork_; }

  private:
    enum class AdvanceResult { WantsCpu, Blocked, Terminated };

    /**
     * Interpret actions until one blocks the thread, requests CPU, or
     * exits. Never called while Running (the scheduler path uses
     * continueOnCpu()).
     */
    AdvanceResult advance();

    /** Handle one action; returns true to keep advancing. */
    bool step(const Action &action, AdvanceResult &result);

    ThreadContext makeContext();

    SimProcess &process_;
    Tid tid_;
    std::string name_;
    std::shared_ptr<ThreadBehavior> behavior_;

    ThreadState state_ = ThreadState::Created;
    ThreadPriority priority_ = ThreadPriority::Normal;
    WorkUnits remainingWork_ = 0;
    WorkUnits retiredWork_ = 0;
    SimTime readyTime_ = 0;
    unsigned gpuOutstanding_ = 0;
    EventQueue::Handle sleepEvent_;
};

} // namespace deskpar::sim

#endif // DESKPAR_SIM_THREAD_HH

/**
 * @file
 * InlineCallback: the event queue's callback slot.
 *
 * std::function<void()> keeps only ~16 bytes of inline storage under
 * libstdc++, so any capture beyond two pointers heap-allocates — and
 * the input drivers schedule lambdas that capture a std::string
 * label, which turned every delivered input event into a malloc/free
 * pair inside the simulation loop. InlineCallback widens the inline
 * buffer to kInlineSize bytes (sized for the largest capture the
 * simulator schedules today, with headroom), so steady-state event
 * scheduling allocates nothing. Oversized captures still work through
 * a heap fallback; heapFallbacks() counts them so the zero-malloc
 * guard test can assert the hot paths stay inline.
 *
 * Move-only: the queue's node pool moves callbacks exactly once (out
 * of the node before firing) and never copies them. Trivially
 * copyable closures — the simulator's common [this]-capture shape —
 * carry no manager function: their moves compile to a straight
 * memcpy of the inline buffer and their destruction to nothing
 * (invariant: invoke_ set with manage_ null).
 */

#ifndef DESKPAR_SIM_CALLBACK_HH
#define DESKPAR_SIM_CALLBACK_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>

namespace deskpar::sim {

/**
 * Move-only void() callable with a wide inline buffer.
 */
class InlineCallback
{
  public:
    /** Inline capture budget: fits a [ref, int, std::string] lambda. */
    static constexpr std::size_t kInlineSize = 48;

    InlineCallback() = default;
    InlineCallback(std::nullptr_t) {}

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, InlineCallback> &&
                  std::is_invocable_v<std::decay_t<F> &>>>
    InlineCallback(F &&fn)
    {
        using Fn = std::decay_t<F>;
        if constexpr (std::is_trivially_copyable_v<Fn> &&
                      std::is_trivially_destructible_v<Fn> &&
                      sizeof(Fn) <= kInlineSize &&
                      alignof(Fn) <= alignof(std::max_align_t)) {
            // Trivial closure (the simulator's common [this]-style
            // capture): no manager at all — invoke_ set with manage_
            // null means "move is memcpy, destroy is a no-op", so
            // the node pool shuffles these with zero indirect calls.
            new (storage_) Fn(std::forward<F>(fn));
            invoke_ = &invokeInline<Fn>;
        } else if constexpr (sizeof(Fn) <= kInlineSize &&
                             alignof(Fn) <=
                                 alignof(std::max_align_t)) {
            new (storage_) Fn(std::forward<F>(fn));
            invoke_ = &invokeInline<Fn>;
            manage_ = &manageInline<Fn>;
        } else {
            *reinterpret_cast<Fn **>(storage_) =
                new Fn(std::forward<F>(fn));
            invoke_ = &invokeHeap<Fn>;
            manage_ = &manageHeap<Fn>;
            heapFallbackCount().fetch_add(1,
                                          std::memory_order_relaxed);
        }
    }

    InlineCallback(InlineCallback &&other) noexcept
    {
        moveFrom(other);
    }

    InlineCallback &
    operator=(InlineCallback &&other) noexcept
    {
        if (this != &other) {
            destroy();
            moveFrom(other);
        }
        return *this;
    }

    InlineCallback &
    operator=(std::nullptr_t)
    {
        destroy();
        invoke_ = nullptr;
        manage_ = nullptr;
        return *this;
    }

    InlineCallback(const InlineCallback &) = delete;
    InlineCallback &operator=(const InlineCallback &) = delete;

    ~InlineCallback() { destroy(); }

    explicit operator bool() const { return invoke_ != nullptr; }

    void
    operator()()
    {
        invoke_(storage_);
    }

    /**
     * Number of callbacks constructed through the heap fallback since
     * process start (capture larger than kInlineSize). The
     * zero-allocation guard snapshots this around a run.
     */
    static std::uint64_t
    heapFallbacks()
    {
        return heapFallbackCount().load(std::memory_order_relaxed);
    }

  private:
    enum class Op : std::uint8_t {
        /** Relocate the value into dest; self is left vacant. */
        MoveTo,
        /** Destroy the value in place. */
        Destroy,
    };

    using Invoke = void (*)(void *);
    using Manage = void (*)(Op, void *, void *);

    template <typename Fn>
    static void
    invokeInline(void *self)
    {
        (*std::launder(reinterpret_cast<Fn *>(self)))();
    }

    template <typename Fn>
    static void
    manageInline(Op op, void *self, void *dest)
    {
        Fn *fn = std::launder(reinterpret_cast<Fn *>(self));
        if (op == Op::MoveTo)
            new (dest) Fn(std::move(*fn));
        fn->~Fn();
    }

    template <typename Fn>
    static void
    invokeHeap(void *self)
    {
        (**std::launder(reinterpret_cast<Fn **>(self)))();
    }

    template <typename Fn>
    static void
    manageHeap(Op op, void *self, void *dest)
    {
        Fn **slot = std::launder(reinterpret_cast<Fn **>(self));
        if (op == Op::MoveTo)
            *reinterpret_cast<Fn **>(dest) = *slot;
        else
            delete *slot;
    }

    static std::atomic<std::uint64_t> &
    heapFallbackCount()
    {
        // Simulations run concurrently on the suite runner's workers;
        // the counter is a cross-thread tally, hence atomic.
        static std::atomic<std::uint64_t> count{0};
        return count;
    }

    void
    moveFrom(InlineCallback &other) noexcept
    {
        invoke_ = other.invoke_;
        manage_ = other.manage_;
        if (manage_)
            manage_(Op::MoveTo, other.storage_, storage_);
        else if (invoke_)
            __builtin_memcpy(storage_, other.storage_, kInlineSize);
        other.invoke_ = nullptr;
        other.manage_ = nullptr;
    }

    void
    destroy()
    {
        if (manage_)
            manage_(Op::Destroy, storage_, nullptr);
    }

    alignas(std::max_align_t) unsigned char storage_[kInlineSize];
    Invoke invoke_ = nullptr;
    Manage manage_ = nullptr;
};

} // namespace deskpar::sim

#endif // DESKPAR_SIM_CALLBACK_HH

/**
 * @file
 * CPU specification and topology: physical cores, SMT sibling pairing,
 * clock/turbo model, and the SMT contention model.
 *
 * Logical CPUs are numbered the way Windows enumerates Intel consumer
 * parts: logical CPUs 2k and 2k+1 are the two hardware threads of
 * physical core k (when SMT is present).
 *
 * The SMT contention model: a thread running alone on a physical core
 * proceeds at the full clock rate. When both siblings are busy, each
 * proceeds at a fraction (0.5 + 0.5 * f) of full rate, where f in [0,1]
 * is the workload's "SMT friendliness" — how much the co-running
 * threads benefit from shared-cache reuse versus suffering functional-
 * unit contention. f = 1 gives no slowdown (perfect sharing, 2x chip
 * throughput); f = 0 gives 0.5x each (no SMT benefit at all). The
 * whole-chip SMT speedup for a saturating workload is thus (1 + f),
 * matching the paper's observation that transcoders (low f) gain
 * nearly nothing from SMT while paying for halved per-thread capacity.
 */

#ifndef DESKPAR_SIM_CPU_HH
#define DESKPAR_SIM_CPU_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace deskpar::sim {

/**
 * Static description of a CPU package.
 */
struct CpuSpec
{
    std::string model;
    unsigned physicalCores = 1;
    unsigned threadsPerCore = 1;
    double baseClockGhz = 1.0;
    double turboClockGhz = 1.0;
    unsigned llcMiB = 0;
    unsigned ramGiB = 0;
    /** Package TDP in watts (for the power estimator). */
    double tdpWatts = 65.0;
    /** Package idle power in watts. */
    double idleWatts = 6.0;

    /** Total logical CPUs in the package. */
    unsigned
    numLogicalCpus() const
    {
        return physicalCores * threadsPerCore;
    }

    /**
     * Effective clock in GHz given the number of busy physical cores.
     * Simple Intel-style turbo ladder: full turbo with <= 2 active
     * cores, linear taper down to the base clock with all cores busy.
     */
    double clockGhz(unsigned busyPhysicalCores) const;

    /** The paper's benchmarking CPU (Table I): Intel Core i7-8700K. */
    static CpuSpec i78700K();

    /** Blake et al. 2010 testbed CPU (one socket), for history notes. */
    static CpuSpec xeon2010();
};

/**
 * Maps logical CPUs to physical cores and builds active-CPU masks for
 * the core-scaling and SMT experiments.
 */
class CpuTopology
{
  public:
    explicit CpuTopology(const CpuSpec &spec)
        : spec_(spec)
    {}

    const CpuSpec &spec() const { return spec_; }

    unsigned numLogicalCpus() const { return spec_.numLogicalCpus(); }

    /** Physical core that hosts logical CPU @p cpu. */
    unsigned
    physicalOf(CpuId cpu) const
    {
        return cpu / spec_.threadsPerCore;
    }

    /**
     * The SMT sibling of @p cpu, or the CPU itself when the package
     * has one thread per core.
     */
    CpuId
    siblingOf(CpuId cpu) const
    {
        if (spec_.threadsPerCore != 2)
            return cpu;
        return cpu ^ 1u;
    }

    /**
     * Active-CPU mask for "n logical cores with SMT": the first
     * n/2 physical cores with both hardware threads enabled.
     * @p n must be even and within range.
     */
    std::vector<bool> maskSmt(unsigned n_logical) const;

    /**
     * Active-CPU mask for "n cores without SMT": the first n physical
     * cores with only the even (primary) hardware thread enabled.
     */
    std::vector<bool> maskNoSmt(unsigned n_physical) const;

  private:
    CpuSpec spec_;
};

} // namespace deskpar::sim

#endif // DESKPAR_SIM_CPU_HH

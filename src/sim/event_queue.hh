/**
 * @file
 * Discrete-event queue: the heart of the simulation substrate.
 *
 * Components schedule callbacks at future simulated times; the queue
 * executes them in time order (FIFO among equal timestamps). Scheduled
 * events can be cancelled through their Handle. Cancellation is lazy:
 * cancelled heap entries stay in the heap until popped, but their
 * nodes return to the freelist immediately.
 *
 * Nodes live in a freelist-backed pool owned by the queue; a Handle
 * is an (index, generation) ticket into that pool, so scheduling an
 * event allocates nothing once the pool is warm. A recycled node gets
 * a new generation, which invalidates stale handles and stale heap
 * entries without any per-event heap allocation.
 */

#ifndef DESKPAR_SIM_EVENT_QUEUE_HH
#define DESKPAR_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/types.hh"

namespace deskpar::sim {

/**
 * Time-ordered event queue with cancellable events.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /**
     * Opaque reference to a scheduled event; valid until the event
     * fires or is cancelled. Default-constructed handles are inert.
     * A Handle must not outlive the queue that issued it.
     */
    class Handle
    {
      public:
        Handle() = default;

        /** True if this handle refers to a still-pending event. */
        bool
        pending() const
        {
            return queue_ && queue_->live(index_, gen_);
        }

      private:
        friend class EventQueue;

        Handle(const EventQueue *queue, std::uint32_t index,
               std::uint32_t gen)
            : queue_(queue), index_(index), gen_(gen)
        {}

        const EventQueue *queue_ = nullptr;
        std::uint32_t index_ = 0;
        std::uint32_t gen_ = 0;
    };

    EventQueue() = default;

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    SimTime now() const { return now_; }

    /**
     * Schedule @p cb to run at absolute time @p when.
     * @p when must not be in the past.
     */
    Handle schedule(SimTime when, Callback cb);

    /** Schedule @p cb to run @p delay ticks from now. */
    Handle
    scheduleAfter(SimDuration delay, Callback cb)
    {
        return schedule(now_ + delay, std::move(cb));
    }

    /** Cancel a pending event; no-op if already fired or cancelled. */
    void cancel(Handle &handle);

    /**
     * Pop and execute the earliest pending event.
     * @return false if the queue held no live events.
     */
    bool runOne();

    /**
     * Run events until the queue drains or simulated time would exceed
     * @p until. Events at exactly @p until still run. Afterwards, now()
     * is advanced to @p until even if the queue drained early.
     */
    void runUntil(SimTime until);

    /** Run until the queue is empty. */
    void runAll();

    /** Number of live (non-cancelled) pending events. */
    std::size_t pendingCount() const { return liveCount_; }

    /** True if no live events remain. */
    bool empty() const { return liveCount_ == 0; }

  private:
    /** Pooled event storage, addressed by index. */
    struct Node
    {
        /** Bumped on every release; stale references mismatch. */
        std::uint32_t gen = 0;
        std::uint32_t nextFree = 0;
        Callback callback;
    };

    /**
     * Heap entry: ordering keys plus the (index, generation) ticket.
     * Entries whose generation no longer matches the pool are dead
     * (cancelled or fired) and are skipped on pop.
     */
    struct Entry
    {
        SimTime when = 0;
        std::uint64_t seq = 0;
        std::uint32_t index = 0;
        std::uint32_t gen = 0;
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    /** True if the ticket still names a scheduled, uncancelled event. */
    bool
    live(std::uint32_t index, std::uint32_t gen) const
    {
        return index < pool_.size() && pool_[index].gen == gen;
    }

    /** Take a node from the freelist (growing the pool if dry). */
    std::uint32_t acquireNode();

    /** Return a node to the freelist, invalidating its generation. */
    void releaseNode(std::uint32_t index);

    /**
     * Drop dead entries from the heap top.
     * @return the earliest live entry, or nullptr if none remain.
     */
    const Entry *peekLive();

    /** Pop the (live) top entry and execute its callback. */
    void fireTop();

    SimTime now_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::size_t liveCount_ = 0;
    std::vector<Node> pool_;
    std::uint32_t freeHead_ = kNoFree;
    std::priority_queue<Entry, std::vector<Entry>, Later> heap_;

    static constexpr std::uint32_t kNoFree = 0xffffffffu;
};

} // namespace deskpar::sim

#endif // DESKPAR_SIM_EVENT_QUEUE_HH

/**
 * @file
 * Discrete-event queue: the heart of the simulation substrate.
 *
 * Components schedule callbacks at future simulated times; the queue
 * executes them in time order (FIFO among equal timestamps). Scheduled
 * events can be cancelled through their Handle. Cancellation is lazy:
 * cancelled nodes stay in the heap until popped.
 */

#ifndef DESKPAR_SIM_EVENT_QUEUE_HH
#define DESKPAR_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "sim/types.hh"

namespace deskpar::sim {

/**
 * Time-ordered event queue with cancellable events.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /**
     * Opaque reference to a scheduled event; valid until the event
     * fires or is cancelled. Default-constructed handles are inert.
     */
    class Handle
    {
      public:
        Handle() = default;

        /** True if this handle refers to a still-pending event. */
        bool
        pending() const
        {
            auto node = node_.lock();
            return node && !node->cancelled && !node->fired;
        }

      private:
        friend class EventQueue;

        struct Node
        {
            SimTime when = 0;
            std::uint64_t seq = 0;
            bool cancelled = false;
            bool fired = false;
            Callback callback;
        };

        explicit Handle(std::shared_ptr<Node> node)
            : node_(std::move(node))
        {}

        std::weak_ptr<Node> node_;
    };

    EventQueue() = default;

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    SimTime now() const { return now_; }

    /**
     * Schedule @p cb to run at absolute time @p when.
     * @p when must not be in the past.
     */
    Handle schedule(SimTime when, Callback cb);

    /** Schedule @p cb to run @p delay ticks from now. */
    Handle
    scheduleAfter(SimDuration delay, Callback cb)
    {
        return schedule(now_ + delay, std::move(cb));
    }

    /** Cancel a pending event; no-op if already fired or cancelled. */
    void cancel(Handle &handle);

    /**
     * Pop and execute the earliest pending event.
     * @return false if the queue held no live events.
     */
    bool runOne();

    /**
     * Run events until the queue drains or simulated time would exceed
     * @p until. Events at exactly @p until still run. Afterwards, now()
     * is advanced to @p until even if the queue drained early.
     */
    void runUntil(SimTime until);

    /** Run until the queue is empty. */
    void runAll();

    /** Number of live (non-cancelled) pending events. */
    std::size_t pendingCount() const { return liveCount_; }

    /** True if no live events remain. */
    bool empty() const { return liveCount_ == 0; }

  private:
    using NodePtr = std::shared_ptr<Handle::Node>;

    struct Later
    {
        bool
        operator()(const NodePtr &a, const NodePtr &b) const
        {
            if (a->when != b->when)
                return a->when > b->when;
            return a->seq > b->seq;
        }
    };

    /** Pop dead nodes; return the earliest live node or nullptr. */
    NodePtr popLive();

    SimTime now_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::size_t liveCount_ = 0;
    std::priority_queue<NodePtr, std::vector<NodePtr>, Later> heap_;
};

} // namespace deskpar::sim

#endif // DESKPAR_SIM_EVENT_QUEUE_HH

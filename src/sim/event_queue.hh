/**
 * @file
 * Discrete-event queue: the heart of the simulation substrate.
 *
 * Components schedule callbacks at future simulated times; the queue
 * executes them in time order (FIFO among equal timestamps). Scheduled
 * events can be cancelled through their Handle. Cancellation is lazy:
 * cancelled heap entries stay in the heap until popped, but their
 * nodes return to the freelist immediately.
 *
 * Nodes live in a freelist-backed pool owned by the queue; a Handle
 * is a packed (sequence, node-index) ticket, so scheduling an event
 * allocates nothing once the pool is warm. A recycled node gets the
 * next scheduling's fresh sequence number, which invalidates stale
 * handles and stale heap entries without any per-event heap
 * allocation.
 *
 * The priority queue is a hand-rolled 4-ary implicit heap tuned for
 * the pop path, which dominates simulation cost at realistic heap
 * depths (hundreds to thousands of pending events):
 *
 *  - entries are 16 bytes — the timestamp plus one packed word
 *    carrying (sequence << 20 | node index), which is simultaneously
 *    the FIFO tie-break and the liveness ticket — so a node's four
 *    children are exactly one cache line;
 *  - the entry array is offset inside a 64-byte-aligned buffer so
 *    every child group starts on a line boundary (children of i at
 *    4i+1; element 1 is 64-byte-aligned);
 *  - sift-down walks half the levels of a binary heap and picks the
 *    earliest of four children with branchless conditional moves,
 *    where std::priority_queue's per-level two-way branch
 *    mispredicts ~50% on random keys;
 *  - pop uses the bottom-up trick (descend the min-child path to a
 *    leaf, then bubble the displaced back element up), which saves
 *    the per-level compare against the moving element.
 *
 * Pop order is differential-tested against the preserved
 * binary-heap implementation (sim/event_queue_legacy.hh). Callbacks
 * are InlineCallback, not std::function, so capture-heavy events
 * (input delivery captures a label string) schedule without touching
 * malloc.
 */

#ifndef DESKPAR_SIM_EVENT_QUEUE_HH
#define DESKPAR_SIM_EVENT_QUEUE_HH

#include <cstddef>
#include <cstdint>
#include <new>
#include <vector>

#include "sim/callback.hh"
#include "sim/types.hh"

namespace deskpar::sim {

/**
 * Time-ordered event queue with cancellable events.
 */
class EventQueue
{
  public:
    using Callback = InlineCallback;

    /**
     * Opaque reference to a scheduled event; valid until the event
     * fires or is cancelled. Default-constructed handles are inert.
     * A Handle must not outlive the queue that issued it.
     */
    class Handle
    {
      public:
        Handle() = default;

        /** True if this handle refers to a still-pending event. */
        bool
        pending() const
        {
            return queue_ && queue_->live(ticket_);
        }

      private:
        friend class EventQueue;

        Handle(const EventQueue *queue, std::uint64_t ticket)
            : queue_(queue), ticket_(ticket)
        {}

        const EventQueue *queue_ = nullptr;
        std::uint64_t ticket_ = 0;
    };

    EventQueue() = default;

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    SimTime now() const { return now_; }

    /**
     * Schedule @p cb to run at absolute time @p when.
     * @p when must not be in the past.
     */
    Handle schedule(SimTime when, Callback cb);

    /** Schedule @p cb to run @p delay ticks from now. */
    Handle
    scheduleAfter(SimDuration delay, Callback cb)
    {
        return schedule(now_ + delay, std::move(cb));
    }

    /** Cancel a pending event; no-op if already fired or cancelled. */
    void cancel(Handle &handle);

    /**
     * Pop and execute the earliest pending event.
     * @return false if the queue held no live events.
     */
    bool runOne();

    /**
     * Run events until the queue drains or simulated time would exceed
     * @p until. Events at exactly @p until still run. Afterwards, now()
     * is advanced to @p until even if the queue drained early.
     */
    void runUntil(SimTime until);

    /** Run until the queue is empty. */
    void runAll();

    /** Number of live (non-cancelled) pending events. */
    std::size_t pendingCount() const { return liveCount_; }

    /** True if no live events remain. */
    bool empty() const { return liveCount_ == 0; }

    /**
     * Pre-size the node pool and heap for @p events concurrent
     * events, so even the first moments of a run schedule without
     * growing either.
     */
    void reserve(std::size_t events);

  private:
    /** Low bits of a ticket: the node index (max ~1M concurrent). */
    static constexpr unsigned kIndexBits = 20;
    static constexpr std::uint64_t kIndexMask =
        (std::uint64_t{1} << kIndexBits) - 1;
    /**
     * Top bit of a tickets_ word: the node is free, and the word's
     * low bits are the next freelist index (kIndexMask = none).
     * Live tickets never set the bit — schedule() panics before the
     * sequence counter could reach it.
     */
    static constexpr std::uint64_t kFreeBit = std::uint64_t{1}
                                              << 63;
    static constexpr std::uint32_t kNoFree =
        static_cast<std::uint32_t>(kIndexMask);

    /**
     * Pooled event storage, addressed by the ticket's index bits.
     * Exactly one cache line: the node's current ticket and its
     * freelist link both live in the dense tickets_ side array, so
     * liveness probes (every pop, every Handle::pending) and
     * freelist walks read an 8-byte-per-node array that stays
     * cache-resident, and firing an event touches a single
     * line-aligned node.
     */
    struct alignas(64) Node
    {
        Callback callback;
    };
    static_assert(sizeof(Node) == 64, "node layout drifted");

    /**
     * Heap entry: 16 bytes. The packed ticket is
     * (sequence << kIndexBits) | node index; sequences are unique
     * and monotone, so comparing tickets compares sequences — the
     * FIFO tie-break among equal timestamps — and the same word
     * names the pool node for liveness checks. Entries whose ticket
     * no longer matches their node are dead (cancelled or fired) and
     * are skipped on pop.
     */
    struct Entry
    {
        SimTime when;
        std::uint64_t ticket;
    };

    /**
     * Heap order: earlier time first, FIFO among equal times
     * (tickets carry the sequence in their high bits). Compiled as
     * one 128-bit unsigned compare — cmp/sbb, no data-dependent
     * branch: with random keys a two-field short-circuit compare
     * mispredicts ~50% per heap level, which was the single largest
     * cost of the sift loops.
     */
    static bool
    earlier(const Entry &a, const Entry &b)
    {
#ifdef __SIZEOF_INT128__
        unsigned __int128 ka =
            (static_cast<unsigned __int128>(a.when) << 64) |
            a.ticket;
        unsigned __int128 kb =
            (static_cast<unsigned __int128>(b.when) << 64) |
            b.ticket;
        return ka < kb;
#else
        return a.when != b.when ? a.when < b.when
                                : a.ticket < b.ticket;
#endif
    }

    /**
     * Flat entry array inside a 64-byte-aligned allocation, offset
     * so element 1 — the first child group — starts a cache line:
     * &data()[4i+1] is then line-aligned for every i. Entries are
     * trivially copyable, so growth is a memcpy.
     */
    class EntryHeap
    {
      public:
        EntryHeap() = default;
        EntryHeap(const EntryHeap &) = delete;
        EntryHeap &operator=(const EntryHeap &) = delete;
        ~EntryHeap()
        {
            ::operator delete(raw_, std::align_val_t{64});
        }

        Entry *data() { return data_; }
        const Entry *data() const { return data_; }
        std::size_t size() const { return size_; }
        bool empty() const { return size_ == 0; }
        const Entry &front() const { return data_[0]; }
        const Entry &back() const { return data_[size_ - 1]; }

        /** Append one uninitialized slot (the sift fills it). */
        void
        extend()
        {
            if (size_ == capacity_)
                grow(size_ + 1);
            ++size_;
        }

        void pop_back() { --size_; }

        void
        reserve(std::size_t capacity)
        {
            if (capacity > capacity_)
                grow(capacity);
        }

      private:
        void grow(std::size_t atLeast);

        Entry *data_ = nullptr;
        std::size_t size_ = 0;
        std::size_t capacity_ = 0;
        void *raw_ = nullptr;
    };

    /** True if @p ticket names a scheduled, uncancelled event. */
    bool
    live(std::uint64_t ticket) const
    {
        std::size_t index =
            static_cast<std::size_t>(ticket & kIndexMask);
        return index < tickets_.size() &&
               tickets_[index] == ticket;
    }

    /** Take a node from the freelist (growing the pool if dry). */
    std::uint32_t acquireNode();

    /** Return a node to the freelist, invalidating its ticket. */
    void releaseNode(std::uint32_t index);

    /** @{ 4-ary implicit heap: children of i at 4i+1..4i+4. */
    void siftUp(std::size_t pos, Entry moving);
    void siftDown(Entry moving);
    void heapPop();
    /** @} */

    /**
     * Drop dead entries from the heap top.
     * @return the earliest live entry, or nullptr if none remain.
     */
    const Entry *peekLive();

    /** Pop the (live) top entry and execute its callback. */
    void fireTop();

    SimTime now_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::size_t liveCount_ = 0;
    std::vector<Node> pool_;
    /** pool_[i]'s current ticket, or kFreeBit|next while free. */
    std::vector<std::uint64_t> tickets_;
    std::uint32_t freeHead_ = kNoFree;
    EntryHeap heap_;
};

} // namespace deskpar::sim

#endif // DESKPAR_SIM_EVENT_QUEUE_HH

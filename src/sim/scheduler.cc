#include "sim/scheduler.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"
#include "sim/process.hh"

namespace deskpar::sim {

double
SchedulerStats::contentionStallFraction() const
{
    if (busyTime == 0)
        return 0.0;
    // Baseline intra-core stall fraction when running alone, plus the
    // throughput lost to sibling contention expressed as stall time.
    constexpr double kBaseStall = 0.053;
    double shared = static_cast<double>(smtSharedTime);
    double busy = static_cast<double>(busyTime);
    return kBaseStall + 0.057 * (shared / busy);
}

OsScheduler::OsScheduler(const CpuTopology &topology,
                         std::vector<bool> active_mask,
                         SimDuration quantum, EventQueue &queue,
                         trace::TraceSession &session)
    : topology_(topology), quantum_(quantum), queue_(queue),
      session_(session)
{
    unsigned n = topology_.numLogicalCpus();
    if (active_mask.size() != n)
        fatal("OsScheduler: active mask size != logical CPU count");
    if (quantum_ == 0)
        fatal("OsScheduler: zero quantum");

    cpus_.resize(n);
    for (unsigned i = 0; i < n; ++i) {
        cpus_[i].active = active_mask[i];
        if (active_mask[i]) {
            ++activeCpuCount_;
            activeCpuSpan_ = i + 1;
        }
    }
    if (activeCpuCount_ == 0)
        fatal("OsScheduler: no active CPUs");
}

unsigned
OsScheduler::busyPhysicalCores() const
{
    unsigned count = 0;
    unsigned threads_per_core = topology_.spec().threadsPerCore;
    for (unsigned core = 0; core < topology_.spec().physicalCores;
         ++core) {
        for (unsigned t = 0; t < threads_per_core; ++t) {
            if (cpus_[core * threads_per_core + t].running) {
                ++count;
                break;
            }
        }
    }
    return count;
}

bool
OsScheduler::siblingBusy(CpuId cpu) const
{
    CpuId sib = topology_.siblingOf(cpu);
    return sib != cpu && cpus_[sib].running != nullptr;
}

double
OsScheduler::currentClockGhz() const
{
    return topology_.spec().clockGhz(busyPhysicalCores());
}

double
OsScheduler::runningFootprintMiB() const
{
    double total = 0.0;
    const SimProcess *last = nullptr;
    for (const CpuState &state : cpus_) {
        if (!state.running)
            continue;
        const SimProcess &process = state.running->process();
        // Threads of one process share its working set; count the
        // process once. Running threads of the same process cluster
        // in practice, so a last-seen check removes most duplicates
        // cheaply and the full scan handles the rest.
        if (&process == last)
            continue;
        bool counted = false;
        for (const CpuState &prior : cpus_) {
            if (&prior == &state)
                break;
            if (prior.running &&
                &prior.running->process() == &process) {
                counted = true;
                break;
            }
        }
        if (!counted)
            total += process.llcFootprintMiB();
        last = &process;
    }
    return total;
}

double
OsScheduler::rateFor(const SimThread &thread, CpuId cpu) const
{
    // Work units are cycles, so units/ns == GHz numerically.
    double clock = currentClockGhz();
    double factor = 1.0;
    if (siblingBusy(cpu)) {
        const SimThread *sibling =
            cpus_[topology_.siblingOf(cpu)].running;
        // Contention factor uses the friendliness of the co-runners;
        // take the mean of the two processes' friendliness values.
        double f = 0.5 * (thread.process().smtFriendliness() +
                          sibling->process().smtFriendliness());
        factor = 0.5 + 0.5 * f;
    }
    if (llcModel_) {
        factor *=
            llcModel_->throughputFactor(runningFootprintMiB());
    }
    return clock * factor;
}

void
OsScheduler::accrueAll()
{
    for (CpuId cpu = 0; cpu < cpus_.size(); ++cpu)
        accrue(cpu);
}

void
OsScheduler::accrue(CpuId cpu)
{
    CpuState &state = cpus_[cpu];
    if (!state.running)
        return;
    SimTime now = queue_.now();
    if (now <= state.lastAccrue)
        return;
    SimDuration elapsed = now - state.lastAccrue;
    WorkUnits done = static_cast<double>(elapsed) * state.rate;
    done = std::min(done, state.running->remainingWork());
    state.running->consumeWork(done);
    state.lastAccrue = now;

    stats_.busyTime += elapsed;
    if (siblingBusy(cpu)) {
        stats_.smtSharedTime += elapsed;
        stats_.workShared += done;
    } else {
        stats_.workAlone += done;
    }
}

void
OsScheduler::refreshRates()
{
    SimTime now = queue_.now();
    for (CpuId cpu = 0; cpu < cpus_.size(); ++cpu) {
        CpuState &state = cpus_[cpu];
        if (!state.running)
            continue;
        accrue(cpu);
        state.rate = rateFor(*state.running, cpu);
        queue_.cancel(state.completionEvent);
        WorkUnits remaining = state.running->remainingWork();
        auto delay = static_cast<SimDuration>(
            std::ceil(remaining / state.rate));
        if (delay == 0)
            delay = 1;
        state.completionEvent = queue_.schedule(
            now + delay, [this, cpu] { onComputeComplete(cpu); });
    }
}

int
OsScheduler::pickIdleCpu() const
{
    int shared_candidate = -1;
    for (CpuId cpu = 0; cpu < cpus_.size(); ++cpu) {
        const CpuState &state = cpus_[cpu];
        if (!state.active || state.running)
            continue;
        if (!siblingBusy(cpu))
            return static_cast<int>(cpu);
        if (shared_candidate < 0)
            shared_candidate = static_cast<int>(cpu);
    }
    return shared_candidate;
}

std::size_t
OsScheduler::readyCount() const
{
    return ready_[0].size() + ready_[1].size() + ready_[2].size();
}

void
OsScheduler::pushReady(SimThread *thread)
{
    ready_[static_cast<unsigned>(thread->priority())].push_back(
        thread);
}

SimThread *
OsScheduler::popReady()
{
    for (unsigned p = 3; p-- > 0;) {
        if (!ready_[p].empty()) {
            SimThread *thread = ready_[p].front();
            ready_[p].pop_front();
            return thread;
        }
    }
    return nullptr;
}

void
OsScheduler::makeReady(SimThread &thread)
{
    if (thread.state() == ThreadState::Running)
        panic("OsScheduler::makeReady: thread already running");
    thread.setState(ThreadState::Ready);
    thread.setReadyTime(queue_.now());
    pushReady(&thread);
    tryDispatch();

    // Priority preemption: an Elevated thread that found no idle CPU
    // evicts the lowest-priority running thread (Windows-style boost
    // for interactive work).
    if (thread.state() == ThreadState::Ready &&
        thread.priority() == ThreadPriority::Elevated) {
        int victim_cpu = -1;
        ThreadPriority victim_prio = ThreadPriority::Elevated;
        for (CpuId cpu = 0; cpu < cpus_.size(); ++cpu) {
            SimThread *running = cpus_[cpu].running;
            if (running && running->priority() < victim_prio) {
                victim_prio = running->priority();
                victim_cpu = static_cast<int>(cpu);
            }
        }
        if (victim_cpu >= 0)
            preempt(static_cast<CpuId>(victim_cpu));
    }
}

void
OsScheduler::tryDispatch()
{
    while (readyCount() > 0) {
        int cpu = pickIdleCpu();
        if (cpu < 0)
            return;
        SimThread *thread = popReady();
        dispatch(static_cast<CpuId>(cpu), *thread);
    }
}

void
OsScheduler::dispatch(CpuId cpu, SimThread &thread)
{
    CpuState &state = cpus_[cpu];
    if (state.running)
        panic("OsScheduler::dispatch: CPU busy");

    // Attribute past busy time under the old occupancy before the
    // sibling-busy picture changes.
    accrueAll();

    emitCSwitch(cpu, nullptr, &thread);

    state.running = &thread;
    state.lastAccrue = queue_.now();
    thread.setState(ThreadState::Running);

    state.quantumEvent = queue_.scheduleAfter(
        quantum_, [this, cpu] { onQuantumExpired(cpu); });

    refreshRates();
}

void
OsScheduler::vacate(CpuId cpu)
{
    CpuState &state = cpus_[cpu];
    if (!state.running)
        panic("OsScheduler::vacate: CPU idle");

    accrueAll();

    SimThread *old_thread = state.running;
    state.running = nullptr;
    queue_.cancel(state.completionEvent);
    queue_.cancel(state.quantumEvent);

    if (SimThread *next = popReady()) {
        emitCSwitch(cpu, old_thread, next);
        state.running = next;
        state.lastAccrue = queue_.now();
        next->setState(ThreadState::Running);
        state.quantumEvent = queue_.scheduleAfter(
            quantum_, [this, cpu] { onQuantumExpired(cpu); });
    } else {
        emitCSwitch(cpu, old_thread, nullptr);
    }
    refreshRates();
}

void
OsScheduler::onComputeComplete(CpuId cpu)
{
    CpuState &state = cpus_[cpu];
    if (!state.running)
        panic("OsScheduler::onComputeComplete: CPU idle");

    accrue(cpu);
    SimThread *thread = state.running;
    if (thread->remainingWork() > 0.0) {
        // Rounding left a sliver; let refreshRates reschedule it.
        refreshRates();
        return;
    }

    if (thread->continueOnCpu()) {
        // Thread produced another Compute action; keep it on the CPU
        // with no context switch.
        refreshRates();
    } else {
        vacate(cpu);
    }
}

void
OsScheduler::onQuantumExpired(CpuId cpu)
{
    CpuState &state = cpus_[cpu];
    if (!state.running)
        panic("OsScheduler::onQuantumExpired: CPU idle");

    if (readyCount() == 0) {
        // Nothing else wants to run; extend the quantum.
        state.quantumEvent = queue_.scheduleAfter(
            quantum_, [this, cpu] { onQuantumExpired(cpu); });
        return;
    }
    preempt(cpu);
}

void
OsScheduler::preempt(CpuId cpu)
{
    CpuState &state = cpus_[cpu];
    if (!state.running)
        panic("OsScheduler::preempt: CPU idle");

    accrueAll();
    SimThread *thread = state.running;

    // Requeue the preempted thread behind current waiters of its
    // class and hand the CPU to the best ready thread.
    state.running = nullptr;
    queue_.cancel(state.completionEvent);
    queue_.cancel(state.quantumEvent);
    thread->setState(ThreadState::Ready);
    thread->setReadyTime(queue_.now());
    pushReady(thread);

    SimThread *next = popReady();
    emitCSwitch(cpu, thread, next);
    state.running = next;
    state.lastAccrue = queue_.now();
    next->setState(ThreadState::Running);
    state.quantumEvent = queue_.scheduleAfter(
        quantum_, [this, cpu] { onQuantumExpired(cpu); });

    refreshRates();
}

void
OsScheduler::emitCSwitch(CpuId cpu, SimThread *oldThread,
                         SimThread *newThread)
{
    trace::CSwitchEvent event;
    event.timestamp = queue_.now();
    event.cpu = cpu;
    if (oldThread) {
        event.oldPid = oldThread->pid();
        event.oldTid = oldThread->tid();
    }
    if (newThread) {
        event.newPid = newThread->pid();
        event.newTid = newThread->tid();
        event.readyTime = newThread->readyTime();
    }
    session_.recordCSwitch(event);
    ++stats_.contextSwitches;
}

} // namespace deskpar::sim

/**
 * @file
 * SimProcess: a group of threads sharing a pid, a name, an RNG stream,
 * and workload-wide properties (SMT friendliness). Mirrors an OS
 * process as seen by the tracing/analysis pipeline.
 */

#ifndef DESKPAR_SIM_PROCESS_HH
#define DESKPAR_SIM_PROCESS_HH

#include <memory>
#include <string>
#include <vector>

#include "sim/rng.hh"
#include "sim/thread.hh"
#include "sim/types.hh"

namespace deskpar::sim {

class Machine;

/**
 * A simulated process. Created through Machine::createProcess().
 */
class SimProcess
{
  public:
    SimProcess(Machine &machine, Pid pid, std::string name,
               double smt_friendliness, Rng rng);
    ~SimProcess();

    SimProcess(const SimProcess &) = delete;
    SimProcess &operator=(const SimProcess &) = delete;

    Machine &machine() { return machine_; }
    Pid pid() const { return pid_; }
    const std::string &name() const { return name_; }

    /**
     * SMT friendliness f in [0,1]: throughput factor (0.5 + 0.5 f)
     * per thread when both hardware siblings of a core are busy.
     */
    double smtFriendliness() const { return smtFriendliness_; }

    /** Process-local RNG stream. */
    Rng &rng() { return rng_; }

    /**
     * Working-set footprint in MiB, consumed by the LLC contention
     * model when it is enabled (default small: UI-scale data).
     */
    double llcFootprintMiB() const { return llcFootprintMiB_; }
    void setLlcFootprintMiB(double mib) { llcFootprintMiB_ = mib; }

    /**
     * Create and start a thread running @p behavior. The thread begins
     * executing immediately (at the current simulated time).
     */
    SimThread &createThread(std::shared_ptr<ThreadBehavior> behavior,
                            std::string name);

    /** All threads ever created in this process (arena-owned). */
    const std::vector<SimThread *> &
    threads() const
    {
        return threads_;
    }

    /** Number of threads not yet terminated. */
    unsigned liveThreads() const;

    /** Next frame id for Present actions (monotonic per process). */
    std::uint32_t nextFrameId() { return nextFrameId_++; }

  private:
    Machine &machine_;
    Pid pid_;
    std::string name_;
    double smtFriendliness_;
    double llcFootprintMiB_ = 1.5;
    Rng rng_;
    Tid nextTid_ = 1;
    std::uint32_t nextFrameId_ = 1;
    std::vector<SimThread *> threads_;
};

} // namespace deskpar::sim

#endif // DESKPAR_SIM_PROCESS_HH

/**
 * @file
 * GPU model: a discrete GPU with independent engines (3D, compute,
 * copy, video decode, video encode), each draining a FIFO of work
 * packets, in the spirit of WDDM command-stream scheduling.
 *
 * A "packet" is what the paper measures: a large collection of API
 * calls packaged into a command stream. Packet service time is
 * work / engine-throughput. Shader engines (3D/compute/copy) scale
 * with cudaCores x clock x ipcFactor, so the same offered stream
 * yields ~4x higher utilization on a GTX 680 than a GTX 1080 Ti.
 * Video engines are fixed-function (NVDEC/NVENC) with their own rate.
 * The compute engine exposes two hardware queue slots on modern parts,
 * letting two packets overlap (the paper's PhoenixMiner footnote).
 */

#ifndef DESKPAR_SIM_GPU_HH
#define DESKPAR_SIM_GPU_HH

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/types.hh"
#include "trace/event.hh"
#include "trace/session.hh"

namespace deskpar::sim {

using trace::GpuEngineId;
using trace::kNumGpuEngines;

/** GPU micro-architecture generation (drives app code paths). */
enum class GpuGeneration : std::uint8_t {
    Tesla,  ///< GTX 285 era (2010 testbed)
    Kepler, ///< GTX 680 (mid-end comparison GPU)
    Pascal, ///< GTX 1080 Ti (the paper's primary GPU)
};

/**
 * Static description of a GPU board.
 */
struct GpuSpec
{
    std::string model;
    GpuGeneration generation = GpuGeneration::Pascal;
    unsigned cudaCores = 1;
    double coreClockMhz = 1000.0;
    /** Per core-clock architectural efficiency (relative IPC). */
    double ipcFactor = 1.0;
    /** Fixed-function video engine rate, work units per second. */
    double videoRate = 1.0;
    /** True if the board has an NVENC hardware encoder. */
    bool hasNvenc = true;
    /** Hardware queue slots on the compute engine. */
    unsigned computeQueueSlots = 2;
    /** VRAM in MiB (reported, not modeled). */
    unsigned vramMiB = 0;
    /** Board TDP in watts (for the power estimator). */
    double tdpWatts = 150.0;
    /** Board idle power in watts. */
    double idleWatts = 10.0;

    /** Shader-engine throughput in work units per second. */
    double
    shaderThroughput() const
    {
        return static_cast<double>(cudaCores) * coreClockMhz * 1e6 *
               ipcFactor;
    }

    /** Throughput of @p engine in work units per second. */
    double throughput(GpuEngineId engine) const;

    /**
     * Work units that occupy @p engine for @p ms milliseconds on this
     * board. Workload models call this on the reference board
     * (gtx1080Ti()) to express packet sizes as target durations there.
     */
    WorkUnits
    workForMs(GpuEngineId engine, double ms) const
    {
        return throughput(engine) * ms * 1e-3;
    }

    /** The paper's primary GPU (Table I). */
    static GpuSpec gtx1080Ti();
    /** The paper's mid-end comparison GPU. */
    static GpuSpec gtx680();
    /** Blake et al.'s 2010 GPU (history only). */
    static GpuSpec gtx285();
};

/**
 * Runtime GPU: engines with queue slots, event-driven packet service,
 * trace emission, and per-process completion accounting.
 */
class GpuModel
{
  public:
    /** Callback invoked (at finish time) when a packet completes. */
    using Completion = std::function<void()>;

    GpuModel(const GpuSpec &spec, EventQueue &queue,
             trace::TraceSession &session);

    GpuModel(const GpuModel &) = delete;
    GpuModel &operator=(const GpuModel &) = delete;

    const GpuSpec &spec() const { return spec_; }

    /**
     * Submit a packet of @p work units from process @p pid to
     * @p engine. @p onComplete (may be empty) fires when the packet
     * finishes.
     */
    void submit(Pid pid, GpuEngineId engine, WorkUnits work,
                Completion onComplete = {});

    /** Packets submitted but not yet finished, for process @p pid. */
    unsigned outstanding(Pid pid) const;

    /** Total work units completed for @p pid (hash-rate style stat). */
    double completedWork(Pid pid) const;

    /** Busy time (any slot active) accumulated on @p engine. */
    SimDuration engineBusyTime(GpuEngineId engine) const;

    /** Total packets executed. */
    std::uint64_t packetsCompleted() const { return packetsCompleted_; }

  private:
    struct Packet
    {
        Pid pid = 0;
        WorkUnits work = 0;
        SimTime queued = 0;
        Completion onComplete;
    };

    struct Slot
    {
        bool busy = false;
        Packet packet;
        SimTime start = 0;
        EventQueue::Handle finishEvent;
    };

    struct Engine
    {
        std::vector<Slot> slots;
        std::deque<Packet> pending;
        /** Number of currently busy slots. */
        unsigned busySlots = 0;
        /** When busySlots last transitioned 0 -> nonzero. */
        SimTime busySince = 0;
        SimDuration busyAccum = 0;
    };

    void startPacket(GpuEngineId engineId, unsigned slotIdx,
                     Packet packet);
    void finishPacket(GpuEngineId engineId, unsigned slotIdx);

    GpuSpec spec_;
    EventQueue &queue_;
    trace::TraceSession &session_;
    std::array<Engine, kNumGpuEngines> engines_;
    std::unordered_map<Pid, unsigned> outstanding_;
    std::unordered_map<Pid, double> completedWork_;
    std::uint32_t nextPacketId_ = 1;
    std::uint64_t packetsCompleted_ = 0;
};

} // namespace deskpar::sim

#endif // DESKPAR_SIM_GPU_HH

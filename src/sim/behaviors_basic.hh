/**
 * @file
 * Elementary ThreadBehavior implementations used by tests, examples
 * and as leaves of composed workload models: a fixed action sequence
 * and a function-driven behavior.
 */

#ifndef DESKPAR_SIM_BEHAVIORS_BASIC_HH
#define DESKPAR_SIM_BEHAVIORS_BASIC_HH

#include <functional>
#include <utility>
#include <vector>

#include "sim/behavior.hh"

namespace deskpar::sim {

/**
 * Plays a fixed list of actions once, then exits.
 */
class SequenceBehavior : public ThreadBehavior
{
  public:
    explicit SequenceBehavior(std::vector<Action> actions)
        : actions_(std::move(actions))
    {}

    Action
    next(ThreadContext &) override
    {
        if (index_ >= actions_.size())
            return Action::exit();
        return actions_[index_++];
    }

  private:
    std::vector<Action> actions_;
    std::size_t index_ = 0;
};

/**
 * Delegates to a callable; convenient for ad-hoc behaviors in tests:
 *
 *   std::make_shared<FunctionBehavior>([n = 0](ThreadContext &ctx)
 *       mutable {
 *           if (n++ < 10) return Action::compute(1e6);
 *           return Action::exit();
 *       });
 */
class FunctionBehavior : public ThreadBehavior
{
  public:
    using Fn = std::function<Action(ThreadContext &)>;

    explicit FunctionBehavior(Fn fn)
        : fn_(std::move(fn))
    {}

    Action
    next(ThreadContext &ctx) override
    {
        return fn_(ctx);
    }

  private:
    Fn fn_;
};

/** Convenience factory for FunctionBehavior. */
inline std::shared_ptr<ThreadBehavior>
makeBehavior(FunctionBehavior::Fn fn)
{
    return std::make_shared<FunctionBehavior>(std::move(fn));
}

/** Convenience factory for SequenceBehavior. */
inline std::shared_ptr<ThreadBehavior>
makeSequence(std::vector<Action> actions)
{
    return std::make_shared<SequenceBehavior>(std::move(actions));
}

} // namespace deskpar::sim

#endif // DESKPAR_SIM_BEHAVIORS_BASIC_HH

#include "sim/gpu.hh"

#include <algorithm>
#include <utility>

#include "sim/logging.hh"

namespace deskpar::sim {

double
GpuSpec::throughput(GpuEngineId engine) const
{
    switch (engine) {
      case GpuEngineId::Graphics3D:
      case GpuEngineId::Compute:
        return shaderThroughput();
      case GpuEngineId::Copy:
        // Copy engines are bandwidth-bound; scale with generation via
        // ipcFactor against a nominal shader-independent base.
        return 0.25 * shaderThroughput();
      case GpuEngineId::VideoDecode:
        return videoRate;
      case GpuEngineId::VideoEncode:
        if (!hasNvenc)
            fatal("GpuSpec::throughput: board has no NVENC");
        return videoRate;
    }
    panic("GpuSpec::throughput: bad engine");
}

GpuSpec
GpuSpec::gtx1080Ti()
{
    GpuSpec spec;
    spec.model = "NVIDIA GTX 1080 Ti";
    spec.generation = GpuGeneration::Pascal;
    spec.cudaCores = 3584;
    spec.coreClockMhz = 1481.0;
    spec.ipcFactor = 1.0;
    // Pascal NVDEC/NVENC: comfortably faster than realtime at 4K.
    spec.videoRate = 1.6e12;
    spec.hasNvenc = true;
    spec.computeQueueSlots = 2;
    spec.vramMiB = 11264;
    spec.tdpWatts = 250.0;
    spec.idleWatts = 12.0;
    return spec;
}

GpuSpec
GpuSpec::gtx680()
{
    GpuSpec spec;
    spec.model = "NVIDIA GTX 680";
    spec.generation = GpuGeneration::Kepler;
    spec.cudaCores = 1536;
    spec.coreClockMhz = 1006.0;
    spec.ipcFactor = 0.85; // Kepler per-core-clock efficiency deficit
    spec.videoRate = 0.45e12;
    spec.hasNvenc = true; // first-generation NVENC
    spec.computeQueueSlots = 1;
    spec.vramMiB = 2048;
    spec.tdpWatts = 195.0;
    spec.idleWatts = 15.0;
    return spec;
}

GpuSpec
GpuSpec::gtx285()
{
    GpuSpec spec;
    spec.model = "NVIDIA GTX 285";
    spec.generation = GpuGeneration::Tesla;
    spec.cudaCores = 240;
    spec.coreClockMhz = 648.0;
    spec.ipcFactor = 0.7;
    spec.videoRate = 0.1e12;
    spec.hasNvenc = false;
    spec.computeQueueSlots = 1;
    spec.vramMiB = 1024;
    spec.tdpWatts = 204.0;
    spec.idleWatts = 30.0;
    return spec;
}

GpuModel::GpuModel(const GpuSpec &spec, EventQueue &queue,
                   trace::TraceSession &session)
    : spec_(spec), queue_(queue), session_(session)
{
    for (unsigned e = 0; e < kNumGpuEngines; ++e) {
        unsigned slots = 1;
        if (static_cast<GpuEngineId>(e) == GpuEngineId::Compute)
            slots = std::max(1u, spec_.computeQueueSlots);
        engines_[e].slots.resize(slots);
    }
}

void
GpuModel::submit(Pid pid, GpuEngineId engineId, WorkUnits work,
                 Completion onComplete)
{
    if (work <= 0.0)
        fatal("GpuModel::submit: non-positive work");
    if (engineId == GpuEngineId::VideoEncode && !spec_.hasNvenc)
        fatal("GpuModel::submit: board has no NVENC");

    ++outstanding_[pid];
    Packet packet{pid, work, queue_.now(), std::move(onComplete)};

    Engine &engine = engines_[static_cast<unsigned>(engineId)];
    for (unsigned s = 0; s < engine.slots.size(); ++s) {
        if (!engine.slots[s].busy) {
            startPacket(engineId, s, std::move(packet));
            return;
        }
    }
    engine.pending.push_back(std::move(packet));
}

void
GpuModel::startPacket(GpuEngineId engineId, unsigned slotIdx,
                      Packet packet)
{
    Engine &engine = engines_[static_cast<unsigned>(engineId)];
    Slot &slot = engine.slots[slotIdx];

    if (engine.busySlots == 0)
        engine.busySince = queue_.now();
    ++engine.busySlots;

    slot.busy = true;
    slot.packet = std::move(packet);
    slot.start = queue_.now();

    double rate = spec_.throughput(engineId);
    auto service = static_cast<SimDuration>(slot.packet.work / rate * 1e9);
    if (service == 0)
        service = 1; // packets are never instantaneous

    slot.finishEvent = queue_.scheduleAfter(
        service, [this, engineId, slotIdx] {
            finishPacket(engineId, slotIdx);
        });
}

void
GpuModel::finishPacket(GpuEngineId engineId, unsigned slotIdx)
{
    Engine &engine = engines_[static_cast<unsigned>(engineId)];
    Slot &slot = engine.slots[slotIdx];
    if (!slot.busy)
        panic("GpuModel::finishPacket: idle slot");

    trace::GpuPacketEvent event;
    event.queued = slot.packet.queued;
    event.start = slot.start;
    event.finish = queue_.now();
    event.pid = slot.packet.pid;
    event.engine = engineId;
    event.packetId = nextPacketId_++;
    event.queueSlot = static_cast<std::uint8_t>(slotIdx);
    session_.recordGpuPacket(event);

    Pid pid = slot.packet.pid;
    completedWork_[pid] += slot.packet.work;
    ++packetsCompleted_;
    Completion done = std::move(slot.packet.onComplete);

    slot.busy = false;
    --engine.busySlots;
    if (engine.busySlots == 0)
        engine.busyAccum += queue_.now() - engine.busySince;

    auto it = outstanding_.find(pid);
    if (it == outstanding_.end() || it->second == 0)
        panic("GpuModel::finishPacket: outstanding underflow");
    --it->second;

    if (!engine.pending.empty()) {
        Packet next = std::move(engine.pending.front());
        engine.pending.pop_front();
        startPacket(engineId, slotIdx, std::move(next));
    }

    if (done)
        done();
}

unsigned
GpuModel::outstanding(Pid pid) const
{
    auto it = outstanding_.find(pid);
    return it == outstanding_.end() ? 0 : it->second;
}

double
GpuModel::completedWork(Pid pid) const
{
    auto it = completedWork_.find(pid);
    return it == completedWork_.end() ? 0.0 : it->second;
}

SimDuration
GpuModel::engineBusyTime(GpuEngineId engineId) const
{
    const Engine &engine = engines_[static_cast<unsigned>(engineId)];
    SimDuration busy = engine.busyAccum;
    if (engine.busySlots > 0)
        busy += queue_.now() - engine.busySince;
    return busy;
}

} // namespace deskpar::sim

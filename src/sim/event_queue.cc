#include "sim/event_queue.hh"

#include <utility>

#include "sim/logging.hh"

namespace deskpar::sim {

std::uint32_t
EventQueue::acquireNode()
{
    if (freeHead_ != kNoFree) {
        std::uint32_t index = freeHead_;
        freeHead_ = pool_[index].nextFree;
        return index;
    }
    pool_.emplace_back();
    return static_cast<std::uint32_t>(pool_.size() - 1);
}

void
EventQueue::releaseNode(std::uint32_t index)
{
    Node &node = pool_[index];
    ++node.gen;
    node.callback = nullptr;
    node.nextFree = freeHead_;
    freeHead_ = index;
}

EventQueue::Handle
EventQueue::schedule(SimTime when, Callback cb)
{
    if (when < now_)
        panic("EventQueue::schedule: event in the past");
    if (!cb)
        panic("EventQueue::schedule: empty callback");

    std::uint32_t index = acquireNode();
    Node &node = pool_[index];
    node.callback = std::move(cb);

    Entry entry;
    entry.when = when;
    entry.seq = nextSeq_++;
    entry.index = index;
    entry.gen = node.gen;
    heap_.push(entry);
    ++liveCount_;
    return Handle(this, index, node.gen);
}

void
EventQueue::cancel(Handle &handle)
{
    if (handle.queue_ == this && live(handle.index_, handle.gen_)) {
        releaseNode(handle.index_);
        --liveCount_;
    }
    handle = Handle();
}

const EventQueue::Entry *
EventQueue::peekLive()
{
    while (!heap_.empty()) {
        const Entry &top = heap_.top();
        if (live(top.index, top.gen))
            return &top;
        heap_.pop();
    }
    return nullptr;
}

void
EventQueue::fireTop()
{
    Entry entry = heap_.top();
    heap_.pop();
    now_ = entry.when;
    // Release before running: the callback may reschedule (reusing
    // this node) and the handle must already read as not pending.
    Callback cb = std::move(pool_[entry.index].callback);
    releaseNode(entry.index);
    --liveCount_;
    cb();
}

bool
EventQueue::runOne()
{
    if (!peekLive())
        return false;
    fireTop();
    return true;
}

void
EventQueue::runUntil(SimTime until)
{
    while (const Entry *top = peekLive()) {
        if (top->when > until)
            break;
        fireTop();
    }
    if (now_ < until)
        now_ = until;
}

void
EventQueue::runAll()
{
    while (runOne()) {
    }
}

} // namespace deskpar::sim

#include "sim/event_queue.hh"

#include <cstring>
#include <utility>

#include "sim/logging.hh"

namespace deskpar::sim {

void
EventQueue::EntryHeap::grow(std::size_t atLeast)
{
    std::size_t capacity = capacity_ ? capacity_ * 2 : 256;
    if (capacity < atLeast)
        capacity = atLeast;
    // Three leading pad entries put element 1 (the first child
    // group) on a cache-line boundary: data_ = raw + 48 bytes, so
    // &data_[1] is 64-byte-aligned and every group 4i+1..4i+4 of
    // 16-byte entries spans exactly one line.
    static_assert(sizeof(Entry) == 16, "entry layout drifted");
    void *raw = ::operator new((capacity + 3) * sizeof(Entry),
                               std::align_val_t{64});
    Entry *data = static_cast<Entry *>(raw) + 3;
    if (size_)
        std::memcpy(data, data_, size_ * sizeof(Entry));
    ::operator delete(raw_, std::align_val_t{64});
    raw_ = raw;
    data_ = data;
    capacity_ = capacity;
}

std::uint32_t
EventQueue::acquireNode()
{
    if (freeHead_ != kNoFree) {
        std::uint32_t index = freeHead_;
        freeHead_ = static_cast<std::uint32_t>(tickets_[index] &
                                               kIndexMask);
        return index;
    }
    if (pool_.size() + 1 > kIndexMask)
        panic("EventQueue: node pool exceeds ticket index space");
    pool_.emplace_back();
    tickets_.push_back(kFreeBit | kNoFree);
    return static_cast<std::uint32_t>(pool_.size() - 1);
}

void
EventQueue::releaseNode(std::uint32_t index)
{
    pool_[index].callback = nullptr;
    tickets_[index] = kFreeBit | freeHead_;
    freeHead_ = index;
}

void
EventQueue::siftUp(std::size_t pos, Entry moving)
{
    Entry *data = heap_.data();
    while (pos > 0) {
        std::size_t parent = (pos - 1) / 4;
        if (!earlier(moving, data[parent]))
            break;
        data[pos] = data[parent];
        pos = parent;
    }
    data[pos] = moving;
}

/**
 * Re-place the displaced back element after a pop, bottom-up: walk
 * the min-child path all the way to a leaf moving children up, then
 * bubble the element up from the leaf hole. The element came from
 * the bottom of the heap, so it nearly always belongs near a leaf —
 * descending first saves the per-level "is it earlier than the
 * moving element?" compare a top-down sift pays, and the four-way
 * child minimum is two rounds of conditional moves, not a
 * data-dependent branch.
 */
void
EventQueue::siftDown(Entry moving)
{
    Entry *data = heap_.data();
    const std::size_t size = heap_.size();
    std::size_t pos = 0;

    for (;;) {
        std::size_t first = pos * 4 + 1;
        if (first + 3 < size) {
            // The next level's candidates — the children of all four
            // children — are 16 contiguous entries (4 lines);
            // prefetching them hides the load latency the
            // data-dependent descent can't otherwise overlap.
            std::size_t grand = first * 4 + 1;
            if (grand < size) {
                __builtin_prefetch(data + grand);
                __builtin_prefetch(data + grand + 4);
                __builtin_prefetch(data + grand + 8);
                __builtin_prefetch(data + grand + 12);
            }
            // Full group: one cache line, branchless min of four.
            std::size_t a =
                first + (earlier(data[first + 1], data[first]) ? 1
                                                               : 0);
            std::size_t b =
                first + 2 +
                (earlier(data[first + 3], data[first + 2]) ? 1 : 0);
            std::size_t best = earlier(data[b], data[a]) ? b : a;
            data[pos] = data[best];
            pos = best;
        } else if (first < size) {
            // Partial trailing group (at most once per descent).
            std::size_t best = first;
            for (std::size_t child = first + 1; child < size;
                 ++child) {
                if (earlier(data[child], data[best]))
                    best = child;
            }
            data[pos] = data[best];
            pos = best;
        } else {
            break;
        }
    }

    while (pos > 0) {
        std::size_t parent = (pos - 1) / 4;
        if (!earlier(moving, data[parent]))
            break;
        data[pos] = data[parent];
        pos = parent;
    }
    data[pos] = moving;
}

void
EventQueue::heapPop()
{
    Entry displaced = heap_.back();
    heap_.pop_back();
    if (!heap_.empty())
        siftDown(displaced);
}

EventQueue::Handle
EventQueue::schedule(SimTime when, Callback cb)
{
    if (when < now_)
        panic("EventQueue::schedule: event in the past");
    if (!cb)
        panic("EventQueue::schedule: empty callback");
    // 63, not 64: live tickets must stay below kFreeBit.
    if (nextSeq_ >> (63 - kIndexBits))
        panic("EventQueue::schedule: sequence space exhausted");

    std::uint32_t index = acquireNode();
    std::uint64_t ticket = (nextSeq_++ << kIndexBits) | index;
    tickets_[index] = ticket;
    pool_[index].callback = std::move(cb);

    Entry entry;
    entry.when = when;
    entry.ticket = ticket;
    heap_.extend();
    siftUp(heap_.size() - 1, entry);
    ++liveCount_;
    return Handle(this, ticket);
}

void
EventQueue::cancel(Handle &handle)
{
    if (handle.queue_ == this && live(handle.ticket_)) {
        releaseNode(
            static_cast<std::uint32_t>(handle.ticket_ & kIndexMask));
        --liveCount_;
    }
    handle = Handle();
}

const EventQueue::Entry *
EventQueue::peekLive()
{
    while (!heap_.empty()) {
        const Entry &top = heap_.front();
        if (live(top.ticket)) {
            // fireTop touches this entry's node only after the
            // sift-down; start the (random-index) node fetch now so
            // it overlaps the heap work.
            __builtin_prefetch(&pool_[top.ticket & kIndexMask]);
            return &top;
        }
        heapPop();
    }
    return nullptr;
}

void
EventQueue::fireTop()
{
    Entry entry = heap_.front();
    heapPop();
    now_ = entry.when;
    // Release before running: the callback may reschedule (reusing
    // this node) and the handle must already read as not pending.
    std::uint32_t index =
        static_cast<std::uint32_t>(entry.ticket & kIndexMask);
    Callback cb = std::move(pool_[index].callback);
    releaseNode(index);
    --liveCount_;
    cb();
}

bool
EventQueue::runOne()
{
    if (!peekLive())
        return false;
    fireTop();
    return true;
}

void
EventQueue::runUntil(SimTime until)
{
    while (const Entry *top = peekLive()) {
        if (top->when > until)
            break;
        fireTop();
    }
    if (now_ < until)
        now_ = until;
}

void
EventQueue::runAll()
{
    while (runOne()) {
    }
}

void
EventQueue::reserve(std::size_t events)
{
    heap_.reserve(events);
    if (pool_.size() >= events)
        return;
    // Index kIndexMask is the freelist "none" sentinel.
    if (events >= kIndexMask)
        panic("EventQueue::reserve: beyond ticket index space");
    // Grow the pool and thread the new nodes onto the freelist.
    std::size_t first = pool_.size();
    pool_.resize(events);
    tickets_.resize(events);
    for (std::size_t i = first; i < events; ++i) {
        tickets_[i] = kFreeBit | freeHead_;
        freeHead_ = static_cast<std::uint32_t>(i);
    }
}

} // namespace deskpar::sim

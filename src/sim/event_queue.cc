#include "sim/event_queue.hh"

#include <utility>

#include "sim/logging.hh"

namespace deskpar::sim {

EventQueue::Handle
EventQueue::schedule(SimTime when, Callback cb)
{
    if (when < now_)
        panic("EventQueue::schedule: event in the past");
    if (!cb)
        panic("EventQueue::schedule: empty callback");

    auto node = std::make_shared<Handle::Node>();
    node->when = when;
    node->seq = nextSeq_++;
    node->callback = std::move(cb);
    heap_.push(node);
    ++liveCount_;
    return Handle(node);
}

void
EventQueue::cancel(Handle &handle)
{
    auto node = handle.node_.lock();
    if (node && !node->cancelled && !node->fired) {
        node->cancelled = true;
        node->callback = nullptr;
        --liveCount_;
    }
    handle.node_.reset();
}

EventQueue::NodePtr
EventQueue::popLive()
{
    while (!heap_.empty()) {
        NodePtr node = heap_.top();
        heap_.pop();
        if (!node->cancelled)
            return node;
    }
    return nullptr;
}

bool
EventQueue::runOne()
{
    NodePtr node = popLive();
    if (!node)
        return false;

    now_ = node->when;
    node->fired = true;
    --liveCount_;
    Callback cb = std::move(node->callback);
    node->callback = nullptr;
    cb();
    return true;
}

void
EventQueue::runUntil(SimTime until)
{
    while (!heap_.empty()) {
        // Peek at the earliest live node without executing it yet.
        NodePtr node = heap_.top();
        if (node->cancelled) {
            heap_.pop();
            continue;
        }
        if (node->when > until)
            break;
        heap_.pop();
        now_ = node->when;
        node->fired = true;
        --liveCount_;
        Callback cb = std::move(node->callback);
        node->callback = nullptr;
        cb();
    }
    if (now_ < until)
        now_ = until;
}

void
EventQueue::runAll()
{
    while (runOne()) {
    }
}

} // namespace deskpar::sim

/**
 * @file
 * Fundamental simulation types: simulated time, identifiers, work units.
 *
 * Simulated time is measured in integer nanoseconds from the start of the
 * simulation. Compute work is measured in abstract "work units"; one work
 * unit corresponds to one CPU cycle at the modeled clock, so a thread
 * running on a core clocked at G GHz retires G work units per nanosecond
 * (before SMT-contention derating).
 */

#ifndef DESKPAR_SIM_TYPES_HH
#define DESKPAR_SIM_TYPES_HH

#include <cstdint>
#include <limits>

namespace deskpar::sim {

/** Simulated time in nanoseconds since simulation start. */
using SimTime = std::uint64_t;

/** A span of simulated time in nanoseconds. */
using SimDuration = std::uint64_t;

/** Sentinel for "no time" / unset timestamps. */
inline constexpr SimTime kNoTime = std::numeric_limits<SimTime>::max();

/** Compute work in abstract units (cycles at the modeled clock). */
using WorkUnits = double;

/** OS-level identifiers. Pid/tid 0 is reserved for the idle process. */
using Pid = std::uint32_t;
using Tid = std::uint32_t;

/** Identifier of a logical CPU (hardware thread). */
using CpuId = std::uint32_t;

/** Convert microseconds to SimTime ticks. */
constexpr SimTime
usec(double us)
{
    return static_cast<SimTime>(us * 1e3);
}

/** Convert milliseconds to SimTime ticks. */
constexpr SimTime
msec(double ms)
{
    return static_cast<SimTime>(ms * 1e6);
}

/** Convert seconds to SimTime ticks. */
constexpr SimTime
sec(double s)
{
    return static_cast<SimTime>(s * 1e9);
}

/** Convert a SimTime/SimDuration to floating-point seconds. */
constexpr double
toSeconds(SimTime t)
{
    return static_cast<double>(t) * 1e-9;
}

/** Convert a SimTime/SimDuration to floating-point milliseconds. */
constexpr double
toMillis(SimTime t)
{
    return static_cast<double>(t) * 1e-6;
}

/**
 * Work units needed to occupy a core clocked at @p ghz for @p ms
 * milliseconds. Used by workload models to express compute bursts as
 * target durations at a reference clock.
 */
constexpr WorkUnits
workForMs(double ms, double ghz)
{
    return ms * 1e6 * ghz;
}

} // namespace deskpar::sim

#endif // DESKPAR_SIM_TYPES_HH

/**
 * @file
 * The work-stealing fan-out primitive shared by the suite runner and
 * the trace-ingestion layer.
 *
 * PR 1 introduced a lock-based work-stealing pool inside
 * apps::SuiteRunner; this header extracts it as a generic
 * parallelFor() so lower layers (chunk-parallel CSV decode,
 * section-parallel .etl decode) can fan out without depending on the
 * apps library. Tasks are identified by index; the caller's functor
 * must only touch per-index state (or synchronize itself).
 *
 * Exception contract: the first exception thrown by any task aborts
 * the remaining not-yet-started tasks and is rethrown on the calling
 * thread after every in-flight task finished. With one worker (or one
 * task) everything runs inline on the calling thread in ascending
 * index order — the deterministic serial reference.
 *
 * Header-only so deskpar_trace can use it without a link-time
 * dependency on deskpar_sim (the dependency arrow between those two
 * libraries points the other way).
 */

#ifndef DESKPAR_SIM_PARALLEL_HH
#define DESKPAR_SIM_PARALLEL_HH

#include <atomic>
#include <cstddef>
#include <cstdlib>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/obs.hh"
#include "sim/logging.hh"

namespace deskpar::sim {

/**
 * Resolve a worker-thread count: an explicit @p requested value wins,
 * else the DESKPAR_JOBS environment variable (a positive integer),
 * else hardware concurrency. Never returns 0.
 */
inline unsigned
resolveJobs(unsigned requested = 0)
{
    if (requested > 0)
        return requested;
    if (const char *env = std::getenv("DESKPAR_JOBS")) {
        char *end = nullptr;
        unsigned long n = std::strtoul(env, &end, 10);
        if (end && *end == '\0' && n > 0 && n < 1024)
            return static_cast<unsigned>(n);
        warn("ignoring invalid DESKPAR_JOBS value '" +
             std::string(env) + "'");
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

/**
 * Lock-based work-stealing task queues: every worker owns a deque it
 * pops from the front of; an empty worker steals from the back of a
 * victim's deque. Tasks are coarse (a whole simulation, a multi-
 * megabyte parse chunk), so one mutex per deque is plenty.
 */
class StealingQueues
{
  public:
    StealingQueues(std::size_t workers, std::size_t tasks)
        : queues_(workers)
    {
        // Round-robin initial distribution; stealing rebalances
        // whatever the static split gets wrong.
        for (std::size_t t = 0; t < tasks; ++t)
            queues_[t % workers].tasks.push_back(t);
    }

    /**
     * Pop from our own deque, else steal; false when all are dry.
     * @p stolen (optional) reports whether the task came from a
     * victim's deque rather than our own.
     */
    bool
    next(std::size_t self, std::size_t &task, bool *stolen = nullptr)
    {
        if (stolen)
            *stolen = false;
        auto &own = queues_[self];
        {
            std::lock_guard<std::mutex> lock(own.mutex);
            if (!own.tasks.empty()) {
                task = own.tasks.front();
                own.tasks.pop_front();
                return true;
            }
        }
        for (std::size_t i = 1; i < queues_.size(); ++i) {
            auto &victim = queues_[(self + i) % queues_.size()];
            std::lock_guard<std::mutex> lock(victim.mutex);
            if (!victim.tasks.empty()) {
                task = victim.tasks.back();
                victim.tasks.pop_back();
                if (stolen)
                    *stolen = true;
                return true;
            }
        }
        return false;
    }

  private:
    struct PerWorker
    {
        std::mutex mutex;
        std::deque<std::size_t> tasks;
    };
    std::deque<PerWorker> queues_;
};

/**
 * Run fn(i) for every i in [0, tasks) on up to @p workers threads.
 * See the header comment for the inline-serial and exception
 * contracts.
 */
template <typename Fn>
void
parallelFor(unsigned workers, std::size_t tasks, Fn &&fn)
{
    std::size_t pool_size =
        std::min<std::size_t>(workers ? workers : 1, tasks);
    if (pool_size <= 1) {
        for (std::size_t i = 0; i < tasks; ++i) {
            obs::Span span("parallel.task", obs::SpanKind::Task, i);
            fn(i);
        }
        return;
    }

    StealingQueues queues(pool_size, tasks);
    std::atomic<bool> abort{false};
    std::exception_ptr firstError;
    std::mutex errorMutex;

    auto worker = [&](std::size_t self) {
        obs::Span workerSpan("parallel.worker", obs::SpanKind::Task,
                             self);
        std::size_t index;
        bool stolen = false;
        while (!abort.load(std::memory_order_relaxed) &&
               queues.next(self, index, &stolen)) {
            if (stolen)
                obs::counterAdd("parallel.steals", 1);
            try {
                obs::Span span("parallel.task", obs::SpanKind::Task,
                               index);
                fn(index);
            } catch (...) {
                std::lock_guard<std::mutex> lock(errorMutex);
                if (!firstError)
                    firstError = std::current_exception();
                abort.store(true, std::memory_order_relaxed);
            }
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(pool_size);
    for (std::size_t w = 0; w < pool_size; ++w)
        pool.emplace_back(worker, w);
    for (auto &thread : pool)
        thread.join();
    if (firstError)
        std::rethrow_exception(firstError);
}

} // namespace deskpar::sim

#endif // DESKPAR_SIM_PARALLEL_HH

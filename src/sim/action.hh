/**
 * @file
 * Thread actions: the vocabulary a workload behavior uses to drive its
 * thread. The thread runtime pulls the next Action from the behavior
 * whenever the previous one completes; zero-time actions (GPU submit,
 * signal, marker, present, spawn) are processed inline, while Compute,
 * Sleep and the Wait* actions occupy or block the thread.
 */

#ifndef DESKPAR_SIM_ACTION_HH
#define DESKPAR_SIM_ACTION_HH

#include <cstdint>
#include <memory>
#include <string>
#include <utility>

#include "sim/types.hh"
#include "trace/event.hh"

namespace deskpar::sim {

class ThreadBehavior;

/** Identifier of a counting-semaphore sync object (see SyncHub). */
using SyncId = std::int32_t;

/** Sentinel for "no sync object". */
inline constexpr SyncId kNoSync = -1;

/**
 * One step of thread execution. Construct via the static factories.
 */
struct Action
{
    enum class Kind : std::uint8_t {
        Compute,    ///< Occupy a CPU for `work` units.
        GpuAsync,   ///< Submit a GPU packet and continue.
        GpuSync,    ///< Block until this thread's GPU packets finish.
        Sleep,      ///< Block for `duration` ns.
        SleepUntil, ///< Block until absolute time `until`.
        WaitSync,   ///< Consume a token from sync object `syncId`.
        SignalSync, ///< Add `count` tokens to sync object `syncId`.
        Spawn,      ///< Create a sibling thread running `spawnBehavior`.
        Present,    ///< Emit a frame-present trace event.
        Marker,     ///< Emit a marker trace event.
        Exit,       ///< Terminate the thread.
    };

    Kind kind = Kind::Exit;
    WorkUnits work = 0;
    trace::GpuEngineId engine = trace::GpuEngineId::Graphics3D;
    SimDuration duration = 0;
    SimTime until = 0;
    SyncId syncId = kNoSync;
    std::uint32_t count = 1;
    std::shared_ptr<ThreadBehavior> spawnBehavior;
    std::string label;
    bool frameSynthesized = false;

    /** Occupy a CPU for @p work units (cycles). */
    static Action
    compute(WorkUnits work)
    {
        Action a;
        a.kind = Kind::Compute;
        a.work = work;
        return a;
    }

    /** Submit @p work units to GPU engine @p engine; don't wait. */
    static Action
    gpuAsync(trace::GpuEngineId engine, WorkUnits work)
    {
        Action a;
        a.kind = Kind::GpuAsync;
        a.engine = engine;
        a.work = work;
        return a;
    }

    /** Block until all packets this thread submitted have finished. */
    static Action
    gpuSync()
    {
        Action a;
        a.kind = Kind::GpuSync;
        return a;
    }

    /** Block for @p duration ns. */
    static Action
    sleep(SimDuration duration)
    {
        Action a;
        a.kind = Kind::Sleep;
        a.duration = duration;
        return a;
    }

    /** Block until absolute simulated time @p until (no-op if past). */
    static Action
    sleepUntil(SimTime until)
    {
        Action a;
        a.kind = Kind::SleepUntil;
        a.until = until;
        return a;
    }

    /** Consume one token from @p id, blocking while none available. */
    static Action
    waitSync(SyncId id)
    {
        Action a;
        a.kind = Kind::WaitSync;
        a.syncId = id;
        return a;
    }

    /** Add @p count tokens to @p id, waking blocked waiters. */
    static Action
    signalSync(SyncId id, std::uint32_t count = 1)
    {
        Action a;
        a.kind = Kind::SignalSync;
        a.syncId = id;
        a.count = count;
        return a;
    }

    /** Create a new thread in this process running @p behavior. */
    static Action
    spawn(std::shared_ptr<ThreadBehavior> behavior, std::string name)
    {
        Action a;
        a.kind = Kind::Spawn;
        a.spawnBehavior = std::move(behavior);
        a.label = std::move(name);
        return a;
    }

    /** Emit a frame-present event (frame ids assigned per process). */
    static Action
    present(bool synthesized = false)
    {
        Action a;
        a.kind = Kind::Present;
        a.frameSynthesized = synthesized;
        return a;
    }

    /** Emit a marker event labelled @p label. */
    static Action
    marker(std::string label)
    {
        Action a;
        a.kind = Kind::Marker;
        a.label = std::move(label);
        return a;
    }

    /** Terminate the thread. */
    static Action
    exit()
    {
        return Action{};
    }
};

} // namespace deskpar::sim

#endif // DESKPAR_SIM_ACTION_HH

#include "sim/sync.hh"

#include "sim/logging.hh"
#include "sim/thread.hh"

namespace deskpar::sim {

SyncId
SyncHub::alloc(std::uint32_t initial)
{
    objects_.push_back(Semaphore{initial, {}});
    return static_cast<SyncId>(objects_.size() - 1);
}

SyncHub::Semaphore &
SyncHub::at(SyncId id)
{
    if (id < 0 || static_cast<std::size_t>(id) >= objects_.size())
        panic("SyncHub: bad sync id");
    return objects_[static_cast<std::size_t>(id)];
}

const SyncHub::Semaphore &
SyncHub::at(SyncId id) const
{
    return const_cast<SyncHub *>(this)->at(id);
}

std::uint32_t
SyncHub::tokens(SyncId id) const
{
    return at(id).count;
}

std::size_t
SyncHub::waiters(SyncId id) const
{
    return at(id).waiters.size();
}

bool
SyncHub::tryWait(SyncId id)
{
    Semaphore &sem = at(id);
    if (sem.count == 0)
        return false;
    --sem.count;
    return true;
}

void
SyncHub::addWaiter(SyncId id, SimThread *thread)
{
    at(id).waiters.push_back(thread);
}

void
SyncHub::signal(SyncId id, std::uint32_t count)
{
    at(id).count += count;
    // Wake waiters FIFO while tokens remain; each wake consumes one.
    // Re-fetch the semaphore every iteration: a woken thread may
    // allocate new semaphores (reallocating objects_) or signal this
    // one reentrantly.
    while (true) {
        Semaphore &sem = at(id);
        if (sem.count == 0 || sem.waiters.empty())
            break;
        SimThread *thread = sem.waiters.front();
        sem.waiters.pop_front();
        --sem.count;
        thread->wake();
    }
}

} // namespace deskpar::sim

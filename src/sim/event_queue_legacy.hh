/**
 * @file
 * The pre-rewrite event queue, preserved as a reference model.
 *
 * This is the std::priority_queue (binary heap) + std::function
 * implementation that EventQueue shipped with before the 4-ary
 * implicit-heap rewrite, kept verbatim in the legacy namespace for
 * two consumers:
 *
 *  - tests/sim/event_queue_diff_test.cc drives both queues with the
 *    same randomized schedule/cancel/run script and asserts identical
 *    pop order (equal-timestamp FIFO ties included), identical handle
 *    liveness after cancellation, and identical runUntil/runOne
 *    observable behavior;
 *  - bench/bench_micro_sim_events.cc measures simulated-events/sec
 *    A/B against it, which is what the >=2x tentpole floor is
 *    relative to.
 *
 * Semantics are documented on EventQueue (sim/event_queue.hh); the
 * two must stay observably identical. Do not optimize this class.
 */

#ifndef DESKPAR_SIM_EVENT_QUEUE_LEGACY_HH
#define DESKPAR_SIM_EVENT_QUEUE_LEGACY_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <utility>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace deskpar::sim::legacy {

/**
 * Binary-heap event queue: the pre-rewrite EventQueue.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    class Handle
    {
      public:
        Handle() = default;

        bool
        pending() const
        {
            return queue_ && queue_->live(index_, gen_);
        }

      private:
        friend class EventQueue;

        Handle(const EventQueue *queue, std::uint32_t index,
               std::uint32_t gen)
            : queue_(queue), index_(index), gen_(gen)
        {}

        const EventQueue *queue_ = nullptr;
        std::uint32_t index_ = 0;
        std::uint32_t gen_ = 0;
    };

    EventQueue() = default;

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    SimTime now() const { return now_; }

    Handle
    schedule(SimTime when, Callback cb)
    {
        if (when < now_)
            panic("EventQueue::schedule: event in the past");
        if (!cb)
            panic("EventQueue::schedule: empty callback");

        std::uint32_t index = acquireNode();
        Node &node = pool_[index];
        node.callback = std::move(cb);

        Entry entry;
        entry.when = when;
        entry.seq = nextSeq_++;
        entry.index = index;
        entry.gen = node.gen;
        heap_.push(entry);
        ++liveCount_;
        return Handle(this, index, node.gen);
    }

    Handle
    scheduleAfter(SimDuration delay, Callback cb)
    {
        return schedule(now_ + delay, std::move(cb));
    }

    void
    cancel(Handle &handle)
    {
        if (handle.queue_ == this &&
            live(handle.index_, handle.gen_)) {
            releaseNode(handle.index_);
            --liveCount_;
        }
        handle = Handle();
    }

    bool
    runOne()
    {
        if (!peekLive())
            return false;
        fireTop();
        return true;
    }

    void
    runUntil(SimTime until)
    {
        while (const Entry *top = peekLive()) {
            if (top->when > until)
                break;
            fireTop();
        }
        if (now_ < until)
            now_ = until;
    }

    void
    runAll()
    {
        while (runOne()) {
        }
    }

    std::size_t pendingCount() const { return liveCount_; }

    bool empty() const { return liveCount_ == 0; }

  private:
    struct Node
    {
        std::uint32_t gen = 0;
        std::uint32_t nextFree = 0;
        Callback callback;
    };

    struct Entry
    {
        SimTime when = 0;
        std::uint64_t seq = 0;
        std::uint32_t index = 0;
        std::uint32_t gen = 0;
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    bool
    live(std::uint32_t index, std::uint32_t gen) const
    {
        return index < pool_.size() && pool_[index].gen == gen;
    }

    std::uint32_t
    acquireNode()
    {
        if (freeHead_ != kNoFree) {
            std::uint32_t index = freeHead_;
            freeHead_ = pool_[index].nextFree;
            return index;
        }
        pool_.emplace_back();
        return static_cast<std::uint32_t>(pool_.size() - 1);
    }

    void
    releaseNode(std::uint32_t index)
    {
        Node &node = pool_[index];
        ++node.gen;
        node.callback = nullptr;
        node.nextFree = freeHead_;
        freeHead_ = index;
    }

    const Entry *
    peekLive()
    {
        while (!heap_.empty()) {
            const Entry &top = heap_.top();
            if (live(top.index, top.gen))
                return &top;
            heap_.pop();
        }
        return nullptr;
    }

    void
    fireTop()
    {
        Entry entry = heap_.top();
        heap_.pop();
        now_ = entry.when;
        // Release before running: the callback may reschedule
        // (reusing this node) and the handle must already read as
        // not pending.
        Callback cb = std::move(pool_[entry.index].callback);
        releaseNode(entry.index);
        --liveCount_;
        cb();
    }

    SimTime now_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::size_t liveCount_ = 0;
    std::vector<Node> pool_;
    std::uint32_t freeHead_ = kNoFree;
    std::priority_queue<Entry, std::vector<Entry>, Later> heap_;

    static constexpr std::uint32_t kNoFree = 0xffffffffu;
};

} // namespace deskpar::sim::legacy

#endif // DESKPAR_SIM_EVENT_QUEUE_LEGACY_HH

#include "sim/machine.hh"

#include "sim/logging.hh"

namespace deskpar::sim {

namespace {

std::vector<bool>
buildMask(const CpuTopology &topology, const MachineConfig &config)
{
    if (config.smtEnabled)
        return topology.maskSmt(config.activeCpus);
    return topology.maskNoSmt(config.activeCpus);
}

} // namespace

MachineConfig
MachineConfig::paperDefault()
{
    MachineConfig config;
    config.cpu = CpuSpec::i78700K();
    config.gpu = GpuSpec::gtx1080Ti();
    config.activeCpus = 12;
    config.smtEnabled = true;
    return config;
}

Machine::Machine(const MachineConfig &config)
    : config_(config), topology_(config.cpu), rootRng_(config.seed),
      queue_(), session_(trace::kProviderAll),
      gpu_(config.gpu, queue_, session_),
      scheduler_(topology_, buildMask(topology_, config), config.quantum,
                 queue_, session_),
      llcModel_(static_cast<double>(config.cpu.llcMiB))
{
    // The header sizes the analyses' per-cpu arrays, so it must cover
    // the id space events are stamped with — the span, not the count
    // (a no-SMT mask is sparse: ids 0, 2, 4, ...). Inactive ids in
    // the span never appear in events, so concurrency histograms are
    // unaffected beyond trailing always-zero levels.
    session_.setNumLogicalCpus(scheduler_.activeCpuSpan());
    session_.registerProcess(0, "Idle");
    if (config.llcModelEnabled)
        scheduler_.setLlcModel(&llcModel_);
    // Pre-size the event pool so the opening flurry of quantum and
    // sleep events schedules without growing the heap vectors.
    queue_.reserve(256);
}

Machine::~Machine()
{
    // Arena objects need explicit destruction (the arena only owns
    // raw memory); reverse creation order, processes destroy their
    // threads the same way.
    for (auto it = processes_.rbegin(); it != processes_.rend(); ++it)
        arena_.destroy(*it);
}

SimProcess &
Machine::createProcess(const std::string &name, double smt_friendliness)
{
    if (smt_friendliness < 0.0 || smt_friendliness > 1.0)
        fatal("Machine::createProcess: smt_friendliness out of [0,1]");

    Pid pid = nextPid_++;
    SimProcess *process = arena_.create<SimProcess>(
        *this, pid, name, smt_friendliness, rootRng_.fork(name));
    SimProcess &ref = *process;
    processes_.push_back(process);

    trace::ProcessLifeEvent event;
    event.timestamp = now();
    event.pid = pid;
    event.created = true;
    event.name = name;
    session_.recordProcessLife(event);
    return ref;
}

SimProcess *
Machine::findProcess(Pid pid)
{
    for (SimProcess *process : processes_) {
        if (process->pid() == pid)
            return process;
    }
    return nullptr;
}

SyncId
Machine::inputChannel(int channel)
{
    auto it = inputChannels_.find(channel);
    if (it != inputChannels_.end())
        return it->second;
    SyncId id = sync_.alloc(0);
    inputChannels_.emplace(channel, id);
    return id;
}

void
Machine::deliverInput(int channel, std::uint32_t count,
                      const std::string &label)
{
    // Stamp the delivery so responsiveness analyses can measure
    // input-to-dispatch latency (analysis/responsiveness.hh) and
    // timelines can show the scripted user action.
    trace::MarkerEvent marker;
    marker.timestamp = now();
    marker.label = "input:" + std::to_string(channel);
    if (!label.empty())
        marker.label += ":" + label;
    session_.recordMarker(marker);

    sync_.signal(inputChannel(channel), count);
}

} // namespace deskpar::sim

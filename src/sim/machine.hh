/**
 * @file
 * Machine: the top-level simulated desktop — CPU topology, GPU,
 * scheduler, sync hub, trace session, and process table. One Machine
 * per experiment iteration.
 */

#ifndef DESKPAR_SIM_MACHINE_HH
#define DESKPAR_SIM_MACHINE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/arena.hh"
#include "sim/cpu.hh"
#include "sim/event_queue.hh"
#include "sim/gpu.hh"
#include "sim/memory.hh"
#include "sim/process.hh"
#include "sim/rng.hh"
#include "sim/scheduler.hh"
#include "sim/sync.hh"
#include "sim/types.hh"
#include "trace/session.hh"

namespace deskpar::sim {

/**
 * Machine configuration: hardware specs plus the experiment's
 * core-scaling and SMT knobs.
 */
struct MachineConfig
{
    CpuSpec cpu = CpuSpec::i78700K();
    GpuSpec gpu = GpuSpec::gtx1080Ti();

    /**
     * With SMT enabled: the number of active logical CPUs (must be
     * even; the paper sweeps 4/8/12). With SMT disabled: the number
     * of active physical cores, each exposing one logical CPU.
     */
    unsigned activeCpus = 12;
    bool smtEnabled = true;

    /** Scheduler timeslice. */
    SimDuration quantum = msec(10);

    /**
     * Enable the LLC contention model (sim/memory.hh). Off by
     * default: the calibrated workloads assume uncontended caches.
     */
    bool llcModelEnabled = false;

    /** Master seed; every stochastic component forks from it. */
    std::uint64_t seed = 1;

    /** The paper's Table I machine at full resources. */
    static MachineConfig paperDefault();

    /** Number of logical CPUs that will be active. */
    unsigned
    activeLogicalCpus() const
    {
        return activeCpus;
    }
};

/**
 * The simulated desktop machine.
 */
class Machine
{
  public:
    explicit Machine(const MachineConfig &config);
    ~Machine();

    Machine(const Machine &) = delete;
    Machine &operator=(const Machine &) = delete;

    const MachineConfig &config() const { return config_; }
    const CpuTopology &topology() const { return topology_; }

    EventQueue &queue() { return queue_; }

    /**
     * Run-lifetime allocator: objects that live exactly as long as
     * this machine (thread runtimes, per-run state) are carved out of
     * it so mid-run spawns do no individual heap allocation. See
     * sim/arena.hh for the ownership rules.
     */
    Arena &arena() { return arena_; }
    trace::TraceSession &session() { return session_; }
    GpuModel &gpu() { return gpu_; }
    OsScheduler &scheduler() { return scheduler_; }
    SyncHub &sync() { return sync_; }

    /** Current simulated time. */
    SimTime now() const { return queue_.now(); }

    /** Number of active logical CPUs. */
    unsigned
    activeLogicalCpus() const
    {
        return scheduler_.activeCpuCount();
    }

    bool smtEnabled() const { return config_.smtEnabled; }

    /**
     * Create a process named @p name. @p smt_friendliness is the
     * workload's SMT contention parameter (see CpuSpec docs).
     */
    SimProcess &createProcess(const std::string &name,
                              double smt_friendliness = 0.3);

    /** All processes, in creation order (arena-owned storage). */
    const std::vector<SimProcess *> &
    processes() const
    {
        return processes_;
    }

    /** Look up a process by pid (nullptr if unknown). */
    SimProcess *findProcess(Pid pid);

    /**
     * Sync id used to deliver user-input events on @p channel
     * (allocated on first use). Threads wait on it; input drivers
     * signal it.
     */
    SyncId inputChannel(int channel);

    /**
     * Deliver @p count input events on @p channel. @p label (may be
     * empty) names the user action and is appended to the trace
     * marker ("input:3:sort rows").
     */
    void deliverInput(int channel, std::uint32_t count = 1,
                      const std::string &label = {});

    /** Advance simulated time to @p until, running all due events. */
    void run(SimTime until) { queue_.runUntil(until); }

    /** Fork an RNG substream keyed by @p name from the machine seed. */
    Rng
    forkRng(const std::string &name) const
    {
        return rootRng_.fork(name);
    }

  private:
    MachineConfig config_;
    CpuTopology topology_;
    Rng rootRng_;
    Arena arena_;
    EventQueue queue_;
    trace::TraceSession session_;
    GpuModel gpu_;
    OsScheduler scheduler_;
    SyncHub sync_;
    LlcModel llcModel_;
    Pid nextPid_ = 1000;
    std::vector<SimProcess *> processes_;
    std::unordered_map<int, SyncId> inputChannels_;
};

} // namespace deskpar::sim

#endif // DESKPAR_SIM_MACHINE_HH

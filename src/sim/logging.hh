/**
 * @file
 * Error-reporting helpers in the gem5 spirit: fatal() for user errors
 * (bad configuration, invalid arguments) and panic() for internal
 * invariant violations.
 */

#ifndef DESKPAR_SIM_LOGGING_HH
#define DESKPAR_SIM_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace deskpar {

/** Thrown by fatal(): the simulation cannot continue due to user error. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg)
        : std::runtime_error(msg)
    {}
};

/** Thrown by panic(): an internal invariant was violated (a bug). */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg)
        : std::logic_error(msg)
    {}
};

/**
 * Report a condition that is the user's fault (bad configuration,
 * invalid arguments). Throws FatalError so callers and tests can catch.
 */
[[noreturn]] inline void
fatal(const std::string &msg)
{
    throw FatalError("fatal: " + msg);
}

/**
 * Report a condition that should never happen regardless of user input
 * (an internal bug). Throws PanicError.
 */
[[noreturn]] inline void
panic(const std::string &msg)
{
    throw PanicError("panic: " + msg);
}

/** Report a recoverable oddity to stderr without stopping. */
inline void
warn(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

} // namespace deskpar

#endif // DESKPAR_SIM_LOGGING_HH

/**
 * @file
 * Deterministic random-number generation for reproducible simulations.
 *
 * Every stochastic component draws from an Rng seeded from the machine
 * seed plus a stable stream identifier, so two runs with the same seed
 * produce bit-identical traces while distinct components stay
 * statistically independent.
 */

#ifndef DESKPAR_SIM_RNG_HH
#define DESKPAR_SIM_RNG_HH

#include <cmath>
#include <cstdint>
#include <random>
#include <string_view>

namespace deskpar::sim {

/**
 * Seeded pseudo-random generator with convenience draws.
 *
 * Thin wrapper over std::mt19937_64; cheap to fork into independent
 * substreams via fork().
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed. */
    explicit Rng(std::uint64_t seed)
        : baseSeed_(seed), engine_(seed)
    {}

    /** Uniform real in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return std::uniform_real_distribution<double>(lo, hi)(engine_);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t
    uniformInt(std::int64_t lo, std::int64_t hi)
    {
        return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
    }

    /** Normal draw clamped to be non-negative. */
    double
    normalNonNeg(double mean, double stddev)
    {
        double v = std::normal_distribution<double>(mean, stddev)(engine_);
        return v < 0.0 ? 0.0 : v;
    }

    /** Exponential draw with the given mean. */
    double
    exponential(double mean)
    {
        return std::exponential_distribution<double>(1.0 / mean)(engine_);
    }

    /** Bernoulli draw with success probability p. */
    bool
    bernoulli(double p)
    {
        return std::bernoulli_distribution(p)(engine_);
    }

    /** Raw 64-bit draw. */
    std::uint64_t
    raw()
    {
        return engine_();
    }

    /**
     * @{ Direct-arithmetic fast draws. These consume the engine
     * differently from the std::-distribution methods above, so they
     * are for sequence-free consumers only (the sweep scenario
     * generator, benches): the calibrated workload models keep the
     * draw-for-draw stable methods, whose sequences the Table II
     * operating-point tests are aligned to.
     */

    /** Uniform real in [0, 1): top 53 bits of one engine draw. */
    double
    unit()
    {
        return static_cast<double>(engine_() >> 11) * 0x1.0p-53;
    }

    /**
     * Standard normal draw. Box-Muller in batch-of-two: each pair of
     * engine draws yields two gaussians, the second cached for the
     * next call — half the transcendental work of the fresh
     * std::normal_distribution per call above, which discards its
     * spare every time.
     */
    double
    gaussian()
    {
        if (hasSpare_) {
            hasSpare_ = false;
            return spare_;
        }
        // u1 in (0,1] so the log argument never hits zero.
        double u1 =
            static_cast<double>((engine_() >> 11) + 1) * 0x1.0p-53;
        double u2 = unit();
        double r = std::sqrt(-2.0 * std::log(u1));
        double theta = 6.283185307179586476925286766559 * u2;
        spare_ = r * std::sin(theta);
        hasSpare_ = true;
        return r * std::cos(theta);
    }
    /** @} */

    /**
     * Derive an independent substream keyed by @p stream_id.
     * Deterministic: the same parent seed and id give the same child.
     */
    Rng
    fork(std::uint64_t stream_id) const
    {
        // SplitMix64-style mix of the base seed and the stream id;
        // avoids correlated substreams from sequential ids.
        std::uint64_t z = baseSeed_ + stream_id * 0x9e3779b97f4a7c15ULL;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return Rng(z ^ (z >> 31));
    }

    /**
     * Derive an independent substream keyed by a string (e.g. a process
     * name), so workloads get stable streams across suite reorderings.
     */
    Rng
    fork(std::string_view name) const
    {
        // FNV-1a hash of the name.
        std::uint64_t h = 0xcbf29ce484222325ULL;
        for (char c : name) {
            h ^= static_cast<unsigned char>(c);
            h *= 0x100000001b3ULL;
        }
        return fork(h);
    }

    /** Accessor for the construction seed (used in diagnostics). */
    std::uint64_t baseSeed() const { return baseSeed_; }

  private:
    // The construction seed is remembered so fork() derives structural
    // (not temporal) substreams: independent of how many draws happened.
    std::uint64_t baseSeed_;
    std::mt19937_64 engine_;
    // Cached second gaussian of the current Box-Muller pair
    // (gaussian() fast path only; never touched by the stable draws).
    double spare_ = 0.0;
    bool hasSpare_ = false;
};

} // namespace deskpar::sim

#endif // DESKPAR_SIM_RNG_HH

/**
 * @file
 * SyncHub: counting semaphores used for all inter-thread coordination
 * (fork/join, pipelines, producer/consumer queues) and for delivering
 * user-input events to waiting threads.
 */

#ifndef DESKPAR_SIM_SYNC_HH
#define DESKPAR_SIM_SYNC_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "sim/action.hh"
#include "sim/types.hh"

namespace deskpar::sim {

class SimThread;

/**
 * A registry of counting semaphores. Waiters are woken FIFO; each
 * wake consumes one token.
 */
class SyncHub
{
  public:
    SyncHub() = default;

    SyncHub(const SyncHub &) = delete;
    SyncHub &operator=(const SyncHub &) = delete;

    /** Allocate a new semaphore with @p initial tokens. */
    SyncId alloc(std::uint32_t initial = 0);

    /** Current token count of @p id. */
    std::uint32_t tokens(SyncId id) const;

    /** Number of threads blocked on @p id. */
    std::size_t waiters(SyncId id) const;

    /**
     * Consume a token without blocking.
     * @return true if a token was available and consumed.
     */
    bool tryWait(SyncId id);

    /** Park @p thread on @p id (called by the thread runtime). */
    void addWaiter(SyncId id, SimThread *thread);

    /**
     * Add @p count tokens, waking up to @p count blocked threads.
     * Woken threads resume via SimThread::wake().
     */
    void signal(SyncId id, std::uint32_t count = 1);

    /** Total semaphores allocated. */
    std::size_t size() const { return objects_.size(); }

  private:
    struct Semaphore
    {
        std::uint32_t count = 0;
        std::deque<SimThread *> waiters;
    };

    Semaphore &at(SyncId id);
    const Semaphore &at(SyncId id) const;

    std::vector<Semaphore> objects_;
};

} // namespace deskpar::sim

#endif // DESKPAR_SIM_SYNC_HH

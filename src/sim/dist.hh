/**
 * @file
 * Declarative distribution specifications for workload parameters.
 *
 * Workload models describe burst lengths, think times, and packet sizes
 * as Dist values; samples are drawn at runtime from a process-local Rng
 * so each iteration with a new seed sees fresh but reproducible values.
 */

#ifndef DESKPAR_SIM_DIST_HH
#define DESKPAR_SIM_DIST_HH

#include <cstddef>

#include "sim/logging.hh"
#include "sim/rng.hh"

namespace deskpar::sim {

/**
 * A small value-type describing a scalar distribution.
 *
 * Supported shapes: fixed constant, uniform, non-negative normal,
 * and exponential.
 */
class Dist
{
  public:
    /** Default: the constant zero. */
    Dist() = default;

    /** Constant value. */
    static Dist
    fixed(double v)
    {
        return Dist(Kind::Fixed, v, 0.0);
    }

    /** Uniform in [lo, hi). */
    static Dist
    uniform(double lo, double hi)
    {
        if (hi < lo)
            fatal("Dist::uniform: hi < lo");
        return Dist(Kind::Uniform, lo, hi);
    }

    /** Normal(mean, stddev) clamped at zero. */
    static Dist
    normal(double mean, double stddev)
    {
        if (stddev < 0.0)
            fatal("Dist::normal: negative stddev");
        return Dist(Kind::Normal, mean, stddev);
    }

    /** Exponential with the given mean. */
    static Dist
    exponential(double mean)
    {
        if (mean <= 0.0)
            fatal("Dist::exponential: non-positive mean");
        return Dist(Kind::Exponential, mean, 0.0);
    }

    /** Draw one sample. */
    double
    sample(Rng &rng) const
    {
        switch (kind_) {
          case Kind::Fixed:
            return a_;
          case Kind::Uniform:
            return rng.uniform(a_, b_);
          case Kind::Normal:
            return rng.normalNonNeg(a_, b_);
          case Kind::Exponential:
            return rng.exponential(a_);
        }
        panic("Dist::sample: bad kind");
    }

    /**
     * Draw @p count samples into @p out. One kind dispatch for the
     * whole batch instead of one per draw; the draws themselves go
     * through the sequence-stable Rng methods, so the batch consumes
     * the engine exactly as @p count sequential sample() calls would
     * — callers can batch without perturbing calibrated streams.
     */
    void
    sampleBatch(Rng &rng, double *out, std::size_t count) const
    {
        switch (kind_) {
          case Kind::Fixed:
            for (std::size_t i = 0; i < count; ++i)
                out[i] = a_;
            return;
          case Kind::Uniform:
            for (std::size_t i = 0; i < count; ++i)
                out[i] = rng.uniform(a_, b_);
            return;
          case Kind::Normal:
            for (std::size_t i = 0; i < count; ++i)
                out[i] = rng.normalNonNeg(a_, b_);
            return;
          case Kind::Exponential:
            for (std::size_t i = 0; i < count; ++i)
                out[i] = rng.exponential(a_);
            return;
        }
        panic("Dist::sampleBatch: bad kind");
    }

    /** Expected value of the distribution. */
    double
    mean() const
    {
        switch (kind_) {
          case Kind::Fixed:
            return a_;
          case Kind::Uniform:
            return 0.5 * (a_ + b_);
          case Kind::Normal:
            return a_; // clamping bias ignored for small stddev/mean
          case Kind::Exponential:
            return a_;
        }
        panic("Dist::mean: bad kind");
    }

    /** Return a copy scaled by @p factor (scales both parameters). */
    Dist
    scaled(double factor) const
    {
        Dist d = *this;
        d.a_ *= factor;
        if (kind_ == Kind::Uniform || kind_ == Kind::Normal)
            d.b_ *= factor;
        return d;
    }

  private:
    enum class Kind { Fixed, Uniform, Normal, Exponential };

    Dist(Kind kind, double a, double b)
        : kind_(kind), a_(a), b_(b)
    {}

    Kind kind_ = Kind::Fixed;
    double a_ = 0.0;
    double b_ = 0.0;
};

} // namespace deskpar::sim

#endif // DESKPAR_SIM_DIST_HH

#include "sim/thread.hh"

#include <utility>

#include "sim/logging.hh"
#include "sim/machine.hh"
#include "sim/process.hh"

namespace deskpar::sim {

const char *
threadStateName(ThreadState state)
{
    switch (state) {
      case ThreadState::Created:
        return "Created";
      case ThreadState::Ready:
        return "Ready";
      case ThreadState::Running:
        return "Running";
      case ThreadState::Sleeping:
        return "Sleeping";
      case ThreadState::BlockedSync:
        return "BlockedSync";
      case ThreadState::BlockedGpu:
        return "BlockedGpu";
      case ThreadState::Terminated:
        return "Terminated";
    }
    return "Unknown";
}

SimThread::SimThread(SimProcess &process, Tid tid, std::string name,
                     std::shared_ptr<ThreadBehavior> behavior)
    : process_(process), tid_(tid), name_(std::move(name)),
      behavior_(std::move(behavior))
{
    if (!behavior_)
        fatal("SimThread: null behavior");
}

Pid
SimThread::pid() const
{
    return process_.pid();
}

ThreadContext
SimThread::makeContext()
{
    Machine &machine = process_.machine();
    ThreadContext ctx;
    ctx.now = machine.now();
    ctx.pid = pid();
    ctx.tid = tid_;
    ctx.rng = &process_.rng();
    ctx.gpu = &machine.gpu().spec();
    ctx.activeLogicalCpus = machine.activeLogicalCpus();
    ctx.smtEnabled = machine.smtEnabled();
    ctx.gpuOutstanding = gpuOutstanding_;
    return ctx;
}

void
SimThread::consumeWork(WorkUnits done)
{
    if (done > remainingWork_)
        done = remainingWork_;
    remainingWork_ -= done;
    retiredWork_ += done;
}

bool
SimThread::step(const Action &action, AdvanceResult &result)
{
    Machine &machine = process_.machine();

    switch (action.kind) {
      case Action::Kind::Compute:
        if (action.work <= 0.0)
            return true;
        remainingWork_ = action.work;
        result = AdvanceResult::WantsCpu;
        return false;

      case Action::Kind::GpuAsync:
        ++gpuOutstanding_;
        machine.gpu().submit(pid(), action.engine, action.work,
                             [this] { onGpuPacketDone(); });
        return true;

      case Action::Kind::GpuSync:
        if (gpuOutstanding_ == 0)
            return true;
        state_ = ThreadState::BlockedGpu;
        result = AdvanceResult::Blocked;
        return false;

      case Action::Kind::Sleep:
        if (action.duration == 0)
            return true;
        state_ = ThreadState::Sleeping;
        sleepEvent_ = machine.queue().scheduleAfter(
            action.duration, [this] { wake(); });
        result = AdvanceResult::Blocked;
        return false;

      case Action::Kind::SleepUntil:
        if (action.until <= machine.now())
            return true;
        state_ = ThreadState::Sleeping;
        sleepEvent_ = machine.queue().schedule(action.until,
                                               [this] { wake(); });
        result = AdvanceResult::Blocked;
        return false;

      case Action::Kind::WaitSync:
        if (machine.sync().tryWait(action.syncId))
            return true;
        state_ = ThreadState::BlockedSync;
        machine.sync().addWaiter(action.syncId, this);
        result = AdvanceResult::Blocked;
        return false;

      case Action::Kind::SignalSync:
        machine.sync().signal(action.syncId, action.count);
        return true;

      case Action::Kind::Spawn:
        process_.createThread(action.spawnBehavior, action.label);
        return true;

      case Action::Kind::Present: {
        trace::FrameEvent event;
        event.timestamp = machine.now();
        event.pid = pid();
        event.frameId = process_.nextFrameId();
        event.synthesized = action.frameSynthesized;
        machine.session().recordFrame(event);
        return true;
      }

      case Action::Kind::Marker: {
        trace::MarkerEvent event;
        event.timestamp = machine.now();
        event.label = action.label;
        machine.session().recordMarker(event);
        return true;
      }

      case Action::Kind::Exit: {
        state_ = ThreadState::Terminated;
        trace::ThreadLifeEvent event;
        event.timestamp = machine.now();
        event.pid = pid();
        event.tid = tid_;
        event.created = false;
        event.name = name_;
        machine.session().recordThreadLife(event);
        result = AdvanceResult::Terminated;
        return false;
      }
    }
    panic("SimThread::step: bad action kind");
}

SimThread::AdvanceResult
SimThread::advance()
{
    // Guard against behaviors spinning forever on zero-time actions.
    constexpr unsigned kMaxInlineActions = 100000;

    AdvanceResult result = AdvanceResult::Terminated;
    for (unsigned i = 0; i < kMaxInlineActions; ++i) {
        ThreadContext ctx = makeContext();
        Action action = behavior_->next(ctx);
        if (!step(action, result))
            return result;
    }
    panic("SimThread::advance: behavior yielded too many zero-time "
          "actions (infinite loop?)");
}

void
SimThread::start()
{
    if (state_ != ThreadState::Created)
        panic("SimThread::start: already started");

    Machine &machine = process_.machine();
    trace::ThreadLifeEvent event;
    event.timestamp = machine.now();
    event.pid = pid();
    event.tid = tid_;
    event.created = true;
    event.name = name_;
    machine.session().recordThreadLife(event);

    if (advance() == AdvanceResult::WantsCpu)
        machine.scheduler().makeReady(*this);
}

void
SimThread::wake()
{
    if (state_ != ThreadState::Sleeping &&
        state_ != ThreadState::BlockedSync &&
        state_ != ThreadState::BlockedGpu) {
        panic("SimThread::wake: thread not blocked");
    }
    if (advance() == AdvanceResult::WantsCpu)
        process_.machine().scheduler().makeReady(*this);
}

bool
SimThread::continueOnCpu()
{
    if (state_ != ThreadState::Running)
        panic("SimThread::continueOnCpu: thread not running");

    AdvanceResult result = advance();
    if (result == AdvanceResult::WantsCpu) {
        // Stay on the CPU; the scheduler reschedules completion.
        state_ = ThreadState::Running;
        return true;
    }
    return false;
}

void
SimThread::onGpuPacketDone()
{
    if (gpuOutstanding_ == 0)
        panic("SimThread::onGpuPacketDone: underflow");
    --gpuOutstanding_;
    if (state_ == ThreadState::BlockedGpu && gpuOutstanding_ == 0)
        wake();
}

} // namespace deskpar::sim

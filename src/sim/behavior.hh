/**
 * @file
 * ThreadBehavior: the interface between workload models and the thread
 * runtime. A behavior is a small state machine; the runtime calls
 * next() whenever the previous action completes and executes whatever
 * it returns. Behaviors own all their state, so conditional logic
 * (frame pacing, adaptive offload, input-driven bursts) is plain C++.
 */

#ifndef DESKPAR_SIM_BEHAVIOR_HH
#define DESKPAR_SIM_BEHAVIOR_HH

#include "sim/action.hh"
#include "sim/gpu.hh"
#include "sim/rng.hh"
#include "sim/types.hh"

namespace deskpar::sim {

/**
 * Read-mostly view of the simulation handed to ThreadBehavior::next().
 * Deliberately minimal: behaviors interact with the machine only
 * through the actions they return.
 */
struct ThreadContext
{
    SimTime now = 0;
    Pid pid = 0;
    Tid tid = 0;
    /** Process-local RNG; draws are reproducible per seed. */
    Rng *rng = nullptr;
    /** Spec of the GPU board in the machine. */
    const GpuSpec *gpu = nullptr;
    /** Number of active logical CPUs (the TLP ceiling). */
    unsigned activeLogicalCpus = 0;
    /** True when both hardware threads per core are enabled. */
    bool smtEnabled = false;
    /** GPU packets this thread submitted that are still in flight. */
    unsigned gpuOutstanding = 0;
};

/**
 * A thread's program. Implementations return the next Action each time
 * the previous one finishes; returning Action::exit() (or any action of
 * Kind::Exit) terminates the thread.
 */
class ThreadBehavior
{
  public:
    virtual ~ThreadBehavior() = default;

    /** Produce the thread's next action. */
    virtual Action next(ThreadContext &ctx) = 0;
};

} // namespace deskpar::sim

#endif // DESKPAR_SIM_BEHAVIOR_HH
